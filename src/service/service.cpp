#include "service/service.h"

#include <algorithm>
#include <deque>
#include <exception>
#include <list>
#include <mutex>
#include <ostream>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "dag/csr.h"
#include "dag/fingerprint.h"
#include "dagman/dagman_file.h"
#include "dagman/instrument.h"
#include "tenant/fair_queue.h"
#include "tenant/registry.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/timing.h"

namespace prio::service {

namespace {

/// FNV-1a over the payload tag byte then the raw request bytes — routes
/// response-memo and parse-cache lookups; the stored payload decides
/// (collisions degrade to misses, never wrong hits).
std::uint64_t hashPayload(const Payload& p) {
  std::uint64_t h = 1469598103934665603ULL;
  h ^= static_cast<unsigned char>(p.kind);
  h *= 1099511628211ULL;
  for (const unsigned char c : p.bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// The decode result of one payload, shared between the parse cache and
/// in-flight requests. Immutable once built: instrumentation always
/// works on a copy of `file`.
struct ParsedDag {
  dagman::DagmanFile file;  ///< empty for binary payloads
  dag::Digraph graph;
  std::vector<std::size_t> job_of_node;  ///< rescue dags only
  bool has_done = false;
  bool from_binary = false;
};

}  // namespace

/// Serialized-response memo for the payload path: exact (kind, bytes) →
/// rendered output (plus the Reply fields a hit must restore). One
/// mutex over an LRU map — a hit copies two strings under the lock,
/// which at wire sizes (~60KB) is still two orders of magnitude cheaper
/// than the parse + reduce + instrument + serialize pipeline it skips.
struct PrioService::TextCache {
  struct Entry {
    Payload payload;
    std::string output;
    PayloadKind output_kind = PayloadKind::kDagmanText;
    std::shared_ptr<const core::PrioResult> result;
    std::uint64_t fingerprint = 0;
    std::uint64_t layout = 0;
    std::list<std::uint64_t>::iterator lru_it;
  };

  explicit TextCache(std::size_t cap) : capacity(cap) {}

  bool find(std::uint64_t key, const Payload& payload, Reply& reply) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = map.find(key);
    if (it == map.end() || it->second.payload.kind != payload.kind ||
        it->second.payload.bytes != payload.bytes) {
      return false;
    }
    lru.splice(lru.end(), lru, it->second.lru_it);
    reply.output = it->second.output;
    reply.output_kind = it->second.output_kind;
    reply.result = it->second.result;
    reply.fingerprint = it->second.fingerprint;
    reply.layout = it->second.layout;
    return true;
  }

  void insert(std::uint64_t key, const Payload& payload,
              const Reply& reply) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = map.find(key);
    if (it != map.end()) {
      lru.splice(lru.end(), lru, it->second.lru_it);
    } else {
      if (map.size() >= capacity && !lru.empty()) {
        map.erase(lru.front());
        lru.pop_front();
      }
      it = map.emplace(key, Entry{}).first;
      it->second.lru_it = lru.insert(lru.end(), key);
    }
    Entry& e = it->second;
    e.payload = payload;
    e.output = reply.output;
    e.output_kind = reply.output_kind;
    e.result = reply.result;
    e.fingerprint = reply.fingerprint;
    e.layout = reply.layout;
  }

  std::mutex mu;
  const std::size_t capacity;
  std::unordered_map<std::uint64_t, Entry> map;
  std::list<std::uint64_t> lru;  ///< front = coldest
};

/// Parse-result cache: (kind, bytes) → ParsedDag, sharded LRU in front
/// of the fingerprint cache. Values are shared_ptr snapshots — a hit
/// hands back the pointer and releases the shard lock before the
/// request touches the dag, so eviction never invalidates in-flight
/// work. Sharded like ResultCache: the key's low bits pick the shard,
/// each shard holds capacity/shards entries behind its own mutex.
struct PrioService::ParseCache {
  struct Entry {
    Payload payload;
    std::shared_ptr<const ParsedDag> parsed;
    std::list<std::uint64_t>::iterator lru_it;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, Entry> map;
    std::list<std::uint64_t> lru;  ///< front = coldest
  };

  ParseCache(std::size_t capacity, std::size_t num_shards)
      : shards(std::max<std::size_t>(num_shards, 1)),
        per_shard_capacity(
            std::max<std::size_t>(capacity / shards.size(), 1)) {}

  Shard& shardOf(std::uint64_t key) {
    return shards[static_cast<std::size_t>(key) % shards.size()];
  }

  std::shared_ptr<const ParsedDag> find(std::uint64_t key,
                                        const Payload& payload) {
    Shard& shard = shardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it == shard.map.end() || it->second.payload.kind != payload.kind ||
        it->second.payload.bytes != payload.bytes) {
      return nullptr;
    }
    shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
    return it->second.parsed;
  }

  void insert(std::uint64_t key, const Payload& payload,
              std::shared_ptr<const ParsedDag> parsed) {
    Shard& shard = shardOf(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.end(), shard.lru, it->second.lru_it);
    } else {
      if (shard.map.size() >= per_shard_capacity && !shard.lru.empty()) {
        shard.map.erase(shard.lru.front());
        shard.lru.pop_front();
      }
      it = shard.map.emplace(key, Entry{}).first;
      it->second.lru_it = shard.lru.insert(shard.lru.end(), key);
    }
    it->second.payload = payload;
    it->second.parsed = std::move(parsed);
  }

  std::deque<Shard> shards;
  const std::size_t per_shard_capacity;
};

PrioService::PrioService(const ServiceConfig& config)
    : config_(config),
      cache_(config.cache_capacity == 0
                 ? nullptr
                 : std::make_unique<ResultCache>(config.cache_capacity,
                                                config.cache_shards)),
      text_cache_(config.cache_capacity == 0 || config.text_cache_capacity == 0
                      ? nullptr
                      : std::make_unique<TextCache>(
                            config.text_cache_capacity)),
      parse_cache_(
          config.cache_capacity == 0 || config.parse_cache_capacity == 0
              ? nullptr
              : std::make_unique<ParseCache>(config.parse_cache_capacity,
                                             config.parse_cache_shards)),
      fair_(config.tenants == nullptr
                ? nullptr
                : std::make_shared<tenant::FairQueue>(config.queue_capacity,
                                                      config.tenants)),
      pool_(resolveThreads(config.num_threads),
            fair_ != nullptr
                ? std::shared_ptr<util::TaskQueue>(fair_)
                : std::make_shared<util::FifoTaskQueue>(
                      config.queue_capacity)) {}

PrioService::~PrioService() { shutdown(); }

void PrioService::shutdown() { pool_.shutdown(); }

void PrioService::serveDigraph(const dag::Digraph& g, Reply& reply,
                               const obs::TraceContext& trace,
                               double budget_s) {
  reply.trace_id = trace.traceId();

  // One reduction pays for both the fingerprint and (on a miss) step 1 of
  // the heuristic. It is timed here — prioritize() below reuses it, so
  // its own reduce_s stays 0 and this measurement is what phase_reduce
  // reports.
  dag::Digraph reduced;
  double reduce_s = 0.0;
  {
    obs::Span span(trace, "service.fingerprint");
    const util::Stopwatch reduce_watch;
    reduced = dag::transitiveReduction(
        g, config_.prio_options.reduction_method, span.context());
    reduce_s = reduce_watch.elapsedSeconds();
    reply.fingerprint = dag::structuralFingerprintOfReduced(reduced);
    reply.layout = dag::layoutHash(g);
  }

  if (cache_ != nullptr) {
    ResultCache::FindOutcome found = cache_->find(reply.fingerprint,
                                                  reply.layout);
    if (found.result != nullptr) {
      reply.result = std::move(found.result);
      reply.cache_hit = true;
      metrics_.cache_hits.add();
      return;
    }
    if (found.alias) metrics_.fingerprint_aliases.add();
  }

  // Every computed request counts as a miss (also with caching disabled),
  // so hits/(hits+misses) is the true served-from-cache fraction.
  metrics_.cache_misses.add();

  // Build the PrioRequest: the reduction is reused (step 1 already paid
  // for above), the request's spans nest under this request's trace, and
  // the compute deadline rides on PrioOptions::deadline_s — prioritize()
  // arms the token internally.
  core::PrioRequest request(g, config_.prio_options);
  request.reduced = &reduced;
  request.options.trace = trace;
  request.tenant = reply.tenant;

  // Parallel schedule phase: lend the request pool itself. Helpers are
  // offered with trySubmit() only (see util/parallel_for.h), so a pool
  // saturated with requests simply yields no helpers and the phase runs
  // serially on this worker — request-level parallelism degrades
  // intra-request parallelism exactly when the cores are already busy.
  if (request.options.schedule_threads != 1) {
    request.options.schedule_pool = &pool_;
  }

  // The compute deadline is whichever is tighter: the service-wide
  // configuration or this request's remaining wire budget. prioritize()
  // arms the CancelToken from deadline_s internally, so the budget rides
  // the same machinery as the configured deadline.
  if (request.options.cancel == nullptr) {
    double deadline = config_.compute_deadline_s;
    if (budget_s > 0.0 && (deadline <= 0.0 || budget_s < deadline)) {
      deadline = budget_s;
    }
    if (deadline > 0.0) request.options.deadline_s = deadline;
  }

  try {
    auto result =
        std::make_shared<const core::PrioResult>(core::prioritize(request));
    core::PhaseTimings timings = result->timings;
    timings.reduce_s = reduce_s;  // reduction ran in the fingerprint step
    metrics_.recordPhases(timings);
    if (cache_ != nullptr) {
      cache_->insert(reply.fingerprint, reply.layout, result);
    }
    reply.result = std::move(result);
  } catch (const util::Cancelled&) {
    // Deadline fired mid-heuristic: serve the §3.1 outdegree-only
    // fallback instead — a valid, if weaker, priority list. The
    // degraded result is NOT cached; a later, less pressed request
    // should compute (and memoize) the real thing. The fallback span
    // carries this request's trace id, so degraded requests stay
    // attributable in the trace export.
    metrics_.requests_deadline_exceeded.add();
    metrics_.requests_degraded.add();
    reply.result = std::make_shared<const core::PrioResult>(
        core::fallbackPrioritize(g, trace));
    reply.status = RequestStatus::kDegraded;
  }
}

void PrioService::serveFile(const FileRequest& request, Reply& reply,
                            const obs::TraceContext& trace) {
  util::fault::checkpoint("service.parse");
  dagman::DagmanFile file = [&] {
    obs::Span span(trace, "service.parse");
    return dagman::DagmanFile::parseFile(request.input_path);
  }();
  if (file.hasDoneJobs()) {
    // Rescue dag: schedule only the pending jobs; DONE jobs keep their
    // existing jobpriority (they will never be submitted again).
    std::vector<std::size_t> job_of_node;
    const dag::Digraph g = file.toPendingDigraph(&job_of_node);
    serveDigraph(g, reply, trace);
    if (!request.output_path.empty()) {
      dagman::instrumentPendingJobs(file, reply.result->priority, job_of_node);
      file.writeFileAtomic(request.output_path);
    }
    return;
  }
  const dag::Digraph g = file.toDigraph();
  serveDigraph(g, reply, trace);
  if (!request.output_path.empty()) {
    dagman::instrumentDagmanFile(file, reply.result->priority);
    file.writeFileAtomic(request.output_path);
  }
}

void PrioService::servePayload(const Request& request, Reply& reply,
                               const obs::TraceContext& trace,
                               double budget_s) {
  util::fault::checkpoint("service.parse");
  if (request.payload.kind == PayloadKind::kBinaryCsr) {
    metrics_.binary_requests.add();
  }

  // Serialized-response memo: byte-identical payloads that previously
  // completed kOk skip the whole pipeline. The checkpoint above still
  // fires first, so fault injection sees every request.
  std::uint64_t payload_key = 0;
  const bool keyed = text_cache_ != nullptr || parse_cache_ != nullptr;
  if (keyed) payload_key = hashPayload(request.payload);
  if (text_cache_ != nullptr &&
      text_cache_->find(payload_key, request.payload, reply)) {
    reply.cache_hit = true;
    metrics_.cache_hits.add();
    metrics_.text_cache_hits.add();
    return;
  }

  // Parse cache: same dag bytes seen before (under any deadline or
  // tenant) skip the decoder entirely. On a miss the decode is timed
  // into phase_parse — the numerator of the bench parse share.
  std::shared_ptr<const ParsedDag> parsed;
  if (parse_cache_ != nullptr) {
    parsed = parse_cache_->find(payload_key, request.payload);
    if (parsed != nullptr) metrics_.parse_cache_hits.add();
  }
  if (parsed == nullptr) {
    util::Stopwatch parse_watch;
    auto fresh = std::make_shared<ParsedDag>();
    {
      obs::Span span(trace, "service.parse");
      if (request.payload.kind == PayloadKind::kBinaryCsr) {
        fresh->graph = dag::decodeBinaryDag(request.payload.bytes);
        fresh->from_binary = true;
      } else {
        std::istringstream in(request.payload.bytes);
        fresh->file = dagman::DagmanFile::parse(in);
        fresh->has_done = fresh->file.hasDoneJobs();
        fresh->graph = fresh->has_done
                           ? fresh->file.toPendingDigraph(&fresh->job_of_node)
                           : fresh->file.toDigraph();
      }
    }
    metrics_.phase_parse.record(parse_watch.elapsedSeconds());
    parsed = std::move(fresh);
    if (parse_cache_ != nullptr) {
      parse_cache_->insert(payload_key, request.payload, parsed);
    }
  }

  serveDigraph(parsed->graph, reply, trace, budget_s);

  // Render the answer in the payload's own kind. Binary replies skip
  // DagmanFile entirely — the BPRI table is node-id-indexed, exactly
  // the priority vector's order.
  if (request.payload.kind == PayloadKind::kBinaryCsr) {
    reply.output = dag::encodeBinaryPriorities(reply.result->priority);
    reply.output_kind = PayloadKind::kBinaryCsr;
  } else {
    // The cached ParsedDag is shared and immutable; instrument a copy.
    dagman::DagmanFile file = parsed->file;
    if (parsed->has_done) {
      dagman::instrumentPendingJobs(file, reply.result->priority,
                                    parsed->job_of_node);
    } else {
      dagman::instrumentDagmanFile(file, reply.result->priority);
    }
    std::ostringstream out;
    file.write(out);
    reply.output = std::move(out).str();
    reply.output_kind = PayloadKind::kDagmanText;
  }

  // Only full-fidelity results are memoized: degraded (deadline
  // fallback) output must not be replayed to later, unhurried requests.
  if (text_cache_ != nullptr && reply.status == RequestStatus::kOk) {
    text_cache_->insert(payload_key, request.payload, reply);
  }
}

void PrioService::serveBatch(const BatchRequest& request, Reply& reply,
                             const obs::TraceContext& trace,
                             double budget_s) {
  metrics_.batch_items.add(request.items.size());
  util::Stopwatch watch;
  reply.items.reserve(request.items.size());
  for (const Payload& payload : request.items) {
    Reply item_reply;
    item_reply.tenant = reply.tenant;
    item_reply.trace_id = reply.trace_id;
    // The batch shares one budget; items past its expiry answer
    // kExpired instead of computing a result nobody is waiting for.
    double remaining_s = 0.0;
    if (budget_s > 0.0) {
      remaining_s = budget_s - watch.elapsedSeconds();
      if (remaining_s <= 0.0) {
        item_reply.status = RequestStatus::kExpired;
        metrics_.requests_expired.add();
        reply.items.push_back(std::move(item_reply));
        continue;
      }
    }
    try {
      Request single;
      single.payload = payload;
      single.tenant = request.tenant;
      servePayload(single, item_reply, trace, remaining_s);
    } catch (const util::TransientError& e) {
      item_reply.result.reset();
      item_reply.status = RequestStatus::kFailed;
      item_reply.error = e.what();
      item_reply.transient = true;
      metrics_.requests_failed.add();
    } catch (const std::exception& e) {
      // A malformed item (bad payload bytes, cyclic dag) fails alone;
      // the batch and its connection live on.
      item_reply.result.reset();
      item_reply.status = RequestStatus::kFailed;
      item_reply.error = e.what();
      metrics_.requests_failed.add();
    }
    reply.items.push_back(std::move(item_reply));
  }
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
void PrioService::serveText(const TextRequest& request, Reply& reply,
                            const obs::TraceContext& trace, double budget_s) {
  Request typed;
  typed.payload = Payload::text(request.dag_text);
  typed.trace_id = request.trace_id;
  typed.tenant = request.tenant;
  typed.deadline_s = request.deadline_s;
  servePayload(typed, reply, trace, budget_s);
}
#pragma GCC diagnostic pop

namespace {

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

const std::string& sourceOf(const FileRequest& r) { return r.input_path; }
std::string sourceOf(const dag::Digraph&) { return {}; }
std::string sourceOf(const TextRequest&) { return {}; }
std::string sourceOf(const Request&) { return {}; }
std::string sourceOf(const BatchRequest&) { return {}; }

std::uint64_t adoptedTraceId(const FileRequest&) { return 0; }
std::uint64_t adoptedTraceId(const dag::Digraph&) { return 0; }
std::uint64_t adoptedTraceId(const TextRequest& r) { return r.trace_id; }
std::uint64_t adoptedTraceId(const Request& r) { return r.trace_id; }
std::uint64_t adoptedTraceId(const BatchRequest& r) { return r.trace_id; }

std::uint32_t tenantOf(const FileRequest& r) { return r.tenant; }
std::uint32_t tenantOf(const dag::Digraph&) { return 0; }
std::uint32_t tenantOf(const TextRequest& r) { return r.tenant; }
std::uint32_t tenantOf(const Request& r) { return r.tenant; }
std::uint32_t tenantOf(const BatchRequest& r) { return r.tenant; }

double deadlineOf(const FileRequest&) { return 0.0; }
double deadlineOf(const dag::Digraph&) { return 0.0; }
double deadlineOf(const TextRequest& r) { return r.deadline_s; }
double deadlineOf(const Request& r) { return r.deadline_s; }
double deadlineOf(const BatchRequest& r) { return r.deadline_s; }

#pragma GCC diagnostic pop

}  // namespace

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
template <typename RequestT>
void PrioService::enqueueWith(RequestT request,
                              std::function<void(Reply)> complete) {
  metrics_.requests_submitted.add();

  // std::function must be copyable, so the completion and the request
  // live behind a shared_ptr. The stopwatch starts here: latency_s
  // includes queue wait.
  struct Holder {
    util::Stopwatch watch;
    std::function<void(Reply)> complete;
    RequestT request;
  };
  auto holder = std::make_shared<Holder>();
  holder->request = std::move(request);
  holder->complete = std::move(complete);

  auto task = [this, holder] {
    Reply reply;
    reply.source = sourceOf(holder->request);
    reply.tenant = tenantOf(holder->request);
    // Shed before computing: under overload a request that already
    // outwaited its queue deadline would deliver a stale answer.
    if (config_.queue_deadline_s > 0.0 &&
        holder->watch.elapsedSeconds() > config_.queue_deadline_s) {
      reply.status = RequestStatus::kShed;
      metrics_.requests_shed.add();
      reply.latency_s = holder->watch.elapsedSeconds();
      metrics_.latency_total.record(reply.latency_s);
      holder->complete(std::move(reply));
      return;
    }
    // Same idea for the request's own budget (the wire deadline): spent
    // waiting in the queue means the caller has stopped listening.
    const double budget_s = deadlineOf(holder->request);
    if (budget_s > 0.0 && holder->watch.elapsedSeconds() >= budget_s) {
      reply.status = RequestStatus::kExpired;
      metrics_.requests_expired.add();
      reply.latency_s = holder->watch.elapsedSeconds();
      metrics_.latency_total.record(reply.latency_s);
      holder->complete(std::move(reply));
      return;
    }
    try {
      // One trace per request: a fresh trace id (or the wire-propagated
      // one for text requests) and a "service.request" root span whose
      // children are the parse/fingerprint/pipeline spans, recorded from
      // whichever worker thread runs the task.
      const obs::TraceContext trace =
          beginRequestTrace(adoptedTraceId(holder->request));
      obs::Span span(trace, "service.request");
      if constexpr (std::is_same_v<RequestT, FileRequest>) {
        serveFile(holder->request, reply, span.context());
      } else if constexpr (std::is_same_v<RequestT, TextRequest> ||
                           std::is_same_v<RequestT, Request> ||
                           std::is_same_v<RequestT, BatchRequest>) {
        // Whatever budget survived the queue bounds the compute. The
        // floor keeps a budget that ran out between the expiry check
        // and here meaningful: the CancelToken fires on its first poll
        // and the request degrades instead of computing unbounded.
        const double remaining_s =
            budget_s > 0.0
                ? std::max(budget_s - holder->watch.elapsedSeconds(), 1e-6)
                : 0.0;
        if constexpr (std::is_same_v<RequestT, TextRequest>) {
          serveText(holder->request, reply, span.context(), remaining_s);
        } else if constexpr (std::is_same_v<RequestT, Request>) {
          servePayload(holder->request, reply, span.context(), remaining_s);
        } else {
          serveBatch(holder->request, reply, span.context(), remaining_s);
        }
      } else {
        serveDigraph(holder->request, reply, span.context());
      }
      metrics_.requests_completed.add();
    } catch (const util::TransientError& e) {
      reply.result.reset();
      reply.status = RequestStatus::kFailed;
      reply.error = e.what();
      reply.transient = true;
      metrics_.requests_failed.add();
    } catch (const std::exception& e) {
      reply.result.reset();
      reply.status = RequestStatus::kFailed;
      reply.error = e.what();
      metrics_.requests_failed.add();
    }
    reply.latency_s = holder->watch.elapsedSeconds();
    metrics_.latency_total.record(reply.latency_s);
    if (reply.cache_hit) metrics_.latency_cache_hit.record(reply.latency_s);
    holder->complete(std::move(reply));
  };

  // The tenant id routes the task into its fair-queue lane; the FIFO
  // backend ignores it, so untenanted services keep the PR 1 semantics.
  const std::uint32_t tenant_id = tenantOf(holder->request);
  const bool accepted = config_.backpressure == BackpressurePolicy::kBlock
                            ? pool_.submitFor(tenant_id, std::move(task))
                            : pool_.trySubmitFor(tenant_id, std::move(task));
  if (!accepted) {
    metrics_.requests_rejected.add();
    Reply reply;
    reply.status = RequestStatus::kRejected;
    reply.source = sourceOf(holder->request);
    reply.tenant = tenant_id;
    reply.latency_s = holder->watch.elapsedSeconds();
    holder->complete(std::move(reply));
  }
}

template <typename RequestT>
std::future<Reply> PrioService::enqueue(RequestT request) {
  auto promise = std::make_shared<std::promise<Reply>>();
  std::future<Reply> future = promise->get_future();
  enqueueWith(std::move(request), [promise](Reply reply) {
    promise->set_value(std::move(reply));
  });
  return future;
}
#pragma GCC diagnostic pop

std::future<Reply> PrioService::submit(dag::Digraph g) {
  return enqueue(std::move(g));
}

std::future<Reply> PrioService::submit(FileRequest request) {
  return enqueue(std::move(request));
}

std::future<Reply> PrioService::submit(Request request) {
  return enqueue(std::move(request));
}

std::future<Reply> PrioService::submit(BatchRequest request) {
  return enqueue(std::move(request));
}

void PrioService::submitCallback(Request request,
                                 std::function<void(Reply)> done) {
  enqueueWith(std::move(request), std::move(done));
}

void PrioService::submitCallback(BatchRequest request,
                                 std::function<void(Reply)> done) {
  enqueueWith(std::move(request), std::move(done));
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
std::future<Reply> PrioService::submit(TextRequest request) {
  return enqueue(std::move(request));
}

void PrioService::submitCallback(TextRequest request,
                                 std::function<void(Reply)> done) {
  enqueueWith(std::move(request), std::move(done));
}
#pragma GCC diagnostic pop

std::vector<std::future<Reply>> PrioService::submitBatch(
    std::vector<dag::Digraph> dags) {
  std::vector<std::future<Reply>> futures;
  futures.reserve(dags.size());
  for (dag::Digraph& g : dags) futures.push_back(submit(std::move(g)));
  return futures;
}

std::vector<std::future<Reply>> PrioService::submitBatch(
    std::vector<FileRequest> files) {
  std::vector<std::future<Reply>> futures;
  futures.reserve(files.size());
  for (FileRequest& f : files) futures.push_back(submit(std::move(f)));
  return futures;
}

Reply PrioService::prioritizeNow(const dag::Digraph& g) {
  metrics_.requests_submitted.add();
  util::Stopwatch watch;
  Reply reply;
  try {
    const obs::TraceContext trace = beginRequestTrace();
    obs::Span span(trace, "service.request");
    serveDigraph(g, reply, span.context());
    metrics_.requests_completed.add();
  } catch (const util::TransientError& e) {
    reply.result.reset();
    reply.status = RequestStatus::kFailed;
    reply.error = e.what();
    reply.transient = true;
    metrics_.requests_failed.add();
  } catch (const std::exception& e) {
    reply.result.reset();
    reply.status = RequestStatus::kFailed;
    reply.error = e.what();
    metrics_.requests_failed.add();
  }
  reply.latency_s = watch.elapsedSeconds();
  metrics_.latency_total.record(reply.latency_s);
  if (reply.cache_hit) metrics_.latency_cache_hit.record(reply.latency_s);
  return reply;
}

void PrioService::writeMetricsJson(std::ostream& out) {
  metrics_.queue_high_water.set(pool_.queueHighWater());
  out << "{\"threads\":" << pool_.numThreads()
      << ",\"queue_capacity\":" << pool_.queueCapacity()
      << ",\"backpressure\":\""
      << (config_.backpressure == BackpressurePolicy::kBlock ? "block"
                                                             : "reject")
      << "\",\"cache\":";
  if (cache_ != nullptr) {
    out << "{\"capacity\":" << cache_->capacity()
        << ",\"shards\":" << cache_->numShards()
        << ",\"size\":" << cache_->size()
        << ",\"evictions\":" << cache_->evictions() << "}";
  } else {
    out << "null";
  }
  out << ",\"metrics\":";
  metrics_.writeJson(out);
  out << "}";
}

void PrioService::writePrometheusText(std::ostream& out) {
  metrics_.queue_high_water.set(pool_.queueHighWater());
  metrics_.writePrometheus(out);
}

}  // namespace prio::service
