#include "service/service.h"

#include <algorithm>
#include <exception>
#include <list>
#include <mutex>
#include <ostream>
#include <sstream>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "dag/fingerprint.h"
#include "dagman/dagman_file.h"
#include "dagman/instrument.h"
#include "tenant/fair_queue.h"
#include "tenant/registry.h"
#include "util/cancellation.h"
#include "util/fault_injection.h"
#include "util/timing.h"

namespace prio::service {

namespace {

/// FNV-1a over the raw request bytes — routes text-cache lookups; the
/// stored text decides (collisions degrade to misses, never wrong hits).
std::uint64_t hashText(const std::string& s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

/// Serialized-response memo for the text path: exact request bytes →
/// instrumented output (plus the Reply fields a hit must restore). One
/// mutex over an LRU map — a hit copies two strings under the lock,
/// which at wire sizes (~60KB) is still two orders of magnitude cheaper
/// than the parse + reduce + instrument + serialize pipeline it skips.
struct PrioService::TextCache {
  struct Entry {
    std::string dag_text;
    std::string output;
    std::shared_ptr<const core::PrioResult> result;
    std::uint64_t fingerprint = 0;
    std::uint64_t layout = 0;
    std::list<std::uint64_t>::iterator lru_it;
  };

  explicit TextCache(std::size_t cap) : capacity(cap) {}

  bool find(std::uint64_t key, const std::string& text, Reply& reply) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = map.find(key);
    if (it == map.end() || it->second.dag_text != text) return false;
    lru.splice(lru.end(), lru, it->second.lru_it);
    reply.output = it->second.output;
    reply.result = it->second.result;
    reply.fingerprint = it->second.fingerprint;
    reply.layout = it->second.layout;
    return true;
  }

  void insert(std::uint64_t key, const std::string& text,
              const Reply& reply) {
    std::lock_guard<std::mutex> lock(mu);
    auto it = map.find(key);
    if (it != map.end()) {
      lru.splice(lru.end(), lru, it->second.lru_it);
    } else {
      if (map.size() >= capacity && !lru.empty()) {
        map.erase(lru.front());
        lru.pop_front();
      }
      it = map.emplace(key, Entry{}).first;
      it->second.lru_it = lru.insert(lru.end(), key);
    }
    Entry& e = it->second;
    e.dag_text = text;
    e.output = reply.output;
    e.result = reply.result;
    e.fingerprint = reply.fingerprint;
    e.layout = reply.layout;
  }

  std::mutex mu;
  const std::size_t capacity;
  std::unordered_map<std::uint64_t, Entry> map;
  std::list<std::uint64_t> lru;  ///< front = coldest
};

PrioService::PrioService(const ServiceConfig& config)
    : config_(config),
      cache_(config.cache_capacity == 0
                 ? nullptr
                 : std::make_unique<ResultCache>(config.cache_capacity,
                                                config.cache_shards)),
      text_cache_(config.cache_capacity == 0 || config.text_cache_capacity == 0
                      ? nullptr
                      : std::make_unique<TextCache>(
                            config.text_cache_capacity)),
      fair_(config.tenants == nullptr
                ? nullptr
                : std::make_shared<tenant::FairQueue>(config.queue_capacity,
                                                      config.tenants)),
      pool_(resolveThreads(config.num_threads),
            fair_ != nullptr
                ? std::shared_ptr<util::TaskQueue>(fair_)
                : std::make_shared<util::FifoTaskQueue>(
                      config.queue_capacity)) {}

PrioService::~PrioService() { shutdown(); }

void PrioService::shutdown() { pool_.shutdown(); }

void PrioService::serveDigraph(const dag::Digraph& g, Reply& reply,
                               const obs::TraceContext& trace,
                               double budget_s) {
  reply.trace_id = trace.traceId();

  // One reduction pays for both the fingerprint and (on a miss) step 1 of
  // the heuristic.
  dag::Digraph reduced;
  {
    obs::Span span(trace, "service.fingerprint");
    reduced = dag::transitiveReduction(
        g, config_.prio_options.reduction_method, span.context());
    reply.fingerprint = dag::structuralFingerprintOfReduced(reduced);
    reply.layout = dag::layoutHash(g);
  }

  if (cache_ != nullptr) {
    ResultCache::FindOutcome found = cache_->find(reply.fingerprint,
                                                  reply.layout);
    if (found.result != nullptr) {
      reply.result = std::move(found.result);
      reply.cache_hit = true;
      metrics_.cache_hits.add();
      return;
    }
    if (found.alias) metrics_.fingerprint_aliases.add();
  }

  // Every computed request counts as a miss (also with caching disabled),
  // so hits/(hits+misses) is the true served-from-cache fraction.
  metrics_.cache_misses.add();

  // Build the PrioRequest: the reduction is reused (step 1 already paid
  // for above), the request's spans nest under this request's trace, and
  // the compute deadline rides on PrioOptions::deadline_s — prioritize()
  // arms the token internally.
  core::PrioRequest request(g, config_.prio_options);
  request.reduced = &reduced;
  request.options.trace = trace;
  request.tenant = reply.tenant;

  // Parallel schedule phase: lend the request pool itself. Helpers are
  // offered with trySubmit() only (see util/parallel_for.h), so a pool
  // saturated with requests simply yields no helpers and the phase runs
  // serially on this worker — request-level parallelism degrades
  // intra-request parallelism exactly when the cores are already busy.
  if (request.options.schedule_threads != 1) {
    request.options.schedule_pool = &pool_;
  }

  // The compute deadline is whichever is tighter: the service-wide
  // configuration or this request's remaining wire budget. prioritize()
  // arms the CancelToken from deadline_s internally, so the budget rides
  // the same machinery as the configured deadline.
  if (request.options.cancel == nullptr) {
    double deadline = config_.compute_deadline_s;
    if (budget_s > 0.0 && (deadline <= 0.0 || budget_s < deadline)) {
      deadline = budget_s;
    }
    if (deadline > 0.0) request.options.deadline_s = deadline;
  }

  try {
    auto result =
        std::make_shared<const core::PrioResult>(core::prioritize(request));
    metrics_.recordPhases(result->timings);
    if (cache_ != nullptr) {
      cache_->insert(reply.fingerprint, reply.layout, result);
    }
    reply.result = std::move(result);
  } catch (const util::Cancelled&) {
    // Deadline fired mid-heuristic: serve the §3.1 outdegree-only
    // fallback instead — a valid, if weaker, priority list. The
    // degraded result is NOT cached; a later, less pressed request
    // should compute (and memoize) the real thing. The fallback span
    // carries this request's trace id, so degraded requests stay
    // attributable in the trace export.
    metrics_.requests_deadline_exceeded.add();
    metrics_.requests_degraded.add();
    reply.result = std::make_shared<const core::PrioResult>(
        core::fallbackPrioritize(g, trace));
    reply.status = RequestStatus::kDegraded;
  }
}

void PrioService::serveFile(const FileRequest& request, Reply& reply,
                            const obs::TraceContext& trace) {
  util::fault::checkpoint("service.parse");
  dagman::DagmanFile file = [&] {
    obs::Span span(trace, "service.parse");
    return dagman::DagmanFile::parseFile(request.input_path);
  }();
  if (file.hasDoneJobs()) {
    // Rescue dag: schedule only the pending jobs; DONE jobs keep their
    // existing jobpriority (they will never be submitted again).
    std::vector<std::size_t> job_of_node;
    const dag::Digraph g = file.toPendingDigraph(&job_of_node);
    serveDigraph(g, reply, trace);
    if (!request.output_path.empty()) {
      dagman::instrumentPendingJobs(file, reply.result->priority, job_of_node);
      file.writeFileAtomic(request.output_path);
    }
    return;
  }
  const dag::Digraph g = file.toDigraph();
  serveDigraph(g, reply, trace);
  if (!request.output_path.empty()) {
    dagman::instrumentDagmanFile(file, reply.result->priority);
    file.writeFileAtomic(request.output_path);
  }
}

void PrioService::serveText(const TextRequest& request, Reply& reply,
                            const obs::TraceContext& trace, double budget_s) {
  util::fault::checkpoint("service.parse");

  // Serialized-response memo: byte-identical requests that previously
  // completed kOk skip the whole pipeline. The checkpoint above still
  // fires first, so fault injection sees every request.
  std::uint64_t text_key = 0;
  if (text_cache_ != nullptr) {
    text_key = hashText(request.dag_text);
    if (text_cache_->find(text_key, request.dag_text, reply)) {
      reply.cache_hit = true;
      metrics_.cache_hits.add();
      metrics_.text_cache_hits.add();
      return;
    }
  }

  dagman::DagmanFile file = [&] {
    obs::Span span(trace, "service.parse");
    std::istringstream in(request.dag_text);
    return dagman::DagmanFile::parse(in);
  }();
  if (file.hasDoneJobs()) {
    std::vector<std::size_t> job_of_node;
    const dag::Digraph g = file.toPendingDigraph(&job_of_node);
    serveDigraph(g, reply, trace, budget_s);
    dagman::instrumentPendingJobs(file, reply.result->priority, job_of_node);
  } else {
    const dag::Digraph g = file.toDigraph();
    serveDigraph(g, reply, trace, budget_s);
    dagman::instrumentDagmanFile(file, reply.result->priority);
  }
  std::ostringstream out;
  file.write(out);
  reply.output = std::move(out).str();

  // Only full-fidelity results are memoized: degraded (deadline
  // fallback) output must not be replayed to later, unhurried requests.
  if (text_cache_ != nullptr && reply.status == RequestStatus::kOk) {
    text_cache_->insert(text_key, request.dag_text, reply);
  }
}

namespace {

const std::string& sourceOf(const FileRequest& r) { return r.input_path; }
std::string sourceOf(const dag::Digraph&) { return {}; }
std::string sourceOf(const TextRequest&) { return {}; }

std::uint64_t adoptedTraceId(const FileRequest&) { return 0; }
std::uint64_t adoptedTraceId(const dag::Digraph&) { return 0; }
std::uint64_t adoptedTraceId(const TextRequest& r) { return r.trace_id; }

std::uint32_t tenantOf(const FileRequest& r) { return r.tenant; }
std::uint32_t tenantOf(const dag::Digraph&) { return 0; }
std::uint32_t tenantOf(const TextRequest& r) { return r.tenant; }

double deadlineOf(const FileRequest&) { return 0.0; }
double deadlineOf(const dag::Digraph&) { return 0.0; }
double deadlineOf(const TextRequest& r) { return r.deadline_s; }

}  // namespace

template <typename Request>
void PrioService::enqueueWith(Request request,
                              std::function<void(Reply)> complete) {
  metrics_.requests_submitted.add();

  // std::function must be copyable, so the completion and the request
  // live behind a shared_ptr. The stopwatch starts here: latency_s
  // includes queue wait.
  struct Holder {
    util::Stopwatch watch;
    std::function<void(Reply)> complete;
    Request request;
  };
  auto holder = std::make_shared<Holder>();
  holder->request = std::move(request);
  holder->complete = std::move(complete);

  auto task = [this, holder] {
    Reply reply;
    reply.source = sourceOf(holder->request);
    reply.tenant = tenantOf(holder->request);
    // Shed before computing: under overload a request that already
    // outwaited its queue deadline would deliver a stale answer.
    if (config_.queue_deadline_s > 0.0 &&
        holder->watch.elapsedSeconds() > config_.queue_deadline_s) {
      reply.status = RequestStatus::kShed;
      metrics_.requests_shed.add();
      reply.latency_s = holder->watch.elapsedSeconds();
      metrics_.latency_total.record(reply.latency_s);
      holder->complete(std::move(reply));
      return;
    }
    // Same idea for the request's own budget (the wire deadline): spent
    // waiting in the queue means the caller has stopped listening.
    const double budget_s = deadlineOf(holder->request);
    if (budget_s > 0.0 && holder->watch.elapsedSeconds() >= budget_s) {
      reply.status = RequestStatus::kExpired;
      metrics_.requests_expired.add();
      reply.latency_s = holder->watch.elapsedSeconds();
      metrics_.latency_total.record(reply.latency_s);
      holder->complete(std::move(reply));
      return;
    }
    try {
      // One trace per request: a fresh trace id (or the wire-propagated
      // one for text requests) and a "service.request" root span whose
      // children are the parse/fingerprint/pipeline spans, recorded from
      // whichever worker thread runs the task.
      const obs::TraceContext trace =
          beginRequestTrace(adoptedTraceId(holder->request));
      obs::Span span(trace, "service.request");
      if constexpr (std::is_same_v<Request, FileRequest>) {
        serveFile(holder->request, reply, span.context());
      } else if constexpr (std::is_same_v<Request, TextRequest>) {
        // Whatever budget survived the queue bounds the compute. The
        // floor keeps a budget that ran out between the expiry check
        // and here meaningful: the CancelToken fires on its first poll
        // and the request degrades instead of computing unbounded.
        const double remaining_s =
            budget_s > 0.0
                ? std::max(budget_s - holder->watch.elapsedSeconds(), 1e-6)
                : 0.0;
        serveText(holder->request, reply, span.context(), remaining_s);
      } else {
        serveDigraph(holder->request, reply, span.context());
      }
      metrics_.requests_completed.add();
    } catch (const util::TransientError& e) {
      reply.result.reset();
      reply.status = RequestStatus::kFailed;
      reply.error = e.what();
      reply.transient = true;
      metrics_.requests_failed.add();
    } catch (const std::exception& e) {
      reply.result.reset();
      reply.status = RequestStatus::kFailed;
      reply.error = e.what();
      metrics_.requests_failed.add();
    }
    reply.latency_s = holder->watch.elapsedSeconds();
    metrics_.latency_total.record(reply.latency_s);
    if (reply.cache_hit) metrics_.latency_cache_hit.record(reply.latency_s);
    holder->complete(std::move(reply));
  };

  // The tenant id routes the task into its fair-queue lane; the FIFO
  // backend ignores it, so untenanted services keep the PR 1 semantics.
  const std::uint32_t tenant_id = tenantOf(holder->request);
  const bool accepted = config_.backpressure == BackpressurePolicy::kBlock
                            ? pool_.submitFor(tenant_id, std::move(task))
                            : pool_.trySubmitFor(tenant_id, std::move(task));
  if (!accepted) {
    metrics_.requests_rejected.add();
    Reply reply;
    reply.status = RequestStatus::kRejected;
    reply.source = sourceOf(holder->request);
    reply.tenant = tenant_id;
    reply.latency_s = holder->watch.elapsedSeconds();
    holder->complete(std::move(reply));
  }
}

template <typename Request>
std::future<Reply> PrioService::enqueue(Request request) {
  auto promise = std::make_shared<std::promise<Reply>>();
  std::future<Reply> future = promise->get_future();
  enqueueWith(std::move(request), [promise](Reply reply) {
    promise->set_value(std::move(reply));
  });
  return future;
}

std::future<Reply> PrioService::submit(dag::Digraph g) {
  return enqueue(std::move(g));
}

std::future<Reply> PrioService::submit(FileRequest request) {
  return enqueue(std::move(request));
}

std::future<Reply> PrioService::submit(TextRequest request) {
  return enqueue(std::move(request));
}

void PrioService::submitCallback(TextRequest request,
                                 std::function<void(Reply)> done) {
  enqueueWith(std::move(request), std::move(done));
}

std::vector<std::future<Reply>> PrioService::submitBatch(
    std::vector<dag::Digraph> dags) {
  std::vector<std::future<Reply>> futures;
  futures.reserve(dags.size());
  for (dag::Digraph& g : dags) futures.push_back(submit(std::move(g)));
  return futures;
}

std::vector<std::future<Reply>> PrioService::submitBatch(
    std::vector<FileRequest> files) {
  std::vector<std::future<Reply>> futures;
  futures.reserve(files.size());
  for (FileRequest& f : files) futures.push_back(submit(std::move(f)));
  return futures;
}

Reply PrioService::prioritizeNow(const dag::Digraph& g) {
  metrics_.requests_submitted.add();
  util::Stopwatch watch;
  Reply reply;
  try {
    const obs::TraceContext trace = beginRequestTrace();
    obs::Span span(trace, "service.request");
    serveDigraph(g, reply, span.context());
    metrics_.requests_completed.add();
  } catch (const util::TransientError& e) {
    reply.result.reset();
    reply.status = RequestStatus::kFailed;
    reply.error = e.what();
    reply.transient = true;
    metrics_.requests_failed.add();
  } catch (const std::exception& e) {
    reply.result.reset();
    reply.status = RequestStatus::kFailed;
    reply.error = e.what();
    metrics_.requests_failed.add();
  }
  reply.latency_s = watch.elapsedSeconds();
  metrics_.latency_total.record(reply.latency_s);
  if (reply.cache_hit) metrics_.latency_cache_hit.record(reply.latency_s);
  return reply;
}

void PrioService::writeMetricsJson(std::ostream& out) {
  metrics_.queue_high_water.set(pool_.queueHighWater());
  out << "{\"threads\":" << pool_.numThreads()
      << ",\"queue_capacity\":" << pool_.queueCapacity()
      << ",\"backpressure\":\""
      << (config_.backpressure == BackpressurePolicy::kBlock ? "block"
                                                             : "reject")
      << "\",\"cache\":";
  if (cache_ != nullptr) {
    out << "{\"capacity\":" << cache_->capacity()
        << ",\"shards\":" << cache_->numShards()
        << ",\"size\":" << cache_->size()
        << ",\"evictions\":" << cache_->evictions() << "}";
  } else {
    out << "null";
  }
  out << ",\"metrics\":";
  metrics_.writeJson(out);
  out << "}";
}

void PrioService::writePrometheusText(std::ostream& out) {
  metrics_.queue_high_water.set(pool_.queueHighWater());
  metrics_.writePrometheus(out);
}

}  // namespace prio::service
