#include "service/metrics.h"

#include <string_view>

namespace prio::service {

namespace {

// Renders one histogram from the snapshot in the historical shape:
// {"count":..,"mean_s":..,"p50_s":..,"p99_s":..,"max_s":..}. Histograms
// are registered at construction, so the lookup cannot miss; an empty
// placeholder keeps the shape stable regardless.
void writeHistogramJson(std::ostream& out, const obs::Snapshot& snap,
                        std::string_view name) {
  for (const obs::HistogramSnapshot& h : snap.histograms) {
    if (h.name == name) {
      out << "{\"count\":" << h.count << ",\"mean_s\":" << h.meanSeconds()
          << ",\"p50_s\":" << h.quantileSeconds(0.50)
          << ",\"p99_s\":" << h.quantileSeconds(0.99)
          << ",\"max_s\":" << h.maxSeconds() << "}";
      return;
    }
  }
  out << "{\"count\":0,\"mean_s\":0,\"p50_s\":0,\"p99_s\":0,\"max_s\":0}";
}

std::uint64_t gaugeValue(const obs::Snapshot& snap, std::string_view name) {
  for (const auto& [n, v] : snap.gauges) {
    if (n == name) return v;
  }
  return 0;
}

}  // namespace

void ServiceMetrics::writeJson(std::ostream& out) const {
  const obs::Snapshot snap = registry.snapshot();
  const std::uint64_t hits = snap.counterValue("cache_hits");
  const std::uint64_t misses = snap.counterValue("cache_misses");
  const double hit_rate =
      hits + misses == 0
          ? 0.0
          : static_cast<double>(hits) / static_cast<double>(hits + misses);
  out << "{\"requests_submitted\":" << snap.counterValue("requests_submitted")
      << ",\"requests_completed\":" << snap.counterValue("requests_completed")
      << ",\"requests_rejected\":" << snap.counterValue("requests_rejected")
      << ",\"requests_failed\":" << snap.counterValue("requests_failed")
      << ",\"requests_degraded\":" << snap.counterValue("requests_degraded")
      << ",\"requests_deadline_exceeded\":"
      << snap.counterValue("requests_deadline_exceeded")
      << ",\"requests_shed\":" << snap.counterValue("requests_shed")
      << ",\"requests_expired\":" << snap.counterValue("requests_expired")
      << ",\"retries\":" << snap.counterValue("retries")
      << ",\"cache_hits\":" << hits << ",\"cache_misses\":" << misses
      << ",\"cache_hit_rate\":" << hit_rate
      << ",\"text_cache_hits\":" << snap.counterValue("text_cache_hits")
      << ",\"parse_cache_hits\":" << snap.counterValue("parse_cache_hits")
      << ",\"fingerprint_aliases\":" << snap.counterValue("fingerprint_aliases")
      << ",\"binary_requests\":" << snap.counterValue("binary_requests")
      << ",\"batch_items\":" << snap.counterValue("batch_items")
      << ",\"queue_high_water\":" << gaugeValue(snap, "queue_high_water")
      << ",\"latency_total\":";
  writeHistogramJson(out, snap, "latency_total");
  out << ",\"latency_cache_hit\":";
  writeHistogramJson(out, snap, "latency_cache_hit");
  out << ",\"phase_parse\":";
  writeHistogramJson(out, snap, "phase_parse");
  out << ",\"phase_reduce\":";
  writeHistogramJson(out, snap, "phase_reduce");
  out << ",\"phase_decompose\":";
  writeHistogramJson(out, snap, "phase_decompose");
  out << ",\"phase_recurse\":";
  writeHistogramJson(out, snap, "phase_recurse");
  out << ",\"phase_combine\":";
  writeHistogramJson(out, snap, "phase_combine");
  out << "}";
}

}  // namespace prio::service
