// Sharded LRU memo of PrioResults keyed by structural DAG fingerprint.
//
// Shard selection hashes the fingerprint, so concurrent lookups of
// different dags almost never contend on the same mutex; within a shard a
// classic unordered_map + intrusive LRU list gives O(1) find/insert/evict.
//
// Soundness across fingerprint collisions: the structural fingerprint is
// isomorphism-stable, but a stored result encodes node *ids* — reusing it
// requires the request's id-layout to match the layout the result was
// computed from, not mere isomorphism. Every entry therefore carries the
// layoutHash() of its source dag, and find() only returns entries whose
// layout matches. A fingerprint match with a layout mismatch (an "alias":
// id-permuted isomorphic dag, or an astronomically unlikely hash
// collision) is reported so the service can count it and recompute; both
// layouts then coexist under the same fingerprint key.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/prio.h"

namespace prio::service {

/// Shared-ownership handle to a memoized result. Replies keep results
/// alive after eviction, so eviction never invalidates an outstanding
/// reply.
using CachedResult = std::shared_ptr<const core::PrioResult>;

class ResultCache {
 public:
  struct FindOutcome {
    CachedResult result;  ///< non-null on a (layout-verified) hit
    bool alias = false;   ///< fingerprint present but only with other layouts
  };

  /// `capacity` is the total number of retained results across all
  /// shards (split evenly, min 1 each); `num_shards` >= 1.
  ResultCache(std::size_t capacity, std::size_t num_shards);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;
  ~ResultCache();

  /// Looks up (fingerprint, layout); a hit refreshes LRU recency.
  [[nodiscard]] FindOutcome find(std::uint64_t fingerprint,
                                 std::uint64_t layout);

  /// Inserts (or refreshes) the result for (fingerprint, layout),
  /// evicting the shard's least-recently-used entry when full.
  void insert(std::uint64_t fingerprint, std::uint64_t layout,
              CachedResult result);

  /// Current number of retained results (sums shard sizes; approximate
  /// under concurrent mutation).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept;
  [[nodiscard]] std::size_t numShards() const noexcept;
  /// Total LRU evictions so far.
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  struct Shard;
  Shard& shardFor(std::uint64_t fingerprint) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t per_shard_capacity_ = 0;
};

}  // namespace prio::service
