#include "service/cache.h"

#include <mutex>
#include <utility>

#include "util/check.h"

namespace prio::service {

namespace {

// Key = (fingerprint, layout). The fingerprint picks the shard; the full
// pair is the map key, so aliased layouts are independent entries.
struct Key {
  std::uint64_t fingerprint;
  std::uint64_t layout;
  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const noexcept {
    // fingerprint and layout are already avalanche-mixed; fold them.
    return static_cast<std::size_t>(k.fingerprint ^ (k.layout * 0x9e3779b97f4a7c15ULL));
  }
};

}  // namespace

struct ResultCache::Shard {
  struct Entry {
    Key key;
    CachedResult result;
  };

  mutable std::mutex mutex;
  // Front = most recently used.
  std::list<Entry> lru;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index;
  // Layout-count per fingerprint, for alias detection in O(1).
  std::unordered_map<std::uint64_t, std::size_t> fingerprint_count;
  std::uint64_t evictions = 0;
};

ResultCache::ResultCache(std::size_t capacity, std::size_t num_shards) {
  PRIO_CHECK_MSG(num_shards >= 1, "ResultCache needs at least one shard");
  per_shard_capacity_ = capacity / num_shards;
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
  shards_.reserve(num_shards);
  for (std::size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::~ResultCache() = default;

ResultCache::Shard& ResultCache::shardFor(std::uint64_t fingerprint) const {
  // The fingerprint's low bits are already well mixed (splitmix64
  // finalizer); modulo spreads them over the shards.
  return *shards_[static_cast<std::size_t>(fingerprint % shards_.size())];
}

ResultCache::FindOutcome ResultCache::find(std::uint64_t fingerprint,
                                           std::uint64_t layout) {
  Shard& s = shardFor(fingerprint);
  std::lock_guard<std::mutex> lock(s.mutex);
  const auto it = s.index.find(Key{fingerprint, layout});
  if (it == s.index.end()) {
    const auto fc = s.fingerprint_count.find(fingerprint);
    return FindOutcome{nullptr, fc != s.fingerprint_count.end() && fc->second > 0};
  }
  s.lru.splice(s.lru.begin(), s.lru, it->second);  // refresh recency
  return FindOutcome{it->second->result, false};
}

void ResultCache::insert(std::uint64_t fingerprint, std::uint64_t layout,
                         CachedResult result) {
  const Key key{fingerprint, layout};
  Shard& s = shardFor(fingerprint);
  std::lock_guard<std::mutex> lock(s.mutex);
  if (const auto it = s.index.find(key); it != s.index.end()) {
    it->second->result = std::move(result);
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return;
  }
  if (s.lru.size() >= per_shard_capacity_) {
    const auto& victim = s.lru.back();
    if (auto fc = s.fingerprint_count.find(victim.key.fingerprint);
        fc != s.fingerprint_count.end() && --fc->second == 0) {
      s.fingerprint_count.erase(fc);
    }
    s.index.erase(victim.key);
    s.lru.pop_back();
    ++s.evictions;
  }
  s.lru.push_front(Shard::Entry{key, std::move(result)});
  s.index.emplace(key, s.lru.begin());
  ++s.fingerprint_count[fingerprint];
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->lru.size();
  }
  return total;
}

std::size_t ResultCache::capacity() const noexcept {
  return per_shard_capacity_ * shards_.size();
}

std::size_t ResultCache::numShards() const noexcept { return shards_.size(); }

std::uint64_t ResultCache::evictions() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->evictions;
  }
  return total;
}

}  // namespace prio::service
