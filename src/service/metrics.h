// Service-side observability, since PRIO_API_VERSION 2 a thin facade over
// the obs::Registry: every instrument is registered once at construction
// (named handles; see src/obs/metrics.h) and the record path stays
// lock-free relaxed atomics, so worker threads never serialize on
// metrics.
//
// The per-phase histograms reuse core::PhaseTimings — every computed
// (non-cached) request feeds its reduce/decompose/recurse/combine split
// into one histogram each, so a long-running priod exposes the same
// phase breakdown the paper's Table 1 reports for single runs.
//
// Both exports render from ONE Registry::snapshot(): writeJson() keeps
// the historical metrics.json shape (stable key order, nested histogram
// objects, derived cache_hit_rate), writePrometheus() emits the text
// exposition format behind `prio_serve --metrics-text`.
#pragma once

#include <cstdint>
#include <ostream>

#include "core/prio.h"
#include "obs/metrics.h"

namespace prio::service {

/// All metrics of one PrioService instance. Owns a private obs::Registry
/// (each service instance is isolated — tests rely on counts starting at
/// zero) and exposes stable handles under the historical member names, so
/// call sites read exactly as before the registry migration:
/// `service.metrics().cache_hits.get()`.
struct ServiceMetrics {
  ServiceMetrics()
      : requests_submitted(registry.counter("requests_submitted")),
        requests_completed(registry.counter("requests_completed")),
        requests_rejected(registry.counter("requests_rejected")),
        requests_failed(registry.counter("requests_failed")),
        requests_degraded(registry.counter("requests_degraded")),
        requests_deadline_exceeded(
            registry.counter("requests_deadline_exceeded")),
        requests_shed(registry.counter("requests_shed")),
        requests_expired(registry.counter("requests_expired")),
        retries(registry.counter("retries")),
        cache_hits(registry.counter("cache_hits")),
        cache_misses(registry.counter("cache_misses")),
        text_cache_hits(registry.counter("text_cache_hits")),
        parse_cache_hits(registry.counter("parse_cache_hits")),
        fingerprint_aliases(registry.counter("fingerprint_aliases")),
        binary_requests(registry.counter("binary_requests")),
        batch_items(registry.counter("batch_items")),
        queue_high_water(registry.gauge("queue_high_water")),
        latency_total(registry.histogram("latency_total")),
        latency_cache_hit(registry.histogram("latency_cache_hit")),
        phase_parse(registry.histogram("phase_parse")),
        phase_reduce(registry.histogram("phase_reduce")),
        phase_decompose(registry.histogram("phase_decompose")),
        phase_recurse(registry.histogram("phase_recurse")),
        phase_combine(registry.histogram("phase_combine")) {}

  ServiceMetrics(const ServiceMetrics&) = delete;
  ServiceMetrics& operator=(const ServiceMetrics&) = delete;

  obs::Registry registry;

  // Request lifecycle.
  obs::Counter& requests_submitted;
  obs::Counter& requests_completed;  ///< served a valid result (full or degraded)
  obs::Counter& requests_rejected;   ///< backpressure: queue full under kReject
  obs::Counter& requests_failed;     ///< parse error, cyclic dag, ...
  // Failure-semantics accounting (see DESIGN.md §8).
  obs::Counter& requests_degraded;   ///< deadline hit; outdegree fallback served
  obs::Counter& requests_deadline_exceeded;  ///< compute deadlines that fired
  obs::Counter& requests_shed;  ///< dropped: queue wait exceeded its deadline
  obs::Counter& requests_expired;  ///< caller budget spent before compute
  obs::Counter& retries;  ///< resubmissions by the prio_serve retry loop
  // Cache outcomes (completed requests only).
  obs::Counter& cache_hits;
  obs::Counter& cache_misses;
  /// Subset of cache_hits answered by the serialized-response memo
  /// (byte-identical wire request; parse and serialize skipped too).
  obs::Counter& text_cache_hits;
  /// Requests whose payload-bytes → parsed-dag lookup hit (parser
  /// skipped even though the response memo missed, e.g. a different
  /// deadline or output kind on the same dag bytes).
  obs::Counter& parse_cache_hits;
  /// Structural-fingerprint hit whose stored result was computed under a
  /// different node-id layout: sound to detect, unsound to reuse — served
  /// as a miss (see dag/fingerprint.h).
  obs::Counter& fingerprint_aliases;
  /// Requests (or batch items) that arrived as PayloadKind::kBinaryCsr.
  obs::Counter& binary_requests;
  /// Dags that arrived inside a BatchRequest (the batch itself counts
  /// once in requests_submitted).
  obs::Counter& batch_items;
  /// Queue depth high-water mark, mirrored from the pool at snapshot time.
  obs::Gauge& queue_high_water;

  // Latency split. End-to-end = submit() to reply (queue wait included).
  obs::Histogram& latency_total;
  obs::Histogram& latency_cache_hit;  ///< end-to-end for cache hits
  /// Payload decode (DAGMan text parse or binary-CSR decode) per
  /// non-memoized request — the numerator of the bench parse share.
  obs::Histogram& phase_parse;
  obs::Histogram& phase_reduce;
  obs::Histogram& phase_decompose;
  obs::Histogram& phase_recurse;
  obs::Histogram& phase_combine;

  void recordPhases(const core::PhaseTimings& t) {
    phase_reduce.record(t.reduce_s);
    phase_decompose.record(t.decompose_s);
    phase_recurse.record(t.recurse_s);
    phase_combine.record(t.combine_s);
  }

  [[nodiscard]] double cacheHitRate() const {
    const std::uint64_t h = cache_hits.get();
    const std::uint64_t m = cache_misses.get();
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }

  /// Full JSON object (stable key order; suitable for BENCH_service.json
  /// and the prio_serve report). Rendered from one registry snapshot.
  void writeJson(std::ostream& out) const;

  /// Prometheus text exposition of the same snapshot (prio_ prefix).
  void writePrometheus(std::ostream& out) const {
    registry.snapshot().writePrometheus(out);
  }
};

}  // namespace prio::service
