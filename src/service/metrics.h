// Service-side observability: atomic request/cache counters and
// log-bucketed latency histograms, all lock-free on the record path so
// worker threads never serialize on metrics.
//
// The per-phase histograms reuse core::PhaseTimings — every computed
// (non-cached) request feeds its reduce/decompose/recurse/combine split
// into one histogram each, so a long-running priod exposes the same
// phase breakdown the paper's Table 1 reports for single runs.
//
// Counter/histogram reads (snapshot(), writeJson()) are monotonic
// relaxed-atomic reads: values lag in-flight requests by at most one
// request and need no locks.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "core/prio.h"

namespace prio::service {

/// Latencies bucketed by power-of-two microseconds: bucket i counts
/// samples in [2^i, 2^(i+1)) us (bucket 0 also absorbs sub-microsecond
/// samples; the last bucket absorbs everything above ~2100 s).
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  void record(double seconds) {
    const double us = seconds * 1e6;
    const std::uint64_t ticks = us < 1.0 ? 0 : static_cast<std::uint64_t>(us);
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && (std::uint64_t{1} << (bucket + 1)) <= ticks) {
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(ticks, std::memory_order_relaxed);
    // CAS max; relaxed is fine — the value is monotone.
    std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
    while (ticks > seen &&
           !max_us_.compare_exchange_weak(seen, ticks,
                                          std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] double meanSeconds() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum_us_.load(std::memory_order_relaxed)) /
                        (1e6 * static_cast<double>(n));
  }

  [[nodiscard]] double maxSeconds() const {
    return static_cast<double>(max_us_.load(std::memory_order_relaxed)) / 1e6;
  }

  /// Upper bound of the bucket containing the q-quantile (q in [0,1]),
  /// in seconds. 0 when empty.
  [[nodiscard]] double quantileSeconds(double q) const {
    const std::uint64_t n = count();
    if (n == 0) return 0.0;
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(n - 1));
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b].load(std::memory_order_relaxed);
      if (seen > rank) {
        return static_cast<double>(std::uint64_t{1} << (b + 1)) / 1e6;
      }
    }
    return maxSeconds();
  }

  /// Writes {"count":..,"mean_s":..,"p50_s":..,"p99_s":..,"max_s":..}.
  void writeJson(std::ostream& out) const {
    out << "{\"count\":" << count() << ",\"mean_s\":" << meanSeconds()
        << ",\"p50_s\":" << quantileSeconds(0.50)
        << ",\"p99_s\":" << quantileSeconds(0.99)
        << ",\"max_s\":" << maxSeconds() << "}";
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// One relaxed counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t get() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// All metrics of one PrioService instance.
struct ServiceMetrics {
  // Request lifecycle.
  Counter requests_submitted;
  Counter requests_completed;  ///< served a valid result (full or degraded)
  Counter requests_rejected;   ///< backpressure: queue full under kReject
  Counter requests_failed;     ///< parse error, cyclic dag, ...
  // Failure-semantics accounting (see DESIGN.md §8).
  Counter requests_degraded;   ///< deadline hit; outdegree fallback served
  Counter requests_deadline_exceeded;  ///< compute deadlines that fired
  Counter requests_shed;       ///< dropped: queue wait exceeded its deadline
  Counter retries;             ///< resubmissions by the prio_serve retry loop
  // Cache outcomes (completed requests only).
  Counter cache_hits;
  Counter cache_misses;
  /// Structural-fingerprint hit whose stored result was computed under a
  /// different node-id layout: sound to detect, unsound to reuse — served
  /// as a miss (see dag/fingerprint.h).
  Counter fingerprint_aliases;
  // Queue depth high-water mark, mirrored from the pool at snapshot time.
  std::atomic<std::uint64_t> queue_high_water{0};

  // Latency split. End-to-end = submit() to reply (queue wait included).
  LatencyHistogram latency_total;
  LatencyHistogram latency_cache_hit;  ///< end-to-end for cache hits
  LatencyHistogram phase_reduce;
  LatencyHistogram phase_decompose;
  LatencyHistogram phase_recurse;
  LatencyHistogram phase_combine;

  void recordPhases(const core::PhaseTimings& t) {
    phase_reduce.record(t.reduce_s);
    phase_decompose.record(t.decompose_s);
    phase_recurse.record(t.recurse_s);
    phase_combine.record(t.combine_s);
  }

  [[nodiscard]] double cacheHitRate() const {
    const std::uint64_t h = cache_hits.get();
    const std::uint64_t m = cache_misses.get();
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }

  /// Full JSON object (stable key order; suitable for BENCH_service.json
  /// and the prio_serve report).
  void writeJson(std::ostream& out) const {
    out << "{\"requests_submitted\":" << requests_submitted.get()
        << ",\"requests_completed\":" << requests_completed.get()
        << ",\"requests_rejected\":" << requests_rejected.get()
        << ",\"requests_failed\":" << requests_failed.get()
        << ",\"requests_degraded\":" << requests_degraded.get()
        << ",\"requests_deadline_exceeded\":"
        << requests_deadline_exceeded.get()
        << ",\"requests_shed\":" << requests_shed.get()
        << ",\"retries\":" << retries.get()
        << ",\"cache_hits\":" << cache_hits.get()
        << ",\"cache_misses\":" << cache_misses.get()
        << ",\"cache_hit_rate\":" << cacheHitRate()
        << ",\"fingerprint_aliases\":" << fingerprint_aliases.get()
        << ",\"queue_high_water\":"
        << queue_high_water.load(std::memory_order_relaxed)
        << ",\"latency_total\":";
    latency_total.writeJson(out);
    out << ",\"latency_cache_hit\":";
    latency_cache_hit.writeJson(out);
    out << ",\"phase_reduce\":";
    phase_reduce.writeJson(out);
    out << ",\"phase_decompose\":";
    phase_decompose.writeJson(out);
    out << ",\"phase_recurse\":";
    phase_recurse.writeJson(out);
    out << ",\"phase_combine\":";
    phase_combine.writeJson(out);
    out << "}";
  }
};

}  // namespace prio::service
