// priod — the long-running prioritization service.
//
// One PrioService owns a fixed pool of worker threads behind a bounded
// work queue and a sharded, fingerprint-keyed LRU result cache. Requests
// (in-memory Digraphs or DAGMan files) are accepted individually or in
// batches; each returns a std::future<Reply>, so callers overlap
// submission with completion and drain results in any order.
//
// Backpressure: the work queue holds at most queue_capacity pending
// requests. When it is full, submissions either block the caller until a
// worker frees a slot (BackpressurePolicy::kBlock — lossless, the
// default) or complete immediately with RequestStatus::kRejected
// (kReject — bounded-latency load shedding for interactive front ends).
// Either way memory stays bounded no matter how fast clients submit.
//
// Caching: a worker first transitively reduces the dag and computes its
// structural fingerprint (dag/fingerprint.h). On a layout-verified cache
// hit the memoized PrioResult is returned without running the heuristic;
// on a miss the worker runs prioritize() with a PrioRequest that carries
// the reduction it already paid for — and memoizes the result. Results are
// held by shared_ptr, so eviction never invalidates an outstanding reply.
//
// Failure: a request whose dag is cyclic (or whose DAGMan file is
// malformed) completes with kFailed and the util::Error message; it never
// tears down a worker.
//
// Deadlines and degradation (DESIGN.md §8): with compute_deadline_s set,
// a request whose heuristic run outlives the deadline is cancelled
// mid-phase and re-served with the paper's §3.1 outdegree-only fallback —
// the reply is kDegraded and still carries a valid priority permutation,
// so callers get a weaker answer instead of a hung or failed request.
// With queue_deadline_s set, a request that waited longer than that in
// the queue is shed (kShed) without computing anything: under overload
// the result would be stale by the time it arrived. A Request (or
// BatchRequest) may additionally carry its own whole-request budget
// (deadline_s, fed from the wire deadline): spent in the queue it
// completes kExpired, and any remainder tightens the compute deadline.
// Every request therefore terminates with kOk, kDegraded, kShed,
// kRejected, kExpired, or kFailed — never a hang.
//
// Payloads (since wire v3) are typed: service::Request carries a tagged
// Payload — kDagmanText (the classic text path) or kBinaryCsr (the BDAG
// binary layout in dag/csr.h, decoded without any text parsing) — and
// the reply's output is rendered in the same kind. BatchRequest carries
// many payloads as one service request with per-item replies. The
// pre-v3 TextRequest API remains as a deprecated, byte-identical shim.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/prio.h"
#include "dag/digraph.h"
#include "obs/trace.h"
#include "service/cache.h"
#include "service/metrics.h"
#include "util/thread_pool.h"

namespace prio::tenant {
class FairQueue;
class TenantRegistry;
}  // namespace prio::tenant

namespace prio::service {

enum class BackpressurePolicy {
  kBlock,   ///< full queue blocks the submitting thread
  kReject,  ///< full queue completes the request with kRejected
};

struct ServiceConfig {
  /// Worker threads (0 = one per hardware thread).
  std::size_t num_threads = 0;
  /// Pending-request bound; the backpressure knob.
  std::size_t queue_capacity = 256;
  BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
  /// Result-cache size in entries (0 disables caching entirely).
  std::size_t cache_capacity = 1024;
  std::size_t cache_shards = 16;
  /// Serialized-response memo for the payload path (the wire protocol),
  /// in entries: a byte-identical Request payload that previously
  /// completed kOk is answered from the stored rendered output, skipping
  /// parse, fingerprint, instrument, and serialize — the per-request
  /// floor that otherwise caps a hot serving loop. Keyed by the exact
  /// (kind, bytes) pair; an entry holds both byte strings (~2x the
  /// request size). 0 disables; cache_capacity == 0 (caching off)
  /// disables it too.
  std::size_t text_cache_capacity = 128;
  /// Parse-result cache in FRONT of the fingerprint cache: payload
  /// (kind, bytes) → parsed dag (DagmanFile + Digraph), sharded LRU.
  /// Where the response memo above needs a byte-identical request AND a
  /// prior kOk completion, this one only needs the same dag bytes — a
  /// repeated payload skips the parser even when the deadline, tenant,
  /// or requested output kind differ. Entries are shared_ptr snapshots,
  /// so eviction never invalidates an in-flight request. 0 disables;
  /// cache_capacity == 0 (caching off) disables it too.
  std::size_t parse_cache_capacity = 256;
  std::size_t parse_cache_shards = 8;
  /// Compute deadline per request in seconds (0 = unbounded). When the
  /// heuristic outlives it, the request degrades to the outdegree-only
  /// fallback and replies kDegraded.
  double compute_deadline_s = 0.0;
  /// Queue-wait deadline in seconds (0 = unbounded). A request that
  /// waited longer is shed (kShed) without computing.
  double queue_deadline_s = 0.0;
  /// Options forwarded to every prioritize() run. When
  /// prio_options.schedule_threads != 1, the service lends its own
  /// request pool to each run's schedule phase (non-blocking trySubmit
  /// helpers): an idle service parallelizes a lone request across the
  /// workers, while a saturated one degrades to serial per-request
  /// scheduling.
  core::PrioOptions prio_options;
  /// Optional tracer (borrowed; must outlive the service). When set,
  /// every request runs under its own trace — a fresh trace id, a
  /// "service.request" root span, and the full pipeline span tree below
  /// it, including the "prio.fallback" span of degraded requests. Null
  /// (the default) keeps the hot path on the disabled-context branch.
  obs::Tracer* tracer = nullptr;
  /// Optional tenant registry (borrowed; must outlive the service).
  /// When set, the work queue becomes a deficit-round-robin weighted-
  /// fair queue (tenant/fair_queue.h) keyed by each request's tenant id,
  /// with per-lane weights read from the registry — DESIGN.md §12. Null
  /// (the default) keeps the single-FIFO BoundedQueue path, bit-for-bit
  /// identical to the pre-tenant service.
  tenant::TenantRegistry* tenants = nullptr;
};

enum class RequestStatus {
  kOk,
  kDegraded,  ///< deadline expired; valid outdegree-fallback priorities
  kRejected,  ///< shed by kReject backpressure; never entered the queue
  kShed,      ///< dropped after exceeding the queue-wait deadline
  kFailed,    ///< error while parsing or scheduling; see Reply::error
  kExpired,   ///< caller-supplied budget spent before compute started
};

/// How a Payload's bytes encode a dag. Mirrors net::PayloadKind (the v3
/// wire payload_kind byte) without depending on the net layer.
enum class PayloadKind : std::uint8_t {
  kDagmanText = 0,  ///< DAGMan input-file text
  kBinaryCsr = 1,   ///< BDAG binary layout (dag/csr.h)
};

/// One dag, as bytes plus the tag saying how to decode them. The typed
/// replacement for the stringly dag_text parameter: the service decodes
/// by tag (text parser or binary-CSR decoder) and renders the reply in
/// the same kind (instrumented text / BPRI priority table).
struct Payload {
  PayloadKind kind = PayloadKind::kDagmanText;
  std::string bytes;

  [[nodiscard]] static Payload text(std::string dag_text) {
    return {PayloadKind::kDagmanText, std::move(dag_text)};
  }
  [[nodiscard]] static Payload binary(std::string bdag_bytes) {
    return {PayloadKind::kBinaryCsr, std::move(bdag_bytes)};
  }
};

struct Reply {
  RequestStatus status = RequestStatus::kOk;
  /// The heuristic result (null unless kOk or kDegraded; kDegraded
  /// carries the fallback schedule/priorities only). Shared with the
  /// cache when kOk.
  std::shared_ptr<const core::PrioResult> result;
  bool cache_hit = false;
  std::uint64_t fingerprint = 0;  ///< structural fingerprint (0 on failure)
  std::uint64_t layout = 0;       ///< layout hash (0 on failure)
  /// For file requests: the input path.
  std::string source;
  /// Error message when status == kFailed.
  std::string error;
  /// For payload requests (the wire-protocol path): the rendered answer
  /// — instrumented DAGMan text (kDagmanText) or a BPRI priority table
  /// (kBinaryCsr), per output_kind. Empty for digraph/file requests.
  std::string output;
  /// How `output` is encoded; always matches the request payload's kind.
  PayloadKind output_kind = PayloadKind::kDagmanText;
  /// BatchRequest only: one reply per item, in submission order. Item
  /// replies carry per-item status/output; the enclosing Reply is the
  /// batch-level disposition (kOk even when individual items failed —
  /// a bad item degrades itself, never the batch).
  std::vector<Reply> items;
  /// kFailed only: the error was transient (util::TransientError) and a
  /// resubmission may succeed — what prio_serve's retry loop keys on.
  bool transient = false;
  /// Submit-to-completion wall clock (queue wait included).
  double latency_s = 0.0;
  /// Trace id of this request's span tree (0 when the service runs
  /// without a tracer) — the join key between a reply and its spans in
  /// the Chrome trace export.
  std::uint64_t trace_id = 0;
  /// The tenant the request was billed to (0 = default).
  std::uint32_t tenant = 0;
};

/// A DAGMan-file request: parse `input_path`, prioritize its dag, and —
/// when `output_path` is non-empty — write the instrumented DAGMan file
/// (jobpriority VARS, Fig. 3) there. Parsing, scheduling, and writing all
/// happen on the worker thread.
struct FileRequest {
  std::string input_path;
  std::string output_path;
  /// Tenant id for fair-queue routing and accounting (0 = default).
  std::uint32_t tenant = 0;
};

/// An in-memory typed request — the wire-protocol path (src/net/):
/// decode `payload` by its kind, prioritize, and render the answer into
/// Reply::output in the same kind. Rescue dags (DONE jobs in text
/// payloads) are handled exactly as in file requests. No filesystem
/// access on the worker.
struct Request {
  Payload payload;
  /// Nonzero adopts this trace id for the request's span tree instead of
  /// allocating a fresh one — how a client-side trace id propagates
  /// across the wire into the server's TraceContext.
  std::uint64_t trace_id = 0;
  /// Tenant id carried by the wire frame (0 = default): selects the
  /// request's fair-queue lane when the service has a tenant registry.
  std::uint32_t tenant = 0;
  /// Remaining whole-request budget in seconds, measured from submit
  /// (0 = none). The wire deadline lands here after the server deducts
  /// the time the frame already spent in flight and parked. A request
  /// still queued when the budget runs out completes kExpired without
  /// computing; otherwise the leftover budget tightens the compute
  /// deadline (CancelToken), so a request can never overrun the budget
  /// by more than one cancellation poll.
  double deadline_s = 0.0;
};

/// Many independent dags submitted as ONE service request (the v3
/// kBatchRequest frame): one queue slot, one admission decision, one
/// Reply whose `items` carry the per-dag results in order. Items are
/// served serially on the worker that claimed the batch; the shared
/// budget is re-checked per item, so items past an expired deadline
/// complete kExpired instead of computing.
struct BatchRequest {
  std::vector<Payload> items;
  std::uint64_t trace_id = 0;
  std::uint32_t tenant = 0;
  double deadline_s = 0.0;
};

/// Pre-v3 text request, kept as a shim over Request/Payload::text().
/// Byte-identical behavior is asserted in tests/test_binary_wire.cpp.
struct [[deprecated(
    "use service::Request with Payload::text()")]] TextRequest {
  std::string dag_text;
  std::uint64_t trace_id = 0;
  std::uint32_t tenant = 0;
  double deadline_s = 0.0;
};

class PrioService {
 public:
  explicit PrioService(const ServiceConfig& config = {});

  PrioService(const PrioService&) = delete;
  PrioService& operator=(const PrioService&) = delete;

  /// Drains the queue and joins the workers.
  ~PrioService();

  /// Submits one in-memory dag. Under kBlock this may block; under
  /// kReject a full queue yields an already-satisfied kRejected future.
  std::future<Reply> submit(dag::Digraph g);

  /// Submits one DAGMan file request.
  std::future<Reply> submit(FileRequest request);

  /// Submits one typed payload request (the wire-protocol path).
  std::future<Reply> submit(Request request);

  /// Submits one batch of payloads as a single service request; the
  /// Reply's `items` carry the per-dag results in order.
  std::future<Reply> submit(BatchRequest request);

  /// Callback flavor of submit(Request) for event-driven callers (the
  /// net server, which cannot block on futures). `done` runs exactly once:
  /// on the worker thread that completed the request, or on the calling
  /// thread when a full queue rejects it under kReject. It must be cheap
  /// and must not throw — typically it hands the Reply to an event loop.
  void submitCallback(Request request, std::function<void(Reply)> done);

  /// Callback flavor of submit(BatchRequest).
  void submitCallback(BatchRequest request, std::function<void(Reply)> done);

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  /// Pre-v3 shims: forward to the typed Request API, byte-identically.
  [[deprecated("use submit(service::Request)")]] std::future<Reply> submit(
      TextRequest request);
  [[deprecated(
      "use submitCallback(service::Request, done)")]] void
  submitCallback(TextRequest request, std::function<void(Reply)> done);
#pragma GCC diagnostic pop

  /// Batch submission, in order. Under kBlock the call blocks until the
  /// whole batch is enqueued; replies complete as workers finish.
  std::vector<std::future<Reply>> submitBatch(std::vector<dag::Digraph> dags);
  std::vector<std::future<Reply>> submitBatch(std::vector<FileRequest> files);

  /// Synchronous single-request path: same fingerprint/cache/compute
  /// pipeline the workers run, on the calling thread. The serial baseline
  /// in benches and the parity oracle in tests.
  Reply prioritizeNow(const dag::Digraph& g);

  /// Stops accepting work, drains pending requests, joins workers.
  /// Idempotent; called by the destructor.
  void shutdown();

  /// Records `n` retry resubmissions (called by prio_serve's backoff
  /// loop so retries land in the same metrics export).
  void noteRetries(std::uint64_t n) { metrics_.retries.add(n); }

  [[nodiscard]] const ServiceMetrics& metrics() const { return metrics_; }
  [[nodiscard]] const ServiceConfig& config() const { return config_; }
  [[nodiscard]] std::size_t numThreads() const { return pool_.numThreads(); }
  [[nodiscard]] std::size_t queueHighWater() const {
    return pool_.queueHighWater();
  }
  [[nodiscard]] const ResultCache* cache() const { return cache_.get(); }
  /// The fair queue when configured with a tenant registry, else null —
  /// how the server reads per-tenant queue depths for GET /tenants.
  [[nodiscard]] const tenant::FairQueue* fairQueue() const {
    return fair_.get();
  }

  /// Metrics as a JSON object, queue high-water refreshed.
  void writeMetricsJson(std::ostream& out);

  /// The same snapshot in Prometheus text exposition format (the body
  /// behind `prio_serve --metrics-text`), queue high-water refreshed.
  void writePrometheusText(std::ostream& out);

 private:
  struct PendingReply;

  static std::size_t resolveThreads(std::size_t requested) {
    if (requested > 0) return requested;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }

  /// One per-request trace context when the service has a tracer, the
  /// disabled context otherwise. `adopt_id` nonzero reuses a caller-
  /// provided (wire-propagated) trace id instead of allocating fresh.
  [[nodiscard]] obs::TraceContext beginRequestTrace(
      std::uint64_t adopt_id = 0) const {
    if (config_.tracer == nullptr) return obs::TraceContext{};
    return adopt_id != 0 ? obs::TraceContext(config_.tracer, adopt_id)
                         : config_.tracer->beginTrace();
  }

  /// Fingerprint + cache lookup + compute-on-miss. Fills everything in
  /// `reply` except latency. Exceptions escape to the caller. `trace` is
  /// the request's span context (disabled when the service has no
  /// tracer). `budget_s` > 0 is the remaining whole-request budget; it
  /// tightens the configured compute deadline when smaller.
  void serveDigraph(const dag::Digraph& g, Reply& reply,
                    const obs::TraceContext& trace, double budget_s = 0.0);
  /// Full file pipeline (parse, serve, instrument, write).
  void serveFile(const FileRequest& request, Reply& reply,
                 const obs::TraceContext& trace);
  /// Full payload pipeline: response-memo probe, parse-cache probe,
  /// decode by kind, serve, render the output in the payload's kind.
  void servePayload(const Request& request, Reply& reply,
                    const obs::TraceContext& trace, double budget_s = 0.0);
  /// Serves every item of a batch serially on this worker, collecting
  /// per-item replies into reply.items.
  void serveBatch(const BatchRequest& request, Reply& reply,
                  const obs::TraceContext& trace, double budget_s = 0.0);
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  /// Pre-v3 shim over servePayload(); asserted byte-identical in tests.
  [[deprecated("use servePayload()")]] void serveText(
      const TextRequest& request, Reply& reply,
      const obs::TraceContext& trace, double budget_s = 0.0);
#pragma GCC diagnostic pop

  /// Shared submission path: runs `request` on the pool and delivers the
  /// Reply through `complete` (worker thread, or the calling thread on
  /// rejection).
  template <typename RequestT>
  void enqueueWith(RequestT request, std::function<void(Reply)> complete);

  template <typename RequestT>
  std::future<Reply> enqueue(RequestT request);

  struct TextCache;
  struct ParseCache;

  ServiceConfig config_;
  ServiceMetrics metrics_;
  std::unique_ptr<ResultCache> cache_;  ///< null when caching disabled
  /// Serialized-response memo for payload requests; null when disabled.
  std::unique_ptr<TextCache> text_cache_;
  /// Payload-bytes → parsed-dag cache; null when disabled.
  std::unique_ptr<ParseCache> parse_cache_;
  /// Weighted-fair work queue; null without a tenant registry (the pool
  /// then owns a plain FIFO). Shared with pool_, which must outlive the
  /// workers popping from it.
  std::shared_ptr<tenant::FairQueue> fair_;
  util::ThreadPool pool_;  ///< last member: workers die first
};

}  // namespace prio::service
