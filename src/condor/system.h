// A discrete-event model of the Condor machinery prio integrates with
// (§3.2): the DAGMan process holding a dag, the schedd's job queue, and
// a negotiator that matches queued jobs to machine slots on a periodic
// cycle ("one way to design a server is to make it periodically check
// for requests", §4.1).
//
// The model reproduces the §3.2 integration trade-off faithfully:
//   - DAGMan forwards eligible jobs to the schedd; the `max_forwarded`
//     knob is condor_submit_dag's -maxjobs.
//   - The negotiator assigns idle slots to queued jobs in Condor's order:
//     priority attribute descending, then queue date ascending — so the
//     jobpriority instrumentation only takes effect for jobs that have
//     been forwarded.
//   - Every job resident in the schedd (idle or running) holds its
//     staging sandbox; peak_staging_bytes records the §3.2 concern that
//     forwarding everything "may create an unacceptably large staging
//     file".
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "dag/digraph.h"
#include "stats/rng.h"

namespace prio::condor {

struct CondorOptions {
  /// Machine slots available to this pool.
  std::size_t slots = 16;
  /// Negotiation cycle period (time units; job runtimes average 1).
  double negotiation_period = 0.25;
  /// DAGMan -maxjobs: cap on jobs resident in the schedd (idle +
  /// running). 0 = forward every eligible job immediately (the
  /// configuration prio requires).
  std::size_t max_forwarded = 0;
  /// Sandbox bytes staged per job while it is resident in the schedd.
  std::size_t staging_bytes_per_job = 5 * 1024 * 1024;
  /// Job runtime distribution (normal, as in §4.1).
  double job_runtime_mean = 1.0;
  double job_runtime_stddev = 0.1;
  /// Use the priority attribute when ordering the queue; false models
  /// un-instrumented files (pure FIFO by queue date).
  bool use_priorities = true;
  /// The paper's proposed fix for the staging problem (§3.2: "that
  /// shortcoming may be alleviated by modifying Condor to enable
  /// prioritizing jobs in the DAGMan queue"): when throttled, DAGMan
  /// forwards its highest-priority eligible jobs first instead of the
  /// oldest, so a small window no longer defeats the PRIO order.
  bool prioritize_dagman_queue = false;
  /// Competing load from other pool users ("these workers may meanwhile
  /// be intercepted by other computations", §4.1): independent unit jobs
  /// arriving with this mean rate (jobs per time unit; 0 = pool is
  /// dedicated). The negotiator fair-shares slots between the dag user
  /// and the background user, alternating picks within a cycle.
  double background_job_rate = 0.0;
};

struct CondorRunResult {
  double makespan = 0.0;
  /// Peak bytes staged at the schedd at any instant.
  std::size_t peak_staging_bytes = 0;
  /// Negotiation cycles until the last job was matched.
  std::uint64_t negotiation_cycles = 0;
  /// Cycles where idle slots existed but the schedd queue was empty
  /// while the dag was unfinished (the "gridlock" symptom).
  std::uint64_t starved_cycles = 0;
  /// Mean fraction of slots busy over the makespan.
  double slot_utilization = 0.0;
  /// Background-user jobs that ran before the dag finished.
  std::uint64_t background_jobs_run = 0;
};

/// Runs the dag through the DAGMan -> schedd -> negotiator pipeline.
/// `priorities` must be empty (all jobs priority 0, FIFO by queue date)
/// or one value per node (PrioResult::priority).
[[nodiscard]] CondorRunResult runCondorSystem(
    const dag::Digraph& g, std::span<const std::size_t> priorities,
    const CondorOptions& options, stats::Rng& rng);

}  // namespace prio::condor
