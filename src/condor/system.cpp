#include "condor/system.h"

#include <algorithm>
#include <limits>
#include <deque>
#include <queue>
#include <set>
#include <vector>

#include "stats/distributions.h"
#include "util/check.h"

namespace prio::condor {

namespace {

using dag::NodeId;

// The schedd's idle-job queue: Condor serves the highest priority
// attribute first, breaking ties by queue date (earlier first). Queue
// dates are modeled by a monotonically increasing sequence number.
struct QueuedJob {
  std::size_t priority;
  std::uint64_t qdate;
  NodeId job;
  bool operator<(const QueuedJob& o) const {
    if (priority != o.priority) return priority > o.priority;
    return qdate < o.qdate;
  }
};

}  // namespace

CondorRunResult runCondorSystem(const dag::Digraph& g,
                                std::span<const std::size_t> priorities,
                                const CondorOptions& options,
                                stats::Rng& rng) {
  const std::size_t n = g.numNodes();
  PRIO_CHECK_MSG(options.slots >= 1, "need at least one slot");
  PRIO_CHECK_MSG(options.negotiation_period > 0.0,
                 "negotiation period must be positive");
  PRIO_CHECK_MSG(priorities.empty() || priorities.size() == n,
                 "priorities must be empty or one per job");

  CondorRunResult out;
  if (n == 0) return out;

  stats::JobRuntime runtime(options.job_runtime_mean,
                            options.job_runtime_stddev);

  const auto priorityOf = [&](NodeId u) -> std::size_t {
    if (!options.use_priorities || priorities.empty()) return 0;
    return priorities[u];
  };

  // --- DAGMan process state ---
  // The DAGMan queue holds eligible jobs not yet forwarded. Stock DAGMan
  // forwards in eligibility order; with prioritize_dagman_queue set (the
  // paper's proposed Condor modification) it forwards by jobpriority.
  std::vector<std::size_t> pending(n);
  std::uint64_t eligible_counter = 0;
  std::set<QueuedJob> dagman_queue;
  const auto enqueueEligible = [&](NodeId u) {
    const std::size_t key =
        options.prioritize_dagman_queue ? priorityOf(u) : 0;
    dagman_queue.insert({key, eligible_counter++, u});
  };
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) enqueueEligible(u);
  }

  // --- schedd state ---
  std::set<QueuedJob> idle_jobs;
  std::uint64_t qdate_counter = 0;
  std::size_t resident = 0;  // idle + running jobs at the schedd

  const auto forward = [&] {
    while (!dagman_queue.empty() &&
           (options.max_forwarded == 0 ||
            resident < options.max_forwarded)) {
      const NodeId u = dagman_queue.begin()->job;
      dagman_queue.erase(dagman_queue.begin());
      idle_jobs.insert({priorityOf(u), qdate_counter++, u});
      ++resident;
    }
    out.peak_staging_bytes =
        std::max(out.peak_staging_bytes,
                 resident * options.staging_bytes_per_job);
  };

  // --- pool state ---
  // Background jobs use the sentinel id n in the completion heap.
  const NodeId kBackground = static_cast<NodeId>(n);
  using Completion = std::pair<double, NodeId>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running;
  std::size_t executed = 0, matched = 0;
  std::size_t running_dag = 0, running_bg = 0, bg_idle = 0;
  double busy_time = 0.0;
  double next_negotiation = 0.0;
  const double kNever = std::numeric_limits<double>::infinity();
  const bool has_background = options.background_job_rate > 0.0;
  stats::Exponential bg_interarrival(
      has_background ? 1.0 / options.background_job_rate : 1.0);
  double next_bg_arrival =
      has_background ? bg_interarrival.sample(rng) : kNever;

  forward();
  while (executed < n) {
    const double t_completion =
        running.empty() ? kNever : running.top().first;
    const double t_negotiation = matched < n ? next_negotiation : kNever;
    const double t_background = matched < n ? next_bg_arrival : kNever;

    if (t_completion <= t_negotiation && t_completion <= t_background) {
      const auto [t, u] = running.top();
      running.pop();
      if (u == kBackground) {
        --running_bg;
        continue;  // a competing computation finished; nothing else
      }
      --running_dag;
      ++executed;
      --resident;  // the sandbox is cleaned up on completion
      out.makespan = std::max(out.makespan, t);
      for (NodeId v : g.children(u)) {
        if (--pending[v] == 0) enqueueEligible(v);
      }
      forward();
    } else if (t_background < t_negotiation) {
      ++bg_idle;
      next_bg_arrival = t_background + bg_interarrival.sample(rng);
    } else {
      const double t = t_negotiation;
      ++out.negotiation_cycles;
      if (idle_jobs.empty() && running.size() < options.slots) {
        ++out.starved_cycles;
      }
      // Fair-share matching: while slots are free, give the next match
      // to the user with fewer running jobs (ties favor the dag user).
      while (running.size() < options.slots &&
             (!idle_jobs.empty() || bg_idle > 0)) {
        const bool pick_background =
            bg_idle > 0 &&
            (idle_jobs.empty() || running_bg < running_dag);
        const double d = runtime.sample(rng);
        busy_time += d;
        if (pick_background) {
          --bg_idle;
          ++running_bg;
          ++out.background_jobs_run;
          running.push({t + d, kBackground});
        } else {
          const QueuedJob q = *idle_jobs.begin();
          idle_jobs.erase(idle_jobs.begin());
          ++running_dag;
          running.push({t + d, q.job});
          ++matched;
        }
      }
      next_negotiation = t + options.negotiation_period;
    }
  }

  out.slot_utilization =
      out.makespan > 0.0
          ? busy_time /
                (static_cast<double>(options.slots) * out.makespan)
          : 0.0;
  return out;
}

}  // namespace prio::condor
