#include "tenant/fair_queue.h"

#include <algorithm>
#include <utility>

#include "tenant/registry.h"
#include "util/check.h"

namespace prio::tenant {

FairQueue::FairQueue(std::size_t capacity, const TenantRegistry* registry)
    : capacity_(capacity), registry_(registry) {
  PRIO_CHECK_MSG(capacity >= 1, "FairQueue capacity must be >= 1");
}

void FairQueue::activateLocked(std::uint32_t tenant, Lane& lane) {
  if (lane.active) return;
  // Weight is sampled per activation, not per push: cheap, and a
  // reconfigured weight applies from the tenant's next backlog on.
  lane.weight =
      registry_ == nullptr ? 1 : std::max(1u, registry_->weight(tenant));
  lane.active = true;
  ring_.push_back(tenant);
}

void FairQueue::enqueueLocked(std::uint32_t tenant, Task&& task) {
  Lane& lane = lanes_[tenant];
  lane.tasks.push_back(std::move(task));
  activateLocked(tenant, lane);
  ++size_;
  if (size_ > high_water_) high_water_ = size_;
}

std::optional<FairQueue::Task> FairQueue::dequeueLocked() {
  if (ring_.empty()) return std::nullopt;
  const std::uint32_t tenant = ring_.front();
  Lane& lane = lanes_[tenant];
  // A fresh visit to the head lane earns `weight` pops before the ring
  // rotates — the whole DRR algorithm, with every task costing 1.
  if (head_budget_ == 0) head_budget_ = std::max(1u, lane.weight);
  Task task = std::move(lane.tasks.front());
  lane.tasks.pop_front();
  --size_;
  --head_budget_;
  if (lane.tasks.empty()) {
    // Lane ran dry: leave the ring and forfeit the rest of the budget.
    lane.active = false;
    ring_.pop_front();
    head_budget_ = 0;
  } else if (head_budget_ == 0) {
    // Budget spent: rotate to the tail; the next head re-grants lazily.
    ring_.pop_front();
    ring_.push_back(tenant);
  }
  return task;
}

bool FairQueue::push(std::uint32_t tenant, Task task) {
  std::unique_lock<std::mutex> lock(mutex_);
  not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
  if (closed_) return false;
  enqueueLocked(tenant, std::move(task));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

bool FairQueue::tryPush(std::uint32_t tenant, Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ || size_ == capacity_) return false;
    enqueueLocked(tenant, std::move(task));
  }
  not_empty_.notify_one();
  return true;
}

std::optional<FairQueue::Task> FairQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
  if (size_ == 0) return std::nullopt;  // closed and drained
  std::optional<Task> task = dequeueLocked();
  lock.unlock();
  not_full_.notify_one();
  return task;
}

void FairQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t FairQueue::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return size_;
}

std::size_t FairQueue::highWater() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return high_water_;
}

std::size_t FairQueue::queuedFor(std::uint32_t tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = lanes_.find(tenant);
  return it == lanes_.end() ? 0 : it->second.tasks.size();
}

std::size_t FairQueue::numLanes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.size();
}

}  // namespace prio::tenant
