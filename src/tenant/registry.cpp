#include "tenant/registry.h"

#include <algorithm>
#include <iomanip>
#include <utility>

namespace prio::tenant {

namespace {

std::string displayName(std::uint32_t id, const TenantConfig& config) {
  if (!config.name.empty()) return config.name;
  if (id == kDefaultTenantId) return "default";
  return "tenant-" + std::to_string(id);
}

/// Same bucketing as obs::Histogram::record — bucket i counts samples in
/// [2^i, 2^(i+1)) microseconds — so per-tenant quantiles are directly
/// comparable with the service-wide latency families.
std::size_t latencyBucket(double seconds, std::uint64_t& ticks_out) {
  const double us = seconds * 1e6;
  const std::uint64_t ticks = us < 1.0 ? 0 : static_cast<std::uint64_t>(us);
  ticks_out = ticks;
  std::size_t bucket = 0;
  while (bucket + 1 < obs::Histogram::kBuckets &&
         (std::uint64_t{1} << (bucket + 1)) <= ticks) {
    ++bucket;
  }
  return bucket;
}

void jsonEscape(std::ostream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << "\\u00" << std::hex << std::setw(2) << std::setfill('0')
              << static_cast<int>(static_cast<unsigned char>(c)) << std::dec
              << std::setfill(' ');
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

/// Prometheus label values escape backslash, double-quote, and newline.
void promLabelEscape(std::ostream& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '\\': out << "\\\\"; break;
      case '"': out << "\\\""; break;
      case '\n': out << "\\n"; break;
      default: out << c;
    }
  }
}

}  // namespace

TenantRegistry::TenantRegistry(TenantConfig defaults)
    : defaults_(std::move(defaults)) {
  // The default tenant always exists: v1 frames and untagged requests
  // land here, and introspection surfaces never render an empty table.
  std::lock_guard<std::mutex> lock(mutex_);
  ensureLocked(kDefaultTenantId);
}

double TenantRegistry::burstOf(const TenantConfig& config) const {
  if (config.burst > 0.0) return config.burst;
  return std::max(1.0, config.rate_per_s);
}

TenantRegistry::State& TenantRegistry::ensureLocked(std::uint32_t id) const {
  auto it = tenants_.find(id);
  if (it != tenants_.end()) return it->second;
  State state;
  state.config = defaults_;
  state.tokens = burstOf(state.config);  // a fresh tenant starts with a
                                         // full bucket
  return tenants_.emplace(id, std::move(state)).first->second;
}

void TenantRegistry::configure(std::uint32_t id, TenantConfig config) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& state = ensureLocked(id);
  state.config = std::move(config);
  state.tokens = burstOf(state.config);
  state.refilled_once = false;
}

std::uint32_t TenantRegistry::weight(std::uint32_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const State& state = ensureLocked(id);
  return std::max<std::uint32_t>(1, state.config.weight);
}

std::size_t TenantRegistry::numTenants() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return tenants_.size();
}

Admission TenantRegistry::tryAdmit(std::uint32_t id, double now_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& state = ensureLocked(id);

  if (state.config.rate_per_s > 0.0) {
    // Lazy refill against the caller's clock. The first call anchors the
    // epoch so the bucket never over-credits for time before traffic.
    if (!state.refilled_once) {
      state.last_refill_s = now_s;
      state.refilled_once = true;
    } else if (now_s > state.last_refill_s) {
      state.tokens =
          std::min(burstOf(state.config),
                   state.tokens + (now_s - state.last_refill_s) *
                                      state.config.rate_per_s);
      state.last_refill_s = now_s;
    }
  }

  // The in-flight cap is checked before the bucket so a capped tenant
  // does not burn tokens on requests that cannot start anyway.
  if (state.config.max_in_flight > 0 &&
      state.in_flight >= state.config.max_in_flight) {
    return Admission::kInFlightCap;
  }
  if (state.config.rate_per_s > 0.0) {
    if (state.tokens < 1.0) return Admission::kQuota;
    state.tokens -= 1.0;
  }
  ++state.in_flight;
  ++state.admitted;
  return Admission::kAdmit;
}

void TenantRegistry::recordRejected(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ensureLocked(id).rejected;
}

void TenantRegistry::recordExpired(std::uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++ensureLocked(id).expired;
}

void TenantRegistry::recordReply(std::uint32_t id, Outcome outcome,
                                 bool cache_hit, double latency_s) {
  std::lock_guard<std::mutex> lock(mutex_);
  State& state = ensureLocked(id);
  if (state.in_flight > 0) --state.in_flight;
  switch (outcome) {
    case Outcome::kOk:
      ++state.completed;
      if (cache_hit) {
        ++state.cache_hits;
      } else {
        ++state.cache_misses;
      }
      break;
    case Outcome::kDegraded:
      ++state.completed;
      ++state.degraded;
      ++state.cache_misses;  // a degraded run always computed
      break;
    case Outcome::kRejected: ++state.rejected; break;
    case Outcome::kShed: ++state.shed; break;
    case Outcome::kFailed: ++state.failed; break;
    case Outcome::kExpired: ++state.expired; break;
  }
  std::uint64_t ticks = 0;
  const std::size_t bucket = latencyBucket(latency_s, ticks);
  ++state.latency_buckets[bucket];
  ++state.latency_count;
  state.latency_sum_us += ticks;
  state.latency_max_us = std::max(state.latency_max_us, ticks);
}

std::vector<TenantSnapshot> TenantRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantSnapshot> out;
  out.reserve(tenants_.size());
  for (const auto& [id, state] : tenants_) {
    TenantSnapshot s;
    s.id = id;
    s.name = displayName(id, state.config);
    s.weight = std::max<std::uint32_t>(1, state.config.weight);
    s.rate_per_s = state.config.rate_per_s;
    s.burst = state.config.rate_per_s > 0.0 ? burstOf(state.config) : 0.0;
    s.max_in_flight = state.config.max_in_flight;
    s.tokens = state.config.rate_per_s > 0.0 ? state.tokens : 0.0;
    s.admitted = state.admitted;
    s.rejected = state.rejected;
    s.shed = state.shed;
    s.expired = state.expired;
    s.completed = state.completed;
    s.degraded = state.degraded;
    s.failed = state.failed;
    s.cache_hits = state.cache_hits;
    s.cache_misses = state.cache_misses;
    s.in_flight = state.in_flight;
    s.latency.name = "tenant.latency";
    s.latency.buckets = state.latency_buckets;
    s.latency.count = state.latency_count;
    s.latency.sum_us = state.latency_sum_us;
    s.latency.max_us = state.latency_max_us;
    out.push_back(std::move(s));
  }
  return out;
}

void writeTenantsJson(std::ostream& out,
                      const std::vector<TenantSnapshot>& tenants) {
  out << "{\"tenants\":[";
  bool first = true;
  for (const TenantSnapshot& t : tenants) {
    if (!first) out << ',';
    first = false;
    out << "{\"id\":" << t.id << ",\"name\":";
    jsonEscape(out, t.name);
    out << ",\"weight\":" << t.weight << ",\"rate_per_s\":" << t.rate_per_s
        << ",\"burst\":" << t.burst << ",\"max_in_flight\":" << t.max_in_flight
        << ",\"tokens\":" << t.tokens << ",\"queued\":" << t.queued
        << ",\"in_flight\":" << t.in_flight << ",\"admitted\":" << t.admitted
        << ",\"rejected\":" << t.rejected << ",\"shed\":" << t.shed
        << ",\"expired\":" << t.expired
        << ",\"completed\":" << t.completed << ",\"degraded\":" << t.degraded
        << ",\"failed\":" << t.failed << ",\"cache_hits\":" << t.cache_hits
        << ",\"cache_misses\":" << t.cache_misses
        << ",\"cache_hit_rate\":" << t.cacheHitRate()
        << ",\"latency_count\":" << t.latency.count
        << ",\"latency_mean_s\":" << t.latency.meanSeconds()
        << ",\"latency_p50_s\":" << t.latency.quantileSeconds(0.50)
        << ",\"latency_p99_s\":" << t.latency.quantileSeconds(0.99)
        << ",\"latency_max_s\":" << t.latency.maxSeconds() << "}";
  }
  out << "]}";
}

void writeTenantsPrometheus(std::ostream& out,
                            const std::vector<TenantSnapshot>& tenants) {
  struct Family {
    const char* name;
    const char* type;
    const char* help;
    double (*value)(const TenantSnapshot&);
  };
  static constexpr Family kFamilies[] = {
      {"prio_tenant_weight", "gauge", "DRR service share",
       [](const TenantSnapshot& t) { return static_cast<double>(t.weight); }},
      {"prio_tenant_queued", "gauge", "tasks waiting in the fair queue",
       [](const TenantSnapshot& t) { return static_cast<double>(t.queued); }},
      {"prio_tenant_in_flight", "gauge", "admitted requests not yet answered",
       [](const TenantSnapshot& t) {
         return static_cast<double>(t.in_flight);
       }},
      {"prio_tenant_admitted_total", "counter", "requests past admission",
       [](const TenantSnapshot& t) {
         return static_cast<double>(t.admitted);
       }},
      {"prio_tenant_rejected_total", "counter",
       "requests denied by gate or quota",
       [](const TenantSnapshot& t) {
         return static_cast<double>(t.rejected);
       }},
      {"prio_tenant_shed_total", "counter", "queue-deadline sheds",
       [](const TenantSnapshot& t) { return static_cast<double>(t.shed); }},
      {"prio_tenant_expired_total", "counter",
       "wire deadlines spent before compute",
       [](const TenantSnapshot& t) {
         return static_cast<double>(t.expired);
       }},
      {"prio_tenant_completed_total", "counter", "kOk and kDegraded replies",
       [](const TenantSnapshot& t) {
         return static_cast<double>(t.completed);
       }},
      {"prio_tenant_degraded_total", "counter", "deadline-degraded replies",
       [](const TenantSnapshot& t) {
         return static_cast<double>(t.degraded);
       }},
      {"prio_tenant_failed_total", "counter", "failed replies",
       [](const TenantSnapshot& t) { return static_cast<double>(t.failed); }},
      {"prio_tenant_cache_hits_total", "counter", "result-cache hits",
       [](const TenantSnapshot& t) {
         return static_cast<double>(t.cache_hits);
       }},
      {"prio_tenant_cache_misses_total", "counter", "result-cache misses",
       [](const TenantSnapshot& t) {
         return static_cast<double>(t.cache_misses);
       }},
      {"prio_tenant_latency_p50_seconds", "gauge", "median request latency",
       [](const TenantSnapshot& t) { return t.latency.quantileSeconds(0.50); }},
      {"prio_tenant_latency_p99_seconds", "gauge", "p99 request latency",
       [](const TenantSnapshot& t) { return t.latency.quantileSeconds(0.99); }},
  };
  for (const Family& family : kFamilies) {
    out << "# HELP " << family.name << " " << family.help << "\n";
    out << "# TYPE " << family.name << " " << family.type << "\n";
    for (const TenantSnapshot& t : tenants) {
      out << family.name << "{tenant=\"" << t.id << "\",tenant_name=\"";
      promLabelEscape(out, t.name);
      out << "\"} " << family.value(t) << "\n";
    }
  }
}

}  // namespace prio::tenant
