// Deficit-round-robin weighted-fair task queue (DESIGN.md §12).
//
// A util::TaskQueue backend that replaces the service's single FIFO with
// one FIFO lane per tenant plus a round-robin ring over the lanes that
// currently have work. Each time a lane reaches the head of the ring it
// is granted a budget of `weight` pops (every prioritize() task costs 1 —
// the classic DRR quantum degenerates to a task count when all packets
// are the same size); once the budget is spent, or the lane runs dry, the
// ring rotates. Long-run service share is therefore weight_i / sum of
// weights over backlogged tenants, and no tenant can be starved: with W
// the total weight of the other active lanes, a queued task waits at most
// W pops before its lane is visited again — the bound the starvation test
// asserts.
//
// Parity: a single active tenant always holds the ring head, so pops are
// exactly its lane's FIFO order — byte-identical behaviour to the PR 1-5
// BoundedQueue path, which is what keeps untenanted traffic on the old
// contract.
//
// Capacity is GLOBAL (sum over lanes), matching BoundedQueue's bound, so
// ServiceConfig::queue_capacity keeps its meaning; per-tenant backlog is
// bounded by admission (token bucket, max_in_flight) in the registry, not
// here. Weights are read from the registry when a lane activates, so a
// reconfigured weight takes effect the next time that tenant has work.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "util/task_queue.h"

namespace prio::tenant {

class TenantRegistry;

class FairQueue final : public util::TaskQueue {
 public:
  /// `registry` (borrowed, may be null, must outlive the queue) supplies
  /// per-tenant weights; without one every lane weighs 1 (pure
  /// round-robin).
  explicit FairQueue(std::size_t capacity,
                     const TenantRegistry* registry = nullptr);

  bool push(std::uint32_t tenant, Task task) override;
  bool tryPush(std::uint32_t tenant, Task task) override;
  std::optional<Task> pop() override;
  void close() override;

  [[nodiscard]] std::size_t size() const override;
  [[nodiscard]] std::size_t capacity() const noexcept override {
    return capacity_;
  }
  [[nodiscard]] std::size_t highWater() const override;

  /// Tasks currently queued for one tenant (the `queued` column of
  /// GET /tenants).
  [[nodiscard]] std::size_t queuedFor(std::uint32_t tenant) const;

  /// Lanes ever created (tenants seen).
  [[nodiscard]] std::size_t numLanes() const;

 private:
  struct Lane {
    std::deque<Task> tasks;
    std::uint32_t weight = 1;
    bool active = false;  ///< somewhere in ring_
  };

  /// Appends the lane to the ring if it has work but is not queued for
  /// service yet; refreshes its weight from the registry.
  void activateLocked(std::uint32_t tenant, Lane& lane);
  void enqueueLocked(std::uint32_t tenant, Task&& task);
  std::optional<Task> dequeueLocked();

  const std::size_t capacity_;
  const TenantRegistry* registry_;

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::unordered_map<std::uint32_t, Lane> lanes_;
  std::deque<std::uint32_t> ring_;  ///< active lanes in service order
  /// Pops left in the ring head's current visit; 0 forces a re-grant
  /// when the head is next served.
  std::uint32_t head_budget_ = 0;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace prio::tenant
