// The tenant table behind multi-tenant serving (DESIGN.md §12).
//
// A tenant is whoever a request is billed to: every wire-protocol v2
// frame carries a u32 tenant id (v1 frames map to tenant 0, "default"),
// and the registry keys per-tenant policy and accounting off that id:
//
//   policy   — DRR weight (the tenant's share of worker time, read by
//              tenant::FairQueue), a token-bucket admission quota
//              (rate_per_s + burst; 0 = unmetered), and a max-in-flight
//              cap (0 = unlimited). Admission maps onto the server's
//              existing gate: a denied request is answered kRejected
//              under kReject backpressure or parked under kBlock.
//   stats    — admitted / rejected / shed / completed / degraded /
//              failed counters, cache hits and misses, in-flight and
//              queued depths, and a power-of-two-microsecond latency
//              histogram (same bucketing as obs::Histogram, so p50/p99
//              semantics match the service-wide families).
//
// Unknown tenant ids self-register with the default config on first
// touch — operators opt INTO limits per tenant; an unconfigured tenant is
// simply accounted, never dropped. snapshot() feeds both the GET /tenants
// JSON document and the prio_tenant_* Prometheus families.
//
// Time is caller-supplied (monotonic seconds) so the token bucket is
// deterministic under test. One mutex over an ordered map is deliberate:
// admission runs once per request on the server's loop thread, far off
// any per-sample hot path, and the ordering gives stable JSON output.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace prio::tenant {

inline constexpr std::uint32_t kDefaultTenantId = 0;

/// Per-tenant policy. The zero-value of every limit means "none".
struct TenantConfig {
  /// Display name; empty derives "default" (id 0) or "tenant-<id>".
  std::string name;
  /// Deficit-round-robin service share relative to other tenants with
  /// queued work (FairQueue serves `weight` tasks per round). 0 acts as 1.
  std::uint32_t weight = 1;
  /// Token-bucket refill rate in requests/second (0 = unmetered).
  double rate_per_s = 0.0;
  /// Bucket depth in requests; 0 derives max(1, rate_per_s). Admitting a
  /// request costs one token, so burst bounds how far a tenant can run
  /// ahead of its sustained rate.
  double burst = 0.0;
  /// Concurrent admitted-but-unanswered requests (0 = unlimited).
  std::size_t max_in_flight = 0;
};

/// tryAdmit() verdict.
enum class Admission {
  kAdmit,        ///< admitted; in-flight slot taken, one token consumed
  kQuota,        ///< token bucket empty — retry after refill
  kInFlightCap,  ///< max_in_flight reached — retry after a completion
};

/// How a request left the service — the tenant-level mirror of
/// service::RequestStatus, kept wire-independent so src/tenant/ stays
/// below src/service/ in the layering.
enum class Outcome {
  kOk,
  kDegraded,
  kRejected,
  kShed,
  kFailed,
  kExpired,  ///< wire deadline spent before compute could start
};

/// Point-in-time copy of one tenant's config and accounting. `queued` is
/// filled by the caller that owns the fair queue (the registry does not
/// see queue contents).
struct TenantSnapshot {
  std::uint32_t id = 0;
  std::string name;
  std::uint32_t weight = 1;
  double rate_per_s = 0.0;
  double burst = 0.0;
  std::size_t max_in_flight = 0;
  double tokens = 0.0;  ///< current bucket level (0 when unmetered)

  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;  ///< wire deadlines spent before compute
  std::uint64_t completed = 0;  ///< kOk + kDegraded replies
  std::uint64_t degraded = 0;
  std::uint64_t failed = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t in_flight = 0;
  std::size_t queued = 0;

  obs::HistogramSnapshot latency;

  [[nodiscard]] double cacheHitRate() const {
    const std::uint64_t total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
};

class TenantRegistry {
 public:
  /// `defaults` applies to every tenant not explicitly configure()d —
  /// including the pre-registered default tenant 0.
  explicit TenantRegistry(TenantConfig defaults = {});

  TenantRegistry(const TenantRegistry&) = delete;
  TenantRegistry& operator=(const TenantRegistry&) = delete;

  /// Installs (or replaces) one tenant's policy. Counters survive
  /// reconfiguration; the token bucket refills to the new burst.
  void configure(std::uint32_t id, TenantConfig config);

  /// The tenant's DRR weight (>= 1), self-registering unknown ids. Called
  /// by FairQueue when a lane activates.
  [[nodiscard]] std::uint32_t weight(std::uint32_t id) const;

  [[nodiscard]] std::size_t numTenants() const;

  /// Admission check at `now_s` (monotonic seconds, any fixed epoch).
  /// kAdmit consumes one token and takes an in-flight slot; the caller
  /// MUST pair it with exactly one recordReply(). Denials consume
  /// nothing, so a parked request can retry for free.
  Admission tryAdmit(std::uint32_t id, double now_s);

  /// Accounts a request denied before admission (gate or quota under the
  /// kReject policy). No in-flight slot is held.
  void recordRejected(std::uint32_t id);

  /// Accounts a request whose wire deadline was already spent when the
  /// server looked at it — shed before admission, so no in-flight slot
  /// is held and no token was consumed.
  void recordExpired(std::uint32_t id);

  /// Accounts one reply for an admitted request: releases the in-flight
  /// slot, buckets the outcome, and records latency. `cache_hit` only
  /// meaningful for kOk.
  void recordReply(std::uint32_t id, Outcome outcome, bool cache_hit,
                   double latency_s);

  /// Every tenant, ascending by id (stable JSON/Prometheus output).
  [[nodiscard]] std::vector<TenantSnapshot> snapshot() const;

 private:
  struct State {
    TenantConfig config;
    double tokens = 0.0;
    double last_refill_s = 0.0;
    bool refilled_once = false;  ///< first tryAdmit anchors the clock

    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t shed = 0;
    std::uint64_t expired = 0;
    std::uint64_t completed = 0;
    std::uint64_t degraded = 0;
    std::uint64_t failed = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::size_t in_flight = 0;

    std::array<std::uint64_t, obs::Histogram::kBuckets> latency_buckets{};
    std::uint64_t latency_count = 0;
    std::uint64_t latency_sum_us = 0;
    std::uint64_t latency_max_us = 0;
  };

  State& ensureLocked(std::uint32_t id) const;
  [[nodiscard]] double burstOf(const TenantConfig& config) const;

  TenantConfig defaults_;
  mutable std::mutex mutex_;
  mutable std::map<std::uint32_t, State> tenants_;
};

/// Renders the GET /tenants document: {"tenants":[{...}, ...]} with one
/// object per snapshot (schema: scripts/bench_check.py --schema
/// tenants-json).
void writeTenantsJson(std::ostream& out,
                      const std::vector<TenantSnapshot>& tenants);

/// The prio_tenant_* Prometheus families, one {tenant="<id>"} labelled
/// sample per tenant per family. Latency is exported as p50/p99/mean
/// gauges rather than labelled histogram series, which keeps the
/// /metrics page within the flat families the existing validator checks.
void writeTenantsPrometheus(std::ostream& out,
                            const std::vector<TenantSnapshot>& tenants);

}  // namespace prio::tenant
