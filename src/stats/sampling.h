// The paper's §4.2 confidence-interval procedure, reproduced exactly.
//
// For each metric and each (mu_BIT, mu_BS) cell, the paper builds an
// empirical sampling distribution of the PRIO mean (p samples, each the
// average of q simulated measurements) and likewise for FIFO; it then forms
// all p^2 pairwise ratios x/y, drops the 2.5% smallest and largest values,
// and reports the surviving range as a 95% confidence interval together
// with the mean, standard deviation, and median of the ratio distribution.
// When any denominator sample is zero, no interval is reported (the paper's
// "missing when the probability was zero" case in Figs. 6–9).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "stats/summary.h"
#include "util/check.h"

namespace prio::stats {

/// An empirical sampling distribution: p samples, each the mean of q raw
/// measurements.
class SamplingDistribution {
 public:
  SamplingDistribution() = default;

  /// Builds from raw measurements laid out as p consecutive groups of q.
  static SamplingDistribution fromRaw(const std::vector<double>& raw,
                                      std::size_t p, std::size_t q) {
    PRIO_CHECK_MSG(p > 0 && q > 0, "p and q must be positive");
    PRIO_CHECK_MSG(raw.size() == p * q, "raw size must equal p*q");
    SamplingDistribution d;
    d.samples_.reserve(p);
    for (std::size_t i = 0; i < p; ++i) {
      double s = 0.0;
      for (std::size_t j = 0; j < q; ++j) s += raw[i * q + j];
      d.samples_.push_back(s / static_cast<double>(q));
    }
    return d;
  }

  void addSample(double sample_mean) { samples_.push_back(sample_mean); }

  [[nodiscard]] const std::vector<double>& samples() const noexcept {
    return samples_;
  }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }

  [[nodiscard]] bool hasZero() const noexcept {
    return std::any_of(samples_.begin(), samples_.end(),
                       [](double x) { return x == 0.0; });
  }

 private:
  std::vector<double> samples_;
};

/// Summary of an empirical ratio distribution (numerator/denominator).
struct RatioSummary {
  bool defined = false;   ///< false when a denominator sample was zero
  double ci_low = 0.0;    ///< 2.5th percentile of the p^2 ratios
  double ci_high = 0.0;   ///< 97.5th percentile of the p^2 ratios
  double mean = 0.0;
  double stddev = 0.0;
  double median = 0.0;

  /// True when the 95% interval lies entirely below 1 (PRIO better for
  /// time/stalling-style metrics where smaller is better).
  [[nodiscard]] bool confidentlyBelowOne() const noexcept {
    return defined && ci_high < 1.0;
  }

  /// True when the 95% interval lies entirely above 1.
  [[nodiscard]] bool confidentlyAboveOne() const noexcept {
    return defined && ci_low > 1.0;
  }
};

/// Computes the §4.2 ratio statistics for numer/denom sampling
/// distributions. Returns defined == false when denom contains a zero
/// sample (matching the paper: "Whenever we encounter y = 0, we do not
/// report any confidence interval").
inline RatioSummary ratioSummary(const SamplingDistribution& numer,
                                 const SamplingDistribution& denom) {
  RatioSummary out;
  PRIO_CHECK_MSG(numer.size() > 0 && denom.size() > 0,
                 "sampling distributions must be non-empty");
  if (denom.hasZero()) return out;  // defined == false

  std::vector<double> ratios;
  ratios.reserve(numer.size() * denom.size());
  for (double x : numer.samples()) {
    for (double y : denom.samples()) {
      ratios.push_back(x / y);
    }
  }
  std::sort(ratios.begin(), ratios.end());

  const std::size_t n = ratios.size();
  // Drop the 2.5% smallest and 2.5% largest values; the surviving range is
  // the 95% confidence interval. Keep at least one value.
  std::size_t drop = static_cast<std::size_t>(
      static_cast<double>(n) * 0.025);
  if (2 * drop >= n) drop = (n - 1) / 2;
  out.defined = true;
  out.ci_low = ratios[drop];
  out.ci_high = ratios[n - 1 - drop];
  out.mean = mean(ratios);
  out.stddev = sampleStddev(ratios);
  out.median = (n % 2 == 1)
                   ? ratios[n / 2]
                   : 0.5 * (ratios[n / 2 - 1] + ratios[n / 2]);
  return out;
}

}  // namespace prio::stats
