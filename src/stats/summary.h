// Basic descriptive statistics shared by the simulator and the campaign
// driver: mean, (sample) variance, standard deviation, median, percentiles.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "util/check.h"

namespace prio::stats {

/// Arithmetic mean; 0 for an empty range.
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

/// Unbiased sample variance (n−1 denominator); 0 for fewer than 2 samples.
inline double sampleVariance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

inline double sampleStddev(const std::vector<double>& xs) {
  return std::sqrt(sampleVariance(xs));
}

/// q-th percentile, q in [0, 100], by linear interpolation between order
/// statistics (the "linear" / type-7 rule). Precondition: xs non-empty.
inline double percentile(std::vector<double> xs, double q) {
  PRIO_CHECK(!xs.empty());
  PRIO_CHECK(q >= 0.0 && q <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs.front();
  const double pos = q / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

/// Median (50th percentile). Precondition: xs non-empty.
inline double median(std::vector<double> xs) {
  return percentile(std::move(xs), 50.0);
}

/// Online accumulator (Welford) for streaming means/variances.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_ || n_ == 1) min_ = x;
    if (x > max_ || n_ == 1) max_ = x;
  }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  [[nodiscard]] double sampleVariance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }

  [[nodiscard]] double sampleStddev() const noexcept {
    return std::sqrt(sampleVariance());
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace prio::stats
