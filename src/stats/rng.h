// Deterministic pseudo-random number generation for the simulation studies.
//
// Implemented from scratch (splitmix64 seeding + xoshiro256++) rather than
// via <random> engines so that every simulated figure in EXPERIMENTS.md is
// bit-reproducible across standard libraries and platforms. xoshiro256++ is
// Blackman & Vigna's public-domain generator; period 2^256 − 1.
#pragma once

#include <cstdint>

namespace prio::stats {

/// splitmix64: used to expand a single 64-bit seed into xoshiro state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256++ pseudo-random generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept {
    const std::uint64_t result =
        rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as an argument to log().
  double uniformOpen0() noexcept {
    return (static_cast<double>(next() >> 11) + 1.0) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Rejection-free path is fine for our purposes; debias with one retry
    // loop on the boundary region.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Derives an independent child stream (for per-replication RNGs).
  [[nodiscard]] Rng fork() noexcept { return Rng(next() ^ 0xA5A5A5A55A5A5A5AULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace prio::stats
