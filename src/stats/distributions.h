// Probability distributions used by the grid system model of §4.1:
//   - exponential batch interarrival times (mean mu_BIT),
//   - exponential batch sizes (mean mu_BS, discretized; see DESIGN.md §4.3),
//   - normal(1, 0.1) job running times, truncated away from zero.
// Implemented from scratch over prio::stats::Rng for determinism.
#pragma once

#include <cmath>
#include <cstdint>

#include "stats/rng.h"
#include "util/check.h"

namespace prio::stats {

/// Exponential distribution with the given mean (inverse-CDF sampling).
class Exponential {
 public:
  explicit Exponential(double mean) : mean_(mean) {
    PRIO_CHECK_MSG(mean > 0.0, "exponential mean must be positive");
  }

  [[nodiscard]] double mean() const noexcept { return mean_; }

  double sample(Rng& rng) const noexcept {
    return -mean_ * std::log(rng.uniformOpen0());
  }

 private:
  double mean_;
};

/// Normal distribution sampled with the Marsaglia polar method.
///
/// One spare deviate is cached, so a single Normal instance consumed by a
/// single Rng produces a deterministic stream.
class Normal {
 public:
  Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
    PRIO_CHECK_MSG(stddev >= 0.0, "normal stddev must be non-negative");
  }

  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double stddev() const noexcept { return stddev_; }

  double sample(Rng& rng) noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return mean_ + stddev_ * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * rng.uniform01() - 1.0;
      v = 2.0 * rng.uniform01() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * factor;
    has_spare_ = true;
    return mean_ + stddev_ * (u * factor);
  }

 private:
  double mean_;
  double stddev_;
  double spare_ = 0.0;
  bool has_spare_ = false;
};

/// Job running-time model of §4.1: normal(mean=1, sd=0.1), resampled into
/// (min_value, +inf) so a job can never take non-positive time. With
/// sd/mean = 0.1 the truncation fires with probability ~1e-23 and does not
/// measurably shift the mean.
class JobRuntime {
 public:
  JobRuntime(double mean = 1.0, double stddev = 0.1,
             double min_value = 1e-9)
      : normal_(mean, stddev), min_value_(min_value) {
    PRIO_CHECK(min_value > 0.0);
  }

  double sample(Rng& rng) noexcept {
    double t;
    do {
      t = normal_.sample(rng);
    } while (t <= min_value_);
    return t;
  }

 private:
  Normal normal_;
  double min_value_;
};

/// Batch-size model of §4.1: exponential with mean mu_BS, rounded to the
/// nearest integer and floored at 1 (every batch carries at least one
/// request; see DESIGN.md substitution #3).
class BatchSize {
 public:
  explicit BatchSize(double mean_size) : exp_(mean_size) {}

  std::uint64_t sample(Rng& rng) const noexcept {
    const double s = exp_.sample(rng);
    const double rounded = std::floor(s + 0.5);
    return rounded < 1.0 ? std::uint64_t{1}
                         : static_cast<std::uint64_t>(rounded);
  }

 private:
  Exponential exp_;
};

}  // namespace prio::stats
