// Brute-force ground truth for IC-optimality on small dags.
//
// maxEligibilityProfile enumerates every ideal (downward-closed set of
// executed jobs) of the dag and records, for each size t, the maximum
// number of eligible jobs over all ideals of that size — exactly the
// quantity an IC-optimal schedule must attain at every step (§2.1). Used
// by the test suite to certify the explicit Fig. 2 block schedules and the
// schedules the heuristic produces for composable dags.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "dag/digraph.h"

namespace prio::theory {

/// Maximum achievable eligibility at every step t = 0..n, computed by
/// exhaustive ideal enumeration. Requires numNodes() <= 64. Throws
/// util::Error when the number of distinct ideals exceeds `max_states`
/// (combinatorial blow-up guard).
[[nodiscard]] std::vector<std::size_t> maxEligibilityProfile(
    const dag::Digraph& g, std::size_t max_states = 2'000'000);

/// True iff `order` is a complete schedule of g achieving the brute-force
/// maximum eligibility at every step.
[[nodiscard]] bool isICOptimal(const dag::Digraph& g,
                               std::span<const dag::NodeId> order,
                               std::size_t max_states = 2'000'000);

/// Number of distinct ideals of the dag (test/diagnostic helper; counts up
/// to max_states then throws).
[[nodiscard]] std::size_t countIdeals(const dag::Digraph& g,
                                      std::size_t max_states = 2'000'000);

/// IC quality of a schedule: min over t (with E_max(t) > 0) of
/// E_Σ(t) / E_max(t) — 1.0 exactly when the schedule is IC-optimal, and
/// otherwise the worst-case fraction of the achievable eligibility the
/// schedule preserves (the quantity the ⊵_r relation bounds). Brute
/// force; same size limits as maxEligibilityProfile.
[[nodiscard]] double icQuality(const dag::Digraph& g,
                               std::span<const dag::NodeId> order,
                               std::size_t max_states = 2'000'000);

/// Exact decision procedure: returns an IC-optimal schedule of g, or
/// nullopt when g admits none (the theory's fundamental negative result —
/// "there do exist even some simple dags whose structures preclude any
/// IC-optimal schedule", §2.1). Runs a forward DP over the ideal lattice
/// keeping only ideals that attain the maximum eligibility at their size
/// AND are reachable through such ideals at every smaller size.
/// Requires numNodes() <= 64; throws when states exceed max_states.
[[nodiscard]] std::optional<std::vector<dag::NodeId>>
findICOptimalSchedule(const dag::Digraph& g,
                      std::size_t max_states = 2'000'000);

}  // namespace prio::theory
