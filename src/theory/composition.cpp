#include "theory/composition.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/check.h"

namespace prio::theory {

using dag::Digraph;
using dag::NodeId;

dag::Digraph composeDags(const dag::Digraph& a,
                         std::span<const dag::NodeId> a_sinks,
                         const dag::Digraph& b,
                         std::span<const dag::NodeId> b_sources) {
  PRIO_CHECK_MSG(a_sinks.size() == b_sources.size(),
                 "identified sink/source lists must have equal length");
  std::unordered_set<NodeId> seen_a, seen_b;
  for (std::size_t i = 0; i < a_sinks.size(); ++i) {
    PRIO_CHECK_MSG(a_sinks[i] < a.numNodes() && a.isSink(a_sinks[i]),
                   "identified node must be a sink of the first dag");
    PRIO_CHECK_MSG(
        b_sources[i] < b.numNodes() && b.isSource(b_sources[i]),
        "identified node must be a source of the second dag");
    PRIO_CHECK_MSG(seen_a.insert(a_sinks[i]).second,
                   "duplicate sink in identification");
    PRIO_CHECK_MSG(seen_b.insert(b_sources[i]).second,
                   "duplicate source in identification");
  }

  Digraph out;
  out.reserveNodes(a.numNodes() + b.numNodes() - a_sinks.size());
  // All of a, names preserved (ids coincide).
  for (NodeId u = 0; u < a.numNodes(); ++u) out.addNode(a.name(u));
  for (NodeId u = 0; u < a.numNodes(); ++u) {
    for (NodeId v : a.children(u)) out.addEdge(u, v);
  }
  // b's nodes: identified sources map onto a's sinks; the rest are fresh
  // (renamed on clash).
  std::unordered_map<NodeId, NodeId> b_map;
  for (std::size_t i = 0; i < b_sources.size(); ++i) {
    b_map.emplace(b_sources[i], a_sinks[i]);
  }
  for (NodeId u = 0; u < b.numNodes(); ++u) {
    if (b_map.count(u) != 0) continue;
    std::string name = b.name(u);
    while (out.findNode(name).has_value()) name += "'";
    b_map.emplace(u, out.addNode(std::move(name)));
  }
  for (NodeId u = 0; u < b.numNodes(); ++u) {
    for (NodeId v : b.children(u)) {
      out.addEdge(b_map.at(u), b_map.at(v));
    }
  }
  return out;
}

dag::Digraph chainCompose(const std::vector<dag::Digraph>& blocks) {
  PRIO_CHECK_MSG(!blocks.empty(), "chainCompose needs at least one block");
  Digraph acc = blocks.front();
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    const auto sinks = acc.sinks();
    const auto sources = blocks[i].sources();
    const std::size_t k = std::min(sinks.size(), sources.size());
    PRIO_CHECK_MSG(k > 0, "cannot chain-compose with an empty interface");
    acc = composeDags(
        acc, std::span<const NodeId>(sinks).first(k), blocks[i],
        std::span<const NodeId>(sources).first(k));
  }
  return acc;
}

}  // namespace prio::theory
