// The bipartite building-block families of Fig. 2 and their explicit
// IC-optimal schedules, plus recognizers used by the heuristic's Recurse
// phase (§3.1 step 3): when a decomposition component is isomorphic to a
// known family, the explicit IC-optimal schedule is used; otherwise a
// precedence-respecting order-by-outdegree schedule is produced.
//
// Family definitions (see DESIGN.md §5; verified IC-optimal by the
// brute-force checker in tests):
//   W(a,b)  — a sources, each with b children, consecutive sources sharing
//             exactly one child. Fig. 2's "(1,2)-W" = W(1,2), "(2,2)-W" =
//             W(2,2). IC-optimal: sources left-to-right along the path.
//   M(a,b)  — the dual of W(a,b) (arcs reversed): a sinks, each with b
//             parents, consecutive sinks sharing one parent. "(1,5)-M" =
//             M(1,5). IC-optimal: complete sinks left-to-right.
//   N(d)    — an alternating open zigzag with d sources and d sinks
//             (u_i -> v_i; u_{i+1} -> v_i). Fig. 2's "4-N" (4 nodes) =
//             N(2). IC-optimal: sources from the end whose sink has a
//             single parent.
//   Cycle(d)— the closed zigzag: d sources, d sinks in a ring
//             (u_i -> v_i, u_i -> v_{i-1 mod d}). "4-Cycle" = Cycle(2).
//             IC-optimal: sources in consecutive ring order.
//   Clique(q)— q sources, one sink per unordered source pair. "3-Clique" =
//             Clique(3). IC-optimal: sources in any order.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "dag/digraph.h"

namespace prio::theory {

enum class BlockKind {
  kSingleton,          ///< one node, no arcs
  kW,                  ///< W(a,b) expansive dag
  kM,                  ///< M(a,b) reductive dag
  kN,                  ///< N(d) open zigzag
  kCycle,              ///< Cycle(d) closed zigzag
  kClique,             ///< Clique(q)
  kCompleteBipartite,  ///< K(a,b): every source feeds every sink
  kBipartiteGeneric,   ///< bipartite but no known IC-optimal schedule
  kGeneric,            ///< not bipartite: heuristic schedule
};

/// Human-readable family name ("W", "M", ..., "generic").
[[nodiscard]] const char* blockKindName(BlockKind kind);

/// Result of classifying a (connected) decomposition component.
struct BlockRecognition {
  BlockKind kind = BlockKind::kGeneric;
  std::size_t a = 0;  ///< first family parameter (a, d or q); 0 if unused
  std::size_t b = 0;  ///< second family parameter; 0 if unused
  /// Complete schedule of the component: all non-sinks first (in the
  /// family's IC-optimal order, or by descending out-degree subject to
  /// precedence for generic components), then all sinks.
  std::vector<dag::NodeId> schedule;
  /// True when `schedule` is IC-optimal by construction (known family).
  bool ic_optimal = false;

  [[nodiscard]] std::string describe() const;
};

/// Classifies a component and produces its schedule. Accepts any dag;
/// disconnected or non-bipartite inputs fall through to kGeneric.
[[nodiscard]] BlockRecognition recognizeBlock(const dag::Digraph& h);

/// Precedence-respecting order-by-outdegree schedule (§3.1 step 3
/// fallback): Kahn's algorithm preferring the ready job with the largest
/// out-degree (ties: smallest id). Because parents of non-sinks are
/// non-sinks, this always executes every non-sink before any sink.
[[nodiscard]] std::vector<dag::NodeId> outdegreeSchedule(
    const dag::Digraph& h);

/// Extension (not in the paper): greedy bipartite schedule that picks the
/// ready source completing the most sinks per step (marginal-gain greedy).
/// Used by the ablation bench to compare against the outdegree fallback.
[[nodiscard]] std::vector<dag::NodeId> greedyBipartiteSchedule(
    const dag::Digraph& h);

// --- Family constructors (for tests, benches and workload synthesis) ---

/// W(a,b): requires a >= 1 and b >= 1 (b >= 2 when a > 1).
[[nodiscard]] dag::Digraph makeW(std::size_t a, std::size_t b);
/// M(a,b): dual of W(a,b); same parameter constraints.
[[nodiscard]] dag::Digraph makeM(std::size_t a, std::size_t b);
/// N(d): requires d >= 2.
[[nodiscard]] dag::Digraph makeN(std::size_t d);
/// Cycle(d): requires d >= 2.
[[nodiscard]] dag::Digraph makeCycleDag(std::size_t d);
/// Clique(q): requires q >= 2.
[[nodiscard]] dag::Digraph makeCliqueDag(std::size_t q);
/// K(a,b), the complete bipartite dag: a sources, b sinks, every source
/// feeds every sink (an extension family beyond Fig. 2 — no sink becomes
/// eligible before the last source runs, so every source order is
/// IC-optimal). Requires a >= 1, b >= 1.
[[nodiscard]] dag::Digraph makeCompleteBipartite(std::size_t a,
                                                 std::size_t b);

}  // namespace prio::theory
