// The priority relations that drive the Combine phase.
//
// ⊵ (eq. 1, §2.2 step 4): component C_i "has priority over" C_j when
// executing all of C_i's non-sinks (per its schedule) before any of C_j's
// keeps the total eligible-job count maximal at every step.
//
// ⊵_r (§3.1 steps 4–5): the graceful generalization — C_i ⊵_r C_j when the
// concatenated schedule always attains at least the fraction r of the best
// achievable count. priority(C_i over C_j) is the largest such r in [0,1].
//
// Both are computed purely from the components' eligibility profiles
// E_i(x), x = 0..s_i (s_i = number of non-sinks), so results can be
// memoized per profile pair — the engineering that makes the Combine phase
// fast on dags with thousands of isomorphic components.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace prio::theory {

/// Exact ⊵ check (eq. 1): true iff for all x in [0,s_i], y in [0,s_j]:
///   E_i(x) + E_j(y) <= E_i(min(s_i,x+y)) + E_j((x+y) - min(s_i,x+y)).
/// `ei` has s_i + 1 entries (E_i(0)..E_i(s_i)); likewise `ej`.
[[nodiscard]] bool hasPriorityOver(std::span<const std::size_t> ei,
                                   std::span<const std::size_t> ej);

/// priority(C_i over C_j): the largest r in [0,1] with C_i ⊵_r C_j.
/// Returns 1.0 when the exact relation holds (including degenerate empty
/// profiles) and 0.0 when some reachable step would lose everything.
[[nodiscard]] double pairPriority(std::span<const std::size_t> ei,
                                  std::span<const std::size_t> ej);

/// True iff ⊵ is a linear order on the given profiles after sorting, i.e.
/// the components can be linearly prioritized C_1 ⊵ C_2 ⊵ ... (the
/// precondition under which the heuristic is provably IC-optimal, §3.1).
/// Quadratic in the number of profiles; intended for certificates/tests.
[[nodiscard]] bool linearlyPrioritizable(
    const std::vector<std::vector<std::size_t>>& profiles);

}  // namespace prio::theory
