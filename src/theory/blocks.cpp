#include "theory/blocks.h"

#include <algorithm>
#include <map>
#include <optional>
#include <queue>
#include <sstream>
#include <utility>

#include "dag/algorithms.h"
#include "util/check.h"

namespace prio::theory {

namespace {

using dag::Digraph;
using dag::NodeId;

/// Appends the component's sinks to a non-sink order, sorted by the step
/// at which they become eligible (position of their latest parent in the
/// order), ties by id — a natural "completion order".
std::vector<NodeId> appendSinks(const Digraph& h,
                                std::vector<NodeId> nonsink_order) {
  std::vector<std::size_t> pos(h.numNodes(), 0);
  for (std::size_t i = 0; i < nonsink_order.size(); ++i) {
    pos[nonsink_order[i]] = i;
  }
  std::vector<NodeId> sinks;
  for (NodeId u = 0; u < h.numNodes(); ++u) {
    if (h.isSink(u)) sinks.push_back(u);
  }
  std::sort(sinks.begin(), sinks.end(), [&](NodeId x, NodeId y) {
    std::size_t px = 0, py = 0;
    for (NodeId p : h.parents(x)) px = std::max(px, pos[p]);
    for (NodeId p : h.parents(y)) py = std::max(py, pos[p]);
    return px != py ? px < py : x < y;
  });
  nonsink_order.insert(nonsink_order.end(), sinks.begin(), sinks.end());
  return nonsink_order;
}

/// The "sharing graph" over the sources of a bipartite component: an edge
/// between two sources for every sink they both feed.
struct SharingGraph {
  // For each unordered source pair, the sinks they share.
  std::map<std::pair<NodeId, NodeId>, std::vector<NodeId>> pair_sinks;
  // Unique-neighbor adjacency over sources.
  std::map<NodeId, std::vector<NodeId>> adj;

  static SharingGraph build(const Digraph& h,
                            const std::vector<NodeId>& sinks) {
    SharingGraph sg;
    for (NodeId t : sinks) {
      const auto ps = h.parents(t);
      if (ps.size() != 2) continue;
      const NodeId lo = std::min(ps[0], ps[1]);
      const NodeId hi = std::max(ps[0], ps[1]);
      auto& shared = sg.pair_sinks[{lo, hi}];
      if (shared.empty()) {
        sg.adj[lo].push_back(hi);
        sg.adj[hi].push_back(lo);
      }
      shared.push_back(t);
    }
    return sg;
  }

  [[nodiscard]] bool allPairsShareExactlyOne() const {
    return std::all_of(pair_sinks.begin(), pair_sinks.end(),
                       [](const auto& kv) { return kv.second.size() == 1; });
  }
};

struct Partition {
  std::vector<NodeId> sources;  // nodes with at least one child
  std::vector<NodeId> sinks;    // nodes with no children
};

Partition partition(const Digraph& h) {
  Partition p;
  for (NodeId u = 0; u < h.numNodes(); ++u) {
    (h.isSink(u) ? p.sinks : p.sources).push_back(u);
  }
  return p;
}

// Walks a path/cycle in the sharing graph starting at `start`, preferring
// the smaller-id unvisited neighbor. Returns nodes in walk order.
std::vector<NodeId> walkSharing(const SharingGraph& sg, NodeId start,
                                std::size_t expected) {
  std::vector<NodeId> order{start};
  std::vector<char> visited_flag;  // indexed lazily via map lookups
  std::map<NodeId, bool> visited;
  visited[start] = true;
  NodeId cur = start;
  while (order.size() < expected) {
    const auto it = sg.adj.find(cur);
    if (it == sg.adj.end()) break;
    std::optional<NodeId> next;
    for (NodeId nb : it->second) {
      if (!visited[nb] && (!next || nb < *next)) next = nb;
    }
    if (!next) break;
    visited[*next] = true;
    order.push_back(*next);
    cur = *next;
  }
  (void)visited_flag;
  return order;
}

// --- Family recognizers. Each assumes h is connected and bipartite with
// the given partition, and returns the IC-optimal *source* order. ---

std::optional<std::vector<NodeId>> tryClique(const Digraph& h,
                                             const Partition& p,
                                             std::size_t& q_out) {
  const std::size_t q = p.sources.size();
  if (q < 3) return std::nullopt;  // q == 2 is handled as M(1,2)
  if (p.sinks.size() != q * (q - 1) / 2) return std::nullopt;
  for (NodeId t : p.sinks) {
    if (h.inDegree(t) != 2) return std::nullopt;
  }
  for (NodeId s : p.sources) {
    if (h.outDegree(s) != q - 1) return std::nullopt;
  }
  const SharingGraph sg = SharingGraph::build(h, p.sinks);
  if (sg.pair_sinks.size() != q * (q - 1) / 2 ||
      !sg.allPairsShareExactlyOne()) {
    return std::nullopt;
  }
  q_out = q;
  return p.sources;  // any order is IC-optimal; use id order
}

std::optional<std::vector<NodeId>> tryW(const Digraph& h, const Partition& p,
                                        std::size_t& a_out,
                                        std::size_t& b_out) {
  const std::size_t a = p.sources.size();
  if (a == 0) return std::nullopt;
  const std::size_t b = h.outDegree(p.sources.front());
  for (NodeId s : p.sources) {
    if (h.outDegree(s) != b) return std::nullopt;
  }
  if (a == 1) {
    // Fan-out star W(1,b): all sinks must have the single source as their
    // only parent (guaranteed by bipartite connectivity).
    for (NodeId t : p.sinks) {
      if (h.inDegree(t) != 1) return std::nullopt;
    }
    a_out = a;
    b_out = b;
    return p.sources;
  }
  if (b < 2) return std::nullopt;
  for (NodeId t : p.sinks) {
    const auto d = h.inDegree(t);
    if (d != 1 && d != 2) return std::nullopt;
  }
  if (p.sinks.size() != a * b - (a - 1)) return std::nullopt;
  const SharingGraph sg = SharingGraph::build(h, p.sinks);
  if (!sg.allPairsShareExactlyOne()) return std::nullopt;
  if (sg.pair_sinks.size() != a - 1) return std::nullopt;
  // The sharing graph must be a simple path over all sources: max degree
  // 2, exactly two endpoints of degree 1, connected.
  std::vector<NodeId> endpoints;
  for (NodeId s : p.sources) {
    const auto it = sg.adj.find(s);
    const std::size_t deg = (it == sg.adj.end()) ? 0 : it->second.size();
    if (deg == 0 || deg > 2) return std::nullopt;
    if (deg == 1) endpoints.push_back(s);
  }
  if (endpoints.size() != 2) return std::nullopt;
  const NodeId start = std::min(endpoints[0], endpoints[1]);
  auto order = walkSharing(sg, start, a);
  if (order.size() != a) return std::nullopt;  // disconnected sharing graph
  a_out = a;
  b_out = b;
  return order;
}

std::optional<std::vector<NodeId>> tryM(const Digraph& h, const Partition& p,
                                        std::size_t& a_out,
                                        std::size_t& b_out) {
  // M(a,b) is W(a,b) reversed: recognize W on the reversed graph. Node ids
  // are preserved by Digraph::reversed(), so the W source order is the
  // path order of h's sinks.
  const Digraph rev = h.reversed();
  const Partition rp = partition(rev);
  std::size_t a = 0, b = 0;
  auto sink_path = tryW(rev, rp, a, b);
  if (!sink_path) return std::nullopt;
  // Complete sinks left-to-right along the path: for each sink in path
  // order, execute its not-yet-executed parents (id order within a group;
  // intra-group order does not affect the eligibility profile).
  std::vector<char> executed(h.numNodes(), 0);
  std::vector<NodeId> order;
  order.reserve(p.sources.size());
  for (NodeId t : *sink_path) {
    std::vector<NodeId> group(h.parents(t).begin(), h.parents(t).end());
    std::sort(group.begin(), group.end());
    for (NodeId s : group) {
      if (!executed[s]) {
        executed[s] = 1;
        order.push_back(s);
      }
    }
  }
  if (order.size() != p.sources.size()) return std::nullopt;
  a_out = a;
  b_out = b;
  return order;
}

std::optional<std::vector<NodeId>> tryCycle(const Digraph& h,
                                            const Partition& p,
                                            std::size_t& d_out) {
  const std::size_t d = p.sources.size();
  if (d < 2 || p.sinks.size() != d) return std::nullopt;
  for (NodeId s : p.sources) {
    if (h.outDegree(s) != 2) return std::nullopt;
  }
  for (NodeId t : p.sinks) {
    if (h.inDegree(t) != 2) return std::nullopt;
  }
  const SharingGraph sg = SharingGraph::build(h, p.sinks);
  if (d == 2) {
    // Two sources sharing both sinks (the 4-node cycle).
    if (sg.pair_sinks.size() != 1 ||
        sg.pair_sinks.begin()->second.size() != 2) {
      return std::nullopt;
    }
    d_out = d;
    return p.sources;
  }
  if (!sg.allPairsShareExactlyOne() || sg.pair_sinks.size() != d) {
    return std::nullopt;
  }
  for (NodeId s : p.sources) {
    const auto it = sg.adj.find(s);
    if (it == sg.adj.end() || it->second.size() != 2) return std::nullopt;
  }
  auto order = walkSharing(sg, p.sources.front(), d);
  if (order.size() != d) return std::nullopt;
  d_out = d;
  return order;
}

std::optional<std::vector<NodeId>> tryCompleteBipartite(
    const Digraph& h, const Partition& p, std::size_t& a_out,
    std::size_t& b_out) {
  const std::size_t a = p.sources.size();
  const std::size_t b = p.sinks.size();
  if (a < 2 || b < 2) return std::nullopt;  // stars are W(1,b)/M(1,b)
  if (h.numEdges() != a * b) return std::nullopt;
  for (NodeId s : p.sources) {
    if (h.outDegree(s) != b) return std::nullopt;
  }
  for (NodeId t : p.sinks) {
    if (h.inDegree(t) != a) return std::nullopt;
  }
  a_out = a;
  b_out = b;
  return p.sources;  // any order is IC-optimal; use id order
}

std::optional<std::vector<NodeId>> tryN(const Digraph& h, const Partition& p,
                                        std::size_t& d_out) {
  const std::size_t n = h.numNodes();
  if (n % 2 != 0 || p.sources.size() != p.sinks.size()) return std::nullopt;
  // The underlying undirected graph must be a simple path whose endpoints
  // are one source and one sink.
  NodeId source_end = 0, sink_end = 0;
  bool have_source_end = false, have_sink_end = false;
  for (NodeId u = 0; u < n; ++u) {
    const std::size_t deg = h.inDegree(u) + h.outDegree(u);
    if (deg > 2 || deg == 0) return std::nullopt;
    if (deg == 1) {
      if (h.isSink(u)) {
        if (have_sink_end) return std::nullopt;
        sink_end = u;
        have_sink_end = true;
      } else {
        if (have_source_end) return std::nullopt;
        source_end = u;
        have_source_end = true;
      }
    }
  }
  if (!have_source_end || !have_sink_end) return std::nullopt;
  // Walk the path from the sink endpoint, collecting sources in order.
  std::vector<char> visited(n, 0);
  std::vector<NodeId> source_order;
  NodeId cur = sink_end;
  visited[cur] = 1;
  for (std::size_t step = 1; step < n; ++step) {
    std::optional<NodeId> next;
    for (NodeId w : h.parents(cur)) {
      if (!visited[w]) next = w;
    }
    for (NodeId w : h.children(cur)) {
      if (!visited[w]) next = w;
    }
    if (!next) return std::nullopt;  // path shorter than n: disconnected
    cur = *next;
    visited[cur] = 1;
    if (!h.isSink(cur)) source_order.push_back(cur);
  }
  if (cur != source_end || source_order.size() != p.sources.size()) {
    return std::nullopt;
  }
  d_out = p.sources.size();
  return source_order;
}

}  // namespace

const char* blockKindName(BlockKind kind) {
  switch (kind) {
    case BlockKind::kSingleton: return "singleton";
    case BlockKind::kW: return "W";
    case BlockKind::kM: return "M";
    case BlockKind::kN: return "N";
    case BlockKind::kCycle: return "Cycle";
    case BlockKind::kClique: return "Clique";
    case BlockKind::kCompleteBipartite: return "K";
    case BlockKind::kBipartiteGeneric: return "bipartite-generic";
    case BlockKind::kGeneric: return "generic";
  }
  return "unknown";
}

std::string BlockRecognition::describe() const {
  std::ostringstream os;
  os << blockKindName(kind);
  if (kind == BlockKind::kW || kind == BlockKind::kM ||
      kind == BlockKind::kCompleteBipartite) {
    os << '(' << a << ',' << b << ')';
  } else if (kind == BlockKind::kN || kind == BlockKind::kCycle ||
             kind == BlockKind::kClique) {
    os << '(' << a << ')';
  }
  return os.str();
}

BlockRecognition recognizeBlock(const dag::Digraph& h) {
  BlockRecognition out;
  if (h.numNodes() == 0) {
    out.kind = BlockKind::kGeneric;
    return out;
  }
  if (h.numNodes() == 1) {
    out.kind = BlockKind::kSingleton;
    out.schedule = {0};
    out.ic_optimal = true;
    return out;
  }
  if (!dag::isBipartiteDag(h) || !dag::isConnected(h)) {
    out.kind = BlockKind::kGeneric;
    out.schedule = outdegreeSchedule(h);
    return out;
  }
  const Partition p = partition(h);

  std::size_t a = 0, b = 0;
  if (auto order = tryW(h, p, a, b)) {
    out.kind = BlockKind::kW;
    out.a = a;
    out.b = b;
    out.schedule = appendSinks(h, std::move(*order));
    out.ic_optimal = true;
    return out;
  }
  if (auto order = tryM(h, p, a, b)) {
    out.kind = BlockKind::kM;
    out.a = a;
    out.b = b;
    out.schedule = appendSinks(h, std::move(*order));
    out.ic_optimal = true;
    return out;
  }
  if (auto order = tryClique(h, p, a)) {
    out.kind = BlockKind::kClique;
    out.a = a;
    out.schedule = appendSinks(h, std::move(*order));
    out.ic_optimal = true;
    return out;
  }
  if (auto order = tryCycle(h, p, a)) {
    out.kind = BlockKind::kCycle;
    out.a = a;
    out.schedule = appendSinks(h, std::move(*order));
    out.ic_optimal = true;
    return out;
  }
  if (auto order = tryCompleteBipartite(h, p, a, b)) {
    out.kind = BlockKind::kCompleteBipartite;
    out.a = a;
    out.b = b;
    out.schedule = appendSinks(h, std::move(*order));
    out.ic_optimal = true;
    return out;
  }
  if (auto order = tryN(h, p, a)) {
    out.kind = BlockKind::kN;
    out.a = a;
    out.schedule = appendSinks(h, std::move(*order));
    out.ic_optimal = true;
    return out;
  }
  out.kind = BlockKind::kBipartiteGeneric;
  out.schedule = outdegreeSchedule(h);
  return out;
}

std::vector<dag::NodeId> outdegreeSchedule(const dag::Digraph& h) {
  const std::size_t n = h.numNodes();
  std::vector<std::size_t> pending(n);
  // Max-heap on (outdegree, smaller id wins ties).
  auto cmp = [&](NodeId x, NodeId y) {
    const auto dx = h.outDegree(x), dy = h.outDegree(y);
    return dx != dy ? dx < dy : x > y;
  };
  std::priority_queue<NodeId, std::vector<NodeId>, decltype(cmp)> ready(cmp);
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = h.inDegree(u);
    if (pending[u] == 0) ready.push(u);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (NodeId v : h.children(u)) {
      if (--pending[v] == 0) ready.push(v);
    }
  }
  PRIO_CHECK_MSG(order.size() == n, "outdegreeSchedule requires a dag");
  return order;
}

std::vector<dag::NodeId> greedyBipartiteSchedule(const dag::Digraph& h) {
  if (!dag::isBipartiteDag(h)) return outdegreeSchedule(h);
  const std::size_t n = h.numNodes();
  std::vector<std::size_t> missing(n);
  std::vector<char> executed(n, 0);
  std::vector<NodeId> sources;
  for (NodeId u = 0; u < n; ++u) {
    missing[u] = h.inDegree(u);
    if (!h.isSink(u)) sources.push_back(u);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<char> taken(n, 0);
  for (std::size_t step = 0; step < sources.size(); ++step) {
    NodeId best = 0;
    long best_gain = -1;
    for (NodeId s : sources) {
      if (taken[s]) continue;
      long gain = 0;
      for (NodeId t : h.children(s)) {
        if (missing[t] == 1) ++gain;
      }
      if (gain > best_gain ||
          (gain == best_gain &&
           (h.outDegree(s) > h.outDegree(best) ||
            (h.outDegree(s) == h.outDegree(best) && s < best)))) {
        best_gain = gain;
        best = s;
      }
    }
    taken[best] = 1;
    order.push_back(best);
    for (NodeId t : h.children(best)) --missing[t];
  }
  return appendSinks(h, std::move(order));
}

dag::Digraph makeW(std::size_t a, std::size_t b) {
  PRIO_CHECK_MSG(a >= 1 && b >= 1, "W(a,b) requires a,b >= 1");
  PRIO_CHECK_MSG(a == 1 || b >= 2, "W(a,b) with a > 1 requires b >= 2");
  dag::Digraph g;
  std::vector<NodeId> sources;
  for (std::size_t i = 0; i < a; ++i) {
    sources.push_back(g.addNode("s" + std::to_string(i)));
  }
  std::size_t sink_counter = 0;
  NodeId last_sink = 0;
  for (std::size_t i = 0; i < a; ++i) {
    if (i > 0) g.addEdge(sources[i], last_sink);  // shared with previous
    const std::size_t fresh = (i == 0) ? b : b - 1;
    for (std::size_t j = 0; j < fresh; ++j) {
      last_sink = g.addNode("t" + std::to_string(sink_counter++));
      g.addEdge(sources[i], last_sink);
    }
  }
  return g;
}

dag::Digraph makeM(std::size_t a, std::size_t b) {
  return makeW(a, b).reversed();
}

dag::Digraph makeN(std::size_t d) {
  PRIO_CHECK_MSG(d >= 2, "N(d) requires d >= 2");
  dag::Digraph g;
  std::vector<NodeId> u, v;
  for (std::size_t i = 0; i < d; ++i) {
    u.push_back(g.addNode("u" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < d; ++i) {
    v.push_back(g.addNode("v" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < d; ++i) {
    g.addEdge(u[i], v[i]);
    if (i + 1 < d) g.addEdge(u[i + 1], v[i]);
  }
  return g;
}

dag::Digraph makeCycleDag(std::size_t d) {
  PRIO_CHECK_MSG(d >= 2, "Cycle(d) requires d >= 2");
  dag::Digraph g;
  std::vector<NodeId> u, v;
  for (std::size_t i = 0; i < d; ++i) {
    u.push_back(g.addNode("u" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < d; ++i) {
    v.push_back(g.addNode("v" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < d; ++i) {
    g.addEdge(u[i], v[i]);
    g.addEdge(u[i], v[(i + d - 1) % d]);
  }
  return g;
}

dag::Digraph makeCompleteBipartite(std::size_t a, std::size_t b) {
  PRIO_CHECK_MSG(a >= 1 && b >= 1, "K(a,b) requires a,b >= 1");
  dag::Digraph g;
  std::vector<NodeId> u, v;
  for (std::size_t i = 0; i < a; ++i) {
    u.push_back(g.addNode("s" + std::to_string(i)));
  }
  for (std::size_t j = 0; j < b; ++j) {
    v.push_back(g.addNode("t" + std::to_string(j)));
  }
  for (NodeId s : u) {
    for (NodeId t : v) g.addEdge(s, t);
  }
  return g;
}

dag::Digraph makeCliqueDag(std::size_t q) {
  PRIO_CHECK_MSG(q >= 2, "Clique(q) requires q >= 2");
  dag::Digraph g;
  std::vector<NodeId> u;
  for (std::size_t i = 0; i < q; ++i) {
    u.push_back(g.addNode("u" + std::to_string(i)));
  }
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = i + 1; j < q; ++j) {
      const NodeId t =
          g.addNode("t" + std::to_string(i) + "_" + std::to_string(j));
      g.addEdge(u[i], t);
      g.addEdge(u[j], t);
    }
  }
  return g;
}

}  // namespace prio::theory
