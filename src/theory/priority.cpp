#include "theory/priority.h"

#include <algorithm>

#include "util/check.h"

namespace prio::theory {

namespace {
// Shared iteration: for every (x, y), feed LHS = E_i(x)+E_j(y) and
// RHS = E_i(min(s_i,x+y)) + E_j((x+y)-min(s_i,x+y)) to the visitor.
// Visitor returns false to abort early.
template <class Visit>
void forEachPair(std::span<const std::size_t> ei,
                 std::span<const std::size_t> ej, Visit&& visit) {
  PRIO_CHECK_MSG(!ei.empty() && !ej.empty(),
                 "profiles must include at least E(0)");
  const std::size_t si = ei.size() - 1;
  const std::size_t sj = ej.size() - 1;
  for (std::size_t x = 0; x <= si; ++x) {
    for (std::size_t y = 0; y <= sj; ++y) {
      const std::size_t total = x + y;
      const std::size_t a = std::min(si, total);
      const std::size_t b = total - a;  // b <= sj since total <= si + sj
      if (!visit(ei[x] + ej[y], ei[a] + ej[b])) return;
    }
  }
}
}  // namespace

bool hasPriorityOver(std::span<const std::size_t> ei,
                     std::span<const std::size_t> ej) {
  bool holds = true;
  forEachPair(ei, ej, [&](std::size_t lhs, std::size_t rhs) {
    if (rhs < lhs) {
      holds = false;
      return false;
    }
    return true;
  });
  return holds;
}

double pairPriority(std::span<const std::size_t> ei,
                    std::span<const std::size_t> ej) {
  double r = 1.0;
  forEachPair(ei, ej, [&](std::size_t lhs, std::size_t rhs) {
    if (lhs > 0) {
      const double bound =
          static_cast<double>(rhs) / static_cast<double>(lhs);
      if (bound < r) r = bound;
    }
    return r > 0.0;  // cannot get below zero; stop early at 0
  });
  return std::max(r, 0.0);
}

bool linearlyPrioritizable(
    const std::vector<std::vector<std::size_t>>& profiles) {
  // ⊵ is transitive (§2.2 step 4), so pairwise comparability of all
  // profiles implies a linear prioritization exists.
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    for (std::size_t j = i + 1; j < profiles.size(); ++j) {
      if (!hasPriorityOver(profiles[i], profiles[j]) &&
          !hasPriorityOver(profiles[j], profiles[i])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace prio::theory
