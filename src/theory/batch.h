// Deterministic batched-execution analysis, after the companion theory
// the paper cites as [15] (Malewicz & Rosenberg, "On batch-scheduling
// dags for Internet-based computing", Euro-Par 2005).
//
// Model: execution proceeds in synchronous rounds. At the start of each
// round, up to `batch_size` jobs that are eligible *at that moment* are
// dispatched (chosen by a static priority order, or FIFO); all of them
// complete before the next round. Jobs becoming eligible mid-round wait.
// This is the deterministic skeleton of the paper's §4 stochastic model
// in the "rare large batches" regime (mu_BIT large): the number of
// rounds is the makespan in units of mu_BIT.
//
// A schedule that keeps more jobs eligible fills rounds better and
// finishes in fewer rounds — bench_batch_rounds quantifies this for
// PRIO vs FIFO vs critical-path without any stochastic noise.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dag/digraph.h"

namespace prio::theory {

/// Result of a batched execution.
struct BatchedExecution {
  std::size_t rounds = 0;
  /// Jobs dispatched per round (sums to numNodes()).
  std::vector<std::size_t> round_sizes;
  /// Rounds that dispatched fewer jobs than the batch size while work
  /// remained — "starved" rounds where a better schedule might have kept
  /// more jobs eligible.
  std::size_t underfull_rounds = 0;
};

/// Executes the dag in rounds of at most batch_size jobs, picking among
/// currently-eligible jobs by the static priority `order` (its position
/// = rank; earlier runs first). Precondition: order is a topological
/// permutation, batch_size >= 1.
[[nodiscard]] BatchedExecution batchedExecute(
    const dag::Digraph& g, std::span<const dag::NodeId> order,
    std::size_t batch_size);

/// Same, with FIFO tie-breaking (jobs in the order they became eligible;
/// initial sources in id order).
[[nodiscard]] BatchedExecution batchedExecuteFifo(const dag::Digraph& g,
                                                  std::size_t batch_size);

/// Lower bound on the achievable number of rounds for any schedule:
/// max(ceil(n / b), longest path length in nodes). Tight for many dags.
[[nodiscard]] std::size_t batchedRoundsLowerBound(const dag::Digraph& g,
                                                  std::size_t batch_size);

/// Extension: a round-aware greedy (not in the paper, in the spirit of
/// [15]) — each round picks its cohort one job at a time, preferring the
/// eligible job that unlocks the most children for the NEXT round given
/// the cohort chosen so far (ties: higher out-degree, then id). A static
/// priority list cannot react to round boundaries; this adaptive policy
/// can, and bench_batch_rounds compares the two.
[[nodiscard]] BatchedExecution batchedExecuteGreedy(const dag::Digraph& g,
                                                    std::size_t batch_size);

}  // namespace prio::theory
