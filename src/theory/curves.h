// Analysis helpers for eligibility curves (the Fig. 4 quantities):
// pointwise comparison of two profiles E_A(t), E_B(t) — maximum/minimum
// difference, area, dominance — shared by tests, benches and reports.
#pragma once

#include <cstddef>
#include <span>

#include "util/check.h"

namespace prio::theory {

/// Summary of E_A(t) − E_B(t) over a common domain.
struct CurveComparison {
  long long max_diff = 0;
  std::size_t argmax = 0;       ///< first step attaining max_diff
  long long min_diff = 0;
  std::size_t argmin = 0;       ///< first step attaining min_diff
  long long area = 0;           ///< sum of differences over all steps
  std::size_t steps_above = 0;  ///< steps with A > B
  std::size_t steps_below = 0;  ///< steps with A < B

  /// A is never below B.
  [[nodiscard]] bool dominates() const noexcept { return min_diff >= 0; }
  /// A dominates and beats B somewhere.
  [[nodiscard]] bool strictlyDominates() const noexcept {
    return dominates() && steps_above > 0;
  }
  [[nodiscard]] double meanDiff(std::size_t total_steps) const noexcept {
    return total_steps == 0
               ? 0.0
               : static_cast<double>(area) /
                     static_cast<double>(total_steps);
  }
};

/// Compares two profiles of equal length.
[[nodiscard]] inline CurveComparison compareProfiles(
    std::span<const std::size_t> a, std::span<const std::size_t> b) {
  PRIO_CHECK_MSG(a.size() == b.size(),
                 "profiles must cover the same number of steps");
  CurveComparison out;
  for (std::size_t t = 0; t < a.size(); ++t) {
    const long long diff = static_cast<long long>(a[t]) -
                           static_cast<long long>(b[t]);
    out.area += diff;
    if (diff > out.max_diff) {
      out.max_diff = diff;
      out.argmax = t;
    }
    if (diff < out.min_diff) {
      out.min_diff = diff;
      out.argmin = t;
    }
    if (diff > 0) ++out.steps_above;
    if (diff < 0) ++out.steps_below;
  }
  return out;
}

}  // namespace prio::theory
