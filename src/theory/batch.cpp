#include "theory/batch.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "dag/algorithms.h"
#include "util/check.h"

namespace prio::theory {

namespace {
using dag::NodeId;

template <class Queue>
BatchedExecution run(const dag::Digraph& g, Queue& eligible,
                     std::size_t batch_size) {
  PRIO_CHECK_MSG(batch_size >= 1, "batch size must be at least 1");
  const std::size_t n = g.numNodes();
  BatchedExecution out;
  std::size_t executed = 0;

  std::vector<std::size_t> pending(n);
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) eligible.push(u);
  }

  while (executed < n) {
    PRIO_CHECK_MSG(!eligible.empty(), "batched execution starved (cycle?)");
    const std::size_t dispatch = std::min(batch_size, eligible.size());
    // The round's cohort completes together; children become eligible
    // only for the NEXT round.
    std::vector<NodeId> cohort;
    cohort.reserve(dispatch);
    for (std::size_t i = 0; i < dispatch; ++i) cohort.push_back(eligible.pop());
    for (NodeId u : cohort) {
      for (NodeId v : g.children(u)) {
        if (--pending[v] == 0) eligible.push(v);
      }
    }
    executed += dispatch;
    ++out.rounds;
    out.round_sizes.push_back(dispatch);
    if (dispatch < batch_size && executed < n) ++out.underfull_rounds;
  }
  return out;
}

class OrderedPool {
 public:
  explicit OrderedPool(std::vector<std::size_t> position)
      : position_(std::move(position)) {}
  void push(NodeId u) { heap_.push({position_[u], u}); }
  NodeId pop() {
    const NodeId u = heap_.top().second;
    heap_.pop();
    return u;
  }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  std::vector<std::size_t> position_;
  std::priority_queue<std::pair<std::size_t, NodeId>,
                      std::vector<std::pair<std::size_t, NodeId>>,
                      std::greater<>>
      heap_;
};

class FifoPool {
 public:
  void push(NodeId u) { q_.push_back(u); }
  NodeId pop() {
    const NodeId u = q_.front();
    q_.pop_front();
    return u;
  }
  [[nodiscard]] bool empty() const { return q_.empty(); }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  std::deque<NodeId> q_;
};

}  // namespace

BatchedExecution batchedExecute(const dag::Digraph& g,
                                std::span<const dag::NodeId> order,
                                std::size_t batch_size) {
  const std::size_t n = g.numNodes();
  PRIO_CHECK_MSG(dag::isTopologicalOrder(g, order),
                 "batchedExecute needs a topological permutation");
  std::vector<std::size_t> position(n, 0);
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  OrderedPool pool(std::move(position));
  return run(g, pool, batch_size);
}

BatchedExecution batchedExecuteFifo(const dag::Digraph& g,
                                    std::size_t batch_size) {
  FifoPool pool;
  return run(g, pool, batch_size);
}

BatchedExecution batchedExecuteGreedy(const dag::Digraph& g,
                                      std::size_t batch_size) {
  PRIO_CHECK_MSG(batch_size >= 1, "batch size must be at least 1");
  const std::size_t n = g.numNodes();
  BatchedExecution out;
  std::size_t executed = 0;

  std::vector<std::size_t> pending(n);
  std::vector<NodeId> eligible;
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) eligible.push_back(u);
  }

  // pending_after[v] tracks v's missing parents counting the cohort
  // chosen so far as done; a pick "unlocks" v when it drops it to 0.
  std::vector<std::size_t> pending_after = pending;
  while (executed < n) {
    PRIO_CHECK_MSG(!eligible.empty(), "batched execution starved (cycle?)");
    std::vector<NodeId> cohort;
    const std::size_t take = std::min(batch_size, eligible.size());
    for (std::size_t pick = 0; pick < take; ++pick) {
      std::size_t best_at = 0;
      long best_gain = -1;
      for (std::size_t i = 0; i < eligible.size(); ++i) {
        const NodeId u = eligible[i];
        long gain = 0;
        for (const NodeId v : g.children(u)) {
          if (pending_after[v] == 1) ++gain;
        }
        const NodeId best = eligible[best_at];
        const bool better =
            gain > best_gain ||
            (gain == best_gain &&
             (g.outDegree(u) > g.outDegree(best) ||
              (g.outDegree(u) == g.outDegree(best) && u < best)));
        if (better) {
          best_gain = gain;
          best_at = i;
        }
      }
      const NodeId u = eligible[best_at];
      eligible.erase(eligible.begin() + static_cast<long>(best_at));
      for (const NodeId v : g.children(u)) --pending_after[v];
      cohort.push_back(u);
    }
    for (const NodeId u : cohort) {
      for (const NodeId v : g.children(u)) {
        if (--pending[v] == 0) eligible.push_back(v);
      }
    }
    executed += cohort.size();
    ++out.rounds;
    out.round_sizes.push_back(cohort.size());
    if (cohort.size() < batch_size && executed < n) ++out.underfull_rounds;
  }
  return out;
}

std::size_t batchedRoundsLowerBound(const dag::Digraph& g,
                                    std::size_t batch_size) {
  PRIO_CHECK(batch_size >= 1);
  if (g.numNodes() == 0) return 0;
  const std::size_t by_volume =
      (g.numNodes() + batch_size - 1) / batch_size;
  const std::size_t by_depth = dag::longestPathNodes(g);
  return std::max(by_volume, by_depth);
}

}  // namespace prio::theory
