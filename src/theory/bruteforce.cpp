#include "theory/bruteforce.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "theory/eligibility.h"
#include "util/check.h"

namespace prio::theory {

namespace {

// Per-node parent masks; a job u is eligible under executed-set `mask` iff
// bit u is clear and (parent_mask[u] & mask) == parent_mask[u].
struct MaskModel {
  explicit MaskModel(const dag::Digraph& g) {
    const std::size_t n = g.numNodes();
    PRIO_CHECK_MSG(n <= 64, "brute-force checker requires <= 64 nodes");
    parent_mask.assign(n, 0);
    for (dag::NodeId u = 0; u < n; ++u) {
      for (dag::NodeId p : g.parents(u)) {
        parent_mask[u] |= (std::uint64_t{1} << p);
      }
    }
  }

  [[nodiscard]] std::size_t eligibleCount(std::uint64_t mask) const {
    std::size_t count = 0;
    for (std::size_t u = 0; u < parent_mask.size(); ++u) {
      const std::uint64_t bit = std::uint64_t{1} << u;
      if ((mask & bit) == 0 && (parent_mask[u] & mask) == parent_mask[u]) {
        ++count;
      }
    }
    return count;
  }

  std::vector<std::uint64_t> parent_mask;
};

// Walks the ideal lattice breadth-first, invoking visit(mask, popcount,
// eligible) for every distinct ideal.
template <class Visit>
void forEachIdeal(const dag::Digraph& g, std::size_t max_states,
                  Visit&& visit) {
  const MaskModel model(g);
  const std::size_t n = g.numNodes();
  std::unordered_set<std::uint64_t> seen;
  std::vector<std::uint64_t> frontier{0};
  seen.insert(0);
  while (!frontier.empty()) {
    std::vector<std::uint64_t> next;
    for (std::uint64_t mask : frontier) {
      const auto t = static_cast<std::size_t>(__builtin_popcountll(mask));
      visit(mask, t, model.eligibleCount(mask));
      for (std::size_t u = 0; u < n; ++u) {
        const std::uint64_t bit = std::uint64_t{1} << u;
        if ((mask & bit) != 0) continue;
        if ((model.parent_mask[u] & mask) != model.parent_mask[u]) continue;
        const std::uint64_t grown = mask | bit;
        if (seen.insert(grown).second) {
          PRIO_CHECK_MSG(seen.size() <= max_states,
                         "ideal count exceeds max_states = " << max_states);
          next.push_back(grown);
        }
      }
    }
    frontier = std::move(next);
  }
}

}  // namespace

std::vector<std::size_t> maxEligibilityProfile(const dag::Digraph& g,
                                               std::size_t max_states) {
  const std::size_t n = g.numNodes();
  std::vector<std::size_t> best(n + 1, 0);
  forEachIdeal(g, max_states,
               [&](std::uint64_t, std::size_t t, std::size_t eligible) {
                 if (eligible > best[t]) best[t] = eligible;
               });
  return best;
}

bool isICOptimal(const dag::Digraph& g, std::span<const dag::NodeId> order,
                 std::size_t max_states) {
  if (order.size() != g.numNodes()) return false;
  const auto achieved = eligibilityProfile(g, order);
  const auto best = maxEligibilityProfile(g, max_states);
  return achieved == best;
}

double icQuality(const dag::Digraph& g, std::span<const dag::NodeId> order,
                 std::size_t max_states) {
  PRIO_CHECK_MSG(order.size() == g.numNodes(),
                 "icQuality needs a complete schedule");
  const auto achieved = eligibilityProfile(g, order);
  const auto best = maxEligibilityProfile(g, max_states);
  double quality = 1.0;
  for (std::size_t t = 0; t < achieved.size(); ++t) {
    if (best[t] == 0) continue;
    quality = std::min(quality, static_cast<double>(achieved[t]) /
                                    static_cast<double>(best[t]));
  }
  return quality;
}

std::size_t countIdeals(const dag::Digraph& g, std::size_t max_states) {
  std::size_t count = 0;
  forEachIdeal(g, max_states,
               [&](std::uint64_t, std::size_t, std::size_t) { ++count; });
  return count;
}

std::optional<std::vector<dag::NodeId>> findICOptimalSchedule(
    const dag::Digraph& g, std::size_t max_states) {
  const std::size_t n = g.numNodes();
  const MaskModel model(g);
  const auto best = maxEligibilityProfile(g, max_states);

  // Forward DP over levels of the ideal lattice, keeping only "viable"
  // ideals: those with the maximum eligibility for their size that are
  // reachable from a viable ideal one level down. parent_of remembers one
  // viable predecessor per surviving ideal for schedule reconstruction.
  std::vector<std::uint64_t> level{0};
  std::unordered_map<std::uint64_t, std::uint64_t> parent_of;
  parent_of.emplace(0, 0);
  std::size_t states = 1;

  for (std::size_t t = 0; t < n; ++t) {
    std::unordered_set<std::uint64_t> next;
    for (const std::uint64_t mask : level) {
      for (std::size_t u = 0; u < n; ++u) {
        const std::uint64_t bit = std::uint64_t{1} << u;
        if ((mask & bit) != 0) continue;
        if ((model.parent_mask[u] & mask) != model.parent_mask[u]) continue;
        const std::uint64_t grown = mask | bit;
        if (model.eligibleCount(grown) != best[t + 1]) continue;
        if (next.insert(grown).second) {
          PRIO_CHECK_MSG(++states <= max_states,
                         "viable-ideal count exceeds max_states");
          parent_of.emplace(grown, mask);
        }
      }
    }
    if (next.empty()) return std::nullopt;  // no IC-optimal schedule
    level.assign(next.begin(), next.end());
  }

  // Reconstruct one optimal execution order from the full ideal back to
  // the empty one.
  std::vector<dag::NodeId> order(n, 0);
  std::uint64_t cur = level.front();
  for (std::size_t t = n; t > 0; --t) {
    const std::uint64_t prev = parent_of.at(cur);
    const std::uint64_t bit = cur ^ prev;
    PRIO_CHECK(bit != 0 && (bit & (bit - 1)) == 0);
    order[t - 1] =
        static_cast<dag::NodeId>(__builtin_ctzll(bit));
    cur = prev;
  }
  return order;
}

}  // namespace prio::theory
