// The theory's dag-composition operator (§2.2 / [16]): complex dags are
// "assembled" from building blocks by identifying sinks of one block with
// sources of the next. decompose() inverts exactly this operation, so the
// composition operator is both a workload-construction tool and the basis
// for round-trip property tests (compose blocks, decompose, recover the
// blocks).
#pragma once

#include <span>
#include <vector>

#include "dag/digraph.h"

namespace prio::theory {

/// Composes `a` and `b` by identifying a_sinks[i] (which must be a sink
/// of a) with b_sources[i] (a source of b), pairwise. The merged node
/// keeps a's name. Remaining b-node names are made unique if they clash
/// with a's. Throws util::Error on non-sink/non-source arguments,
/// length mismatch or duplicates.
[[nodiscard]] dag::Digraph composeDags(const dag::Digraph& a,
                                       std::span<const dag::NodeId> a_sinks,
                                       const dag::Digraph& b,
                                       std::span<const dag::NodeId> b_sources);

/// Chain-composes blocks left to right: each step identifies the first
/// min(#sinks, #sources) sinks of the accumulated dag (in id order) with
/// that many sources of the next block (in id order).
[[nodiscard]] dag::Digraph chainCompose(
    const std::vector<dag::Digraph>& blocks);

}  // namespace prio::theory
