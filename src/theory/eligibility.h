// Eligibility profiles — the central quantity of the IC-scheduling theory.
//
// For a dag G and a schedule Σ (an execution order of G's jobs), E_Σ(t) is
// the number of eligible jobs after the first t jobs of Σ have executed: an
// unexecuted job is eligible when all of its parents have executed
// (sources are eligible immediately). A schedule is IC-optimal when E_Σ(t)
// is the maximum achievable over all precedence-respecting choices of t
// executed jobs, simultaneously for every t (§2.1).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "dag/digraph.h"

namespace prio::theory {

/// E_Σ(t) for t = 0..order.size(). `order` must be a topological prefix of
/// the dag (it may cover only the first k jobs; the profile then has k+1
/// entries). Throws util::Error if `order` executes a job before one of
/// its parents or repeats a job.
[[nodiscard]] std::vector<std::size_t> eligibilityProfile(
    const dag::Digraph& g, std::span<const dag::NodeId> order);

/// Convenience: number of eligible jobs after executing `executed` (each
/// entry marks a job as done). Order-insensitive.
[[nodiscard]] std::size_t eligibleCount(const dag::Digraph& g,
                                        std::span<const dag::NodeId> executed);

}  // namespace prio::theory
