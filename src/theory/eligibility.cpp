#include "theory/eligibility.h"

#include <algorithm>

#include "util/check.h"

namespace prio::theory {

std::vector<std::size_t> eligibilityProfile(
    const dag::Digraph& g, std::span<const dag::NodeId> order) {
  const std::size_t n = g.numNodes();
  PRIO_CHECK_MSG(order.size() <= n, "order longer than the dag");

  std::vector<std::size_t> done_parents(n, 0);
  std::vector<char> executed(n, 0);
  std::size_t eligible = 0;
  for (dag::NodeId u = 0; u < n; ++u) {
    if (g.inDegree(u) == 0) ++eligible;
  }

  std::vector<std::size_t> profile;
  profile.reserve(order.size() + 1);
  profile.push_back(eligible);

  for (dag::NodeId u : order) {
    PRIO_CHECK_MSG(u < n, "schedule names an unknown job");
    PRIO_CHECK_MSG(!executed[u], "schedule repeats job " << g.name(u));
    PRIO_CHECK_MSG(done_parents[u] == g.inDegree(u),
                   "schedule executes " << g.name(u)
                                        << " before its parents");
    executed[u] = 1;
    --eligible;  // u was eligible; it no longer is.
    for (dag::NodeId v : g.children(u)) {
      if (++done_parents[v] == g.inDegree(v)) ++eligible;
    }
    profile.push_back(eligible);
  }
  return profile;
}

std::size_t eligibleCount(const dag::Digraph& g,
                          std::span<const dag::NodeId> executed) {
  const std::size_t n = g.numNodes();
  std::vector<char> done(n, 0);
  for (dag::NodeId u : executed) {
    PRIO_CHECK(u < n);
    done[u] = 1;
  }
  std::size_t eligible = 0;
  for (dag::NodeId u = 0; u < n; ++u) {
    if (done[u]) continue;
    const auto ps = g.parents(u);
    const bool ok = std::all_of(ps.begin(), ps.end(),
                                [&](dag::NodeId p) { return done[p]; });
    if (ok) ++eligible;
  }
  return eligible;
}

}  // namespace prio::theory
