// Structured tracing: per-request trace contexts, RAII spans, per-thread
// ring buffers, and Chrome trace_event / human-readable exporters.
//
// Model (DESIGN.md §10):
//   - A Tracer owns the recorded data. Each recording thread appends
//     completed spans to its own fixed-capacity ring (oldest records are
//     overwritten once full; `dropped` counts them), so recording never
//     allocates on the hot path and threads never contend with each
//     other. Rings are found through an epoch-keyed thread-local cache —
//     one uncontended mutex acquisition per record keeps drain() and
//     TSan happy without a lock-free ring protocol.
//   - A TraceContext is a 24-byte value {tracer, trace id, parent span}.
//     A default-constructed context is DISABLED: creating a Span against
//     it is one branch and no stores — the null-context fast path that
//     keeps tracing-free runs at full speed (gated by
//     bench_core_hotpath's trace_overhead metric).
//   - A Span brackets one region: it allocates a span id and timestamps
//     on construction, records on destruction. Nesting is EXPLICIT:
//     span.context() returns a child context whose parent is that span,
//     and that value can cross threads — the schedule phase hands its
//     span's context to parallelClaim workers, so worker spans nest
//     correctly under the phase span no matter which thread ran them.
//
// Timestamps are steady-clock nanoseconds relative to the Tracer's
// construction, so traces from one process share a timeline.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace prio::obs {

class Tracer;

/// One completed span. `name` must point at storage outliving the tracer
/// (string literals; every span name in this codebase is one).
struct SpanRecord {
  const char* name = "";
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root span of its trace
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;  ///< recording thread (dense ring index)
};

/// Value-type handle threaded through the pipeline. Disabled (the
/// default) or carrying {tracer, trace id, parent span id}.
class TraceContext {
 public:
  /// Disabled context: spans created against it record nothing.
  constexpr TraceContext() = default;
  TraceContext(Tracer* tracer, std::uint64_t trace_id,
               std::uint64_t parent_span = 0)
      : tracer_(tracer), trace_id_(trace_id), parent_span_(parent_span) {}

  [[nodiscard]] bool enabled() const { return tracer_ != nullptr; }
  [[nodiscard]] Tracer* tracer() const { return tracer_; }
  [[nodiscard]] std::uint64_t traceId() const { return trace_id_; }
  [[nodiscard]] std::uint64_t parentSpan() const { return parent_span_; }

 private:
  Tracer* tracer_ = nullptr;
  std::uint64_t trace_id_ = 0;
  std::uint64_t parent_span_ = 0;
};

/// Collects spans from any number of threads. Thread-safe throughout.
class Tracer {
 public:
  /// `ring_capacity` caps the retained spans PER RECORDING THREAD;
  /// overflow overwrites the oldest records (counted, see drain()).
  explicit Tracer(std::size_t ring_capacity = 1 << 16);
  ~Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Starts a new trace: a fresh trace id wrapped in a root context.
  [[nodiscard]] TraceContext beginTrace() {
    return TraceContext(this, next_trace_id_.fetch_add(
                                  1, std::memory_order_relaxed));
  }

  /// All retained spans, in recording order per thread, and the count of
  /// records lost to ring overflow. Does not clear — a long-running
  /// service can export repeatedly.
  struct Drained {
    std::vector<SpanRecord> records;
    std::size_t dropped = 0;
  };
  [[nodiscard]] Drained drain() const;

  /// Steady-clock nanoseconds since this tracer was constructed.
  [[nodiscard]] std::uint64_t nowNs() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  [[nodiscard]] std::uint64_t newSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Appends to the calling thread's ring (called by ~Span).
  void record(const SpanRecord& r);

  /// Per-thread storage; opaque outside trace.cpp (public only so the
  /// thread-local ring cache there can name it).
  struct Ring;

 private:
  Ring* threadRing();

  std::chrono::steady_clock::time_point epoch_;
  std::size_t ring_capacity_;
  std::uint64_t epoch_id_;  ///< process-unique; keys the thread-local cache
  std::atomic<std::uint64_t> next_trace_id_{1};
  std::atomic<std::uint64_t> next_span_id_{1};
  mutable std::mutex rings_mutex_;
  std::vector<std::unique_ptr<Ring>> rings_;
};

/// RAII span. Construct against a context; destruction records the span
/// into the context's tracer. On a disabled context every member is a
/// no-op (one branch, no atomics, no clock reads).
class Span {
 public:
  Span(const TraceContext& ctx, const char* name) {
    if (!ctx.enabled()) return;
    tracer_ = ctx.tracer();
    record_.name = name;
    record_.trace_id = ctx.traceId();
    record_.parent_id = ctx.parentSpan();
    record_.span_id = tracer_->newSpanId();
    record_.begin_ns = tracer_->nowNs();
  }
  ~Span() {
    if (tracer_ == nullptr) return;
    record_.end_ns = tracer_->nowNs();
    tracer_->record(record_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Context for children of this span — pass into callees (possibly on
  /// other threads) so their spans nest under this one. Disabled when
  /// this span is.
  [[nodiscard]] TraceContext context() const {
    return tracer_ == nullptr
               ? TraceContext()
               : TraceContext(tracer_, record_.trace_id, record_.span_id);
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanRecord record_;
};

/// Chrome trace_event JSON ("Complete" X events; load via chrome://tracing
/// or https://ui.perfetto.dev). One row per recording thread; parent span
/// ids are carried in args for cross-thread nesting checks.
void writeChromeTrace(std::ostream& out,
                      const std::vector<SpanRecord>& records);

/// Human-readable per-span-name aggregate (count, total ms, share of the
/// named root span when present), sorted by total time descending.
[[nodiscard]] std::string traceSummary(const std::vector<SpanRecord>& records);

}  // namespace prio::obs
