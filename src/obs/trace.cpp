#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>
#include <utility>

namespace prio::obs {

// Fixed-capacity overwrite-oldest ring. Appends come only from the owner
// thread; drain() may run concurrently from any thread, so entries are
// protected by a mutex that the owner holds for a handful of stores —
// uncontended in steady state (drains are rare), and exactly the
// synchronization TSan wants to see.
struct Tracer::Ring {
  explicit Ring(std::size_t cap) : capacity(cap) { records.reserve(cap); }
  std::mutex mutex;
  std::vector<SpanRecord> records;  ///< grows to capacity, then circular
  std::size_t capacity;
  std::size_t head = 0;  ///< next overwrite position once full
  std::size_t dropped = 0;
};

namespace {

// Process-unique tracer epochs key the thread-local ring cache: an entry
// for a destroyed tracer can never match a live one, so stale cache
// entries are inert (never dereferenced).
std::atomic<std::uint64_t> g_tracer_epochs{1};

struct CachedRing {
  std::uint64_t epoch;
  Tracer::Ring* ring;
};
thread_local std::vector<CachedRing> t_ring_cache;

}  // namespace

Tracer::Tracer(std::size_t ring_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      ring_capacity_(ring_capacity == 0 ? 1 : ring_capacity),
      epoch_id_(g_tracer_epochs.fetch_add(1, std::memory_order_relaxed)) {}

Tracer::~Tracer() = default;

Tracer::Ring* Tracer::threadRing() {
  for (const CachedRing& c : t_ring_cache) {
    if (c.epoch == epoch_id_) return c.ring;
  }
  const std::lock_guard<std::mutex> lock(rings_mutex_);
  rings_.push_back(std::make_unique<Ring>(ring_capacity_));
  Ring* ring = rings_.back().get();
  t_ring_cache.push_back({epoch_id_, ring});
  return ring;
}

void Tracer::record(const SpanRecord& r) {
  Ring* ring = threadRing();
  const std::lock_guard<std::mutex> lock(ring->mutex);
  if (ring->records.size() < ring->capacity) {
    ring->records.push_back(r);
  } else {
    ring->records[ring->head] = r;
    ring->head = (ring->head + 1) % ring->capacity;
    ++ring->dropped;
  }
}

Tracer::Drained Tracer::drain() const {
  Drained out;
  const std::lock_guard<std::mutex> rings_lock(rings_mutex_);
  for (std::size_t t = 0; t < rings_.size(); ++t) {
    Ring* ring = rings_[t].get();
    const std::lock_guard<std::mutex> lock(ring->mutex);
    // Oldest-first: the segment after head was written before the one
    // before it once the ring has wrapped.
    for (std::size_t i = 0; i < ring->records.size(); ++i) {
      const std::size_t idx = (ring->head + i) % ring->records.size();
      SpanRecord r = ring->records[idx];
      r.tid = static_cast<std::uint32_t>(t);
      out.records.push_back(r);
    }
    out.dropped += ring->dropped;
  }
  return out;
}

void writeChromeTrace(std::ostream& out,
                      const std::vector<SpanRecord>& records) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& r : records) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << r.name << "\",\"cat\":\"prio\",\"ph\":\"X\""
        << ",\"pid\":1,\"tid\":" << r.tid
        << ",\"ts\":" << static_cast<double>(r.begin_ns) / 1e3
        << ",\"dur\":" << static_cast<double>(r.end_ns - r.begin_ns) / 1e3
        << ",\"args\":{\"trace_id\":" << r.trace_id
        << ",\"span_id\":" << r.span_id << ",\"parent_id\":" << r.parent_id
        << "}}";
  }
  out << "]}\n";
}

std::string traceSummary(const std::vector<SpanRecord>& records) {
  struct Agg {
    std::size_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::string, Agg> by_name;
  std::uint64_t root_ns = 0;
  for (const SpanRecord& r : records) {
    Agg& a = by_name[r.name];
    ++a.count;
    a.total_ns += r.end_ns - r.begin_ns;
    if (r.parent_id == 0) root_ns += r.end_ns - r.begin_ns;
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(),
                                                by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  std::ostringstream out;
  out << "span                       count     total ms";
  if (root_ns > 0) out << "   % of roots";
  out << "\n";
  for (const auto& [name, agg] : rows) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "%-26s %5zu %12.3f", name.c_str(),
                  agg.count, static_cast<double>(agg.total_ns) / 1e6);
    out << buf;
    if (root_ns > 0) {
      std::snprintf(buf, sizeof buf, " %11.1f%%",
                    100.0 * static_cast<double>(agg.total_ns) /
                        static_cast<double>(root_ns));
      out << buf;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace prio::obs
