#include "obs/metrics.h"

#include <algorithm>

namespace prio::obs {

namespace {

/// Prometheus metric identifiers: [a-zA-Z_][a-zA-Z0-9_]*. Dots and every
/// other separator collapse to '_'.
std::string promName(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + name.size());
  out.append(prefix);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

double HistogramSnapshot::quantileSeconds(double q) const {
  if (count == 0) return 0.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
    seen += buckets[b];
    if (seen > rank) return bucketUpperSeconds(b);
  }
  return maxSeconds();
}

std::uint64_t Snapshot::counterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

void Snapshot::writeJson(std::ostream& out) const {
  out << "{";
  bool first = true;
  auto sep = [&] {
    if (!first) out << ",";
    first = false;
  };
  for (const auto& [name, value] : counters) {
    sep();
    out << "\"" << name << "\":" << value;
  }
  for (const auto& [name, value] : gauges) {
    sep();
    out << "\"" << name << "\":" << value;
  }
  for (const HistogramSnapshot& h : histograms) {
    sep();
    out << "\"" << h.name << "\":{\"count\":" << h.count
        << ",\"mean_s\":" << h.meanSeconds()
        << ",\"p50_s\":" << h.quantileSeconds(0.50)
        << ",\"p99_s\":" << h.quantileSeconds(0.99)
        << ",\"max_s\":" << h.maxSeconds() << "}";
  }
  out << "}";
}

void Snapshot::writePrometheus(std::ostream& out,
                               std::string_view prefix) const {
  for (const auto& [name, value] : counters) {
    const std::string id = promName(prefix, name);
    out << "# TYPE " << id << " counter\n" << id << " " << value << "\n";
  }
  for (const auto& [name, value] : gauges) {
    const std::string id = promName(prefix, name);
    out << "# TYPE " << id << " gauge\n" << id << " " << value << "\n";
  }
  for (const HistogramSnapshot& h : histograms) {
    const std::string id = promName(prefix, h.name) + "_seconds";
    out << "# TYPE " << id << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      cumulative += h.buckets[b];
      // Empty tail buckets add nothing a reader needs; always emit the
      // first bucket and every bucket up to the last non-empty one so
      // the series stays short on sparse histograms.
      if (cumulative == h.count && b + 1 < Histogram::kBuckets &&
          h.buckets[b] == 0 && b > 0) {
        continue;
      }
      out << id << "_bucket{le=\"" << HistogramSnapshot::bucketUpperSeconds(b)
          << "\"} " << cumulative << "\n";
    }
    out << id << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << id << "_sum " << static_cast<double>(h.sum_us) / 1e6 << "\n";
    out << id << "_count " << h.count << "\n";
  }
}

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Counter& c : counters_) {
    if (c.name() == name) return c;
  }
  return counters_.emplace_back(std::string(name));
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Gauge& g : gauges_) {
    if (g.name() == name) return g;
  }
  return gauges_.emplace_back(std::string(name));
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Histogram& h : histograms_) {
    if (h.name() == name) return h;
  }
  return histograms_.emplace_back(std::string(name));
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot out;
  out.counters.reserve(counters_.size());
  for (const Counter& c : counters_) out.counters.emplace_back(c.name(), c.get());
  out.gauges.reserve(gauges_.size());
  for (const Gauge& g : gauges_) out.gauges.emplace_back(g.name(), g.get());
  out.histograms.reserve(histograms_.size());
  for (const Histogram& h : histograms_) {
    HistogramSnapshot hs;
    hs.name = h.name();
    hs.count = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      hs.buckets[b] = h.buckets_[b].load(std::memory_order_relaxed);
      // Derive count from the bucket reads instead of the separate count_
      // atomic: a snapshot taken mid-record() would otherwise see the two
      // skewed, and Prometheus requires _bucket{le="+Inf"} == _count.
      hs.count += hs.buckets[b];
    }
    hs.sum_us = h.sum_us_.load(std::memory_order_relaxed);
    hs.max_us = h.max_us_.load(std::memory_order_relaxed);
    out.histograms.push_back(std::move(hs));
  }
  return out;
}

}  // namespace prio::obs
