// Process-wide metrics registry: named counters, gauges, and fixed-bucket
// latency histograms behind one snapshot/export API.
//
// Design (DESIGN.md §10):
//   - Handles are pre-registered: counter()/gauge()/histogram() take the
//     registration mutex once and return a stable reference (instruments
//     live in deques, so later registrations never move them). The hot
//     path — Counter::add, Gauge::set, Histogram::record — is lock-free:
//     relaxed atomics only, safe from any thread.
//   - Reads go through snapshot(), taken under the registration mutex so
//     the instrument list is stable; the values themselves are monotonic
//     relaxed-atomic reads that may lag in-flight updates by one
//     operation, which is the same contract the old service-local
//     metrics had.
//   - Two exporters render the SAME snapshot: writeJson() (the flat
//     object embedded in prio_serve's metrics.json) and
//     writePrometheus() (the text exposition format behind
//     prio_serve --metrics-text).
//
// Instrument names use dotted lower_snake segments ("requests.submitted",
// "phase.reduce"); the Prometheus exporter maps them to
// prio_requests_submitted-style identifiers.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace prio::obs {

/// One relaxed-atomic counter (monotonically increasing).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t get() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> v_{0};
};

/// A settable value (queue depth, high-water marks, config echoes).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::uint64_t v) { v_.store(v, std::memory_order_relaxed); }
  /// set(max(current, v)) — lock-free high-water update.
  void setMax(std::uint64_t v) {
    std::uint64_t seen = v_.load(std::memory_order_relaxed);
    while (v > seen &&
           !v_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t get() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> v_{0};
};

/// Latency histogram with fixed power-of-two-microsecond buckets: bucket i
/// counts samples in [2^i, 2^(i+1)) us (bucket 0 absorbs sub-microsecond
/// samples, the last bucket everything above ~2100 s). The same scheme the
/// service's original per-phase histograms used, so quantile semantics are
/// unchanged by the registry migration.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 32;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(double seconds) {
    const double us = seconds * 1e6;
    const std::uint64_t ticks = us < 1.0 ? 0 : static_cast<std::uint64_t>(us);
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets &&
           (std::uint64_t{1} << (bucket + 1)) <= ticks) {
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_us_.fetch_add(ticks, std::memory_order_relaxed);
    // CAS max; relaxed is fine — the value is monotone.
    std::uint64_t seen = max_us_.load(std::memory_order_relaxed);
    while (ticks > seen &&
           !max_us_.compare_exchange_weak(seen, ticks,
                                          std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  std::string name_;
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
  std::atomic<std::uint64_t> max_us_{0};
};

/// Point-in-time copy of one histogram, with derived statistics.
struct HistogramSnapshot {
  std::string name;
  std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum_us = 0;
  std::uint64_t max_us = 0;

  [[nodiscard]] double meanSeconds() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum_us) /
                            (1e6 * static_cast<double>(count));
  }
  [[nodiscard]] double maxSeconds() const {
    return static_cast<double>(max_us) / 1e6;
  }
  /// Upper bound of the bucket containing the q-quantile (q in [0,1]),
  /// in seconds. 0 when empty.
  [[nodiscard]] double quantileSeconds(double q) const;
  /// Upper bound of bucket i in seconds (2^(i+1) us).
  [[nodiscard]] static double bucketUpperSeconds(std::size_t i) {
    return static_cast<double>(std::uint64_t{1} << (i + 1)) / 1e6;
  }
};

/// Point-in-time copy of every instrument in a registry, in registration
/// order. Both exporters (JSON, Prometheus) render from this one type.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::uint64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Counter value by exact name (0 when absent) — convenience for
  /// derived statistics like cache-hit rates.
  [[nodiscard]] std::uint64_t counterValue(std::string_view name) const;

  /// Flat JSON object: counters and gauges as "name":value, histograms as
  /// "name":{"count":..,"mean_s":..,"p50_s":..,"p99_s":..,"max_s":..}.
  void writeJson(std::ostream& out) const;
  /// Prometheus text exposition format. Every name is prefixed with
  /// `prefix` (default "prio_") and non-[a-zA-Z0-9_] characters become
  /// '_'. Histograms emit cumulative _bucket{le=...}/_sum/_count series.
  void writePrometheus(std::ostream& out,
                       std::string_view prefix = "prio_") const;
};

/// A named family of instruments. Thread-safe; instruments are owned by
/// the registry and live as long as it does.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide default registry (CLIs, one-off tools). Components
  /// that need isolated metrics — each PrioService instance, unit tests —
  /// own their own Registry instead.
  static Registry& global();

  /// Registers (or returns the existing) instrument with this name.
  /// References are stable for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Consistent point-in-time copy of all instruments (registration
  /// order). Values are relaxed reads — they may lag concurrent updates
  /// by one operation, never more.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
};

}  // namespace prio::obs
