#include "dagman/dagman_file.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#include "dag/algorithms.h"
#include "util/atomic_file.h"
#include "util/check.h"

namespace prio::dagman {

namespace {

std::string toUpper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> splitWs(const std::string& s) {
  std::istringstream is(s);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

// Parses the `key="value"` assignments of a VARS line (value may contain
// spaces; quotes are required, matching DAGMan syntax).
std::vector<std::pair<std::string, std::string>> parseVarAssignments(
    const std::string& rest, std::size_t line_no) {
  std::vector<std::pair<std::string, std::string>> out;
  std::size_t i = 0;
  const auto fail = [&](const char* why) {
    PRIO_CHECK_MSG(false, "VARS line " << line_no << ": " << why);
  };
  while (i < rest.size()) {
    while (i < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[i]))) {
      ++i;
    }
    if (i >= rest.size()) break;
    const std::size_t key_start = i;
    while (i < rest.size() && rest[i] != '=' &&
           !std::isspace(static_cast<unsigned char>(rest[i]))) {
      ++i;
    }
    const std::string key = rest.substr(key_start, i - key_start);
    if (key.empty()) fail("empty macro name");
    while (i < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[i]))) {
      ++i;
    }
    if (i >= rest.size() || rest[i] != '=') fail("expected '='");
    ++i;
    while (i < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[i]))) {
      ++i;
    }
    if (i >= rest.size() || rest[i] != '"') fail("expected opening quote");
    ++i;
    std::string value;
    while (i < rest.size() && rest[i] != '"') {
      if (rest[i] == '\\' && i + 1 < rest.size()) ++i;  // escaped char
      value.push_back(rest[i]);
      ++i;
    }
    if (i >= rest.size()) fail("unterminated quoted value");
    ++i;  // closing quote
    out.emplace_back(key, value);
  }
  return out;
}

}  // namespace

std::optional<std::string> DagmanJob::var(const std::string& key) const {
  for (auto it = vars.rbegin(); it != vars.rend(); ++it) {
    if (it->first == key) return it->second;
  }
  return std::nullopt;
}

void DagmanJob::setVar(const std::string& key, const std::string& value) {
  for (auto& kv : vars) {
    if (kv.first == key) {
      kv.second = value;
      return;
    }
  }
  vars.emplace_back(key, value);
}

DagmanFile DagmanFile::parse(std::istream& in) {
  DagmanFile out;
  std::string line;
  std::size_t line_no = 0;
  // PARENT/CHILD lines may reference jobs declared later, so collect them
  // first and resolve at the end.
  std::vector<std::tuple<std::string, std::string, std::size_t>> deps;
  std::vector<std::tuple<std::string, std::string, std::string, std::size_t>>
      vars;  // job, key, value

  while (std::getline(in, line)) {
    ++line_no;
    const std::string stripped = trim(line);
    if (stripped.empty() || stripped[0] == '#') continue;

    std::istringstream is(stripped);
    std::string keyword;
    is >> keyword;
    const std::string upper = toUpper(keyword);

    if (upper == "JOB") {
      std::string name, file, flag;
      is >> name >> file;
      PRIO_CHECK_MSG(!name.empty() && !file.empty(),
                     "malformed JOB line " << line_no);
      DagmanJob& job = out.addJob(name, file);
      while (is >> flag) {
        if (toUpper(flag) == "DONE") job.done = true;
      }
    } else if (upper == "PARENT") {
      std::string rest;
      std::getline(is, rest);
      const auto tokens = splitWs(rest);
      const auto child_it =
          std::find_if(tokens.begin(), tokens.end(), [&](const auto& t) {
            return toUpper(t) == "CHILD";
          });
      PRIO_CHECK_MSG(child_it != tokens.end() && child_it != tokens.begin() &&
                         child_it + 1 != tokens.end(),
                     "malformed PARENT/CHILD line " << line_no);
      for (auto p = tokens.begin(); p != child_it; ++p) {
        for (auto c = child_it + 1; c != tokens.end(); ++c) {
          deps.emplace_back(*p, *c, line_no);
        }
      }
    } else if (upper == "VARS") {
      std::string job;
      is >> job;
      PRIO_CHECK_MSG(!job.empty(), "malformed VARS line " << line_no);
      std::string rest;
      std::getline(is, rest);
      for (auto& [k, v] : parseVarAssignments(rest, line_no)) {
        vars.emplace_back(job, k, v, line_no);
      }
    } else {
      out.extra_lines_.push_back(stripped);
    }
  }

  for (const auto& [p, c, ln] : deps) {
    PRIO_CHECK_MSG(out.findJob(p) != nullptr,
                   "line " << ln << ": unknown parent job " << p);
    PRIO_CHECK_MSG(out.findJob(c) != nullptr,
                   "line " << ln << ": unknown child job " << c);
    out.addDependency(p, c);
  }
  for (const auto& [job, k, v, ln] : vars) {
    DagmanJob* j = out.findJob(job);
    PRIO_CHECK_MSG(j != nullptr, "line " << ln << ": VARS for unknown job "
                                         << job);
    j->setVar(k, v);
  }
  return out;
}

DagmanFile DagmanFile::parseFile(const std::string& path) {
  // A directory (or other non-regular file) "opens" successfully on
  // Linux and then reads as empty without ever setting badbit — which
  // used to parse as a valid zero-job dag and report success.
  std::error_code ec;
  const auto status = std::filesystem::status(path, ec);
  PRIO_CHECK_MSG(!ec && std::filesystem::is_regular_file(status),
                 "not a regular DAGMan file: " << path);
  std::ifstream in(path);
  PRIO_CHECK_MSG(in.good(), "cannot open DAGMan file " << path);
  DagmanFile out = parse(in);
  PRIO_CHECK_MSG(!in.bad(), "I/O error while reading DAGMan file " << path);
  return out;
}

DagmanJob& DagmanFile::addJob(std::string name, std::string submit_file) {
  PRIO_CHECK_MSG(job_index_.find(name) == job_index_.end(),
                 "duplicate JOB " << name);
  job_index_.emplace(name, jobs_.size());
  DagmanJob job;
  job.name = std::move(name);
  job.submit_file = std::move(submit_file);
  jobs_.push_back(std::move(job));
  return jobs_.back();
}

void DagmanFile::addDependency(const std::string& parent,
                               const std::string& child) {
  PRIO_CHECK_MSG(findJob(parent) != nullptr, "unknown parent " << parent);
  PRIO_CHECK_MSG(findJob(child) != nullptr, "unknown child " << child);
  dependencies_.emplace_back(parent, child);
}

DagmanJob* DagmanFile::findJob(const std::string& name) {
  auto it = job_index_.find(name);
  return it == job_index_.end() ? nullptr : &jobs_[it->second];
}

const DagmanJob* DagmanFile::findJob(const std::string& name) const {
  auto it = job_index_.find(name);
  return it == job_index_.end() ? nullptr : &jobs_[it->second];
}

dag::Digraph DagmanFile::toDigraph() const {
  dag::Digraph g;
  g.reserveNodes(jobs_.size());
  for (const DagmanJob& job : jobs_) g.addNode(job.name);
  for (const auto& [p, c] : dependencies_) {
    g.addEdge(*g.findNode(p), *g.findNode(c));
  }
  PRIO_CHECK_MSG(dag::isAcyclic(g),
                 "DAGMan dependencies contain a directed cycle");
  return g;
}

dag::Digraph DagmanFile::toPendingDigraph(
    std::vector<std::size_t>* job_of_node) const {
  dag::Digraph g;
  if (job_of_node != nullptr) job_of_node->clear();
  for (std::size_t i = 0; i < jobs_.size(); ++i) {
    if (jobs_[i].done) continue;
    g.addNode(jobs_[i].name);
    if (job_of_node != nullptr) job_of_node->push_back(i);
  }
  for (const auto& [p, c] : dependencies_) {
    const auto pn = g.findNode(p);
    const auto cn = g.findNode(c);
    if (pn.has_value() && cn.has_value()) g.addEdge(*pn, *cn);
  }
  PRIO_CHECK_MSG(dag::isAcyclic(g),
                 "DAGMan dependencies contain a directed cycle");
  return g;
}

bool DagmanFile::hasDoneJobs() const {
  for (const DagmanJob& job : jobs_) {
    if (job.done) return true;
  }
  return false;
}

void DagmanFile::write(std::ostream& out) const {
  for (const DagmanJob& job : jobs_) {
    out << "Job " << job.name << ' ' << job.submit_file;
    if (job.done) out << " DONE";
    out << '\n';
  }
  for (const DagmanJob& job : jobs_) {
    for (const auto& [k, v] : job.vars) {
      out << "Vars " << job.name << ' ' << k << "=\"" << v << "\"\n";
    }
  }
  for (const auto& [p, c] : dependencies_) {
    out << "PARENT " << p << " CHILD " << c << '\n';
  }
  for (const std::string& extra : extra_lines_) out << extra << '\n';
}

void DagmanFile::writeFile(const std::string& path) const {
  std::ofstream out(path);
  PRIO_CHECK_MSG(out.good(), "cannot write DAGMan file " << path);
  write(out);
}

void DagmanFile::writeFileAtomic(const std::string& path) const {
  util::atomicWriteFile(path, [this](std::ostream& out) { write(out); });
}

}  // namespace prio::dagman
