// The prio tool's instrumentation step (§3.2, Fig. 3): given a DAGMan
// file and a PRIO schedule, define the `jobpriority` macro for every job
// (value = the job's priority, numNodes() for the first scheduled job down
// to 1 for the last) and add `priority = $(jobpriority)` to each job's
// submit description file.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/prio.h"
#include "dagman/dagman_file.h"
#include "dagman/jsdf.h"

namespace prio::dagman {

/// Defines Vars jobpriority="<value>" for every job of the file.
/// `priorities` is indexed by the node ids of file.toDigraph() (i.e. job
/// declaration order) — exactly PrioResult::priority.
void instrumentDagmanFile(DagmanFile& file,
                          std::span<const std::size_t> priorities);

/// Rescue-dag variant: defines jobpriority only for the jobs listed in
/// `job_of_node` (the mapping produced by DagmanFile::toPendingDigraph);
/// `priorities` is indexed by pending-dag node id. Jobs marked DONE are
/// left untouched — their jobpriority (if any) survives verbatim, since
/// they will never be submitted again.
void instrumentPendingJobs(DagmanFile& file,
                           std::span<const std::size_t> priorities,
                           std::span<const std::size_t> job_of_node);

/// One-call pipeline: parse the dag out of `file`, run the prio heuristic,
/// and instrument the file. Returns the full PrioResult for inspection.
///
/// Rescue dags: jobs marked DONE are excluded from the scheduling dag
/// (DagmanFile::toPendingDigraph) and keep whatever jobpriority they
/// already carry — the heuristic sees exactly the remaining work, so a
/// resumed run gets priorities computed for the dag it will actually
/// execute. With no DONE jobs this is the original full-file pipeline;
/// the returned PrioResult is indexed by pending-dag node ids.
core::PrioResult prioritizeDagmanFile(DagmanFile& file,
                                      const core::PrioOptions& options = {});

/// Instruments every distinct submit file referenced by `file`, reading
/// and rewriting them relative to `directory`. Missing JSDFs are skipped
/// (the paper, likewise, instrumented only the DAGMan inputs when JSDFs
/// were unavailable); returns the names of the files rewritten.
std::vector<std::string> instrumentSubmitFiles(const DagmanFile& file,
                                               const std::string& directory);

}  // namespace prio::dagman
