// The prio tool's instrumentation step (§3.2, Fig. 3): given a DAGMan
// file and a PRIO schedule, define the `jobpriority` macro for every job
// (value = the job's priority, numNodes() for the first scheduled job down
// to 1 for the last) and add `priority = $(jobpriority)` to each job's
// submit description file.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "core/prio.h"
#include "dagman/dagman_file.h"
#include "dagman/jsdf.h"

namespace prio::dagman {

/// Defines Vars jobpriority="<value>" for every job of the file.
/// `priorities` is indexed by the node ids of file.toDigraph() (i.e. job
/// declaration order) — exactly PrioResult::priority.
void instrumentDagmanFile(DagmanFile& file,
                          std::span<const std::size_t> priorities);

/// One-call pipeline: parse the dag out of `file`, run the prio heuristic,
/// and instrument the file. Returns the full PrioResult for inspection.
core::PrioResult prioritizeDagmanFile(DagmanFile& file,
                                      const core::PrioOptions& options = {});

/// Instruments every distinct submit file referenced by `file`, reading
/// and rewriting them relative to `directory`. Missing JSDFs are skipped
/// (the paper, likewise, instrumented only the DAGMan inputs when JSDFs
/// were unavailable); returns the names of the files rewritten.
std::vector<std::string> instrumentSubmitFiles(const DagmanFile& file,
                                               const std::string& directory);

}  // namespace prio::dagman
