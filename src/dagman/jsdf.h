// Condor job-submit description files (JSDFs, §3.2).
//
// A JSDF is a sequence of `key = value` commands followed by one or more
// `queue` statements. The prio tool instruments each JSDF with
// `priority = $(jobpriority)` so Condor orders queued jobs by the macro
// the instrumented DAGMan file defines per job (Fig. 3). The indirection
// through the macro (rather than a hard-coded number) is deliberate: one
// JSDF may be shared by jobs of several DAGMan files needing different
// priorities.
#pragma once

#include <istream>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace prio::dagman {

/// A parsed submit description file. Lines are preserved verbatim except
/// where commands are edited.
class Jsdf {
 public:
  static Jsdf parse(std::istream& in);
  static Jsdf parseFile(const std::string& path);

  /// Value of a command ("executable", "priority", ...), if present.
  /// Command names are case-insensitive per Condor syntax.
  [[nodiscard]] std::optional<std::string> command(
      const std::string& name) const;

  /// Sets (or replaces) a command, inserting before the first `queue`
  /// statement.
  void setCommand(const std::string& name, const std::string& value);

  /// The paper's instrumentation: priority = $(jobpriority).
  void instrumentPriorityMacro() {
    setCommand("priority", "$(jobpriority)");
  }

  [[nodiscard]] const std::vector<std::string>& lines() const {
    return lines_;
  }

  void write(std::ostream& out) const;
  void writeFile(const std::string& path) const;

 private:
  std::vector<std::string> lines_;
};

}  // namespace prio::dagman
