// A working DAGMan-style workflow executor.
//
// The paper integrates prio with Condor DAGMan; this module provides the
// executable counterpart in-process: a thread-pooled engine that runs a
// dag's jobs (arbitrary callbacks — shell commands, lambdas, ...) while
// honoring dependencies, per-job priorities (Condor's `priority`
// attribute semantics: among queued jobs, highest value first), DAGMan's
// RETRY directive, and the -maxjobs throttle. On partial failure it can
// emit a rescue DAG (the original file with DONE marks), exactly like
// condor_submit_dag.
//
// Determinism: with max_workers == 1 the dispatch order is fully
// deterministic (priority desc, then eligibility order); with more
// workers only the precedence and priority-at-dispatch properties are
// guaranteed.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "dag/digraph.h"
#include "dagman/dagman_file.h"

namespace prio::dagman {

/// Runs one job; returns true on success. Called concurrently from
/// worker threads (at most ExecutorOptions::max_workers at a time).
using JobAction = std::function<bool(const std::string& job_name)>;

struct ExecutorOptions {
  /// Worker slots (concurrently running jobs).
  std::size_t max_workers = 4;
  /// DAGMan -maxjobs: cap on jobs submitted (running) at once on top of
  /// max_workers. 0 = no extra throttle.
  std::size_t max_jobs = 0;
  /// Order eligible jobs by the priority attribute (highest first) as
  /// Condor does once prio instrumented the files; false = FIFO.
  bool use_priorities = true;
  /// Default retry budget per job (DAGMan RETRY; per-job overrides via
  /// Executor::setRetries).
  std::size_t default_retries = 0;
};

/// Outcome of one workflow execution.
struct ExecutionReport {
  bool success = false;
  std::size_t executed = 0;          ///< jobs that completed successfully
  std::size_t failed = 0;            ///< jobs that exhausted retries
  std::size_t retried_attempts = 0;  ///< failed attempts that were retried
  std::size_t skipped = 0;           ///< descendants of failed jobs
  std::vector<std::string> failed_jobs;
  /// Job names in dispatch order.
  std::vector<std::string> dispatch_order;
  /// Number of dispatchable (ready, unclaimed) jobs observed at each
  /// dispatch — the executor-level analogue of E_Σ(t).
  std::vector<std::size_t> ready_history;
  double wall_seconds = 0.0;
};

/// Executes the jobs of a dag.
class Executor {
 public:
  /// The dag must be acyclic; throws util::Error otherwise.
  explicit Executor(const dag::Digraph& g, ExecutorOptions options = {});

  /// Sets per-job priorities (e.g. PrioResult::priority). Must have one
  /// entry per node. Higher runs first among simultaneously-ready jobs.
  void setPriorities(std::span<const std::size_t> priorities);

  /// Per-job retry budget (overrides ExecutorOptions::default_retries).
  void setRetries(dag::NodeId job, std::size_t retries);

  /// Marks a job as already DONE (DAGMan's DONE keyword / rescue DAGs):
  /// it is not run and its dependents treat it as satisfied.
  void setDone(dag::NodeId job);

  /// Runs the workflow to completion (or until every still-runnable job
  /// finished, when some jobs fail). Thread-safe against itself only
  /// sequentially: run() must not be called concurrently.
  [[nodiscard]] ExecutionReport run(const JobAction& action);

 private:
  const dag::Digraph& graph_;
  ExecutorOptions options_;
  std::vector<std::size_t> priority_;
  std::vector<std::size_t> retries_;
  std::vector<char> pre_done_;
};

/// Convenience pipeline mirroring condor_submit_dag: takes a (possibly
/// prio-instrumented) DAGMan file, reads each job's `jobpriority` macro
/// (defaulting to 0), honors DONE flags and RETRY extra lines, and runs
/// the workflow.
[[nodiscard]] ExecutionReport executeDagmanFile(const DagmanFile& file,
                                                const JobAction& action,
                                                ExecutorOptions options = {});

/// Writes a rescue DAG: the original file with DONE appended to every job
/// that succeeded in `report` (plus previously-done jobs), so a re-run
/// resumes where the failed run stopped.
[[nodiscard]] DagmanFile makeRescueDag(const DagmanFile& file,
                                       const ExecutionReport& report);

/// A JobAction that really runs each job's submit description: it reads
/// `<directory>/<submit_file>`, extracts the `executable` (and optional
/// `arguments`) commands, and executes them with /bin/sh -c from
/// `directory`. A job succeeds when the process exits 0. Missing submit
/// files or executables count as failures.
[[nodiscard]] JobAction shellAction(const DagmanFile& file,
                                    const std::string& directory);

}  // namespace prio::dagman
