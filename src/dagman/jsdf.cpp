#include "dagman/jsdf.h"

#include <algorithm>
#include <cctype>
#include <fstream>

#include "util/check.h"

namespace prio::dagman {

namespace {

std::string toLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

// Splits a `key = value` command line; returns false for comments, blank
// lines and queue statements.
bool splitCommand(const std::string& line, std::string& key,
                  std::string& value) {
  const std::string stripped = trim(line);
  if (stripped.empty() || stripped[0] == '#') return false;
  const std::size_t eq = stripped.find('=');
  if (eq == std::string::npos) return false;
  key = toLower(trim(stripped.substr(0, eq)));
  value = trim(stripped.substr(eq + 1));
  return !key.empty();
}

bool isQueueLine(const std::string& line) {
  const std::string stripped = toLower(trim(line));
  return stripped == "queue" || stripped.rfind("queue ", 0) == 0;
}

}  // namespace

Jsdf Jsdf::parse(std::istream& in) {
  Jsdf out;
  std::string line;
  while (std::getline(in, line)) out.lines_.push_back(line);
  return out;
}

Jsdf Jsdf::parseFile(const std::string& path) {
  std::ifstream in(path);
  PRIO_CHECK_MSG(in.good(), "cannot open submit file " << path);
  return parse(in);
}

std::optional<std::string> Jsdf::command(const std::string& name) const {
  const std::string wanted = toLower(name);
  std::optional<std::string> found;  // last assignment wins, as in Condor
  for (const std::string& line : lines_) {
    std::string key, value;
    if (splitCommand(line, key, value) && key == wanted) found = value;
  }
  return found;
}

void Jsdf::setCommand(const std::string& name, const std::string& value) {
  const std::string wanted = toLower(name);
  for (std::string& line : lines_) {
    std::string key, old_value;
    if (splitCommand(line, key, old_value) && key == wanted) {
      line = name + " = " + value;
      return;
    }
  }
  const auto queue_it = std::find_if(lines_.begin(), lines_.end(),
                                     [](const auto& l) { return isQueueLine(l); });
  lines_.insert(queue_it, name + " = " + value);
}

void Jsdf::write(std::ostream& out) const {
  for (const std::string& line : lines_) out << line << '\n';
}

void Jsdf::writeFile(const std::string& path) const {
  std::ofstream out(path);
  PRIO_CHECK_MSG(out.good(), "cannot write submit file " << path);
  write(out);
}

}  // namespace prio::dagman
