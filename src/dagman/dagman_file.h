// DAGMan input-file model (§3.2).
//
// A DAGMan input file declares jobs ("JOB <name> <submit-file>"),
// dependencies ("PARENT <p...> CHILD <c...>") and per-job macros
// ("VARS <job> key=\"value\""). The prio tool parses such a file, extracts
// the dag, runs the scheduling heuristic, and writes the file back with a
// `jobpriority` macro defined for every job (Fig. 3). Unrecognized
// directives (RETRY, SCRIPT, CONFIG, ...) are preserved verbatim.
#pragma once

#include <cstddef>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "dag/digraph.h"

namespace prio::dagman {

/// One JOB declaration.
struct DagmanJob {
  std::string name;
  std::string submit_file;
  bool done = false;  ///< the DONE keyword
  /// VARS macros in declaration order (later duplicates overwrite).
  std::vector<std::pair<std::string, std::string>> vars;

  /// Value of a macro, if defined.
  [[nodiscard]] std::optional<std::string> var(const std::string& key) const;
  /// Defines or overwrites a macro.
  void setVar(const std::string& key, const std::string& value);
};

/// A parsed DAGMan input file.
class DagmanFile {
 public:
  /// Parses from a stream. Throws util::Error on malformed lines,
  /// duplicate job names, or dependencies naming unknown jobs.
  static DagmanFile parse(std::istream& in);
  /// Parses from a file on disk.
  static DagmanFile parseFile(const std::string& path);

  [[nodiscard]] const std::vector<DagmanJob>& jobs() const { return jobs_; }
  [[nodiscard]] std::vector<DagmanJob>& jobs() { return jobs_; }
  /// (parent, child) pairs in declaration order, expanded from PARENT ...
  /// CHILD ... lines.
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
  dependencies() const {
    return dependencies_;
  }
  /// Directives preserved verbatim (RETRY, SCRIPT, ...).
  [[nodiscard]] const std::vector<std::string>& extraLines() const {
    return extra_lines_;
  }

  /// Adds a job; throws on duplicate name.
  DagmanJob& addJob(std::string name, std::string submit_file);
  /// Adds a dependency; both jobs must already exist.
  void addDependency(const std::string& parent, const std::string& child);

  [[nodiscard]] DagmanJob* findJob(const std::string& name);
  [[nodiscard]] const DagmanJob* findJob(const std::string& name) const;

  /// The job-dependency dag; node ids follow job declaration order and
  /// node names are job names. Throws util::Error if the dependencies
  /// form a cycle.
  [[nodiscard]] dag::Digraph toDigraph() const;

  /// The dag of jobs NOT marked DONE (rescue-dag re-prioritization):
  /// node ids follow declaration order over pending jobs only, and
  /// every dependency touching a DONE job is dropped — its constraint
  /// is already satisfied, so a DONE parent must not make a pending
  /// child look non-eligible to the heuristic. When `job_of_node` is
  /// non-null it receives, per node id, the index into jobs() of that
  /// pending job. With no DONE jobs this is exactly toDigraph().
  [[nodiscard]] dag::Digraph toPendingDigraph(
      std::vector<std::size_t>* job_of_node = nullptr) const;

  /// True when any job carries the DONE mark.
  [[nodiscard]] bool hasDoneJobs() const;

  /// Serializes back to DAGMan syntax (JOB lines, VARS lines, PARENT/CHILD
  /// lines, then preserved extras).
  void write(std::ostream& out) const;
  void writeFile(const std::string& path) const;
  /// As writeFile(), but crash-safe: content lands in a sibling temp
  /// file first and is rename()d into place, so an interrupted run
  /// never leaves a torn .dag (see util/atomic_file.h).
  void writeFileAtomic(const std::string& path) const;

 private:
  std::vector<DagmanJob> jobs_;
  std::map<std::string, std::size_t> job_index_;
  std::vector<std::pair<std::string, std::string>> dependencies_;
  std::vector<std::string> extra_lines_;
};

}  // namespace prio::dagman
