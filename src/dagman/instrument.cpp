#include "dagman/instrument.h"

#include <filesystem>
#include <set>

#include "util/check.h"

namespace prio::dagman {

void instrumentDagmanFile(DagmanFile& file,
                          std::span<const std::size_t> priorities) {
  PRIO_CHECK_MSG(priorities.size() == file.jobs().size(),
                 "priority vector size must match job count");
  for (std::size_t i = 0; i < file.jobs().size(); ++i) {
    file.jobs()[i].setVar("jobpriority", std::to_string(priorities[i]));
  }
}

void instrumentPendingJobs(DagmanFile& file,
                           std::span<const std::size_t> priorities,
                           std::span<const std::size_t> job_of_node) {
  PRIO_CHECK_MSG(priorities.size() == job_of_node.size(),
                 "one priority per pending job required");
  for (std::size_t node = 0; node < job_of_node.size(); ++node) {
    const std::size_t j = job_of_node[node];
    PRIO_CHECK_MSG(j < file.jobs().size(), "pending-job index out of range");
    file.jobs()[j].setVar("jobpriority", std::to_string(priorities[node]));
  }
}

core::PrioResult prioritizeDagmanFile(DagmanFile& file,
                                      const core::PrioOptions& options) {
  std::vector<std::size_t> job_of_node;
  const dag::Digraph g = file.toPendingDigraph(&job_of_node);
  core::PrioResult result = core::prioritize(core::PrioRequest(g, options));
  instrumentPendingJobs(file, result.priority, job_of_node);
  return result;
}

std::vector<std::string> instrumentSubmitFiles(const DagmanFile& file,
                                               const std::string& directory) {
  namespace fs = std::filesystem;
  std::set<std::string> distinct;
  for (const DagmanJob& job : file.jobs()) distinct.insert(job.submit_file);

  std::vector<std::string> rewritten;
  for (const std::string& name : distinct) {
    const fs::path path = fs::path(directory) / name;
    if (!fs::exists(path)) continue;
    Jsdf jsdf = Jsdf::parseFile(path.string());
    jsdf.instrumentPriorityMacro();
    jsdf.writeFile(path.string());
    rewritten.push_back(name);
  }
  return rewritten;
}

}  // namespace prio::dagman
