#include "dagman/executor.h"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_set>

#include "dag/algorithms.h"
#include "dagman/jsdf.h"
#include "util/check.h"
#include "util/timing.h"

namespace prio::dagman {

namespace {
using dag::NodeId;
}  // namespace

Executor::Executor(const dag::Digraph& g, ExecutorOptions options)
    : graph_(g),
      options_(options),
      priority_(g.numNodes(), 0),
      retries_(g.numNodes(), options.default_retries),
      pre_done_(g.numNodes(), 0) {
  PRIO_CHECK_MSG(options_.max_workers >= 1, "need at least one worker");
  PRIO_CHECK_MSG(dag::isAcyclic(g), "executor requires a dag");
}

void Executor::setPriorities(std::span<const std::size_t> priorities) {
  PRIO_CHECK_MSG(priorities.size() == graph_.numNodes(),
                 "one priority per job required");
  priority_.assign(priorities.begin(), priorities.end());
}

void Executor::setRetries(dag::NodeId job, std::size_t retries) {
  PRIO_CHECK(job < graph_.numNodes());
  retries_[job] = retries;
}

void Executor::setDone(dag::NodeId job) {
  PRIO_CHECK(job < graph_.numNodes());
  pre_done_[job] = 1;
}

ExecutionReport Executor::run(const JobAction& action) {
  const std::size_t n = graph_.numNodes();
  util::Stopwatch watch;
  ExecutionReport report;

  // Ready jobs ordered by (priority desc, arrival seq asc); FIFO mode
  // uses priority 0 for everyone, leaving pure arrival order.
  struct ReadyKey {
    std::size_t neg_priority;  // max priority -> smallest key
    std::size_t seq;
    NodeId job;
    bool operator<(const ReadyKey& o) const {
      if (neg_priority != o.neg_priority) {
        return neg_priority < o.neg_priority;
      }
      return seq < o.seq;
    }
  };

  std::mutex mu;
  std::condition_variable cv;
  std::set<ReadyKey> ready;
  std::vector<std::size_t> pending(n, 0);
  std::vector<char> terminal(n, 0);  // done, failed or skipped
  std::size_t seq_counter = 0;
  std::size_t running = 0;
  std::size_t active_total = 0;  // jobs that must reach a terminal state
  std::size_t terminal_count = 0;
  std::vector<std::size_t> attempts_left = retries_;

  const auto keyFor = [&](NodeId u) {
    const std::size_t p = options_.use_priorities ? priority_[u] : 0;
    return ReadyKey{~p, seq_counter++, u};
  };

  // Seed the ready set; pre-done jobs satisfy their children up front.
  {
    for (NodeId u = 0; u < n; ++u) {
      if (!pre_done_[u]) ++active_total;
    }
    for (NodeId u = 0; u < n; ++u) {
      std::size_t waiting = 0;
      for (NodeId p : graph_.parents(u)) {
        if (!pre_done_[p]) ++waiting;
      }
      pending[u] = waiting;
    }
    for (NodeId u = 0; u < n; ++u) {
      if (!pre_done_[u] && pending[u] == 0) ready.insert(keyFor(u));
    }
  }

  const std::size_t concurrency =
      options_.max_jobs == 0
          ? options_.max_workers
          : std::min(options_.max_workers, options_.max_jobs);

  // Marks every not-yet-terminal descendant of a failed job as skipped.
  const auto skipDescendants = [&](NodeId failed_job) {
    for (NodeId d : dag::descendants(graph_, failed_job)) {
      if (!terminal[d] && !pre_done_[d]) {
        terminal[d] = 1;
        ++terminal_count;
        ++report.skipped;
        // Remove from ready if it slipped in (cannot actually happen —
        // a descendant of a failed job always has an unfinished parent —
        // but stay defensive at O(ready) cost).
        for (auto it = ready.begin(); it != ready.end(); ++it) {
          if (it->job == d) {
            ready.erase(it);
            break;
          }
        }
      }
    }
  };

  const auto finished = [&] { return terminal_count == active_total; };

  const auto worker = [&] {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      cv.wait(lock, [&] {
        return finished() || (!ready.empty() && running < concurrency);
      });
      if (finished()) {
        cv.notify_all();
        return;
      }
      const ReadyKey key = *ready.begin();
      ready.erase(ready.begin());
      report.ready_history.push_back(ready.size() + 1);
      report.dispatch_order.push_back(graph_.name(key.job));
      ++running;
      lock.unlock();

      bool ok = false;
      try {
        ok = action(graph_.name(key.job));
      } catch (...) {
        ok = false;
      }

      lock.lock();
      --running;
      const NodeId u = key.job;
      if (ok) {
        terminal[u] = 1;
        ++terminal_count;
        ++report.executed;
        for (NodeId v : graph_.children(u)) {
          if (--pending[v] == 0 && !terminal[v]) ready.insert(keyFor(v));
        }
      } else if (attempts_left[u] > 0) {
        --attempts_left[u];
        ++report.retried_attempts;
        ready.insert(keyFor(u));  // re-queued like a newly eligible job
      } else {
        terminal[u] = 1;
        ++terminal_count;
        ++report.failed;
        report.failed_jobs.push_back(graph_.name(u));
        skipDescendants(u);
      }
      cv.notify_all();
    }
  };

  std::vector<std::thread> pool;
  const std::size_t threads = std::min<std::size_t>(
      options_.max_workers, std::max<std::size_t>(active_total, 1));
  pool.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& t : pool) t.join();

  report.success = report.failed == 0 && report.skipped == 0;
  report.wall_seconds = watch.elapsedSeconds();
  return report;
}

ExecutionReport executeDagmanFile(const DagmanFile& file,
                                  const JobAction& action,
                                  ExecutorOptions options) {
  const dag::Digraph g = file.toDigraph();
  Executor exec(g, options);

  std::vector<std::size_t> priorities(g.numNodes(), 0);
  for (std::size_t i = 0; i < file.jobs().size(); ++i) {
    const DagmanJob& job = file.jobs()[i];
    if (const auto p = job.var("jobpriority")) {
      priorities[i] = static_cast<std::size_t>(
          std::strtoull(p->c_str(), nullptr, 10));
    }
    if (job.done) exec.setDone(static_cast<NodeId>(i));
  }
  exec.setPriorities(priorities);

  // RETRY and PRIORITY directives live in the preserved extra lines
  // (PRIORITY is modern DAGMan's native keyword; the jobpriority macro
  // written by the prio tool takes precedence when both are present).
  bool priorities_changed = false;
  for (const std::string& line : file.extraLines()) {
    std::istringstream is(line);
    std::string keyword, job_name;
    std::size_t count = 0;
    if (!(is >> keyword)) continue;
    std::transform(keyword.begin(), keyword.end(), keyword.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (keyword == "RETRY") {
      if (is >> job_name >> count) {
        if (const auto id = g.findNode(job_name)) {
          exec.setRetries(*id, count);
        }
      }
    } else if (keyword == "PRIORITY") {
      if (is >> job_name >> count) {
        if (const auto id = g.findNode(job_name)) {
          if (!file.jobs()[*id].var("jobpriority").has_value()) {
            priorities[*id] = count;
            priorities_changed = true;
          }
        }
      }
    }
  }
  if (priorities_changed) exec.setPriorities(priorities);
  return exec.run(action);
}

JobAction shellAction(const DagmanFile& file, const std::string& directory) {
  namespace fs = std::filesystem;
  // Resolve every job's command line up front (parsing JSDFs once).
  auto commands = std::make_shared<std::map<std::string, std::string>>();
  for (const DagmanJob& job : file.jobs()) {
    const fs::path path = fs::path(directory) / job.submit_file;
    if (!fs::exists(path)) continue;  // missing JSDF -> job will fail
    const Jsdf jsdf = Jsdf::parseFile(path.string());
    const auto exe = jsdf.command("executable");
    if (!exe.has_value()) continue;
    std::string cmd = *exe;
    if (const auto args = jsdf.command("arguments")) {
      cmd += ' ' + *args;
    }
    commands->emplace(job.name, std::move(cmd));
  }
  const std::string dir = directory;
  return [commands, dir](const std::string& job_name) {
    const auto it = commands->find(job_name);
    if (it == commands->end()) return false;
    const std::string line = "cd '" + dir + "' && " + it->second;
    return std::system(line.c_str()) == 0;
  };
}

DagmanFile makeRescueDag(const DagmanFile& file,
                         const ExecutionReport& report) {
  std::unordered_set<std::string> dispatched(report.dispatch_order.begin(),
                                             report.dispatch_order.end());
  std::unordered_set<std::string> failed(report.failed_jobs.begin(),
                                         report.failed_jobs.end());
  DagmanFile rescue = file;
  for (DagmanJob& job : rescue.jobs()) {
    if (job.done) continue;  // already done before the run
    if (dispatched.count(job.name) != 0 && failed.count(job.name) == 0) {
      job.done = true;
    }
  }
  return rescue;
}

}  // namespace prio::dagman
