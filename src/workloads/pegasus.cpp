#include "workloads/pegasus.h"

#include <string>
#include <vector>

#include "util/check.h"

namespace prio::workloads {

namespace {
using dag::Digraph;
using dag::NodeId;

std::string idx2(const std::string& stem, std::size_t i, std::size_t j) {
  return stem + std::to_string(i) + "_" + std::to_string(j);
}
}  // namespace

std::size_t cybershakeJobCount(const CybershakeParams& p) {
  return p.sites * (2 + 2 * p.synthesis_per_site + 1) + 1;
}

dag::Digraph makeCybershake(const CybershakeParams& p) {
  PRIO_CHECK_MSG(p.sites >= 1 && p.synthesis_per_site >= 1,
                 "CyberShake needs >= 1 site and >= 1 synthesis job");
  Digraph g;
  g.reserveNodes(cybershakeJobCount(p));
  const NodeId merge = g.addNode("global_merge");
  for (std::size_t s = 0; s < p.sites; ++s) {
    // Two strain-Green-tensor extractions per site; every synthesis job
    // depends on BOTH (the shared-parent pattern).
    const NodeId sgt_x = g.addNode(idx2("extract_sgt_x", s, 0));
    const NodeId sgt_y = g.addNode(idx2("extract_sgt_y", s, 0));
    const NodeId zip = g.addNode("zip_seis" + std::to_string(s));
    for (std::size_t j = 0; j < p.synthesis_per_site; ++j) {
      const NodeId synth = g.addNode(idx2("synthesis", s, j));
      g.addEdge(sgt_x, synth);
      g.addEdge(sgt_y, synth);
      const NodeId peak = g.addNode(idx2("peak_val", s, j));
      g.addEdge(synth, peak);
      g.addEdge(peak, zip);
    }
    g.addEdge(zip, merge);
  }
  PRIO_CHECK(g.numNodes() == cybershakeJobCount(p));
  return g;
}

std::size_t epigenomicsJobCount(const EpigenomicsParams& p) {
  return p.lanes * (1 + 4 * p.splits_per_lane) + 3;
}

dag::Digraph makeEpigenomics(const EpigenomicsParams& p) {
  PRIO_CHECK_MSG(p.lanes >= 1 && p.splits_per_lane >= 1,
                 "Epigenomics needs >= 1 lane and >= 1 split");
  Digraph g;
  g.reserveNodes(epigenomicsJobCount(p));
  const NodeId map_merge = g.addNode("map_merge");
  for (std::size_t lane = 0; lane < p.lanes; ++lane) {
    const NodeId split = g.addNode("fastq_split" + std::to_string(lane));
    for (std::size_t j = 0; j < p.splits_per_lane; ++j) {
      // Four-stage chain per split.
      const NodeId filter = g.addNode(idx2("filter_contams", lane, j));
      const NodeId sanger = g.addNode(idx2("sol2sanger", lane, j));
      const NodeId bfq = g.addNode(idx2("fastq2bfq", lane, j));
      const NodeId map = g.addNode(idx2("map", lane, j));
      g.addEdge(split, filter);
      g.addEdge(filter, sanger);
      g.addEdge(sanger, bfq);
      g.addEdge(bfq, map);
      g.addEdge(map, map_merge);
    }
  }
  const NodeId index = g.addNode("maq_index");
  const NodeId pileup = g.addNode("pileup");
  g.addEdge(map_merge, index);
  g.addEdge(index, pileup);
  PRIO_CHECK(g.numNodes() == epigenomicsJobCount(p));
  return g;
}

}  // namespace prio::workloads
