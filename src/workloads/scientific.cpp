#include "workloads/scientific.h"

#include <string>
#include <vector>

#include "util/check.h"

namespace prio::workloads {

namespace {
using dag::Digraph;
using dag::NodeId;

std::string idx(const std::string& stem, std::size_t i) {
  return stem + std::to_string(i);
}

std::string idx2(const std::string& stem, std::size_t i, std::size_t j) {
  return stem + std::to_string(i) + "_" + std::to_string(j);
}
}  // namespace

std::size_t airsnJobCount(const AirsnParams& p) {
  return p.handle_length + 3 * p.width + 2;
}

dag::Digraph makeAirsn(const AirsnParams& p) {
  PRIO_CHECK_MSG(p.width >= 1 && p.handle_length >= 1,
                 "AIRSN needs width >= 1 and handle_length >= 1");
  Digraph g;
  g.reserveNodes(airsnJobCount(p));

  // The handle: a chain of preprocessing jobs.
  std::vector<NodeId> handle;
  for (std::size_t i = 0; i < p.handle_length; ++i) {
    handle.push_back(g.addNode(idx("handle", i)));
    if (i > 0) g.addEdge(handle[i - 1], handle[i]);
  }
  const NodeId handle_end = handle.back();

  // First umbrella cover: each parallel job depends on the handle end and
  // on a dedicated fringe job.
  std::vector<NodeId> fringe, fork1;
  for (std::size_t i = 0; i < p.width; ++i) {
    fringe.push_back(g.addNode(idx("fringe", i)));
  }
  for (std::size_t i = 0; i < p.width; ++i) {
    fork1.push_back(g.addNode(idx("align", i)));
    g.addEdge(handle_end, fork1[i]);
    g.addEdge(fringe[i], fork1[i]);
  }
  const NodeId join1 = g.addNode("reslice_join");
  for (NodeId u : fork1) g.addEdge(u, join1);

  // Second umbrella cover and the final join.
  std::vector<NodeId> fork2;
  for (std::size_t i = 0; i < p.width; ++i) {
    fork2.push_back(g.addNode(idx("smooth", i)));
    g.addEdge(join1, fork2[i]);
  }
  const NodeId join2 = g.addNode("final_join");
  for (NodeId u : fork2) g.addEdge(u, join2);

  PRIO_CHECK(g.numNodes() == airsnJobCount(p));
  return g;
}

std::size_t inspiralJobCount(const InspiralParams& p) {
  return p.segments * (2 * p.templates + 6);
}

dag::Digraph makeInspiral(const InspiralParams& p) {
  PRIO_CHECK_MSG(p.segments >= 2 && p.templates >= 1,
                 "Inspiral needs >= 2 segments and >= 1 template");
  Digraph g;
  g.reserveNodes(inspiralJobCount(p));

  const std::size_t S = p.segments;
  const std::size_t T = p.templates;
  std::vector<NodeId> df(S), cal(S);
  std::vector<std::vector<NodeId>> tb(S), insp(S);
  std::vector<NodeId> veto(S), thinca(S);

  for (std::size_t i = 0; i < S; ++i) {
    df[i] = g.addNode(idx("datafind", i));
    // Per-segment calibration data: a shallow second parent for every
    // inspiral job (the AIRSN "fringe" pattern). FIFO spends its earliest
    // steps on these immediately-eligible jobs without unlocking
    // anything, which is where PRIO's eligibility advantage comes from.
    cal[i] = g.addNode(idx("calibration", i));
    for (std::size_t j = 0; j < T; ++j) {
      tb[i].push_back(g.addNode(idx2("tmpltbank", i, j)));
      g.addEdge(df[i], tb[i][j]);
    }
    for (std::size_t j = 0; j < T; ++j) {
      insp[i].push_back(g.addNode(idx2("inspiral", i, j)));
      g.addEdge(tb[i][j], insp[i][j]);
      g.addEdge(cal[i], insp[i][j]);
    }
    veto[i] = g.addNode(idx("veto", i));
    thinca[i] = g.addNode(idx("thinca", i));
    const NodeId trig = g.addNode(idx("trigbank", i));
    const NodeId sire = g.addNode(idx("sire", i));
    g.addEdge(thinca[i], trig);
    g.addEdge(trig, sire);
  }
  // Coincidence couples segments at mixed depths: thinca_i needs its own
  // inspirals (depth 3) and veto_i, which digests the *next* segment's
  // inspirals (depth 4, wrapping around). None of these arcs is a
  // shortcut, and once every segment sits at the inspiral level no source
  // roots a bipartite subdag, so the general decomposition search welds
  // all inspiral/veto/thinca jobs into one non-bipartite component.
  for (std::size_t i = 0; i < S; ++i) {
    const std::size_t next = (i + 1) % S;
    for (std::size_t j = 0; j < T; ++j) {
      g.addEdge(insp[i][j], thinca[i]);
      g.addEdge(insp[next][j], veto[i]);
    }
    g.addEdge(veto[i], thinca[i]);
  }

  PRIO_CHECK(g.numNodes() == inspiralJobCount(p));
  return g;
}

std::size_t montageJobCount(const MontageParams& p) {
  const std::size_t grid = p.rows * p.cols;
  const std::size_t overlaps = p.rows * (p.cols - 1) + (p.rows - 1) * p.cols +
                               p.extra_diagonal_overlaps;
  return 2 * grid + overlaps + 6;
}

dag::Digraph makeMontage(const MontageParams& p) {
  PRIO_CHECK_MSG(p.rows >= 2 && p.cols >= 2,
                 "Montage needs at least a 2x2 grid");
  PRIO_CHECK_MSG(p.extra_diagonal_overlaps <= (p.rows - 1) * (p.cols - 1),
                 "more diagonal overlaps than diagonal neighbor pairs");
  Digraph g;
  g.reserveNodes(montageJobCount(p));

  const std::size_t R = p.rows, C = p.cols;
  auto cell = [&](std::size_t r, std::size_t c) { return r * C + c; };
  std::vector<NodeId> project(R * C);
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      project[cell(r, c)] = g.addNode(idx2("mProject", r, c));
    }
  }

  // One mDiffFit per overlapping image pair; projects are the (shared)
  // parents. 4-neighbor overlaps plus the first `extra` diagonal pairs in
  // row-major order.
  std::vector<std::pair<NodeId, NodeId>> overlaps;
  for (std::size_t r = 0; r < R; ++r) {
    for (std::size_t c = 0; c + 1 < C; ++c) {
      overlaps.emplace_back(project[cell(r, c)], project[cell(r, c + 1)]);
    }
  }
  for (std::size_t r = 0; r + 1 < R; ++r) {
    for (std::size_t c = 0; c < C; ++c) {
      overlaps.emplace_back(project[cell(r, c)], project[cell(r + 1, c)]);
    }
  }
  std::size_t extra = 0;
  for (std::size_t r = 0; r + 1 < R && extra < p.extra_diagonal_overlaps;
       ++r) {
    for (std::size_t c = 0;
         c + 1 < C && extra < p.extra_diagonal_overlaps; ++c) {
      overlaps.emplace_back(project[cell(r, c)],
                            project[cell(r + 1, c + 1)]);
      ++extra;
    }
  }
  const NodeId concat = g.addNode("mConcatFit");
  for (std::size_t i = 0; i < overlaps.size(); ++i) {
    const NodeId diff = g.addNode(idx("mDiffFit", i));
    g.addEdge(overlaps[i].first, diff);
    g.addEdge(overlaps[i].second, diff);
    g.addEdge(diff, concat);
  }

  const NodeId bgmodel = g.addNode("mBgModel");
  g.addEdge(concat, bgmodel);
  const NodeId imgtbl = g.addNode("mImgtbl");
  for (std::size_t i = 0; i < R * C; ++i) {
    const NodeId background = g.addNode(idx("mBackground", i));
    g.addEdge(bgmodel, background);
    g.addEdge(background, imgtbl);
  }
  const NodeId add = g.addNode("mAdd");
  g.addEdge(imgtbl, add);
  const NodeId shrink = g.addNode("mShrink");
  g.addEdge(add, shrink);
  const NodeId jpeg = g.addNode("mJPEG");
  g.addEdge(shrink, jpeg);

  PRIO_CHECK(g.numNodes() == montageJobCount(p));
  return g;
}

std::size_t sdssJobCount(const SdssParams& p) {
  const std::size_t targets = 2 * p.fields + 1;
  const std::size_t long_chains = (targets + 1) / 2;
  const std::size_t short_chains = targets / 2;
  return p.fields + targets + long_chains * p.long_chain +
         short_chains * p.short_chain + 1 + p.output_files;
}

dag::Digraph makeSdss(const SdssParams& p) {
  PRIO_CHECK_MSG(p.fields >= 2 && p.short_chain >= 1 &&
                     p.long_chain >= p.short_chain,
                 "SDSS needs >= 2 fields and long_chain >= short_chain >= 1");
  Digraph g;
  g.reserveNodes(sdssJobCount(p));

  // W(fields, 3) core: each field-extraction source has 3 target
  // children, consecutive fields sharing one.
  std::vector<NodeId> fields(p.fields);
  for (std::size_t i = 0; i < p.fields; ++i) {
    fields[i] = g.addNode(idx("field", i));
  }
  std::vector<NodeId> targets;
  NodeId last_target = 0;
  std::size_t target_counter = 0;
  for (std::size_t i = 0; i < p.fields; ++i) {
    if (i > 0) g.addEdge(fields[i], last_target);
    const std::size_t fresh = (i == 0) ? 3 : 2;
    for (std::size_t j = 0; j < fresh; ++j) {
      last_target = g.addNode(idx("target", target_counter++));
      g.addEdge(fields[i], last_target);
      targets.push_back(last_target);
    }
  }
  PRIO_CHECK(targets.size() == 2 * p.fields + 1);

  // Per-target processing chains joining into one coadd. Chain depths
  // alternate long/short: the depth heterogeneity is what separates PRIO
  // from FIFO here — FIFO drains the short chains early and then starves,
  // while PRIO drives the long (bottleneck) chains first and keeps the
  // short chains in reserve as eligible work.
  std::vector<NodeId> chain_ends;
  chain_ends.reserve(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    const std::size_t len = (t % 2 == 0) ? p.long_chain : p.short_chain;
    NodeId prev = targets[t];
    for (std::size_t k = 0; k < len; ++k) {
      const NodeId step = g.addNode(idx2("proc", t, k));
      g.addEdge(prev, step);
      prev = step;
    }
    chain_ends.push_back(prev);
  }
  const NodeId coadd = g.addNode("coadd");
  for (NodeId e : chain_ends) g.addEdge(e, coadd);
  for (std::size_t k = 0; k < p.output_files; ++k) {
    g.addEdge(coadd, g.addNode(idx("catalog", k)));
  }

  PRIO_CHECK(g.numNodes() == sdssJobCount(p));
  return g;
}

InspiralParams inspiralBenchScale() { return InspiralParams{83, 15}; }

MontageParams montageBenchScale() { return MontageParams{20, 90, 785}; }

SdssParams sdssBenchScale() { return SdssParams{200, 16, 8, 300}; }

}  // namespace prio::workloads
