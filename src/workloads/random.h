// Random dag families for property-based testing and extra benches:
//   - randomDag: Erdős–Rényi over a topological id order,
//   - layeredRandom: layered dags where every non-first-layer node has at
//     least one parent in the previous layer,
//   - randomComposable: dags assembled from the Fig. 2 building blocks by
//     attaching fan-out/fan-in/chain blocks to the current frontier —
//     these exercise the decomposition's composition machinery and often
//     admit IC-optimal schedules the heuristic can certify.
#pragma once

#include <cstddef>

#include "dag/digraph.h"
#include "stats/rng.h"

namespace prio::workloads {

/// Random dag on n nodes: each pair (i, j) with i < j carries the arc
/// i -> j with probability edge_prob.
[[nodiscard]] dag::Digraph randomDag(std::size_t n, double edge_prob,
                                     stats::Rng& rng);

/// Layered random dag: `layers` layers of `width` nodes; every node in
/// layer k >= 1 gets one uniformly chosen parent in layer k-1, plus each
/// other cross-layer pair (k-1 -> k) with probability edge_prob.
[[nodiscard]] dag::Digraph layeredRandom(std::size_t layers,
                                         std::size_t width, double edge_prob,
                                         stats::Rng& rng);

/// Dag assembled from building blocks: starting from a random W block, a
/// sequence of `steps` operations attaches a fan-out W(1,c), a fan-in
/// M(1,c), or a chain link to nodes of the current frontier (the sinks so
/// far). Produces connected dags composed of bipartite blocks.
[[nodiscard]] dag::Digraph randomComposable(std::size_t steps,
                                            stats::Rng& rng);

}  // namespace prio::workloads
