#include "workloads/random.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace prio::workloads {

using dag::Digraph;
using dag::NodeId;

dag::Digraph randomDag(std::size_t n, double edge_prob, stats::Rng& rng) {
  PRIO_CHECK(edge_prob >= 0.0 && edge_prob <= 1.0);
  Digraph g;
  g.reserveNodes(n);
  for (std::size_t i = 0; i < n; ++i) g.addNode();
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.uniform01() < edge_prob) g.addEdge(i, j);
    }
  }
  return g;
}

dag::Digraph layeredRandom(std::size_t layers, std::size_t width,
                           double edge_prob, stats::Rng& rng) {
  PRIO_CHECK(layers >= 1 && width >= 1);
  Digraph g;
  g.reserveNodes(layers * width);
  std::vector<std::vector<NodeId>> layer(layers);
  for (std::size_t k = 0; k < layers; ++k) {
    for (std::size_t i = 0; i < width; ++i) {
      layer[k].push_back(g.addNode());
    }
  }
  for (std::size_t k = 1; k < layers; ++k) {
    for (NodeId v : layer[k]) {
      const NodeId forced =
          layer[k - 1][rng.below(static_cast<std::uint64_t>(width))];
      g.addEdge(forced, v);
      for (NodeId u : layer[k - 1]) {
        if (u != forced && rng.uniform01() < edge_prob) g.addEdge(u, v);
      }
    }
  }
  return g;
}

dag::Digraph randomComposable(std::size_t steps, stats::Rng& rng) {
  Digraph g;
  // Seed: a W(a,b) fan structure.
  const std::size_t a = 1 + rng.below(3);
  const std::size_t b = 2 + rng.below(3);
  std::vector<NodeId> frontier;  // current sinks
  {
    std::vector<NodeId> sources;
    for (std::size_t i = 0; i < a; ++i) sources.push_back(g.addNode());
    NodeId last = 0;
    for (std::size_t i = 0; i < a; ++i) {
      if (i > 0) g.addEdge(sources[i], last);
      const std::size_t fresh = (i == 0) ? b : b - 1;
      for (std::size_t j = 0; j < fresh; ++j) {
        last = g.addNode();
        g.addEdge(sources[i], last);
        frontier.push_back(last);
      }
    }
  }
  for (std::size_t s = 0; s < steps && !frontier.empty(); ++s) {
    const std::uint64_t op = rng.below(3);
    if (op == 0) {
      // Fan-out W(1,c) from one frontier node.
      const std::size_t at = rng.below(frontier.size());
      const NodeId src = frontier[at];
      frontier.erase(frontier.begin() + static_cast<long>(at));
      const std::size_t c = 2 + rng.below(4);
      for (std::size_t j = 0; j < c; ++j) {
        const NodeId v = g.addNode();
        g.addEdge(src, v);
        frontier.push_back(v);
      }
    } else if (op == 1 && frontier.size() >= 2) {
      // Fan-in M(1,c): join c frontier nodes into one.
      const std::size_t c =
          2 + rng.below(std::min<std::uint64_t>(frontier.size() - 1, 4));
      const NodeId join = g.addNode();
      for (std::size_t j = 0; j < c; ++j) {
        const std::size_t at = rng.below(frontier.size());
        g.addEdge(frontier[at], join);
        frontier.erase(frontier.begin() + static_cast<long>(at));
      }
      frontier.push_back(join);
    } else {
      // Chain link from one frontier node.
      const std::size_t at = rng.below(frontier.size());
      const NodeId v = g.addNode();
      g.addEdge(frontier[at], v);
      frontier[at] = v;
    }
  }
  return g;
}

}  // namespace prio::workloads
