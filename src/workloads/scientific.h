// Synthetic generators for the four scientific dags of §3.3.
//
// The original DAGMan files (AIRSN, Inspiral, Montage, SDSS) are not
// publicly archived, so these generators reproduce the structural
// descriptions the paper gives (see DESIGN.md substitution #1), calibrated
// so the default parameters yield exactly the paper's job counts:
//   AIRSN(width 250)  =    773 jobs
//   Inspiral          =  2,988 jobs, with a >1000-job non-bipartite
//                         decomposition component
//   Montage           =  7,881 jobs, with a >1000-source bipartite
//                         component, 3–10 children per source, shared
//   SDSS              = 48,013 jobs, with a >1500-source bipartite
//                         component, 3 children per source, shared
// Each generator is parameterized so scaled-down instances can be used by
// the simulation benches (paperScale()/benchScale() presets).
#pragma once

#include <cstddef>

#include "dag/digraph.h"

namespace prio::workloads {

/// AIRSN (fMRI analysis): the "double umbrella with fringes" of Fig. 5 —
/// a handle chain, a fork of `width` jobs each also depending on a
/// dedicated fringe job, a join, a second fork of `width`, and a final
/// join. Job count = handle_length + 3*width + 2.
struct AirsnParams {
  std::size_t width = 250;
  std::size_t handle_length = 21;
};
[[nodiscard]] dag::Digraph makeAirsn(const AirsnParams& params = {});
[[nodiscard]] std::size_t airsnJobCount(const AirsnParams& params = {});

/// Inspiral (gravitational-wave search): `segments` analysis segments,
/// each datafind -> templates x tmpltbank -> templates x inspiral ->
/// thinca -> trigbank -> sire, where every inspiral also depends on a
/// per-segment shallow `calibration` source (the AIRSN "fringe" pattern
/// that separates PRIO from FIFO). Coincidence couples segments at mixed
/// depths: thinca_i depends on segment i's inspirals AND on a veto_i job
/// computed from segment (i+1)'s inspirals (wrapping around at the last
/// segment). The mixed depth means no source ever roots a bipartite
/// component once every segment reaches the inspiral level, so the
/// general C(s) search welds the whole inspiral/veto/thinca layer
/// (segments*(templates+2) jobs) into one non-bipartite decomposition
/// component — the paper's ">1000-job non-bipartite component".
/// Job count = segments * (2*templates + 6).
struct InspiralParams {
  std::size_t segments = 83;
  std::size_t templates = 15;
};
[[nodiscard]] dag::Digraph makeInspiral(const InspiralParams& params = {});
[[nodiscard]] std::size_t inspiralJobCount(const InspiralParams& params = {});

/// Montage (image mosaicking): an rows x cols grid of images; one
/// mProject per image; one mDiffFit per overlapping pair (the 4-neighbor
/// grid overlaps plus `extra_diagonal_overlaps` diagonal ones, assigned
/// row-major) — so projects are sources with a few to ~ten shared
/// children; then mConcatFit -> mBgModel -> per-image mBackground ->
/// mImgtbl -> mAdd -> mShrink -> mJPEG.
/// Job count = 2*rows*cols + overlaps + 6.
struct MontageParams {
  std::size_t rows = 20;
  std::size_t cols = 90;
  std::size_t extra_diagonal_overlaps = 785;
};
[[nodiscard]] dag::Digraph makeMontage(const MontageParams& params = {});
[[nodiscard]] std::size_t montageJobCount(const MontageParams& params = {});

/// SDSS (galaxy-cluster search): `fields` field-extraction sources, each
/// with 3 children, consecutive fields sharing one (a W(fields,3) block
/// with 2*fields+1 target jobs); each target is followed by a processing
/// chain whose depth alternates long_chain / short_chain (the depth
/// heterogeneity of the real per-target pipelines — and the source of
/// PRIO's eligibility advantage over FIFO here); all chains join into one
/// coadd job fanning out to `output_files` catalog jobs.
/// Job count = fields + (2F+1) + ceil((2F+1)/2)*long_chain
///             + floor((2F+1)/2)*short_chain + 1 + output_files.
struct SdssParams {
  std::size_t fields = 1700;
  std::size_t long_chain = 16;
  std::size_t short_chain = 8;
  std::size_t output_files = 2095;
};
[[nodiscard]] dag::Digraph makeSdss(const SdssParams& params = {});
[[nodiscard]] std::size_t sdssJobCount(const SdssParams& params = {});

/// Scaled-down presets used by the simulation benches so the full suite
/// runs in minutes on one core (the structural shape is preserved).
[[nodiscard]] InspiralParams inspiralBenchScale();
[[nodiscard]] MontageParams montageBenchScale();
[[nodiscard]] SdssParams sdssBenchScale();

}  // namespace prio::workloads
