// Additional scientific-workflow archetypes (Pegasus-style), extending
// the §5 "broad repertoire" beyond the paper's four dags:
//   - CyberShake: per-site seismic hazard — two ExtractSGT jobs feed many
//     SeismogramSynthesis jobs (shared parents!), each followed by a
//     PeakValCalc, all zipped per site and merged globally.
//   - Epigenomics: per-lane deep sequencing pipelines (split -> filter ->
//     sol2sanger -> fastq2bfq -> map chains) merged, indexed and piled
//     up — long parallel chains into a global join.
// Both shapes are standard in workflow-scheduling evaluations and stress
// different parts of the heuristic: CyberShake is dominated by wide
// shared-parent bipartite blocks, Epigenomics by deep chain bundles.
#pragma once

#include <cstddef>

#include "dag/digraph.h"

namespace prio::workloads {

/// CyberShake-style dag.
/// Job count = sites * (2 + 2*synthesis_per_site + 1) + 1.
struct CybershakeParams {
  std::size_t sites = 4;
  std::size_t synthesis_per_site = 20;
};
[[nodiscard]] dag::Digraph makeCybershake(const CybershakeParams& p = {});
[[nodiscard]] std::size_t cybershakeJobCount(const CybershakeParams& p = {});

/// Epigenomics-style dag.
/// Job count = lanes * (1 + 4*splits_per_lane) + 3.
struct EpigenomicsParams {
  std::size_t lanes = 4;
  std::size_t splits_per_lane = 8;
};
[[nodiscard]] dag::Digraph makeEpigenomics(const EpigenomicsParams& p = {});
[[nodiscard]] std::size_t epigenomicsJobCount(
    const EpigenomicsParams& p = {});

}  // namespace prio::workloads
