#include "dag/fingerprint.h"

#include <algorithm>
#include <vector>

#include "util/check.h"

namespace prio::dag {

namespace {

// splitmix64 finalizer: the bijective avalanche mixer all hashes here are
// built from.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Order-dependent combine (used only on sorted sequences, which makes the
// digest order-independent over the underlying multiset).
std::uint64_t combine(std::uint64_t seed, std::uint64_t value) noexcept {
  return mix(seed ^ mix(value));
}

// Digest of a multiset of hashes: sort, then fold. `scratch` is sorted in
// place.
std::uint64_t digestMultiset(std::vector<std::uint64_t>& scratch,
                             std::uint64_t seed) {
  std::sort(scratch.begin(), scratch.end());
  std::uint64_t h = seed;
  for (std::uint64_t v : scratch) h = combine(h, v);
  return combine(h, scratch.size());
}

constexpr std::uint64_t kDownSeed = 0x8badf00d5eed0001ULL;
constexpr std::uint64_t kUpSeed = 0x8badf00d5eed0002ULL;
constexpr std::uint64_t kNodeSeed = 0x8badf00d5eed0003ULL;
constexpr std::uint64_t kGraphSeed = 0x8badf00d5eed0004ULL;
constexpr std::uint64_t kLayoutSeed = 0x8badf00d5eed0005ULL;

}  // namespace

std::uint64_t structuralFingerprintOfReduced(const Digraph& reduced) {
  const std::size_t n = reduced.numNodes();
  const auto topo = topologicalOrder(reduced);
  PRIO_CHECK_MSG(topo.has_value(),
                 "structuralFingerprint requires an acyclic graph");

  // Downward pass (reverse topological): each node digests the multiset
  // of its children's downward hashes — a shared-subdag hash of
  // everything reachable below.
  std::vector<std::uint64_t> down(n, 0);
  std::vector<std::uint64_t> scratch;
  for (auto it = topo->rbegin(); it != topo->rend(); ++it) {
    const NodeId v = *it;
    scratch.clear();
    for (NodeId c : reduced.children(v)) scratch.push_back(down[c]);
    down[v] = digestMultiset(scratch, kDownSeed);
  }

  // Upward pass (topological): the dual over parents.
  std::vector<std::uint64_t> up(n, 0);
  for (const NodeId v : *topo) {
    scratch.clear();
    for (NodeId p : reduced.parents(v)) scratch.push_back(up[p]);
    up[v] = digestMultiset(scratch, kUpSeed);
  }

  // Per-node hash couples both directions; the graph hash digests the
  // multiset of node hashes — invariant under any id permutation.
  std::vector<std::uint64_t> node_hashes(n);
  for (std::size_t v = 0; v < n; ++v) {
    node_hashes[v] = combine(combine(kNodeSeed, down[v]), up[v]);
  }
  std::uint64_t h = digestMultiset(node_hashes, kGraphSeed);
  h = combine(h, n);
  h = combine(h, reduced.numEdges());
  return h;
}

std::uint64_t structuralFingerprint(const Digraph& g,
                                    ReductionMethod method) {
  return structuralFingerprintOfReduced(transitiveReduction(g, method));
}

std::uint64_t layoutHash(const Digraph& g) {
  // Sequential digest over ids: node count, then every node's sorted
  // child list. Parent lists are redundant (they mirror child lists) and
  // names are deliberately excluded.
  std::uint64_t h = combine(kLayoutSeed, g.numNodes());
  std::vector<std::uint64_t> kids;
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    kids.assign(g.children(u).begin(), g.children(u).end());
    std::sort(kids.begin(), kids.end());
    h = combine(h, u);
    for (std::uint64_t c : kids) h = combine(h, c);
    h = combine(h, kids.size());
  }
  return h;
}

}  // namespace prio::dag
