// Canonical structural fingerprints for dags — the cache keys of the
// prioritization service (src/service/).
//
// Two complementary 64-bit hashes:
//
//   structuralFingerprint(g) — isomorphism-stable: invariant under any
//     renaming of jobs AND any permutation of node ids, and computed over
//     the transitive reduction of g (a dag's reduction is unique), so
//     adding shortcut arcs does not change it either. Two submissions of
//     the same workflow shape — e.g. the same Montage instance re-planned
//     with fresh job names — therefore map to the same cache shard and
//     key. Computed by a bidirectional refinement in the spirit of
//     Weisfeiler–Leman: every node's hash digests the multiset of its
//     descendants' hashes (one reverse-topological pass) and of its
//     ancestors' hashes (one forward pass); the fingerprint digests the
//     sorted multiset of node hashes plus the node and reduced-arc counts.
//     Like WL itself this is a sound but incomplete invariant: isomorphic
//     dags ALWAYS agree; non-isomorphic dags collide only when they are
//     refinement-indistinguishable (none of our workloads are — see
//     test_service.cpp).
//
//   layoutHash(g) — id-sensitive but name-blind: digests the exact
//     adjacency structure over node ids of g as given (shortcuts
//     included). Every algorithm in this library consumes ids, never
//     names, so two dags with equal layoutHash() produce byte-identical
//     PrioResults. The service cache keys on the structural fingerprint
//     and validates candidate entries with the layout hash, which makes
//     result reuse sound even across fingerprint collisions.
#pragma once

#include <cstdint>

#include "dag/algorithms.h"
#include "dag/digraph.h"

namespace prio::dag {

/// Isomorphism-stable fingerprint of g's transitive reduction.
/// Precondition: g is acyclic (throws util::Error otherwise).
[[nodiscard]] std::uint64_t structuralFingerprint(
    const Digraph& g, ReductionMethod method = ReductionMethod::kBitset);

/// As structuralFingerprint, but `reduced` must already be shortcut-free;
/// skips the reduction. (prioritize() computes the reduction anyway — the
/// service reuses it via this entry point when available.)
[[nodiscard]] std::uint64_t structuralFingerprintOfReduced(
    const Digraph& reduced);

/// Name-blind, id-order-sensitive hash of g's exact adjacency.
[[nodiscard]] std::uint64_t layoutHash(const Digraph& g);

}  // namespace prio::dag
