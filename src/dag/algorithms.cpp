#include "dag/algorithms.h"

#include <algorithm>

#include "dag/csr.h"

namespace prio::dag {

std::optional<std::vector<NodeId>> topologicalOrder(const Digraph& g) {
  const std::size_t n = g.numNodes();
  const Csr& csr = g.csr();

  // Fast path: when every arc ascends (u < v), the identity permutation
  // IS the lexicographically smallest topological order. Proof sketch: by
  // induction, when it is node k's turn every node < k has executed, so
  // all of k's parents (ids < k) are done and k is ready, and every other
  // ready node has a larger id. One O(V) sweep, no bookkeeping.
  if (csr.edges_ascend) {
    std::vector<NodeId> order(n);
    for (NodeId u = 0; u < n; ++u) order[u] = u;
    return order;
  }

  // General path: Kahn over a ready-id bitmap. Extract-min scans the
  // bitmap from a cursor, 64 ids per word; a newly ready node below the
  // cursor pulls the cursor back. Each extraction yields the smallest
  // ready id — the same order the min-heap produced — without the heap's
  // O(log V) per operation or its allocation churn.
  std::vector<std::uint32_t> pending(n);
  const std::size_t words = (n + 63) / 64;
  std::vector<std::uint64_t> ready(words, 0);
  std::size_t cursor = n;
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = static_cast<std::uint32_t>(csr.inDegree(u));
    if (pending[u] == 0) {
      ready[u / 64] |= std::uint64_t{1} << (u % 64);
      if (u < cursor) cursor = u;
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    // Find the first set bit at or above `cursor`.
    std::size_t w = cursor / 64;
    std::uint64_t word =
        w < words ? ready[w] & (~std::uint64_t{0} << (cursor % 64)) : 0;
    while (word == 0) {
      if (++w >= words) break;
      word = ready[w];
    }
    if (w >= words) return std::nullopt;  // live nodes but none ready: cycle
    const NodeId u = static_cast<NodeId>(
        w * 64 + static_cast<std::size_t>(__builtin_ctzll(word)));
    ready[w] &= ~(std::uint64_t{1} << (u % 64));
    order.push_back(u);
    cursor = u + 1;
    for (NodeId v : csr.children(u)) {
      if (--pending[v] == 0) {
        ready[v / 64] |= std::uint64_t{1} << (v % 64);
        if (v < cursor) cursor = v;
      }
    }
  }
  return order;
}

bool isAcyclic(const Digraph& g) { return topologicalOrder(g).has_value(); }

bool isTopologicalOrder(const Digraph& g, std::span<const NodeId> order) {
  const std::size_t n = g.numNodes();
  if (order.size() != n) return false;
  std::vector<std::size_t> position(n, n);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= n || position[order[i]] != n) return false;
    position[order[i]] = i;
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.children(u)) {
      if (position[u] >= position[v]) return false;
    }
  }
  return true;
}

util::BitMatrix descendantMatrix(const Digraph& g) {
  auto order = topologicalOrder(g);
  PRIO_CHECK_MSG(order.has_value(), "descendantMatrix requires a dag");
  return descendantMatrix(g, *order);
}

util::BitMatrix descendantMatrix(const Digraph& g,
                                 std::span<const NodeId> topo_order) {
  const std::size_t n = g.numNodes();
  PRIO_CHECK_MSG(topo_order.size() == n,
                 "descendantMatrix: topo_order must cover every node");
  util::BitMatrix reach(n, n);
  if (n == 0) return reach;
  const Csr& csr = g.csr();

  // Process in reverse topological order so children's rows are complete.
  // Rows longer than one tile are filled one column tile at a time: the
  // OR of a child row segment into a parent row segment then works on
  // 4 KiB pieces that stay cache-resident between the child's completion
  // and the parents' visits, instead of streaming multi-KB rows through
  // the cache once per edge. Every bit is owned by exactly one tile, so
  // the result is identical to the untiled pass.
  constexpr std::size_t kTileWords = 512;  // 4 KiB row segments
  const std::size_t words = reach.wordsPerRow();
  for (std::size_t tile_begin = 0; tile_begin < words;
       tile_begin += kTileWords) {
    const std::size_t tile_end = std::min(words, tile_begin + kTileWords);
    const std::size_t col_begin = tile_begin * 64;
    const std::size_t col_end = tile_end * 64;
    for (auto it = topo_order.rbegin(); it != topo_order.rend(); ++it) {
      const NodeId u = *it;
      for (NodeId v : csr.children(u)) {
        if (v >= col_begin && v < col_end) reach.set(u, v);
        reach.orRowRangeInto(u, v, tile_begin, tile_end);
      }
    }
  }
  return reach;
}

namespace {

// True iff v is reachable from any node of `starts` (paths of length >= 0).
bool reachableFromAny(const Digraph& g, std::span<const NodeId> starts,
                      NodeId target, std::vector<char>& visited,
                      std::vector<NodeId>& stack) {
  stack.assign(starts.begin(), starts.end());
  std::fill(visited.begin(), visited.end(), 0);
  for (NodeId s : starts) visited[s] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (u == target) return true;
    for (NodeId w : g.children(u)) {
      if (!visited[w]) {
        visited[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

Digraph reduceWithBitset(const Digraph& g,
                         std::span<const NodeId> topo_order) {
  const util::BitMatrix reach = descendantMatrix(g, topo_order);
  const Csr& csr = g.csr();
  Digraph out;
  out.reserveNodes(g.numNodes());
  for (NodeId u = 0; u < g.numNodes(); ++u) out.addNode(g.name(u));
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    const auto children = csr.children(u);
    for (NodeId v : children) {
      bool shortcut = false;
      for (NodeId w : children) {
        if (w != v && reach.test(w, v)) {
          shortcut = true;
          break;
        }
      }
      if (!shortcut) out.addEdge(u, v);
    }
  }
  return out;
}

Digraph reduceWithDfs(const Digraph& g) {
  Digraph out;
  out.reserveNodes(g.numNodes());
  for (NodeId u = 0; u < g.numNodes(); ++u) out.addNode(g.name(u));
  std::vector<char> visited(g.numNodes(), 0);
  std::vector<NodeId> stack;
  std::vector<NodeId> other_children;
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    for (NodeId v : g.children(u)) {
      other_children.clear();
      for (NodeId w : g.children(u)) {
        if (w != v) other_children.push_back(w);
      }
      if (!reachableFromAny(g, other_children, v, visited, stack)) {
        out.addEdge(u, v);
      }
    }
  }
  return out;
}

}  // namespace

Digraph transitiveReduction(const Digraph& g, ReductionMethod method) {
  auto order = topologicalOrder(g);
  PRIO_CHECK_MSG(order.has_value(), "transitiveReduction requires a dag");
  return transitiveReduction(g, method, *order);
}

Digraph transitiveReduction(const Digraph& g, ReductionMethod method,
                            const obs::TraceContext& trace) {
  std::optional<std::vector<NodeId>> order;
  {
    obs::Span span(trace, "reduce.topo_order");
    order = topologicalOrder(g);
  }
  PRIO_CHECK_MSG(order.has_value(), "transitiveReduction requires a dag");
  obs::Span span(trace, "reduce.filter");
  return transitiveReduction(g, method, *order);
}

Digraph transitiveReduction(const Digraph& g, ReductionMethod method,
                            std::span<const NodeId> topo_order) {
  PRIO_CHECK_MSG(topo_order.size() == g.numNodes(),
                 "transitiveReduction: topo_order must cover every node");
  switch (method) {
    case ReductionMethod::kBitset:
      return reduceWithBitset(g, topo_order);
    case ReductionMethod::kEdgeDfs:
      return reduceWithDfs(g);
  }
  PRIO_CHECK(false);
  return Digraph{};
}

ComponentLabels weaklyConnectedComponents(const Digraph& g) {
  const std::size_t n = g.numNodes();
  ComponentLabels out;
  out.label.assign(n, static_cast<std::size_t>(-1));
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (out.label[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t comp = out.count++;
    stack.assign(1, start);
    out.label[start] = comp;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      auto visit = [&](NodeId w) {
        if (out.label[w] == static_cast<std::size_t>(-1)) {
          out.label[w] = comp;
          stack.push_back(w);
        }
      };
      for (NodeId w : g.children(u)) visit(w);
      for (NodeId w : g.parents(u)) visit(w);
    }
  }
  return out;
}

namespace {
std::vector<NodeId> bfsFrontier(const Digraph& g, NodeId u, bool forward) {
  std::vector<char> visited(g.numNodes(), 0);
  std::vector<NodeId> out;
  std::vector<NodeId> stack{u};
  visited[u] = 1;
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    const auto next = forward ? g.children(x) : g.parents(x);
    for (NodeId w : next) {
      if (!visited[w]) {
        visited[w] = 1;
        out.push_back(w);
        stack.push_back(w);
      }
    }
  }
  return out;
}
}  // namespace

std::vector<NodeId> descendants(const Digraph& g, NodeId u) {
  return bfsFrontier(g, u, /*forward=*/true);
}

std::vector<NodeId> ancestors(const Digraph& g, NodeId u) {
  return bfsFrontier(g, u, /*forward=*/false);
}

std::size_t longestPathNodes(const Digraph& g) {
  if (g.numNodes() == 0) return 0;
  const auto ranks = upwardRank(g);
  return *std::max_element(ranks.begin(), ranks.end());
}

std::vector<std::size_t> upwardRank(const Digraph& g) {
  auto order = topologicalOrder(g);
  PRIO_CHECK_MSG(order.has_value(), "upwardRank requires a dag");
  std::vector<std::size_t> rank(g.numNodes(), 1);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId u = *it;
    std::size_t best = 0;
    for (NodeId v : g.children(u)) best = std::max(best, rank[v]);
    rank[u] = best + 1;
  }
  return rank;
}

bool isBipartiteDag(const Digraph& g) {
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (g.inDegree(u) > 0 && g.outDegree(u) > 0) return false;
  }
  return true;
}

bool isConnected(const Digraph& g) {
  if (g.numNodes() == 0) return false;
  return weaklyConnectedComponents(g).count == 1;
}

}  // namespace prio::dag
