#include "dag/algorithms.h"

#include <algorithm>
#include <queue>

namespace prio::dag {

std::optional<std::vector<NodeId>> topologicalOrder(const Digraph& g) {
  const std::size_t n = g.numNodes();
  std::vector<std::size_t> pending(n);
  // Min-heap over ready node ids for a deterministic order.
  std::priority_queue<NodeId, std::vector<NodeId>, std::greater<>> ready;
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) ready.push(u);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const NodeId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (NodeId v : g.children(u)) {
      if (--pending[v] == 0) ready.push(v);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool isAcyclic(const Digraph& g) { return topologicalOrder(g).has_value(); }

bool isTopologicalOrder(const Digraph& g, std::span<const NodeId> order) {
  const std::size_t n = g.numNodes();
  if (order.size() != n) return false;
  std::vector<std::size_t> position(n, n);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] >= n || position[order[i]] != n) return false;
    position[order[i]] = i;
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.children(u)) {
      if (position[u] >= position[v]) return false;
    }
  }
  return true;
}

util::BitMatrix descendantMatrix(const Digraph& g) {
  const std::size_t n = g.numNodes();
  util::BitMatrix reach(n, n);
  auto order = topologicalOrder(g);
  PRIO_CHECK_MSG(order.has_value(), "descendantMatrix requires a dag");
  // Process in reverse topological order so children's rows are complete.
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId u = *it;
    for (NodeId v : g.children(u)) {
      reach.set(u, v);
      reach.orRowInto(u, v);
    }
  }
  return reach;
}

namespace {

// True iff v is reachable from any node of `starts` (paths of length >= 0).
bool reachableFromAny(const Digraph& g, std::span<const NodeId> starts,
                      NodeId target, std::vector<char>& visited,
                      std::vector<NodeId>& stack) {
  stack.assign(starts.begin(), starts.end());
  std::fill(visited.begin(), visited.end(), 0);
  for (NodeId s : starts) visited[s] = 1;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    if (u == target) return true;
    for (NodeId w : g.children(u)) {
      if (!visited[w]) {
        visited[w] = 1;
        stack.push_back(w);
      }
    }
  }
  return false;
}

Digraph reduceWithBitset(const Digraph& g) {
  const util::BitMatrix reach = descendantMatrix(g);
  Digraph out;
  out.reserveNodes(g.numNodes());
  for (NodeId u = 0; u < g.numNodes(); ++u) out.addNode(g.name(u));
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    for (NodeId v : g.children(u)) {
      bool shortcut = false;
      for (NodeId w : g.children(u)) {
        if (w != v && reach.test(w, v)) {
          shortcut = true;
          break;
        }
      }
      if (!shortcut) out.addEdge(u, v);
    }
  }
  return out;
}

Digraph reduceWithDfs(const Digraph& g) {
  Digraph out;
  out.reserveNodes(g.numNodes());
  for (NodeId u = 0; u < g.numNodes(); ++u) out.addNode(g.name(u));
  std::vector<char> visited(g.numNodes(), 0);
  std::vector<NodeId> stack;
  std::vector<NodeId> other_children;
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    for (NodeId v : g.children(u)) {
      other_children.clear();
      for (NodeId w : g.children(u)) {
        if (w != v) other_children.push_back(w);
      }
      if (!reachableFromAny(g, other_children, v, visited, stack)) {
        out.addEdge(u, v);
      }
    }
  }
  return out;
}

}  // namespace

Digraph transitiveReduction(const Digraph& g, ReductionMethod method) {
  PRIO_CHECK_MSG(isAcyclic(g), "transitiveReduction requires a dag");
  switch (method) {
    case ReductionMethod::kBitset:
      return reduceWithBitset(g);
    case ReductionMethod::kEdgeDfs:
      return reduceWithDfs(g);
  }
  PRIO_CHECK(false);
  return Digraph{};
}

ComponentLabels weaklyConnectedComponents(const Digraph& g) {
  const std::size_t n = g.numNodes();
  ComponentLabels out;
  out.label.assign(n, static_cast<std::size_t>(-1));
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (out.label[start] != static_cast<std::size_t>(-1)) continue;
    const std::size_t comp = out.count++;
    stack.assign(1, start);
    out.label[start] = comp;
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      auto visit = [&](NodeId w) {
        if (out.label[w] == static_cast<std::size_t>(-1)) {
          out.label[w] = comp;
          stack.push_back(w);
        }
      };
      for (NodeId w : g.children(u)) visit(w);
      for (NodeId w : g.parents(u)) visit(w);
    }
  }
  return out;
}

namespace {
std::vector<NodeId> bfsFrontier(const Digraph& g, NodeId u, bool forward) {
  std::vector<char> visited(g.numNodes(), 0);
  std::vector<NodeId> out;
  std::vector<NodeId> stack{u};
  visited[u] = 1;
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    const auto next = forward ? g.children(x) : g.parents(x);
    for (NodeId w : next) {
      if (!visited[w]) {
        visited[w] = 1;
        out.push_back(w);
        stack.push_back(w);
      }
    }
  }
  return out;
}
}  // namespace

std::vector<NodeId> descendants(const Digraph& g, NodeId u) {
  return bfsFrontier(g, u, /*forward=*/true);
}

std::vector<NodeId> ancestors(const Digraph& g, NodeId u) {
  return bfsFrontier(g, u, /*forward=*/false);
}

std::size_t longestPathNodes(const Digraph& g) {
  if (g.numNodes() == 0) return 0;
  const auto ranks = upwardRank(g);
  return *std::max_element(ranks.begin(), ranks.end());
}

std::vector<std::size_t> upwardRank(const Digraph& g) {
  auto order = topologicalOrder(g);
  PRIO_CHECK_MSG(order.has_value(), "upwardRank requires a dag");
  std::vector<std::size_t> rank(g.numNodes(), 1);
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const NodeId u = *it;
    std::size_t best = 0;
    for (NodeId v : g.children(u)) best = std::max(best, rank[v]);
    rank[u] = best + 1;
  }
  return rank;
}

bool isBipartiteDag(const Digraph& g) {
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (g.inDegree(u) > 0 && g.outDegree(u) > 0) return false;
  }
  return true;
}

bool isConnected(const Digraph& g) {
  if (g.numNodes() == 0) return false;
  return weaklyConnectedComponents(g).count == 1;
}

}  // namespace prio::dag
