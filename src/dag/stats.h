// Descriptive statistics of a dag: level structure, degree distribution,
// parallelism profile. Used by reports, workload validation tests, and
// for reasoning about where PRIO can or cannot beat FIFO (a dag's
// eligibility dynamics are bounded by its width profile).
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "dag/digraph.h"

namespace prio::dag {

struct DagStats {
  std::size_t nodes = 0;
  std::size_t edges = 0;
  std::size_t sources = 0;
  std::size_t sinks = 0;
  /// Longest path in nodes (depth when all jobs take unit time).
  std::size_t depth = 0;
  /// Nodes per BFS level (level = longest distance from any source).
  std::vector<std::size_t> level_widths;
  /// Largest level width — the dag's maximum intrinsic parallelism.
  std::size_t max_width = 0;
  /// Histogram of out-degrees and in-degrees.
  std::map<std::size_t, std::size_t> out_degree_histogram;
  std::map<std::size_t, std::size_t> in_degree_histogram;
  /// Average parallelism = nodes / depth.
  double average_parallelism = 0.0;

  [[nodiscard]] std::string summary() const;
};

/// Computes all statistics in one pass. Precondition: g is acyclic.
[[nodiscard]] DagStats computeStats(const Digraph& g);

}  // namespace prio::dag
