#include "dag/digraph.h"

#include <utility>

#include "dag/csr.h"

namespace prio::dag {

Digraph::Digraph() = default;
Digraph::~Digraph() = default;

Digraph::Digraph(const Digraph& other)
    : names_(other.names_),
      children_(other.children_),
      parents_(other.parents_),
      num_edges_(other.num_edges_) {
  // The lazy members may be materializing under a concurrent const
  // reader of `other`; snapshot them under its mutex.
  const std::lock_guard<std::mutex> lock(other.cache_mutex_);
  name_index_ = other.name_index_;
  edge_set_ = other.edge_set_;
  name_index_built_ = other.name_index_built_;
  edge_set_built_ = other.edge_set_built_;
  csr_cache_ = other.csr_cache_;
}

Digraph& Digraph::operator=(const Digraph& other) {
  if (this == &other) return *this;
  names_ = other.names_;
  children_ = other.children_;
  parents_ = other.parents_;
  num_edges_ = other.num_edges_;
  const std::lock_guard<std::mutex> lock(other.cache_mutex_);
  name_index_ = other.name_index_;
  edge_set_ = other.edge_set_;
  name_index_built_ = other.name_index_built_;
  edge_set_built_ = other.edge_set_built_;
  csr_cache_ = other.csr_cache_;
  return *this;
}

Digraph::Digraph(Digraph&& other) noexcept
    : names_(std::move(other.names_)),
      children_(std::move(other.children_)),
      parents_(std::move(other.parents_)),
      num_edges_(std::exchange(other.num_edges_, 0)),
      name_index_(std::move(other.name_index_)),
      edge_set_(std::move(other.edge_set_)),
      name_index_built_(std::exchange(other.name_index_built_, true)),
      edge_set_built_(std::exchange(other.edge_set_built_, true)),
      csr_cache_(std::move(other.csr_cache_)) {}

Digraph& Digraph::operator=(Digraph&& other) noexcept {
  if (this == &other) return *this;
  names_ = std::move(other.names_);
  children_ = std::move(other.children_);
  parents_ = std::move(other.parents_);
  num_edges_ = std::exchange(other.num_edges_, 0);
  name_index_ = std::move(other.name_index_);
  edge_set_ = std::move(other.edge_set_);
  name_index_built_ = std::exchange(other.name_index_built_, true);
  edge_set_built_ = std::exchange(other.edge_set_built_, true);
  csr_cache_ = std::move(other.csr_cache_);
  return *this;
}

Digraph Digraph::fromAdjacency(std::vector<std::string> names,
                               std::vector<std::vector<NodeId>> children,
                               std::vector<std::vector<NodeId>> parents,
                               std::size_t num_edges) {
  PRIO_CHECK(names.size() == children.size() &&
             names.size() == parents.size());
  Digraph g;
  g.names_ = std::move(names);
  g.children_ = std::move(children);
  g.parents_ = std::move(parents);
  g.num_edges_ = num_edges;
  g.name_index_built_ = false;
  g.edge_set_built_ = false;
  return g;
}

void Digraph::ensureNameIndex() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  if (name_index_built_) return;
  name_index_.reserve(names_.size());
  for (NodeId u = 0; u < names_.size(); ++u) name_index_.emplace(names_[u], u);
  name_index_built_ = true;
}

void Digraph::ensureEdgeSet() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  if (edge_set_built_) return;
  edge_set_.reserve(num_edges_);
  for (NodeId u = 0; u < children_.size(); ++u) {
    for (NodeId v : children_[u]) edge_set_.insert(edgeKey(u, v));
  }
  edge_set_built_ = true;
}

const Csr& Digraph::csr() const {
  const std::lock_guard<std::mutex> lock(cache_mutex_);
  if (csr_cache_ == nullptr) {
    csr_cache_ = std::make_shared<const Csr>(Csr::build(*this));
  }
  return *csr_cache_;
}

NodeId Digraph::addNode() {
  return addNode("n" + std::to_string(numNodes()));
}

NodeId Digraph::addNode(std::string name) {
  PRIO_CHECK_MSG(!name.empty(), "node name must be non-empty");
  ensureNameIndex();  // incremental maintenance needs the built index
  PRIO_CHECK_MSG(name_index_.find(name) == name_index_.end(),
                 "duplicate node name: " << name);
  const auto id = static_cast<NodeId>(numNodes());
  name_index_.emplace(name, id);
  names_.push_back(std::move(name));
  children_.emplace_back();
  parents_.emplace_back();
  csr_cache_.reset();  // mutation requires exclusive access; no lock needed
  return id;
}

bool Digraph::addEdge(NodeId u, NodeId v) {
  PRIO_CHECK(u < numNodes() && v < numNodes());
  PRIO_CHECK_MSG(u != v, "self-loop on node " << names_[u]);
  ensureEdgeSet();  // incremental maintenance needs the built set
  if (!edge_set_.insert(edgeKey(u, v)).second) return false;
  children_[u].push_back(v);
  parents_[v].push_back(u);
  ++num_edges_;
  csr_cache_.reset();  // mutation requires exclusive access; no lock needed
  return true;
}

bool Digraph::hasEdge(NodeId u, NodeId v) const {
  PRIO_CHECK(u < numNodes() && v < numNodes());
  ensureEdgeSet();
  return edge_set_.find(edgeKey(u, v)) != edge_set_.end();
}

std::vector<NodeId> Digraph::sources() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < numNodes(); ++u) {
    if (isSource(u)) out.push_back(u);
  }
  return out;
}

std::vector<NodeId> Digraph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < numNodes(); ++u) {
    if (isSink(u)) out.push_back(u);
  }
  return out;
}

std::optional<NodeId> Digraph::findNode(std::string_view name) const {
  ensureNameIndex();
  auto it = name_index_.find(std::string(name));
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

Digraph Digraph::reversed() const {
  Digraph r;
  r.reserveNodes(numNodes());
  for (NodeId u = 0; u < numNodes(); ++u) r.addNode(names_[u]);
  for (NodeId u = 0; u < numNodes(); ++u) {
    for (NodeId v : children_[u]) r.addEdge(v, u);
  }
  return r;
}

Digraph Digraph::inducedSubgraph(std::span<const NodeId> keep) const {
  Digraph sub;
  sub.reserveNodes(keep.size());
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(keep.size());
  for (NodeId u : keep) {
    PRIO_CHECK(u < numNodes());
    PRIO_CHECK_MSG(remap.find(u) == remap.end(),
                   "duplicate node in inducedSubgraph: " << names_[u]);
    remap.emplace(u, sub.addNode(names_[u]));
  }
  for (NodeId u : keep) {
    for (NodeId v : children_[u]) {
      auto it = remap.find(v);
      if (it != remap.end()) sub.addEdge(remap.at(u), it->second);
    }
  }
  return sub;
}

void Digraph::reserveNodes(std::size_t n) {
  names_.reserve(n);
  children_.reserve(n);
  parents_.reserve(n);
  name_index_.reserve(n);
}

}  // namespace prio::dag
