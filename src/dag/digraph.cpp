#include "dag/digraph.h"

#include <utility>

namespace prio::dag {

NodeId Digraph::addNode() {
  return addNode("n" + std::to_string(numNodes()));
}

NodeId Digraph::addNode(std::string name) {
  PRIO_CHECK_MSG(!name.empty(), "node name must be non-empty");
  PRIO_CHECK_MSG(name_index_.find(name) == name_index_.end(),
                 "duplicate node name: " << name);
  const auto id = static_cast<NodeId>(numNodes());
  name_index_.emplace(name, id);
  names_.push_back(std::move(name));
  children_.emplace_back();
  parents_.emplace_back();
  return id;
}

bool Digraph::addEdge(NodeId u, NodeId v) {
  PRIO_CHECK(u < numNodes() && v < numNodes());
  PRIO_CHECK_MSG(u != v, "self-loop on node " << names_[u]);
  if (!edge_set_.insert(edgeKey(u, v)).second) return false;
  children_[u].push_back(v);
  parents_[v].push_back(u);
  ++num_edges_;
  return true;
}

bool Digraph::hasEdge(NodeId u, NodeId v) const {
  PRIO_CHECK(u < numNodes() && v < numNodes());
  return edge_set_.find(edgeKey(u, v)) != edge_set_.end();
}

std::vector<NodeId> Digraph::sources() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < numNodes(); ++u) {
    if (isSource(u)) out.push_back(u);
  }
  return out;
}

std::vector<NodeId> Digraph::sinks() const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < numNodes(); ++u) {
    if (isSink(u)) out.push_back(u);
  }
  return out;
}

std::optional<NodeId> Digraph::findNode(std::string_view name) const {
  auto it = name_index_.find(std::string(name));
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

Digraph Digraph::reversed() const {
  Digraph r;
  r.reserveNodes(numNodes());
  for (NodeId u = 0; u < numNodes(); ++u) r.addNode(names_[u]);
  for (NodeId u = 0; u < numNodes(); ++u) {
    for (NodeId v : children_[u]) r.addEdge(v, u);
  }
  return r;
}

Digraph Digraph::inducedSubgraph(std::span<const NodeId> keep) const {
  Digraph sub;
  sub.reserveNodes(keep.size());
  std::unordered_map<NodeId, NodeId> remap;
  remap.reserve(keep.size());
  for (NodeId u : keep) {
    PRIO_CHECK(u < numNodes());
    PRIO_CHECK_MSG(remap.find(u) == remap.end(),
                   "duplicate node in inducedSubgraph: " << names_[u]);
    remap.emplace(u, sub.addNode(names_[u]));
  }
  for (NodeId u : keep) {
    for (NodeId v : children_[u]) {
      auto it = remap.find(v);
      if (it != remap.end()) sub.addEdge(remap.at(u), it->second);
    }
  }
  return sub;
}

void Digraph::reserveNodes(std::size_t n) {
  names_.reserve(n);
  children_.reserve(n);
  parents_.reserve(n);
  name_index_.reserve(n);
}

}  // namespace prio::dag
