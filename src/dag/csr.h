// Flat compressed-sparse-row (CSR) view of a Digraph.
//
// The Digraph stores one std::vector per node for each adjacency
// direction, which is convenient while a graph is being built but costs a
// pointer indirection (and a likely cache miss) per visited node in the
// traversal-heavy pipeline phases. The Csr packs both directions into one
// contiguous edge array plus an offsets array each, so sweeping all
// adjacencies of all nodes is a single linear scan.
//
// Edge order inside a node's slice is exactly the Digraph's insertion
// order — every algorithm that iterates children(u)/parents(u) therefore
// sees the same sequence through either view, which is what keeps the
// CSR-based pipeline bit-identical to the vector-of-vectors one.
//
// A Csr is an immutable snapshot: it is built once per Digraph (lazily,
// via Digraph::csr()) and shared by reference; mutating the Digraph
// invalidates the cached snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace prio::dag {

using NodeId = std::uint32_t;

class Digraph;

struct Csr {
  /// child_offsets[u] .. child_offsets[u+1] index child_edges; same for
  /// parents. Offsets have numNodes()+1 entries (empty graph: one zero).
  std::vector<std::uint32_t> child_offsets;
  std::vector<NodeId> child_edges;
  std::vector<std::uint32_t> parent_offsets;
  std::vector<NodeId> parent_edges;
  /// True when every arc u -> v has u < v (node ids ascend along every
  /// arc). All the repo's generators and well-formed DAGMan files produce
  /// such graphs; topologicalOrder() uses this for its O(V+E) fast path.
  bool edges_ascend = true;

  [[nodiscard]] std::size_t numNodes() const noexcept {
    return child_offsets.empty() ? 0 : child_offsets.size() - 1;
  }
  [[nodiscard]] std::size_t numEdges() const noexcept {
    return child_edges.size();
  }

  [[nodiscard]] std::span<const NodeId> children(NodeId u) const noexcept {
    return {child_edges.data() + child_offsets[u],
            child_edges.data() + child_offsets[u + 1]};
  }
  [[nodiscard]] std::span<const NodeId> parents(NodeId u) const noexcept {
    return {parent_edges.data() + parent_offsets[u],
            parent_edges.data() + parent_offsets[u + 1]};
  }
  [[nodiscard]] std::size_t outDegree(NodeId u) const noexcept {
    return child_offsets[u + 1] - child_offsets[u];
  }
  [[nodiscard]] std::size_t inDegree(NodeId u) const noexcept {
    return parent_offsets[u + 1] - parent_offsets[u];
  }

  /// Builds the flat view of `g` in O(V + E).
  [[nodiscard]] static Csr build(const Digraph& g);
};

}  // namespace prio::dag
