// Flat compressed-sparse-row (CSR) view of a Digraph.
//
// The Digraph stores one std::vector per node for each adjacency
// direction, which is convenient while a graph is being built but costs a
// pointer indirection (and a likely cache miss) per visited node in the
// traversal-heavy pipeline phases. The Csr packs both directions into one
// contiguous edge array plus an offsets array each, so sweeping all
// adjacencies of all nodes is a single linear scan.
//
// Edge order inside a node's slice is exactly the Digraph's insertion
// order — every algorithm that iterates children(u)/parents(u) therefore
// sees the same sequence through either view, which is what keeps the
// CSR-based pipeline bit-identical to the vector-of-vectors one.
//
// A Csr is an immutable snapshot: it is built once per Digraph (lazily,
// via Digraph::csr()) and shared by reference; mutating the Digraph
// invalidates the cached snapshot.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace prio::dag {

using NodeId = std::uint32_t;

class Digraph;

struct Csr {
  /// child_offsets[u] .. child_offsets[u+1] index child_edges; same for
  /// parents. Offsets have numNodes()+1 entries (empty graph: one zero).
  std::vector<std::uint32_t> child_offsets;
  std::vector<NodeId> child_edges;
  std::vector<std::uint32_t> parent_offsets;
  std::vector<NodeId> parent_edges;
  /// True when every arc u -> v has u < v (node ids ascend along every
  /// arc). All the repo's generators and well-formed DAGMan files produce
  /// such graphs; topologicalOrder() uses this for its O(V+E) fast path.
  bool edges_ascend = true;

  [[nodiscard]] std::size_t numNodes() const noexcept {
    return child_offsets.empty() ? 0 : child_offsets.size() - 1;
  }
  [[nodiscard]] std::size_t numEdges() const noexcept {
    return child_edges.size();
  }

  [[nodiscard]] std::span<const NodeId> children(NodeId u) const noexcept {
    return {child_edges.data() + child_offsets[u],
            child_edges.data() + child_offsets[u + 1]};
  }
  [[nodiscard]] std::span<const NodeId> parents(NodeId u) const noexcept {
    return {parent_edges.data() + parent_offsets[u],
            parent_edges.data() + parent_offsets[u + 1]};
  }
  [[nodiscard]] std::size_t outDegree(NodeId u) const noexcept {
    return child_offsets[u + 1] - child_offsets[u];
  }
  [[nodiscard]] std::size_t inDegree(NodeId u) const noexcept {
    return parent_offsets[u + 1] - parent_offsets[u];
  }

  /// Builds the flat view of `g` in O(V + E).
  [[nodiscard]] static Csr build(const Digraph& g);
};

// ---------------------------------------------------------------------
// Binary dag wire payload ("BDAG") — the CSR arrays as a versioned,
// little-endian, architecture-independent byte string. This is the
// PayloadKind::kBinaryCsr request body of wire protocol v3
// (net/protocol.h; layout table in DESIGN.md §15):
//
//   offset  size      field
//        0     4      magic          0x47414442 ("BDAG")
//        4     2      version        1 (kBinaryDagVersion)
//        6     2      flags          reserved, must be 0
//        8     4      num_nodes (n)
//       12     4      num_edges (m)
//       16  4*(n+1)   child_offsets  CSR offsets (last entry == m)
//        …  4*m       child_edges    child node ids, insertion order
//        …  4*(n+1)   name_offsets   byte offsets into the name blob
//                                    (strictly increasing: names are
//                                    nonempty; last entry == blob size)
//        …  blob      name_blob      job names, concatenated
//
// Parent adjacency is not shipped — it is derivable, and Digraph
// rebuilds it while inserting edges. decodeBinaryDag() validates every
// structural property (exact total size, monotone offsets, in-range
// edge targets, no self-loops or duplicate edges, unique nonempty
// names, acyclicity) before returning, so a hostile payload costs at
// most one util::Error — never a crash or an out-of-bounds read.
// ---------------------------------------------------------------------

inline constexpr std::uint32_t kBinaryDagMagic = 0x47414442u;   // "BDAG"
inline constexpr std::uint16_t kBinaryDagVersion = 1;
/// Binary priority-table payload ("BPRI"): the kBinaryCsr RESPONSE body
/// — magic, u16 version, u16 reserved-zero, u32 n, then n little-endian
/// u32 priorities indexed by node id (PrioResult::priority order).
inline constexpr std::uint32_t kBinaryPrioMagic = 0x49525042u;  // "BPRI"
inline constexpr std::uint16_t kBinaryPrioVersion = 1;

/// Serializes `g` (node names + child adjacency, insertion order
/// preserved) into the BDAG byte layout above. decodeBinaryDag() of the
/// result reconstructs a Digraph with identical node ids, names, and
/// adjacency order.
[[nodiscard]] std::string encodeBinaryDag(const Digraph& g);

/// Parses and fully validates a BDAG payload. Throws util::Error on any
/// structural violation (truncation, trailing bytes, bad magic/version,
/// non-monotone offsets, out-of-range or duplicate edges, self-loops,
/// duplicate or empty names, cycles).
[[nodiscard]] Digraph decodeBinaryDag(std::string_view bytes);

/// Serializes a priority table (numNodes() entries, values fit u32)
/// into the BPRI layout.
[[nodiscard]] std::string encodeBinaryPriorities(
    std::span<const std::size_t> priorities);

/// Parses and validates a BPRI payload. Throws util::Error on
/// truncation, trailing bytes, or bad magic/version.
[[nodiscard]] std::vector<std::size_t> decodeBinaryPriorities(
    std::string_view bytes);

}  // namespace prio::dag
