// Graphviz DOT export, used by the examples and the Fig. 5 bench to render
// dags with their PRIO priorities (the paper's AIRSN illustration).
#pragma once

#include <cstddef>
#include <ostream>
#include <span>
#include <string>

#include "dag/digraph.h"

namespace prio::dag {

/// Options controlling DOT output.
struct DotOptions {
  std::string graph_name = "dag";
  bool rank_bottom_up = true;  ///< paper draws arcs oriented upward
  /// Optional per-node priorities (rendered in labels when non-empty;
  /// must have numNodes() entries).
  std::span<const std::size_t> priorities = {};
  /// Optional per-node fill colors as Graphviz color strings (empty string
  /// = default; must be empty or have numNodes() entries).
  std::span<const std::string> fill_colors = {};
};

/// Writes the graph in DOT format.
void writeDot(std::ostream& os, const Digraph& g,
              const DotOptions& options = {});

/// Convenience: DOT as a string.
[[nodiscard]] std::string toDot(const Digraph& g,
                                const DotOptions& options = {});

}  // namespace prio::dag
