#include "dag/stats.h"

#include <algorithm>
#include <sstream>

#include "dag/algorithms.h"
#include "util/check.h"

namespace prio::dag {

DagStats computeStats(const Digraph& g) {
  DagStats s;
  s.nodes = g.numNodes();
  s.edges = g.numEdges();
  if (s.nodes == 0) return s;

  const auto order = topologicalOrder(g);
  PRIO_CHECK_MSG(order.has_value(), "computeStats requires a dag");

  // Level = longest distance (in arcs) from any source.
  std::vector<std::size_t> level(s.nodes, 0);
  for (const NodeId u : *order) {
    for (const NodeId v : g.children(u)) {
      level[v] = std::max(level[v], level[u] + 1);
    }
  }
  const std::size_t max_level =
      *std::max_element(level.begin(), level.end());
  s.depth = max_level + 1;
  s.level_widths.assign(s.depth, 0);
  for (NodeId u = 0; u < s.nodes; ++u) {
    ++s.level_widths[level[u]];
    ++s.out_degree_histogram[g.outDegree(u)];
    ++s.in_degree_histogram[g.inDegree(u)];
    if (g.isSource(u)) ++s.sources;
    if (g.isSink(u)) ++s.sinks;
  }
  s.max_width =
      *std::max_element(s.level_widths.begin(), s.level_widths.end());
  s.average_parallelism =
      static_cast<double>(s.nodes) / static_cast<double>(s.depth);
  return s;
}

std::string DagStats::summary() const {
  std::ostringstream os;
  os << nodes << " jobs, " << edges << " deps, " << sources << " sources, "
     << sinks << " sinks, depth " << depth << ", max width " << max_width
     << ", avg parallelism " << average_parallelism;
  return os.str();
}

}  // namespace prio::dag
