#include "dag/csr.h"

#include <algorithm>
#include <string_view>
#include <utility>

#include "dag/digraph.h"
#include "util/check.h"

namespace prio::dag {

Csr Csr::build(const Digraph& g) {
  const std::size_t n = g.numNodes();
  Csr out;
  out.child_offsets.resize(n + 1);
  out.parent_offsets.resize(n + 1);
  out.child_edges.reserve(g.numEdges());
  out.parent_edges.reserve(g.numEdges());
  out.child_offsets[0] = 0;
  out.parent_offsets[0] = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.children(u)) {
      out.child_edges.push_back(v);
      if (v <= u) out.edges_ascend = false;
    }
    for (NodeId p : g.parents(u)) out.parent_edges.push_back(p);
    out.child_offsets[u + 1] = static_cast<std::uint32_t>(
        out.child_edges.size());
    out.parent_offsets[u + 1] = static_cast<std::uint32_t>(
        out.parent_edges.size());
  }
  return out;
}

namespace {

void putU16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint16_t getU16(const unsigned char* p) {
  return static_cast<std::uint16_t>(
      p[0] | (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t getU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

[[noreturn]] void bad(const char* what, const std::string& detail = {}) {
  throw util::Error(std::string("binary dag payload: ") + what +
                    (detail.empty() ? "" : " (" + detail + ")"));
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string encodeBinaryDag(const Digraph& g) {
  const std::size_t n = g.numNodes();
  const std::size_t m = g.numEdges();
  PRIO_CHECK_MSG(n <= 0xffffffffu && m <= 0xffffffffu,
                 "dag too large for the binary wire format");
  std::size_t blob = 0;
  for (NodeId u = 0; u < n; ++u) blob += g.name(u).size();
  std::string out;
  out.reserve(16 + 8 * (n + 1) + 4 * m + blob);
  putU32(out, kBinaryDagMagic);
  putU16(out, kBinaryDagVersion);
  putU16(out, 0);  // flags: reserved
  putU32(out, static_cast<std::uint32_t>(n));
  putU32(out, static_cast<std::uint32_t>(m));
  std::uint32_t edge_cursor = 0;
  putU32(out, 0);
  for (NodeId u = 0; u < n; ++u) {
    edge_cursor += static_cast<std::uint32_t>(g.outDegree(u));
    putU32(out, edge_cursor);
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.children(u)) putU32(out, v);
  }
  std::uint32_t name_cursor = 0;
  putU32(out, 0);
  for (NodeId u = 0; u < n; ++u) {
    name_cursor += static_cast<std::uint32_t>(g.name(u).size());
    putU32(out, name_cursor);
  }
  for (NodeId u = 0; u < n; ++u) out.append(g.name(u));
  return out;
}

Digraph decodeBinaryDag(std::string_view bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < 16) bad("truncated header");
  if (getU32(p) != kBinaryDagMagic) bad("bad magic");
  if (getU16(p + 4) != kBinaryDagVersion) {
    bad("unsupported version", std::to_string(getU16(p + 4)));
  }
  if (getU16(p + 6) != 0) bad("nonzero reserved flags");
  const std::uint64_t n = getU32(p + 8);
  const std::uint64_t m = getU32(p + 12);
  // All arithmetic in u64: n and m come off the wire, so the size
  // equation must be overflow-proof before any array is touched.
  const std::uint64_t fixed = 16 + 8 * (n + 1) + 4 * m;
  if (fixed > bytes.size()) bad("truncated arrays");
  const std::uint64_t blob = bytes.size() - fixed;
  const unsigned char* child_offsets = p + 16;
  const unsigned char* child_edges = child_offsets + 4 * (n + 1);
  const unsigned char* name_offsets = child_edges + 4 * m;
  const unsigned char* name_blob = name_offsets + 4 * (n + 1);
  if (getU32(child_offsets) != 0) bad("child_offsets[0] != 0");
  if (getU32(child_offsets + 4 * n) != m) bad("child_offsets end != m");
  if (getU32(name_offsets) != 0) bad("name_offsets[0] != 0");
  if (getU32(name_offsets + 4 * n) != blob) {
    bad("name blob size mismatch");
  }

  // Decode is the serving hot path (it is what phase_parse measures for
  // binary payloads), so it deliberately avoids the incremental
  // addNode/addEdge API: every structural check runs on the raw wire
  // arrays and the Digraph is bulk-loaded with fromAdjacency(), which
  // skips hash-container construction entirely.

  // Names: offsets strictly increasing (empty names are invalid) and
  // unique. Uniqueness is checked by sorting 64-bit name hashes and
  // string-comparing only equal-hash neighbours — far cheaper than
  // inserting every name into a hash set.
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(n));
  std::vector<std::pair<std::uint64_t, NodeId>> name_hashes(
      static_cast<std::size_t>(n));
  for (std::uint64_t u = 0; u < n; ++u) {
    const std::uint32_t lo = getU32(name_offsets + 4 * u);
    const std::uint32_t hi = getU32(name_offsets + 4 * (u + 1));
    if (lo >= hi || hi > blob) bad("bad name offsets", "node " +
                                   std::to_string(u));
    const std::string_view sv(reinterpret_cast<const char*>(name_blob + lo),
                              hi - lo);
    name_hashes[u] = {fnv1a(sv), static_cast<NodeId>(u)};
    names.emplace_back(sv);
  }
  std::sort(name_hashes.begin(), name_hashes.end());
  for (std::uint64_t i = 1; i < n; ++i) {
    if (name_hashes[i].first == name_hashes[i - 1].first &&
        names[name_hashes[i].second] == names[name_hashes[i - 1].second]) {
      bad("duplicate node name", names[name_hashes[i].second]);
    }
  }

  // Edges: per-node slices must stay in [0, m), targets in range, no
  // self-loops, no duplicates. Duplicates are caught with an epoch
  // stamp per target (epoch = source id + 1), O(V + E) total.
  std::vector<std::vector<NodeId>> children(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> indeg(static_cast<std::size_t>(n), 0);
  std::vector<std::uint32_t> mark(static_cast<std::size_t>(n), 0);
  for (std::uint64_t u = 0; u < n; ++u) {
    const std::uint32_t lo = getU32(child_offsets + 4 * u);
    const std::uint32_t hi = getU32(child_offsets + 4 * (u + 1));
    if (lo > hi || hi > m) bad("non-monotone child_offsets",
                               "node " + std::to_string(u));
    const std::uint32_t epoch = static_cast<std::uint32_t>(u) + 1;
    auto& kids = children[u];
    kids.reserve(hi - lo);
    for (std::uint32_t i = lo; i < hi; ++i) {
      const std::uint32_t v = getU32(child_edges + 4 * i);
      if (v >= n) bad("edge target out of range", std::to_string(v));
      if (v == u) bad("self-loop", "node " + std::to_string(u));
      if (mark[v] == epoch) {
        bad("duplicate edge",
            std::to_string(u) + " -> " + std::to_string(v));
      }
      mark[v] = epoch;
      ++indeg[v];
      kids.push_back(static_cast<NodeId>(v));
    }
  }

  // Kahn's algorithm on the raw adjacency — same acyclicity contract as
  // topologicalOrder(), without a Digraph in hand yet.
  std::vector<NodeId> frontier;
  frontier.reserve(static_cast<std::size_t>(n));
  std::vector<std::uint32_t> deg = indeg;
  for (std::uint64_t v = 0; v < n; ++v) {
    if (deg[v] == 0) frontier.push_back(static_cast<NodeId>(v));
  }
  std::size_t seen = 0;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const NodeId u = frontier[head];
    ++seen;
    for (const NodeId v : children[u]) {
      if (--deg[v] == 0) frontier.push_back(v);
    }
  }
  if (seen != n) bad("graph has a cycle");

  // Transpose with exact per-node capacity (indeg was counted above).
  std::vector<std::vector<NodeId>> parents(static_cast<std::size_t>(n));
  for (std::uint64_t v = 0; v < n; ++v) parents[v].reserve(indeg[v]);
  for (std::uint64_t u = 0; u < n; ++u) {
    for (const NodeId v : children[u]) {
      parents[v].push_back(static_cast<NodeId>(u));
    }
  }

  return Digraph::fromAdjacency(std::move(names), std::move(children),
                                std::move(parents),
                                static_cast<std::size_t>(m));
}

std::string encodeBinaryPriorities(std::span<const std::size_t> priorities) {
  PRIO_CHECK_MSG(priorities.size() <= 0xffffffffu,
                 "priority table too large for the binary wire format");
  std::string out;
  out.reserve(12 + 4 * priorities.size());
  putU32(out, kBinaryPrioMagic);
  putU16(out, kBinaryPrioVersion);
  putU16(out, 0);  // reserved
  putU32(out, static_cast<std::uint32_t>(priorities.size()));
  for (const std::size_t prio : priorities) {
    PRIO_CHECK_MSG(prio <= 0xffffffffu, "priority value overflows u32");
    putU32(out, static_cast<std::uint32_t>(prio));
  }
  return out;
}

std::vector<std::size_t> decodeBinaryPriorities(std::string_view bytes) {
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  if (bytes.size() < 12) {
    throw util::Error("binary priority payload: truncated header");
  }
  if (getU32(p) != kBinaryPrioMagic) {
    throw util::Error("binary priority payload: bad magic");
  }
  if (getU16(p + 4) != kBinaryPrioVersion) {
    throw util::Error("binary priority payload: unsupported version " +
                      std::to_string(getU16(p + 4)));
  }
  if (getU16(p + 6) != 0) {
    throw util::Error("binary priority payload: nonzero reserved flags");
  }
  const std::uint64_t n = getU32(p + 8);
  if (bytes.size() != 12 + 4 * n) {
    throw util::Error("binary priority payload: size mismatch");
  }
  std::vector<std::size_t> priorities;
  priorities.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    priorities.push_back(getU32(p + 12 + 4 * i));
  }
  return priorities;
}

}  // namespace prio::dag
