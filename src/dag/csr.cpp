#include "dag/csr.h"

#include "dag/digraph.h"

namespace prio::dag {

Csr Csr::build(const Digraph& g) {
  const std::size_t n = g.numNodes();
  Csr out;
  out.child_offsets.resize(n + 1);
  out.parent_offsets.resize(n + 1);
  out.child_edges.reserve(g.numEdges());
  out.parent_edges.reserve(g.numEdges());
  out.child_offsets[0] = 0;
  out.parent_offsets[0] = 0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.children(u)) {
      out.child_edges.push_back(v);
      if (v <= u) out.edges_ascend = false;
    }
    for (NodeId p : g.parents(u)) out.parent_edges.push_back(p);
    out.child_offsets[u + 1] = static_cast<std::uint32_t>(
        out.child_edges.size());
    out.parent_offsets[u + 1] = static_cast<std::uint32_t>(
        out.parent_edges.size());
  }
  return out;
}

}  // namespace prio::dag
