#include "dag/dot.h"

#include <sstream>

#include "util/check.h"

namespace prio::dag {

namespace {
std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}
}  // namespace

void writeDot(std::ostream& os, const Digraph& g, const DotOptions& options) {
  if (!options.priorities.empty()) {
    PRIO_CHECK(options.priorities.size() == g.numNodes());
  }
  if (!options.fill_colors.empty()) {
    PRIO_CHECK(options.fill_colors.size() == g.numNodes());
  }
  os << "digraph \"" << escape(options.graph_name) << "\" {\n";
  if (options.rank_bottom_up) os << "  rankdir=BT;\n";
  os << "  node [shape=ellipse];\n";
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    os << "  n" << u << " [label=\"" << escape(g.name(u));
    if (!options.priorities.empty()) {
      os << "\\np=" << options.priorities[u];
    }
    os << '"';
    if (!options.fill_colors.empty() && !options.fill_colors[u].empty()) {
      os << ", style=filled, fillcolor=\"" << escape(options.fill_colors[u])
         << '"';
    }
    os << "];\n";
  }
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    for (NodeId v : g.children(u)) {
      os << "  n" << u << " -> n" << v << ";\n";
    }
  }
  os << "}\n";
}

std::string toDot(const Digraph& g, const DotOptions& options) {
  std::ostringstream os;
  writeDot(os, g, options);
  return os.str();
}

}  // namespace prio::dag
