// Graph algorithms used across the scheduling pipeline: topological
// sorting, reachability, weakly connected components, longest paths, and
// the shortcut-arc removal of §3.1 step 1 (transitive reduction, after
// Aho–Garey–Ullman and Hsu).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "dag/digraph.h"
#include "obs/trace.h"
#include "util/bitmatrix.h"

namespace prio::dag {

/// Kahn topological order, or nullopt when the graph has a cycle.
///
/// Determinism contract: the result is the lexicographically smallest
/// topological order — at every step the smallest-id ready node runs next
/// (the order the original min-heap Kahn produced; tests and fingerprints
/// rely on it being stable). The implementation is an index-ordered
/// pending scan over the flat CSR view instead of an O(E log V) heap:
/// when every arc ascends in id (true for all generators here and for
/// well-formed DAGMan files, detected in O(1) from the CSR), the order is
/// the identity and costs O(V + E); otherwise a word-scanned ready bitmap
/// extracts minima at 64 ids per probe word — O(V + E) in practice, with
/// an O(V^2/64) adversarial worst case far below the old heap's constant.
[[nodiscard]] std::optional<std::vector<NodeId>> topologicalOrder(
    const Digraph& g);

/// True iff the graph has no directed cycle.
[[nodiscard]] bool isAcyclic(const Digraph& g);

/// True iff `order` is a permutation of all nodes consistent with every arc.
[[nodiscard]] bool isTopologicalOrder(const Digraph& g,
                                      std::span<const NodeId> order);

/// Dense descendant matrix: row u has bit v set iff v is reachable from u
/// by a path of length >= 1. Memory is numNodes()^2 / 8 bytes. Long rows
/// are processed in cache-blocked column tiles (util::BitMatrix
/// orRowRangeInto), which keeps the OR-ed row segments cache-resident on
/// large dags; the result is bit-identical either way.
[[nodiscard]] util::BitMatrix descendantMatrix(const Digraph& g);

/// As above with a precomputed topological order of `g` (any valid order;
/// the result does not depend on which). Skips the internal
/// topologicalOrder() call — the decompose pipeline computes the order
/// once and reuses it here, for transitiveReduction, and for decompose's
/// acyclicity check. Precondition: isTopologicalOrder(g, topo_order).
[[nodiscard]] util::BitMatrix descendantMatrix(
    const Digraph& g, std::span<const NodeId> topo_order);

/// How transitiveReduction computes reachability.
enum class ReductionMethod {
  kBitset,   ///< word-parallel descendant matrix; O(V*E/64) time, O(V^2/8) memory
  kEdgeDfs,  ///< per-edge DFS; O(E*(V+E)) time, O(V) memory (small graphs)
};

/// Removes every shortcut arc (u -> v) such that v is reachable from u
/// without that arc (§3.1 step 1). Nodes and names are preserved.
/// Precondition: g is acyclic (a dag's transitive reduction is unique).
[[nodiscard]] Digraph transitiveReduction(
    const Digraph& g, ReductionMethod method = ReductionMethod::kBitset);

/// As above with a precomputed topological order of `g`, so the order is
/// not recomputed per call (the acyclicity precondition is implied by the
/// order's existence). Precondition: isTopologicalOrder(g, topo_order).
[[nodiscard]] Digraph transitiveReduction(const Digraph& g,
                                          ReductionMethod method,
                                          std::span<const NodeId> topo_order);

/// As transitiveReduction(g, method), recording "reduce.topo_order" and
/// "reduce.filter" sub-spans under `trace` (a disabled context costs one
/// branch per span site; the result is identical either way).
[[nodiscard]] Digraph transitiveReduction(const Digraph& g,
                                          ReductionMethod method,
                                          const obs::TraceContext& trace);

/// Weakly connected components (arc orientation ignored). Returns the
/// component index of each node; indices are dense starting at 0.
struct ComponentLabels {
  std::vector<std::size_t> label;  ///< per node
  std::size_t count = 0;
};
[[nodiscard]] ComponentLabels weaklyConnectedComponents(const Digraph& g);

/// All proper descendants of u (BFS order).
[[nodiscard]] std::vector<NodeId> descendants(const Digraph& g, NodeId u);
/// All proper ancestors of u (BFS order).
[[nodiscard]] std::vector<NodeId> ancestors(const Digraph& g, NodeId u);

/// Number of nodes on a longest directed path (the critical path when all
/// jobs take unit time). Precondition: g is acyclic. 0 for an empty graph.
[[nodiscard]] std::size_t longestPathNodes(const Digraph& g);

/// Upward rank with unit job costs: rank(u) = 1 + max over children of
/// rank(child), rank(sink) = 1. Drives the critical-path baseline
/// scheduler (a static HEFT-style priority). Precondition: g is acyclic.
[[nodiscard]] std::vector<std::size_t> upwardRank(const Digraph& g);

/// True iff the graph is a bipartite dag in the paper's sense: every node
/// is a source or a sink (all arcs lead from the source side to the sink
/// side).
[[nodiscard]] bool isBipartiteDag(const Digraph& g);

/// True iff the graph is weakly connected (and non-empty).
[[nodiscard]] bool isConnected(const Digraph& g);

}  // namespace prio::dag
