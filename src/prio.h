// Umbrella header: the library's entire public API in one include.
//
//   #include "prio.h"
//   prio::core::PrioRequest request(my_dag);
//   prio::core::PrioResult result = prio::core::prioritize(request);
//
// Individual subsystem headers remain the preferred includes inside this
// repository; the umbrella exists for downstream consumers.
//
// Stability contract (DESIGN.md §10): everything re-exported here is the
// public surface. PRIO_API_VERSION bumps when that surface changes
// incompatibly; entry points marked [[deprecated]] (the pre-PrioRequest
// overloads of prioritize/scheduleComponents) keep bit-identical
// behavior for one version and are removed at the next bump.
#pragma once

/// Public API version. 2 = the PrioRequest/PrioOptions aggregate API plus
/// the obs observability layer (metrics registry + structured tracing);
/// 1 = the original loose-overload surface, still available as deprecated
/// shims.
#define PRIO_API_VERSION 2

// Substrates.
#include "dag/algorithms.h"   // IWYU pragma: export
#include "dag/digraph.h"      // IWYU pragma: export
#include "dag/dot.h"          // IWYU pragma: export
#include "dag/fingerprint.h"  // IWYU pragma: export
#include "dag/stats.h"        // IWYU pragma: export
#include "stats/distributions.h"  // IWYU pragma: export
#include "stats/rng.h"        // IWYU pragma: export
#include "stats/sampling.h"   // IWYU pragma: export
#include "stats/summary.h"    // IWYU pragma: export
#include "util/bounded_queue.h"  // IWYU pragma: export
#include "util/btree_pq.h"    // IWYU pragma: export
#include "util/check.h"       // IWYU pragma: export
#include "util/thread_pool.h" // IWYU pragma: export
#include "util/timing.h"      // IWYU pragma: export

// Observability: metrics registry + structured tracing (obs::Registry,
// obs::Counter/Gauge/Histogram, obs::Tracer/TraceContext/Span).
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export

// Scheduling theory.
#include "theory/batch.h"        // IWYU pragma: export
#include "theory/blocks.h"       // IWYU pragma: export
#include "theory/bruteforce.h"   // IWYU pragma: export
#include "theory/composition.h"  // IWYU pragma: export
#include "theory/curves.h"       // IWYU pragma: export
#include "theory/eligibility.h"  // IWYU pragma: export
#include "theory/priority.h"     // IWYU pragma: export

// The prio heuristic (core::PrioRequest / core::prioritize).
#include "core/prio.h"    // IWYU pragma: export
#include "core/report.h"  // IWYU pragma: export

// DAGMan integration and execution.
#include "dagman/dagman_file.h"  // IWYU pragma: export
#include "dagman/executor.h"     // IWYU pragma: export
#include "dagman/instrument.h"   // IWYU pragma: export
#include "dagman/jsdf.h"         // IWYU pragma: export

// The priod prioritization service.
#include "service/cache.h"    // IWYU pragma: export
#include "service/metrics.h"  // IWYU pragma: export
#include "service/service.h"  // IWYU pragma: export

// Workloads, simulation, and the Condor system model.
#include "condor/system.h"        // IWYU pragma: export
#include "sim/baselines.h"        // IWYU pragma: export
#include "sim/campaign.h"         // IWYU pragma: export
#include "sim/engine.h"           // IWYU pragma: export
#include "sim/extensions.h"       // IWYU pragma: export
#include "sim/trace.h"            // IWYU pragma: export
#include "sim/workers.h"          // IWYU pragma: export
#include "workloads/random.h"     // IWYU pragma: export
#include "workloads/scientific.h" // IWYU pragma: export
