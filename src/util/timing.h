// Wall-clock timing and process memory probes for the overhead experiments.
//
// Section 3.6 of the paper reports running time and peak memory of the prio
// tool on the four scientific dags; bench_table_overhead reproduces that
// table using these helpers. Peak memory is read from /proc/self/status
// (VmHWM), so absolute values are Linux RSS rather than the paper's Windows
// working-set numbers — comparable in order of magnitude only.
#pragma once

#include <chrono>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>

namespace prio::util {

/// Monotonic stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  [[nodiscard]] double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

namespace detail {
inline std::size_t readStatusKb(const char* key) {
  std::ifstream in("/proc/self/status");
  std::string line;
  const std::string prefix = std::string(key) + ":";
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) == 0) {
      std::istringstream is(line.substr(prefix.size()));
      std::size_t kb = 0;
      is >> kb;
      return kb;
    }
  }
  return 0;
}
}  // namespace detail

/// Peak resident set size of this process in kilobytes (0 if unavailable).
inline std::size_t peakRssKb() { return detail::readStatusKb("VmHWM"); }

/// Current resident set size of this process in kilobytes (0 if unavailable).
inline std::size_t currentRssKb() { return detail::readStatusKb("VmRSS"); }

}  // namespace prio::util
