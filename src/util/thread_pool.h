// A fixed-size worker pool over a pluggable TaskQueue.
//
// The pool owns `numThreads` workers that pop std::function<void()> tasks
// until the queue closes. By default the queue is a single FIFO
// (FifoTaskQueue over bounded_queue.h); callers that need a different
// dispatch order — the multi-tenant fair queue in src/tenant/ — inject
// their own TaskQueue and tag each submission with a routing key.
// Submission exposes the queue's two overload behaviours: submit() blocks
// when the queue is full — backpressure propagates to the caller — while
// trySubmit() rejects. The service layer maps its BackpressurePolicy onto
// this choice.
//
// Tasks must not throw: a worker catches and swallows nothing — an
// escaped exception terminates the process (fail fast beats silently
// losing a request). The service layer wraps every job in a try/catch
// that routes errors into the reply instead.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "util/check.h"
#include "util/task_queue.h"

namespace prio::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1) over a FIFO task queue of the
  /// given capacity — the PR 1 behaviour.
  ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
      : ThreadPool(num_threads,
                   std::make_shared<FifoTaskQueue>(queue_capacity)) {}

  /// Starts `num_threads` workers over a caller-provided queue. The pool
  /// shares ownership: the queue outlives every worker.
  ThreadPool(std::size_t num_threads, std::shared_ptr<TaskQueue> queue)
      : queue_(std::move(queue)) {
    PRIO_CHECK_MSG(num_threads >= 1, "ThreadPool needs at least one thread");
    PRIO_CHECK_MSG(queue_ != nullptr, "ThreadPool needs a task queue");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains and joins. Pending tasks still run; new submissions fail.
  ~ThreadPool() { shutdown(); }

  /// Blocking submit; false only after shutdown().
  bool submit(std::function<void()> task) {
    return queue_->push(0, std::move(task));
  }

  /// Non-blocking submit; false when the queue is full or shut down.
  bool trySubmit(std::function<void()> task) {
    return queue_->tryPush(0, std::move(task));
  }

  /// submit() with an explicit routing key (tenant id). FIFO queues
  /// ignore the key; a fair queue enqueues into that tenant's lane.
  bool submitFor(std::uint32_t key, std::function<void()> task) {
    return queue_->push(key, std::move(task));
  }

  /// trySubmit() with an explicit routing key.
  bool trySubmitFor(std::uint32_t key, std::function<void()> task) {
    return queue_->tryPush(key, std::move(task));
  }

  /// Closes the queue and joins every worker after the backlog drains.
  /// Idempotent; called by the destructor.
  void shutdown() {
    queue_->close();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  [[nodiscard]] std::size_t numThreads() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t queueDepth() const { return queue_->size(); }
  [[nodiscard]] std::size_t queueCapacity() const noexcept {
    return queue_->capacity();
  }
  [[nodiscard]] std::size_t queueHighWater() const {
    return queue_->highWater();
  }

 private:
  void workerLoop() {
    while (auto task = queue_->pop()) {
      (*task)();
    }
  }

  std::shared_ptr<TaskQueue> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace prio::util
