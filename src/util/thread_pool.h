// A fixed-size worker pool over a BoundedQueue of tasks.
//
// The pool owns `numThreads` workers that pop std::function<void()> tasks
// until the queue closes. Submission exposes the queue's two overload
// behaviours (see bounded_queue.h): submit() blocks when the queue is
// full — backpressure propagates to the caller — while trySubmit()
// rejects. The service layer maps its BackpressurePolicy onto this choice.
//
// Tasks must not throw: a worker catches and swallows nothing — an
// escaped exception terminates the process (fail fast beats silently
// losing a request). The service layer wraps every job in a try/catch
// that routes errors into the reply instead.
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <utility>
#include <vector>

#include "util/bounded_queue.h"
#include "util/check.h"

namespace prio::util {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1) over a task queue of the given
  /// capacity.
  ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
      : queue_(queue_capacity) {
    PRIO_CHECK_MSG(num_threads >= 1, "ThreadPool needs at least one thread");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains and joins. Pending tasks still run; new submissions fail.
  ~ThreadPool() { shutdown(); }

  /// Blocking submit; false only after shutdown().
  bool submit(std::function<void()> task) {
    return queue_.push(std::move(task));
  }

  /// Non-blocking submit; false when the queue is full or shut down.
  bool trySubmit(std::function<void()> task) {
    return queue_.tryPush(std::move(task));
  }

  /// Closes the queue and joins every worker after the backlog drains.
  /// Idempotent; called by the destructor.
  void shutdown() {
    queue_.close();
    for (std::thread& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

  [[nodiscard]] std::size_t numThreads() const noexcept {
    return workers_.size();
  }
  [[nodiscard]] std::size_t queueDepth() const { return queue_.size(); }
  [[nodiscard]] std::size_t queueCapacity() const noexcept {
    return queue_.capacity();
  }
  [[nodiscard]] std::size_t queueHighWater() const {
    return queue_.highWater();
  }

 private:
  void workerLoop() {
    while (auto task = queue_.pop()) {
      (*task)();
    }
  }

  BoundedQueue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace prio::util
