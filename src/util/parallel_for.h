// Claim-based parallel loop over an indexed work list, built for reusing
// an existing ThreadPool without ever blocking on it.
//
// parallelClaim(pool, threads, items, fn) calls fn(i) exactly once for
// every i in [0, items), from the calling thread and up to threads-1
// helpers. Work is distributed by an atomic claim counter, so helpers
// that start late (or never start) cost nothing: the caller participates
// in the claim loop itself and is always sufficient to finish the work.
//
// Two properties make this safe to run *inside* a ThreadPool worker (the
// priod service schedules per-request component work on its own request
// pool this way):
//   - helpers are enqueued with trySubmit(): a full or shutting-down
//     queue just means fewer helpers, never a blocked submitter;
//   - the caller waits for completed work items, not for helper tasks:
//     even if no helper ever runs (all pool workers busy with other
//     requests), the caller drains the claim loop alone and returns.
//     A helper that fires after completion claims nothing and touches
//     only its shared control block (kept alive by shared_ptr).
// Under a loaded pool this degrades gracefully to the serial loop, which
// is exactly the right behaviour: request-level parallelism already has
// the cores busy.
//
// The first exception thrown by fn is captured and rethrown on the
// calling thread after every item has completed; once an exception is
// recorded, remaining claims return immediately (their fn is skipped).
// ThreadPool tasks therefore never leak an exception.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>

#include "util/thread_pool.h"

namespace prio::util {

/// Resolves a thread-count request: 0 = one per hardware thread.
[[nodiscard]] inline std::size_t resolveNumThreads(
    std::size_t requested) noexcept {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

template <typename Fn>
void parallelClaim(ThreadPool* pool, std::size_t num_threads,
                   std::size_t num_items, Fn&& fn) {
  if (num_items == 0) return;
  if (num_threads <= 1 || num_items == 1) {
    for (std::size_t i = 0; i < num_items; ++i) fn(i);
    return;
  }

  struct Control {
    std::atomic<std::size_t> next{0};
    std::atomic<bool> aborted{false};
    std::mutex mutex;
    std::condition_variable all_done;
    std::size_t done = 0;
    std::size_t total = 0;
    std::exception_ptr error;  // first exception wins; guarded by mutex
  };
  auto control = std::make_shared<Control>();
  control->total = num_items;

  // The claim loop every participant runs. `fn` and the work items are
  // only touched behind a successful claim, and every item is claimed
  // before the caller can observe done == total — a stray helper that
  // runs after parallelClaim returned claims nothing and reads only the
  // control block it co-owns.
  const auto drain = [control, &fn] {
    for (;;) {
      const std::size_t i =
          control->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= control->total) return;
      if (!control->aborted.load(std::memory_order_relaxed)) {
        try {
          fn(i);
        } catch (...) {
          control->aborted.store(true, std::memory_order_relaxed);
          const std::lock_guard<std::mutex> lock(control->mutex);
          if (control->error == nullptr) {
            control->error = std::current_exception();
          }
        }
      }
      const std::lock_guard<std::mutex> lock(control->mutex);
      if (++control->done == control->total) {
        control->all_done.notify_all();
      }
    }
  };

  // Helpers reference fn by pointer; that is safe because any claim they
  // win happens before the caller sees done == total and returns.
  const std::size_t helpers =
      std::min(num_threads - 1, num_items - 1);
  if (pool != nullptr) {
    for (std::size_t h = 0; h < helpers; ++h) {
      if (!pool->trySubmit(drain)) break;  // full/closed queue: fewer helpers
    }
    drain();
  } else {
    // Standalone path (CLI / tests): a transient pool sized for the
    // helpers; its queue never fills, so submit() cannot block.
    ThreadPool transient(helpers, helpers);
    for (std::size_t h = 0; h < helpers; ++h) {
      transient.submit(drain);
    }
    drain();
    // ~ThreadPool drains and joins, but waiting on item completion below
    // is still what publishes the helpers' writes to this thread.
  }

  std::unique_lock<std::mutex> lock(control->mutex);
  control->all_done.wait(lock, [&] { return control->done == control->total; });
  if (control->error != nullptr) std::rethrow_exception(control->error);
}

}  // namespace prio::util
