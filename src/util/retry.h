// Bounded retry with exponential backoff and seeded full jitter.
//
// prio_serve uses this to re-submit transiently failed requests
// (util::TransientError, queue-full rejections, queue-wait sheds) and
// the net client uses it to pace reconnects. The k-th retry waits a
// uniform draw from [0, min(base * 2^k, cap)) seconds — "full jitter"
// in the AWS-architecture-blog sense. Decorrelating the whole interval
// matters at fleet scale: the previous multiplicative jitter in
// [0.5, 1.5) kept every client's k-th retry inside the same narrow
// band, so a server crash re-synchronized the fleet into reconnect
// convoys that re-overloaded it on the way back up. A full-range draw
// spreads the k-th wave across the entire window.
//
// The jitter stream is splitmix64 seeded by the caller, so a given
// (seed, retry budget) always produces the same wait schedule — the
// chaos tests rely on that determinism.
#pragma once

#include <algorithm>
#include <cstdint>

namespace prio::util {

/// splitmix64: tiny, seedable, statistically fine for jitter and fault
/// schedules (NOT crypto). One instance = one deterministic stream.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform draw from [0, 1).
  [[nodiscard]] double nextUniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  std::uint64_t state_;
};

class ExpBackoff {
 public:
  ExpBackoff(double base_seconds, double cap_seconds, std::uint64_t seed)
      : base_s_(base_seconds), cap_s_(cap_seconds), rng_(seed) {}

  /// Wait before retry attempt `attempt` (0-based), in seconds: a
  /// uniform draw from [0, window(attempt)) where the window doubles
  /// each attempt up to `cap`.
  [[nodiscard]] double next(std::uint64_t attempt) {
    return rng_.nextUniform() * window(attempt);
  }

  /// The un-jittered backoff window for attempt `attempt`:
  /// min(base * 2^attempt, cap).
  [[nodiscard]] double window(std::uint64_t attempt) const {
    double w = base_s_;
    for (std::uint64_t i = 0; i < attempt && w < cap_s_; ++i) w *= 2.0;
    return std::min(w, cap_s_);
  }

 private:
  double base_s_;
  double cap_s_;
  SplitMix64 rng_;
};

}  // namespace prio::util
