// Bounded retry with exponential backoff and seeded jitter.
//
// prio_serve uses this to re-submit transiently failed requests
// (util::TransientError, queue-full rejections, queue-wait sheds): the
// k-th retry waits base * 2^k seconds, scaled by a uniform jitter in
// [0.5, 1.5) and clamped to `cap`. The jitter stream is splitmix64
// seeded by the caller, so a given (seed, retry budget) always produces
// the same wait schedule — the chaos tests rely on that.
#pragma once

#include <algorithm>
#include <cstdint>

namespace prio::util {

class ExpBackoff {
 public:
  ExpBackoff(double base_seconds, double cap_seconds, std::uint64_t seed)
      : base_s_(base_seconds), cap_s_(cap_seconds), state_(seed) {}

  /// Wait before retry attempt `attempt` (0-based), in seconds.
  [[nodiscard]] double next(std::uint64_t attempt) {
    double delay = base_s_;
    for (std::uint64_t i = 0; i < attempt && delay < cap_s_; ++i) delay *= 2.0;
    const double jitter = 0.5 + nextUniform();
    return std::min(delay * jitter, cap_s_);
  }

 private:
  double nextUniform() noexcept {  // splitmix64 step → [0, 1)
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  double base_s_;
  double cap_s_;
  std::uint64_t state_;
};

}  // namespace prio::util
