// Lightweight runtime-check utilities shared by all prio subsystems.
//
// The library throws prio::util::Error (derived from std::runtime_error) on
// precondition violations in public entry points; internal invariants use
// PRIO_ASSERT which is compiled in all build types (the algorithms here are
// cheap relative to the checks, and silent corruption of a schedule is far
// worse than an abort).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace prio::util {

/// Exception thrown on violated preconditions and malformed inputs.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void raise(const char* expr, const char* file, int line,
                               const std::string& msg) {
  std::ostringstream os;
  os << "prio check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace prio::util

/// Always-on invariant check; throws prio::util::Error with location info.
#define PRIO_CHECK(expr)                                                  \
  do {                                                                    \
    if (!(expr))                                                          \
      ::prio::util::detail::raise(#expr, __FILE__, __LINE__, "");         \
  } while (0)

/// Invariant check with an explanatory message (streamed into a string).
#define PRIO_CHECK_MSG(expr, msg)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      std::ostringstream prio_check_os_;                                  \
      prio_check_os_ << msg;                                              \
      ::prio::util::detail::raise(#expr, __FILE__, __LINE__,              \
                                  prio_check_os_.str());                  \
    }                                                                     \
  } while (0)
