// B-tree-based priority queue.
//
// Section 3.5 of the paper reports that replacing a naive quadratic-time
// selection of the best superdag source with "a B-Tree-based priority
// queue [8]" reduced the combine phase's running time by a substantial
// factor. This header reproduces that data structure from scratch: a
// classic CLRS-style B-tree storing (key, value) pairs in lexicographic
// order, supporting insertion, exact-pair erasure, and O(log n) access to
// the minimum and maximum pair.
//
// The tree is used by prio::core as a max-priority queue keyed by the
// greedy score p_i of each superdag source (ties broken by value), and is
// also exercised directly by the ablation benchmark bench_ablation_pq.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "util/check.h"

namespace prio::util {

/// A B-tree multiset of (Key, Value) pairs ordered lexicographically.
///
/// Duplicate pairs are permitted (insert always succeeds); erase removes a
/// single pair equal to its argument. Key and Value must be totally ordered
/// via operator< and equality-comparable via operator==.
template <class Key, class Value, std::size_t MinDegree = 8>
class BTreePq {
  static_assert(MinDegree >= 2, "B-tree minimum degree must be at least 2");

 public:
  using Pair = std::pair<Key, Value>;

  BTreePq() : root_(std::make_unique<Node>(/*leaf=*/true)) {}

  BTreePq(const BTreePq&) = delete;
  BTreePq& operator=(const BTreePq&) = delete;
  BTreePq(BTreePq&&) noexcept = default;
  BTreePq& operator=(BTreePq&&) noexcept = default;

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// Inserts a (key, value) pair; duplicates are allowed.
  void insert(const Key& key, const Value& value) {
    Pair p{key, value};
    if (root_->items.size() == kMaxItems) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      new_root->children.push_back(std::move(root_));
      root_ = std::move(new_root);
      splitChild(*root_, 0);
    }
    insertNonFull(*root_, p);
    ++size_;
  }

  /// Removes one pair equal to (key, value). Returns false if absent.
  bool erase(const Key& key, const Value& value) {
    Pair p{key, value};
    if (!eraseFrom(*root_, p)) return false;
    if (root_->items.empty() && !root_->leaf) {
      root_ = std::move(root_->children.front());
    }
    --size_;
    return true;
  }

  /// Smallest pair. Precondition: !empty().
  [[nodiscard]] const Pair& min() const {
    PRIO_CHECK(!empty());
    const Node* n = root_.get();
    while (!n->leaf) n = n->children.front().get();
    return n->items.front();
  }

  /// Largest pair. Precondition: !empty().
  [[nodiscard]] const Pair& max() const {
    PRIO_CHECK(!empty());
    const Node* n = root_.get();
    while (!n->leaf) n = n->children.back().get();
    return n->items.back();
  }

  /// Removes and returns the smallest pair. Precondition: !empty().
  Pair popMin() {
    Pair p = min();
    PRIO_CHECK(erase(p.first, p.second));
    return p;
  }

  /// Removes and returns the largest pair. Precondition: !empty().
  Pair popMax() {
    Pair p = max();
    PRIO_CHECK(erase(p.first, p.second));
    return p;
  }

  /// True iff a pair equal to (key, value) is present.
  [[nodiscard]] bool contains(const Key& key, const Value& value) const {
    Pair p{key, value};
    const Node* n = root_.get();
    while (true) {
      std::size_t i = lowerBound(*n, p);
      if (i < n->items.size() && n->items[i] == p) return true;
      if (n->leaf) return false;
      n = n->children[i].get();
    }
  }

  /// In-order traversal into a vector (test/debug helper).
  [[nodiscard]] std::vector<Pair> toSortedVector() const {
    std::vector<Pair> out;
    out.reserve(size_);
    collect(*root_, out);
    return out;
  }

  /// Verifies every B-tree structural invariant; throws on violation.
  /// Intended for tests; cost is O(n).
  void validate() const {
    std::size_t counted = 0;
    int depth = -1;
    validateNode(*root_, /*is_root=*/true, /*level=*/0, depth, counted,
                 nullptr, nullptr);
    PRIO_CHECK_MSG(counted == size_, "size mismatch: counted " << counted
                                                               << " vs "
                                                               << size_);
  }

 private:
  static constexpr std::size_t kMaxItems = 2 * MinDegree - 1;
  static constexpr std::size_t kMinItems = MinDegree - 1;

  struct Node {
    explicit Node(bool is_leaf) : leaf(is_leaf) {
      items.reserve(kMaxItems);
      if (!leaf) children.reserve(kMaxItems + 1);
    }
    bool leaf;
    std::vector<Pair> items;                         // sorted
    std::vector<std::unique_ptr<Node>> children;     // items.size() + 1
  };

  static std::size_t lowerBound(const Node& n, const Pair& p) {
    std::size_t lo = 0, hi = n.items.size();
    while (lo < hi) {
      std::size_t mid = (lo + hi) / 2;
      if (n.items[mid] < p)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo;
  }

  // Splits the full child `parent.children[i]` around its median item.
  void splitChild(Node& parent, std::size_t i) {
    Node& full = *parent.children[i];
    PRIO_CHECK(full.items.size() == kMaxItems);
    auto right = std::make_unique<Node>(full.leaf);
    // Median moves up; items after it move to the new right sibling.
    right->items.assign(
        std::make_move_iterator(full.items.begin() + MinDegree),
        std::make_move_iterator(full.items.end()));
    Pair median = std::move(full.items[MinDegree - 1]);
    full.items.resize(MinDegree - 1);
    if (!full.leaf) {
      right->children.assign(
          std::make_move_iterator(full.children.begin() + MinDegree),
          std::make_move_iterator(full.children.end()));
      full.children.resize(MinDegree);
    }
    parent.items.insert(parent.items.begin() + i, std::move(median));
    parent.children.insert(parent.children.begin() + i + 1, std::move(right));
  }

  void insertNonFull(Node& n, Pair& p) {
    if (n.leaf) {
      n.items.insert(n.items.begin() + lowerBound(n, p), std::move(p));
      return;
    }
    std::size_t i = lowerBound(n, p);
    if (n.children[i]->items.size() == kMaxItems) {
      splitChild(n, i);
      if (n.items[i] < p) ++i;
    }
    insertNonFull(*n.children[i], p);
  }

  static const Pair& subtreeMax(const Node& n) {
    const Node* cur = &n;
    while (!cur->leaf) cur = cur->children.back().get();
    return cur->items.back();
  }

  static const Pair& subtreeMin(const Node& n) {
    const Node* cur = &n;
    while (!cur->leaf) cur = cur->children.front().get();
    return cur->items.front();
  }

  // Merges items[i] and children[i+1] into children[i]; both children must
  // hold exactly kMinItems items.
  void mergeChildren(Node& n, std::size_t i) {
    Node& left = *n.children[i];
    Node& right = *n.children[i + 1];
    left.items.push_back(std::move(n.items[i]));
    left.items.insert(left.items.end(),
                      std::make_move_iterator(right.items.begin()),
                      std::make_move_iterator(right.items.end()));
    if (!left.leaf) {
      left.children.insert(left.children.end(),
                           std::make_move_iterator(right.children.begin()),
                           std::make_move_iterator(right.children.end()));
    }
    n.items.erase(n.items.begin() + i);
    n.children.erase(n.children.begin() + i + 1);
  }

  // Guarantees n.children[i] has at least MinDegree items before a
  // recursive descent, borrowing from a sibling or merging. Returns the
  // (possibly adjusted) child index to descend into.
  std::size_t fillChild(Node& n, std::size_t i) {
    if (n.children[i]->items.size() >= MinDegree) return i;
    if (i > 0 && n.children[i - 1]->items.size() >= MinDegree) {
      // Rotate from the left sibling through the separator.
      Node& child = *n.children[i];
      Node& left = *n.children[i - 1];
      child.items.insert(child.items.begin(), std::move(n.items[i - 1]));
      n.items[i - 1] = std::move(left.items.back());
      left.items.pop_back();
      if (!child.leaf) {
        child.children.insert(child.children.begin(),
                              std::move(left.children.back()));
        left.children.pop_back();
      }
      return i;
    }
    if (i < n.items.size() && n.children[i + 1]->items.size() >= MinDegree) {
      // Rotate from the right sibling through the separator.
      Node& child = *n.children[i];
      Node& right = *n.children[i + 1];
      child.items.push_back(std::move(n.items[i]));
      n.items[i] = std::move(right.items.front());
      right.items.erase(right.items.begin());
      if (!child.leaf) {
        child.children.push_back(std::move(right.children.front()));
        right.children.erase(right.children.begin());
      }
      return i;
    }
    // Both siblings are minimal: merge with one of them.
    if (i < n.items.size()) {
      mergeChildren(n, i);
      return i;
    }
    mergeChildren(n, i - 1);
    return i - 1;
  }

  bool eraseFrom(Node& n, const Pair& p) {
    std::size_t i = lowerBound(n, p);
    if (i < n.items.size() && n.items[i] == p) {
      if (n.leaf) {
        n.items.erase(n.items.begin() + i);
        return true;
      }
      if (n.children[i]->items.size() >= MinDegree) {
        Pair pred = subtreeMax(*n.children[i]);
        n.items[i] = pred;
        return eraseFrom(*n.children[i], pred);
      }
      if (n.children[i + 1]->items.size() >= MinDegree) {
        Pair succ = subtreeMin(*n.children[i + 1]);
        n.items[i] = succ;
        return eraseFrom(*n.children[i + 1], succ);
      }
      mergeChildren(n, i);
      return eraseFrom(*n.children[i], p);
    }
    if (n.leaf) return false;
    i = fillChild(n, i);
    return eraseFrom(*n.children[i], p);
  }

  static void collect(const Node& n, std::vector<Pair>& out) {
    for (std::size_t i = 0; i < n.items.size(); ++i) {
      if (!n.leaf) collect(*n.children[i], out);
      out.push_back(n.items[i]);
    }
    if (!n.leaf) collect(*n.children.back(), out);
  }

  void validateNode(const Node& n, bool is_root, int level, int& leaf_depth,
                    std::size_t& counted, const Pair* lo,
                    const Pair* hi) const {
    if (!is_root) {
      PRIO_CHECK_MSG(n.items.size() >= kMinItems,
                     "underfull non-root node at level " << level);
    }
    PRIO_CHECK(n.items.size() <= kMaxItems);
    counted += n.items.size();
    for (std::size_t i = 0; i + 1 < n.items.size(); ++i) {
      PRIO_CHECK(!(n.items[i + 1] < n.items[i]));
    }
    if (!n.items.empty()) {
      if (lo != nullptr) PRIO_CHECK(!(n.items.front() < *lo));
      if (hi != nullptr) PRIO_CHECK(!(*hi < n.items.back()));
    }
    if (n.leaf) {
      PRIO_CHECK(n.children.empty());
      if (leaf_depth < 0) leaf_depth = level;
      PRIO_CHECK_MSG(leaf_depth == level, "leaves at different depths");
      return;
    }
    PRIO_CHECK(n.children.size() == n.items.size() + 1);
    for (std::size_t i = 0; i <= n.items.size(); ++i) {
      const Pair* clo = (i == 0) ? lo : &n.items[i - 1];
      const Pair* chi = (i == n.items.size()) ? hi : &n.items[i];
      validateNode(*n.children[i], false, level + 1, leaf_depth, counted,
                   clo, chi);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace prio::util
