// Crash-safe file output: write to a temp file in the target directory,
// flush, then atomically rename() into place. Readers (and an
// interrupted run) therefore only ever see either the old complete file
// or the new complete file — never a torn prefix. rename(2) within one
// directory is atomic on POSIX, which is why the temp file must live
// next to the target, not in /tmp (a cross-filesystem rename is a
// copy).
//
// The "atomic_file.rename" fault site sits between the flush and the
// rename — the worst possible crash instant. A simulated crash
// (util::CrashError) leaves the temp file behind exactly as a killed
// process would; any other failure cleans it up before rethrowing.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>

#include "util/check.h"
#include "util/fault_injection.h"

namespace prio::util {

/// Writes `path` atomically: `writer` streams the content into a
/// sibling temp file which is then renamed over `path`. Throws
/// util::Error when the temp file cannot be written or renamed.
inline void atomicWriteFile(const std::string& path,
                            const std::function<void(std::ostream&)>& writer) {
  // Unique per process *and* per call: concurrent service workers may
  // write distinct targets in one directory, and a retried request may
  // re-write the same target.
  static std::atomic<std::uint64_t> sequence{0};
  const std::string tmp =
      path + ".tmp." +
      std::to_string(sequence.fetch_add(1, std::memory_order_relaxed));
  try {
    {
      std::ofstream out(tmp);
      PRIO_CHECK_MSG(out.good(), "cannot write temp file " << tmp);
      writer(out);
      out.flush();
      PRIO_CHECK_MSG(out.good(), "failed writing temp file " << tmp);
    }
    fault::checkpoint("atomic_file.rename");
    PRIO_CHECK_MSG(std::rename(tmp.c_str(), path.c_str()) == 0,
                   "cannot rename " << tmp << " to " << path);
  } catch (const CrashError&) {
    // Simulated process death: leave the temp file, like a real crash.
    throw;
  } catch (...) {
    std::remove(tmp.c_str());
    throw;
  }
}

}  // namespace prio::util
