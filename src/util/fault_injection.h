// Deterministic, seeded fault injection for the robustness tests.
//
// Production code marks named fault sites with fault::checkpoint("site");
// a disarmed injector (the default, and the only state outside tests)
// makes that a single relaxed atomic load. Tests arm the global injector
// with a seed and per-site plans, then every checkpoint pass consults
// the plan deterministically:
//
//   kThrowError      throw util::Error          (permanent failure, e.g.
//                                               a forced parse error)
//   kThrowTransient  throw util::TransientError (retryable failure)
//   kDelay           sleep for `delay`          (scheduling delay, to
//                                               push work past deadlines)
//   kCrash           throw util::CrashError     (simulated crash point:
//                                               whatever the process
//                                               would leave behind at
//                                               this instruction must be
//                                               recoverable)
//
// Determinism: a site either fires on every Nth pass (every_nth) or
// with a probability drawn from a per-site splitmix64 stream seeded
// from (arm seed, site name) — the same seed always yields the same
// fire pattern regardless of scheduling, because each site's stream
// advances only with that site's own pass counter. Counters and streams
// are guarded by a mutex; that cost exists only while armed.
//
// The injector is a process-wide singleton on purpose: fault sites sit
// in library code (parser, atomic writer, core phases) that has no
// test-context parameter, and tests that arm it are serialized by
// gtest. fireCount() lets tests assert how often a site actually fired.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "util/check.h"

namespace prio::util {

/// A retryable failure: the operation may succeed if repeated (used by
/// the fault injector and honored by prio_serve's retry loop).
class TransientError : public Error {
 public:
  explicit TransientError(const std::string& what) : Error(what) {}
};

/// A simulated crash: the process is assumed to die at the throw site,
/// so nothing downstream of it may run "cleanup" that a real crash
/// would skip (the atomic-file writer deliberately leaks its temp file
/// on this error, exactly like a killed process would).
class CrashError : public Error {
 public:
  explicit CrashError(const std::string& what) : Error(what) {}
};

namespace fault {

enum class Kind {
  kThrowError,
  kThrowTransient,
  kDelay,
  kCrash,
  // Socket-level kinds, consumed by util/socket.h via ioCheckpoint().
  // At a plain checkpoint() they are inert (the site fires, counted,
  // but nothing observable happens — non-IO code cannot honor them).
  kShortIo,  ///< truncate the transfer to 1 byte (short read/write)
  kEagain,   ///< fail with EAGAIN before the syscall (readiness storm)
  kReset,    ///< fail with ECONNRESET before the syscall (peer reset)
};

/// What an IO-aware fault site asks the socket helper to simulate.
enum class IoFault {
  kNone,    ///< proceed with the real syscall
  kShort,   ///< cap the transfer at 1 byte
  kEagain,  ///< return -1 with errno = EAGAIN
  kReset,   ///< return -1 with errno = ECONNRESET
};

struct SitePlan {
  Kind kind = Kind::kThrowError;
  /// Fire on passes N, 2N, 3N, ... (1 = every pass). 0 = use probability.
  std::uint64_t every_nth = 1;
  /// Chance of firing per pass when every_nth == 0 (seeded, deterministic
  /// per site).
  double probability = 0.0;
  /// Sleep duration for Kind::kDelay.
  std::chrono::microseconds delay{0};
};

class Injector {
 public:
  static Injector& instance() {
    static Injector injector;
    return injector;
  }

  /// Enables injection with a fresh seed; clears all previous plans and
  /// counters.
  void arm(std::uint64_t seed) {
    std::lock_guard<std::mutex> lock(mu_);
    seed_ = seed;
    sites_.clear();
    armed_.store(true, std::memory_order_relaxed);
  }

  /// Disables injection; checkpoint() reverts to one atomic load.
  void disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_.store(false, std::memory_order_relaxed);
    sites_.clear();
  }

  /// Installs the plan for one site (replacing any previous plan).
  void plan(const std::string& site, const SitePlan& plan) {
    PRIO_CHECK_MSG(plan.every_nth > 0 || plan.probability > 0.0,
                   "fault plan for " << site << " can never fire");
    std::lock_guard<std::mutex> lock(mu_);
    SiteState& s = sites_[site];
    s.plan = plan;
    s.passes = 0;
    s.fires = 0;
    s.rng_state = seed_ ^ hashName(site);
  }

  /// Times the site's fault actually fired since plan().
  [[nodiscard]] std::uint64_t fireCount(const std::string& site) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.fires;
  }

  /// Times the site was passed (fired or not) since plan().
  [[nodiscard]] std::uint64_t passCount(const std::string& site) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = sites_.find(site);
    return it == sites_.end() ? 0 : it->second.passes;
  }

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }

  /// The per-site hook; called via fault::checkpoint().
  void pass(const char* site) { (void)ioPass(site); }

  /// The IO-aware hook; called via fault::ioCheckpoint() from the socket
  /// helpers. Throwing kinds throw exactly like pass(); kDelay sleeps;
  /// the socket kinds return the IoFault for the caller to simulate.
  [[nodiscard]] IoFault ioPass(const char* site) {
    std::chrono::microseconds delay{0};
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = sites_.find(site);
      if (it == sites_.end()) return IoFault::kNone;
      SiteState& s = it->second;
      ++s.passes;
      bool fire = false;
      if (s.plan.every_nth > 0) {
        fire = s.passes % s.plan.every_nth == 0;
      } else {
        fire = nextUniform(s.rng_state) < s.plan.probability;
      }
      if (!fire) return IoFault::kNone;
      ++s.fires;
      switch (s.plan.kind) {
        case Kind::kThrowError:
          throw Error(std::string("injected fault at ") + site);
        case Kind::kThrowTransient:
          throw TransientError(std::string("injected transient fault at ") +
                               site);
        case Kind::kCrash:
          throw CrashError(std::string("injected crash at ") + site);
        case Kind::kDelay:
          delay = s.plan.delay;
          break;
        case Kind::kShortIo: return IoFault::kShort;
        case Kind::kEagain: return IoFault::kEagain;
        case Kind::kReset: return IoFault::kReset;
      }
    }
    // Sleep outside the lock so delayed sites don't serialize the others.
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    return IoFault::kNone;
  }

 private:
  struct SiteState {
    SitePlan plan;
    std::uint64_t passes = 0;
    std::uint64_t fires = 0;
    std::uint64_t rng_state = 0;
  };

  static std::uint64_t hashName(const std::string& name) noexcept {
    std::uint64_t h = 1469598103934665603ULL;  // FNV-1a
    for (const char c : name) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
    return h;
  }

  // splitmix64 step → uniform in [0, 1).
  static double nextUniform(std::uint64_t& state) noexcept {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
  }

  std::atomic<bool> armed_{false};
  std::mutex mu_;
  std::uint64_t seed_ = 0;
  std::unordered_map<std::string, SiteState> sites_;
};

/// The site marker production code calls. One relaxed load when the
/// injector is disarmed.
inline void checkpoint(const char* site) {
  Injector& injector = Injector::instance();
  if (!injector.armed()) return;
  injector.pass(site);
}

/// The IO-aware site marker the socket helpers call: same fire logic as
/// checkpoint(), but socket kinds come back as a value instead of being
/// swallowed. One relaxed load when disarmed.
[[nodiscard]] inline IoFault ioCheckpoint(const char* site) {
  Injector& injector = Injector::instance();
  if (!injector.armed()) return IoFault::kNone;
  return injector.ioPass(site);
}

}  // namespace fault
}  // namespace prio::util
