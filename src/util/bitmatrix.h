// Dense bit matrix used for word-parallel reachability computations.
//
// Transitive reduction (§3.1 step 1 of the paper) on a 48k-node dag such as
// SDSS needs per-node reachability sets; a packed bit matrix makes the
// dominant operation — OR-ing one node's reachability row into another's —
// run 64 nodes per machine word.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace prio::util {

/// A rows x cols bit matrix packed into 64-bit words, row-major.
class BitMatrix {
 public:
  BitMatrix() = default;

  /// Creates a zeroed rows x cols matrix.
  BitMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows),
        cols_(cols),
        words_per_row_((cols + 63) / 64),
        bits_(rows * words_per_row_, 0) {}

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  /// Approximate heap footprint in bytes (used by memory-budget guards).
  [[nodiscard]] std::size_t byteSize() const noexcept {
    return bits_.size() * sizeof(std::uint64_t);
  }

  void set(std::size_t r, std::size_t c) {
    PRIO_CHECK(r < rows_ && c < cols_);
    bits_[r * words_per_row_ + c / 64] |= (std::uint64_t{1} << (c % 64));
  }

  void clearBit(std::size_t r, std::size_t c) {
    PRIO_CHECK(r < rows_ && c < cols_);
    bits_[r * words_per_row_ + c / 64] &= ~(std::uint64_t{1} << (c % 64));
  }

  [[nodiscard]] bool test(std::size_t r, std::size_t c) const {
    PRIO_CHECK(r < rows_ && c < cols_);
    return (bits_[r * words_per_row_ + c / 64] >>
            (c % 64)) & std::uint64_t{1};
  }

  /// dst |= src, word-parallel over whole rows.
  void orRowInto(std::size_t dst, std::size_t src) {
    PRIO_CHECK(dst < rows_ && src < rows_);
    std::uint64_t* d = &bits_[dst * words_per_row_];
    const std::uint64_t* s = &bits_[src * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) d[w] |= s[w];
  }

  /// dst |= src restricted to the word range [word_begin, word_end) of
  /// each row — the cache-blocked tile primitive: descendantMatrix
  /// processes long rows one column tile at a time so the row segments
  /// being OR-ed together stay resident in cache across the pass.
  void orRowRangeInto(std::size_t dst, std::size_t src,
                      std::size_t word_begin, std::size_t word_end) {
    PRIO_CHECK(dst < rows_ && src < rows_ && word_end <= words_per_row_);
    std::uint64_t* d = &bits_[dst * words_per_row_];
    const std::uint64_t* s = &bits_[src * words_per_row_];
    for (std::size_t w = word_begin; w < word_end; ++w) d[w] |= s[w];
  }

  [[nodiscard]] std::size_t wordsPerRow() const noexcept {
    return words_per_row_;
  }

  /// Number of set bits in a row.
  [[nodiscard]] std::size_t rowPopcount(std::size_t r) const {
    PRIO_CHECK(r < rows_);
    std::size_t total = 0;
    const std::uint64_t* row = &bits_[r * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      total += static_cast<std::size_t>(__builtin_popcountll(row[w]));
    }
    return total;
  }

  /// True iff any bit set in row `r` is also set in row `other`.
  [[nodiscard]] bool rowsIntersect(std::size_t r, std::size_t other) const {
    PRIO_CHECK(r < rows_ && other < rows_);
    const std::uint64_t* a = &bits_[r * words_per_row_];
    const std::uint64_t* b = &bits_[other * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      if ((a[w] & b[w]) != 0) return true;
    }
    return false;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t words_per_row_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace prio::util
