// The pluggable work-queue interface under util::ThreadPool.
//
// PR 1's pool hard-wired a single BoundedQueue, which fixes the dispatch
// order to global FIFO. The multi-tenant subsystem (src/tenant/) needs to
// choose WHICH pending task runs next (deficit-round-robin across
// tenants), so the pool now pops from this interface instead. Every push
// carries a small routing key — the tenant id — that FIFO ignores and a
// fair queue uses to pick a lane.
//
// Contract (identical to BoundedQueue, per method):
//   push()     — block until enqueued; false only once closed;
//   tryPush()  — false when full or closed, never blocks;
//   pop()      — block for the next task; nullopt once closed AND drained;
//   close()    — idempotent; producers start failing, consumers drain.
// Implementations are multi-producer multi-consumer safe.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>

#include "util/bounded_queue.h"

namespace prio::util {

class TaskQueue {
 public:
  using Task = std::function<void()>;

  virtual ~TaskQueue() = default;

  virtual bool push(std::uint32_t key, Task task) = 0;
  virtual bool tryPush(std::uint32_t key, Task task) = 0;
  virtual std::optional<Task> pop() = 0;
  virtual void close() = 0;

  [[nodiscard]] virtual std::size_t size() const = 0;
  [[nodiscard]] virtual std::size_t capacity() const noexcept = 0;
  [[nodiscard]] virtual std::size_t highWater() const = 0;
};

/// The default backend: one global FIFO, routing key ignored. Wraps
/// BoundedQueue so the PR 1 pool semantics (and its tests) are preserved
/// bit for bit.
class FifoTaskQueue final : public TaskQueue {
 public:
  explicit FifoTaskQueue(std::size_t capacity) : queue_(capacity) {}

  bool push(std::uint32_t /*key*/, Task task) override {
    return queue_.push(std::move(task));
  }
  bool tryPush(std::uint32_t /*key*/, Task task) override {
    return queue_.tryPush(std::move(task));
  }
  std::optional<Task> pop() override { return queue_.pop(); }
  void close() override { queue_.close(); }

  [[nodiscard]] std::size_t size() const override { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept override {
    return queue_.capacity();
  }
  [[nodiscard]] std::size_t highWater() const override {
    return queue_.highWater();
  }

 private:
  BoundedQueue<Task> queue_;
};

}  // namespace prio::util
