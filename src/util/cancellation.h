// Deadline / cancellation tokens for bounding scheduling time.
//
// A CancelToken carries an optional monotonic-clock deadline and a
// relaxed-atomic cancel flag. The hot-loop entry point is poll(): it
// always reads the cancel flag (one relaxed load), but consults the
// clock only every kClockStride calls — steady_clock::now() costs tens
// of nanoseconds, which would dominate the tight decompose/combine
// loops it is threaded through. Once a deadline has been observed as
// expired the outcome is latched, so later polls are flag-load cheap.
//
// The token is thread-safe: cancel() may be called from any thread
// while another thread polls (this is how the service's queue-wait
// shedding and the chaos tests use it). All state is atomic with
// relaxed ordering — cancellation is a monotonic one-way signal, and a
// poll racing a cancel is allowed to win either way; the next poll
// sees it.
//
// Core entry points accept `const CancelToken*` (null = never cancel,
// the default) and raise Cancelled via throwIfCancelled() at phase
// boundaries and inside per-iteration loops. With no token set the
// added cost is one null-pointer test per check site, which keeps
// prioritize() bit-identical and within noise of the pre-token code
// (measured by bench_robustness).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "util/check.h"

namespace prio::util {

/// Thrown when a CancelToken's deadline expires or cancel() is called.
/// Derives from Error so generic catch sites keep working; the service
/// catches it specifically to fall back to a degraded schedule.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Only check the clock every this many polls.
  static constexpr std::uint64_t kClockStride = 256;

  /// A token with no deadline; fires only on explicit cancel().
  CancelToken() = default;

  /// A token that expires `deadline_seconds` from now (monotonic clock).
  /// The atomic members make tokens immovable; construct them where they
  /// live and hand out pointers.
  explicit CancelToken(double deadline_seconds)
      : has_deadline_(true),
        deadline_(Clock::now() +
                  std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(deadline_seconds))) {}

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Safe from any thread, idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// True when cancelled or past the deadline. Cheap: a relaxed flag
  /// load on most calls, a clock read every kClockStride-th call.
  [[nodiscard]] bool poll() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (polls_.fetch_add(1, std::memory_order_relaxed) % kClockStride != 0) {
      return false;
    }
    return checkClock();
  }

  /// As poll(), but always consults the clock (phase boundaries).
  [[nodiscard]] bool expired() const noexcept {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    return checkClock();
  }

  /// Raises Cancelled when poll() fires. `where` names the phase for
  /// the error message.
  void throwIfCancelled(const char* where) const {
    if (poll()) throw Cancelled(std::string("prio cancelled in ") + where);
  }

  [[nodiscard]] bool hasDeadline() const noexcept { return has_deadline_; }

 private:
  bool checkClock() const noexcept {
    if (Clock::now() < deadline_) return false;
    // Latch: every later poll() short-circuits on the flag load.
    cancelled_.store(true, std::memory_order_relaxed);
    return true;
  }

  bool has_deadline_ = false;
  Clock::time_point deadline_{};
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::uint64_t> polls_{0};
};

}  // namespace prio::util
