// A bounded multi-producer multi-consumer queue — the backpressure
// primitive under the prioritization service's thread pool.
//
// The queue holds at most `capacity` items. Producers choose the overload
// behaviour per call:
//   push()     — block until space frees up (or the queue is closed);
//   tryPush()  — return false immediately when full (queue-full rejection).
// Consumers pop() until the queue is closed AND drained; pop() then
// returns nullopt, which is the pool workers' shutdown signal.
//
// The implementation is a mutex + two condition variables over a ring
// buffer. A lock-free queue would shave nanoseconds, but every item here
// carries a full prioritize() run (micro- to milliseconds), so contention
// on this mutex is never the bottleneck; simplicity and a provable
// drain-on-close win.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/check.h"

namespace prio::util {

template <typename T>
class BoundedQueue {
 public:
  /// Creates a queue holding at most `capacity` items (>= 1).
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity), ring_(capacity) {
    PRIO_CHECK_MSG(capacity >= 1, "BoundedQueue capacity must be >= 1");
  }

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until the item is enqueued. Returns false (item dropped) only
  /// when the queue has been closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return size_ < capacity_ || closed_; });
    if (closed_) return false;
    enqueueLocked(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking: returns false when the queue is full or closed.
  bool tryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || size_ == capacity_) return false;
      enqueueLocked(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks for the next item. Returns nullopt once the queue is closed
  /// and every enqueued item has been consumed.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;  // closed and drained
    T item = std::move(ring_[head_]);
    head_ = (head_ + 1) % capacity_;
    --size_;
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Closes the queue: subsequent pushes fail, consumers drain the
  /// remaining items and then receive nullopt. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Largest size() ever observed at enqueue time (the queue-depth
  /// high-water mark reported by the service metrics).
  [[nodiscard]] std::size_t highWater() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  void enqueueLocked(T item) {
    ring_[(head_ + size_) % capacity_] = std::move(item);
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
  }

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace prio::util
