// RAII file-descriptor ownership and EINTR-safe I/O helpers for the
// network layer (src/net/).
//
// UniqueFd is to a POSIX fd what unique_ptr is to heap memory: move-only
// ownership, closed exactly once on destruction. Sockets are created
// close-on-exec (SOCK_CLOEXEC) so a fork+exec elsewhere in the process
// never leaks a connection.
//
// readSome()/writeSome() wrap read()/write() in the canonical EINTR
// retry loop: a signal that interrupts the syscall before any bytes move
// must restart it, not surface a phantom error. Both carry a fault-
// injection site ("net.read", "net.write" — see util/fault_injection.h):
// a plan of Kind::kThrowTransient fires as a *synthetic EINTR*, so tests
// drive the retry loop deterministically without real signals; the
// socket kinds simulate a short transfer (kShortIo), a readiness storm
// (kEagain), or a peer reset (kReset) without touching the descriptor;
// kDelay stalls the byte stream; any other plan kind propagates as
// usual (a hard injected I/O failure).
//
// waitReadable()/readSomeTimed() are the poll(2)-based bounded variants
// the client uses so a stalled peer costs a timeout, never a hang.
//
// Close intentionally does NOT retry on EINTR: on Linux the descriptor
// is released even when close() returns EINTR, and retrying can close a
// descriptor that another thread has already been handed.
#pragma once

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstddef>

#include "util/fault_injection.h"

namespace prio::util {

/// Move-only owner of one POSIX file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Gives up ownership without closing.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held descriptor (if any) and adopts `fd`.
  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);  // no EINTR retry; see file comment
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

/// socket(2) with SOCK_CLOEXEC folded in. Invalid UniqueFd on failure
/// (errno set).
[[nodiscard]] inline UniqueFd socketCloexec(int domain, int type,
                                           int protocol) {
  return UniqueFd(::socket(domain, type | SOCK_CLOEXEC, protocol));
}

/// Puts `fd` into non-blocking mode. False on failure (errno set).
inline bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Sets FD_CLOEXEC on `fd` (for descriptors not created *_CLOEXEC, e.g.
/// accept() on kernels without accept4). False on failure.
inline bool setCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

namespace detail {

/// What one consult of a socket fault site asks the helper to do.
struct IoOutcome {
  bool eintr = false;     ///< pretend the syscall was interrupted; retry
  bool eagain = false;    ///< fail with EAGAIN without the syscall
  bool reset = false;     ///< fail with ECONNRESET without the syscall
  bool short_io = false;  ///< cap the transfer at 1 byte
};

/// Consults the named fault site. Kind::kThrowTransient is the synthetic
/// EINTR; the socket kinds map onto the flags; kThrowError/kCrash throw
/// through to the caller (a hard injected I/O failure); kDelay has
/// already slept inside the checkpoint.
inline IoOutcome consultFaults(const char* site) {
  IoOutcome o;
  try {
    switch (fault::ioCheckpoint(site)) {
      case fault::IoFault::kNone: break;
      case fault::IoFault::kShort: o.short_io = true; break;
      case fault::IoFault::kEagain: o.eagain = true; break;
      case fault::IoFault::kReset: o.reset = true; break;
    }
  } catch (const TransientError&) {
    o.eintr = true;
  }
  return o;
}

}  // namespace detail

/// read(2) retried on EINTR (real or injected via site "net.read").
/// Returns bytes read (0 = EOF) or -1 with errno set (EAGAIN/EWOULDBLOCK
/// included — non-blocking callers handle those themselves).
inline long readSome(int fd, void* buf, std::size_t n) {
  for (;;) {
    const detail::IoOutcome f = detail::consultFaults("net.read");
    if (f.eintr) {
      errno = EINTR;
      continue;
    }
    if (f.eagain) {
      errno = EAGAIN;
      return -1;
    }
    if (f.reset) {
      errno = ECONNRESET;
      return -1;
    }
    const std::size_t want = f.short_io && n > 1 ? 1 : n;
    const long r = ::read(fd, buf, want);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// write(2) retried on EINTR (real or injected via site "net.write").
/// Returns bytes written or -1 with errno set.
inline long writeSome(int fd, const void* buf, std::size_t n) {
  for (;;) {
    const detail::IoOutcome f = detail::consultFaults("net.write");
    if (f.eintr) {
      errno = EINTR;
      continue;
    }
    if (f.eagain) {
      errno = EAGAIN;
      return -1;
    }
    if (f.reset) {
      errno = ECONNRESET;
      return -1;
    }
    const std::size_t want = f.short_io && n > 1 ? 1 : n;
    // MSG_NOSIGNAL: writing to a peer that already reset must surface as
    // EPIPE for the caller to handle, never as a process-killing SIGPIPE
    // (the chaos proxy and the crash-recovering client both write into
    // freshly-dead connections as a matter of course). Non-socket fds
    // get ENOTSOCK and fall back to plain write().
    long r = ::send(fd, buf, want, MSG_NOSIGNAL);
    if (r < 0 && errno == ENOTSOCK) r = ::write(fd, buf, want);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// poll(2) for readability with a wall-clock bound. Returns 1 when `fd`
/// is readable (or has a pending error/EOF to harvest), 0 on timeout,
/// -1 on poll failure (errno set). EINTR restarts with the remaining
/// time so a signal can't silently extend the bound. timeout_ms < 0
/// waits forever (plain blocking semantics).
inline int waitReadable(int fd, int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  int remaining = timeout_ms;
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = POLLIN;
    pfd.revents = 0;
    const int r = ::poll(&pfd, 1, remaining);
    if (r >= 0) return r > 0 ? 1 : 0;
    if (errno != EINTR) return -1;
    if (timeout_ms < 0) continue;
    const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    remaining = timeout_ms - static_cast<int>(waited);
    if (remaining <= 0) return 0;
  }
}

/// readSome() bounded by waitReadable(): returns bytes read (0 = EOF),
/// -1 with errno set on error, or -2 when `timeout_ms` elapsed with no
/// byte available. For BLOCKING descriptors an injected/real EAGAIN is
/// treated as "not ready yet" and re-polled until the deadline, so an
/// EAGAIN storm costs time, not correctness.
inline constexpr long kReadTimedOut = -2;
inline long readSomeTimed(int fd, void* buf, std::size_t n, int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    int remaining = timeout_ms;
    if (timeout_ms >= 0) {
      const auto waited =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      remaining = timeout_ms - static_cast<int>(waited);
      if (remaining < 0) remaining = 0;
    }
    const int ready = waitReadable(fd, remaining);
    if (ready < 0) return -1;
    if (ready == 0) return kReadTimedOut;
    const long r = readSome(fd, buf, n);
    if (r >= 0) return r;
    if (errno != EAGAIN && errno != EWOULDBLOCK) return -1;
    // Spurious readiness or an injected EAGAIN storm: poll again with
    // whatever budget is left.
    if (timeout_ms == 0) return kReadTimedOut;
  }
}

/// Writes all `n` bytes to a BLOCKING descriptor, absorbing short writes
/// and EINTR. False on error (errno set).
inline bool writeAll(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const long w = writeSome(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly `n` bytes from a BLOCKING descriptor unless EOF or an
/// error intervenes. Returns bytes read (< n means EOF), or -1 on error.
inline long readFull(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const long r = readSome(fd, p + got, n - got);
    if (r < 0) return -1;
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return static_cast<long>(got);
}

}  // namespace prio::util
