// RAII file-descriptor ownership and EINTR-safe I/O helpers for the
// network layer (src/net/).
//
// UniqueFd is to a POSIX fd what unique_ptr is to heap memory: move-only
// ownership, closed exactly once on destruction. Sockets are created
// close-on-exec (SOCK_CLOEXEC) so a fork+exec elsewhere in the process
// never leaks a connection.
//
// readSome()/writeSome() wrap read()/write() in the canonical EINTR
// retry loop: a signal that interrupts the syscall before any bytes move
// must restart it, not surface a phantom error. Both carry a fault-
// injection site ("net.read", "net.write" — see util/fault_injection.h):
// a plan of Kind::kThrowTransient fires as a *synthetic EINTR*, so tests
// drive the retry loop deterministically without real signals; any other
// plan kind propagates as usual (a hard injected I/O failure).
//
// Close intentionally does NOT retry on EINTR: on Linux the descriptor
// is released even when close() returns EINTR, and retrying can close a
// descriptor that another thread has already been handed.
#pragma once

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstddef>

#include "util/fault_injection.h"

namespace prio::util {

/// Move-only owner of one POSIX file descriptor.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) noexcept : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }

  /// Gives up ownership without closing.
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }

  /// Closes the held descriptor (if any) and adopts `fd`.
  void reset(int fd = -1) noexcept {
    if (fd_ >= 0) ::close(fd_);  // no EINTR retry; see file comment
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

/// socket(2) with SOCK_CLOEXEC folded in. Invalid UniqueFd on failure
/// (errno set).
[[nodiscard]] inline UniqueFd socketCloexec(int domain, int type,
                                           int protocol) {
  return UniqueFd(::socket(domain, type | SOCK_CLOEXEC, protocol));
}

/// Puts `fd` into non-blocking mode. False on failure (errno set).
inline bool setNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// Sets FD_CLOEXEC on `fd` (for descriptors not created *_CLOEXEC, e.g.
/// accept() on kernels without accept4). False on failure.
inline bool setCloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

namespace detail {

/// Consults the named fault site; true means "pretend the syscall was
/// interrupted" (errno = EINTR). Kind::kThrowTransient is the synthetic
/// EINTR; other armed kinds throw through to the caller.
inline bool injectedEintr(const char* site) {
  try {
    fault::checkpoint(site);
  } catch (const TransientError&) {
    errno = EINTR;
    return true;
  }
  return false;
}

}  // namespace detail

/// read(2) retried on EINTR (real or injected via site "net.read").
/// Returns bytes read (0 = EOF) or -1 with errno set (EAGAIN/EWOULDBLOCK
/// included — non-blocking callers handle those themselves).
inline long readSome(int fd, void* buf, std::size_t n) {
  for (;;) {
    if (detail::injectedEintr("net.read")) continue;
    const long r = ::read(fd, buf, n);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// write(2) retried on EINTR (real or injected via site "net.write").
/// Returns bytes written or -1 with errno set.
inline long writeSome(int fd, const void* buf, std::size_t n) {
  for (;;) {
    if (detail::injectedEintr("net.write")) continue;
    const long r = ::write(fd, buf, n);
    if (r >= 0 || errno != EINTR) return r;
  }
}

/// Writes all `n` bytes to a BLOCKING descriptor, absorbing short writes
/// and EINTR. False on error (errno set).
inline bool writeAll(int fd, const void* buf, std::size_t n) {
  const char* p = static_cast<const char*>(buf);
  while (n > 0) {
    const long w = writeSome(fd, p, n);
    if (w <= 0) return false;
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly `n` bytes from a BLOCKING descriptor unless EOF or an
/// error intervenes. Returns bytes read (< n means EOF), or -1 on error.
inline long readFull(int fd, void* buf, std::size_t n) {
  char* p = static_cast<char*>(buf);
  std::size_t got = 0;
  while (got < n) {
    const long r = readSome(fd, p + got, n - got);
    if (r < 0) return -1;
    if (r == 0) break;
    got += static_cast<std::size_t>(r);
  }
  return static_cast<long>(got);
}

}  // namespace prio::util
