#include "core/combine.h"

#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <set>

#include "theory/priority.h"
#include "util/btree_pq.h"
#include "util/check.h"

namespace prio::core {

namespace {

constexpr double kPerfectEps = 1e-12;

// Lazily computed, memoized priority(class a over class b) matrix.
class PairPriorityCache {
 public:
  explicit PairPriorityCache(
      const std::vector<std::vector<std::size_t>>& profiles)
      : profiles_(profiles),
        n_(profiles.size()),
        value_(n_ * n_, 0.0),
        ready_(n_ * n_, 0) {}

  double get(std::size_t a, std::size_t b) {
    const std::size_t idx = a * n_ + b;
    if (!ready_[idx]) {
      value_[idx] = theory::pairPriority(profiles_[a], profiles_[b]);
      ready_[idx] = 1;
    }
    return value_[idx];
  }

 private:
  const std::vector<std::vector<std::size_t>>& profiles_;
  std::size_t n_;
  std::vector<double> value_;
  std::vector<char> ready_;
};

// Shared driver state: superdag in-degrees and ready bookkeeping.
struct Driver {
  Driver(const Decomposition& d, CombineResult& result,
         const util::CancelToken* token)
      : decomposition(d), out(result), cancel(token) {
    const std::size_t k = d.components.size();
    indeg.resize(k);
    for (std::size_t i = 0; i < k; ++i) {
      indeg[i] = d.superdag.inDegree(static_cast<dag::NodeId>(i));
    }
  }

  // Pops component i; returns newly ready component indices.
  std::vector<std::size_t> pop(std::size_t i, double p) {
    if (cancel != nullptr) cancel->throwIfCancelled("combine");
    out.pop_order.push_back(i);
    if (p < 1.0 - kPerfectEps) out.all_pops_perfect = false;
    std::vector<std::size_t> unlocked;
    for (dag::NodeId child :
         decomposition.superdag.children(static_cast<dag::NodeId>(i))) {
      if (--indeg[child] == 0) unlocked.push_back(child);
    }
    return unlocked;
  }

  const Decomposition& decomposition;
  CombineResult& out;
  const util::CancelToken* cancel;
  std::vector<std::size_t> indeg;
};

void runNaive(Driver& driver, const std::vector<std::size_t>& cls,
              PairPriorityCache& cache) {
  std::set<std::size_t> ready;
  for (std::size_t i = 0; i < driver.indeg.size(); ++i) {
    if (driver.indeg[i] == 0) ready.insert(i);
  }
  while (!ready.empty()) {
    // Quadratic selection: p_i = min over other ready sources j of
    // priority(C_i over C_j); pick max p_i (ties: smallest class id,
    // then smallest component index).
    std::size_t best = 0;
    double best_p = -1.0;
    for (std::size_t i : ready) {
      double p = 1.0;
      for (std::size_t j : ready) {
        if (j == i) continue;
        p = std::min(p, cache.get(cls[i], cls[j]));
      }
      const bool better =
          p > best_p ||
          (p == best_p && (cls[i] < cls[best] ||
                           (cls[i] == cls[best] && i < best)));
      if (better) {
        best_p = p;
        best = i;
      }
    }
    ready.erase(best);
    for (std::size_t u : driver.pop(best, best_p)) ready.insert(u);
  }
}

void runBTree(Driver& driver, const std::vector<std::size_t>& cls,
              PairPriorityCache& cache, std::size_t num_classes) {
  // Ready components grouped by profile class; the B-tree priority queue
  // holds one (key, -class) entry per present class, keyed by that class's
  // p value. popMax then yields the highest p, ties to the smallest class.
  std::vector<std::set<std::size_t>> members(num_classes);
  std::vector<std::size_t> count(num_classes, 0);
  std::vector<double> stored_key(num_classes,
                                 std::numeric_limits<double>::quiet_NaN());
  util::BTreePq<double, std::int64_t> pq;
  std::size_t total_ready = 0;
  bool dirty = true;

  auto addReady = [&](std::size_t i) {
    members[cls[i]].insert(i);
    ++count[cls[i]];
    ++total_ready;
    dirty = true;
  };
  for (std::size_t i = 0; i < driver.indeg.size(); ++i) {
    if (driver.indeg[i] == 0) addReady(i);
  }

  auto classKey = [&](std::size_t c) {
    double p = 1.0;
    for (std::size_t d = 0; d < num_classes; ++d) {
      if (count[d] == 0) continue;
      if (d == c && count[c] < 2) continue;
      p = std::min(p, cache.get(c, d));
    }
    return p;
  };

  while (total_ready > 0) {
    if (dirty) {
      for (std::size_t c = 0; c < num_classes; ++c) {
        const bool present = count[c] > 0;
        const double key = present ? classKey(c) : 0.0;
        const bool stored = !std::isnan(stored_key[c]);
        if (stored && (!present || key != stored_key[c])) {
          PRIO_CHECK(pq.erase(stored_key[c], -static_cast<std::int64_t>(c)));
          stored_key[c] = std::numeric_limits<double>::quiet_NaN();
        }
        if (present && std::isnan(stored_key[c])) {
          pq.insert(key, -static_cast<std::int64_t>(c));
          stored_key[c] = key;
        }
      }
      dirty = false;
    }
    const auto [p, neg_class] = pq.max();
    const auto c = static_cast<std::size_t>(-neg_class);
    const std::size_t i = *members[c].begin();
    members[c].erase(members[c].begin());
    --count[c];
    --total_ready;
    dirty = true;  // presence/multiplicity changed
    if (count[c] == 0) {
      PRIO_CHECK(pq.erase(stored_key[c], neg_class));
      stored_key[c] = std::numeric_limits<double>::quiet_NaN();
    }
    for (std::size_t u : driver.pop(i, p)) addReady(u);
  }
}

}  // namespace

CombineResult combineGreedy(const Decomposition& decomposition,
                            const std::vector<ComponentSchedule>& schedules,
                            CombineStrategy strategy,
                            const util::CancelToken* cancel) {
  const std::size_t k = decomposition.components.size();
  PRIO_CHECK(schedules.size() == k);

  CombineResult out;
  out.pop_order.reserve(k);
  out.profile_class.resize(k);

  // Group identical eligibility profiles into classes; all pairwise
  // priorities are functions of the profile pair only.
  std::map<std::vector<std::size_t>, std::size_t> class_of;
  for (std::size_t i = 0; i < k; ++i) {
    auto [it, inserted] =
        class_of.try_emplace(schedules[i].profile, class_of.size());
    out.profile_class[i] = it->second;
    if (inserted) out.class_profiles.push_back(schedules[i].profile);
  }

  PairPriorityCache cache(out.class_profiles);
  Driver driver(decomposition, out, cancel);
  switch (strategy) {
    case CombineStrategy::kNaiveQuadratic:
      runNaive(driver, out.profile_class, cache);
      break;
    case CombineStrategy::kBTreeClasses:
      runBTree(driver, out.profile_class, cache, out.class_profiles.size());
      break;
  }
  PRIO_CHECK_MSG(out.pop_order.size() == k,
                 "combine did not pop every component");
  return out;
}

}  // namespace prio::core
