#include "core/prio.h"

#include <deque>
#include <optional>
#include <queue>

#include "theory/priority.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/timing.h"

namespace prio::core {

namespace {

// The theoretical algorithm's success conditions (§2.2 steps 4–5), which
// certify IC-optimality of the assembled schedule.
bool certifyICOptimal(const PrioResult& r) {
  for (const ComponentSchedule& cs : r.component_schedules) {
    if (!cs.recognition.ic_optimal) return false;
  }
  if (!r.combine.all_pops_perfect) return false;
  // Step 4: all component classes pairwise comparable under ⊵.
  if (!theory::linearlyPrioritizable(r.combine.class_profiles)) return false;
  // Step 5: the superdag respects ⊵ along its arcs.
  const dag::Digraph& sd = r.decomposition.superdag;
  for (dag::NodeId i = 0; i < sd.numNodes(); ++i) {
    for (dag::NodeId j : sd.children(i)) {
      if (!theory::hasPriorityOver(
              r.combine.class_profiles[r.combine.profile_class[i]],
              r.combine.class_profiles[r.combine.profile_class[j]])) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace

PrioResult prioritize(const PrioRequest& request) {
  PRIO_CHECK_MSG(request.dag != nullptr, "PrioRequest::dag is required");
  const dag::Digraph& g = *request.dag;
  const PrioOptions& options = request.options;

  util::Stopwatch total;
  obs::Span pipeline(options.trace, "prio.pipeline");
  const obs::TraceContext ctx = pipeline.context();

  // Deadline without a caller-managed token: arm one here. An explicit
  // token wins — it already carries whatever deadline the caller set.
  std::optional<util::CancelToken> deadline_token;
  const util::CancelToken* cancel = options.cancel;
  if (cancel == nullptr && options.deadline_s > 0.0) {
    deadline_token.emplace(options.deadline_s);
    cancel = &*deadline_token;
  }

  PrioResult out;

  // Step 1: shortcut removal — skipped when the caller supplied the
  // reduction (the service pays for it once during fingerprinting).
  util::Stopwatch phase;
  dag::Digraph reduced_storage;
  const dag::Digraph* reduced = request.reduced;
  if (reduced == nullptr) {
    obs::Span span(ctx, "prio.reduce");
    reduced_storage =
        transitiveReduction(g, options.reduction_method, span.context());
    reduced = &reduced_storage;
    out.timings.reduce_s = phase.elapsedSeconds();
  }
  out.shortcuts_removed = g.numEdges() - reduced->numEdges();

  // Step 2: decomposition. The fault sites inject scheduling delays in
  // front of each phase (chaos tests push work past its deadline with
  // them); they cost one relaxed load each when the injector is off.
  // The topological order is derived once here and reused for decompose's
  // acyclicity precondition (verified, not re-derived). Component graphs
  // are deferred (by default): building each induced Digraph is the
  // expensive part of a detach and is embarrassingly parallel, so it
  // runs inside step 3's workers instead.
  phase.reset();
  util::fault::checkpoint("core.decompose");
  {
    obs::Span span(ctx, "prio.decompose");
    const auto topo_order = dag::topologicalOrder(*reduced);
    PRIO_CHECK_MSG(topo_order.has_value(), "decompose requires a dag");
    DecomposeOptions dopt;
    dopt.bipartite_fast_path = options.bipartite_fast_path;
    dopt.cancel = cancel;
    dopt.topo_order = &*topo_order;
    dopt.defer_component_graphs = options.defer_component_graphs;
    out.decomposition = decompose(*reduced, dopt);
  }
  out.timings.decompose_s = phase.elapsedSeconds();

  // Step 3: per-component schedules (materializes the deferred graphs).
  phase.reset();
  util::fault::checkpoint("core.schedule");
  {
    obs::Span span(ctx, "prio.schedule");
    ScheduleRequest sreq;
    sreq.reduced = reduced;
    sreq.decomposition = &out.decomposition;
    sreq.options.greedy_bipartite_fallback = options.greedy_bipartite_fallback;
    sreq.options.cancel = cancel;
    sreq.options.num_threads = options.schedule_threads;
    sreq.options.pool = options.schedule_pool;
    sreq.options.trace = span.context();
    out.component_schedules = scheduleComponents(sreq);
  }
  out.timings.recurse_s = phase.elapsedSeconds();

  // Steps 4–6: greedy combine over the superdag.
  phase.reset();
  util::fault::checkpoint("core.combine");
  {
    obs::Span span(ctx, "prio.combine");
    out.combine = combineGreedy(out.decomposition, out.component_schedules,
                                options.combine_strategy, cancel);
  }
  out.timings.combine_s = phase.elapsedSeconds();

  // Assemble the global schedule: each popped component contributes its
  // non-sinks in its own order; all sinks of G run at the end.
  obs::Span assemble(ctx, "prio.assemble");
  out.schedule.reserve(g.numNodes());
  for (std::size_t ci : out.combine.pop_order) {
    const Component& comp = out.decomposition.components[ci];
    const auto& local_order = out.component_schedules[ci].recognition.schedule;
    for (std::size_t i = 0; i < comp.num_nonsinks; ++i) {
      out.schedule.push_back(comp.nodes[local_order[i]]);
    }
  }
  for (dag::NodeId sink : out.decomposition.global_sinks) {
    out.schedule.push_back(sink);
  }
  PRIO_CHECK_MSG(out.schedule.size() == g.numNodes(),
                 "assembled schedule misses jobs");
  if (options.verify_schedule) {
    PRIO_CHECK_MSG(dag::isTopologicalOrder(g, out.schedule),
                   "assembled schedule violates precedence");
  }

  // Fig. 3 priority semantics: first job gets the highest value.
  const std::size_t n = g.numNodes();
  out.priority.assign(n, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    out.priority[out.schedule[pos]] = n - pos;
  }

  out.certified_ic_optimal = certifyICOptimal(out);
  out.timings.total_s = total.elapsedSeconds();
  return out;
}

PrioResult prioritize(const dag::Digraph& g, const PrioOptions& options) {
  return prioritize(PrioRequest(g, options));
}

PrioResult prioritizeWithReduction(const dag::Digraph& g,
                                   const dag::Digraph& reduced,
                                   const PrioOptions& options) {
  PrioRequest request(g, options);
  request.reduced = &reduced;
  return prioritize(request);
}

std::vector<dag::NodeId> prioSchedule(const dag::Digraph& g,
                                      const PrioOptions& options) {
  return prioritize(PrioRequest(g, options)).schedule;
}

PrioResult fallbackPrioritize(const dag::Digraph& g,
                              const obs::TraceContext& trace) {
  util::Stopwatch total;
  obs::Span span(trace, "prio.fallback");
  const std::size_t n = g.numNodes();
  PrioResult out;

  // Kahn's algorithm with a max-heap keyed (outdegree desc, id asc) —
  // the same order the per-component fallback uses, applied globally.
  struct Key {
    std::size_t outdegree;
    dag::NodeId job;
    bool operator<(const Key& o) const {  // max-heap: "worse" is less
      if (outdegree != o.outdegree) return outdegree < o.outdegree;
      return job > o.job;
    }
  };
  std::priority_queue<Key> eligible;
  std::vector<std::size_t> pending(n);
  for (dag::NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) eligible.push({g.outDegree(u), u});
  }
  out.schedule.reserve(n);
  while (!eligible.empty()) {
    const dag::NodeId u = eligible.top().job;
    eligible.pop();
    out.schedule.push_back(u);
    for (dag::NodeId v : g.children(u)) {
      if (--pending[v] == 0) eligible.push({g.outDegree(v), v});
    }
  }
  PRIO_CHECK_MSG(out.schedule.size() == n,
                 "fallbackPrioritize requires a dag");

  out.priority.assign(n, 0);
  for (std::size_t pos = 0; pos < n; ++pos) {
    out.priority[out.schedule[pos]] = n - pos;
  }
  out.certified_ic_optimal = false;
  out.timings.total_s = total.elapsedSeconds();
  return out;
}

std::vector<dag::NodeId> fifoSchedule(const dag::Digraph& g) {
  const std::size_t n = g.numNodes();
  std::vector<std::size_t> pending(n);
  std::deque<dag::NodeId> queue;
  for (dag::NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) queue.push_back(u);
  }
  std::vector<dag::NodeId> order;
  order.reserve(n);
  while (!queue.empty()) {
    const dag::NodeId u = queue.front();
    queue.pop_front();
    order.push_back(u);
    for (dag::NodeId v : g.children(u)) {
      if (--pending[v] == 0) queue.push_back(v);
    }
  }
  PRIO_CHECK_MSG(order.size() == n, "fifoSchedule requires a dag");
  return order;
}

}  // namespace prio::core
