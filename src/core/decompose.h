// The Divide phase of the heuristic (§3.1 steps 1–2).
//
// Given the shortcut-free dag G', the decomposition repeatedly identifies
// a component C(s) — the smallest subgraph containing a source s that is
// closed under (a) children of member sources and (b) parents of members —
// that is containment-minimal, and detaches it by removing its non-sinks
// and those of its sinks that are sinks of G'. Sinks of a component that
// are not global sinks stay behind and become sources of later components
// (they are the composition interfaces recorded in the superdag).
//
// The engineering of §3.5 is reproduced: a bipartite fast path first looks
// for a maximal connected bipartite subdag whose sources are all current
// sources (containment-minimality is automatic there), falling back to the
// general fixpoint search only when no bipartite component exists. The
// fast path can be disabled for the ablation bench.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "dag/digraph.h"
#include "util/cancellation.h"

namespace prio::core {

/// Marker for nodes scheduled at the very end (sinks of G').
inline constexpr std::uint32_t kGlobalSinkOwner = 0xFFFFFFFFu;

/// One detached component.
struct Component {
  /// Global node ids of all members (non-sinks and sinks); the member's
  /// index in this vector is its local id in `graph`.
  std::vector<dag::NodeId> nodes;
  /// Induced subgraph on `nodes` (local ids). With
  /// DecomposeOptions::defer_component_graphs this is left empty by
  /// decompose() and materialized by the schedule phase (in parallel,
  /// via scheduleComponents(ScheduleRequest)); num_nonsinks and
  /// bipartite are always filled either way.
  dag::Digraph graph;
  /// Number of members with at least one child inside the component —
  /// exactly the jobs this component schedules.
  std::size_t num_nonsinks = 0;
  /// True when the component is a bipartite dag.
  bool bipartite = false;
};

/// The full decomposition of G'.
struct Decomposition {
  std::vector<Component> components;  ///< in detach order
  /// Superdag: node i = components[i]; arc i -> j when some job scheduled
  /// by component i has a child belonging to component j (§2.2 step 2's
  /// composition structure). Always acyclic.
  dag::Digraph superdag;
  /// Per global node: index of the component that schedules it, or
  /// kGlobalSinkOwner for sinks of G' (scheduled last).
  std::vector<std::uint32_t> owner;
  /// Sinks of G' in id order.
  std::vector<dag::NodeId> global_sinks;
  /// Diagnostics.
  std::size_t bipartite_components = 0;
  std::size_t general_searches = 0;  ///< times the slow fixpoint path ran
};

struct DecomposeOptions {
  /// §3.5 fast path: try maximal connected bipartite components first.
  bool bipartite_fast_path = true;
  /// Optional deadline/cancel token, polled once per detached component
  /// and per fast-path seed attempt; raises util::Cancelled when it
  /// fires. Null = never cancel.
  const util::CancelToken* cancel = nullptr;
  /// Optional precomputed topological order of the input graph. When set,
  /// decompose() verifies it instead of re-deriving an order for the
  /// acyclicity precondition — the pipeline computes the order once and
  /// reuses it across reduction, decomposition, and their checks.
  const std::vector<dag::NodeId>* topo_order = nullptr;
  /// Leave Component::graph empty; the schedule phase materializes the
  /// induced subgraphs (in parallel) via
  /// scheduleComponents(ScheduleRequest). Building those
  /// graphs (string-keyed node index + hashed edge set per component) is
  /// the most expensive part of a detach, and it is embarrassingly
  /// parallel — deferring it moves the cost into the parallel phase.
  /// Off by default so direct decompose() callers keep seeing graphs.
  bool defer_component_graphs = false;
};

/// Decomposes a shortcut-free dag. Precondition: g is acyclic.
[[nodiscard]] Decomposition decompose(const dag::Digraph& g,
                                      const DecomposeOptions& options = {});

}  // namespace prio::core
