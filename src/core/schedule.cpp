#include "core/schedule.h"

#include <algorithm>
#include <span>
#include <utility>

#include "dag/algorithms.h"
#include "theory/eligibility.h"
#include "util/check.h"
#include "util/parallel_for.h"

namespace prio::core {

ComponentSchedule scheduleComponent(const Component& component,
                                    const ScheduleOptions& options) {
  ComponentSchedule out;
  out.recognition = theory::recognizeBlock(component.graph);
  if (options.greedy_bipartite_fallback &&
      out.recognition.kind == theory::BlockKind::kBipartiteGeneric) {
    out.recognition.schedule =
        theory::greedyBipartiteSchedule(component.graph);
  }
  PRIO_CHECK(out.recognition.schedule.size() == component.nodes.size());
  // The schedule's first num_nonsinks entries must be exactly the
  // component's non-sinks (every recognizer and fallback guarantees
  // non-sinks-before-sinks); the profile is evaluated over that prefix.
  for (std::size_t i = 0; i < component.num_nonsinks; ++i) {
    PRIO_CHECK_MSG(
        component.graph.outDegree(out.recognition.schedule[i]) > 0,
        "component schedule must execute all non-sinks before sinks");
  }
  out.profile = theory::eligibilityProfile(
      component.graph,
      std::span<const dag::NodeId>(out.recognition.schedule)
          .first(component.num_nonsinks));
  return out;
}

std::vector<ComponentSchedule> scheduleComponents(
    const Decomposition& decomposition, const ScheduleOptions& options) {
  std::vector<ComponentSchedule> out;
  out.reserve(decomposition.components.size());
  for (const Component& c : decomposition.components) {
    if (options.cancel != nullptr) {
      options.cancel->throwIfCancelled("schedule");
    }
    out.push_back(scheduleComponent(c, options));
  }
  return out;
}

namespace {

// Materializes a deferred component graph and schedules the component.
// Shared by the serial and parallel drains of the overload below.
void materializeAndSchedule(const dag::Digraph& reduced, Component& comp,
                            ComponentSchedule& slot,
                            const ScheduleOptions& options) {
  if (options.cancel != nullptr) {
    options.cancel->throwIfCancelled("schedule");
  }
  if (comp.graph.numNodes() != comp.nodes.size()) {
    comp.graph = reduced.inducedSubgraph(comp.nodes);
  }
  slot = scheduleComponent(comp, options);
}

}  // namespace

std::vector<ComponentSchedule> scheduleComponents(
    const ScheduleRequest& request) {
  PRIO_CHECK_MSG(request.reduced != nullptr,
                 "ScheduleRequest::reduced is required");
  PRIO_CHECK_MSG(request.decomposition != nullptr,
                 "ScheduleRequest::decomposition is required");
  const dag::Digraph& reduced = *request.reduced;
  const ScheduleOptions& options = request.options;
  auto& comps = request.decomposition->components;
  std::vector<ComponentSchedule> out(comps.size());

  std::size_t total_nodes = 0;
  for (const Component& c : comps) total_nodes += c.nodes.size();

  // Below this size the work fits in one cache-warm pass and thread
  // startup/handoff dominates; stay serial (output is identical anyway).
  constexpr std::size_t kParallelMinNodes = 2048;
  const std::size_t threads = util::resolveNumThreads(options.num_threads);
  if (threads <= 1 || comps.size() < 2 || total_nodes < kParallelMinNodes) {
    obs::Span span(options.trace, "schedule.item");
    for (std::size_t i = 0; i < comps.size(); ++i) {
      materializeAndSchedule(reduced, comps[i], out[i], options);
    }
    return out;
  }

  // Chunk contiguous component ranges into work items of roughly equal
  // node count — components vary from a handful of nodes to SDSS-size
  // joins, so count-based chunks would load-balance badly. ~4 items per
  // thread keeps the tail short without inflating claim traffic.
  struct Item {
    std::size_t begin;
    std::size_t end;
  };
  std::vector<Item> items;
  const std::size_t target =
      std::max<std::size_t>(1, total_nodes / (threads * 4));
  std::size_t begin = 0;
  std::size_t acc = 0;
  for (std::size_t i = 0; i < comps.size(); ++i) {
    acc += comps[i].nodes.size();
    if (acc >= target) {
      items.push_back({begin, i + 1});
      begin = i + 1;
      acc = 0;
    }
  }
  if (begin < comps.size()) items.push_back({begin, comps.size()});

  util::parallelClaim(
      options.pool, threads, items.size(), [&](std::size_t item) {
        // One span per claimed item, recorded from the worker thread into
        // its own ring; the explicit parent in options.trace keeps the
        // nesting correct even though this thread never saw the parent
        // span object.
        obs::Span span(options.trace, "schedule.item");
        for (std::size_t i = items[item].begin; i < items[item].end; ++i) {
          materializeAndSchedule(reduced, comps[i], out[i], options);
        }
      });
  return out;
}

std::vector<ComponentSchedule> scheduleComponents(
    const dag::Digraph& reduced, Decomposition& decomposition,
    const ScheduleOptions& options) {
  ScheduleRequest request;
  request.reduced = &reduced;
  request.decomposition = &decomposition;
  request.options = options;
  return scheduleComponents(request);
}

}  // namespace prio::core
