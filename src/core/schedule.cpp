#include "core/schedule.h"

#include <span>

#include "dag/algorithms.h"
#include "theory/eligibility.h"
#include "util/check.h"

namespace prio::core {

ComponentSchedule scheduleComponent(const Component& component,
                                    const ScheduleOptions& options) {
  ComponentSchedule out;
  out.recognition = theory::recognizeBlock(component.graph);
  if (options.greedy_bipartite_fallback &&
      out.recognition.kind == theory::BlockKind::kBipartiteGeneric) {
    out.recognition.schedule =
        theory::greedyBipartiteSchedule(component.graph);
  }
  PRIO_CHECK(out.recognition.schedule.size() == component.nodes.size());
  // The schedule's first num_nonsinks entries must be exactly the
  // component's non-sinks (every recognizer and fallback guarantees
  // non-sinks-before-sinks); the profile is evaluated over that prefix.
  for (std::size_t i = 0; i < component.num_nonsinks; ++i) {
    PRIO_CHECK_MSG(
        component.graph.outDegree(out.recognition.schedule[i]) > 0,
        "component schedule must execute all non-sinks before sinks");
  }
  out.profile = theory::eligibilityProfile(
      component.graph,
      std::span<const dag::NodeId>(out.recognition.schedule)
          .first(component.num_nonsinks));
  return out;
}

std::vector<ComponentSchedule> scheduleComponents(
    const Decomposition& decomposition, const ScheduleOptions& options) {
  std::vector<ComponentSchedule> out;
  out.reserve(decomposition.components.size());
  for (const Component& c : decomposition.components) {
    if (options.cancel != nullptr) {
      options.cancel->throwIfCancelled("schedule");
    }
    out.push_back(scheduleComponent(c, options));
  }
  return out;
}

}  // namespace prio::core
