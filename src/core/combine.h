// The Combine phase (§3.1 step 6): greedily pop superdag sources, always
// choosing a source C_i maximizing p_i = min over the other current
// sources C_j of priority(C_i over C_j).
//
// Two interchangeable strategies are provided:
//   kNaiveQuadratic — recompute the min for every current source at every
//     step (the paper's first implementation);
//   kBTreeClasses   — group sources into eligibility-profile classes,
//     memoize pairwise priorities per class pair, and keep the class keys
//     in a B-tree priority queue (the paper's §3.5 engineering).
// Both use the same deterministic tie-breaking (highest p, then smallest
// profile class id, then smallest component index) and therefore produce
// identical pop orders — asserted in tests and compared for speed in
// bench_ablation_pq.
#pragma once

#include <cstddef>
#include <vector>

#include "core/decompose.h"
#include "core/schedule.h"
#include "util/cancellation.h"

namespace prio::core {

enum class CombineStrategy {
  kBTreeClasses,
  kNaiveQuadratic,
};

struct CombineResult {
  /// Component indices in execution order (a topological order of the
  /// superdag).
  std::vector<std::size_t> pop_order;
  /// True when every pop had p_i == 1, i.e. no greedy choice could lose
  /// eligible jobs relative to any other ordering of the ready sources.
  bool all_pops_perfect = true;
  /// Profile-class index assigned to each component (classes group
  /// components with identical eligibility profiles).
  std::vector<std::size_t> profile_class;
  /// One representative profile per class.
  std::vector<std::vector<std::size_t>> class_profiles;
};

/// `cancel` (optional) is polled once per popped component; raises
/// util::Cancelled when it fires.
[[nodiscard]] CombineResult combineGreedy(
    const Decomposition& decomposition,
    const std::vector<ComponentSchedule>& schedules,
    CombineStrategy strategy = CombineStrategy::kBTreeClasses,
    const util::CancelToken* cancel = nullptr);

}  // namespace prio::core
