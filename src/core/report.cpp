#include "core/report.h"

#include <sstream>

#include "dag/dot.h"
#include "util/check.h"

namespace prio::core {

std::map<std::string, std::size_t> componentCensus(const PrioResult& result) {
  std::map<std::string, std::size_t> census;
  for (const ComponentSchedule& cs : result.component_schedules) {
    ++census[cs.recognition.describe()];
  }
  return census;
}

std::string describeResult(const dag::Digraph& g, const PrioResult& result) {
  std::ostringstream os;
  os << "prio result: " << g.numNodes() << " jobs, " << g.numEdges()
     << " dependencies\n";
  os << "  shortcut arcs removed : " << result.shortcuts_removed << '\n';
  os << "  components            : "
     << result.decomposition.components.size() << " ("
     << result.decomposition.bipartite_components << " bipartite, "
     << result.decomposition.general_searches
     << " general searches)\n";
  os << "  component census      :";
  std::size_t shown = 0;
  for (const auto& [kind, count] : componentCensus(result)) {
    if (++shown > 12) {
      os << " ...";
      break;
    }
    os << ' ' << kind << "×" << count;
  }
  os << '\n';
  os << "  global sinks          : " << result.decomposition.global_sinks.size()
     << " (scheduled last)\n";
  os << "  certified IC-optimal  : "
     << (result.certified_ic_optimal ? "yes" : "no") << '\n';
  os << "  phase timings (s)     : reduce " << result.timings.reduce_s
     << ", decompose " << result.timings.decompose_s << ", recurse "
     << result.timings.recurse_s << ", combine " << result.timings.combine_s
     << ", total " << result.timings.total_s << '\n';
  return os.str();
}

std::string superdagDot(const PrioResult& result) {
  const dag::Digraph& sd = result.decomposition.superdag;
  // Pop position per component.
  std::vector<std::size_t> pop_pos(sd.numNodes(), 0);
  for (std::size_t i = 0; i < result.combine.pop_order.size(); ++i) {
    pop_pos[result.combine.pop_order[i]] = i + 1;
  }
  std::ostringstream os;
  os << "digraph superdag {\n  rankdir=BT;\n  node [shape=box];\n";
  for (dag::NodeId i = 0; i < sd.numNodes(); ++i) {
    const auto& comp = result.decomposition.components[i];
    const auto& rec = result.component_schedules[i].recognition;
    os << "  c" << i << " [label=\"" << rec.describe() << "\\n"
       << comp.nodes.size() << " jobs, pop #" << pop_pos[i] << "\"];\n";
  }
  for (dag::NodeId i = 0; i < sd.numNodes(); ++i) {
    for (dag::NodeId j : sd.children(i)) {
      os << "  c" << i << " -> c" << j << ";\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string prioritizedDot(const dag::Digraph& g, const PrioResult& result) {
  PRIO_CHECK(result.priority.size() == g.numNodes());
  dag::DotOptions options;
  options.graph_name = "prioritized";
  options.priorities = result.priority;
  return dag::toDot(g, options);
}

}  // namespace prio::core
