// The Recurse phase (§3.1 step 3): produce a schedule and an eligibility
// profile for every decomposition component — the explicit IC-optimal
// schedule when the component is a recognized Fig. 2 family, otherwise the
// precedence-respecting order-by-outdegree heuristic.
#pragma once

#include <cstddef>
#include <vector>

#include "core/decompose.h"
#include "theory/blocks.h"
#include "util/cancellation.h"

namespace prio::core {

struct ScheduleOptions {
  /// Extension (off by default, not in the paper): use the marginal-gain
  /// greedy schedule for unrecognized bipartite components instead of the
  /// outdegree order. Compared in bench_ablation_fallback.
  bool greedy_bipartite_fallback = false;
  /// Optional deadline/cancel token, polled once per component; raises
  /// util::Cancelled when it fires. Null = never cancel.
  const util::CancelToken* cancel = nullptr;
};

/// A scheduled component.
struct ComponentSchedule {
  /// Family classification plus the full local-id schedule (non-sinks
  /// first, then sinks).
  theory::BlockRecognition recognition;
  /// Eligibility profile E(x) of the component for x = 0..num_nonsinks
  /// (the quantity the priority relation consumes).
  std::vector<std::size_t> profile;
};

/// Schedules one component.
[[nodiscard]] ComponentSchedule scheduleComponent(
    const Component& component, const ScheduleOptions& options = {});

/// Schedules every component of a decomposition, in order.
[[nodiscard]] std::vector<ComponentSchedule> scheduleComponents(
    const Decomposition& decomposition, const ScheduleOptions& options = {});

}  // namespace prio::core
