// The Recurse phase (§3.1 step 3): produce a schedule and an eligibility
// profile for every decomposition component — the explicit IC-optimal
// schedule when the component is a recognized Fig. 2 family, otherwise the
// precedence-respecting order-by-outdegree heuristic.
#pragma once

#include <cstddef>
#include <vector>

#include "core/decompose.h"
#include "obs/trace.h"
#include "theory/blocks.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace prio::core {

struct ScheduleOptions {
  /// Extension (off by default, not in the paper): use the marginal-gain
  /// greedy schedule for unrecognized bipartite components instead of the
  /// outdegree order. Compared in bench_ablation_fallback.
  bool greedy_bipartite_fallback = false;
  /// Optional deadline/cancel token, polled once per component (in the
  /// parallel path: by whichever worker handles the component); raises
  /// util::Cancelled when it fires. Null = never cancel.
  const util::CancelToken* cancel = nullptr;
  /// Worker count for scheduleComponents(ScheduleRequest). 1 (default) =
  /// serial; 0 = one per hardware thread. Components are independent, so
  /// parallel output is bit-identical to serial — results land in
  /// component-index order regardless of execution order.
  std::size_t num_threads = 1;
  /// Optional borrowed pool for the parallel path. Work is offered with
  /// trySubmit() only (never blocks), so the service can safely lend its
  /// own request pool; a full pool just means fewer helpers (see
  /// util/parallel_for.h). Null with num_threads > 1 = a transient pool
  /// is spun up per call (the CLI path).
  util::ThreadPool* pool = nullptr;
  /// Tracing context of the enclosing schedule phase. Each parallel work
  /// item records a "schedule.item" span under it FROM ITS WORKER THREAD
  /// — the cross-thread nesting tests/test_obs.cpp pins. Disabled by
  /// default.
  obs::TraceContext trace;
};

/// The schedule phase of one pipeline run: materialize every deferred
/// component graph and schedule every component, in parallel when
/// options.num_threads allows.
struct ScheduleRequest {
  /// The graph the decomposition was computed from; any component whose
  /// graph was deferred (PrioOptions::defer_component_graphs) is
  /// materialized from it via inducedSubgraph — inside the workers, which
  /// is where the bulk of the per-component cost lives and why deferring
  /// pays. Required.
  const dag::Digraph* reduced = nullptr;
  /// Decomposition to schedule; deferred component graphs are filled in
  /// place. Required.
  Decomposition* decomposition = nullptr;
  ScheduleOptions options;
};

/// A scheduled component.
struct ComponentSchedule {
  /// Family classification plus the full local-id schedule (non-sinks
  /// first, then sinks).
  theory::BlockRecognition recognition;
  /// Eligibility profile E(x) of the component for x = 0..num_nonsinks
  /// (the quantity the priority relation consumes).
  std::vector<std::size_t> profile;
};

/// Schedules one component.
[[nodiscard]] ComponentSchedule scheduleComponent(
    const Component& component, const ScheduleOptions& options = {});

/// Schedules every component of a decomposition, in order. Serial;
/// requires every Component::graph to be materialized (i.e. decompose()
/// ran without defer_component_graphs).
[[nodiscard]] std::vector<ComponentSchedule> scheduleComponents(
    const Decomposition& decomposition, const ScheduleOptions& options = {});

/// As above, parallel over components with request.options.num_threads
/// workers. Components are grouped into contiguous work items by node
/// count and claimed off an atomic counter; each result is written to its
/// component's slot, so the returned vector (and the filled-in graphs)
/// are bit-identical to the serial path for every thread count.
/// util::Cancelled raised by a worker is rethrown on the calling thread
/// after in-flight items finish.
[[nodiscard]] std::vector<ComponentSchedule> scheduleComponents(
    const ScheduleRequest& request);

/// DEPRECATED shim (pre-ScheduleRequest API): builds a ScheduleRequest
/// and forwards. Scheduled for removal; see PRIO_API_VERSION.
[[deprecated("build a ScheduleRequest and call scheduleComponents(request)")]]
[[nodiscard]] std::vector<ComponentSchedule> scheduleComponents(
    const dag::Digraph& reduced, Decomposition& decomposition,
    const ScheduleOptions& options = {});

}  // namespace prio::core
