#include "core/decompose.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "dag/algorithms.h"
#include "util/check.h"

namespace prio::core {

namespace {

using dag::Digraph;
using dag::NodeId;

// Mutable remnant of G' during decomposition. A node is removed when it is
// scheduled by a component (it has a child inside the component) or when
// it is a sink of G' detached with its component. Children of a live node
// are always live (parents are removed no later than their children's
// other ancestors), so out-degrees never change; only live in-degrees do.
//
// The remnant records two event streams the caller drains after each
// detach: nodes that were removed, and nodes that newly became sources —
// both are the triggers for retrying parked fast-path seeds (see below).
class Remnant {
 public:
  explicit Remnant(const Digraph& g) : g_(g), alive_(g.numNodes(), 1) {
    live_in_.reserve(g.numNodes());
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      live_in_.push_back(g.inDegree(u));
      if (live_in_[u] == 0) sources_.insert(u);
    }
    alive_count_ = g.numNodes();
  }

  [[nodiscard]] bool alive(NodeId u) const { return alive_[u] != 0; }
  [[nodiscard]] bool isSource(NodeId u) const {
    return alive_[u] && live_in_[u] == 0;
  }
  [[nodiscard]] std::size_t aliveCount() const { return alive_count_; }
  [[nodiscard]] const std::set<NodeId>& sources() const { return sources_; }
  [[nodiscard]] std::size_t liveIn(NodeId u) const { return live_in_[u]; }

  void remove(NodeId u) {
    PRIO_CHECK(alive_[u]);
    alive_[u] = 0;
    sources_.erase(u);
    --alive_count_;
    removed_events_.push_back(u);
    for (NodeId v : g_.children(u)) {
      if (!alive_[v]) continue;
      if (--live_in_[v] == 0) {
        sources_.insert(v);
        new_source_events_.push_back(v);
      }
    }
  }

  std::vector<NodeId> takeRemovedEvents() {
    return std::exchange(removed_events_, {});
  }
  std::vector<NodeId> takeNewSourceEvents() {
    return std::exchange(new_source_events_, {});
  }

 private:
  const Digraph& g_;
  std::vector<char> alive_;
  std::vector<std::size_t> live_in_;
  std::set<NodeId> sources_;
  std::vector<NodeId> removed_events_;
  std::vector<NodeId> new_source_events_;
  std::size_t alive_count_ = 0;
};

// Outcome of one fast-path attempt: either the component's members, or
// the first live non-source parent that ruled the region out.
struct BipartiteAttempt {
  std::optional<std::vector<NodeId>> members;
  NodeId blocker = 0;
};

// §3.5 fast path: grow the maximal connected bipartite subdag seeded at
// source `s` whose source side consists only of remnant sources. Fails as
// soon as a candidate sink has a live non-source parent; that parent is
// reported as the blocker — the seed cannot succeed until the blocker is
// removed or becomes a source, so the caller parks the seed under it
// instead of retrying every round (this replaces a per-round rescan of
// all sources and is what keeps SDSS-scale decomposition fast).
BipartiteAttempt tryBipartiteComponent(const Digraph& g,
                                       const Remnant& remnant, NodeId s) {
  std::unordered_set<NodeId> source_side{s};
  std::unordered_set<NodeId> sink_side;
  std::vector<NodeId> queue{s};
  while (!queue.empty()) {
    const NodeId src = queue.back();
    queue.pop_back();
    for (NodeId c : g.children(src)) {
      if (sink_side.count(c) != 0) continue;
      bool blocked = false;
      NodeId blocker = 0;
      std::size_t blocker_live_in = 0;
      for (NodeId p : g.parents(c)) {
        if (!remnant.alive(p)) continue;
        if (remnant.liveIn(p) != 0) {
          // Among this sink's blocking parents, park under the one likely
          // to clear last (most live ancestors, then highest id) — this
          // keeps retries per seed near one even at SDSS's 3401-parent
          // coadd join, instead of re-parking once per cleared parent.
          if (!blocked || remnant.liveIn(p) > blocker_live_in ||
              (remnant.liveIn(p) == blocker_live_in && p > blocker)) {
            blocker = p;
            blocker_live_in = remnant.liveIn(p);
          }
          blocked = true;
          continue;
        }
        if (!blocked && source_side.insert(p).second) queue.push_back(p);
      }
      if (blocked) return BipartiteAttempt{std::nullopt, blocker};
      sink_side.insert(c);
    }
  }
  std::vector<NodeId> members(source_side.begin(), source_side.end());
  members.insert(members.end(), sink_side.begin(), sink_side.end());
  std::sort(members.begin(), members.end());
  return BipartiteAttempt{std::move(members), 0};
}

// The general C(s) of §3.1 step 2: the smallest subgraph containing s that
// contains every child of each member source and every parent of each
// member. Computed as a fixpoint with two worklists.
std::vector<NodeId> generalClosure(const Digraph& g, const Remnant& remnant,
                                   NodeId s) {
  std::unordered_set<NodeId> members{s};
  std::vector<NodeId> source_work{s};   // members that are remnant sources
  std::vector<NodeId> parent_work{s};   // members whose parents to add
  auto addMember = [&](NodeId u) {
    if (!members.insert(u).second) return;
    parent_work.push_back(u);
    if (remnant.liveIn(u) == 0) source_work.push_back(u);
  };
  while (!source_work.empty() || !parent_work.empty()) {
    if (!source_work.empty()) {
      const NodeId src = source_work.back();
      source_work.pop_back();
      for (NodeId c : g.children(src)) addMember(c);
      continue;
    }
    const NodeId t = parent_work.back();
    parent_work.pop_back();
    for (NodeId p : g.parents(t)) {
      if (remnant.alive(p)) addMember(p);
    }
  }
  std::vector<NodeId> out(members.begin(), members.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

Decomposition decompose(const dag::Digraph& g,
                        const DecomposeOptions& options) {
  PRIO_CHECK_MSG(dag::isAcyclic(g), "decompose requires a dag");

  Decomposition out;
  out.owner.assign(g.numNodes(), kGlobalSinkOwner);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (g.isSink(u)) out.global_sinks.push_back(u);
  }

  Remnant remnant(g);

  // Fast-path seed management: candidate seeds in discovery order, plus
  // seeds parked under the blocker that must change before a retry can
  // succeed.
  std::deque<NodeId> seed_queue;
  std::unordered_map<NodeId, std::vector<NodeId>> parked;
  for (NodeId s : remnant.sources()) seed_queue.push_back(s);
  (void)remnant.takeNewSourceEvents();  // initial sources already queued

  const auto drainEvents = [&] {
    for (NodeId s : remnant.takeNewSourceEvents()) {
      seed_queue.push_back(s);
      if (const auto it = parked.find(s); it != parked.end()) {
        for (NodeId waiting : it->second) seed_queue.push_back(waiting);
        parked.erase(it);
      }
    }
    for (NodeId r : remnant.takeRemovedEvents()) {
      if (const auto it = parked.find(r); it != parked.end()) {
        for (NodeId waiting : it->second) seed_queue.push_back(waiting);
        parked.erase(it);
      }
    }
  };

  while (remnant.aliveCount() > 0) {
    if (options.cancel != nullptr) {
      options.cancel->throwIfCancelled("decompose");
    }
    PRIO_CHECK_MSG(!remnant.sources().empty(),
                   "remnant has live nodes but no sources (cycle?)");

    std::vector<NodeId> members;
    if (options.bipartite_fast_path) {
      while (!seed_queue.empty()) {
        if (options.cancel != nullptr) {
          options.cancel->throwIfCancelled("decompose");
        }
        const NodeId s = seed_queue.front();
        seed_queue.pop_front();
        if (!remnant.alive(s)) continue;  // stale entry
        auto attempt = tryBipartiteComponent(g, remnant, s);
        if (attempt.members) {
          members = std::move(*attempt.members);
          break;
        }
        parked[attempt.blocker].push_back(s);
      }
    }
    if (members.empty()) {
      // No bipartite component: run the general search over every source
      // and keep a containment-minimal (smallest) closure.
      ++out.general_searches;
      for (NodeId s : remnant.sources()) {
        if (options.cancel != nullptr) {
          options.cancel->throwIfCancelled("decompose");
        }
        auto closure = generalClosure(g, remnant, s);
        if (members.empty() || closure.size() < members.size()) {
          members = std::move(closure);
        }
      }
      PRIO_CHECK(!members.empty());
    }

    // Build the component and detach it.
    Component comp;
    comp.nodes = members;
    comp.graph = g.inducedSubgraph(comp.nodes);
    comp.bipartite = dag::isBipartiteDag(comp.graph);
    if (comp.bipartite) ++out.bipartite_components;
    const auto comp_index = static_cast<std::uint32_t>(out.components.size());

    for (std::size_t local = 0; local < comp.nodes.size(); ++local) {
      const NodeId u = comp.nodes[local];
      if (comp.graph.outDegree(static_cast<NodeId>(local)) > 0) {
        // Non-sink of the component: scheduled here, removed from remnant.
        ++comp.num_nonsinks;
        out.owner[u] = comp_index;
        remnant.remove(u);
      } else if (g.isSink(u)) {
        // Sink of the component that is a sink of G': detached, scheduled
        // in the global tail (owner stays kGlobalSinkOwner).
        remnant.remove(u);
      }
      // Other component sinks stay live and become sources of later
      // components.
    }
    out.components.push_back(std::move(comp));
    drainEvents();
  }

  // Superdag: arc owner(u) -> owner(v) for every arc (u, v) of G' whose
  // endpoints are scheduled by different components.
  out.superdag.reserveNodes(out.components.size());
  for (std::size_t i = 0; i < out.components.size(); ++i) {
    out.superdag.addNode("C" + std::to_string(i));
  }
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (out.owner[u] == kGlobalSinkOwner) continue;
    for (NodeId v : g.children(u)) {
      if (out.owner[v] == kGlobalSinkOwner) continue;
      if (out.owner[u] != out.owner[v]) {
        out.superdag.addEdge(out.owner[u], out.owner[v]);
      }
    }
  }
  PRIO_CHECK_MSG(dag::isAcyclic(out.superdag), "superdag must be acyclic");
  return out;
}

}  // namespace prio::core
