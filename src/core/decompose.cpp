#include "core/decompose.h"

#include <algorithm>
#include <deque>
#include <optional>
#include <set>
#include <unordered_map>
#include <utility>

#include "dag/algorithms.h"
#include "dag/csr.h"
#include "util/check.h"

namespace prio::core {

namespace {

using dag::Csr;
using dag::Digraph;
using dag::NodeId;

// Mutable remnant of G' during decomposition. A node is removed when it is
// scheduled by a component (it has a child inside the component) or when
// it is a sink of G' detached with its component. Children of a live node
// are always live (parents are removed no later than their children's
// other ancestors), so out-degrees never change; only live in-degrees do.
//
// The remnant records two event streams the caller drains after each
// detach: nodes that were removed, and nodes that newly became sources —
// both are the triggers for retrying parked fast-path seeds (see below).
class Remnant {
 public:
  explicit Remnant(const Csr& csr)
      : csr_(csr), alive_(csr.numNodes(), 1) {
    live_in_.reserve(csr.numNodes());
    for (NodeId u = 0; u < csr.numNodes(); ++u) {
      live_in_.push_back(csr.inDegree(u));
      if (live_in_[u] == 0) sources_.insert(u);
    }
    alive_count_ = csr.numNodes();
  }

  [[nodiscard]] bool alive(NodeId u) const { return alive_[u] != 0; }
  [[nodiscard]] bool isSource(NodeId u) const {
    return alive_[u] && live_in_[u] == 0;
  }
  [[nodiscard]] std::size_t aliveCount() const { return alive_count_; }
  [[nodiscard]] const std::set<NodeId>& sources() const { return sources_; }
  [[nodiscard]] std::size_t liveIn(NodeId u) const { return live_in_[u]; }

  void remove(NodeId u) {
    PRIO_CHECK(alive_[u]);
    alive_[u] = 0;
    sources_.erase(u);
    --alive_count_;
    removed_events_.push_back(u);
    for (NodeId v : csr_.children(u)) {
      if (!alive_[v]) continue;
      if (--live_in_[v] == 0) {
        sources_.insert(v);
        new_source_events_.push_back(v);
      }
    }
  }

  std::vector<NodeId> takeRemovedEvents() {
    return std::exchange(removed_events_, {});
  }
  std::vector<NodeId> takeNewSourceEvents() {
    return std::exchange(new_source_events_, {});
  }

 private:
  const Csr& csr_;
  std::vector<char> alive_;
  std::vector<std::size_t> live_in_;
  std::set<NodeId> sources_;
  std::vector<NodeId> removed_events_;
  std::vector<NodeId> new_source_events_;
  std::size_t alive_count_ = 0;
};

// Reusable per-decompose working memory. The component searches used to
// allocate fresh unordered_sets and worklists for every attempt of every
// round, which dominated decompose profiles on wide dags (AIRSN width
// sweeps); epoch-stamped marker arrays and recycled vectors make a failed
// attempt cost zero allocations. A node is "in the set" when its stamp
// equals the current epoch; bumping the epoch clears every set in O(1).
struct Scratch {
  explicit Scratch(std::size_t n)
      : source_mark(n, 0), sink_mark(n, 0), member_mark(n, 0) {}

  void nextEpoch() {
    // The stamp arrays start at 0, so epoch 0 must never be used.
    ++epoch;
    PRIO_CHECK_MSG(epoch != 0, "decompose scratch epoch wrapped");
  }

  std::uint32_t epoch = 0;
  std::vector<std::uint32_t> source_mark;
  std::vector<std::uint32_t> sink_mark;
  std::vector<std::uint32_t> member_mark;
  std::vector<NodeId> queue;
  std::vector<NodeId> members;
  std::vector<NodeId> source_work;
  std::vector<NodeId> parent_work;
};

// §3.5 fast path: grow the maximal connected bipartite subdag seeded at
// source `s` whose source side consists only of remnant sources. Fails as
// soon as a candidate sink has a live non-source parent; that parent is
// reported as the blocker — the seed cannot succeed until the blocker is
// removed or becomes a source, so the caller parks the seed under it
// instead of retrying every round (this replaces a per-round rescan of
// all sources and is what keeps SDSS-scale decomposition fast).
//
// On success the grown member set is left in scratch.members, sorted.
// The insertion-order-sensitive state (LIFO queue, first-seen dedupe,
// blocker tie-breaks) matches the original unordered_set implementation
// exactly, so attempts are bit-identical to the pre-scratch code.
struct BipartiteAttempt {
  bool ok = false;
  NodeId blocker = 0;
};

BipartiteAttempt tryBipartiteComponent(const Csr& csr, const Remnant& remnant,
                                       NodeId s, Scratch& scratch) {
  scratch.nextEpoch();
  const std::uint32_t epoch = scratch.epoch;
  scratch.members.clear();
  scratch.queue.assign(1, s);
  scratch.source_mark[s] = epoch;
  scratch.members.push_back(s);
  while (!scratch.queue.empty()) {
    const NodeId src = scratch.queue.back();
    scratch.queue.pop_back();
    for (NodeId c : csr.children(src)) {
      if (scratch.sink_mark[c] == epoch) continue;
      bool blocked = false;
      NodeId blocker = 0;
      std::size_t blocker_live_in = 0;
      for (NodeId p : csr.parents(c)) {
        if (!remnant.alive(p)) continue;
        if (remnant.liveIn(p) != 0) {
          // Among this sink's blocking parents, park under the one likely
          // to clear last (most live ancestors, then highest id) — this
          // keeps retries per seed near one even at SDSS's 3401-parent
          // coadd join, instead of re-parking once per cleared parent.
          if (!blocked || remnant.liveIn(p) > blocker_live_in ||
              (remnant.liveIn(p) == blocker_live_in && p > blocker)) {
            blocker = p;
            blocker_live_in = remnant.liveIn(p);
          }
          blocked = true;
          continue;
        }
        if (!blocked && scratch.source_mark[p] != epoch) {
          scratch.source_mark[p] = epoch;
          scratch.members.push_back(p);
          scratch.queue.push_back(p);
        }
      }
      if (blocked) return BipartiteAttempt{false, blocker};
      scratch.sink_mark[c] = epoch;
      scratch.members.push_back(c);
    }
  }
  std::sort(scratch.members.begin(), scratch.members.end());
  return BipartiteAttempt{true, 0};
}

// The general C(s) of §3.1 step 2: the smallest subgraph containing s that
// contains every child of each member source and every parent of each
// member. Computed as a fixpoint with two worklists (recycled through
// scratch); the result is left in scratch.members, sorted.
void generalClosure(const Csr& csr, const Remnant& remnant, NodeId s,
                    Scratch& scratch) {
  scratch.nextEpoch();
  const std::uint32_t epoch = scratch.epoch;
  scratch.members.clear();
  scratch.source_work.clear();
  scratch.parent_work.clear();
  scratch.member_mark[s] = epoch;
  scratch.members.push_back(s);
  scratch.source_work.push_back(s);
  scratch.parent_work.push_back(s);
  auto addMember = [&](NodeId u) {
    if (scratch.member_mark[u] == epoch) return;
    scratch.member_mark[u] = epoch;
    scratch.members.push_back(u);
    scratch.parent_work.push_back(u);
    if (remnant.liveIn(u) == 0) scratch.source_work.push_back(u);
  };
  while (!scratch.source_work.empty() || !scratch.parent_work.empty()) {
    if (!scratch.source_work.empty()) {
      const NodeId src = scratch.source_work.back();
      scratch.source_work.pop_back();
      for (NodeId c : csr.children(src)) addMember(c);
      continue;
    }
    const NodeId t = scratch.parent_work.back();
    scratch.parent_work.pop_back();
    for (NodeId p : csr.parents(t)) {
      if (remnant.alive(p)) addMember(p);
    }
  }
  std::sort(scratch.members.begin(), scratch.members.end());
}

}  // namespace

Decomposition decompose(const dag::Digraph& g,
                        const DecomposeOptions& options) {
  if (options.topo_order != nullptr) {
    PRIO_CHECK_MSG(dag::isTopologicalOrder(g, *options.topo_order),
                   "decompose: topo_order is not a topological order of g");
  } else {
    PRIO_CHECK_MSG(dag::isAcyclic(g), "decompose requires a dag");
  }
  const Csr& csr = g.csr();

  Decomposition out;
  out.owner.assign(g.numNodes(), kGlobalSinkOwner);
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (csr.outDegree(u) == 0) out.global_sinks.push_back(u);
  }

  Remnant remnant(csr);
  Scratch scratch(g.numNodes());

  // Fast-path seed management: candidate seeds in discovery order, plus
  // seeds parked under the blocker that must change before a retry can
  // succeed.
  std::deque<NodeId> seed_queue;
  std::unordered_map<NodeId, std::vector<NodeId>> parked;
  for (NodeId s : remnant.sources()) seed_queue.push_back(s);
  (void)remnant.takeNewSourceEvents();  // initial sources already queued

  const auto drainEvents = [&] {
    for (NodeId s : remnant.takeNewSourceEvents()) {
      seed_queue.push_back(s);
      if (const auto it = parked.find(s); it != parked.end()) {
        for (NodeId waiting : it->second) seed_queue.push_back(waiting);
        parked.erase(it);
      }
    }
    for (NodeId r : remnant.takeRemovedEvents()) {
      if (const auto it = parked.find(r); it != parked.end()) {
        for (NodeId waiting : it->second) seed_queue.push_back(waiting);
        parked.erase(it);
      }
    }
  };

  while (remnant.aliveCount() > 0) {
    if (options.cancel != nullptr) {
      options.cancel->throwIfCancelled("decompose");
    }
    PRIO_CHECK_MSG(!remnant.sources().empty(),
                   "remnant has live nodes but no sources (cycle?)");

    bool found = false;
    if (options.bipartite_fast_path) {
      while (!seed_queue.empty()) {
        if (options.cancel != nullptr) {
          options.cancel->throwIfCancelled("decompose");
        }
        const NodeId s = seed_queue.front();
        seed_queue.pop_front();
        if (!remnant.alive(s)) continue;  // stale entry
        const auto attempt = tryBipartiteComponent(csr, remnant, s, scratch);
        if (attempt.ok) {
          found = true;
          break;
        }
        parked[attempt.blocker].push_back(s);
      }
    }
    std::vector<NodeId> members;
    if (found) {
      members = scratch.members;  // copy: scratch is reused next round
    } else {
      // No bipartite component: run the general search over every source
      // and keep a containment-minimal (smallest) closure.
      ++out.general_searches;
      for (NodeId s : remnant.sources()) {
        if (options.cancel != nullptr) {
          options.cancel->throwIfCancelled("decompose");
        }
        generalClosure(csr, remnant, s, scratch);
        if (members.empty() || scratch.members.size() < members.size()) {
          members = scratch.members;
        }
      }
      PRIO_CHECK(!members.empty());
    }

    // Build the component and detach it. The non-sink and bipartite flags
    // are computed straight from the remnant graph and the member set —
    // a member is a component non-sink iff one of its children is also a
    // member, and the component is a bipartite dag iff no member has both
    // a parent and a child inside — so the induced Digraph itself is only
    // materialized here when the caller wants it now (the schedule phase
    // builds deferred graphs in parallel).
    Component comp;
    comp.nodes = std::move(members);
    scratch.nextEpoch();
    scratch.queue.clear();  // may hold leftovers of a failed seed attempt
    for (NodeId u : comp.nodes) scratch.member_mark[u] = scratch.epoch;
    bool bipartite = true;
    for (NodeId u : comp.nodes) {
      bool has_child_inside = false;
      for (NodeId v : csr.children(u)) {
        if (scratch.member_mark[v] == scratch.epoch) {
          has_child_inside = true;
          break;
        }
      }
      if (has_child_inside) {
        bool has_parent_inside = false;
        for (NodeId p : csr.parents(u)) {
          if (scratch.member_mark[p] == scratch.epoch) {
            has_parent_inside = true;
            break;
          }
        }
        if (has_parent_inside) bipartite = false;
      }
      // Reuse the queue buffer to remember which members are non-sinks
      // (1 per member, in comp.nodes order) for the detach pass below.
      scratch.queue.push_back(has_child_inside ? 1 : 0);
    }
    comp.bipartite = bipartite;
    if (comp.bipartite) ++out.bipartite_components;
    if (!options.defer_component_graphs) {
      comp.graph = g.inducedSubgraph(comp.nodes);
    }
    const auto comp_index = static_cast<std::uint32_t>(out.components.size());

    for (std::size_t local = 0; local < comp.nodes.size(); ++local) {
      const NodeId u = comp.nodes[local];
      if (scratch.queue[local] != 0) {
        // Non-sink of the component: scheduled here, removed from remnant.
        ++comp.num_nonsinks;
        out.owner[u] = comp_index;
        remnant.remove(u);
      } else if (csr.outDegree(u) == 0) {
        // Sink of the component that is a sink of G': detached, scheduled
        // in the global tail (owner stays kGlobalSinkOwner).
        remnant.remove(u);
      }
      // Other component sinks stay live and become sources of later
      // components.
    }
    scratch.queue.clear();
    out.components.push_back(std::move(comp));
    drainEvents();
  }

  // Superdag: arc owner(u) -> owner(v) for every arc (u, v) of G' whose
  // endpoints are scheduled by different components.
  out.superdag.reserveNodes(out.components.size());
  for (std::size_t i = 0; i < out.components.size(); ++i) {
    out.superdag.addNode("C" + std::to_string(i));
  }
  for (NodeId u = 0; u < g.numNodes(); ++u) {
    if (out.owner[u] == kGlobalSinkOwner) continue;
    for (NodeId v : csr.children(u)) {
      if (out.owner[v] == kGlobalSinkOwner) continue;
      if (out.owner[u] != out.owner[v]) {
        out.superdag.addEdge(out.owner[u], out.owner[v]);
      }
    }
  }
  PRIO_CHECK_MSG(dag::isAcyclic(out.superdag), "superdag must be acyclic");
  return out;
}

}  // namespace prio::core
