// Public entry point of the library: the prio scheduling heuristic.
//
// prioritize() runs the full pipeline of §3.1 on any dag:
//   1. remove shortcut arcs (transitive reduction),
//   2. decompose into components (bipartite fast path + general C(s)),
//   3. schedule each component (explicit IC-optimal family schedules or
//      the outdegree fallback),
//   4. combine greedily over the superdag by ⊵_r priorities,
//   5. emit the global PRIO schedule (all non-sinks in combine order, all
//      sinks of G last) and per-job priority values with Fig. 3 semantics
//      (priority n for the first job, 1 for the last).
//
// The result also carries a certificate: when every component has a known
// IC-optimal schedule, the components are linearly prioritizable under ⊵,
// and the superdag respects ⊵ along its arcs (§2.2 steps 4–5), the
// produced schedule is IC-optimal and certified_ic_optimal is set.
//
// API (since PRIO_API_VERSION 2, see src/prio.h): one request aggregate,
//
//   core::PrioRequest request(my_dag);
//   request.options.schedule_threads = 4;
//   request.options.trace = tracer.beginTrace();
//   core::PrioResult result = core::prioritize(request);
//
// replaces the accreted parameter-and-overload surface of earlier
// versions. The old entry points — prioritize(g, options),
// prioritizeWithReduction(g, reduced, options) — remain as thin
// deprecated shims with bit-identical output (tests/test_obs.cpp pins
// the equivalence) and will be removed in a future API version.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/combine.h"
#include "core/decompose.h"
#include "core/schedule.h"
#include "dag/algorithms.h"
#include "dag/digraph.h"
#include "obs/trace.h"
#include "util/cancellation.h"

namespace prio::core {

/// Every knob of the pipeline in one place. A default-constructed
/// PrioOptions reproduces the paper's heuristic exactly.
struct PrioOptions {
  /// Reachability backend for shortcut removal.
  dag::ReductionMethod reduction_method = dag::ReductionMethod::kBitset;
  /// §3.5 decomposition fast path.
  bool bipartite_fast_path = true;
  /// Combine-phase selection structure (§3.5 engineering vs naive).
  CombineStrategy combine_strategy = CombineStrategy::kBTreeClasses;
  /// Extension: marginal-gain greedy fallback for unrecognized bipartite
  /// components (off = paper's outdegree order).
  bool greedy_bipartite_fallback = false;
  /// Validate the final schedule against the input dag (cheap; on by
  /// default).
  bool verify_schedule = true;
  /// Optional deadline/cancel token threaded through the decompose,
  /// schedule, and combine phases (polled at phase boundaries and once
  /// per component inside each phase). When it fires, prioritize()
  /// raises util::Cancelled; the service layer catches that and falls
  /// back to fallbackPrioritize(). Null (the default) adds only a
  /// null-pointer test per check site, leaving results bit-identical.
  const util::CancelToken* cancel = nullptr;
  /// Compute deadline in seconds (0 = unbounded). When set and `cancel`
  /// is null, prioritize() arms an internal CancelToken with this
  /// deadline — same semantics as passing a token, without the caller
  /// managing its lifetime. Ignored when `cancel` is non-null (an
  /// explicit token carries its own deadline).
  double deadline_s = 0.0;
  /// Worker count for the per-component schedule phase (step 3), which
  /// also materializes the component subgraphs decompose defers to it.
  /// 1 (default) = serial, 0 = one per hardware thread. Results are
  /// bit-identical for every value — see ScheduleRequest.
  std::size_t schedule_threads = 1;
  /// Optional borrowed thread pool for the schedule phase; helpers are
  /// offered with trySubmit() (never blocks), so the service lends its
  /// request pool here. Null with schedule_threads > 1 = transient pool.
  util::ThreadPool* schedule_pool = nullptr;
  /// Leave Component::graph construction to the schedule phase's workers
  /// (the expensive part of a detach, embarrassingly parallel). On by
  /// default; turn off only to inspect decomposition graphs of a result
  /// without touching component_schedules.
  bool defer_component_graphs = true;
  /// Structured tracing context (disabled by default). When enabled,
  /// every phase and every parallel schedule work item records an
  /// obs::Span into the context's Tracer, correctly nested across
  /// worker threads. Disabled contexts cost one branch per span site.
  obs::TraceContext trace;
};

/// One prioritization request: the dag plus every option. The referenced
/// graphs must outlive the prioritize() call (the request is a view, not
/// an owner).
struct PrioRequest {
  /// The dag to prioritize. Required.
  const dag::Digraph* dag = nullptr;
  /// Optional precomputed transitive reduction of `dag`; when set, step 1
  /// is skipped (timings.reduce_s stays 0). The service computes the
  /// reduction once for its structural fingerprint and reuses it here.
  /// Precondition: *reduced == transitiveReduction(*dag); violating it
  /// yields a schedule for the wrong dag (caught by verify_schedule when
  /// the node sets differ).
  const dag::Digraph* reduced = nullptr;
  PrioOptions options;
  /// Attribution only: the tenant the request is billed to (0 = default).
  /// The heuristic ignores it; the service layer threads it through so a
  /// PrioRequest stays traceable to its tenant (DESIGN.md §12).
  std::uint32_t tenant = 0;

  PrioRequest() = default;
  explicit PrioRequest(const dag::Digraph& g) : dag(&g) {}
  PrioRequest(const dag::Digraph& g, PrioOptions opt)
      : dag(&g), options(std::move(opt)) {}
};

/// Wall-clock seconds spent in each phase.
struct PhaseTimings {
  double reduce_s = 0.0;
  double decompose_s = 0.0;
  double recurse_s = 0.0;
  double combine_s = 0.0;
  double total_s = 0.0;
};

struct PrioResult {
  /// The PRIO schedule: every job of the input dag in execution order.
  std::vector<dag::NodeId> schedule;
  /// Per job: priority value (numNodes() for the first scheduled job down
  /// to 1 for the last), as written into DAGMan files.
  std::vector<std::size_t> priority;
  /// The decomposition of the shortcut-free dag.
  Decomposition decomposition;
  /// Per-component schedules and eligibility profiles.
  std::vector<ComponentSchedule> component_schedules;
  /// Combine-phase outcome (pop order, profile classes, perfect-pop flag).
  CombineResult combine;
  /// True when the theoretical algorithm's success conditions held, which
  /// certifies the schedule IC-optimal.
  bool certified_ic_optimal = false;
  /// Arcs removed by step 1.
  std::size_t shortcuts_removed = 0;
  PhaseTimings timings;
};

/// Runs the prio heuristic. Throws util::Error when the dag has a
/// directed cycle, util::Cancelled when the request's cancel token or
/// deadline fires mid-pipeline.
///
/// Thread safety: re-entrant. All state is per-call; the request's graphs
/// are only read, so concurrent calls on the same or different dags are
/// safe (this is what the prioritization service in src/service/ relies
/// on, and what tests/test_service.cpp exercises under TSan).
[[nodiscard]] PrioResult prioritize(const PrioRequest& request);

/// DEPRECATED shim (pre-PrioRequest API): prioritize(PrioRequest(g,
/// options)) verbatim. Scheduled for removal; see PRIO_API_VERSION.
[[deprecated("build a PrioRequest and call prioritize(request)")]]
[[nodiscard]] PrioResult prioritize(const dag::Digraph& g,
                                    const PrioOptions& options = {});

/// DEPRECATED shim: a PrioRequest with `reduced` set. Scheduled for
/// removal; see PRIO_API_VERSION.
[[deprecated("set PrioRequest::reduced and call prioritize(request)")]]
[[nodiscard]] PrioResult prioritizeWithReduction(
    const dag::Digraph& g, const dag::Digraph& reduced,
    const PrioOptions& options = {});

/// Convenience: just the schedule.
[[nodiscard]] std::vector<dag::NodeId> prioSchedule(
    const dag::Digraph& g, const PrioOptions& options = {});

/// Graceful-degradation fallback: the paper's §3.1 component fallback
/// (precedence-respecting order by outdegree, ties by node id) applied
/// to the whole dag in one pass, skipping decomposition entirely.
/// O((n + m) log n), never IC-certified, but always a valid schedule
/// with Fig. 3 priority semantics — what the service returns with a
/// kDegraded reply when a compute deadline expires mid-heuristic. The
/// optional trace context records one "prio.fallback" span, so degraded
/// requests stay attributable to their trace id.
/// Throws util::Error when g has a directed cycle.
[[nodiscard]] PrioResult fallbackPrioritize(
    const dag::Digraph& g, const obs::TraceContext& trace = {});

/// The FIFO baseline order used throughout the paper's evaluation: jobs in
/// the order they become eligible, where simultaneously eligible jobs are
/// taken in id (input file) order. This is the static order DAGMan's FIFO
/// regimen induces when every job runs for the same duration.
[[nodiscard]] std::vector<dag::NodeId> fifoSchedule(const dag::Digraph& g);

}  // namespace prio::core
