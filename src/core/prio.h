// Public entry point of the library: the prio scheduling heuristic.
//
// prioritize() runs the full pipeline of §3.1 on any dag:
//   1. remove shortcut arcs (transitive reduction),
//   2. decompose into components (bipartite fast path + general C(s)),
//   3. schedule each component (explicit IC-optimal family schedules or
//      the outdegree fallback),
//   4. combine greedily over the superdag by ⊵_r priorities,
//   5. emit the global PRIO schedule (all non-sinks in combine order, all
//      sinks of G last) and per-job priority values with Fig. 3 semantics
//      (priority n for the first job, 1 for the last).
//
// The result also carries a certificate: when every component has a known
// IC-optimal schedule, the components are linearly prioritizable under ⊵,
// and the superdag respects ⊵ along its arcs (§2.2 steps 4–5), the
// produced schedule is IC-optimal and certified_ic_optimal is set.
#pragma once

#include <cstddef>
#include <vector>

#include "core/combine.h"
#include "core/decompose.h"
#include "core/schedule.h"
#include "dag/algorithms.h"
#include "dag/digraph.h"
#include "util/cancellation.h"

namespace prio::core {

struct PrioOptions {
  /// Reachability backend for shortcut removal.
  dag::ReductionMethod reduction_method = dag::ReductionMethod::kBitset;
  /// §3.5 decomposition fast path.
  bool bipartite_fast_path = true;
  /// Combine-phase selection structure (§3.5 engineering vs naive).
  CombineStrategy combine_strategy = CombineStrategy::kBTreeClasses;
  /// Extension: marginal-gain greedy fallback for unrecognized bipartite
  /// components (off = paper's outdegree order).
  bool greedy_bipartite_fallback = false;
  /// Validate the final schedule against the input dag (cheap; on by
  /// default).
  bool verify_schedule = true;
  /// Optional deadline/cancel token threaded through the decompose,
  /// schedule, and combine phases (polled at phase boundaries and once
  /// per component inside each phase). When it fires, prioritize()
  /// raises util::Cancelled; the service layer catches that and falls
  /// back to fallbackPrioritize(). Null (the default) adds only a
  /// null-pointer test per check site, leaving results bit-identical.
  const util::CancelToken* cancel = nullptr;
  /// Worker count for the per-component schedule phase (step 3), which
  /// also materializes the component subgraphs decompose defers to it.
  /// 1 (default) = serial, 0 = one per hardware thread. Results are
  /// bit-identical for every value — see scheduleComponents(reduced, ...).
  std::size_t num_threads = 1;
  /// Optional borrowed thread pool for the schedule phase; helpers are
  /// offered with trySubmit() (never blocks), so the service lends its
  /// request pool here. Null with num_threads > 1 = transient pool.
  util::ThreadPool* schedule_pool = nullptr;
};

/// Wall-clock seconds spent in each phase.
struct PhaseTimings {
  double reduce_s = 0.0;
  double decompose_s = 0.0;
  double recurse_s = 0.0;
  double combine_s = 0.0;
  double total_s = 0.0;
};

struct PrioResult {
  /// The PRIO schedule: every job of the input dag in execution order.
  std::vector<dag::NodeId> schedule;
  /// Per job: priority value (numNodes() for the first scheduled job down
  /// to 1 for the last), as written into DAGMan files.
  std::vector<std::size_t> priority;
  /// The decomposition of the shortcut-free dag.
  Decomposition decomposition;
  /// Per-component schedules and eligibility profiles.
  std::vector<ComponentSchedule> component_schedules;
  /// Combine-phase outcome (pop order, profile classes, perfect-pop flag).
  CombineResult combine;
  /// True when the theoretical algorithm's success conditions held, which
  /// certifies the schedule IC-optimal.
  bool certified_ic_optimal = false;
  /// Arcs removed by step 1.
  std::size_t shortcuts_removed = 0;
  PhaseTimings timings;
};

/// Runs the prio heuristic on any dag. Throws util::Error when g has a
/// directed cycle.
///
/// Thread safety: re-entrant. All state is per-call; `g` is only read, so
/// concurrent calls on the same or different dags are safe (this is what
/// the prioritization service in src/service/ relies on, and what
/// tests/test_service.cpp exercises under TSan).
[[nodiscard]] PrioResult prioritize(const dag::Digraph& g,
                                    const PrioOptions& options = {});

/// As prioritize(), but the caller supplies `reduced`, the transitive
/// reduction of `g`, and step 1 is skipped (timings.reduce_s stays 0).
/// The service layer computes the reduction once for its structural
/// fingerprint and reuses it here. Precondition: reduced ==
/// transitiveReduction(g); violating it yields a schedule for the wrong
/// dag (caught by verify_schedule when the node sets differ).
[[nodiscard]] PrioResult prioritizeWithReduction(
    const dag::Digraph& g, const dag::Digraph& reduced,
    const PrioOptions& options = {});

/// Convenience: just the schedule.
[[nodiscard]] std::vector<dag::NodeId> prioSchedule(
    const dag::Digraph& g, const PrioOptions& options = {});

/// Graceful-degradation fallback: the paper's §3.1 component fallback
/// (precedence-respecting order by outdegree, ties by node id) applied
/// to the whole dag in one pass, skipping decomposition entirely.
/// O((n + m) log n), never IC-certified, but always a valid schedule
/// with Fig. 3 priority semantics — what the service returns with a
/// kDegraded reply when a compute deadline expires mid-heuristic.
/// Throws util::Error when g has a directed cycle.
[[nodiscard]] PrioResult fallbackPrioritize(const dag::Digraph& g);

/// The FIFO baseline order used throughout the paper's evaluation: jobs in
/// the order they become eligible, where simultaneously eligible jobs are
/// taken in id (input file) order. This is the static order DAGMan's FIFO
/// regimen induces when every job runs for the same duration.
[[nodiscard]] std::vector<dag::NodeId> fifoSchedule(const dag::Digraph& g);

}  // namespace prio::core
