// Human-readable and graphical reporting for prioritize() results:
// decomposition census, per-phase timings, superdag and priority DOT
// renderings. Used by prio_tool --report and the figure benches.
#pragma once

#include <cstddef>
#include <map>
#include <string>

#include "core/prio.h"
#include "dag/digraph.h"

namespace prio::core {

/// Census of component families, e.g. {"W(1,1)": 20, "M(1,250)": 2, ...}.
[[nodiscard]] std::map<std::string, std::size_t> componentCensus(
    const PrioResult& result);

/// Multi-line human-readable report: sizes, census, timings, certificate.
[[nodiscard]] std::string describeResult(const dag::Digraph& g,
                                         const PrioResult& result);

/// DOT rendering of the superdag: one node per component, labeled with
/// its family, size and pop position.
[[nodiscard]] std::string superdagDot(const PrioResult& result);

/// DOT rendering of the input dag with each job's PRIO priority in its
/// label (the Fig. 5 style).
[[nodiscard]] std::string prioritizedDot(const dag::Digraph& g,
                                         const PrioResult& result);

}  // namespace prio::core
