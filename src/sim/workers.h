// Fixed worker-pool (list-scheduling) execution model — an extension
// answering the practical question the paper's grid model doesn't: does
// PRIO still help on a dedicated cluster of W persistent workers, where
// a worker grabs the best eligible job the moment it goes idle?
//
// This is classic list scheduling with stochastic job durations. Unlike
// the §4.1 batch model there are no lost requests, so utilization and
// stalling are replaced by idle time.
#pragma once

#include <cstddef>
#include <span>

#include "dag/digraph.h"
#include "sim/engine.h"
#include "stats/rng.h"

namespace prio::sim {

struct WorkerPoolMetrics {
  double makespan = 0.0;
  /// Sum over workers of time spent idle before the last completion.
  double total_idle_time = 0.0;
  /// total busy time / (workers * makespan).
  double pool_efficiency = 0.0;
};

/// Simulates list-scheduling on `workers` identical persistent workers.
/// Eligible jobs are taken in the order given by `regimen` (kOblivious
/// consults `order`; kFifo takes eligibility order; kRandom is uniform).
/// Job durations are normal(job_runtime_mean, job_runtime_stddev).
[[nodiscard]] WorkerPoolMetrics simulateWorkerPool(
    const dag::Digraph& g, Regimen regimen,
    std::span<const dag::NodeId> order, std::size_t workers,
    const GridModel& model, stats::Rng& rng);

}  // namespace prio::sim
