// Static priority orders to feed the oblivious regimen.
//
// The paper evaluates PRIO (the prio tool's order) against FIFO. As
// extensions we add two more static baselines commonly used by dag
// schedulers: critical-path (HEFT-style upward rank with unit costs) and
// a random topological order.
#pragma once

#include <vector>

#include "dag/digraph.h"
#include "stats/rng.h"

namespace prio::sim {

/// Critical-path order: jobs by decreasing upward rank (unit job costs),
/// ties by id. Always a topological order.
[[nodiscard]] std::vector<dag::NodeId> criticalPathSchedule(
    const dag::Digraph& g);

/// Uniformly random topological order (Kahn with random ready choice).
[[nodiscard]] std::vector<dag::NodeId> randomTopologicalOrder(
    const dag::Digraph& g, stats::Rng& rng);

}  // namespace prio::sim
