#include "sim/workers.h"

#include <algorithm>
#include <deque>
#include <queue>
#include <vector>

#include "stats/distributions.h"
#include "util/check.h"

namespace prio::sim {

namespace {
using dag::NodeId;
}  // namespace

WorkerPoolMetrics simulateWorkerPool(const dag::Digraph& g, Regimen regimen,
                                     std::span<const dag::NodeId> order,
                                     std::size_t workers,
                                     const GridModel& model,
                                     stats::Rng& rng) {
  PRIO_CHECK_MSG(workers >= 1, "need at least one worker");
  const std::size_t n = g.numNodes();
  WorkerPoolMetrics out;
  if (n == 0) return out;

  std::vector<std::size_t> position(n, 0);
  if (regimen == Regimen::kOblivious) {
    PRIO_CHECK_MSG(order.size() == n,
                   "oblivious regimen needs a full priority order");
    std::vector<char> seen(n, 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
      PRIO_CHECK_MSG(order[i] < n && !seen[order[i]],
                     "priority order must be a permutation");
      seen[order[i]] = 1;
      position[order[i]] = i;
    }
  }

  stats::JobRuntime runtime(model.job_runtime_mean,
                            model.job_runtime_stddev);

  // Eligible pool per regimen; FIFO keeps eligibility order.
  std::deque<NodeId> fifo;
  std::priority_queue<std::pair<std::size_t, NodeId>,
                      std::vector<std::pair<std::size_t, NodeId>>,
                      std::greater<>>
      by_priority;
  std::vector<NodeId> random_pool;
  std::size_t eligible_count = 0;

  const auto push = [&](NodeId u) {
    ++eligible_count;
    switch (regimen) {
      case Regimen::kFifo:
        fifo.push_back(u);
        break;
      case Regimen::kOblivious:
        by_priority.push({position[u], u});
        break;
      case Regimen::kRandom:
        random_pool.push_back(u);
        break;
    }
  };
  const auto pop = [&]() -> NodeId {
    PRIO_CHECK(eligible_count > 0);
    --eligible_count;
    switch (regimen) {
      case Regimen::kFifo: {
        const NodeId u = fifo.front();
        fifo.pop_front();
        return u;
      }
      case Regimen::kOblivious: {
        const NodeId u = by_priority.top().second;
        by_priority.pop();
        return u;
      }
      case Regimen::kRandom: {
        const std::size_t at = rng.below(random_pool.size());
        std::swap(random_pool[at], random_pool.back());
        const NodeId u = random_pool.back();
        random_pool.pop_back();
        return u;
      }
    }
    PRIO_CHECK(false);
    return 0;
  };

  std::vector<std::size_t> pending(n);
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) push(u);
  }

  // Event loop: completions ordered by time; idle workers grab work
  // immediately.
  using Completion = std::pair<double, NodeId>;
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running;
  std::size_t executed = 0;
  double now = 0.0;
  double busy_time = 0.0;

  const auto fill = [&] {
    while (running.size() < workers && eligible_count > 0) {
      const NodeId u = pop();
      const double d = runtime.sample(rng);
      busy_time += d;
      running.push({now + d, u});
    }
  };
  fill();
  while (executed < n) {
    PRIO_CHECK_MSG(!running.empty(), "worker pool starved (cycle?)");
    const auto [t, u] = running.top();
    running.pop();
    now = t;
    ++executed;
    out.makespan = std::max(out.makespan, t);
    for (NodeId v : g.children(u)) {
      if (--pending[v] == 0) push(v);
    }
    fill();
  }

  const double capacity = static_cast<double>(workers) * out.makespan;
  out.total_idle_time = capacity - busy_time;
  out.pool_efficiency = capacity > 0.0 ? busy_time / capacity : 0.0;
  return out;
}

}  // namespace prio::sim
