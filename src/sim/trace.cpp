#include "sim/trace.h"

#include "util/check.h"

namespace prio::sim {

namespace {
const char* kindName(TraceEvent::Kind kind) {
  switch (kind) {
    case TraceEvent::Kind::kBatchArrival: return "batch";
    case TraceEvent::Kind::kDispatch: return "dispatch";
    case TraceEvent::Kind::kCompletion: return "completion";
  }
  return "unknown";
}
}  // namespace

void writeTraceCsv(std::ostream& out, const dag::Digraph& g,
                   const RunTrace& trace) {
  out << "kind,time,job,payload,eligible\n";
  for (const TraceEvent& e : trace.events) {
    out << kindName(e.kind) << ',' << e.time << ',';
    if (e.kind == TraceEvent::Kind::kBatchArrival) {
      out << ',' << e.payload;
    } else {
      PRIO_CHECK(e.job < g.numNodes());
      out << g.name(e.job) << ',';
    }
    out << ',' << e.eligible << '\n';
  }
}

}  // namespace prio::sim
