// Event tracing for single simulation runs: every batch arrival, job
// dispatch and job completion with timestamps — the observability layer
// a production scheduler study needs (timelines, gantt exports,
// post-hoc analysis of stalls). Zero overhead when not tracing: the
// engine is instantiated with a no-op observer for plain runs.
#pragma once

#include <cstdint>
#include <ostream>
#include <span>
#include <vector>

#include "sim/engine.h"

namespace prio::sim {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kBatchArrival,  ///< payload = batch size, job unused
    kDispatch,      ///< job dispatched to a worker
    kCompletion,    ///< job finished
  };
  Kind kind;
  double time = 0.0;
  dag::NodeId job = 0;
  std::uint64_t payload = 0;   ///< batch size for kBatchArrival
  std::uint64_t eligible = 0;  ///< eligible, unassigned jobs after the event
};

struct RunTrace {
  std::vector<TraceEvent> events;
  RunMetrics metrics;
};

/// Simulates one run recording every event.
[[nodiscard]] RunTrace traceRun(const dag::Digraph& g, Regimen regimen,
                                std::span<const dag::NodeId> order,
                                const GridModel& model, stats::Rng& rng);

/// Writes the trace as CSV: kind,time,job,payload,eligible.
void writeTraceCsv(std::ostream& out, const dag::Digraph& g,
                   const RunTrace& trace);

}  // namespace prio::sim
