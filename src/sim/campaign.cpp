#include "sim/campaign.h"

#include "stats/summary.h"
#include "util/check.h"

namespace prio::sim {

MetricSamples runCampaign(const dag::Digraph& g, Regimen regimen,
                          std::span<const dag::NodeId> order,
                          const GridModel& model,
                          const CampaignConfig& config) {
  PRIO_CHECK_MSG(config.p > 0 && config.q > 0, "p and q must be positive");
  MetricSamples out;
  stats::Rng master(config.seed);
  for (std::size_t i = 0; i < config.p; ++i) {
    double time_sum = 0.0, stall_sum = 0.0, util_sum = 0.0;
    for (std::size_t j = 0; j < config.q; ++j) {
      stats::Rng rng = master.fork();
      const RunMetrics m = simulateRun(g, regimen, order, model, rng);
      time_sum += m.makespan;
      stall_sum += m.stall_probability;
      util_sum += m.utilization;
    }
    const auto q = static_cast<double>(config.q);
    out.time.addSample(time_sum / q);
    out.stall.addSample(stall_sum / q);
    out.util.addSample(util_sum / q);
  }
  return out;
}

SchedulerComparison compareSchedulers(const dag::Digraph& g,
                                      Regimen regimen_a,
                                      std::span<const dag::NodeId> order_a,
                                      Regimen regimen_b,
                                      std::span<const dag::NodeId> order_b,
                                      const GridModel& model,
                                      const CampaignConfig& config) {
  // Independent streams per regimen, deterministic in config.seed.
  CampaignConfig config_a = config;
  CampaignConfig config_b = config;
  config_b.seed = config.seed ^ 0x5bd1e995u;
  const MetricSamples a = runCampaign(g, regimen_a, order_a, model, config_a);
  const MetricSamples b = runCampaign(g, regimen_b, order_b, model, config_b);

  SchedulerComparison out;
  out.time_ratio = stats::ratioSummary(a.time, b.time);
  out.stall_ratio = stats::ratioSummary(a.stall, b.stall);
  out.util_ratio = stats::ratioSummary(a.util, b.util);
  out.a_mean_time = stats::mean(a.time.samples());
  out.b_mean_time = stats::mean(b.time.samples());
  out.a_mean_stall = stats::mean(a.stall.samples());
  out.b_mean_stall = stats::mean(b.stall.samples());
  out.a_mean_util = stats::mean(a.util.samples());
  out.b_mean_util = stats::mean(b.util.samples());
  return out;
}

SchedulerComparison comparePrioVsFifo(const dag::Digraph& g,
                                      std::span<const dag::NodeId> prio_order,
                                      const GridModel& model,
                                      const CampaignConfig& config) {
  return compareSchedulers(g, Regimen::kOblivious, prio_order, Regimen::kFifo,
                           {}, model, config);
}

}  // namespace prio::sim
