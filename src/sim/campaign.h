// The §4.2 measurement campaign driver: builds empirical sampling
// distributions (p samples, each the mean of q simulated runs) of the
// three metrics for two scheduling regimens and reports the paper's
// ratio confidence intervals per metric.
#pragma once

#include <cstdint>
#include <span>

#include "dag/digraph.h"
#include "sim/engine.h"
#include "stats/sampling.h"

namespace prio::sim {

struct CampaignConfig {
  /// Number of sampling-distribution samples (the paper uses ~300).
  std::size_t p = 30;
  /// Measurements averaged into one sample (the paper uses 300).
  std::size_t q = 5;
  std::uint64_t seed = 42;
};

/// Sampling distributions of the three metrics for one regimen.
struct MetricSamples {
  stats::SamplingDistribution time;
  stats::SamplingDistribution stall;
  stats::SamplingDistribution util;
};

/// Runs p*q independent simulations of `g` under the given regimen.
[[nodiscard]] MetricSamples runCampaign(const dag::Digraph& g,
                                        Regimen regimen,
                                        std::span<const dag::NodeId> order,
                                        const GridModel& model,
                                        const CampaignConfig& config);

/// Ratio summaries A/B for the three metrics (Figs. 6-9 plot PRIO/FIFO).
struct SchedulerComparison {
  stats::RatioSummary time_ratio;
  stats::RatioSummary stall_ratio;
  stats::RatioSummary util_ratio;
  double a_mean_time = 0.0, b_mean_time = 0.0;
  double a_mean_stall = 0.0, b_mean_stall = 0.0;
  double a_mean_util = 0.0, b_mean_util = 0.0;
};

[[nodiscard]] SchedulerComparison compareSchedulers(
    const dag::Digraph& g, Regimen regimen_a,
    std::span<const dag::NodeId> order_a, Regimen regimen_b,
    std::span<const dag::NodeId> order_b, const GridModel& model,
    const CampaignConfig& config);

/// The paper's headline comparison: PRIO (oblivious with the given order)
/// over FIFO.
[[nodiscard]] SchedulerComparison comparePrioVsFifo(
    const dag::Digraph& g, std::span<const dag::NodeId> prio_order,
    const GridModel& model, const CampaignConfig& config);

}  // namespace prio::sim
