// Model extensions beyond the paper's §4.1 system model.
//
// The paper deliberately idealizes: equal job times, no worker failures,
// unfilled requests vanish, and (§3.2) it notes that prio's integration
// only works when DAGMan forwards *all* eligible jobs to the Condor
// queue — throttling with -maxjobs breaks priority enforcement. §4 and
// §5 call the relaxations "beyond the scope of this paper"; this module
// implements them so the claims can be probed:
//
//   - throttle_window: only the `window` longest-waiting eligible jobs
//     are visible to the matchmaker (DAGMan's -maxjobs N); priorities
//     reorder jobs only within that window. window = 0 disables the
//     throttle (the paper's recommended configuration).
//   - failure_probability: a dispatched job fails with this probability;
//     failed jobs return to the eligible pool (Condor re-queues them).
//   - eviction_probability: the worker running a dispatched job is
//     evicted (preempted by its owner) at a uniform point of the job's
//     runtime; the partial work is lost and the job re-enters the
//     eligible pool at the eviction time. Evictions surface earlier than
//     failures (a failure runs the job to completion first) and are the
//     grid's dominant fault mode for opportunistic Condor pools.
//   - runtime_heterogeneity_cv: per-JOB lognormal runtime multipliers
//     with the given coefficient of variation (the paper assumes all
//     jobs take ~1 unit; this relaxes "a given dag could contain a very
//     fast job and a very slow job").
//   - worker_speed_cv: per-REQUEST lognormal speed multipliers (remote
//     workers "execute work at an unpredictable rate").
//   - rollover_requests: unfilled requests wait for work instead of
//     being "intercepted by other computations".
//
// With every extension at its default, simulateExtended() degenerates to
// the paper's model exactly (asserted in tests).
#pragma once

#include <cstdint>
#include <span>

#include "sim/engine.h"

namespace prio::sim {

struct ExtendedGridModel {
  GridModel base;
  /// DAGMan -maxjobs N: eligible jobs beyond the window (in FIFO
  /// eligibility order) are invisible to prioritization and dispatch.
  /// 0 = unthrottled.
  std::size_t throttle_window = 0;
  /// Probability that a dispatched job fails and re-enters the eligible
  /// pool at its completion time.
  double failure_probability = 0.0;
  /// Probability that the worker is evicted mid-job: the attempt ends at
  /// a uniform fraction of the job's runtime, the partial work is lost,
  /// and the job re-enters the eligible pool. 0 = no evictions.
  double eviction_probability = 0.0;
  /// Coefficient of variation of a per-job lognormal runtime multiplier
  /// (0 = the paper's homogeneous jobs).
  double runtime_heterogeneity_cv = 0.0;
  /// Coefficient of variation of a per-request lognormal worker speed
  /// divisor (0 = identical workers).
  double worker_speed_cv = 0.0;
  /// Unfilled requests persist and grab jobs as they become eligible.
  bool rollover_requests = false;
};

/// Extended metrics: the paper's three plus fault accounting.
struct ExtendedRunMetrics {
  RunMetrics base;
  std::uint64_t attempts = 0;  ///< dispatches, including failed/evicted ones
  std::uint64_t failures = 0;
  std::uint64_t evictions = 0;  ///< attempts cut short by worker eviction
  /// Worker time burned on attempts that produced nothing: the full
  /// duration of every failed attempt plus the elapsed fraction of every
  /// evicted one.
  double wasted_time = 0.0;
};

/// Simulates one run under the extended model. `regimen` and `order` as
/// in simulateRun; kOblivious consults `order` only within the throttle
/// window when one is set.
[[nodiscard]] ExtendedRunMetrics simulateExtended(
    const dag::Digraph& g, Regimen regimen,
    std::span<const dag::NodeId> order, const ExtendedGridModel& model,
    stats::Rng& rng);

}  // namespace prio::sim
