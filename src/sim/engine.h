// The stochastic grid model of §4.1 and its event-driven simulator.
//
// Workers arrive in batches: the first batch at time 0, interarrival
// times exponential with mean mu_BIT, batch sizes exponential with mean
// mu_BS (discretized, min 1). Each worker requests one job; requests that
// cannot be filled are NOT rolled over ("intercepted by other
// computations"). A job's running time is normal(1, 0.1). The server
// fills a batch of b requests with min(b, e) eligible unassigned jobs,
// chosen by the active scheduling regimen:
//   FIFO      — jobs leave a FIFO queue in the order they became eligible
//               (DAGMan's default behavior);
//   oblivious — jobs leave in the order of a static priority list (PRIO,
//               or any other precomputed schedule);
//   random    — uniformly random eligible job (extension baseline).
//
// Metrics (§4.1): makespan (execution time), probability of stalling
// (fraction of batches, among those up to and including the batch at
// which the last job was assigned, that arrived while unassigned work
// existed but nothing was eligible), and utilization (jobs divided by the
// total number of requests in those batches).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dag/digraph.h"
#include "stats/rng.h"

namespace prio::sim {

/// Stochastic system parameters.
struct GridModel {
  double mean_batch_interarrival = 1.0;  ///< mu_BIT
  double mean_batch_size = 16.0;         ///< mu_BS
  double job_runtime_mean = 1.0;
  double job_runtime_stddev = 0.1;
};

/// Result of one simulated execution of a dag.
struct RunMetrics {
  double makespan = 0.0;
  double stall_probability = 0.0;
  double utilization = 0.0;
  std::uint64_t batches_counted = 0;   ///< up to the last-assignment batch
  std::uint64_t batches_stalled = 0;
  std::uint64_t requests_counted = 0;
};

/// How eligible jobs are ordered when a batch is filled.
enum class Regimen {
  kFifo,       ///< order of becoming eligible (DAGMan default)
  kOblivious,  ///< static priority order (supply it via `order`)
  kRandom,     ///< uniformly random eligible job (extension)
};

/// Simulates one execution. `order` must be a permutation of the dag's
/// nodes for kOblivious (its positions are the priorities; earlier =
/// assigned first) and is ignored otherwise.
[[nodiscard]] RunMetrics simulateRun(const dag::Digraph& g, Regimen regimen,
                                     std::span<const dag::NodeId> order,
                                     const GridModel& model,
                                     stats::Rng& rng);

/// Convenience wrappers.
[[nodiscard]] RunMetrics simulateFifo(const dag::Digraph& g,
                                      const GridModel& model,
                                      stats::Rng& rng);
[[nodiscard]] RunMetrics simulateOblivious(const dag::Digraph& g,
                                           std::span<const dag::NodeId> order,
                                           const GridModel& model,
                                           stats::Rng& rng);

}  // namespace prio::sim
