#include "sim/engine.h"

#include "sim/trace.h"

#include <algorithm>
#include <deque>
#include <queue>

#include "stats/distributions.h"
#include "util/check.h"

namespace prio::sim {

namespace {

using dag::NodeId;

// --- Eligible-job containers, one per regimen ---

class FifoQueue {
 public:
  void push(NodeId u) { q_.push_back(u); }
  NodeId pop(stats::Rng&) {
    const NodeId u = q_.front();
    q_.pop_front();
    return u;
  }
  [[nodiscard]] std::size_t size() const { return q_.size(); }

 private:
  std::deque<NodeId> q_;
};

class StaticOrderQueue {
 public:
  explicit StaticOrderQueue(std::vector<std::size_t> position)
      : position_(std::move(position)) {}
  void push(NodeId u) { heap_.push({position_[u], u}); }
  NodeId pop(stats::Rng&) {
    const NodeId u = heap_.top().second;
    heap_.pop();
    return u;
  }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

 private:
  std::vector<std::size_t> position_;
  std::priority_queue<std::pair<std::size_t, NodeId>,
                      std::vector<std::pair<std::size_t, NodeId>>,
                      std::greater<>>
      heap_;
};

class RandomQueue {
 public:
  void push(NodeId u) { items_.push_back(u); }
  NodeId pop(stats::Rng& rng) {
    const std::size_t at = rng.below(items_.size());
    std::swap(items_[at], items_.back());
    const NodeId u = items_.back();
    items_.pop_back();
    return u;
  }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

 private:
  std::vector<NodeId> items_;
};

// Completion events ordered by time (min-heap).
using Completion = std::pair<double, NodeId>;

// No-op observer: plain runs compile the hooks away entirely.
struct NullObserver {
  void onBatch(double, std::uint64_t, std::size_t) {}
  void onDispatch(double, NodeId, std::size_t) {}
  void onCompletion(double, NodeId, std::size_t) {}
};

// Recording observer backing traceRun().
struct TraceObserver {
  std::vector<TraceEvent>* events;
  void onBatch(double t, std::uint64_t size, std::size_t eligible) {
    events->push_back({TraceEvent::Kind::kBatchArrival, t, 0, size,
                       static_cast<std::uint64_t>(eligible)});
  }
  void onDispatch(double t, NodeId job, std::size_t eligible) {
    events->push_back({TraceEvent::Kind::kDispatch, t, job, 0,
                       static_cast<std::uint64_t>(eligible)});
  }
  void onCompletion(double t, NodeId job, std::size_t eligible) {
    events->push_back({TraceEvent::Kind::kCompletion, t, job, 0,
                       static_cast<std::uint64_t>(eligible)});
  }
};

template <class Queue, class Observer>
RunMetrics run(const dag::Digraph& g, Queue& eligible, const GridModel& model,
               stats::Rng& rng, Observer obs) {
  const std::size_t n = g.numNodes();
  RunMetrics out;
  if (n == 0) return out;

  stats::Exponential interarrival(model.mean_batch_interarrival);
  stats::BatchSize batch_size(model.mean_batch_size);
  stats::JobRuntime runtime(model.job_runtime_mean, model.job_runtime_stddev);

  std::vector<std::size_t> pending(n);
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) eligible.push(u);  // id (input file) order
  }

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  double next_batch = 0.0;
  std::size_t assigned = 0, executed = 0;
  std::uint64_t batches = 0, stalled = 0, requests = 0;

  while (executed < n) {
    const bool batch_due =
        assigned < n &&
        (completions.empty() || next_batch < completions.top().first);
    if (batch_due) {
      const double t = next_batch;
      const std::uint64_t b = batch_size.sample(rng);
      ++batches;
      requests += b;
      // Stalling: unassigned work exists (assigned < n here) but nothing
      // is eligible for this batch.
      if (eligible.size() == 0) ++stalled;
      obs.onBatch(t, b, eligible.size());
      const std::uint64_t fill =
          std::min<std::uint64_t>(b, eligible.size());
      for (std::uint64_t i = 0; i < fill; ++i) {
        const NodeId u = eligible.pop(rng);
        completions.push({t + runtime.sample(rng), u});
        ++assigned;
        obs.onDispatch(t, u, eligible.size());
      }
      if (assigned == n) {
        // "...until the batch when the last job was assigned."
        out.batches_counted = batches;
        out.batches_stalled = stalled;
        out.requests_counted = requests;
      }
      next_batch = t + interarrival.sample(rng);
    } else {
      const auto [t, u] = completions.top();
      completions.pop();
      ++executed;
      out.makespan = std::max(out.makespan, t);
      for (NodeId v : g.children(u)) {
        if (--pending[v] == 0) eligible.push(v);
      }
      obs.onCompletion(t, u, eligible.size());
    }
  }

  PRIO_CHECK(out.batches_counted > 0);
  out.stall_probability = static_cast<double>(out.batches_stalled) /
                          static_cast<double>(out.batches_counted);
  out.utilization = static_cast<double>(n) /
                    static_cast<double>(out.requests_counted);
  return out;
}

template <class Observer>
RunMetrics dispatchRun(const dag::Digraph& g, Regimen regimen,
                       std::span<const dag::NodeId> order,
                       const GridModel& model, stats::Rng& rng,
                       Observer obs) {
  PRIO_CHECK_MSG(model.mean_batch_interarrival > 0.0 &&
                     model.mean_batch_size > 0.0,
                 "grid model parameters must be positive");
  switch (regimen) {
    case Regimen::kFifo: {
      FifoQueue q;
      return run(g, q, model, rng, obs);
    }
    case Regimen::kOblivious: {
      PRIO_CHECK_MSG(order.size() == g.numNodes(),
                     "oblivious regimen needs a full priority order");
      std::vector<std::size_t> position(g.numNodes(), 0);
      std::vector<char> seen(g.numNodes(), 0);
      for (std::size_t i = 0; i < order.size(); ++i) {
        PRIO_CHECK_MSG(order[i] < g.numNodes() && !seen[order[i]],
                       "priority order must be a permutation");
        seen[order[i]] = 1;
        position[order[i]] = i;
      }
      StaticOrderQueue q(std::move(position));
      return run(g, q, model, rng, obs);
    }
    case Regimen::kRandom: {
      RandomQueue q;
      return run(g, q, model, rng, obs);
    }
  }
  PRIO_CHECK(false);
  return {};
}

}  // namespace

RunMetrics simulateRun(const dag::Digraph& g, Regimen regimen,
                       std::span<const dag::NodeId> order,
                       const GridModel& model, stats::Rng& rng) {
  return dispatchRun(g, regimen, order, model, rng, NullObserver{});
}

RunTrace traceRun(const dag::Digraph& g, Regimen regimen,
                  std::span<const dag::NodeId> order, const GridModel& model,
                  stats::Rng& rng) {
  RunTrace trace;
  trace.metrics = dispatchRun(g, regimen, order, model, rng,
                              TraceObserver{&trace.events});
  return trace;
}

RunMetrics simulateFifo(const dag::Digraph& g, const GridModel& model,
                        stats::Rng& rng) {
  return simulateRun(g, Regimen::kFifo, {}, model, rng);
}

RunMetrics simulateOblivious(const dag::Digraph& g,
                             std::span<const dag::NodeId> order,
                             const GridModel& model, stats::Rng& rng) {
  return simulateRun(g, Regimen::kOblivious, order, model, rng);
}

}  // namespace prio::sim
