#include "sim/extensions.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>
#include <vector>

#include "stats/distributions.h"
#include "util/check.h"

namespace prio::sim {

namespace {

using dag::NodeId;

// Lognormal multiplier with mean 1 and the given coefficient of
// variation; cv = 0 degenerates to the constant 1.
class UnitLognormal {
 public:
  explicit UnitLognormal(double cv) {
    PRIO_CHECK_MSG(cv >= 0.0, "coefficient of variation must be >= 0");
    if (cv > 0.0) {
      const double sigma2 = std::log(1.0 + cv * cv);
      sigma_ = std::sqrt(sigma2);
      mu_ = -0.5 * sigma2;
    }
  }

  double sample(stats::Rng& rng, stats::Normal& standard) noexcept {
    if (sigma_ == 0.0) return 1.0;
    return std::exp(mu_ + sigma_ * standard.sample(rng));
  }

 private:
  double mu_ = 0.0;
  double sigma_ = 0.0;
};

// Eligible jobs in DAGMan-queue order (the order they became eligible).
// The throttle window exposes only the oldest `window` entries to the
// matchmaker; the regimen picks within the exposed prefix.
class EligibleDeque {
 public:
  explicit EligibleDeque(std::span<const std::size_t> position)
      : position_(position) {}

  void push(NodeId u) { items_.push_back(u); }
  [[nodiscard]] std::size_t size() const { return items_.size(); }

  NodeId pop(Regimen regimen, std::size_t window, stats::Rng& rng) {
    PRIO_CHECK(!items_.empty());
    const std::size_t visible =
        window == 0 ? items_.size() : std::min(window, items_.size());
    std::size_t at = 0;
    switch (regimen) {
      case Regimen::kFifo:
        at = 0;
        break;
      case Regimen::kRandom:
        at = rng.below(visible);
        break;
      case Regimen::kOblivious: {
        for (std::size_t i = 1; i < visible; ++i) {
          if (position_[items_[i]] < position_[items_[at]]) at = i;
        }
        break;
      }
    }
    const NodeId u = items_[at];
    items_.erase(items_.begin() + static_cast<long>(at));
    return u;
  }

 private:
  std::span<const std::size_t> position_;
  std::deque<NodeId> items_;
};

struct Completion {
  enum Kind { kSuccess, kFailure, kEviction };
  double time;
  NodeId job;
  Kind kind;
  /// Worker time this attempt wastes when it ends (0 for kSuccess; the
  /// full duration for kFailure; the elapsed fraction for kEviction).
  double wasted;
  bool operator>(const Completion& o) const { return time > o.time; }
};

}  // namespace

ExtendedRunMetrics simulateExtended(const dag::Digraph& g, Regimen regimen,
                                    std::span<const dag::NodeId> order,
                                    const ExtendedGridModel& model,
                                    stats::Rng& rng) {
  const std::size_t n = g.numNodes();
  PRIO_CHECK_MSG(model.base.mean_batch_interarrival > 0.0 &&
                     model.base.mean_batch_size > 0.0,
                 "grid model parameters must be positive");
  PRIO_CHECK_MSG(model.failure_probability >= 0.0 &&
                     model.failure_probability < 1.0,
                 "failure probability must be in [0, 1)");
  PRIO_CHECK_MSG(model.eviction_probability >= 0.0 &&
                     model.eviction_probability < 1.0,
                 "eviction probability must be in [0, 1)");

  ExtendedRunMetrics out;
  if (n == 0) return out;

  // Static priority positions (oblivious only).
  std::vector<std::size_t> position(n, 0);
  if (regimen == Regimen::kOblivious) {
    PRIO_CHECK_MSG(order.size() == n,
                   "oblivious regimen needs a full priority order");
    std::vector<char> seen(n, 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
      PRIO_CHECK_MSG(order[i] < n && !seen[order[i]],
                     "priority order must be a permutation");
      seen[order[i]] = 1;
      position[order[i]] = i;
    }
  }

  stats::Exponential interarrival(model.base.mean_batch_interarrival);
  stats::BatchSize batch_size(model.base.mean_batch_size);
  stats::JobRuntime runtime(model.base.job_runtime_mean,
                            model.base.job_runtime_stddev);
  stats::Normal standard(0.0, 1.0);
  UnitLognormal job_factor(model.runtime_heterogeneity_cv);
  UnitLognormal speed_factor(model.worker_speed_cv);

  // Per-job runtime multipliers, fixed for the whole run.
  std::vector<double> job_multiplier(n, 1.0);
  if (model.runtime_heterogeneity_cv > 0.0) {
    for (auto& m : job_multiplier) m = job_factor.sample(rng, standard);
  }

  std::vector<std::size_t> pending(n);
  EligibleDeque eligible(position);
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) eligible.push(u);
  }

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      completions;
  std::deque<double> waiting_speeds;  // rollover_requests only
  double next_batch = 0.0;
  std::size_t executed = 0;
  // Jobs that still need a (nother) successful dispatch.
  std::size_t pending_success = n;
  std::uint64_t batches = 0, stalled = 0, requests = 0;
  bool counters_captured = false;

  const auto dispatch = [&](double now, double speed) {
    const NodeId u = eligible.pop(regimen, model.throttle_window, rng);
    const bool fails = model.failure_probability > 0.0 &&
                       rng.uniform01() < model.failure_probability;
    // All extension draws are gated on their knob so that with a feature
    // off the RNG stream is bit-identical to a run without the feature.
    bool evicted = false;
    double eviction_point = 0.0;
    if (model.eviction_probability > 0.0 &&
        rng.uniform01() < model.eviction_probability) {
      evicted = true;
      eviction_point = rng.uniform01();
    }
    ++out.attempts;
    if (!fails && !evicted) {
      PRIO_CHECK(pending_success > 0);
      --pending_success;
    }
    const double duration =
        runtime.sample(rng) * job_multiplier[u] / speed;
    if (evicted) {
      // The owner reclaims the worker before the job finishes (or even
      // before it would have failed): the attempt ends early and its
      // partial work is lost.
      completions.push({now + eviction_point * duration, u,
                        Completion::kEviction, eviction_point * duration});
    } else if (fails) {
      completions.push({now + duration, u, Completion::kFailure, duration});
    } else {
      completions.push({now + duration, u, Completion::kSuccess, 0.0});
    }
  };

  const auto capture = [&] {
    out.base.batches_counted = batches;
    out.base.batches_stalled = stalled;
    out.base.requests_counted = requests;
    counters_captured = true;
  };

  while (executed < n) {
    const bool batch_due =
        pending_success > 0 &&
        (completions.empty() || next_batch < completions.top().time);
    if (batch_due) {
      const double t = next_batch;
      const std::uint64_t b = batch_size.sample(rng);
      ++batches;
      requests += b;
      if (eligible.size() == 0) ++stalled;
      std::uint64_t served = 0;
      for (; served < b && eligible.size() > 0; ++served) {
        dispatch(t, model.worker_speed_cv > 0.0
                        ? speed_factor.sample(rng, standard)
                        : 1.0);
      }
      if (model.rollover_requests) {
        for (std::uint64_t i = served; i < b; ++i) {
          waiting_speeds.push_back(model.worker_speed_cv > 0.0
                                       ? speed_factor.sample(rng, standard)
                                       : 1.0);
        }
      }
      if (pending_success == 0 && !counters_captured) capture();
      next_batch = t + interarrival.sample(rng);
    } else {
      const Completion c = completions.top();
      completions.pop();
      if (c.kind != Completion::kSuccess) {
        // The job bounces back into the eligible pool (re-queued at the
        // end, like a newly eligible job). Failed attempts waste their
        // whole duration; evicted attempts waste the part that ran.
        if (c.kind == Completion::kFailure) ++out.failures;
        else ++out.evictions;
        out.wasted_time += c.wasted;
        eligible.push(c.job);
      } else {
        ++executed;
        out.base.makespan = std::max(out.base.makespan, c.time);
        for (NodeId v : g.children(c.job)) {
          if (--pending[v] == 0) eligible.push(v);
        }
      }
      // Rolled-over workers grab work the moment it (re)appears.
      while (!waiting_speeds.empty() && eligible.size() > 0) {
        const double speed = waiting_speeds.front();
        waiting_speeds.pop_front();
        dispatch(c.time, speed);
      }
      if (pending_success == 0 && !counters_captured) capture();
    }
  }

  if (!counters_captured) capture();
  PRIO_CHECK(out.base.batches_counted > 0);
  out.base.stall_probability =
      static_cast<double>(out.base.batches_stalled) /
      static_cast<double>(out.base.batches_counted);
  out.base.utilization = static_cast<double>(n) /
                         static_cast<double>(out.base.requests_counted);
  return out;
}

}  // namespace prio::sim
