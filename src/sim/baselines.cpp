#include "sim/baselines.h"

#include <algorithm>
#include <queue>

#include "dag/algorithms.h"
#include "util/check.h"

namespace prio::sim {

using dag::NodeId;

std::vector<dag::NodeId> criticalPathSchedule(const dag::Digraph& g) {
  const auto rank = dag::upwardRank(g);
  std::vector<NodeId> order(g.numNodes());
  for (NodeId u = 0; u < g.numNodes(); ++u) order[u] = u;
  std::sort(order.begin(), order.end(), [&](NodeId x, NodeId y) {
    return rank[x] != rank[y] ? rank[x] > rank[y] : x < y;
  });
  // A parent's rank strictly exceeds every child's, so this is
  // topological; assert it anyway.
  PRIO_CHECK(dag::isTopologicalOrder(g, order));
  return order;
}

std::vector<dag::NodeId> randomTopologicalOrder(const dag::Digraph& g,
                                                stats::Rng& rng) {
  const std::size_t n = g.numNodes();
  std::vector<std::size_t> pending(n);
  std::vector<NodeId> ready;
  for (NodeId u = 0; u < n; ++u) {
    pending[u] = g.inDegree(u);
    if (pending[u] == 0) ready.push_back(u);
  }
  std::vector<NodeId> order;
  order.reserve(n);
  while (!ready.empty()) {
    const std::size_t at = rng.below(ready.size());
    std::swap(ready[at], ready.back());
    const NodeId u = ready.back();
    ready.pop_back();
    order.push_back(u);
    for (NodeId v : g.children(u)) {
      if (--pending[v] == 0) ready.push_back(v);
    }
  }
  PRIO_CHECK_MSG(order.size() == n, "randomTopologicalOrder requires a dag");
  return order;
}

}  // namespace prio::sim
