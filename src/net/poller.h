// Readiness backends for the reactor shards (net/server.cpp): epoll on
// Linux, poll(2) everywhere, behind one level-triggered interface. Each
// reactor shard owns exactly one Poller instance and is the only thread
// that ever touches it — the abstraction carries no locks.
//
// Level-triggered on purpose: a handler that leaves bytes unread or
// unwritten is simply called again on the next wait(), so partial
// progress never needs re-arming bookkeeping.
#pragma once

#include <memory>
#include <vector>

namespace prio::net {

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };
  virtual ~Poller() = default;
  virtual void add(int fd, bool read, bool write) = 0;
  virtual void update(int fd, bool read, bool write) = 0;
  virtual void remove(int fd) = 0;
  /// Fills `out` with ready fds; blocks up to timeout_ms (-1 = forever).
  virtual void wait(std::vector<Event>& out, int timeout_ms) = 0;
};

/// The selected backend: epoll when `use_epoll` and the platform has it,
/// the portable poll(2) implementation otherwise.
std::unique_ptr<Poller> makePoller(bool use_epoll);

}  // namespace prio::net
