#include "net/poller.h"

#include <poll.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <array>
#include <cerrno>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/socket.h"

namespace prio::net {

namespace {

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : ep_(::epoll_create1(EPOLL_CLOEXEC)) {
    PRIO_CHECK_MSG(ep_.valid(), "epoll_create1: " << std::strerror(errno));
  }

  void add(int fd, bool read, bool write) override {
    ctl(EPOLL_CTL_ADD, fd, read, write);
  }
  void update(int fd, bool read, bool write) override {
    ctl(EPOLL_CTL_MOD, fd, read, write);
  }
  void remove(int fd) override {
    struct epoll_event ev {};
    ::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(std::vector<Event>& out, int timeout_ms) override {
    std::array<struct epoll_event, 64> evs;
    int n;
    do {
      n = ::epoll_wait(ep_.get(), evs.data(), static_cast<int>(evs.size()),
                       timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t m = evs[static_cast<std::size_t>(i)].events;
      e.readable = (m & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (m & EPOLLOUT) != 0;
      e.error = (m & EPOLLERR) != 0;
      out.push_back(e);
    }
  }

 private:
  void ctl(int op, int fd, bool read, bool write) {
    struct epoll_event ev {};
    ev.data.fd = fd;
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    PRIO_CHECK_MSG(::epoll_ctl(ep_.get(), op, fd, &ev) == 0,
                   "epoll_ctl: " << std::strerror(errno));
  }

  util::UniqueFd ep_;
};
#endif  // __linux__

class PollPoller final : public Poller {
 public:
  void add(int fd, bool read, bool write) override {
    interest_[fd] = {read, write};
  }
  void update(int fd, bool read, bool write) override {
    interest_[fd] = {read, write};
  }
  void remove(int fd) override { interest_.erase(fd); }

  void wait(std::vector<Event>& out, int timeout_ms) override {
    fds_.clear();
    for (const auto& [fd, want] : interest_) {
      short ev = 0;
      if (want.first) ev |= POLLIN;
      if (want.second) ev |= POLLOUT;
      fds_.push_back({fd, ev, 0});
    }
    int n;
    do {
      n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    for (const struct pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
    }
  }

 private:
  std::unordered_map<int, std::pair<bool, bool>> interest_;
  std::vector<struct pollfd> fds_;
};

}  // namespace

std::unique_ptr<Poller> makePoller(bool use_epoll) {
#ifdef __linux__
  if (use_epoll) return std::make_unique<EpollPoller>();
#else
  (void)use_epoll;
#endif
  return std::make_unique<PollPoller>();
}

}  // namespace prio::net
