// The priod wire protocol: length-prefixed binary frames over TCP.
//
// Version 3 (current) frames are a fixed 36-byte little-endian header
// followed by an opaque payload (DESIGN.md §11/§12/§15 have the full
// tables):
//
//   offset  size  field
//        0     4  magic         0x4F495250 ("PRIO" as ASCII bytes)
//        4     1  version       3 (kVersion3)
//        5     1  type          FrameType (request / response / batch)
//        6     1  status        Status (responses; 0 on requests)
//        7     1  flags         bit 0 = kFlagDeadline; other bits
//                               reserved, must be 0
//        8     8  request_id    caller-chosen; echoed verbatim in the
//                               response so pipelined replies correlate
//       16     8  trace_id      request: client trace id to adopt (0 =
//                               none); response: the server-side trace id
//       24     4  tenant_id     tenant the request is billed to (0 =
//                               default); echoed in the response
//       28     1  payload_kind  PayloadKind: how to interpret the payload
//                               bytes (DAGMan text / binary CSR)
//       29     3  reserved      must be 0
//       32     4  payload_len   bytes of payload following the header
//
// When kFlagDeadline is set (v2/v3 requests only), a 4-byte
// little-endian deadline_ms field follows the header, BEFORE the
// payload: the whole-request budget in milliseconds, measured from the
// instant the client encoded the frame. The server decrements it by
// observed queue wait and sheds the request (Status::kExpired) once the
// budget is gone, so a deadline crosses the process boundary instead of
// dying at the socket. payload_len still counts only payload bytes.
//
// Version 2 frames are the same layout without the payload_kind word: a
// 32-byte header with payload_len at offset 28, always carrying DAGMan
// text. Version 1 (pre-tenant) frames additionally drop the tenant_id
// field: a 28-byte header with payload_len at offset 24. The decoder
// accepts all three — per frame — and the encoder emits whichever
// version Frame::version names, so the server can answer a v1 client
// with frames its old decoder parses. Only unknown versions are a
// protocol error.
//
// Single-request payloads carry one dag in the payload_kind encoding
// (kDagmanText: DAGMan input-file text; kBinaryCsr: the BDAG layout in
// dag/csr.h). Response payloads carry the instrumented DAGMan text or
// BPRI priority table (kOk / kDegraded) or an error message (everything
// else). kBatchRequest/kBatchResponse frames (v3 only) carry a batch
// envelope — many dags per round-trip with a per-item status in the
// reply; see encodeBatchRequest() below. Payloads above the decoder's
// cap are a protocol error — the peer replies Status::kProtocolError
// and closes, so a corrupt length prefix can never make the server
// buffer gigabytes. Batch frames get their own (larger) cap so a batch
// can exceed the single-dag limit deliberately.
//
// Encoding is explicit byte-at-a-time little-endian, so the wire format
// is identical across architectures and independent of struct layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace prio::net {

inline constexpr std::uint32_t kMagic = 0x4F495250u;  // "PRIO"
/// Default version for plain text requests: v2 added the tenant_id
/// header field. Kept as the single-request default so v2 golden bytes
/// (and every pre-v3 peer) stay stable.
inline constexpr std::uint8_t kVersion = 2;
/// The pre-tenant protocol, still fully supported for old clients.
inline constexpr std::uint8_t kVersionLegacy = 1;
/// v3 added payload_kind (typed payloads) and the batch frame types.
inline constexpr std::uint8_t kVersion3 = 3;
/// v2 header size; kHeaderSizeV1 / kHeaderSizeV3 are the other layouts.
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kHeaderSizeV1 = 28;
inline constexpr std::size_t kHeaderSizeV3 = 36;
/// Default payload cap (64 MiB) — larger than any plausible DAGMan file
/// (SDSS, the paper's biggest dag, serializes to ~4 MiB). Configurable
/// per server/client since v3; batch frames get a separate cap.
inline constexpr std::uint32_t kMaxPayload = 64u << 20;
/// Flag bit: a 4-byte deadline_ms field follows the v2/v3 header.
inline constexpr std::uint8_t kFlagDeadline = 0x01;
/// All flag bits the decoder understands; anything else is a protocol
/// error (reserved bits must be zero until a version assigns them).
inline constexpr std::uint8_t kKnownFlags = kFlagDeadline;

/// Header bytes of a frame of this version.
[[nodiscard]] constexpr std::size_t headerSizeOf(std::uint8_t version) {
  return version == kVersionLegacy ? kHeaderSizeV1
         : version == kVersion3    ? kHeaderSizeV3
                                   : kHeaderSize;
}

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
  /// v3 only: payload is a batch envelope of independent dag items.
  kBatchRequest = 3,
  /// v3 only: payload is a batch envelope of per-item replies.
  kBatchResponse = 4,
};

/// How the payload bytes of a frame (or batch item) are encoded.
/// Mirrors service::PayloadKind; rides the wire as the v3 payload_kind
/// header byte. v1/v2 frames are implicitly kDagmanText.
enum class PayloadKind : std::uint8_t {
  kDagmanText = 0,  ///< DAGMan input-file text (replies: instrumented text)
  kBinaryCsr = 1,   ///< BDAG binary dag (replies: BPRI priority table)
};

inline constexpr std::uint8_t kMaxPayloadKind =
    static_cast<std::uint8_t>(PayloadKind::kBinaryCsr);

/// Response disposition. Mirrors service::RequestStatus plus the
/// wire-only kProtocolError.
enum class Status : std::uint8_t {
  kOk = 0,
  kDegraded = 1,       ///< deadline hit; payload is the fallback schedule
  kRejected = 2,       ///< shed by admission gate, quota, or backpressure
  kShed = 3,           ///< queue-wait deadline exceeded
  kFailed = 4,         ///< parse/cycle error; payload is the message
  kProtocolError = 5,  ///< malformed frame; connection closes after this
  kExpired = 6,        ///< wire deadline spent before compute could start
};

[[nodiscard]] const char* statusName(Status s);

struct Frame {
  /// Wire version this frame was decoded from / will encode to. The
  /// server echoes the request's version in its response so a v1 client
  /// never sees a v2 frame (nor a v2 client a v3 one).
  std::uint8_t version = kVersion;
  FrameType type = FrameType::kRequest;
  Status status = Status::kOk;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  /// v2+ only on the wire; a v1 frame decodes to (and must encode from)
  /// tenant 0.
  std::uint32_t tenant = 0;
  /// Whole-request budget in milliseconds (0 = none). Rides the wire as
  /// the optional kFlagDeadline field; v2+ only, like tenant.
  std::uint32_t deadline_ms = 0;
  /// v3 only on the wire; v1/v2 frames decode to (and must encode from)
  /// kDagmanText. Meaningless on batch frames (each item carries its
  /// own kind inside the envelope).
  PayloadKind payload_kind = PayloadKind::kDagmanText;
  std::string payload;
};

/// Appends the encoded frame to `out`, in the layout Frame::version
/// names. The kFlagDeadline bit is derived from deadline_ms — callers
/// never set `flags` themselves. Throws util::Error when the payload
/// exceeds `max_payload`, when the version is unknown, when a nonzero
/// tenant or deadline is encoded into a v1 frame (which cannot carry
/// them), when a non-text payload_kind or a batch frame type is encoded
/// into a pre-v3 frame, or when reserved flag bits are set.
void encodeFrame(const Frame& frame, std::string& out,
                 std::uint32_t max_payload = kMaxPayload);

// ---------------------------------------------------------------------
// Batch envelope (v3, FrameType::kBatchRequest / kBatchResponse).
//
// Request payload:   u32 count, then per item:
//                      u8 kind (PayloadKind), u32 len, len bytes
// Response payload:  u32 count, then per item, in request order:
//                      u8 status (Status), u8 kind, u32 len, len bytes
//
// Items are independent dags; the reply carries one entry per item so a
// malformed or expired item degrades only itself, never the batch.
// ---------------------------------------------------------------------

struct BatchItem {
  PayloadKind kind = PayloadKind::kDagmanText;
  std::string bytes;
};

struct BatchItemReply {
  Status status = Status::kOk;
  PayloadKind kind = PayloadKind::kDagmanText;
  /// Instrumented text / BPRI table (kOk, kDegraded) or error message.
  std::string payload;

  /// True when `payload` is a usable schedule rather than an error.
  [[nodiscard]] bool usable() const {
    return status == Status::kOk || status == Status::kDegraded;
  }
};

/// Serializes `items` into a kBatchRequest payload.
[[nodiscard]] std::string encodeBatchRequest(
    const std::vector<BatchItem>& items);

/// Parses a kBatchRequest payload. Returns false (with `error` set) on
/// any structural violation — truncation, trailing bytes, unknown kind.
/// Never throws: batch envelopes arrive from the network.
[[nodiscard]] bool decodeBatchRequest(const std::string& payload,
                                      std::vector<BatchItem>& out,
                                      std::string& error);

/// Structure-only scan of a kBatchRequest payload: validates the
/// envelope (and that every item is within `max_item_payload`) without
/// copying item bytes. Sets `count` to the number of items. Used by the
/// server before admission, so a malformed envelope is rejected without
/// burning a queue slot.
[[nodiscard]] bool validateBatchRequest(const std::string& payload,
                                        std::uint32_t max_item_payload,
                                        std::size_t& count,
                                        std::string& error);

/// Serializes per-item replies into a kBatchResponse payload.
[[nodiscard]] std::string encodeBatchResponse(
    const std::vector<BatchItemReply>& items);

/// Parses a kBatchResponse payload; same contract as
/// decodeBatchRequest().
[[nodiscard]] bool decodeBatchResponse(const std::string& payload,
                                       std::vector<BatchItemReply>& out,
                                       std::string& error);

/// Incremental frame parser for a byte stream. Feed bytes as they
/// arrive; next() yields complete frames without copying the stream
/// twice. All three protocol versions are accepted, per frame. A
/// protocol violation (bad magic, unknown version/type/kind, nonzero
/// reserved bits, oversized payload) latches the decoder into the error
/// state — the connection is beyond recovery because frame boundaries
/// are lost.
///
/// Two caps apply: `max_payload` for single-request/response frames and
/// `max_batch_payload` for batch frames (0 = same as max_payload), so a
/// batch can deliberately exceed the single-dag limit. The frame type
/// is read before the length, so the right cap gates the right frames.
class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< one frame extracted into `out`
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< protocol violation; see error()
  };

  explicit FrameDecoder(std::uint32_t max_payload = kMaxPayload,
                        std::uint32_t max_batch_payload = 0)
      : max_payload_(max_payload),
        max_batch_payload_(max_batch_payload == 0 ? max_payload
                                                  : max_batch_payload) {}

  /// Appends raw bytes from the stream.
  void feed(const char* data, std::size_t n);

  /// Extracts the next complete frame. Call until kNeedMore to drain all
  /// frames that one feed() completed.
  [[nodiscard]] Result next(Frame& out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool failed() const { return failed_; }
  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::uint32_t max_payload_;
  std::uint32_t max_batch_payload_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted when large
  std::string error_;
  bool failed_ = false;
};

}  // namespace prio::net
