// The priod wire protocol: length-prefixed binary frames over TCP.
//
// Version 2 (current) frames are a fixed 32-byte little-endian header
// followed by an opaque payload (DESIGN.md §11/§12 have the full table):
//
//   offset  size  field
//        0     4  magic        0x4F495250 ("PRIO" as ASCII bytes)
//        4     1  version      2 (kVersion)
//        5     1  type         FrameType (request / response)
//        6     1  status       Status (responses; 0 on requests)
//        7     1  flags        bit 0 = kFlagDeadline; other bits reserved,
//                              must be 0
//        8     8  request_id   caller-chosen; echoed verbatim in the
//                              response so pipelined replies correlate
//       16     8  trace_id     request: client trace id to adopt (0 =
//                              none); response: the server-side trace id
//       24     4  tenant_id    tenant the request is billed to (0 =
//                              default); echoed in the response
//       28     4  payload_len  bytes of payload following the header
//
// When kFlagDeadline is set (v2 requests only), a 4-byte little-endian
// deadline_ms field follows the 32-byte header, BEFORE the payload: the
// whole-request budget in milliseconds, measured from the instant the
// client encoded the frame. The server decrements it by observed queue
// wait and sheds the request (Status::kExpired) once the budget is gone,
// so a deadline crosses the process boundary instead of dying at the
// socket. payload_len still counts only payload bytes.
//
// Version 1 (pre-tenant) frames are the same layout without the
// tenant_id field: a 28-byte header with payload_len at offset 24. The
// decoder accepts both — v1 frames carry tenant 0 — and the encoder
// emits whichever version Frame::version names, so the server can answer
// a v1 client with frames its old decoder parses. Only unknown versions
// are a protocol error.
//
// Request payloads carry DAGMan input-file text; response payloads carry
// the instrumented DAGMan text (kOk / kDegraded) or an error message
// (everything else). Payloads above kMaxPayload are a protocol error —
// the peer replies Status::kProtocolError and closes, so a corrupt
// length prefix can never make the server buffer gigabytes.
//
// Encoding is explicit byte-at-a-time little-endian, so the wire format
// is identical across architectures and independent of struct layout.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace prio::net {

inline constexpr std::uint32_t kMagic = 0x4F495250u;  // "PRIO"
/// Current protocol version: v2 added the tenant_id header field.
inline constexpr std::uint8_t kVersion = 2;
/// The pre-tenant protocol, still fully supported for old clients.
inline constexpr std::uint8_t kVersionLegacy = 1;
/// v2 header size; kHeaderSizeV1 is the v1 (28-byte) layout.
inline constexpr std::size_t kHeaderSize = 32;
inline constexpr std::size_t kHeaderSizeV1 = 28;
/// Hard payload cap (64 MiB) — larger than any plausible DAGMan file
/// (SDSS, the paper's biggest dag, serializes to ~4 MiB).
inline constexpr std::uint32_t kMaxPayload = 64u << 20;
/// Flag bit: a 4-byte deadline_ms field follows the v2 header.
inline constexpr std::uint8_t kFlagDeadline = 0x01;
/// All flag bits the decoder understands; anything else is a protocol
/// error (reserved bits must be zero until a version assigns them).
inline constexpr std::uint8_t kKnownFlags = kFlagDeadline;

/// Header bytes of a frame of this version.
[[nodiscard]] constexpr std::size_t headerSizeOf(std::uint8_t version) {
  return version == kVersionLegacy ? kHeaderSizeV1 : kHeaderSize;
}

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

/// Response disposition. Mirrors service::RequestStatus plus the
/// wire-only kProtocolError.
enum class Status : std::uint8_t {
  kOk = 0,
  kDegraded = 1,       ///< deadline hit; payload is the fallback schedule
  kRejected = 2,       ///< shed by admission gate, quota, or backpressure
  kShed = 3,           ///< queue-wait deadline exceeded
  kFailed = 4,         ///< parse/cycle error; payload is the message
  kProtocolError = 5,  ///< malformed frame; connection closes after this
  kExpired = 6,        ///< wire deadline spent before compute could start
};

[[nodiscard]] const char* statusName(Status s);

struct Frame {
  /// Wire version this frame was decoded from / will encode to. The
  /// server echoes the request's version in its response so a v1 client
  /// never sees a v2 frame.
  std::uint8_t version = kVersion;
  FrameType type = FrameType::kRequest;
  Status status = Status::kOk;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint64_t trace_id = 0;
  /// v2 only on the wire; a v1 frame decodes to (and must encode from)
  /// tenant 0.
  std::uint32_t tenant = 0;
  /// Whole-request budget in milliseconds (0 = none). Rides the wire as
  /// the optional kFlagDeadline field; v2 only, like tenant.
  std::uint32_t deadline_ms = 0;
  std::string payload;
};

/// Appends the encoded frame to `out`, in the layout Frame::version
/// names. The kFlagDeadline bit is derived from deadline_ms — callers
/// never set `flags` themselves. Throws util::Error when the payload
/// exceeds `max_payload`, when the version is unknown, when a nonzero
/// tenant or deadline is encoded into a v1 frame (which cannot carry
/// them), or when reserved flag bits are set.
void encodeFrame(const Frame& frame, std::string& out,
                 std::uint32_t max_payload = kMaxPayload);

/// Incremental frame parser for a byte stream. Feed bytes as they
/// arrive; next() yields complete frames without copying the stream
/// twice. Both protocol versions are accepted, per frame. A protocol
/// violation (bad magic, unknown version or type, nonzero reserved
/// flags, oversized payload) latches the decoder into the error state —
/// the connection is beyond recovery because frame boundaries are lost.
class FrameDecoder {
 public:
  enum class Result {
    kFrame,     ///< one frame extracted into `out`
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< protocol violation; see error()
  };

  explicit FrameDecoder(std::uint32_t max_payload = kMaxPayload)
      : max_payload_(max_payload) {}

  /// Appends raw bytes from the stream.
  void feed(const char* data, std::size_t n);

  /// Extracts the next complete frame. Call until kNeedMore to drain all
  /// frames that one feed() completed.
  [[nodiscard]] Result next(Frame& out);

  [[nodiscard]] const std::string& error() const { return error_; }
  [[nodiscard]] bool failed() const { return failed_; }
  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

 private:
  std::uint32_t max_payload_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix, compacted when large
  std::string error_;
  bool failed_ = false;
};

}  // namespace prio::net
