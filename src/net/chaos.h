// In-process network-chaos proxy for deterministic fault testing.
//
// ChaosProxy sits between a client and a priod server as a plain TCP
// relay that mangles *delivery* without ever corrupting *bytes*: every
// byte that arrives is forwarded verbatim and in order, but the proxy
// decides — from a seeded PRNG, so runs replay exactly — how the stream
// is chopped up and when it dies:
//
//   - Splitting: forwarded writes are capped at `max_chunk` bytes.
//     max_chunk=1 is the adversarial case, re-feeding the peer's
//     FrameDecoder one byte at a time so every possible split offset of
//     every frame is exercised.
//   - Stalls: with probability `delay_prob` per flush, a direction goes
//     quiet for `delay_s` before the next chunk — the shape that read
//     timeouts and deadline budgets must absorb.
//   - Resets: with probability `reset_prob` per flush (or hard at
//     `reset_after_bytes` forwarded in one direction), both sides get a
//     real RST (SO_LINGER 0 close) — the mid-frame connection death a
//     resilient client must recover from by reconnect + replay.
//   - Truncation: at `truncate_after_bytes` the connection is closed
//     cleanly (FIN) mid-stream — EOF where a frame promised more bytes.
//
// Single-threaded poll loop over all connections, same discipline as the
// real server: run() on a dedicated thread, requestStop() from anywhere.
// Fault decisions are drawn per connection from splitmix64 streams
// derived from (seed, connection index), so concurrency does not
// perturb the schedule of any one connection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

namespace prio::net {

struct ChaosOptions {
  std::string listen_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with ChaosProxy::port().
  std::uint16_t listen_port = 0;
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  /// Seed for the fault schedule. Same seed + same per-connection
  /// traffic => same faults.
  std::uint64_t seed = 1;
  /// Largest forwarded write, in bytes (0 = unlimited). 1 = the
  /// byte-at-a-time adversarial split.
  std::size_t max_chunk = 0;
  /// Probability per flush of stalling the direction for delay_s.
  double delay_prob = 0.0;
  double delay_s = 0.0;
  /// Probability per flush of killing the connection with an RST.
  double reset_prob = 0.0;
  /// Hard RST once this many bytes were forwarded in one direction
  /// (0 = never). Deterministic alternative to reset_prob.
  std::uint64_t reset_after_bytes = 0;
  /// Clean FIN close once this many bytes were forwarded in one
  /// direction (0 = never): truncation mid-frame.
  std::uint64_t truncate_after_bytes = 0;
};

class ChaosProxy {
 public:
  /// Binds and listens (throws util::Error on failure); relaying starts
  /// with run().
  explicit ChaosProxy(const ChaosOptions& options);
  ~ChaosProxy();
  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// The bound listen port.
  [[nodiscard]] std::uint16_t port() const;

  /// Relays until requestStop(). Call from exactly one thread.
  void run();

  /// Stops run(). Idempotent; callable from any thread.
  void requestStop() noexcept;

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t bytes_forwarded = 0;   ///< both directions
    std::uint64_t chunks_forwarded = 0;  ///< individual mangled writes
    std::uint64_t delays_injected = 0;
    std::uint64_t resets_injected = 0;
    std::uint64_t truncations_injected = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prio::net
