// Crash-recovering client: reconnect, replay, and fail-fast.
//
// Client (net/client.h) is deliberately dumb — one connection, throws on
// any I/O trouble. ResilientClient wraps it with the recovery policy a
// long-lived caller wants when the server can be killed and restarted
// under it (DESIGN.md §13):
//
//   - submit()/await() pipeline like Client::send()/receive(), but every
//     in-flight request's text is kept until its response arrives. When
//     the connection dies (EOF, ECONNRESET, a response timeout, a
//     protocol error from a half-written frame), the client reconnects
//     with seeded full-jitter backoff and REPLAYS every outstanding
//     request under its original request id, so responses still
//     correlate and the caller never observes the crash — only latency.
//     Replay is safe because requests are idempotent: the same dag text
//     produces the same instrumented output (and usually a cache hit).
//   - Request ids are owned here (Client::send's explicit-id hook), so
//     ids stay unique across reconnects.
//   - A per-endpoint CircuitBreaker sits in front: after
//     `failure_threshold` consecutive recovery failures the breaker
//     opens and submit()/call() throw BreakerOpenError immediately
//     (fail-fast, no connect attempt) until `open_cooldown_s` passes;
//     then one half-open probe decides between closing and re-opening.
//     Time is injectable for deterministic tests.
//
// Not thread-safe: one ResilientClient per thread, like Client.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/client.h"

namespace prio::net {

/// CircuitBreaker tuning. Defaults suit an interactive CLI: trip after a
/// handful of consecutive failures, retry after a second.
struct BreakerOptions {
  /// Consecutive recorded failures that trip kClosed -> kOpen.
  std::uint32_t failure_threshold = 5;
  /// Time in kOpen before one half-open probe is allowed.
  double open_cooldown_s = 1.0;
  /// Consecutive half-open successes required to close again.
  std::uint32_t half_open_successes = 1;
};

/// Classic three-state breaker. Pure state machine over caller-supplied
/// timestamps (seconds on any monotonic clock) — no hidden clock, so
/// tests drive it deterministically.
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(BreakerOptions options = {});

  /// May a call proceed at `now_s`? kClosed: yes. kOpen: no until the
  /// cooldown elapses, which transitions to kHalfOpen. kHalfOpen: yes
  /// for one probe at a time (further calls fail fast until the probe
  /// reports back via recordSuccess/recordFailure).
  [[nodiscard]] bool allow(double now_s);

  /// Report the outcome of an allowed call.
  void recordSuccess(double now_s);
  void recordFailure(double now_s);

  /// Current state, after applying the open->half-open timer at now_s.
  [[nodiscard]] State state(double now_s);

  [[nodiscard]] std::uint64_t openedCount() const { return opened_count_; }

 private:
  BreakerOptions options_;
  State state_ = State::kClosed;
  std::uint32_t consecutive_failures_ = 0;
  std::uint32_t half_open_successes_ = 0;
  bool probe_in_flight_ = false;
  double opened_at_s_ = 0.0;
  std::uint64_t opened_count_ = 0;
};

/// The breaker is open: the endpoint has been failing and the cooldown
/// has not elapsed. Callers should treat this as "failed fast" — no
/// network I/O was attempted.
class BreakerOpenError : public util::Error {
 public:
  explicit BreakerOpenError(const std::string& what) : util::Error(what) {}
};

struct ResilientOptions {
  /// Options for the wrapped Client. Set request_timeout_s here or a
  /// dead server stalls await() for the full kernel TCP timeout;
  /// deadline_ms and tenant ride through unchanged.
  ClientOptions client;
  /// Reconnect rounds per recovery before giving up (each round is one
  /// connect, itself retried per client.connect_attempts on refusal).
  std::uint32_t max_reconnects = 4;
  /// Full-jitter backoff between reconnect rounds.
  double reconnect_backoff_base_s = 0.05;
  double reconnect_backoff_cap_s = 1.0;
  std::uint64_t reconnect_seed = 1;
  BreakerOptions breaker;
  /// Injectable monotonic clock for the breaker (tests); null uses
  /// steady_clock.
  std::function<double()> now_fn;
};

class ResilientClient {
 public:
  ResilientClient(std::string host, std::uint16_t port,
                  ResilientOptions options = {});

  /// Sends one request (connecting or recovering first if needed) and
  /// tracks it for replay. Returns the request id. Throws
  /// BreakerOpenError when the breaker is open, util::Error when
  /// recovery is exhausted.
  std::uint64_t submit(const std::string& dag_text);

  /// submit() for a typed payload (text or binary CSR) — same tracking
  /// and replay semantics.
  std::uint64_t submitPayload(PayloadKind kind, const std::string& payload);

  /// Submits one kBatchRequest covering `items`; the whole batch is one
  /// tracked request (one await() answers every item) and replays as a
  /// unit after a reconnect.
  std::uint64_t submitBatch(const std::vector<BatchItem>& items);

  /// Blocks for the next response to ANY tracked request, recovering the
  /// connection (reconnect + replay) as needed along the way — at most
  /// max_reconnects recoveries per call, so a peer that accepts but never
  /// answers surfaces the receive error instead of spinning. Throws
  /// BreakerOpenError / util::Error like submit(). PRIO_CHECKs when
  /// nothing is in flight. The failed request stays tracked: a later
  /// await() replays and can still complete it.
  Response await();

  /// submit() + await() for the single-request caller. The returned
  /// response is matched by id (pipelined callers use submit/await).
  Response call(const std::string& dag_text);

  [[nodiscard]] std::size_t inFlight() const { return in_flight_.size(); }
  [[nodiscard]] CircuitBreaker& breaker() { return breaker_; }

  /// Recovery counters (monotonic over the client's lifetime).
  struct Stats {
    std::uint64_t reconnects = 0;     ///< successful reconnections
    std::uint64_t replays = 0;        ///< requests re-sent after a reconnect
    std::uint64_t fast_failures = 0;  ///< calls refused by the open breaker
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  [[nodiscard]] double now() const;
  /// Throws BreakerOpenError (counting it) unless the breaker allows.
  void checkBreaker();
  /// Ensures a live connection with every in-flight request replayed on
  /// it. On success records breaker success; on exhaustion records
  /// failure and rethrows the last error.
  void recover();
  /// The shared submit path: track, send (or recover-and-replay).
  std::uint64_t submitPending(FrameType type, PayloadKind kind,
                              std::string payload);

  std::string host_;
  std::uint16_t port_;
  ResilientOptions options_;
  Client client_;
  CircuitBreaker breaker_;
  /// Everything needed to replay one tracked request byte-identically:
  /// batch requests keep their pre-encoded envelope in `payload`.
  struct PendingRequest {
    FrameType type = FrameType::kRequest;
    PayloadKind kind = PayloadKind::kDagmanText;
    std::string payload;
  };
  /// id -> request, ordered so replay preserves submission order (the
  /// server's per-connection ordering contract).
  std::map<std::uint64_t, PendingRequest> in_flight_;
  std::uint64_t next_id_ = 1;
  bool ever_connected_ = false;
  std::uint64_t reconnect_round_ = 0;  ///< backoff step, reset on success
  Stats stats_;
};

}  // namespace prio::net
