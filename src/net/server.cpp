#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "tenant/fair_queue.h"
#include "util/check.h"
#include "util/socket.h"

namespace prio::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;

/// Readiness backend: epoll where available, poll(2) everywhere. Both
/// are level-triggered, so a handler that leaves bytes unread or
/// unwritten is simply called again.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };
  virtual ~Poller() = default;
  virtual void add(int fd, bool read, bool write) = 0;
  virtual void update(int fd, bool read, bool write) = 0;
  virtual void remove(int fd) = 0;
  /// Fills `out` with ready fds; blocks up to timeout_ms (-1 = forever).
  virtual void wait(std::vector<Event>& out, int timeout_ms) = 0;
};

#ifdef __linux__
class EpollPoller final : public Poller {
 public:
  EpollPoller() : ep_(::epoll_create1(EPOLL_CLOEXEC)) {
    PRIO_CHECK_MSG(ep_.valid(), "epoll_create1: " << std::strerror(errno));
  }

  void add(int fd, bool read, bool write) override { ctl(EPOLL_CTL_ADD, fd, read, write); }
  void update(int fd, bool read, bool write) override { ctl(EPOLL_CTL_MOD, fd, read, write); }
  void remove(int fd) override {
    struct epoll_event ev {};
    ::epoll_ctl(ep_.get(), EPOLL_CTL_DEL, fd, &ev);
  }

  void wait(std::vector<Event>& out, int timeout_ms) override {
    std::array<struct epoll_event, 64> evs;
    int n;
    do {
      n = ::epoll_wait(ep_.get(), evs.data(), static_cast<int>(evs.size()),
                       timeout_ms);
    } while (n < 0 && errno == EINTR);
    for (int i = 0; i < n; ++i) {
      Event e;
      e.fd = evs[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t m = evs[static_cast<std::size_t>(i)].events;
      e.readable = (m & (EPOLLIN | EPOLLHUP)) != 0;
      e.writable = (m & EPOLLOUT) != 0;
      e.error = (m & EPOLLERR) != 0;
      out.push_back(e);
    }
  }

 private:
  void ctl(int op, int fd, bool read, bool write) {
    struct epoll_event ev {};
    ev.data.fd = fd;
    if (read) ev.events |= EPOLLIN;
    if (write) ev.events |= EPOLLOUT;
    PRIO_CHECK_MSG(::epoll_ctl(ep_.get(), op, fd, &ev) == 0,
                   "epoll_ctl: " << std::strerror(errno));
  }

  util::UniqueFd ep_;
};
#endif  // __linux__

class PollPoller final : public Poller {
 public:
  void add(int fd, bool read, bool write) override { interest_[fd] = {read, write}; }
  void update(int fd, bool read, bool write) override { interest_[fd] = {read, write}; }
  void remove(int fd) override { interest_.erase(fd); }

  void wait(std::vector<Event>& out, int timeout_ms) override {
    fds_.clear();
    for (const auto& [fd, want] : interest_) {
      short ev = 0;
      if (want.first) ev |= POLLIN;
      if (want.second) ev |= POLLOUT;
      fds_.push_back({fd, ev, 0});
    }
    int n;
    do {
      n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return;
    for (const struct pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event e;
      e.fd = p.fd;
      e.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      e.writable = (p.revents & POLLOUT) != 0;
      e.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(e);
    }
  }

 private:
  std::unordered_map<int, std::pair<bool, bool>> interest_;
  std::vector<struct pollfd> fds_;
};

Status toWireStatus(service::RequestStatus s) {
  switch (s) {
    case service::RequestStatus::kOk: return Status::kOk;
    case service::RequestStatus::kDegraded: return Status::kDegraded;
    case service::RequestStatus::kRejected: return Status::kRejected;
    case service::RequestStatus::kShed: return Status::kShed;
    case service::RequestStatus::kFailed: return Status::kFailed;
    case service::RequestStatus::kExpired: return Status::kExpired;
  }
  return Status::kFailed;
}

tenant::Outcome toTenantOutcome(service::RequestStatus s) {
  switch (s) {
    case service::RequestStatus::kOk: return tenant::Outcome::kOk;
    case service::RequestStatus::kDegraded: return tenant::Outcome::kDegraded;
    case service::RequestStatus::kRejected: return tenant::Outcome::kRejected;
    case service::RequestStatus::kShed: return tenant::Outcome::kShed;
    case service::RequestStatus::kFailed: return tenant::Outcome::kFailed;
    case service::RequestStatus::kExpired: return tenant::Outcome::kExpired;
  }
  return tenant::Outcome::kFailed;
}

/// The owned service's config with the server's tenant registry patched
/// in, so the work queue is the weighted-fair queue keyed by frame
/// tenant ids.
service::ServiceConfig withTenantRegistry(service::ServiceConfig config,
                                          tenant::TenantRegistry* registry) {
  config.tenants = registry;
  return config;
}

}  // namespace

struct Server::Impl {
  struct Connection {
    std::uint64_t id = 0;
    util::UniqueFd fd;
    FrameDecoder decoder;
    std::string out;
    std::size_t out_pos = 0;
    /// Protocol sniffing: kUnknown until the first bytes arrive; "GET "
    /// selects kHttp, anything else the binary framing.
    enum class Mode { kUnknown, kFraming, kHttp } mode = Mode::kUnknown;
    std::string http_buf;
    std::size_t in_flight = 0;
    /// One decoded frame parked while the admission gate is full
    /// (kBlock policy); reads stay paused until it dispatches.
    std::optional<Frame> parked;
    /// Absolute expiry of the parked frame's wire deadline on the
    /// nowSeconds() clock (0 = the frame carries no deadline). A parked
    /// frame that outlives it is answered kExpired instead of waiting
    /// for a gate slot its caller no longer wants.
    double parked_deadline_s = 0.0;
    bool paused = false;   ///< read interest withdrawn (gate / drain)
    bool closing = false;  ///< close once `out` flushes
    Clock::time_point last_activity;

    [[nodiscard]] bool wantWrite() const { return out_pos < out.size(); }
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    /// Echoed from the request frame so the response encodes in a layout
    /// the client's decoder understands (a v1 client never sees v2).
    std::uint8_t version = kVersion;
    std::uint32_t tenant = 0;
    service::Reply reply;
  };

  explicit Impl(const ServerConfig& config)
      : config_(config),
        connections_accepted(net_registry_.counter("connections_accepted")),
        connections_closed(net_registry_.counter("connections_closed")),
        connections_idle_closed(
            net_registry_.counter("connections_idle_closed")),
        connections_refused(net_registry_.counter("connections_refused")),
        frames_received(net_registry_.counter("frames_received")),
        responses_sent(net_registry_.counter("responses_sent")),
        responses_dropped(net_registry_.counter("responses_dropped")),
        responses_oversized(net_registry_.counter("responses_oversized")),
        protocol_errors(net_registry_.counter("protocol_errors")),
        gate_rejected(net_registry_.counter("gate_rejected")),
        tenant_rejected(net_registry_.counter("tenant_rejected")),
        requests_expired(net_registry_.counter("requests_expired")),
        http_requests(net_registry_.counter("http_requests")),
        connections_open(net_registry_.gauge("connections_open")),
        requests_in_flight(net_registry_.gauge("requests_in_flight")),
        loop_stall_max_us(net_registry_.gauge("loop_stall_max_us")),
        registry_(config.tenant_defaults),
        service_(withTenantRegistry(config.service, &registry_)) {
    for (const auto& [id, tenant_config] : config_.tenants) {
      registry_.configure(id, tenant_config);
    }
    // Under kBlock the service's submit() blocks on a full queue; keep
    // the gate within the queue capacity so the loop thread never can.
    max_in_flight_ = config_.max_in_flight == 0 ? 1 : config_.max_in_flight;
    if (config_.service.backpressure == service::BackpressurePolicy::kBlock &&
        max_in_flight_ > config_.service.queue_capacity) {
      max_in_flight_ = config_.service.queue_capacity;
    }

    listen_fd_ = util::socketCloexec(AF_INET, SOCK_STREAM, 0);
    PRIO_CHECK_MSG(listen_fd_.valid(), "socket: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    PRIO_CHECK_MSG(
        ::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) ==
            1,
        "bad bind address " << config_.bind_address);
    PRIO_CHECK_MSG(::bind(listen_fd_.get(),
                          reinterpret_cast<struct sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "bind " << config_.bind_address << ":" << config_.port
                           << ": " << std::strerror(errno));
    PRIO_CHECK_MSG(::listen(listen_fd_.get(), 128) == 0,
                   "listen: " << std::strerror(errno));
    PRIO_CHECK(util::setNonBlocking(listen_fd_.get()));

    struct sockaddr_in bound {};
    socklen_t len = sizeof(bound);
    PRIO_CHECK(::getsockname(listen_fd_.get(),
                             reinterpret_cast<struct sockaddr*>(&bound),
                             &len) == 0);
    bound_port_ = ntohs(bound.sin_port);

    int pipefd[2];
    PRIO_CHECK_MSG(::pipe(pipefd) == 0, "pipe: " << std::strerror(errno));
    wake_r_.reset(pipefd[0]);
    wake_w_.reset(pipefd[1]);
    PRIO_CHECK(util::setNonBlocking(wake_r_.get()));
    PRIO_CHECK(util::setNonBlocking(wake_w_.get()));
    util::setCloexec(wake_r_.get());
    util::setCloexec(wake_w_.get());
  }

  // ------------------------------------------------------------- loop

  void run() {
#ifdef __linux__
    if (config_.use_epoll) {
      poller_ = std::make_unique<EpollPoller>();
    } else {
      poller_ = std::make_unique<PollPoller>();
    }
#else
    poller_ = std::make_unique<PollPoller>();
#endif
    poller_->add(listen_fd_.get(), /*read=*/true, /*write=*/false);
    poller_->add(wake_r_.get(), /*read=*/true, /*write=*/false);

    std::vector<Poller::Event> events;
    while (true) {
      // Finer ticks only when a timer could fire; otherwise wakes come
      // from sockets and the completion pipe. A parked frame counts as a
      // timer: its tenant's token bucket refills with wall time, so the
      // retry in resumePaused() must not wait for socket traffic.
      const int timeout_ms =
          (config_.idle_timeout_s > 0.0 || draining_ || parked_frames_ > 0)
              ? 50
              : 1000;
      events.clear();
      poller_->wait(events, timeout_ms);
      const Clock::time_point wake = Clock::now();

      for (const Poller::Event& e : events) {
        if (e.fd == wake_r_.get()) {
          drainWakePipe();
        } else if (e.fd == listen_fd_.get()) {
          if (!draining_) acceptAll();
        } else {
          // The connection may have been closed by an earlier event in
          // this same batch.
          auto it = conns_by_fd_.find(e.fd);
          if (it == conns_by_fd_.end()) continue;
          Connection* conn = it->second.get();
          if (e.error) {
            closeConn(conn);
            continue;
          }
          if (e.writable && !flushConn(conn)) continue;
          if (e.readable) handleRead(conn);
        }
      }

      drainCompletions();
      if (!draining_) resumePaused();
      if (config_.idle_timeout_s > 0.0 && !draining_) closeIdle();

      if (stop_requested_.load(std::memory_order_relaxed) && !draining_) {
        beginDrain();
      }
      if (draining_ && drainComplete()) break;

      // Watchdog: how long this iteration kept the loop away from poll.
      // A stalled loop can't flush replies or accept connections, so the
      // worst gap is the liveness number an operator should alarm on.
      const auto stall_us =
          std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                wake)
              .count();
      loop_stall_max_us.setMax(static_cast<std::uint64_t>(stall_us));
    }

    // Point-of-no-return cleanup: anything still connected is dropped.
    for (auto& [fd, conn] : conns_by_fd_) poller_->remove(fd);
    conns_by_fd_.clear();
    conns_by_id_.clear();
    connections_open.set(0);
    poller_.reset();
  }

  void requestStop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
    const char byte = 1;
    // Async-signal-safe wake; EAGAIN means a wake is already pending.
    (void)!::write(wake_w_.get(), &byte, 1);
  }

  // ------------------------------------------------------ connections

  void acceptAll() {
    for (;;) {
      const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (raw < 0) {
        if (errno == EINTR) continue;
        return;  // EAGAIN or transient accept failure: try next round
      }
      util::UniqueFd fd(raw);
      if (conns_by_fd_.size() >= config_.max_connections) {
        connections_refused.add();
        continue;  // fd closes on scope exit
      }
      util::setCloexec(fd.get());
      if (!util::setNonBlocking(fd.get())) {
        connections_refused.add();
        continue;
      }
      const int one = 1;
      ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

      auto conn = std::make_unique<Connection>();
      conn->id = next_conn_id_++;
      conn->fd = std::move(fd);
      conn->decoder = FrameDecoder(config_.max_payload);
      conn->last_activity = Clock::now();
      poller_->add(conn->fd.get(), /*read=*/true, /*write=*/false);
      connections_accepted.add();
      conns_by_id_[conn->id] = conn.get();
      conns_by_fd_[conn->fd.get()] = std::move(conn);
      connections_open.set(conns_by_fd_.size());
    }
  }

  [[nodiscard]] double nowSeconds() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  void closeConn(Connection* conn) {
    if (conn->parked.has_value()) --parked_frames_;
    poller_->remove(conn->fd.get());
    conns_by_id_.erase(conn->id);
    connections_closed.add();
    conns_by_fd_.erase(conn->fd.get());  // destroys conn, closes fd
    connections_open.set(conns_by_fd_.size());
  }

  void updateInterest(Connection* conn) {
    const bool read = !conn->paused && !conn->closing && !draining_;
    poller_->update(conn->fd.get(), read, conn->wantWrite());
  }

  /// Flushes buffered output. False when the connection was closed.
  bool flushConn(Connection* conn) {
    while (conn->wantWrite()) {
      const long w =
          util::writeSome(conn->fd.get(), conn->out.data() + conn->out_pos,
                          conn->out.size() - conn->out_pos);
      if (w < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          updateInterest(conn);
          return true;
        }
        closeConn(conn);
        return false;
      }
      conn->out_pos += static_cast<std::size_t>(w);
      conn->last_activity = Clock::now();
    }
    conn->out.clear();
    conn->out_pos = 0;
    if (conn->closing) {
      closeConn(conn);
      return false;
    }
    updateInterest(conn);
    return true;
  }

  void handleRead(Connection* conn) {
    char buf[kReadChunk];
    for (;;) {
      const long r = util::readSome(conn->fd.get(), buf, sizeof(buf));
      if (r < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        closeConn(conn);
        return;
      }
      if (r == 0) {
        // EOF. Any in-flight replies have nowhere to go; dropping the
        // connection now makes their completions no-ops.
        closeConn(conn);
        return;
      }
      conn->last_activity = Clock::now();
      if (conn->mode == Connection::Mode::kUnknown) {
        sniffProtocol(conn, buf, static_cast<std::size_t>(r));
      }
      if (conn->mode == Connection::Mode::kHttp) {
        conn->http_buf.append(buf, static_cast<std::size_t>(r));
        if (!maybeServeHttp(conn)) return;
      } else {
        conn->decoder.feed(buf, static_cast<std::size_t>(r));
        if (!processFrames(conn)) return;
      }
      // Gate full, or a one-shot (HTTP / protocol-error) response is
      // queued: leave the rest unread so it cannot re-trigger handling.
      if (conn->paused) return;
    }
  }

  void sniffProtocol(Connection* conn, const char* data, std::size_t n) {
    // Enough bytes always arrive at once in practice; a frame's first
    // byte is 0x50 ('P'), so a 1-byte "G" prefix is also decisive.
    conn->mode = (n > 0 && data[0] == 'G') ? Connection::Mode::kHttp
                                           : Connection::Mode::kFraming;
  }

  /// Serves the /metrics snapshot once the request head is complete.
  /// False when the connection was closed.
  bool maybeServeHttp(Connection* conn) {
    if (conn->http_buf.find("\r\n\r\n") == std::string::npos &&
        conn->http_buf.find("\n\n") == std::string::npos) {
      if (conn->http_buf.size() > 64 * 1024) {
        closeConn(conn);
        return false;
      }
      return true;
    }
    http_requests.add();
    std::istringstream head(conn->http_buf);
    std::string method, path;
    head >> method >> path;
    std::string body;
    std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
    const char* status_line;
    if (method == "GET" && (path == "/metrics" || path == "/metrics/")) {
      std::ostringstream out;
      writeMetricsText(out);
      body = std::move(out).str();
      status_line = "HTTP/1.0 200 OK";
    } else if (method == "GET" &&
               (path == "/tenants" || path == "/tenants/")) {
      std::ostringstream out;
      writeTenantsJson(out);
      body = std::move(out).str();
      content_type = "application/json";
      status_line = "HTTP/1.0 200 OK";
    } else if (method == "GET" && (path == "/healthz" || path == "/healthz/")) {
      // Liveness: answering at all proves the event loop is turning.
      body = "ok\n";
      status_line = "HTTP/1.0 200 OK";
    } else if (method == "GET" && (path == "/readyz" || path == "/readyz/")) {
      // Readiness: live AND able to admit a request right now. Draining
      // or a saturated admission gate means new traffic should go
      // elsewhere, reported 503 so load balancers need no body parsing.
      const bool gate_full = in_flight_ >= max_in_flight_;
      const bool ready = !draining_ && !gate_full;
      std::ostringstream out;
      out << "{\"ready\":" << (ready ? "true" : "false")
          << ",\"draining\":" << (draining_ ? "true" : "false")
          << ",\"in_flight\":" << in_flight_
          << ",\"max_in_flight\":" << max_in_flight_
          << ",\"parked\":" << parked_frames_ << "}\n";
      body = std::move(out).str();
      content_type = "application/json";
      status_line =
          ready ? "HTTP/1.0 200 OK" : "HTTP/1.0 503 Service Unavailable";
    } else {
      body =
          "only GET /metrics, /tenants, /healthz, and /readyz are served "
          "here\n";
      status_line = "HTTP/1.0 404 Not Found";
    }
    conn->out.append(status_line);
    conn->out.append("\r\nContent-Type: " + content_type +
                     "\r\nContent-Length: " + std::to_string(body.size()) +
                     "\r\nConnection: close\r\n\r\n");
    conn->out.append(body);
    conn->closing = true;
    conn->paused = true;
    updateInterest(conn);
    return flushConn(conn);
  }

  /// Decodes and dispatches frames until the buffer runs dry, the gate
  /// pauses the connection, or a protocol error ends it. False when the
  /// connection was closed.
  bool processFrames(Connection* conn) {
    while (!conn->paused && !draining_) {
      Frame frame;
      switch (conn->decoder.next(frame)) {
        case FrameDecoder::Result::kNeedMore:
          return true;
        case FrameDecoder::Result::kError: {
          protocol_errors.add();
          Frame err;
          // v1 layout: the one error frame EVERY decoder vintage parses
          // (the sender's version is unknowable once framing is lost).
          err.version = kVersionLegacy;
          err.type = FrameType::kResponse;
          err.status = Status::kProtocolError;
          err.payload = conn->decoder.error();
          encodeFrame(err, conn->out, config_.max_payload);
          conn->closing = true;
          conn->paused = true;
          updateInterest(conn);
          return flushConn(conn);
        }
        case FrameDecoder::Result::kFrame:
          break;
      }
      if (frame.type != FrameType::kRequest) {
        protocol_errors.add();
        Frame err;
        err.version = frame.version;
        err.type = FrameType::kResponse;
        err.status = Status::kProtocolError;
        err.request_id = frame.request_id;
        err.payload = "expected a request frame";
        encodeFrame(err, conn->out, config_.max_payload);
        conn->closing = true;
        conn->paused = true;
        updateInterest(conn);
        return flushConn(conn);
      }
      frames_received.add();
      // Two-stage admission: the global gate first (it is the cheaper
      // check and caps total work in the service), then the tenant's
      // token bucket and in-flight cap. A denial from either maps onto
      // the same backpressure policy: answer kRejected under kReject,
      // park the frame under kBlock.
      const char* deny = nullptr;
      bool tenant_denied = false;
      if (in_flight_ >= max_in_flight_) {
        deny = "admission gate full";
      } else {
        switch (registry_.tryAdmit(frame.tenant, nowSeconds())) {
          case tenant::Admission::kAdmit:
            break;
          case tenant::Admission::kQuota:
            deny = "tenant quota exceeded";
            tenant_denied = true;
            break;
          case tenant::Admission::kInFlightCap:
            deny = "tenant in-flight cap reached";
            tenant_denied = true;
            break;
        }
      }
      if (deny != nullptr) {
        if (config_.service.backpressure ==
            service::BackpressurePolicy::kReject) {
          (tenant_denied ? tenant_rejected : gate_rejected).add();
          registry_.recordRejected(frame.tenant);
          Frame rej;
          rej.version = frame.version;
          rej.type = FrameType::kResponse;
          rej.status = Status::kRejected;
          rej.request_id = frame.request_id;
          rej.tenant = frame.tenant;
          rej.payload = deny;
          encodeFrame(rej, conn->out, config_.max_payload);
          if (!flushConn(conn)) return false;
          continue;
        }
        // kBlock: park the frame and stop reading this connection; the
        // unread bytes stay in the kernel buffer and TCP flow control
        // pushes back on the client. resumePaused() retries admission
        // every tick — a gate slot or a refilled token unparks it, and
        // a wire deadline bounds how long the wait may last.
        conn->parked_deadline_s =
            frame.deadline_ms > 0
                ? nowSeconds() + static_cast<double>(frame.deadline_ms) / 1e3
                : 0.0;
        conn->parked = std::move(frame);
        conn->paused = true;
        ++parked_frames_;
        updateInterest(conn);
        return true;
      }
      dispatch(conn, std::move(frame));
    }
    return true;
  }

  /// Submits an ALREADY-ADMITTED frame (registry_.tryAdmit succeeded) to
  /// the service; the paired registry_.recordReply runs when the
  /// completion drains.
  void dispatch(Connection* conn, Frame frame) {
    ++in_flight_;
    ++conn->in_flight;
    requests_in_flight.set(in_flight_);
    service::TextRequest request;
    request.dag_text = std::move(frame.payload);
    request.trace_id = frame.trace_id;
    request.tenant = frame.tenant;
    // The wire budget (already net of parked time) becomes the service-
    // side budget: spent in the work queue the request answers kExpired,
    // and the remainder tightens the compute CancelToken.
    request.deadline_s =
        frame.deadline_ms > 0
            ? static_cast<double>(frame.deadline_ms) / 1e3
            : 0.0;
    service_.submitCallback(
        std::move(request),
        [this, conn_id = conn->id, request_id = frame.request_id,
         version = frame.version,
         tenant = frame.tenant](service::Reply reply) {
          {
            std::lock_guard<std::mutex> lock(completions_mu_);
            completions_.push_back(Completion{conn_id, request_id, version,
                                              tenant, std::move(reply)});
          }
          const char byte = 1;
          (void)!::write(wake_w_.get(), &byte, 1);
        });
  }

  void drainWakePipe() {
    char buf[256];
    while (util::readSome(wake_r_.get(), buf, sizeof(buf)) > 0) {
    }
  }

  void drainCompletions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      batch.swap(completions_);
    }
    for (Completion& c : batch) {
      --in_flight_;
      // Account the reply to its tenant (and release its in-flight slot)
      // even when the connection died — the work was done either way.
      registry_.recordReply(c.tenant, toTenantOutcome(c.reply.status),
                            c.reply.cache_hit, c.reply.latency_s);
      auto it = conns_by_id_.find(c.conn_id);
      if (it == conns_by_id_.end()) {
        responses_dropped.add();
        continue;
      }
      Connection* conn = it->second;
      --conn->in_flight;
      if (c.reply.status == service::RequestStatus::kExpired) {
        requests_expired.add();
      }
      Frame resp;
      resp.version = c.version;
      resp.tenant = c.tenant;
      resp.type = FrameType::kResponse;
      resp.status = toWireStatus(c.reply.status);
      resp.request_id = c.request_id;
      resp.trace_id = c.reply.trace_id;
      resp.payload = (c.reply.status == service::RequestStatus::kOk ||
                      c.reply.status == service::RequestStatus::kDegraded)
                         ? std::move(c.reply.output)
                         : (c.reply.error.empty()
                                ? std::string(statusName(resp.status))
                                : std::move(c.reply.error));
      if (resp.payload.size() > config_.max_payload) {
        // The instrumented output always outgrows its input, so a valid
        // request near the cap can yield an unencodable reply; answer
        // kFailed instead of letting encodeFrame throw out of run().
        responses_oversized.add();
        resp.status = Status::kFailed;
        resp.payload = "response of " + std::to_string(resp.payload.size()) +
                       " bytes exceeds the " +
                       std::to_string(config_.max_payload) +
                       "-byte frame cap";
        if (resp.payload.size() > config_.max_payload) {
          resp.payload.resize(config_.max_payload);
        }
      }
      encodeFrame(resp, conn->out, config_.max_payload);
      responses_sent.add();
      flushConn(conn);
    }
    requests_in_flight.set(in_flight_);
  }

  /// Re-opens gated connections whose parked frame now passes admission:
  /// the parked frame dispatches first, then buffered frames, then
  /// socket reads. Checked per connection, not globally — one tenant
  /// stuck on an empty token bucket must not stall other tenants'
  /// connections behind it.
  void resumePaused() {
    // Ids, not iterators: processFrames() can close connections, which
    // erases from the map being walked.
    std::vector<std::uint64_t> paused;
    for (const auto& [fd, conn] : conns_by_fd_) {
      if (conn->paused && !conn->closing) paused.push_back(conn->id);
    }
    for (const std::uint64_t id : paused) {
      auto it = conns_by_id_.find(id);
      if (it == conns_by_id_.end()) continue;
      Connection* conn = it->second;
      if (conn->parked.has_value()) {
        const double now_s = nowSeconds();
        if (conn->parked_deadline_s > 0.0 &&
            now_s >= conn->parked_deadline_s) {
          // The budget died in the parking lot: answer kExpired without
          // admitting (no token burned, no in-flight slot), then resume
          // reading — the connection itself is healthy.
          Frame frame = std::move(*conn->parked);
          conn->parked.reset();
          conn->parked_deadline_s = 0.0;
          --parked_frames_;
          requests_expired.add();
          registry_.recordExpired(frame.tenant);
          Frame resp;
          resp.version = frame.version;
          resp.type = FrameType::kResponse;
          resp.status = Status::kExpired;
          resp.request_id = frame.request_id;
          resp.tenant = frame.tenant;
          resp.payload = "deadline expired before admission";
          encodeFrame(resp, conn->out, config_.max_payload);
          responses_sent.add();
          conn->paused = false;
          if (!flushConn(conn)) continue;
          processFrames(conn);
          continue;
        }
        if (in_flight_ >= max_in_flight_) continue;
        if (registry_.tryAdmit(conn->parked->tenant, now_s) !=
            tenant::Admission::kAdmit) {
          continue;  // still over quota / cap; retry next tick
        }
        Frame frame = std::move(*conn->parked);
        conn->parked.reset();
        --parked_frames_;
        if (conn->parked_deadline_s > 0.0) {
          // Shrink the budget by the time spent parked, floored at 1 ms
          // so the service still sees (and expires) a nonzero deadline.
          const double remaining_s = conn->parked_deadline_s - now_s;
          frame.deadline_ms = static_cast<std::uint32_t>(
              std::max(1.0, remaining_s * 1e3));
          conn->parked_deadline_s = 0.0;
        }
        dispatch(conn, std::move(frame));
      }
      conn->paused = false;
      updateInterest(conn);
      processFrames(conn);
    }
  }

  void closeIdle() {
    const auto cutoff =
        Clock::now() - std::chrono::duration<double>(config_.idle_timeout_s);
    std::vector<Connection*> idle;
    for (auto& [fd, conn] : conns_by_fd_) {
      // A paused connection is waiting on us, not on the client: its
      // reads are off so last_activity cannot refresh, and the kBlock
      // gate may have a frame parked that must not be dropped.
      if (!conn->paused && conn->in_flight == 0 && !conn->wantWrite() &&
          conn->last_activity < std::chrono::time_point_cast<Clock::duration>(
                                    cutoff)) {
        idle.push_back(conn.get());
      }
    }
    for (Connection* conn : idle) {
      connections_idle_closed.add();
      closeConn(conn);
    }
  }

  void beginDrain() {
    draining_ = true;
    drain_deadline_ = Clock::now() +
                      std::chrono::duration_cast<Clock::duration>(
                          std::chrono::duration<double>(
                              config_.drain_timeout_s));
    poller_->remove(listen_fd_.get());
    for (auto& [fd, conn] : conns_by_fd_) updateInterest(conn.get());
  }

  [[nodiscard]] bool drainComplete() {
    if (Clock::now() >= drain_deadline_) return true;
    if (in_flight_ != 0) return false;
    {
      std::lock_guard<std::mutex> lock(completions_mu_);
      if (!completions_.empty()) return false;
    }
    for (const auto& [fd, conn] : conns_by_fd_) {
      if (conn->wantWrite()) return false;
    }
    return true;
  }

  /// Registry snapshot with each tenant's live fair-queue depth filled
  /// in (the registry itself never sees queue contents).
  [[nodiscard]] std::vector<tenant::TenantSnapshot> tenantSnapshots() {
    std::vector<tenant::TenantSnapshot> snaps = registry_.snapshot();
    if (const tenant::FairQueue* fq = service_.fairQueue()) {
      for (tenant::TenantSnapshot& s : snaps) s.queued = fq->queuedFor(s.id);
    }
    return snaps;
  }

  void writeMetricsText(std::ostream& out) {
    service_.writePrometheusText(out);
    net_registry_.snapshot().writePrometheus(out, "prio_net_");
    tenant::writeTenantsPrometheus(out, tenantSnapshots());
  }

  void writeTenantsJson(std::ostream& out) {
    tenant::writeTenantsJson(out, tenantSnapshots());
  }

  // ------------------------------------------------------------ state

  ServerConfig config_;
  obs::Registry net_registry_;
  obs::Counter& connections_accepted;
  obs::Counter& connections_closed;
  obs::Counter& connections_idle_closed;
  obs::Counter& connections_refused;
  obs::Counter& frames_received;
  obs::Counter& responses_sent;
  obs::Counter& responses_dropped;
  obs::Counter& responses_oversized;
  obs::Counter& protocol_errors;
  obs::Counter& gate_rejected;
  obs::Counter& tenant_rejected;
  obs::Counter& requests_expired;  ///< answered kExpired on the wire
  obs::Counter& http_requests;
  obs::Gauge& connections_open;
  obs::Gauge& requests_in_flight;
  /// Event-loop watchdog: the worst observed gap (µs) the loop spent
  /// away from poll — i.e. how long a reply could sit unserved because
  /// the loop thread was busy. Exported as prio_net_loop_stall_max_us.
  obs::Gauge& loop_stall_max_us;

  std::size_t max_in_flight_ = 1;
  util::UniqueFd listen_fd_;
  util::UniqueFd wake_r_;
  util::UniqueFd wake_w_;
  std::uint16_t bound_port_ = 0;
  std::unique_ptr<Poller> poller_;

  std::uint64_t next_conn_id_ = 1;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_by_fd_;
  std::unordered_map<std::uint64_t, Connection*> conns_by_id_;
  std::size_t in_flight_ = 0;       ///< loop-thread only
  std::size_t parked_frames_ = 0;   ///< loop-thread only; forces 50ms
                                    ///< ticks so quota refills retry
  /// Epoch for the registry's token-bucket clock (monotonic seconds).
  const Clock::time_point epoch_ = Clock::now();

  std::atomic<bool> stop_requested_{false};
  bool draining_ = false;
  Clock::time_point drain_deadline_{};

  std::mutex completions_mu_;
  std::vector<Completion> completions_;

  /// Tenant policies and accounting. Declared before (so destroyed
  /// after) the service, whose fair queue reads weights from it until
  /// the workers join.
  tenant::TenantRegistry registry_;
  /// Declared last so it is destroyed first: the destructor joins the
  /// workers while the wake pipe their completion callbacks write to is
  /// still open.
  service::PrioService service_;
};

Server::Server(const ServerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

Server::~Server() = default;

std::uint16_t Server::port() const { return impl_->bound_port_; }

void Server::run() { impl_->run(); }

void Server::requestStop() noexcept { impl_->requestStop(); }

service::PrioService& Server::service() { return impl_->service_; }
const service::PrioService& Server::service() const {
  return impl_->service_;
}

void Server::writeMetricsText(std::ostream& out) {
  impl_->writeMetricsText(out);
}

void Server::writeTenantsJson(std::ostream& out) {
  impl_->writeTenantsJson(out);
}

tenant::TenantRegistry& Server::tenants() { return impl_->registry_; }
const tenant::TenantRegistry& Server::tenants() const {
  return impl_->registry_;
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_accepted = impl_->connections_accepted.get();
  s.connections_closed = impl_->connections_closed.get();
  s.connections_idle_closed = impl_->connections_idle_closed.get();
  s.connections_refused = impl_->connections_refused.get();
  s.frames_received = impl_->frames_received.get();
  s.responses_sent = impl_->responses_sent.get();
  s.responses_dropped = impl_->responses_dropped.get();
  s.responses_oversized = impl_->responses_oversized.get();
  s.protocol_errors = impl_->protocol_errors.get();
  s.gate_rejected = impl_->gate_rejected.get();
  s.tenant_rejected = impl_->tenant_rejected.get();
  s.requests_expired = impl_->requests_expired.get();
  s.http_requests = impl_->http_requests.get();
  s.loop_stall_max_us = impl_->loop_stall_max_us.get();
  return s;
}

}  // namespace net
