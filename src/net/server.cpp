#include "net/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <exception>
#include <list>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "net/poller.h"
#include "net/wakeup.h"
#include "obs/metrics.h"
#include "tenant/fair_queue.h"
#include "util/check.h"
#include "util/socket.h"

namespace prio::net {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;
constexpr int kListenBacklog = 256;

Status toWireStatus(service::RequestStatus s) {
  switch (s) {
    case service::RequestStatus::kOk: return Status::kOk;
    case service::RequestStatus::kDegraded: return Status::kDegraded;
    case service::RequestStatus::kRejected: return Status::kRejected;
    case service::RequestStatus::kShed: return Status::kShed;
    case service::RequestStatus::kFailed: return Status::kFailed;
    case service::RequestStatus::kExpired: return Status::kExpired;
  }
  return Status::kFailed;
}

tenant::Outcome toTenantOutcome(service::RequestStatus s) {
  switch (s) {
    case service::RequestStatus::kOk: return tenant::Outcome::kOk;
    case service::RequestStatus::kDegraded: return tenant::Outcome::kDegraded;
    case service::RequestStatus::kRejected: return tenant::Outcome::kRejected;
    case service::RequestStatus::kShed: return tenant::Outcome::kShed;
    case service::RequestStatus::kFailed: return tenant::Outcome::kFailed;
    case service::RequestStatus::kExpired: return tenant::Outcome::kExpired;
  }
  return tenant::Outcome::kFailed;
}

/// The net and service PayloadKind enums mirror each other by value;
/// these keep the cast in one audited place.
service::PayloadKind toServiceKind(PayloadKind k) {
  return k == PayloadKind::kBinaryCsr ? service::PayloadKind::kBinaryCsr
                                      : service::PayloadKind::kDagmanText;
}

PayloadKind toWireKind(service::PayloadKind k) {
  return k == service::PayloadKind::kBinaryCsr ? PayloadKind::kBinaryCsr
                                               : PayloadKind::kDagmanText;
}

/// The owned service's config with the server's tenant registry patched
/// in, so the work queue is the weighted-fair queue keyed by frame
/// tenant ids.
service::ServiceConfig withTenantRegistry(service::ServiceConfig config,
                                          tenant::TenantRegistry* registry) {
  config.tenants = registry;
  return config;
}

/// ServerConfig::reactors resolved to the shard count actually run.
std::size_t resolveReactors(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 1 ? hw / 2 : 1;
}

/// A bound, listening, non-blocking IPv4 socket. Throws util::Error on
/// any failure — including SO_REUSEPORT being refused, which the caller
/// turns into the hand-off fallback.
util::UniqueFd makeListener(const std::string& bind_address,
                            std::uint16_t port, bool reuseport) {
  util::UniqueFd fd = util::socketCloexec(AF_INET, SOCK_STREAM, 0);
  PRIO_CHECK_MSG(fd.valid(), "socket: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
#ifdef SO_REUSEPORT
    PRIO_CHECK_MSG(::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one,
                                sizeof(one)) == 0,
                   "setsockopt(SO_REUSEPORT): " << std::strerror(errno));
#else
    PRIO_CHECK_MSG(false, "SO_REUSEPORT unavailable on this platform");
#endif
  }

  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  PRIO_CHECK_MSG(
      ::inet_pton(AF_INET, bind_address.c_str(), &addr.sin_addr) == 1,
      "bad bind address " << bind_address);
  PRIO_CHECK_MSG(::bind(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                        sizeof(addr)) == 0,
                 "bind " << bind_address << ":" << port << ": "
                         << std::strerror(errno));
  PRIO_CHECK_MSG(::listen(fd.get(), kListenBacklog) == 0,
                 "listen: " << std::strerror(errno));
  PRIO_CHECK(util::setNonBlocking(fd.get()));
  return fd;
}

std::uint16_t localPort(int fd) {
  struct sockaddr_in bound {};
  socklen_t len = sizeof(bound);
  PRIO_CHECK(::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                           &len) == 0);
  return ntohs(bound.sin_port);
}

}  // namespace

struct Server::Impl {
  struct Connection {
    std::uint64_t id = 0;
    util::UniqueFd fd;
    FrameDecoder decoder;
    std::string out;
    std::size_t out_pos = 0;
    /// Protocol sniffing: kUnknown until the first bytes arrive; "GET "
    /// selects kHttp, anything else the binary framing.
    enum class Mode { kUnknown, kFraming, kHttp } mode = Mode::kUnknown;
    std::string http_buf;
    std::size_t in_flight = 0;
    /// One decoded frame parked while the admission gate is full
    /// (kBlock policy); reads stay paused until it dispatches.
    std::optional<Frame> parked;
    /// Absolute expiry of the parked frame's wire deadline on the
    /// nowSeconds() clock (0 = the frame carries no deadline). A parked
    /// frame that outlives it is answered kExpired instead of waiting
    /// for a gate slot its caller no longer wants.
    double parked_deadline_s = 0.0;
    bool paused = false;   ///< read interest withdrawn (gate / drain)
    bool closing = false;  ///< close once `out` flushes
    Clock::time_point last_activity;
    /// Position on the owning shard's LRU list (always valid while the
    /// connection lives): front = least recently active, so the idle
    /// reaper pops cold connections without scanning warm ones.
    std::list<Connection*>::iterator lru_it;

    [[nodiscard]] bool wantWrite() const { return out_pos < out.size(); }
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    /// Echoed from the request frame so the response encodes in a layout
    /// the client's decoder understands (a v1 client never sees v2).
    std::uint8_t version = kVersion;
    std::uint32_t tenant = 0;
    /// True when the request was a kBatchRequest: the reply's items are
    /// re-encoded as a kBatchResponse envelope.
    bool batch = false;
    service::Reply reply;
  };

  /// One reactor: an event-loop thread and everything it owns
  /// exclusively — poller, listener (or hand-off inbox), connection
  /// tables, LRU list, buffers, completion queue, wakeup fd. Only
  /// completions_/inbox_ (mutex) and parked_frames_/accepted_ (atomic)
  /// are ever touched by another thread.
  struct Shard {
    Shard(Impl* impl, std::size_t index)
        : impl(impl), index(index), next_conn_id_(index + 1) {}

    Impl* impl;
    std::size_t index = 0;
    /// Valid on every shard under SO_REUSEPORT; only on shard 0 in
    /// hand-off mode.
    util::UniqueFd listen_fd_;
    Wakeup wake_;
    std::unique_ptr<Poller> poller_;  ///< created on the loop thread

    /// Ids stride by the shard count so they are unique without
    /// coordination (shard i mints i+1, i+1+N, ...).
    std::uint64_t next_conn_id_;
    std::unordered_map<int, std::unique_ptr<Connection>> conns_by_fd_;
    std::unordered_map<std::uint64_t, Connection*> conns_by_id_;
    /// Intrusive LRU: every live connection is on it, coldest first.
    std::list<Connection*> lru_;
    /// Requests dispatched by this shard whose completions have not yet
    /// drained (loop-thread only; includes completions for connections
    /// that died, which still owe the tenant a recordReply).
    std::size_t outstanding_ = 0;
    /// Written by the loop thread; read by sibling shards deciding whom
    /// to wake and by /readyz.
    std::atomic<std::size_t> parked_frames_{0};
    /// Connections adopted by this shard (Stats::shard_connections).
    std::atomic<std::uint64_t> accepted_{0};
    /// Hand-off round-robin cursor (used only by the accepting shard).
    std::size_t rr_next_ = 0;

    bool draining_ = false;
    Clock::time_point drain_deadline_{};

    std::mutex completions_mu_;
    std::vector<Completion> completions_;

    /// Descriptors dealt to this shard by the accepting shard (hand-off
    /// mode only).
    std::mutex inbox_mu_;
    std::vector<util::UniqueFd> inbox_;

    // ----------------------------------------------------------- loop

    void loop() {
      poller_ = makePoller(impl->config_.use_epoll);
      if (listen_fd_.valid()) {
        poller_->add(listen_fd_.get(), /*read=*/true, /*write=*/false);
      }
      poller_->add(wake_.fd(), /*read=*/true, /*write=*/false);

      std::vector<Poller::Event> events;
      while (true) {
        // Finer ticks only when a timer could fire; otherwise wakes
        // come from sockets and the wakeup fd. A parked frame counts as
        // a timer: its tenant's token bucket refills with wall time, so
        // the retry in resumePaused() must not wait for socket traffic.
        const int timeout_ms =
            (impl->config_.idle_timeout_s > 0.0 || draining_ ||
             parked_frames_.load(std::memory_order_relaxed) > 0)
                ? 50
                : 1000;
        events.clear();
        poller_->wait(events, timeout_ms);
        const Clock::time_point wake = Clock::now();

        for (const Poller::Event& e : events) {
          if (e.fd == wake_.fd()) {
            if (wake_.drain() > 0) impl->wakeups_drained.add();
          } else if (listen_fd_.valid() && e.fd == listen_fd_.get()) {
            if (!draining_) acceptAll();
          } else {
            // The connection may have been closed by an earlier event
            // in this same batch.
            auto it = conns_by_fd_.find(e.fd);
            if (it == conns_by_fd_.end()) continue;
            Connection* conn = it->second.get();
            if (e.error) {
              closeConn(conn);
              continue;
            }
            if (e.writable && !flushConn(conn)) continue;
            if (e.readable) handleRead(conn);
          }
        }

        adoptInbox();
        drainCompletions();
        if (!draining_ &&
            parked_frames_.load(std::memory_order_relaxed) > 0) {
          resumePaused();
        }
        if (impl->config_.idle_timeout_s > 0.0 && !draining_) closeIdle();

        if (impl->stop_requested_.load(std::memory_order_relaxed) &&
            !draining_) {
          beginDrain();
        }
        if (draining_ && drainComplete()) break;

        // Watchdog: how long this iteration kept the loop away from
        // poll. A stalled loop can't flush replies or accept
        // connections, so the worst gap across shards is the liveness
        // number an operator should alarm on.
        const auto stall_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - wake)
                .count();
        impl->loop_stall_max_us.setMax(static_cast<std::uint64_t>(stall_us));
      }

      // Point-of-no-return cleanup: anything still connected is dropped.
      for (auto& [fd, conn] : conns_by_fd_) poller_->remove(fd);
      if (!conns_by_fd_.empty()) {
        impl->open_conns_.fetch_sub(conns_by_fd_.size(),
                                    std::memory_order_relaxed);
      }
      conns_by_fd_.clear();
      conns_by_id_.clear();
      lru_.clear();
      dropInbox();
      poller_.reset();
    }

    // ---------------------------------------------------- connections

    void acceptAll() {
      for (;;) {
        const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
        if (raw < 0) {
          if (errno == EINTR) continue;
          return;  // EAGAIN or transient accept failure: try next round
        }
        util::UniqueFd fd(raw);
        // The connection cap is global; the atomic reservation makes it
        // exact even with every shard accepting at once.
        if (impl->open_conns_.fetch_add(1, std::memory_order_relaxed) >=
            impl->config_.max_connections) {
          impl->open_conns_.fetch_sub(1, std::memory_order_relaxed);
          impl->connections_refused.add();
          continue;  // fd closes on scope exit
        }
        util::setCloexec(fd.get());
        if (!util::setNonBlocking(fd.get())) {
          impl->open_conns_.fetch_sub(1, std::memory_order_relaxed);
          impl->connections_refused.add();
          continue;
        }
        const int one = 1;
        ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        impl->connections_accepted.add();

        if (!impl->reuseport_ && impl->num_shards_ > 1) {
          // Hand-off fallback: deal round-robin (deterministic — tests
          // rely on the order), keeping every Nth for ourselves.
          Shard& target = *impl->shards_[rr_next_++ % impl->num_shards_];
          if (&target != this) {
            target.pushHandoff(std::move(fd));
            continue;
          }
        }
        adopt(std::move(fd));
      }
    }

    /// Takes ownership of an accepted, non-blocking descriptor already
    /// counted in open_conns_.
    void adopt(util::UniqueFd fd) {
      auto conn = std::make_unique<Connection>();
      conn->id = next_conn_id_;
      next_conn_id_ += impl->num_shards_;
      conn->fd = std::move(fd);
      conn->decoder =
          FrameDecoder(impl->config_.max_payload, impl->max_batch_payload_);
      conn->last_activity = Clock::now();
      poller_->add(conn->fd.get(), /*read=*/true, /*write=*/false);
      conn->lru_it = lru_.insert(lru_.end(), conn.get());
      accepted_.fetch_add(1, std::memory_order_relaxed);
      conns_by_id_[conn->id] = conn.get();
      const int cfd = conn->fd.get();
      conns_by_fd_[cfd] = std::move(conn);
      impl->connections_open.set(
          impl->open_conns_.load(std::memory_order_relaxed));
    }

    /// Called by the accepting shard's thread.
    void pushHandoff(util::UniqueFd fd) {
      {
        std::lock_guard<std::mutex> lock(inbox_mu_);
        inbox_.push_back(std::move(fd));
      }
      impl->signalShard(*this);
    }

    void adoptInbox() {
      std::vector<util::UniqueFd> batch;
      {
        std::lock_guard<std::mutex> lock(inbox_mu_);
        if (inbox_.empty()) return;
        batch.swap(inbox_);
      }
      for (util::UniqueFd& fd : batch) {
        if (draining_) {
          // Handed off just as the stop landed: close unserved.
          impl->open_conns_.fetch_sub(1, std::memory_order_relaxed);
          impl->connections_closed.add();
          fd.reset();
          continue;
        }
        adopt(std::move(fd));
      }
    }

    void dropInbox() {
      std::vector<util::UniqueFd> batch;
      {
        std::lock_guard<std::mutex> lock(inbox_mu_);
        batch.swap(inbox_);
      }
      for (util::UniqueFd& fd : batch) {
        impl->open_conns_.fetch_sub(1, std::memory_order_relaxed);
        impl->connections_closed.add();
        fd.reset();
      }
    }

    /// Refreshes activity and moves the connection to the warm end of
    /// the LRU list (O(1) splice).
    void touch(Connection* conn) {
      conn->last_activity = Clock::now();
      lru_.splice(lru_.end(), lru_, conn->lru_it);
    }

    void closeConn(Connection* conn) {
      if (conn->parked.has_value()) {
        parked_frames_.fetch_sub(1, std::memory_order_relaxed);
      }
      lru_.erase(conn->lru_it);
      poller_->remove(conn->fd.get());
      conns_by_id_.erase(conn->id);
      impl->connections_closed.add();
      conns_by_fd_.erase(conn->fd.get());  // destroys conn, closes fd
      impl->open_conns_.fetch_sub(1, std::memory_order_relaxed);
      impl->connections_open.set(
          impl->open_conns_.load(std::memory_order_relaxed));
    }

    void updateInterest(Connection* conn) {
      const bool read = !conn->paused && !conn->closing && !draining_;
      poller_->update(conn->fd.get(), read, conn->wantWrite());
    }

    /// Flushes buffered output. False when the connection was closed.
    bool flushConn(Connection* conn) {
      bool progressed = false;
      while (conn->wantWrite()) {
        const long w =
            util::writeSome(conn->fd.get(), conn->out.data() + conn->out_pos,
                            conn->out.size() - conn->out_pos);
        if (w < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) {
            if (progressed) touch(conn);
            updateInterest(conn);
            return true;
          }
          closeConn(conn);
          return false;
        }
        conn->out_pos += static_cast<std::size_t>(w);
        progressed = true;
      }
      conn->out.clear();
      conn->out_pos = 0;
      if (conn->closing) {
        closeConn(conn);
        return false;
      }
      if (progressed) touch(conn);
      updateInterest(conn);
      return true;
    }

    void handleRead(Connection* conn) {
      char buf[kReadChunk];
      for (;;) {
        const long r = util::readSome(conn->fd.get(), buf, sizeof(buf));
        if (r < 0) {
          if (errno == EAGAIN || errno == EWOULDBLOCK) return;
          closeConn(conn);
          return;
        }
        if (r == 0) {
          // EOF. Any in-flight replies have nowhere to go; dropping the
          // connection now makes their completions no-ops.
          closeConn(conn);
          return;
        }
        touch(conn);
        if (conn->mode == Connection::Mode::kUnknown) {
          sniffProtocol(conn, buf, static_cast<std::size_t>(r));
        }
        if (conn->mode == Connection::Mode::kHttp) {
          conn->http_buf.append(buf, static_cast<std::size_t>(r));
          if (!maybeServeHttp(conn)) return;
        } else {
          conn->decoder.feed(buf, static_cast<std::size_t>(r));
          if (!processFrames(conn)) return;
        }
        // Gate full, or a one-shot (HTTP / protocol-error) response is
        // queued: leave the rest unread so it cannot re-trigger
        // handling.
        if (conn->paused) return;
      }
    }

    void sniffProtocol(Connection* conn, const char* data, std::size_t n) {
      // Enough bytes always arrive at once in practice; a frame's first
      // byte is 0x50 ('P'), so a 1-byte "G" prefix is also decisive.
      conn->mode = (n > 0 && data[0] == 'G') ? Connection::Mode::kHttp
                                             : Connection::Mode::kFraming;
    }

    /// Serves the /metrics snapshot once the request head is complete.
    /// False when the connection was closed.
    bool maybeServeHttp(Connection* conn) {
      if (conn->http_buf.find("\r\n\r\n") == std::string::npos &&
          conn->http_buf.find("\n\n") == std::string::npos) {
        if (conn->http_buf.size() > 64 * 1024) {
          closeConn(conn);
          return false;
        }
        return true;
      }
      impl->http_requests.add();
      std::istringstream head(conn->http_buf);
      std::string method, path;
      head >> method >> path;
      std::string body;
      std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
      const char* status_line;
      if (method == "GET" && (path == "/metrics" || path == "/metrics/")) {
        std::ostringstream out;
        impl->writeMetricsText(out);
        body = std::move(out).str();
        status_line = "HTTP/1.0 200 OK";
      } else if (method == "GET" &&
                 (path == "/tenants" || path == "/tenants/")) {
        std::ostringstream out;
        impl->writeTenantsJson(out);
        body = std::move(out).str();
        content_type = "application/json";
        status_line = "HTTP/1.0 200 OK";
      } else if (method == "GET" &&
                 (path == "/healthz" || path == "/healthz/")) {
        // Liveness: answering at all proves this shard's loop turns.
        body = "ok\n";
        status_line = "HTTP/1.0 200 OK";
      } else if (method == "GET" &&
                 (path == "/readyz" || path == "/readyz/")) {
        // Readiness: live AND able to admit a request right now, across
        // every shard (gate and drain state are global). Reported 503 so
        // load balancers need no body parsing.
        const std::size_t in_flight =
            impl->in_flight_.load(std::memory_order_relaxed);
        const bool gate_full = in_flight >= impl->max_in_flight_;
        const bool draining =
            draining_ || impl->stop_requested_.load(std::memory_order_relaxed);
        const bool ready = !draining && !gate_full;
        std::size_t parked = 0;
        for (const auto& shard : impl->shards_) {
          parked += shard->parked_frames_.load(std::memory_order_relaxed);
        }
        std::ostringstream out;
        out << "{\"ready\":" << (ready ? "true" : "false")
            << ",\"draining\":" << (draining ? "true" : "false")
            << ",\"in_flight\":" << in_flight
            << ",\"max_in_flight\":" << impl->max_in_flight_
            << ",\"parked\":" << parked
            << ",\"reactors\":" << impl->num_shards_ << "}\n";
        body = std::move(out).str();
        content_type = "application/json";
        status_line =
            ready ? "HTTP/1.0 200 OK" : "HTTP/1.0 503 Service Unavailable";
      } else {
        body =
            "only GET /metrics, /tenants, /healthz, and /readyz are served "
            "here\n";
        status_line = "HTTP/1.0 404 Not Found";
      }
      conn->out.append(status_line);
      conn->out.append("\r\nContent-Type: " + content_type +
                       "\r\nContent-Length: " + std::to_string(body.size()) +
                       "\r\nConnection: close\r\n\r\n");
      conn->out.append(body);
      conn->closing = true;
      conn->paused = true;
      updateInterest(conn);
      return flushConn(conn);
    }

    /// Decodes and dispatches frames until the buffer runs dry, the
    /// gate pauses the connection, or a protocol error ends it. False
    /// when the connection was closed.
    bool processFrames(Connection* conn) {
      while (!conn->paused && !draining_) {
        Frame frame;
        switch (conn->decoder.next(frame)) {
          case FrameDecoder::Result::kNeedMore:
            return true;
          case FrameDecoder::Result::kError: {
            impl->protocol_errors.add();
            Frame err;
            // v1 layout: the one error frame EVERY decoder vintage
            // parses (the sender's version is unknowable once framing
            // is lost).
            err.version = kVersionLegacy;
            err.type = FrameType::kResponse;
            err.status = Status::kProtocolError;
            err.payload = conn->decoder.error();
            encodeFrame(err, conn->out, impl->config_.max_payload);
            conn->closing = true;
            conn->paused = true;
            updateInterest(conn);
            return flushConn(conn);
          }
          case FrameDecoder::Result::kFrame:
            break;
        }
        if (frame.type != FrameType::kRequest &&
            frame.type != FrameType::kBatchRequest) {
          impl->protocol_errors.add();
          Frame err;
          err.version = frame.version;
          err.type = FrameType::kResponse;
          err.status = Status::kProtocolError;
          err.request_id = frame.request_id;
          err.payload = "expected a request frame";
          encodeFrame(err, conn->out, impl->config_.max_payload);
          conn->closing = true;
          conn->paused = true;
          updateInterest(conn);
          return flushConn(conn);
        }
        impl->frames_received.add();
        if (frame.type == FrameType::kBatchRequest) {
          // Scan the envelope before burning an admission slot: the
          // framing is intact, so a malformed envelope is a content
          // error — answer kFailed and keep the connection alive. The
          // real decode runs in dispatch(); a parked frame keeps the
          // raw (already validated) envelope.
          std::size_t item_count = 0;
          std::string env_err;
          if (!validateBatchRequest(frame.payload, impl->config_.max_payload,
                                    item_count, env_err)) {
            Frame rej;
            rej.version = frame.version;
            rej.type = FrameType::kResponse;
            rej.status = Status::kFailed;
            rej.request_id = frame.request_id;
            rej.tenant = frame.tenant;
            rej.payload = std::move(env_err);
            encodeFrame(rej, conn->out, impl->config_.max_payload);
            impl->responses_sent.add();
            if (!flushConn(conn)) return false;
            continue;
          }
        }
        // Two-stage admission: the global gate first (one shared atomic
        // — the cheaper check, and it caps total work in the service),
        // then the tenant's token bucket and in-flight cap. A denial
        // from either maps onto the same backpressure policy: answer
        // kRejected under kReject, park the frame under kBlock. The
        // gate slot is released if the tenant stage denies.
        const char* deny = nullptr;
        bool tenant_denied = false;
        if (!impl->tryAcquireGate()) {
          deny = "admission gate full";
        } else {
          switch (impl->registry_.tryAdmit(frame.tenant,
                                           impl->nowSeconds())) {
            case tenant::Admission::kAdmit:
              break;
            case tenant::Admission::kQuota:
              deny = "tenant quota exceeded";
              tenant_denied = true;
              break;
            case tenant::Admission::kInFlightCap:
              deny = "tenant in-flight cap reached";
              tenant_denied = true;
              break;
          }
          if (deny != nullptr) impl->releaseGate();
        }
        if (deny != nullptr) {
          if (impl->config_.service.backpressure ==
              service::BackpressurePolicy::kReject) {
            (tenant_denied ? impl->tenant_rejected : impl->gate_rejected)
                .add();
            impl->registry_.recordRejected(frame.tenant);
            Frame rej;
            rej.version = frame.version;
            rej.type = FrameType::kResponse;
            rej.status = Status::kRejected;
            rej.request_id = frame.request_id;
            rej.tenant = frame.tenant;
            rej.payload = deny;
            encodeFrame(rej, conn->out, impl->config_.max_payload);
            if (!flushConn(conn)) return false;
            continue;
          }
          // kBlock: park the frame and stop reading this connection;
          // the unread bytes stay in the kernel buffer and TCP flow
          // control pushes back on the client. resumePaused() retries
          // admission every tick (and whenever a sibling shard frees
          // gate slots) — a gate slot or a refilled token unparks it,
          // and a wire deadline bounds how long the wait may last.
          conn->parked_deadline_s =
              frame.deadline_ms > 0
                  ? impl->nowSeconds() +
                        static_cast<double>(frame.deadline_ms) / 1e3
                  : 0.0;
          conn->parked = std::move(frame);
          conn->paused = true;
          parked_frames_.fetch_add(1, std::memory_order_relaxed);
          updateInterest(conn);
          return true;
        }
        dispatch(conn, std::move(frame));
      }
      return true;
    }

    /// Submits an ALREADY-ADMITTED frame (gate slot held and
    /// registry tryAdmit succeeded) to the service; the paired
    /// registry recordReply runs when the completion drains.
    void dispatch(Connection* conn, Frame frame) {
      // The wire budget (already net of parked time) becomes the
      // service-side budget: spent in the work queue the request
      // answers kExpired, and the remainder tightens the compute
      // CancelToken.
      const double deadline_s =
          frame.deadline_ms > 0
              ? static_cast<double>(frame.deadline_ms) / 1e3
              : 0.0;
      const bool batch = frame.type == FrameType::kBatchRequest;
      auto complete = [shard = this, conn_id = conn->id,
                       request_id = frame.request_id, version = frame.version,
                       tenant = frame.tenant,
                       batch](service::Reply reply) {
        {
          std::lock_guard<std::mutex> lock(shard->completions_mu_);
          shard->completions_.push_back(Completion{
              conn_id, request_id, version, tenant, batch, std::move(reply)});
        }
        shard->impl->signalShard(*shard);
      };
      if (batch) {
        service::BatchRequest request;
        std::vector<BatchItem> items;
        std::string env_err;
        // Validated before admission, so this decode cannot fail; the
        // guard keeps a framing bug from throwing out of the loop.
        if (!decodeBatchRequest(frame.payload, items, env_err)) {
          impl->releaseGate();
          impl->registry_.recordReply(frame.tenant, tenant::Outcome::kFailed,
                                      false, 0.0);
          Frame rej;
          rej.version = frame.version;
          rej.type = FrameType::kResponse;
          rej.status = Status::kFailed;
          rej.request_id = frame.request_id;
          rej.tenant = frame.tenant;
          rej.payload = std::move(env_err);
          encodeFrame(rej, conn->out, impl->config_.max_payload);
          impl->responses_sent.add();
          flushConn(conn);
          return;
        }
        request.items.reserve(items.size());
        for (BatchItem& item : items) {
          service::Payload payload;
          payload.kind = toServiceKind(item.kind);
          payload.bytes = std::move(item.bytes);
          request.items.push_back(std::move(payload));
        }
        request.trace_id = frame.trace_id;
        request.tenant = frame.tenant;
        request.deadline_s = deadline_s;
        ++conn->in_flight;
        ++outstanding_;
        impl->requests_in_flight.set(
            impl->in_flight_.load(std::memory_order_relaxed));
        impl->service_.submitCallback(std::move(request), std::move(complete));
        return;
      }
      service::Request request;
      request.payload.kind = toServiceKind(frame.payload_kind);
      request.payload.bytes = std::move(frame.payload);
      request.trace_id = frame.trace_id;
      request.tenant = frame.tenant;
      request.deadline_s = deadline_s;
      ++conn->in_flight;
      ++outstanding_;
      impl->requests_in_flight.set(
          impl->in_flight_.load(std::memory_order_relaxed));
      impl->service_.submitCallback(std::move(request), std::move(complete));
    }

    void drainCompletions() {
      std::vector<Completion> batch;
      {
        std::lock_guard<std::mutex> lock(completions_mu_);
        batch.swap(completions_);
      }
      if (batch.empty()) return;
      for (Completion& c : batch) {
        impl->releaseGate();
        --outstanding_;
        // Account the reply to its tenant (and release its in-flight
        // slot) even when the connection died — the work was done
        // either way.
        impl->registry_.recordReply(c.tenant, toTenantOutcome(c.reply.status),
                                    c.reply.cache_hit, c.reply.latency_s);
        auto it = conns_by_id_.find(c.conn_id);
        if (it == conns_by_id_.end()) {
          impl->responses_dropped.add();
          continue;
        }
        Connection* conn = it->second;
        --conn->in_flight;
        if (c.reply.status == service::RequestStatus::kExpired) {
          impl->requests_expired.add();
        }
        Frame resp;
        resp.version = c.version;
        resp.tenant = c.tenant;
        resp.status = toWireStatus(c.reply.status);
        resp.request_id = c.request_id;
        resp.trace_id = c.reply.trace_id;
        if (c.batch) {
          // Re-encode the per-item replies as a kBatchResponse
          // envelope, in request order. Failures degrade per item; a
          // whole-batch failure (the oversized downgrade below) is
          // answered as a plain kResponse carrying the error text.
          resp.type = FrameType::kBatchResponse;
          std::vector<BatchItemReply> item_replies;
          item_replies.reserve(c.reply.items.size());
          for (service::Reply& item : c.reply.items) {
            BatchItemReply r;
            r.status = toWireStatus(item.status);
            r.kind = toWireKind(item.output_kind);
            r.payload =
                (item.status == service::RequestStatus::kOk ||
                 item.status == service::RequestStatus::kDegraded)
                    ? std::move(item.output)
                    : (item.error.empty() ? std::string(statusName(r.status))
                                          : std::move(item.error));
            item_replies.push_back(std::move(r));
          }
          resp.payload = encodeBatchResponse(item_replies);
        } else {
          resp.type = FrameType::kResponse;
          resp.payload_kind = toWireKind(c.reply.output_kind);
          resp.payload = (c.reply.status == service::RequestStatus::kOk ||
                          c.reply.status == service::RequestStatus::kDegraded)
                             ? std::move(c.reply.output)
                             : (c.reply.error.empty()
                                    ? std::string(statusName(resp.status))
                                    : std::move(c.reply.error));
        }
        const std::uint32_t cap =
            c.batch ? impl->max_batch_payload_ : impl->config_.max_payload;
        if (resp.payload.size() > cap) {
          // The instrumented output always outgrows its input, so a
          // valid request near the cap can yield an unencodable reply;
          // answer kFailed instead of letting encodeFrame throw out of
          // the loop.
          impl->responses_oversized.add();
          resp.type = FrameType::kResponse;
          resp.payload_kind = PayloadKind::kDagmanText;
          resp.status = Status::kFailed;
          resp.payload = "response of " +
                         std::to_string(resp.payload.size()) +
                         " bytes exceeds the " + std::to_string(cap) +
                         "-byte frame cap";
          if (resp.payload.size() > cap) {
            resp.payload.resize(cap);
          }
        }
        encodeFrame(resp, conn->out, cap);
        impl->responses_sent.add();
        flushConn(conn);
      }
      impl->requests_in_flight.set(
          impl->in_flight_.load(std::memory_order_relaxed));
      // The slots just released may be exactly what a sibling's parked
      // frame is waiting for; don't leave the unpark to the 50ms tick.
      impl->wakeParkedSiblings(this);
    }

    /// Re-opens gated connections whose parked frame now passes
    /// admission: the parked frame dispatches first, then buffered
    /// frames, then socket reads. Checked per connection, not globally
    /// — one tenant stuck on an empty token bucket must not stall other
    /// tenants' connections behind it.
    void resumePaused() {
      // Ids, not iterators: processFrames() can close connections,
      // which erases from the map being walked.
      std::vector<std::uint64_t> paused;
      for (const auto& [fd, conn] : conns_by_fd_) {
        if (conn->paused && !conn->closing) paused.push_back(conn->id);
      }
      for (const std::uint64_t id : paused) {
        auto it = conns_by_id_.find(id);
        if (it == conns_by_id_.end()) continue;
        Connection* conn = it->second;
        if (conn->parked.has_value()) {
          const double now_s = impl->nowSeconds();
          if (conn->parked_deadline_s > 0.0 &&
              now_s >= conn->parked_deadline_s) {
            // The budget died in the parking lot: answer kExpired
            // without admitting (no token burned, no in-flight slot),
            // then resume reading — the connection itself is healthy.
            Frame frame = std::move(*conn->parked);
            conn->parked.reset();
            conn->parked_deadline_s = 0.0;
            parked_frames_.fetch_sub(1, std::memory_order_relaxed);
            impl->requests_expired.add();
            impl->registry_.recordExpired(frame.tenant);
            Frame resp;
            resp.version = frame.version;
            resp.type = FrameType::kResponse;
            resp.status = Status::kExpired;
            resp.request_id = frame.request_id;
            resp.tenant = frame.tenant;
            resp.payload = "deadline expired before admission";
            encodeFrame(resp, conn->out, impl->config_.max_payload);
            impl->responses_sent.add();
            conn->paused = false;
            if (!flushConn(conn)) continue;
            processFrames(conn);
            continue;
          }
          if (!impl->tryAcquireGate()) continue;
          if (impl->registry_.tryAdmit(conn->parked->tenant, now_s) !=
              tenant::Admission::kAdmit) {
            impl->releaseGate();
            continue;  // still over quota / cap; retry next tick
          }
          Frame frame = std::move(*conn->parked);
          conn->parked.reset();
          parked_frames_.fetch_sub(1, std::memory_order_relaxed);
          if (conn->parked_deadline_s > 0.0) {
            // Shrink the budget by the time spent parked, floored at
            // 1 ms so the service still sees (and expires) a nonzero
            // deadline.
            const double remaining_s = conn->parked_deadline_s - now_s;
            frame.deadline_ms = static_cast<std::uint32_t>(
                std::max(1.0, remaining_s * 1e3));
            conn->parked_deadline_s = 0.0;
          }
          dispatch(conn, std::move(frame));
        }
        conn->paused = false;
        updateInterest(conn);
        processFrames(conn);
      }
    }

    /// O(expired): pops connections off the cold end of the LRU list
    /// until one inside the idle window appears. A connection that is
    /// expired but waiting on the server (paused, in-flight reply,
    /// unflushed output) is touched instead of closed — server-side
    /// wait counts as activity, and touching moves it off the cold end
    /// so it is not rescanned this pass.
    void closeIdle() {
      const auto cutoff =
          Clock::now() - std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 impl->config_.idle_timeout_s));
      while (!lru_.empty()) {
        Connection* conn = lru_.front();
        if (!(conn->last_activity < cutoff)) break;
        if (conn->paused || conn->in_flight > 0 || conn->wantWrite()) {
          touch(conn);
          continue;
        }
        impl->connections_idle_closed.add();
        closeConn(conn);
      }
    }

    void beginDrain() {
      draining_ = true;
      drain_deadline_ =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 impl->config_.drain_timeout_s));
      if (listen_fd_.valid()) poller_->remove(listen_fd_.get());
      dropInbox();
      for (auto& [fd, conn] : conns_by_fd_) updateInterest(conn.get());
    }

    [[nodiscard]] bool drainComplete() {
      if (Clock::now() >= drain_deadline_) return true;
      if (outstanding_ != 0) return false;
      {
        std::lock_guard<std::mutex> lock(completions_mu_);
        if (!completions_.empty()) return false;
      }
      for (const auto& [fd, conn] : conns_by_fd_) {
        if (conn->wantWrite()) return false;
      }
      return true;
    }
  };

  explicit Impl(const ServerConfig& config)
      : config_(config),
        connections_accepted(net_registry_.counter("connections_accepted")),
        connections_closed(net_registry_.counter("connections_closed")),
        connections_idle_closed(
            net_registry_.counter("connections_idle_closed")),
        connections_refused(net_registry_.counter("connections_refused")),
        frames_received(net_registry_.counter("frames_received")),
        responses_sent(net_registry_.counter("responses_sent")),
        responses_dropped(net_registry_.counter("responses_dropped")),
        responses_oversized(net_registry_.counter("responses_oversized")),
        protocol_errors(net_registry_.counter("protocol_errors")),
        gate_rejected(net_registry_.counter("gate_rejected")),
        tenant_rejected(net_registry_.counter("tenant_rejected")),
        requests_expired(net_registry_.counter("requests_expired")),
        http_requests(net_registry_.counter("http_requests")),
        wakeups_signaled(net_registry_.counter("wakeups_signaled")),
        wakeups_drained(net_registry_.counter("wakeups_drained")),
        connections_open(net_registry_.gauge("connections_open")),
        requests_in_flight(net_registry_.gauge("requests_in_flight")),
        loop_stall_max_us(net_registry_.gauge("loop_stall_max_us")),
        registry_(config.tenant_defaults),
        service_(withTenantRegistry(config.service, &registry_)) {
    for (const auto& [id, tenant_config] : config_.tenants) {
      registry_.configure(id, tenant_config);
    }
    // Under kBlock the service's submit() blocks on a full queue; keep
    // the gate within the queue capacity so a loop thread never can.
    max_in_flight_ = config_.max_in_flight == 0 ? 1 : config_.max_in_flight;
    if (config_.service.backpressure == service::BackpressurePolicy::kBlock &&
        max_in_flight_ > config_.service.queue_capacity) {
      max_in_flight_ = config_.service.queue_capacity;
    }

    // Batch envelopes may deliberately exceed the single-dag frame cap;
    // 0 defaults to 4x (computed in 64 bits so a near-max cap saturates
    // instead of wrapping).
    max_batch_payload_ = config_.max_batch_payload;
    if (max_batch_payload_ == 0) {
      max_batch_payload_ = static_cast<std::uint32_t>(
          std::min<std::uint64_t>(std::uint64_t{4} * config_.max_payload,
                                  0xffffffffull));
    }

    num_shards_ = resolveReactors(config_.reactors);
    shards_.reserve(num_shards_);
    for (std::size_t i = 0; i < num_shards_; ++i) {
      shards_.push_back(std::make_unique<Shard>(this, i));
    }

    // Listener-per-shard via SO_REUSEPORT when asked and possible;
    // otherwise one listener on shard 0 and the hand-off deal.
    reuseport_ = config_.use_reuseport && num_shards_ > 1;
    if (reuseport_) {
      try {
        shards_[0]->listen_fd_ =
            makeListener(config_.bind_address, config_.port, true);
        bound_port_ = localPort(shards_[0]->listen_fd_.get());
        for (std::size_t i = 1; i < num_shards_; ++i) {
          shards_[i]->listen_fd_ =
              makeListener(config_.bind_address, bound_port_, true);
        }
      } catch (const util::Error&) {
        for (auto& shard : shards_) shard->listen_fd_.reset();
        reuseport_ = false;
      }
    }
    if (!reuseport_) {
      shards_[0]->listen_fd_ =
          makeListener(config_.bind_address, config_.port, false);
      bound_port_ = localPort(shards_[0]->listen_fd_.get());
    }
  }

  // ------------------------------------------------------------- run

  void run() {
    std::vector<std::thread> threads;
    threads.reserve(num_shards_ - 1);
    for (std::size_t i = 1; i < num_shards_; ++i) {
      threads.emplace_back([this, i] { runShard(*shards_[i]); });
    }
    runShard(*shards_[0]);
    for (std::thread& t : threads) t.join();
    connections_open.set(0);
    std::exception_ptr err;
    {
      std::lock_guard<std::mutex> lock(run_error_mu_);
      err = run_error_;
      run_error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }

  void runShard(Shard& shard) {
    try {
      shard.loop();
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(run_error_mu_);
        if (!run_error_) run_error_ = std::current_exception();
      }
      requestStop();  // tear the sibling shards down gracefully
    }
  }

  void requestStop() noexcept {
    stop_requested_.store(true, std::memory_order_relaxed);
    // Async-signal-safe: one non-blocking write per shard on
    // pre-opened fds (plus lock-free counter bumps).
    for (const auto& shard : shards_) signalShard(*shard);
  }

  // ------------------------------------------------------------ gate

  /// Claims one of the max_in_flight_ global gate slots. Lock-free;
  /// called from every shard.
  [[nodiscard]] bool tryAcquireGate() {
    std::size_t cur = in_flight_.load(std::memory_order_relaxed);
    while (cur < max_in_flight_) {
      if (in_flight_.compare_exchange_weak(cur, cur + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  void releaseGate() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }

  void signalShard(Shard& shard) noexcept {
    wakeups_signaled.add();
    shard.wake_.signal();
  }

  void wakeParkedSiblings(Shard* self) {
    if (num_shards_ == 1) return;
    for (const auto& shard : shards_) {
      if (shard.get() == self) continue;
      if (shard->parked_frames_.load(std::memory_order_relaxed) > 0) {
        signalShard(*shard);
      }
    }
  }

  [[nodiscard]] double nowSeconds() const {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  // ------------------------------------------------------ inspection

  /// Registry snapshot with each tenant's live fair-queue depth filled
  /// in (the registry itself never sees queue contents).
  [[nodiscard]] std::vector<tenant::TenantSnapshot> tenantSnapshots() {
    std::vector<tenant::TenantSnapshot> snaps = registry_.snapshot();
    if (const tenant::FairQueue* fq = service_.fairQueue()) {
      for (tenant::TenantSnapshot& s : snaps) s.queued = fq->queuedFor(s.id);
    }
    return snaps;
  }

  void writeMetricsText(std::ostream& out) {
    service_.writePrometheusText(out);
    net_registry_.snapshot().writePrometheus(out, "prio_net_");
    out << "# HELP prio_net_shard_connections Connections adopted per "
           "reactor shard.\n"
           "# TYPE prio_net_shard_connections gauge\n";
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      out << "prio_net_shard_connections{shard=\"" << i << "\"} "
          << shards_[i]->accepted_.load(std::memory_order_relaxed) << "\n";
    }
    tenant::writeTenantsPrometheus(out, tenantSnapshots());
  }

  void writeTenantsJson(std::ostream& out) {
    tenant::writeTenantsJson(out, tenantSnapshots());
  }

  // ------------------------------------------------------------ state

  ServerConfig config_;
  obs::Registry net_registry_;
  obs::Counter& connections_accepted;
  obs::Counter& connections_closed;
  obs::Counter& connections_idle_closed;
  obs::Counter& connections_refused;
  obs::Counter& frames_received;
  obs::Counter& responses_sent;
  obs::Counter& responses_dropped;
  obs::Counter& responses_oversized;
  obs::Counter& protocol_errors;
  obs::Counter& gate_rejected;
  obs::Counter& tenant_rejected;
  obs::Counter& requests_expired;  ///< answered kExpired on the wire
  obs::Counter& http_requests;
  obs::Counter& wakeups_signaled;  ///< signal() calls across all shards
  obs::Counter& wakeups_drained;   ///< drains that consumed >= 1 signal
  obs::Gauge& connections_open;
  obs::Gauge& requests_in_flight;
  /// Event-loop watchdog: the worst observed gap (µs) any shard's loop
  /// spent away from poll — i.e. how long a reply could sit unserved
  /// because a loop thread was busy. Exported as
  /// prio_net_loop_stall_max_us.
  obs::Gauge& loop_stall_max_us;

  std::size_t max_in_flight_ = 1;
  /// Resolved payload cap for kBatchRequest frames (never 0; see
  /// ServerConfig::max_batch_payload).
  std::uint32_t max_batch_payload_ = kMaxPayload;
  std::size_t num_shards_ = 1;
  bool reuseport_ = false;  ///< mode actually in effect after binding
  std::uint16_t bound_port_ = 0;

  /// The global admission gate: requests inside the service across all
  /// shards. Shards acquire with a CAS loop, release per completion.
  std::atomic<std::size_t> in_flight_{0};
  /// Live connections across all shards (including handed-off fds not
  /// yet adopted) — the max_connections reservation counter.
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<bool> stop_requested_{false};

  /// Epoch for the registry's token-bucket clock (monotonic seconds).
  const Clock::time_point epoch_ = Clock::now();

  std::mutex run_error_mu_;
  std::exception_ptr run_error_;

  /// Stable once constructed (unique_ptr contents never move): worker
  /// completion callbacks and requestStop() hold Shard pointers.
  /// Declared before service_ so the shards (and their wakeup fds)
  /// outlive the workers that signal them.
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Tenant policies and accounting (internally synchronized — every
  /// shard admits through it). Declared before (so destroyed after) the
  /// service, whose fair queue reads weights from it until the workers
  /// join.
  tenant::TenantRegistry registry_;
  /// Declared last so it is destroyed first: the destructor joins the
  /// workers while the shards their completion callbacks signal are
  /// still alive.
  service::PrioService service_;
};

Server::Server(const ServerConfig& config)
    : impl_(std::make_unique<Impl>(config)) {}

Server::~Server() = default;

std::uint16_t Server::port() const { return impl_->bound_port_; }

std::size_t Server::reactors() const { return impl_->num_shards_; }

bool Server::usingReuseport() const { return impl_->reuseport_; }

void Server::run() { impl_->run(); }

void Server::requestStop() noexcept { impl_->requestStop(); }

service::PrioService& Server::service() { return impl_->service_; }
const service::PrioService& Server::service() const {
  return impl_->service_;
}

void Server::writeMetricsText(std::ostream& out) {
  impl_->writeMetricsText(out);
}

void Server::writeTenantsJson(std::ostream& out) {
  impl_->writeTenantsJson(out);
}

tenant::TenantRegistry& Server::tenants() { return impl_->registry_; }
const tenant::TenantRegistry& Server::tenants() const {
  return impl_->registry_;
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections_accepted = impl_->connections_accepted.get();
  s.connections_closed = impl_->connections_closed.get();
  s.connections_idle_closed = impl_->connections_idle_closed.get();
  s.connections_refused = impl_->connections_refused.get();
  s.frames_received = impl_->frames_received.get();
  s.responses_sent = impl_->responses_sent.get();
  s.responses_dropped = impl_->responses_dropped.get();
  s.responses_oversized = impl_->responses_oversized.get();
  s.protocol_errors = impl_->protocol_errors.get();
  s.gate_rejected = impl_->gate_rejected.get();
  s.tenant_rejected = impl_->tenant_rejected.get();
  s.requests_expired = impl_->requests_expired.get();
  s.http_requests = impl_->http_requests.get();
  s.wakeups_signaled = impl_->wakeups_signaled.get();
  s.wakeups_drained = impl_->wakeups_drained.get();
  s.loop_stall_max_us = impl_->loop_stall_max_us.get();
  s.shard_connections.reserve(impl_->shards_.size());
  for (const auto& shard : impl_->shards_) {
    s.shard_connections.push_back(
        shard->accepted_.load(std::memory_order_relaxed));
  }
  return s;
}

}  // namespace net
