// Blocking client for the priod wire protocol (net/protocol.h).
//
// One Client owns one TCP connection. send() writes a request frame and
// returns immediately with its request id; receive() blocks for the next
// response frame. Because the two are independent, callers pipeline
// freely: send k requests back to back, then drain k responses and match
// them up by the echoed request id (the server preserves per-connection
// submission order, but matching by id is the contract).
//
// connect() retries refused connections with seeded exponential backoff
// (util/retry.h) — the natural race when a test or script starts the
// server and client concurrently.
//
// Tracing: give ClientOptions a Tracer and every call() runs under a
// client-side "net.request" span whose trace id rides the frame's
// trace_id field; the server adopts it for the request's server-side span
// tree, so one id joins both halves of the distributed trace.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/protocol.h"
#include "obs/trace.h"
#include "util/socket.h"

namespace prio::net {

struct ClientOptions {
  /// Connection attempts before giving up (ECONNREFUSED only; other
  /// errors fail immediately).
  std::uint64_t connect_attempts = 10;
  double backoff_base_s = 0.02;
  double backoff_cap_s = 0.5;
  std::uint64_t backoff_seed = 1;
  /// Optional tracer (borrowed; must outlive the client). Enables the
  /// per-call "net.request" span and wire trace-id propagation.
  obs::Tracer* tracer = nullptr;
  /// Payload cap applied to received frames.
  std::uint32_t max_payload = kMaxPayload;
  /// Payload cap for batch frames in either direction (a batch may
  /// deliberately exceed the single-dag limit). 0 = 4x max_payload —
  /// mirror the server's ServerConfig::max_batch_payload.
  std::uint32_t max_batch_payload = 0;
  /// Tenant id stamped on every request frame (0 = default tenant).
  /// Selects the server-side fair-queue lane, quota, and accounting row
  /// (priod_client --tenant).
  std::uint32_t tenant = 0;
  /// Wall-clock bound on one receive()/fetch (seconds; 0 = wait
  /// forever, the historical behavior). A stalled or dead peer then
  /// costs a TimeoutError instead of an infinite hang — the poll-based
  /// read path behind priod_client --timeout-ms.
  double request_timeout_s = 0.0;
  /// Whole-request deadline stamped on every request frame in
  /// milliseconds (0 = none). Rides the v2 kFlagDeadline field; the
  /// server sheds the request kExpired once the budget is spent.
  std::uint32_t deadline_ms = 0;
};

/// receive()/fetch exceeded ClientOptions::request_timeout_s. Distinct
/// from util::Error so retry layers can tell "peer is slow or dead"
/// (reconnect and replay) from "peer answered garbage" (give up).
class TimeoutError : public util::Error {
 public:
  explicit TimeoutError(const std::string& what) : util::Error(what) {}
};

/// One response, correlated by request id.
struct Response {
  std::uint64_t request_id = 0;
  Status status = Status::kOk;
  /// The server-side trace id (the adopted client id when one was sent).
  std::uint64_t trace_id = 0;
  /// The tenant the request was billed to (echoed; 0 from v1 servers).
  std::uint32_t tenant = 0;
  /// What the payload encodes on kOk/kDegraded: instrumented DAGMan text
  /// or a binary BPRI priority block (always kDagmanText from pre-v3
  /// servers and for error messages).
  PayloadKind kind = PayloadKind::kDagmanText;
  /// True for kBatchResponse frames: the payload is a batch envelope —
  /// read it through result().items rather than directly.
  bool batch = false;
  /// Instrumented output (kOk / kDegraded) or the error message; for
  /// batch responses, the encoded per-item envelope.
  std::string payload;

  /// The typed view of a response: whole-frame status, whether the
  /// payload (or every decoded batch item) is safe to consume, and the
  /// per-item replies for batch responses (in submission order).
  struct Result {
    Status status = Status::kOk;
    /// Single responses: usable when the status is kOk/kDegraded and
    /// the payload is non-empty (a kDegraded reply whose fallback
    /// produced nothing parses as an empty DAGMan file; treating it as
    /// success silently writes empty output — the priod_client
    /// exit-code contract keys on this). Batch responses: usable when
    /// the envelope decoded cleanly; judge each item by its own
    /// BatchItemReply::usable().
    bool usable = false;
    /// Batch responses only: one reply per submitted item, in order.
    std::vector<BatchItemReply> items;
  };
  [[nodiscard]] Result result() const;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
  /// kOk or kDegraded: the payload is a valid instrumented dag.
  [[nodiscard]] bool hasOutput() const {
    return status == Status::kOk || status == Status::kDegraded;
  }
  /// Pre-v3 spelling of result().usable for single text responses.
  [[deprecated("use result().usable")]] [[nodiscard]] bool usableOutput()
      const {
    return hasOutput() && !payload.empty();
  }
};

class Client {
 public:
  explicit Client(ClientOptions options = {});

  /// Connects (with backoff on ECONNREFUSED). Throws util::Error when
  /// every attempt fails. Reconnecting an already-connected client closes
  /// the old connection first.
  void connect(const std::string& host, std::uint16_t port);

  [[nodiscard]] bool connected() const { return fd_.valid(); }
  void close();

  /// Writes one request frame carrying `dag_text`; returns its request
  /// id. `trace_id` nonzero propagates that id to the server. A nonzero
  /// `request_id` overrides the client's own id sequence — the hook a
  /// reconnecting wrapper uses to replay an in-flight request under its
  /// original id so responses still correlate. Stamps
  /// ClientOptions::deadline_ms onto the frame when set. Throws
  /// util::Error on I/O failure.
  std::uint64_t send(const std::string& dag_text, std::uint64_t trace_id = 0,
                     std::uint64_t request_id = 0);

  /// send() for a typed payload: kDagmanText payloads go out exactly
  /// like send() (a v2 frame, so pre-v3 servers interoperate); a
  /// kBinaryCsr payload rides a v3 frame with its kind byte set.
  std::uint64_t sendPayload(PayloadKind kind, const std::string& payload,
                            std::uint64_t trace_id = 0,
                            std::uint64_t request_id = 0);

  /// Encodes `items` as one kBatchRequest envelope (v3) and writes it;
  /// returns the request id correlating the single kBatchResponse that
  /// answers all items. Throws util::Error when the envelope exceeds
  /// the batch payload cap.
  std::uint64_t submitBatch(const std::vector<BatchItem>& items,
                            std::uint64_t trace_id = 0,
                            std::uint64_t request_id = 0);

  /// The raw frame hook underneath send()/sendPayload()/submitBatch():
  /// writes one frame of the given type/kind. Text kRequest frames
  /// encode as v2 (byte-identical to historical clients); anything
  /// needing the kind byte or a batch type encodes as v3. The replay
  /// path of reconnecting wrappers.
  std::uint64_t sendFrame(FrameType type, PayloadKind kind,
                          const std::string& payload,
                          std::uint64_t trace_id = 0,
                          std::uint64_t request_id = 0);

  /// Blocks for the next response frame, at most request_timeout_s when
  /// that is set (TimeoutError past it; the connection is left as-is —
  /// close() or reconnect to discard the half-read stream). Throws
  /// util::Error on protocol violations or a connection closed
  /// mid-response.
  Response receive();

  /// send() + receive() under a "net.request" span when the client has a
  /// tracer (the span's trace id rides the wire). The single-caller
  /// convenience — pipelining callers use send()/receive() directly.
  Response call(const std::string& dag_text);

  /// Fetches the server's plaintext metrics snapshot ("GET /metrics")
  /// over a throwaway connection; returns the body without HTTP headers.
  /// Throws util::Error on connect failure or a non-200 status.
  static std::string fetchMetrics(const std::string& host,
                                  std::uint16_t port,
                                  ClientOptions options = {});

  /// Fetches the live per-tenant JSON document ("GET /tenants") the same
  /// way (priod_client --tenants).
  static std::string fetchTenants(const std::string& host,
                                  std::uint16_t port,
                                  ClientOptions options = {});

  /// Generic one-shot GET against the introspection surface. With
  /// `http_status` null any non-200 throws (like fetchMetrics); with it
  /// non-null the status code is stored and the body returned as-is, so
  /// probes can distinguish a 503 /readyz from a dead server
  /// (priod_client --healthz / --readyz).
  static std::string fetchHttp(const std::string& host, std::uint16_t port,
                               const std::string& path,
                               ClientOptions options = {},
                               int* http_status = nullptr);

 private:
  ClientOptions options_;
  util::UniqueFd fd_;
  FrameDecoder decoder_;
  std::uint64_t next_request_id_ = 1;
};

}  // namespace prio::net
