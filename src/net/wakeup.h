// Cross-thread wakeup for a reactor shard: service workers (and
// requestStop from a signal handler) signal(), the shard's poller waits
// on fd(), the shard loop drain()s.
//
// On Linux this is an eventfd(2): one descriptor instead of a pipe
// pair, and the kernel-side 64-bit counter makes coalescing structural —
// a thousand signal()s between two loop iterations cost one readable
// event and one 8-byte read, never a thousand buffered bytes. Where
// eventfd is unavailable (or creation fails, e.g. fd exhaustion at
// startup on an exotic kernel) the classic self-pipe takes over with
// identical semantics: the pipe buffer saturates at pipe capacity and
// EAGAIN on write just means a wake is already pending.
//
// signal() is async-signal-safe (a single write(2) on a pre-opened fd)
// and never blocks: both fds are non-blocking, and a full counter/pipe
// is exactly the "wake already pending" case.
#pragma once

#include <unistd.h>

#ifdef __linux__
#include <sys/eventfd.h>
#endif

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "util/check.h"
#include "util/socket.h"

namespace prio::net {

class Wakeup {
 public:
  Wakeup() {
#ifdef __linux__
    const int efd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (efd >= 0) {
      event_fd_.reset(efd);
      return;
    }
#endif
    int pipefd[2];
    PRIO_CHECK_MSG(::pipe(pipefd) == 0, "pipe: " << std::strerror(errno));
    pipe_r_.reset(pipefd[0]);
    pipe_w_.reset(pipefd[1]);
    PRIO_CHECK(util::setNonBlocking(pipe_r_.get()));
    PRIO_CHECK(util::setNonBlocking(pipe_w_.get()));
    util::setCloexec(pipe_r_.get());
    util::setCloexec(pipe_w_.get());
  }

  Wakeup(const Wakeup&) = delete;
  Wakeup& operator=(const Wakeup&) = delete;

  /// The descriptor to register for read interest with the poller.
  [[nodiscard]] int fd() const noexcept {
    return event_fd_.valid() ? event_fd_.get() : pipe_r_.get();
  }

  [[nodiscard]] bool usingEventfd() const noexcept {
    return event_fd_.valid();
  }

  /// Wakes the owning loop. Async-signal-safe; EAGAIN (counter or pipe
  /// full) means a wake is already pending, which is success.
  void signal() noexcept {
    if (event_fd_.valid()) {
      const std::uint64_t one = 1;
      (void)!::write(event_fd_.get(), &one, sizeof(one));
      return;
    }
    const char byte = 1;
    (void)!::write(pipe_w_.get(), &byte, 1);
  }

  /// Consumes every pending signal. Returns how many signal() calls were
  /// coalesced into this drain (0 = spurious readiness). Loop-thread
  /// only — uses plain read(2), not the fault-injected helpers, because
  /// wakeups are control plane, not the byte stream under test.
  std::uint64_t drain() noexcept {
    if (event_fd_.valid()) {
      std::uint64_t count = 0;
      long r;
      do {
        r = ::read(event_fd_.get(), &count, sizeof(count));
      } while (r < 0 && errno == EINTR);
      return r == static_cast<long>(sizeof(count)) ? count : 0;
    }
    std::uint64_t total = 0;
    char buf[256];
    for (;;) {
      const long r = ::read(pipe_r_.get(), buf, sizeof(buf));
      if (r > 0) {
        total += static_cast<std::uint64_t>(r);
        continue;
      }
      if (r < 0 && errno == EINTR) continue;
      return total;
    }
  }

 private:
  util::UniqueFd event_fd_;  ///< Linux fast path; invalid on fallback
  util::UniqueFd pipe_r_;
  util::UniqueFd pipe_w_;
};

}  // namespace prio::net
