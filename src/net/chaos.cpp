#include "net/chaos.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <list>
#include <mutex>
#include <string>
#include <vector>

#include "util/check.h"
#include "util/retry.h"
#include "util/socket.h"

namespace prio::net {

namespace {

using Clock = std::chrono::steady_clock;

/// Closes `fd` with SO_LINGER {on, 0} so the kernel sends RST instead of
/// FIN — the "connection died mid-frame" fault.
void closeWithReset(util::UniqueFd& fd) {
  if (!fd.valid()) return;
  struct linger lg {};
  lg.l_onoff = 1;
  lg.l_linger = 0;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  fd.reset();
}

}  // namespace

struct ChaosProxy::Impl {
  /// One relay direction (client->upstream or upstream->client): bytes
  /// read from `src` queue in `pending` until the fault schedule lets
  /// them flush to `dst`.
  struct Direction {
    int src = -1;
    int dst = -1;
    std::string pending;
    /// Earliest time the next chunk may flush (stall injection).
    Clock::time_point release = Clock::time_point::min();
    /// A stall already fired for the chunk at the head of `pending`;
    /// don't draw another before it flushes (delay_prob=1.0 must mean
    /// "one stall per chunk", not a livelock).
    bool stalled = false;
    bool src_eof = false;
    std::uint64_t forwarded = 0;
  };

  struct Conn {
    util::UniqueFd client;
    util::UniqueFd upstream;
    util::SplitMix64 rng;
    Direction up;    // client -> upstream
    Direction down;  // upstream -> client

    explicit Conn(std::uint64_t seed) : rng(seed) {}
  };

  explicit Impl(const ChaosOptions& options) : options_(options) {
    listen_fd_ = util::socketCloexec(AF_INET, SOCK_STREAM, 0);
    PRIO_CHECK_MSG(listen_fd_.valid(), "socket: " << std::strerror(errno));
    const int one = 1;
    ::setsockopt(listen_fd_.get(), SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.listen_port);
    PRIO_CHECK_MSG(::inet_pton(AF_INET, options_.listen_address.c_str(),
                               &addr.sin_addr) == 1,
                   "bad listen address " << options_.listen_address);
    PRIO_CHECK_MSG(::bind(listen_fd_.get(),
                          reinterpret_cast<struct sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                   "chaos bind " << options_.listen_address << ":"
                                 << options_.listen_port << ": "
                                 << std::strerror(errno));
    PRIO_CHECK_MSG(::listen(listen_fd_.get(), 64) == 0,
                   "chaos listen: " << std::strerror(errno));
    PRIO_CHECK(util::setNonBlocking(listen_fd_.get()));

    struct sockaddr_in bound {};
    socklen_t len = sizeof(bound);
    PRIO_CHECK(::getsockname(listen_fd_.get(),
                             reinterpret_cast<struct sockaddr*>(&bound),
                             &len) == 0);
    bound_port_ = ntohs(bound.sin_port);

    int pipefd[2];
    PRIO_CHECK_MSG(::pipe(pipefd) == 0, "pipe: " << std::strerror(errno));
    wake_r_ = util::UniqueFd(pipefd[0]);
    wake_w_ = util::UniqueFd(pipefd[1]);
    PRIO_CHECK(util::setNonBlocking(wake_r_.get()));
    PRIO_CHECK(util::setNonBlocking(wake_w_.get()));
    util::setCloexec(wake_r_.get());
    util::setCloexec(wake_w_.get());
  }

  void run() {
    std::vector<struct pollfd> pfds;
    while (!stop_flag_.load(std::memory_order_acquire)) {
      pfds.clear();
      pfds.push_back({listen_fd_.get(), POLLIN, 0});
      pfds.push_back({wake_r_.get(), POLLIN, 0});
      Clock::time_point earliest = Clock::time_point::max();
      for (Conn& c : conns_) {
        armDirection(c.up, pfds, earliest);
        armDirection(c.down, pfds, earliest);
      }
      int timeout_ms = -1;
      if (earliest != Clock::time_point::max()) {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            earliest - Clock::now());
        timeout_ms = left.count() < 0 ? 0 : static_cast<int>(left.count()) + 1;
      }
      int rc;
      do {
        rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
      } while (rc < 0 && errno == EINTR);
      if (stop_flag_.load(std::memory_order_acquire)) break;

      for (const struct pollfd& p : pfds) {
        if (p.fd == wake_r_.get() && (p.revents & POLLIN) != 0) {
          char buf[64];
          while (::read(wake_r_.get(), buf, sizeof(buf)) > 0) {
          }
        } else if (p.fd == listen_fd_.get() && (p.revents & POLLIN) != 0) {
          acceptAll();
        }
      }
      // Service every connection each tick: readiness is re-derived from
      // the fds directly (a pfd's revents may be stale once a fault
      // closed its connection earlier in the loop).
      for (auto it = conns_.begin(); it != conns_.end();) {
        Conn& c = *it;
        const bool alive = serviceDirection(c, c.up, pfds) &&
                           serviceDirection(c, c.down, pfds);
        if (!alive || finished(c)) {
          it = conns_.erase(it);
        } else {
          ++it;
        }
      }
    }
    conns_.clear();
  }

  void requestStop() noexcept {
    stop_flag_.store(true, std::memory_order_release);
    const char byte = 1;
    [[maybe_unused]] ssize_t w = ::write(wake_w_.get(), &byte, 1);
  }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(stats_mu_);
    return stats_;
  }

 private:
  /// Adds the direction's poll interest: read from src while pending is
  /// small, write to dst when bytes are flushable. Tracks the earliest
  /// stall release for the poll timeout.
  void armDirection(const Direction& d, std::vector<struct pollfd>& pfds,
                    Clock::time_point& earliest) {
    if (d.src >= 0 && !d.src_eof && d.pending.size() < kMaxBuffer) {
      pfds.push_back({d.src, POLLIN, 0});
    }
    if (d.dst >= 0 && !d.pending.empty()) {
      if (d.release > Clock::now()) {
        if (d.release < earliest) earliest = d.release;
      } else {
        pfds.push_back({d.dst, POLLOUT, 0});
      }
    }
  }

  void acceptAll() {
    for (;;) {
      const int raw = ::accept(listen_fd_.get(), nullptr, nullptr);
      if (raw < 0) {
        if (errno == EINTR) continue;
        return;
      }
      util::UniqueFd client(raw);
      util::setCloexec(client.get());
      util::UniqueFd upstream = connectUpstream();
      if (!upstream.valid()) {
        client.reset();  // no upstream: refuse by closing
        continue;
      }
      PRIO_CHECK(util::setNonBlocking(client.get()));
      PRIO_CHECK(util::setNonBlocking(upstream.get()));
      const int one = 1;
      ::setsockopt(client.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      // Derive this connection's private fault stream so one
      // connection's traffic volume never perturbs another's schedule.
      util::SplitMix64 mix(options_.seed ^
                           (0x517cc1b727220a95ULL * (conn_index_ + 1)));
      Conn c(mix.next());
      c.client = std::move(client);
      c.upstream = std::move(upstream);
      c.up.src = c.client.get();
      c.up.dst = c.upstream.get();
      c.down.src = c.upstream.get();
      c.down.dst = c.client.get();
      conns_.push_back(std::move(c));
      ++conn_index_;
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
  }

  util::UniqueFd connectUpstream() {
    util::UniqueFd fd = util::socketCloexec(AF_INET, SOCK_STREAM, 0);
    if (!fd.valid()) return {};
    struct sockaddr_in addr {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options_.upstream_port);
    if (::inet_pton(AF_INET, options_.upstream_host.c_str(), &addr.sin_addr) !=
        1) {
      return {};
    }
    int rc;
    do {
      rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) return {};
    const int one = 1;
    ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return fd;
  }

  /// Pumps one direction: read whatever src has, then flush to dst under
  /// the fault schedule. Returns false when the connection must die
  /// (fault-injected reset/truncation or a real error).
  bool serviceDirection(Conn& c, Direction& d,
                        const std::vector<struct pollfd>& pfds) {
    // Read side.
    if (!d.src_eof && d.pending.size() < kMaxBuffer && readable(d.src, pfds)) {
      char buf[16 * 1024];
      for (;;) {
        const long r = ::read(d.src, buf, sizeof(buf));
        if (r > 0) {
          d.pending.append(buf, static_cast<std::size_t>(r));
          if (d.pending.size() >= kMaxBuffer) break;
          continue;
        }
        if (r == 0) {
          d.src_eof = true;
          break;
        }
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return killConn(c, /*reset=*/false, /*count=*/false);
      }
    }
    // Flush side: always attempted — the descriptors are non-blocking,
    // so an unwritable dst just returns EAGAIN and the next tick arms
    // POLLOUT for it. Gating on last tick's POLLOUT would strand bytes
    // read this tick behind an indefinite poll.
    while (d.dst >= 0 && !d.pending.empty() && d.release <= Clock::now()) {
      // Byte-count faults fire exactly at their configured offset.
      if (options_.reset_after_bytes != 0 &&
          d.forwarded >= options_.reset_after_bytes) {
        return killConn(c, /*reset=*/true, /*count=*/true);
      }
      if (options_.truncate_after_bytes != 0 &&
          d.forwarded >= options_.truncate_after_bytes) {
        bumpTruncations();
        return killConn(c, /*reset=*/false, /*count=*/false);
      }
      // Probabilistic faults, one draw per flush attempt.
      if (options_.reset_prob > 0.0 &&
          c.rng.nextUniform() < options_.reset_prob) {
        return killConn(c, /*reset=*/true, /*count=*/true);
      }
      if (!d.stalled && options_.delay_prob > 0.0 &&
          c.rng.nextUniform() < options_.delay_prob) {
        d.release = Clock::now() + std::chrono::microseconds(static_cast<long>(
                                       options_.delay_s * 1e6));
        d.stalled = true;
        bumpDelays();
        break;
      }
      std::size_t chunk = d.pending.size();
      if (options_.max_chunk != 0 && chunk > options_.max_chunk) {
        chunk = options_.max_chunk;
      }
      if (options_.reset_after_bytes != 0 &&
          d.forwarded + chunk > options_.reset_after_bytes) {
        chunk = options_.reset_after_bytes - d.forwarded;
      }
      if (options_.truncate_after_bytes != 0 &&
          d.forwarded + chunk > options_.truncate_after_bytes) {
        chunk = options_.truncate_after_bytes - d.forwarded;
      }
      // MSG_NOSIGNAL: the destination leg dying mid-relay (the whole
      // point of this proxy) must be an EPIPE we turn into a teardown,
      // not a process-killing SIGPIPE.
      const long w = ::send(d.dst, d.pending.data(), chunk, MSG_NOSIGNAL);
      if (w < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        return killConn(c, /*reset=*/false, /*count=*/false);
      }
      d.pending.erase(0, static_cast<std::size_t>(w));
      d.forwarded += static_cast<std::uint64_t>(w);
      d.stalled = false;  // the stalled chunk flushed; the next may stall
      bumpForwarded(static_cast<std::uint64_t>(w));
      // One mangled write per poll tick keeps chunked output from
      // coalescing in the peer's receive buffer within one burst.
      if (options_.max_chunk != 0) break;
    }
    // Half-close: src saw EOF and everything queued has been relayed.
    if (d.src_eof && d.pending.empty() && d.dst >= 0) {
      ::shutdown(d.dst, SHUT_WR);
      d.dst = -1;
    }
    return true;
  }

  [[nodiscard]] static bool readable(int fd,
                                     const std::vector<struct pollfd>& pfds) {
    for (const struct pollfd& p : pfds) {
      if (p.fd == fd && (p.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        return true;
      }
    }
    return false;
  }

  bool killConn(Conn& c, bool reset, bool count) {
    if (reset) {
      closeWithReset(c.client);
      closeWithReset(c.upstream);
      if (count) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.resets_injected;
      }
    } else {
      c.client.reset();
      c.upstream.reset();
    }
    return false;
  }

  [[nodiscard]] static bool finished(const Conn& c) {
    const bool up_done = c.up.src_eof && c.up.pending.empty();
    const bool down_done = c.down.src_eof && c.down.pending.empty();
    return up_done && down_done;
  }

  void bumpDelays() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.delays_injected;
  }
  void bumpTruncations() {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.truncations_injected;
  }
  void bumpForwarded(std::uint64_t n) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.bytes_forwarded += n;
    ++stats_.chunks_forwarded;
  }

  static constexpr std::size_t kMaxBuffer = 256 * 1024;

  ChaosOptions options_;
  util::UniqueFd listen_fd_;
  util::UniqueFd wake_r_;
  util::UniqueFd wake_w_;
  std::uint16_t bound_port_ = 0;
  std::list<Conn> conns_;
  std::uint64_t conn_index_ = 0;
  std::atomic<bool> stop_flag_{false};
  mutable std::mutex stats_mu_;
  Stats stats_;

  friend class prio::net::ChaosProxy;
};

ChaosProxy::ChaosProxy(const ChaosOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

ChaosProxy::~ChaosProxy() { requestStop(); }

std::uint16_t ChaosProxy::port() const { return impl_->bound_port_; }

void ChaosProxy::run() { impl_->run(); }

void ChaosProxy::requestStop() noexcept { impl_->requestStop(); }

ChaosProxy::Stats ChaosProxy::stats() const { return impl_->stats(); }

}  // namespace prio::net
