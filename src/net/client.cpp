#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/retry.h"

namespace prio::net {

namespace {

/// One blocking connect() to a numeric IPv4 address. Returns an invalid
/// fd with errno set on failure.
util::UniqueFd connectOnce(const std::string& host, std::uint16_t port) {
  util::UniqueFd fd = util::socketCloexec(AF_INET, SOCK_STREAM, 0);
  if (!fd.valid()) return {};
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return {};
  }
  int rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINTR) {
    // A connect interrupted by a signal keeps going asynchronously, and
    // re-calling connect() reports EALREADY rather than the outcome.
    // Wait for writability and harvest the result from SO_ERROR.
    struct pollfd pfd {fd.get(), POLLOUT, 0};
    int pr;
    do {
      pr = ::poll(&pfd, 1, -1);
    } while (pr < 0 && errno == EINTR);
    if (pr <= 0) return {};
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return {};
    }
    if (err != 0) {
      errno = err;
      return {};
    }
    rc = 0;
  }
  if (rc != 0) return {};
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

util::UniqueFd connectWithRetry(const std::string& host, std::uint16_t port,
                                const ClientOptions& options) {
  util::ExpBackoff backoff(options.backoff_base_s, options.backoff_cap_s,
                           options.backoff_seed);
  const std::uint64_t attempts =
      options.connect_attempts == 0 ? 1 : options.connect_attempts;
  for (std::uint64_t attempt = 0;; ++attempt) {
    util::UniqueFd fd = connectOnce(host, port);
    if (fd.valid()) return fd;
    // Only "nobody is listening yet" is worth waiting out.
    const bool retryable = errno == ECONNREFUSED;
    PRIO_CHECK_MSG(retryable && attempt + 1 < attempts,
                   "connect " << host << ":" << port << ": "
                              << std::strerror(errno) << " (attempt "
                              << (attempt + 1) << "/" << attempts << ")");
    std::this_thread::sleep_for(
        std::chrono::duration<double>(backoff.next(attempt)));
  }
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(options), decoder_(options.max_payload) {}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = connectWithRetry(host, port, options_);
}

void Client::close() {
  fd_.reset();
  decoder_ = FrameDecoder(options_.max_payload);
}

std::uint64_t Client::send(const std::string& dag_text,
                           std::uint64_t trace_id) {
  PRIO_CHECK_MSG(fd_.valid(), "client is not connected");
  Frame frame;
  frame.type = FrameType::kRequest;
  frame.request_id = next_request_id_++;
  frame.trace_id = trace_id;
  frame.tenant = options_.tenant;
  frame.payload = dag_text;
  std::string wire;
  encodeFrame(frame, wire, options_.max_payload);
  PRIO_CHECK_MSG(util::writeAll(fd_.get(), wire.data(), wire.size()),
                 "send to priod failed: " << std::strerror(errno));
  return frame.request_id;
}

Response Client::receive() {
  PRIO_CHECK_MSG(fd_.valid(), "client is not connected");
  Frame frame;
  for (;;) {
    switch (decoder_.next(frame)) {
      case FrameDecoder::Result::kFrame: {
        PRIO_CHECK_MSG(frame.type == FrameType::kResponse,
                       "peer sent a request frame to a client");
        Response r;
        r.request_id = frame.request_id;
        r.status = frame.status;
        r.trace_id = frame.trace_id;
        r.tenant = frame.tenant;
        r.payload = std::move(frame.payload);
        return r;
      }
      case FrameDecoder::Result::kError:
        PRIO_CHECK_MSG(false, "protocol error from priod: "
                                  << decoder_.error());
        break;
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    const long r = util::readSome(fd_.get(), buf, sizeof(buf));
    PRIO_CHECK_MSG(r > 0, (r == 0 ? "priod closed the connection mid-response"
                                  : std::strerror(errno)));
    decoder_.feed(buf, static_cast<std::size_t>(r));
  }
}

Response Client::call(const std::string& dag_text) {
  if (options_.tracer == nullptr) {
    send(dag_text);
    return receive();
  }
  const obs::TraceContext trace = options_.tracer->beginTrace();
  obs::Span span(trace, "net.request");
  send(dag_text, trace.traceId());
  return receive();
}

namespace {

/// One throwaway HTTP/1.0 GET against the server's introspection
/// surface; returns the body without headers.
std::string fetchHttp(const std::string& host, std::uint16_t port,
                      const std::string& path, const ClientOptions& options) {
  util::UniqueFd fd = connectWithRetry(host, port, options);
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  PRIO_CHECK_MSG(util::writeAll(fd.get(), request.data(), request.size()),
                 path << " request failed: " << std::strerror(errno));
  std::string response;
  char buf[64 * 1024];
  for (;;) {
    const long r = util::readSome(fd.get(), buf, sizeof(buf));
    PRIO_CHECK_MSG(r >= 0, path << " read failed: " << std::strerror(errno));
    if (r == 0) break;
    response.append(buf, static_cast<std::size_t>(r));
  }
  const std::size_t header_end = response.find("\r\n\r\n");
  PRIO_CHECK_MSG(header_end != std::string::npos,
                 "malformed " << path << " response (no header terminator)");
  const std::string status_line = response.substr(0, response.find("\r\n"));
  PRIO_CHECK_MSG(status_line.find(" 200 ") != std::string::npos,
                 path << " endpoint returned: " << status_line);
  return response.substr(header_end + 4);
}

}  // namespace

std::string Client::fetchMetrics(const std::string& host, std::uint16_t port,
                                 ClientOptions options) {
  return fetchHttp(host, port, "/metrics", options);
}

std::string Client::fetchTenants(const std::string& host, std::uint16_t port,
                                 ClientOptions options) {
  return fetchHttp(host, port, "/tenants", options);
}

}  // namespace prio::net
