#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/retry.h"

namespace prio::net {

namespace {

/// One blocking connect() to a numeric IPv4 address. Returns an invalid
/// fd with errno set on failure.
util::UniqueFd connectOnce(const std::string& host, std::uint16_t port) {
  util::UniqueFd fd = util::socketCloexec(AF_INET, SOCK_STREAM, 0);
  if (!fd.valid()) return {};
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return {};
  }
  int rc = ::connect(fd.get(), reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno == EINTR) {
    // A connect interrupted by a signal keeps going asynchronously, and
    // re-calling connect() reports EALREADY rather than the outcome.
    // Wait for writability and harvest the result from SO_ERROR.
    struct pollfd pfd {fd.get(), POLLOUT, 0};
    int pr;
    do {
      pr = ::poll(&pfd, 1, -1);
    } while (pr < 0 && errno == EINTR);
    if (pr <= 0) return {};
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd.get(), SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
      return {};
    }
    if (err != 0) {
      errno = err;
      return {};
    }
    rc = 0;
  }
  if (rc != 0) return {};
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

util::UniqueFd connectWithRetry(const std::string& host, std::uint16_t port,
                                const ClientOptions& options) {
  util::ExpBackoff backoff(options.backoff_base_s, options.backoff_cap_s,
                           options.backoff_seed);
  const std::uint64_t attempts =
      options.connect_attempts == 0 ? 1 : options.connect_attempts;
  for (std::uint64_t attempt = 0;; ++attempt) {
    util::UniqueFd fd = connectOnce(host, port);
    if (fd.valid()) return fd;
    // Only "nobody is listening yet" is worth waiting out.
    const bool retryable = errno == ECONNREFUSED;
    PRIO_CHECK_MSG(retryable && attempt + 1 < attempts,
                   "connect " << host << ":" << port << ": "
                              << std::strerror(errno) << " (attempt "
                              << (attempt + 1) << "/" << attempts << ")");
    std::this_thread::sleep_for(
        std::chrono::duration<double>(backoff.next(attempt)));
  }
}

/// Reads some bytes, honoring a wall-clock budget measured from `start`
/// (timeout_s <= 0 blocks forever, the historical behavior). Returns
/// bytes read or 0 on EOF; throws TimeoutError when the budget runs out
/// and util::Error on I/O failure.
long readBudgeted(int fd, char* buf, std::size_t n, double timeout_s,
                  std::chrono::steady_clock::time_point start,
                  const char* what) {
  if (timeout_s <= 0.0) {
    const long r = util::readSome(fd, buf, n);
    PRIO_CHECK_MSG(r >= 0, what << " read failed: " << std::strerror(errno));
    return r;
  }
  for (;;) {
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double left = timeout_s - elapsed;
    if (left <= 0.0) {
      throw TimeoutError(std::string(what) + " timed out after " +
                         std::to_string(timeout_s) + "s");
    }
    // Ceil to whole milliseconds so a sub-ms remainder still polls once
    // instead of busy-spinning with timeout 0.
    const int wait_ms = static_cast<int>(
        std::min(left * 1e3 + 1.0, 3600.0 * 1e3));
    const long r = util::readSomeTimed(fd, buf, n, wait_ms);
    if (r == util::kReadTimedOut) continue;  // loop re-checks the budget
    PRIO_CHECK_MSG(r >= 0, what << " read failed: " << std::strerror(errno));
    return r;
  }
}

/// ClientOptions::max_batch_payload with the 0-means-4x default
/// resolved (computed in 64 bits so a near-max cap saturates).
std::uint32_t resolvedBatchCap(const ClientOptions& options) {
  if (options.max_batch_payload != 0) return options.max_batch_payload;
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      std::uint64_t{4} * options.max_payload, 0xffffffffull));
}

}  // namespace

Client::Client(ClientOptions options)
    : options_(options),
      decoder_(options.max_payload, resolvedBatchCap(options)) {}

void Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = connectWithRetry(host, port, options_);
}

void Client::close() {
  fd_.reset();
  decoder_ = FrameDecoder(options_.max_payload, resolvedBatchCap(options_));
}

std::uint64_t Client::send(const std::string& dag_text, std::uint64_t trace_id,
                           std::uint64_t request_id) {
  return sendFrame(FrameType::kRequest, PayloadKind::kDagmanText, dag_text,
                   trace_id, request_id);
}

std::uint64_t Client::sendPayload(PayloadKind kind, const std::string& payload,
                                  std::uint64_t trace_id,
                                  std::uint64_t request_id) {
  return sendFrame(FrameType::kRequest, kind, payload, trace_id, request_id);
}

std::uint64_t Client::submitBatch(const std::vector<BatchItem>& items,
                                  std::uint64_t trace_id,
                                  std::uint64_t request_id) {
  return sendFrame(FrameType::kBatchRequest, PayloadKind::kDagmanText,
                   encodeBatchRequest(items), trace_id, request_id);
}

std::uint64_t Client::sendFrame(FrameType type, PayloadKind kind,
                                const std::string& payload,
                                std::uint64_t trace_id,
                                std::uint64_t request_id) {
  PRIO_CHECK_MSG(fd_.valid(), "client is not connected");
  Frame frame;
  frame.type = type;
  // Text singles stay on the v2 layout so the bytes (and pre-v3 server
  // interop) are unchanged; only frames that need the kind byte or a
  // batch type pay the v3 header.
  const bool needs_v3 =
      type != FrameType::kRequest || kind != PayloadKind::kDagmanText;
  frame.version = needs_v3 ? kVersion3 : kVersion;
  frame.payload_kind = kind;
  frame.request_id = request_id != 0 ? request_id : next_request_id_++;
  frame.trace_id = trace_id;
  frame.tenant = options_.tenant;
  frame.deadline_ms = options_.deadline_ms;
  frame.payload = payload;
  std::string wire;
  encodeFrame(frame, wire,
              type == FrameType::kBatchRequest ? resolvedBatchCap(options_)
                                               : options_.max_payload);
  PRIO_CHECK_MSG(util::writeAll(fd_.get(), wire.data(), wire.size()),
                 "send to priod failed: " << std::strerror(errno));
  return frame.request_id;
}

Response Client::receive() {
  PRIO_CHECK_MSG(fd_.valid(), "client is not connected");
  const auto start = std::chrono::steady_clock::now();
  Frame frame;
  for (;;) {
    switch (decoder_.next(frame)) {
      case FrameDecoder::Result::kFrame: {
        PRIO_CHECK_MSG(frame.type == FrameType::kResponse ||
                           frame.type == FrameType::kBatchResponse,
                       "peer sent a request frame to a client");
        Response r;
        r.request_id = frame.request_id;
        r.status = frame.status;
        r.trace_id = frame.trace_id;
        r.tenant = frame.tenant;
        r.kind = frame.payload_kind;
        r.batch = frame.type == FrameType::kBatchResponse;
        r.payload = std::move(frame.payload);
        return r;
      }
      case FrameDecoder::Result::kError:
        PRIO_CHECK_MSG(false, "protocol error from priod: "
                                  << decoder_.error());
        break;
      case FrameDecoder::Result::kNeedMore:
        break;
    }
    char buf[64 * 1024];
    const long r = readBudgeted(fd_.get(), buf, sizeof(buf),
                                options_.request_timeout_s, start,
                                "priod response");
    PRIO_CHECK_MSG(r > 0, "priod closed the connection mid-response");
    decoder_.feed(buf, static_cast<std::size_t>(r));
  }
}

Response::Result Response::result() const {
  Result r;
  r.status = status;
  if (!batch) {
    r.usable = (status == Status::kOk || status == Status::kDegraded) &&
               !payload.empty();
    return r;
  }
  // A batch frame with a non-kOk whole-frame status carries an error
  // message, not an envelope (the server's oversized downgrade answers
  // a plain kResponse, but stay defensive about the combination).
  if (status != Status::kOk) return r;
  std::string error;
  r.usable = decodeBatchResponse(payload, r.items, error);
  if (!r.usable) r.items.clear();
  return r;
}

Response Client::call(const std::string& dag_text) {
  if (options_.tracer == nullptr) {
    send(dag_text);
    return receive();
  }
  const obs::TraceContext trace = options_.tracer->beginTrace();
  obs::Span span(trace, "net.request");
  send(dag_text, trace.traceId());
  return receive();
}

namespace {

/// One throwaway HTTP/1.0 GET against the server's introspection
/// surface; returns the body without headers. With `http_status` null
/// any non-200 status throws; with it set the code is reported and the
/// body returned regardless.
std::string fetchHttpImpl(const std::string& host, std::uint16_t port,
                          const std::string& path,
                          const ClientOptions& options, int* http_status) {
  util::UniqueFd fd = connectWithRetry(host, port, options);
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  PRIO_CHECK_MSG(util::writeAll(fd.get(), request.data(), request.size()),
                 path << " request failed: " << std::strerror(errno));
  const auto start = std::chrono::steady_clock::now();
  std::string response;
  char buf[64 * 1024];
  for (;;) {
    const long r = readBudgeted(fd.get(), buf, sizeof(buf),
                                options.request_timeout_s, start,
                                path.c_str());
    if (r == 0) break;
    response.append(buf, static_cast<std::size_t>(r));
  }
  const std::size_t header_end = response.find("\r\n\r\n");
  PRIO_CHECK_MSG(header_end != std::string::npos,
                 "malformed " << path << " response (no header terminator)");
  const std::string status_line = response.substr(0, response.find("\r\n"));
  // "HTTP/1.0 200 OK" — the code sits after the first space.
  int code = 0;
  const std::size_t sp = status_line.find(' ');
  if (sp != std::string::npos) {
    code = std::atoi(status_line.c_str() + sp + 1);
  }
  if (http_status != nullptr) {
    *http_status = code;
  } else {
    PRIO_CHECK_MSG(code == 200, path << " endpoint returned: " << status_line);
  }
  return response.substr(header_end + 4);
}

}  // namespace

std::string Client::fetchMetrics(const std::string& host, std::uint16_t port,
                                 ClientOptions options) {
  return fetchHttpImpl(host, port, "/metrics", options, nullptr);
}

std::string Client::fetchTenants(const std::string& host, std::uint16_t port,
                                 ClientOptions options) {
  return fetchHttpImpl(host, port, "/tenants", options, nullptr);
}

std::string Client::fetchHttp(const std::string& host, std::uint16_t port,
                              const std::string& path, ClientOptions options,
                              int* http_status) {
  return fetchHttpImpl(host, port, path, options, http_status);
}

}  // namespace prio::net
