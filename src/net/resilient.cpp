#include "net/resilient.h"

#include <chrono>
#include <thread>
#include <utility>

#include "util/check.h"
#include "util/retry.h"

namespace prio::net {

CircuitBreaker::CircuitBreaker(BreakerOptions options) : options_(options) {
  if (options_.failure_threshold == 0) options_.failure_threshold = 1;
  if (options_.half_open_successes == 0) options_.half_open_successes = 1;
}

bool CircuitBreaker::allow(double now_s) {
  switch (state(now_s)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      return false;
    case State::kHalfOpen:
      if (probe_in_flight_) return false;
      probe_in_flight_ = true;
      return true;
  }
  return false;  // unreachable
}

void CircuitBreaker::recordSuccess(double now_s) {
  switch (state(now_s)) {
    case State::kHalfOpen:
      probe_in_flight_ = false;
      if (++half_open_successes_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
      }
      break;
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kOpen:
      // A straggler from before the trip; the cooldown still applies.
      break;
  }
}

void CircuitBreaker::recordFailure(double now_s) {
  switch (state(now_s)) {
    case State::kHalfOpen:
      // The probe failed: re-open and restart the cooldown.
      probe_in_flight_ = false;
      state_ = State::kOpen;
      opened_at_s_ = now_s;
      ++opened_count_;
      break;
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) {
        state_ = State::kOpen;
        opened_at_s_ = now_s;
        ++opened_count_;
      }
      break;
    case State::kOpen:
      break;
  }
}

CircuitBreaker::State CircuitBreaker::state(double now_s) {
  if (state_ == State::kOpen &&
      now_s - opened_at_s_ >= options_.open_cooldown_s) {
    state_ = State::kHalfOpen;
    probe_in_flight_ = false;
    half_open_successes_ = 0;
  }
  return state_;
}

ResilientClient::ResilientClient(std::string host, std::uint16_t port,
                                 ResilientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(std::move(options)),
      client_(options_.client),
      breaker_(options_.breaker) {}

double ResilientClient::now() const {
  if (options_.now_fn) return options_.now_fn();
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void ResilientClient::checkBreaker() {
  if (breaker_.allow(now())) return;
  ++stats_.fast_failures;
  throw BreakerOpenError("circuit breaker open for " + host_ + ":" +
                         std::to_string(port_) + " (failing fast)");
}

void ResilientClient::recover() {
  util::ExpBackoff backoff(options_.reconnect_backoff_base_s,
                           options_.reconnect_backoff_cap_s,
                           options_.reconnect_seed);
  const std::uint32_t rounds =
      options_.max_reconnects == 0 ? 1 : options_.max_reconnects;
  std::string last_error = "not connected";
  for (std::uint32_t round = 0; round < rounds; ++round) {
    if (round > 0 || reconnect_round_ > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          backoff.next(reconnect_round_ + round)));
    }
    try {
      client_.connect(host_, port_);
      if (ever_connected_) ++stats_.reconnects;
      ever_connected_ = true;
      // Replay every outstanding request under its original id, in
      // submission order. The server treats these as brand-new requests;
      // idempotence (and the result cache) makes that safe.
      for (const auto& [id, pending] : in_flight_) {
        client_.sendFrame(pending.type, pending.kind, pending.payload,
                          /*trace_id=*/0, /*request_id=*/id);
        ++stats_.replays;
      }
      reconnect_round_ = 0;
      breaker_.recordSuccess(now());
      return;
    } catch (const util::Error& e) {
      last_error = e.what();
      client_.close();
    }
  }
  ++reconnect_round_;
  breaker_.recordFailure(now());
  throw util::Error("recovery to " + host_ + ":" + std::to_string(port_) +
                    " failed after " + std::to_string(rounds) +
                    " reconnect rounds: " + last_error);
}

std::uint64_t ResilientClient::submitPending(FrameType type, PayloadKind kind,
                                             std::string payload) {
  checkBreaker();
  if (!client_.connected()) recover();
  const std::uint64_t id = next_id_++;
  // Track before sending: if the write itself dies mid-frame the
  // request is recovered with everything else on the next await().
  const auto it =
      in_flight_.emplace(id, PendingRequest{type, kind, std::move(payload)})
          .first;
  try {
    client_.sendFrame(type, kind, it->second.payload, /*trace_id=*/0,
                      /*request_id=*/id);
  } catch (const util::Error&) {
    client_.close();
    recover();  // replays this request too (or throws)
  }
  return id;
}

std::uint64_t ResilientClient::submit(const std::string& dag_text) {
  return submitPending(FrameType::kRequest, PayloadKind::kDagmanText,
                       dag_text);
}

std::uint64_t ResilientClient::submitPayload(PayloadKind kind,
                                             const std::string& payload) {
  return submitPending(FrameType::kRequest, kind, payload);
}

std::uint64_t ResilientClient::submitBatch(
    const std::vector<BatchItem>& items) {
  return submitPending(FrameType::kBatchRequest, PayloadKind::kDagmanText,
                       encodeBatchRequest(items));
}

Response ResilientClient::await() {
  PRIO_CHECK_MSG(!in_flight_.empty(), "await() with no request in flight");
  const std::uint32_t max_recoveries =
      options_.max_reconnects == 0 ? 1 : options_.max_reconnects;
  std::uint32_t recoveries = 0;
  for (;;) {
    checkBreaker();
    if (!client_.connected()) recover();
    Response r;
    try {
      r = client_.receive();
    } catch (const util::Error&) {
      // Timeout, EOF, ECONNRESET, or a torn frame: the connection is no
      // longer trustworthy. Drop it and recover (which replays). Bounded:
      // an endpoint that accepts connections but never answers (so every
      // recovery "succeeds" and every receive times out) must eventually
      // surface the error to the caller, not spin here forever.
      client_.close();
      if (++recoveries > max_recoveries) {
        breaker_.recordFailure(now());
        throw;
      }
      recover();
      continue;
    }
    const auto it = in_flight_.find(r.request_id);
    // Replies cannot cross connections (the old socket is gone), so an
    // unknown id is a server bug, not a recovery artifact — surface it
    // rather than retrying forever.
    PRIO_CHECK_MSG(it != in_flight_.end(),
                   "response for unknown request id " << r.request_id);
    in_flight_.erase(it);
    breaker_.recordSuccess(now());
    return r;
  }
}

Response ResilientClient::call(const std::string& dag_text) {
  const std::uint64_t id = submit(dag_text);
  for (;;) {
    Response r = await();
    if (r.request_id == id) return r;
    // A response to an older pipelined request: the single-request
    // caller has nowhere to put it, which is a caller contract
    // violation worth failing loudly on.
    throw util::Error("call() received response for pipelined request " +
                      std::to_string(r.request_id) + "; use submit()/await()");
  }
}

}  // namespace prio::net
