// The priod TCP server: a single-threaded, non-blocking event loop that
// exposes a PrioService over the framed wire protocol (net/protocol.h).
//
// Architecture (DESIGN.md §11):
//   - One event-loop thread owns every socket. It accepts connections,
//     decodes request frames, and submits them to the PrioService via
//     submitCallback(); worker threads push completed Replies onto a
//     completion queue and wake the loop through a self-pipe, so replies
//     are serialized back onto their connection without any socket ever
//     being touched from two threads.
//   - Readiness comes from epoll on Linux (level-triggered) with a
//     portable poll(2) backend behind the same interface; ServerConfig::
//     use_epoll=false forces the fallback (both are exercised in tests).
//   - Per-connection state machine: FRAMING connections run the binary
//     protocol; a connection whose first bytes are "GET " flips to HTTP
//     mode and is served one snapshot — "GET /metrics" (plaintext
//     Prometheus), "GET /tenants" (per-tenant JSON), "GET /healthz"
//     (liveness: 200 iff the loop turns), or "GET /readyz" (readiness:
//     503 while draining or with the admission gate saturated) — then
//     closed. Reads and writes are fully buffered — a slow client never
//     blocks the loop.
//   - Admission gate: at most max_in_flight requests may be inside the
//     service at once, mapping the service's backpressure policy onto
//     the socket: under kBlock a full gate pauses reading from the
//     connection (TCP backpressure reaches the client); under kReject
//     the request is answered Status::kRejected immediately. Requests
//     that make it past the gate inherit the service's queue-wait
//     shedding (kShed) and compute-deadline degradation (kDegraded, via
//     the CancelToken armed by ServiceConfig::compute_deadline_s).
//   - Multi-tenant scheduling (DESIGN.md §12): each frame's tenant id is
//     checked against that tenant's token-bucket quota and in-flight cap
//     behind the same gate (same pause-vs-reject mapping), and admitted
//     requests dispatch through the service's deficit-round-robin
//     weighted-fair queue, so one hog tenant cannot starve the rest.
//   - Graceful drain: requestStop() (async-signal-safe; call it from a
//     SIGTERM handler) closes the listener, stops decoding new frames,
//     lets in-flight requests finish and flushes their responses, then
//     returns from run(). drain_timeout_s bounds how long a stuck client
//     can hold the process up.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "service/service.h"
#include "tenant/registry.h"

namespace prio::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the choice back with Server::port().
  std::uint16_t port = 0;
  /// Configuration of the owned PrioService (threads, queue, cache,
  /// deadlines, backpressure policy — which also selects the gate's
  /// pause-vs-reject behaviour).
  service::ServiceConfig service;
  /// Hard cap on simultaneous connections; extras are accepted and
  /// immediately closed.
  std::size_t max_connections = 1024;
  /// Admission gate: requests in flight inside the service across all
  /// connections. Under kBlock backpressure the effective gate is capped
  /// at the service queue capacity so submissions never block the loop.
  std::size_t max_in_flight = 256;
  /// Close connections with no traffic and no pending work for this
  /// long (0 = never).
  double idle_timeout_s = 0.0;
  /// Upper bound on the graceful-drain phase of run().
  double drain_timeout_s = 5.0;
  /// Per-frame payload cap (protocol error beyond it).
  std::uint32_t max_payload = kMaxPayload;
  /// False forces the poll(2) backend even where epoll is available.
  bool use_epoll = true;
  /// Tenant policies installed into the server's registry before
  /// serving: (tenant id, config) pairs — the priod_server --tenant
  /// flag. Tenants not listed here self-register with default policy
  /// (weight 1, no quota) on first request.
  std::vector<std::pair<std::uint32_t, tenant::TenantConfig>> tenants;
  /// Default policy for tenants that self-register (and for tenant 0
  /// unless overridden in `tenants`).
  tenant::TenantConfig tenant_defaults;
};

class Server {
 public:
  /// Binds and listens (throws util::Error on failure) but does not
  /// serve until run().
  explicit Server(const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral choice when config.port was 0).
  [[nodiscard]] std::uint16_t port() const;

  /// Serves until requestStop(); returns after the graceful drain.
  /// Call from exactly one thread.
  void run();

  /// Initiates shutdown. Async-signal-safe and idempotent; callable from
  /// any thread or from a signal handler.
  void requestStop() noexcept;

  /// The backing service (metrics, cache introspection).
  [[nodiscard]] service::PrioService& service();
  [[nodiscard]] const service::PrioService& service() const;

  /// The body of the HTTP /metrics endpoint: the service's Prometheus
  /// snapshot, the server's prio_net_* series, and the per-tenant
  /// prio_tenant_* families.
  void writeMetricsText(std::ostream& out);

  /// The body of the HTTP /tenants endpoint: live per-tenant JSON
  /// (config, queue depth, admission counters, latency quantiles) —
  /// schema `tenants-json` in scripts/bench_check.py.
  void writeTenantsJson(std::ostream& out);

  /// The server-owned tenant registry (policies and accounting). Safe to
  /// read from any thread; configure() before run() to install policies
  /// programmatically.
  [[nodiscard]] tenant::TenantRegistry& tenants();
  [[nodiscard]] const tenant::TenantRegistry& tenants() const;

  /// Server-side counters, readable from any thread.
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t connections_idle_closed = 0;
    std::uint64_t connections_refused = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t responses_dropped = 0;  ///< connection died before reply
    std::uint64_t responses_oversized = 0;  ///< reply downgraded to kFailed
    std::uint64_t protocol_errors = 0;
    std::uint64_t gate_rejected = 0;  ///< admission gate, kReject policy
    std::uint64_t tenant_rejected = 0;  ///< tenant quota / in-flight cap
    std::uint64_t requests_expired = 0;  ///< answered kExpired on the wire
    std::uint64_t http_requests = 0;
    /// Event-loop watchdog: worst observed time (µs) the loop spent away
    /// from poll in one iteration.
    std::uint64_t loop_stall_max_us = 0;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prio::net
