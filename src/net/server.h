// The priod TCP server: N sharded, non-blocking event loops ("reactor
// shards") that expose a PrioService over the framed wire protocol
// (net/protocol.h).
//
// Architecture (DESIGN.md §11 single-loop mechanics, §14 sharding):
//   - Each of the N reactor shards is the single-loop server of §11 in
//     miniature: it owns its sockets exclusively — accepts connections,
//     decodes request frames, submits them to the SHARED PrioService via
//     submitCallback(); worker threads push completed Replies onto the
//     owning shard's completion queue and wake that shard through its
//     eventfd (self-pipe fallback), so replies are serialized back onto
//     their connection without any socket ever being touched from two
//     threads. No connection, buffer, or poller is ever shared between
//     shards.
//   - Connection placement: with SO_REUSEPORT (Linux), every shard binds
//     its own listener on the same address and the kernel spreads the
//     handshakes. Where SO_REUSEPORT is unavailable — or with
//     use_reuseport=false — shard 0 accepts and deals descriptors
//     round-robin to sibling shards' inboxes (deterministic placement,
//     which the tests exploit).
//   - Readiness comes from epoll on Linux (level-triggered) with a
//     portable poll(2) backend behind the same interface, one instance
//     per shard; ServerConfig::use_epoll=false forces the fallback.
//   - Per-connection state machine: FRAMING connections run the binary
//     protocol; a connection whose first bytes are "GET " flips to HTTP
//     mode and is served one snapshot — "GET /metrics" (plaintext
//     Prometheus), "GET /tenants" (per-tenant JSON), "GET /healthz"
//     (liveness), or "GET /readyz" (readiness: 503 while draining or
//     with the admission gate saturated) — then closed. All counters
//     live in one shared lock-free registry, so the snapshot any shard
//     serves aggregates across every shard.
//   - Admission gate: at most max_in_flight requests may be inside the
//     service at once — one atomic shared by all shards, so the cap is
//     global, not per-shard. Under kBlock a full gate pauses reading
//     from the connection (TCP backpressure reaches the client) and the
//     frame parks; a shard that frees gate slots wakes every sibling
//     with parked frames so cross-shard unparks don't wait for the tick.
//     Under kReject the request is answered Status::kRejected. The
//     tenant token-bucket quota and in-flight cap sit behind the same
//     gate (the registry is internally synchronized).
//   - Idle reaping is O(expired), not O(connections): each shard keeps
//     its connections on an intrusive LRU list ordered by last activity
//     and pops from the cold end until it meets a live one.
//   - Graceful drain: requestStop() (async-signal-safe; call it from a
//     SIGTERM handler) wakes every shard; each closes its listener,
//     stops decoding new frames, lets its in-flight requests finish and
//     flushes their responses. run() returns when the last shard
//     finishes draining; drain_timeout_s bounds how long a stuck client
//     can hold any shard up.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "service/service.h"
#include "tenant/registry.h"

namespace prio::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read the choice back with Server::port().
  std::uint16_t port = 0;
  /// Configuration of the owned PrioService (threads, queue, cache,
  /// deadlines, backpressure policy — which also selects the gate's
  /// pause-vs-reject behaviour).
  service::ServiceConfig service;
  /// Reactor shards (event-loop threads). 0 = hardware_concurrency/2,
  /// floored at 1. Each shard owns its connections exclusively.
  std::size_t reactors = 0;
  /// With >1 shard on Linux, bind one SO_REUSEPORT listener per shard so
  /// the kernel spreads connections. False forces the accept-and-hand-
  /// off fallback (shard 0 accepts, deals round-robin — deterministic
  /// placement, used by tests).
  bool use_reuseport = true;
  /// Hard cap on simultaneous connections across all shards; extras are
  /// accepted and immediately closed.
  std::size_t max_connections = 1024;
  /// Admission gate: requests in flight inside the service across all
  /// connections and shards (one shared atomic). Under kBlock
  /// backpressure the effective gate is capped at the service queue
  /// capacity so submissions never block a loop thread.
  std::size_t max_in_flight = 256;
  /// Close connections with no traffic and no pending work for this
  /// long (0 = never).
  double idle_timeout_s = 0.0;
  /// Upper bound on the graceful-drain phase of run().
  double drain_timeout_s = 5.0;
  /// Per-frame payload cap (protocol error beyond it).
  std::uint32_t max_payload = kMaxPayload;
  /// Payload cap for kBatchRequest frames, so a batch can deliberately
  /// exceed the single-dag limit. 0 = 4x max_payload. Each item inside
  /// the envelope is still bounded by max_payload.
  std::uint32_t max_batch_payload = 0;
  /// False forces the poll(2) backend even where epoll is available.
  bool use_epoll = true;
  /// Tenant policies installed into the server's registry before
  /// serving: (tenant id, config) pairs — the priod_server --tenant
  /// flag. Tenants not listed here self-register with default policy
  /// (weight 1, no quota) on first request.
  std::vector<std::pair<std::uint32_t, tenant::TenantConfig>> tenants;
  /// Default policy for tenants that self-register (and for tenant 0
  /// unless overridden in `tenants`).
  tenant::TenantConfig tenant_defaults;
};

class Server {
 public:
  /// Binds and listens (throws util::Error on failure) but does not
  /// serve until run(). With reactors > 1 and use_reuseport, one
  /// listener per shard is bound here (all on the same port).
  explicit Server(const ServerConfig& config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (the ephemeral choice when config.port was 0).
  [[nodiscard]] std::uint16_t port() const;

  /// The number of reactor shards actually serving (the resolved value
  /// of ServerConfig::reactors).
  [[nodiscard]] std::size_t reactors() const;

  /// True when connections are kernel-distributed via SO_REUSEPORT
  /// listeners; false in accept-and-hand-off mode.
  [[nodiscard]] bool usingReuseport() const;

  /// Serves until requestStop(); returns after every shard drains. Call
  /// from exactly one thread — it becomes shard 0 and the remaining
  /// shards run on threads spawned (and joined) inside.
  void run();

  /// Initiates shutdown. Async-signal-safe and idempotent; callable from
  /// any thread or from a signal handler. Wakes every shard.
  void requestStop() noexcept;

  /// The backing service (metrics, cache introspection).
  [[nodiscard]] service::PrioService& service();
  [[nodiscard]] const service::PrioService& service() const;

  /// The body of the HTTP /metrics endpoint: the service's Prometheus
  /// snapshot, the server's prio_net_* series (aggregated across
  /// shards), the per-shard prio_net_shard_connections family, and the
  /// per-tenant prio_tenant_* families.
  void writeMetricsText(std::ostream& out);

  /// The body of the HTTP /tenants endpoint: live per-tenant JSON
  /// (config, queue depth, admission counters, latency quantiles) —
  /// schema `tenants-json` in scripts/bench_check.py.
  void writeTenantsJson(std::ostream& out);

  /// The server-owned tenant registry (policies and accounting). Safe to
  /// read from any thread; configure() before run() to install policies
  /// programmatically.
  [[nodiscard]] tenant::TenantRegistry& tenants();
  [[nodiscard]] const tenant::TenantRegistry& tenants() const;

  /// Server-side counters, readable from any thread. Counter fields
  /// aggregate across every shard.
  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connections_closed = 0;
    std::uint64_t connections_idle_closed = 0;
    std::uint64_t connections_refused = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t responses_dropped = 0;  ///< connection died before reply
    std::uint64_t responses_oversized = 0;  ///< reply downgraded to kFailed
    std::uint64_t protocol_errors = 0;
    std::uint64_t gate_rejected = 0;  ///< admission gate, kReject policy
    std::uint64_t tenant_rejected = 0;  ///< tenant quota / in-flight cap
    std::uint64_t requests_expired = 0;  ///< answered kExpired on the wire
    std::uint64_t http_requests = 0;
    /// Wakeup coalescing: signal() calls issued vs. drains that consumed
    /// at least one. signaled/drained >= 1 is the coalescing ratio the
    /// net bench reports (eventfd makes it structural).
    std::uint64_t wakeups_signaled = 0;
    std::uint64_t wakeups_drained = 0;
    /// Event-loop watchdog: worst observed time (µs) any shard's loop
    /// spent away from poll in one iteration.
    std::uint64_t loop_stall_max_us = 0;
    /// Connections adopted by each shard, indexed by shard. Under
    /// SO_REUSEPORT this is the kernel's distribution; in hand-off mode
    /// it is the round-robin deal.
    std::vector<std::uint64_t> shard_connections;
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace prio::net
