#include "net/protocol.h"

#include <cstring>

#include "util/check.h"

namespace prio::net {

namespace {

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void putU64(std::string& out, std::uint64_t v) {
  putU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  putU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t getU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t getU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(getU32(p)) |
         (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

}  // namespace

const char* statusName(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kDegraded: return "degraded";
    case Status::kRejected: return "rejected";
    case Status::kShed: return "shed";
    case Status::kFailed: return "failed";
    case Status::kProtocolError: return "protocol_error";
    case Status::kExpired: return "expired";
  }
  return "unknown";
}

void encodeFrame(const Frame& frame, std::string& out,
                 std::uint32_t max_payload) {
  PRIO_CHECK_MSG(frame.payload.size() <= max_payload,
                 "frame payload " << frame.payload.size()
                                  << " bytes exceeds the " << max_payload
                                  << "-byte cap");
  PRIO_CHECK_MSG(
      frame.version == kVersion || frame.version == kVersionLegacy,
      "cannot encode unknown protocol version "
          << static_cast<int>(frame.version));
  // A v1 frame has no tenant field; silently dropping a nonzero tenant
  // would mis-bill the request, so it is a caller bug. Same for the
  // deadline: a v1 peer would treat the budget bytes as payload.
  PRIO_CHECK_MSG(frame.version == kVersion || frame.tenant == 0,
                 "a v1 frame cannot carry tenant " << frame.tenant);
  PRIO_CHECK_MSG(frame.version == kVersion || frame.deadline_ms == 0,
                 "a v1 frame cannot carry a deadline");
  PRIO_CHECK_MSG((frame.flags & ~kKnownFlags) == 0,
                 "reserved flag bits set: " << static_cast<int>(frame.flags));
  const std::uint8_t flags =
      frame.deadline_ms > 0 ? kFlagDeadline : std::uint8_t{0};
  out.reserve(out.size() + headerSizeOf(frame.version) +
              (flags & kFlagDeadline ? 4 : 0) + frame.payload.size());
  putU32(out, kMagic);
  out.push_back(static_cast<char>(frame.version));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.status));
  out.push_back(static_cast<char>(flags));
  putU64(out, frame.request_id);
  putU64(out, frame.trace_id);
  if (frame.version == kVersion) putU32(out, frame.tenant);
  putU32(out, static_cast<std::uint32_t>(frame.payload.size()));
  if (flags & kFlagDeadline) putU32(out, frame.deadline_ms);
  out.append(frame.payload);
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  // Compact the consumed prefix before it dominates the buffer; amortized
  // O(1) per byte.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  if (failed_) return Result::kError;
  // The first 28 bytes are common to both versions (v2 appends tenant_id
  // before payload_len), so the fixed fields validate before the
  // version-dependent tail is even buffered.
  if (buf_.size() - pos_ < kHeaderSizeV1) return Result::kNeedMore;

  const auto* h = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::uint32_t magic = getU32(h);
  if (magic != kMagic) {
    failed_ = true;
    error_ = "bad magic";
    return Result::kError;
  }
  const std::uint8_t version = h[4];
  if (version != kVersion && version != kVersionLegacy) {
    failed_ = true;
    error_ = "unsupported protocol version " + std::to_string(version);
    return Result::kError;
  }
  const std::uint8_t type = h[5];
  if (type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      type != static_cast<std::uint8_t>(FrameType::kResponse)) {
    failed_ = true;
    error_ = "unknown frame type " + std::to_string(type);
    return Result::kError;
  }
  const std::uint8_t status = h[6];
  if (status > static_cast<std::uint8_t>(Status::kExpired)) {
    failed_ = true;
    error_ = "unknown status " + std::to_string(status);
    return Result::kError;
  }
  const std::uint8_t flags = h[7];
  if ((flags & ~kKnownFlags) != 0) {
    failed_ = true;
    error_ = "nonzero reserved flags";
    return Result::kError;
  }
  if (version == kVersionLegacy && flags != 0) {
    // v1 predates every flag; an old peer setting bits is corruption.
    failed_ = true;
    error_ = "v1 frame with flags set";
    return Result::kError;
  }
  const std::size_t header_size = headerSizeOf(version);
  if (buf_.size() - pos_ < header_size) return Result::kNeedMore;
  // The length is validated BEFORE waiting for the payload, so a corrupt
  // prefix fails fast instead of stalling the connection forever.
  const std::uint32_t len =
      getU32(h + (version == kVersionLegacy ? 24 : 28));
  if (len > max_payload_) {
    failed_ = true;
    error_ = "payload of " + std::to_string(len) + " bytes exceeds the " +
             std::to_string(max_payload_) + "-byte cap";
    return Result::kError;
  }
  const std::size_t extra = (flags & kFlagDeadline) ? 4 : 0;
  if (buf_.size() - pos_ < header_size + extra + len) return Result::kNeedMore;

  out.version = version;
  out.type = static_cast<FrameType>(type);
  out.status = static_cast<Status>(status);
  out.flags = flags;
  out.request_id = getU64(h + 8);
  out.trace_id = getU64(h + 16);
  out.tenant = version == kVersionLegacy ? 0 : getU32(h + 24);
  out.deadline_ms = (flags & kFlagDeadline) ? getU32(h + header_size) : 0;
  out.payload.assign(buf_, pos_ + header_size + extra, len);
  pos_ += header_size + extra + len;
  return Result::kFrame;
}

}  // namespace prio::net
