#include "net/protocol.h"

#include <cstring>

#include "util/check.h"

namespace prio::net {

namespace {

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

void putU64(std::string& out, std::uint64_t v) {
  putU32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  putU32(out, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t getU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t getU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(getU32(p)) |
         (static_cast<std::uint64_t>(getU32(p + 4)) << 32);
}

}  // namespace

const char* statusName(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kDegraded: return "degraded";
    case Status::kRejected: return "rejected";
    case Status::kShed: return "shed";
    case Status::kFailed: return "failed";
    case Status::kProtocolError: return "protocol_error";
    case Status::kExpired: return "expired";
  }
  return "unknown";
}

void encodeFrame(const Frame& frame, std::string& out,
                 std::uint32_t max_payload) {
  PRIO_CHECK_MSG(frame.payload.size() <= max_payload,
                 "frame payload " << frame.payload.size()
                                  << " bytes exceeds the " << max_payload
                                  << "-byte cap");
  PRIO_CHECK_MSG(
      frame.version == kVersion || frame.version == kVersionLegacy ||
          frame.version == kVersion3,
      "cannot encode unknown protocol version "
          << static_cast<int>(frame.version));
  // A v1 frame has no tenant field; silently dropping a nonzero tenant
  // would mis-bill the request, so it is a caller bug. Same for the
  // deadline: a v1 peer would treat the budget bytes as payload.
  PRIO_CHECK_MSG(frame.version != kVersionLegacy || frame.tenant == 0,
                 "a v1 frame cannot carry tenant " << frame.tenant);
  PRIO_CHECK_MSG(frame.version != kVersionLegacy || frame.deadline_ms == 0,
                 "a v1 frame cannot carry a deadline");
  // payload_kind and the batch frame types are v3 additions; an older
  // peer would misread the header, so encoding them pre-v3 is a caller
  // bug, not a silent downgrade.
  PRIO_CHECK_MSG(frame.version == kVersion3 ||
                     frame.payload_kind == PayloadKind::kDagmanText,
                 "a pre-v3 frame cannot carry payload kind "
                     << static_cast<int>(frame.payload_kind));
  const bool batch = frame.type == FrameType::kBatchRequest ||
                     frame.type == FrameType::kBatchResponse;
  PRIO_CHECK_MSG(frame.version == kVersion3 || !batch,
                 "a pre-v3 frame cannot carry a batch");
  PRIO_CHECK_MSG(static_cast<std::uint8_t>(frame.payload_kind) <=
                     kMaxPayloadKind,
                 "unknown payload kind "
                     << static_cast<int>(frame.payload_kind));
  PRIO_CHECK_MSG((frame.flags & ~kKnownFlags) == 0,
                 "reserved flag bits set: " << static_cast<int>(frame.flags));
  const std::uint8_t flags =
      frame.deadline_ms > 0 ? kFlagDeadline : std::uint8_t{0};
  out.reserve(out.size() + headerSizeOf(frame.version) +
              (flags & kFlagDeadline ? 4 : 0) + frame.payload.size());
  putU32(out, kMagic);
  out.push_back(static_cast<char>(frame.version));
  out.push_back(static_cast<char>(frame.type));
  out.push_back(static_cast<char>(frame.status));
  out.push_back(static_cast<char>(flags));
  putU64(out, frame.request_id);
  putU64(out, frame.trace_id);
  if (frame.version != kVersionLegacy) putU32(out, frame.tenant);
  if (frame.version == kVersion3) {
    out.push_back(static_cast<char>(frame.payload_kind));
    out.append(3, '\0');  // reserved
  }
  putU32(out, static_cast<std::uint32_t>(frame.payload.size()));
  if (flags & kFlagDeadline) putU32(out, frame.deadline_ms);
  out.append(frame.payload);
}

void FrameDecoder::feed(const char* data, std::size_t n) {
  // Compact the consumed prefix before it dominates the buffer; amortized
  // O(1) per byte.
  if (pos_ > 4096 && pos_ * 2 > buf_.size()) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(data, n);
}

FrameDecoder::Result FrameDecoder::next(Frame& out) {
  if (failed_) return Result::kError;
  // The first 28 bytes are common to all versions (v2 appends tenant_id,
  // v3 additionally payload_kind, before payload_len), so the fixed
  // fields validate before the version-dependent tail is even buffered.
  if (buf_.size() - pos_ < kHeaderSizeV1) return Result::kNeedMore;

  const auto* h = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::uint32_t magic = getU32(h);
  if (magic != kMagic) {
    failed_ = true;
    error_ = "bad magic";
    return Result::kError;
  }
  const std::uint8_t version = h[4];
  if (version != kVersion && version != kVersionLegacy &&
      version != kVersion3) {
    failed_ = true;
    error_ = "unsupported protocol version " + std::to_string(version);
    return Result::kError;
  }
  const std::uint8_t type = h[5];
  if (type < static_cast<std::uint8_t>(FrameType::kRequest) ||
      type > static_cast<std::uint8_t>(FrameType::kBatchResponse)) {
    failed_ = true;
    error_ = "unknown frame type " + std::to_string(type);
    return Result::kError;
  }
  const bool batch =
      type == static_cast<std::uint8_t>(FrameType::kBatchRequest) ||
      type == static_cast<std::uint8_t>(FrameType::kBatchResponse);
  if (batch && version != kVersion3) {
    failed_ = true;
    error_ = "batch frame on protocol version " + std::to_string(version);
    return Result::kError;
  }
  const std::uint8_t status = h[6];
  if (status > static_cast<std::uint8_t>(Status::kExpired)) {
    failed_ = true;
    error_ = "unknown status " + std::to_string(status);
    return Result::kError;
  }
  const std::uint8_t flags = h[7];
  if ((flags & ~kKnownFlags) != 0) {
    failed_ = true;
    error_ = "nonzero reserved flags";
    return Result::kError;
  }
  if (version == kVersionLegacy && flags != 0) {
    // v1 predates every flag; an old peer setting bits is corruption.
    failed_ = true;
    error_ = "v1 frame with flags set";
    return Result::kError;
  }
  const std::size_t header_size = headerSizeOf(version);
  if (buf_.size() - pos_ < header_size) return Result::kNeedMore;
  std::uint8_t kind = 0;
  if (version == kVersion3) {
    kind = h[28];
    if (kind > kMaxPayloadKind) {
      failed_ = true;
      error_ = "unknown payload kind " + std::to_string(kind);
      return Result::kError;
    }
    if (h[29] != 0 || h[30] != 0 || h[31] != 0) {
      failed_ = true;
      error_ = "nonzero reserved header bytes";
      return Result::kError;
    }
  }
  // The length is validated BEFORE waiting for the payload, so a corrupt
  // prefix fails fast instead of stalling the connection forever. Batch
  // frames get their own cap — the type byte was read above, so the
  // right limit gates the right frames.
  const std::uint32_t len = getU32(h + header_size - 4);
  const std::uint32_t cap = batch ? max_batch_payload_ : max_payload_;
  if (len > cap) {
    failed_ = true;
    error_ = "payload of " + std::to_string(len) + " bytes exceeds the " +
             std::to_string(cap) + "-byte cap";
    return Result::kError;
  }
  const std::size_t extra = (flags & kFlagDeadline) ? 4 : 0;
  if (buf_.size() - pos_ < header_size + extra + len) return Result::kNeedMore;

  out.version = version;
  out.type = static_cast<FrameType>(type);
  out.status = static_cast<Status>(status);
  out.flags = flags;
  out.request_id = getU64(h + 8);
  out.trace_id = getU64(h + 16);
  out.tenant = version == kVersionLegacy ? 0 : getU32(h + 24);
  out.payload_kind = static_cast<PayloadKind>(kind);
  out.deadline_ms = (flags & kFlagDeadline) ? getU32(h + header_size) : 0;
  out.payload.assign(buf_, pos_ + header_size + extra, len);
  pos_ += header_size + extra + len;
  return Result::kFrame;
}

namespace {

/// Shared walk over a batch envelope. `item_header` is the per-item
/// prefix before the u32 length (1 byte kind on requests; status + kind
/// on responses). Calls `emit(p, item_header_bytes, len)` per item with
/// `p` at the item start. Returns false + error on any structural
/// violation; never throws.
template <typename Emit>
bool walkBatch(const std::string& payload, std::size_t item_header,
               std::string& error, Emit&& emit) {
  const auto* base = reinterpret_cast<const unsigned char*>(payload.data());
  if (payload.size() < 4) {
    error = "batch envelope truncated before count";
    return false;
  }
  const std::uint32_t count = getU32(base);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    if (payload.size() - off < item_header + 4) {
      error = "batch item " + std::to_string(i) + " truncated";
      return false;
    }
    const std::uint32_t len = getU32(base + off + item_header);
    if (payload.size() - off - item_header - 4 < len) {
      error = "batch item " + std::to_string(i) + " truncated";
      return false;
    }
    if (!emit(base + off, i, len)) return false;
    off += item_header + 4 + len;
  }
  if (off != payload.size()) {
    error = "trailing bytes after " + std::to_string(count) + " batch items";
    return false;
  }
  return true;
}

}  // namespace

std::string encodeBatchRequest(const std::vector<BatchItem>& items) {
  std::size_t total = 4;
  for (const BatchItem& item : items) total += 5 + item.bytes.size();
  std::string out;
  out.reserve(total);
  putU32(out, static_cast<std::uint32_t>(items.size()));
  for (const BatchItem& item : items) {
    out.push_back(static_cast<char>(item.kind));
    putU32(out, static_cast<std::uint32_t>(item.bytes.size()));
    out.append(item.bytes);
  }
  return out;
}

bool decodeBatchRequest(const std::string& payload,
                        std::vector<BatchItem>& out, std::string& error) {
  out.clear();
  return walkBatch(
      payload, 1, error,
      [&](const unsigned char* p, std::uint32_t i, std::uint32_t len) {
        if (p[0] > kMaxPayloadKind) {
          error = "batch item " + std::to_string(i) +
                  " has unknown payload kind " + std::to_string(p[0]);
          return false;
        }
        BatchItem item;
        item.kind = static_cast<PayloadKind>(p[0]);
        item.bytes.assign(reinterpret_cast<const char*>(p + 5), len);
        out.push_back(std::move(item));
        return true;
      });
}

bool validateBatchRequest(const std::string& payload,
                          std::uint32_t max_item_payload, std::size_t& count,
                          std::string& error) {
  count = 0;
  return walkBatch(
      payload, 1, error,
      [&](const unsigned char* p, std::uint32_t i, std::uint32_t len) {
        if (p[0] > kMaxPayloadKind) {
          error = "batch item " + std::to_string(i) +
                  " has unknown payload kind " + std::to_string(p[0]);
          return false;
        }
        if (len > max_item_payload) {
          error = "batch item " + std::to_string(i) + " of " +
                  std::to_string(len) + " bytes exceeds the " +
                  std::to_string(max_item_payload) + "-byte item cap";
          return false;
        }
        ++count;
        return true;
      });
}

std::string encodeBatchResponse(const std::vector<BatchItemReply>& items) {
  std::size_t total = 4;
  for (const BatchItemReply& item : items) total += 6 + item.payload.size();
  std::string out;
  out.reserve(total);
  putU32(out, static_cast<std::uint32_t>(items.size()));
  for (const BatchItemReply& item : items) {
    out.push_back(static_cast<char>(item.status));
    out.push_back(static_cast<char>(item.kind));
    putU32(out, static_cast<std::uint32_t>(item.payload.size()));
    out.append(item.payload);
  }
  return out;
}

bool decodeBatchResponse(const std::string& payload,
                         std::vector<BatchItemReply>& out,
                         std::string& error) {
  out.clear();
  return walkBatch(
      payload, 2, error,
      [&](const unsigned char* p, std::uint32_t i, std::uint32_t len) {
        if (p[0] > static_cast<std::uint8_t>(Status::kExpired)) {
          error = "batch item " + std::to_string(i) +
                  " has unknown status " + std::to_string(p[0]);
          return false;
        }
        if (p[1] > kMaxPayloadKind) {
          error = "batch item " + std::to_string(i) +
                  " has unknown payload kind " + std::to_string(p[1]);
          return false;
        }
        BatchItemReply item;
        item.status = static_cast<Status>(p[0]);
        item.kind = static_cast<PayloadKind>(p[1]);
        item.payload.assign(reinterpret_cast<const char*>(p + 6), len);
        out.push_back(std::move(item));
        return true;
      });
}

}  // namespace prio::net
