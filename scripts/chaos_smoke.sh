#!/usr/bin/env bash
# Chaos/recovery smoke for the fault-tolerant serving stack (DESIGN.md
# §13), in two parts.
#
# Part 1 — liveness and resilient-client flags against a live
# priod_server: probes GET /healthz and /readyz through priod_client,
# pushes a workload through --retry --timeout-ms --deadline-ms and
# asserts the output is byte-identical to offline prio_tool, then
# points the client at a listener that never answers and asserts
# --timeout-ms produces a prompt "timed out" diagnostic instead of an
# infinite hang.
#
# Part 2 — crash/recovery bench: runs bench_chaos_recovery (which
# SIGKILLs its own priod_server child mid-load, restarts it on the same
# port, and drives traffic through the deterministic seeded chaos
# proxy), validates BENCH_chaos.json against the chaos-json schema
# (wrong_answers == 0, unanswered == 0, recovery_s < 2 s), and gates it
# against bench/baselines/BENCH_chaos_baseline.json.
#
# Usage: chaos_smoke.sh <workdir>
# Binaries come from $PRIOD_SERVER/$PRIOD_CLIENT/$PRIO_TOOL/
# $GENERATE_WORKLOADS/$BENCH_CHAOS (set by the example_chaos_smoke
# ctest / CI), with build/* fallbacks for manual runs.
set -euo pipefail

out="${1:?usage: chaos_smoke.sh <workdir>}"
script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
: "${PRIOD_SERVER:=build/examples/priod_server}"
: "${PRIOD_CLIENT:=build/examples/priod_client}"
: "${PRIO_TOOL:=build/examples/prio_tool}"
: "${GENERATE_WORKLOADS:=build/examples/generate_workloads}"
: "${BENCH_CHAOS:=build/bench/bench_chaos_recovery}"

# The bench runs inside $out, so every binary path must be absolute.
abspath() { echo "$(cd "$(dirname "$1")" && pwd)/$(basename "$1")"; }
PRIOD_SERVER="$(abspath "$PRIOD_SERVER")"
PRIOD_CLIENT="$(abspath "$PRIOD_CLIENT")"
PRIO_TOOL="$(abspath "$PRIO_TOOL")"
GENERATE_WORKLOADS="$(abspath "$GENERATE_WORKLOADS")"
BENCH_CHAOS="$(abspath "$BENCH_CHAOS")"

rm -rf "$out"
mkdir -p "$out"

"$GENERATE_WORKLOADS" "$out/workloads" > /dev/null
"$PRIO_TOOL" "$out/workloads/airsn.dag" "$out/expected_airsn.dag" > /dev/null

"$PRIOD_SERVER" --port 0 --port-file "$out/port" --threads 2 --reactors 4 \
  > "$out/server.log" 2>&1 &
server_pid=$!
mute_pid=""
cleanup() {
  kill "$server_pid" 2> /dev/null || true
  [ -n "$mute_pid" ] && kill "$mute_pid" 2> /dev/null || true
}
trap cleanup EXIT

for _ in $(seq 1 100); do
  [ -s "$out/port" ] && break
  kill -0 "$server_pid" 2> /dev/null || {
    echo "chaos_smoke: server died at startup:" >&2
    cat "$out/server.log" >&2
    exit 1
  }
  sleep 0.1
done
[ -s "$out/port" ] || { echo "chaos_smoke: server never wrote its port" >&2; exit 1; }

# Liveness endpoints answer while the server is healthy and idle.
"$PRIOD_CLIENT" --port-file "$out/port" --healthz | tee "$out/healthz.log"
grep -q ": 200" "$out/healthz.log" || {
  echo "chaos_smoke: /healthz did not answer 200" >&2
  exit 1
}
"$PRIOD_CLIENT" --port-file "$out/port" --readyz | tee "$out/readyz.log"
grep -q ": 200" "$out/readyz.log" || {
  echo "chaos_smoke: /readyz did not answer 200 on an idle server" >&2
  exit 1
}
echo "chaos_smoke: /healthz and /readyz answer 200"

# The resilient path (timeout + deadline + retry) must not change the
# paper's bytes: same output as offline prio_tool.
mkdir -p "$out/got"
"$PRIOD_CLIENT" --port-file "$out/port" --retry --timeout-ms 5000 \
  --deadline-ms 30000 --out "$out/got" "$out/workloads/airsn.dag"
cmp "$out/expected_airsn.dag" "$out/got/airsn.dag" || {
  echo "chaos_smoke: airsn.dag differs between prio_tool and --retry wire path" >&2
  exit 1
}
echo "chaos_smoke: --retry --timeout-ms --deadline-ms path byte-identical to prio_tool"

kill -TERM "$server_pid"
wait "$server_pid" || {
  echo "chaos_smoke: server exited nonzero after SIGTERM" >&2
  exit 1
}

# A peer that accepts but never answers: --timeout-ms must surface a
# "timed out" diagnostic promptly instead of hanging forever. The
# listener's accept queue completes the TCP handshake without any
# application ever reading, which is exactly the pathological peer.
python3 - "$out/mute_port" << 'EOF' &
import socket, sys, time
s = socket.socket()
s.bind(("127.0.0.1", 0))
s.listen(8)
with open(sys.argv[1], "w") as f:
    f.write(str(s.getsockname()[1]))
time.sleep(60)
EOF
mute_pid=$!
for _ in $(seq 1 100); do
  [ -s "$out/mute_port" ] && break
  sleep 0.1
done
if timeout 20 "$PRIOD_CLIENT" --port-file "$out/mute_port" --timeout-ms 300 \
    "$out/workloads/airsn.dag" > "$out/timeout.log" 2>&1; then
  echo "chaos_smoke: expected the mute-peer request to fail" >&2
  cat "$out/timeout.log" >&2
  exit 1
fi
grep -qi "timed out" "$out/timeout.log" || {
  echo "chaos_smoke: mute-peer failure is not a timeout diagnostic:" >&2
  cat "$out/timeout.log" >&2
  exit 1
}
kill "$mute_pid" 2> /dev/null || true
mute_pid=""
echo "chaos_smoke: --timeout-ms turns a mute peer into a prompt diagnostic"

# Part 2: the crash/recovery bench (spawns + SIGKILLs + restarts its
# own server; traffic goes through the seeded chaos proxy).
(
  cd "$out"
  PRIO_BENCH_CHAOS_SMOKE="${PRIO_BENCH_CHAOS_SMOKE:-1}" \
  PRIO_BENCH_CHAOS_SEED="${PRIO_BENCH_CHAOS_SEED:-1}" \
  PRIOD_SERVER="$PRIOD_SERVER" "$BENCH_CHAOS"
)
python3 "$script_dir/bench_check.py" --schema chaos-json "$out/BENCH_chaos.json"
python3 "$script_dir/bench_check.py" "$out/BENCH_chaos.json" \
  "$script_dir/../bench/baselines/BENCH_chaos_baseline.json"

trap - EXIT
echo "chaos_smoke: ok"
