#!/usr/bin/env bash
# Loopback end-to-end smoke test for the TCP serving layer (src/net/).
#
# Starts priod_server on an ephemeral loopback port with 4 reactor
# shards (--reactors 4: the multi-reactor path, SO_REUSEPORT where
# available), pushes the four paper workloads (AIRSN, Inspiral, Montage,
# SDSS) through priod_client in one pipelined connection, and asserts
# each response is BYTE-IDENTICAL to what the offline prio_tool writes
# for the same input — the wire path must not change the paper's output. Then drives two
# tenants concurrently (--tenant 1 / --tenant 2) and asserts the live
# GET /tenants document reports both with the right admitted counts,
# validates it against the tenants-json schema, validates the live
# GET /metrics endpoint against the Prometheus exposition schema, and
# checks the server drains cleanly on SIGTERM (exit 0).
#
# Usage: net_smoke.sh <workdir>
# Binaries come from $PRIOD_SERVER/$PRIOD_CLIENT/$PRIO_TOOL/
# $GENERATE_WORKLOADS (set by the example_net_smoke ctest / CI), with
# build/examples/* fallbacks for manual runs.
set -euo pipefail

out="${1:?usage: net_smoke.sh <workdir>}"
script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
: "${PRIOD_SERVER:=build/examples/priod_server}"
: "${PRIOD_CLIENT:=build/examples/priod_client}"
: "${PRIO_TOOL:=build/examples/prio_tool}"
: "${GENERATE_WORKLOADS:=build/examples/generate_workloads}"

rm -rf "$out"
mkdir -p "$out/expected" "$out/got"

"$GENERATE_WORKLOADS" "$out/workloads" > /dev/null

workloads=(airsn inspiral montage sdss)
for w in "${workloads[@]}"; do
  "$PRIO_TOOL" "$out/workloads/$w.dag" "$out/expected/$w.dag" > /dev/null
done

"$PRIOD_SERVER" --port 0 --port-file "$out/port" --threads 4 --reactors 4 \
  --tenant 1:3 --tenant 2:1 \
  --metrics-out "$out/metrics_final.prom" > "$out/server.log" 2>&1 &
server_pid=$!
cleanup() { kill "$server_pid" 2> /dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  [ -s "$out/port" ] && break
  kill -0 "$server_pid" 2> /dev/null || {
    echo "net_smoke: server died at startup:" >&2
    cat "$out/server.log" >&2
    exit 1
  }
  sleep 0.1
done
[ -s "$out/port" ] || { echo "net_smoke: server never wrote its port" >&2; exit 1; }

inputs=()
for w in "${workloads[@]}"; do inputs+=("$out/workloads/$w.dag"); done
"$PRIOD_CLIENT" --port-file "$out/port" --out "$out/got" "${inputs[@]}"

for w in "${workloads[@]}"; do
  cmp "$out/expected/$w.dag" "$out/got/$w.dag" || {
    echo "net_smoke: $w.dag differs between prio_tool and the wire path" >&2
    exit 1
  }
done
echo "net_smoke: all ${#workloads[@]} workloads byte-identical to prio_tool"

# Two tenants in concurrent connections; each bills its own requests.
"$PRIOD_CLIENT" --port-file "$out/port" --tenant 1 \
  "$out/workloads/airsn.dag" "$out/workloads/montage.dag" \
  "$out/workloads/sdss.dag" > /dev/null &
tenant1_pid=$!
"$PRIOD_CLIENT" --port-file "$out/port" --tenant 2 \
  "$out/workloads/inspiral.dag" > /dev/null
wait "$tenant1_pid"

"$PRIOD_CLIENT" --port-file "$out/port" --tenants > "$out/tenants.json"
python3 "$script_dir/bench_check.py" --schema tenants-json "$out/tenants.json"
python3 - "$out/tenants.json" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
by_id = {t["id"]: t for t in doc["tenants"]}
# Tenant 0 carried the initial 4-workload parity batch; tenants 1 and 2
# billed 3 and 1 requests in the concurrent phase.
expected = {0: 4, 1: 3, 2: 1}
for tid, admitted in expected.items():
    assert tid in by_id, f"tenant {tid} missing from /tenants: {by_id}"
    got = by_id[tid]["admitted"]
    assert got == admitted, f"tenant {tid}: admitted {got}, expected {admitted}"
    assert by_id[tid]["completed"] == admitted, by_id[tid]
assert by_id[1]["weight"] == 3, by_id[1]
assert by_id[2]["weight"] == 1, by_id[2]
print("net_smoke: /tenants reports all %d tenants with correct counts"
      % len(expected))
EOF

# Binary payloads and batching (protocol v3): the same workloads through
# the typed wire path — single binary frames, then one kBatchRequest
# carrying all four dags — must stay byte-identical to prio_tool too.
mkdir -p "$out/got_bin" "$out/got_batch"
"$PRIOD_CLIENT" --port-file "$out/port" --binary --out "$out/got_bin" \
  "${inputs[@]}"
"$PRIOD_CLIENT" --port-file "$out/port" --binary --batch 4 \
  --out "$out/got_batch" "${inputs[@]}"
for w in "${workloads[@]}"; do
  cmp "$out/expected/$w.dag" "$out/got_bin/$w.dag" || {
    echo "net_smoke: $w.dag differs over binary payloads" >&2
    exit 1
  }
  cmp "$out/expected/$w.dag" "$out/got_batch/$w.dag" || {
    echo "net_smoke: $w.dag differs over batched binary payloads" >&2
    exit 1
  }
done
echo "net_smoke: binary and batched responses byte-identical to prio_tool"

"$PRIOD_CLIENT" --port-file "$out/port" --metrics > "$out/metrics_live.prom"
python3 "$script_dir/bench_check.py" --schema prometheus "$out/metrics_live.prom"
grep -q 'prio_tenant_admitted_total{tenant="1"' "$out/metrics_live.prom" || {
  echo "net_smoke: /metrics lacks the prio_tenant_* families" >&2
  exit 1
}
# The typed-payload counters must be live (8 binary requests billed: the
# four --binary singles plus four batch items), and the parse-cache
# family must be exported.
for fam in prio_binary_requests prio_batch_items prio_parse_cache_hits; do
  grep -q "^$fam" "$out/metrics_live.prom" || {
    echo "net_smoke: /metrics lacks the $fam family" >&2
    exit 1
  }
done
# All 4 reactor shards must show up in the per-shard connection gauge.
grep -q 'prio_net_shard_connections{shard="3"}' "$out/metrics_live.prom" || {
  echo "net_smoke: /metrics lacks prio_net_shard_connections for shard 3" >&2
  exit 1
}

kill -TERM "$server_pid"
wait "$server_pid" || {
  echo "net_smoke: server exited nonzero after SIGTERM" >&2
  exit 1
}
trap - EXIT
echo "net_smoke: graceful drain ok"
