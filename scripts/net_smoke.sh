#!/usr/bin/env bash
# Loopback end-to-end smoke test for the TCP serving layer (src/net/).
#
# Starts priod_server on an ephemeral loopback port, pushes the four
# paper workloads (AIRSN, Inspiral, Montage, SDSS) through priod_client
# in one pipelined connection, and asserts each response is BYTE-
# IDENTICAL to what the offline prio_tool writes for the same input —
# the wire path must not change the paper's output. Then validates the
# live GET /metrics endpoint against the Prometheus exposition schema
# and checks the server drains cleanly on SIGTERM (exit 0).
#
# Usage: net_smoke.sh <workdir>
# Binaries come from $PRIOD_SERVER/$PRIOD_CLIENT/$PRIO_TOOL/
# $GENERATE_WORKLOADS (set by the example_net_smoke ctest / CI), with
# build/examples/* fallbacks for manual runs.
set -euo pipefail

out="${1:?usage: net_smoke.sh <workdir>}"
script_dir="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
: "${PRIOD_SERVER:=build/examples/priod_server}"
: "${PRIOD_CLIENT:=build/examples/priod_client}"
: "${PRIO_TOOL:=build/examples/prio_tool}"
: "${GENERATE_WORKLOADS:=build/examples/generate_workloads}"

rm -rf "$out"
mkdir -p "$out/expected" "$out/got"

"$GENERATE_WORKLOADS" "$out/workloads" > /dev/null

workloads=(airsn inspiral montage sdss)
for w in "${workloads[@]}"; do
  "$PRIO_TOOL" "$out/workloads/$w.dag" "$out/expected/$w.dag" > /dev/null
done

"$PRIOD_SERVER" --port 0 --port-file "$out/port" --threads 4 \
  --metrics-out "$out/metrics_final.prom" > "$out/server.log" 2>&1 &
server_pid=$!
cleanup() { kill "$server_pid" 2> /dev/null || true; }
trap cleanup EXIT

for _ in $(seq 1 100); do
  [ -s "$out/port" ] && break
  kill -0 "$server_pid" 2> /dev/null || {
    echo "net_smoke: server died at startup:" >&2
    cat "$out/server.log" >&2
    exit 1
  }
  sleep 0.1
done
[ -s "$out/port" ] || { echo "net_smoke: server never wrote its port" >&2; exit 1; }

inputs=()
for w in "${workloads[@]}"; do inputs+=("$out/workloads/$w.dag"); done
"$PRIOD_CLIENT" --port-file "$out/port" --out "$out/got" "${inputs[@]}"

for w in "${workloads[@]}"; do
  cmp "$out/expected/$w.dag" "$out/got/$w.dag" || {
    echo "net_smoke: $w.dag differs between prio_tool and the wire path" >&2
    exit 1
  }
done
echo "net_smoke: all ${#workloads[@]} workloads byte-identical to prio_tool"

"$PRIOD_CLIENT" --port-file "$out/port" --metrics > "$out/metrics_live.prom"
python3 "$script_dir/bench_check.py" --schema prometheus "$out/metrics_live.prom"

kill -TERM "$server_pid"
wait "$server_pid" || {
  echo "net_smoke: server exited nonzero after SIGTERM" >&2
  exit 1
}
trap - EXIT
echo "net_smoke: graceful drain ok"
