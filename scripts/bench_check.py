#!/usr/bin/env python3
"""Gate a benchmark run against a committed baseline.

Compares the flat "metrics" dict of a bench JSON (e.g. BENCH_core.json
written by bench_core_hotpath) against a baseline file of the form

    {
      "default_tolerance": 0.15,
      "metrics": {
        "parity_failures": {"value": 0, "better": "lower", "tolerance": 0},
        "sdss.edges_per_s@t1": {"value": 1.2e6, "better": "higher",
                                 "tolerance": 0.5},
        ...
      }
    }

A metric regresses when it moves in the "worse" direction by more than
`tolerance` (relative; absolute when the baseline value is 0). Baseline
metrics missing from the run are skipped with a warning — machine-
dependent metrics (thread speedups on boxes with fewer cores, full-scale
workloads in smoke runs) are expected to be absent sometimes. Run metrics
missing from the baseline are reported informationally and never fail.

Usage:
    bench_check.py RUN.json BASELINE.json            # gate, exit 1 on regression
    bench_check.py RUN.json BASELINE.json --update   # rewrite baseline values
                                                     # from the run (keeps
                                                     # tolerances/directions)
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def check(run, baseline):
    run_metrics = run.get("metrics", {})
    default_tol = baseline.get("default_tolerance", 0.15)
    failures = []
    skipped = []
    for name, spec in baseline.get("metrics", {}).items():
        if name not in run_metrics:
            skipped.append(name)
            continue
        base = float(spec["value"])
        got = float(run_metrics[name])
        better = spec.get("better", "lower")
        tol = float(spec.get("tolerance", default_tol))
        if base == 0.0:
            # Relative drift is undefined at 0; treat tolerance as absolute.
            worse = got - base if better == "lower" else base - got
            regressed = worse > tol
            drift = worse
        else:
            drift = (got - base) / abs(base)
            if better == "higher":
                drift = -drift
            regressed = drift > tol
        status = "REGRESSED" if regressed else "ok"
        print(f"  {status:9s} {name}: run={got:g} baseline={base:g} "
              f"(worse-direction drift {drift:+.1%}, tolerance {tol:.0%})"
              if base != 0.0 else
              f"  {status:9s} {name}: run={got:g} baseline={base:g} "
              f"(absolute drift {drift:+g}, tolerance {tol:g})")
        if regressed:
            failures.append(name)
    for name in skipped:
        print(f"  skipped   {name}: not in this run "
              f"(machine- or scale-dependent)")
    extra = sorted(set(run_metrics) - set(baseline.get("metrics", {})))
    for name in extra:
        print(f"  unbaselined {name}: run={run_metrics[name]:g}")
    return failures


def update(run, baseline):
    run_metrics = run.get("metrics", {})
    for name, spec in baseline.get("metrics", {}).items():
        if name in run_metrics:
            spec["value"] = run_metrics[name]
    return baseline


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run")
    parser.add_argument("baseline")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline values from the run")
    args = parser.parse_args()

    run = load(args.run)
    baseline = load(args.baseline)

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(update(run, baseline), f, indent=2)
            f.write("\n")
        print(f"updated {args.baseline} from {args.run}")
        return 0

    print(f"bench_check: {args.run} vs {args.baseline}")
    failures = check(run, baseline)
    if failures:
        print(f"bench_check: {len(failures)} metric(s) regressed: "
              + ", ".join(failures))
        return 1
    print("bench_check: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
