#!/usr/bin/env python3
"""Gate a benchmark run against a committed baseline.

Compares the flat "metrics" dict of a bench JSON (e.g. BENCH_core.json
written by bench_core_hotpath) against a baseline file of the form

    {
      "default_tolerance": 0.15,
      "metrics": {
        "parity_failures": {"value": 0, "better": "lower", "tolerance": 0},
        "sdss.edges_per_s@t1": {"value": 1.2e6, "better": "higher",
                                 "tolerance": 0.5},
        ...
      }
    }

A metric regresses when it moves in the "worse" direction by more than
`tolerance` (relative; absolute when the baseline value is 0). Baseline
metrics missing from the run are skipped with a warning — machine-
dependent metrics (thread speedups on boxes with fewer cores, full-scale
workloads in smoke runs) are expected to be absent sometimes. A spec may
carry "required_if_hw_ge": N to close that escape hatch on big machines:
when the run JSON's top-level "hardware_concurrency" is >= N, an absent
metric FAILS the gate instead of skipping (a bench that silently stopped
sweeping its high-concurrency points would otherwise pass forever). Run
metrics missing from the baseline are reported informationally and never
fail.

Also validates observability exports against their wire schema, so CI
catches a renamed counter or a malformed Prometheus exposition before a
dashboard does:

    bench_check.py --schema metrics-json metrics.json
    bench_check.py --schema prometheus metrics.prom
    bench_check.py --schema tenants-json tenants.json
    bench_check.py --schema chaos-json BENCH_chaos.json

Usage:
    bench_check.py RUN.json BASELINE.json            # gate, exit 1 on regression
    bench_check.py RUN.json BASELINE.json --update   # rewrite baseline values
                                                     # from the run (keeps
                                                     # tolerances/directions)
    bench_check.py --schema {metrics-json,prometheus,tenants-json,chaos-json} FILE
"""

import argparse
import json
import re
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def check(run, baseline):
    run_metrics = run.get("metrics", {})
    hw = run.get("hardware_concurrency")
    default_tol = baseline.get("default_tolerance", 0.15)
    failures = []
    skipped = []
    for name, spec in baseline.get("metrics", {}).items():
        if name not in run_metrics:
            need_hw = spec.get("required_if_hw_ge")
            if need_hw is not None and is_number(hw) and hw >= need_hw:
                print(f"  MISSING   {name}: absent from this run but "
                      f"required on machines with >= {need_hw:g} hardware "
                      f"threads (run reports {hw:g})")
                failures.append(name)
            else:
                skipped.append(name)
            continue
        base = float(spec["value"])
        got = float(run_metrics[name])
        better = spec.get("better", "lower")
        tol = float(spec.get("tolerance", default_tol))
        if base == 0.0:
            # Relative drift is undefined at 0; treat tolerance as absolute.
            worse = got - base if better == "lower" else base - got
            regressed = worse > tol
            drift = worse
        else:
            drift = (got - base) / abs(base)
            if better == "higher":
                drift = -drift
            regressed = drift > tol
        status = "REGRESSED" if regressed else "ok"
        print(f"  {status:9s} {name}: run={got:g} baseline={base:g} "
              f"(worse-direction drift {drift:+.1%}, tolerance {tol:.0%})"
              if base != 0.0 else
              f"  {status:9s} {name}: run={got:g} baseline={base:g} "
              f"(absolute drift {drift:+g}, tolerance {tol:g})")
        if regressed:
            failures.append(name)
    for name in skipped:
        print(f"  skipped   {name}: not in this run "
              f"(machine- or scale-dependent)")
    extra = sorted(set(run_metrics) - set(baseline.get("metrics", {})))
    for name in extra:
        print(f"  unbaselined {name}: run={run_metrics[name]:g}")
    return failures


def update(run, baseline):
    run_metrics = run.get("metrics", {})
    for name, spec in baseline.get("metrics", {}).items():
        if name in run_metrics:
            spec["value"] = run_metrics[name]
    return baseline


# --------------------------------------------------------------- schemas

# Counters/gauges the service's metrics.json must carry (writeJson in
# src/service/metrics.cpp renders these in a fixed order).
METRICS_JSON_SCALARS = [
    "requests_submitted", "requests_completed", "requests_rejected",
    "requests_failed", "requests_degraded", "requests_deadline_exceeded",
    "requests_shed", "requests_expired", "retries", "cache_hits",
    "cache_misses", "cache_hit_rate", "text_cache_hits", "parse_cache_hits",
    "fingerprint_aliases", "binary_requests", "batch_items",
    "queue_high_water",
]
METRICS_JSON_HISTOGRAMS = [
    "latency_total", "latency_cache_hit", "phase_parse", "phase_reduce",
    "phase_decompose", "phase_recurse", "phase_combine",
]
HISTOGRAM_FIELDS = ["count", "mean_s", "p50_s", "p99_s", "max_s"]

# Metric families the Prometheus dump must expose (histogram ids carry the
# unit suffix per Prometheus naming conventions).
PROMETHEUS_FAMILIES = {
    "prio_requests_submitted": "counter",
    "prio_requests_completed": "counter",
    "prio_cache_hits": "counter",
    "prio_cache_misses": "counter",
    "prio_queue_high_water": "gauge",
    "prio_latency_total_seconds": "histogram",
    "prio_phase_reduce_seconds": "histogram",
}


def is_number(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


def check_metrics_json(path):
    doc = load(path)
    errors = []
    if not isinstance(doc, dict):
        return [f"top level is {type(doc).__name__}, expected a JSON object"]
    # Accept both shapes: the bare ServiceMetrics snapshot and prio_serve's
    # wrapped report ({"wall_s":..,"service":{"metrics":{...}}}).
    wrapped = doc.get("service", {})
    if isinstance(wrapped, dict) and isinstance(wrapped.get("metrics"), dict):
        doc = wrapped["metrics"]
    for key in METRICS_JSON_SCALARS:
        if key not in doc:
            errors.append(f"missing scalar {key!r}")
        elif not is_number(doc[key]) or doc[key] < 0:
            errors.append(f"scalar {key!r} is {doc[key]!r}, "
                          "expected a non-negative number")
    if is_number(doc.get("cache_hit_rate")) and doc["cache_hit_rate"] > 1:
        errors.append(f"cache_hit_rate {doc['cache_hit_rate']} > 1")
    for key in METRICS_JSON_HISTOGRAMS:
        h = doc.get(key)
        if not isinstance(h, dict):
            errors.append(f"missing histogram object {key!r}")
            continue
        for field in HISTOGRAM_FIELDS:
            if not is_number(h.get(field)) or h[field] < 0:
                errors.append(f"histogram {key!r} field {field!r} is "
                              f"{h.get(field)!r}, expected a non-negative "
                              "number")
    return errors


# Per-tenant fields the GET /tenants document must carry for every
# tenant (writeTenantsJson in src/tenant/registry.cpp).
TENANTS_JSON_COUNTERS = [
    "weight", "rate_per_s", "burst", "max_in_flight", "tokens", "queued",
    "in_flight", "admitted", "rejected", "shed", "expired", "completed",
    "degraded", "failed", "cache_hits", "cache_misses", "cache_hit_rate",
    "latency_count", "latency_mean_s", "latency_p50_s", "latency_p99_s",
    "latency_max_s",
]


def check_tenants_json(path):
    doc = load(path)
    errors = []
    if not isinstance(doc, dict):
        return [f"top level is {type(doc).__name__}, expected a JSON object"]
    tenants = doc.get("tenants")
    if not isinstance(tenants, list):
        return ["missing 'tenants' array"]
    if not tenants:
        errors.append("'tenants' array is empty (the default tenant "
                      "always exists)")
    seen_ids = set()
    for i, t in enumerate(tenants):
        if not isinstance(t, dict):
            errors.append(f"tenants[{i}] is {type(t).__name__}, "
                          "expected an object")
            continue
        tid = t.get("id")
        if not is_number(tid) or tid < 0 or tid != int(tid):
            errors.append(f"tenants[{i}].id is {tid!r}, expected a "
                          "non-negative integer")
        elif tid in seen_ids:
            errors.append(f"duplicate tenant id {int(tid)}")
        else:
            seen_ids.add(tid)
        if not isinstance(t.get("name"), str) or not t.get("name"):
            errors.append(f"tenants[{i}].name is {t.get('name')!r}, "
                          "expected a non-empty string")
        for key in TENANTS_JSON_COUNTERS:
            if not is_number(t.get(key)) or t[key] < 0:
                errors.append(f"tenants[{i}].{key} is {t.get(key)!r}, "
                              "expected a non-negative number")
        if is_number(t.get("cache_hit_rate")) and t["cache_hit_rate"] > 1:
            errors.append(f"tenants[{i}].cache_hit_rate "
                          f"{t['cache_hit_rate']} > 1")
        if (is_number(t.get("completed")) and is_number(t.get("admitted"))
                and t["completed"] > t["admitted"]):
            errors.append(f"tenants[{i}]: completed {t['completed']:g} > "
                          f"admitted {t['admitted']:g}")
    if 0 not in seen_ids:
        errors.append("default tenant (id 0) absent")
    return errors


# Metrics the chaos-recovery bench must report (bench_chaos_recovery.cpp).
# The zero-valued ones are correctness invariants, not perf numbers: a chaos
# run that returns a wrong answer or leaves a request unanswered is a bug no
# tolerance should paper over, so the schema check enforces them directly.
CHAOS_JSON_REQUIRED = [
    "chaos.requests", "chaos.wrong_answers", "chaos.unanswered",
    "chaos.reconnects", "chaos.replays", "chaos.recovery_s",
]
CHAOS_RECOVERY_BUDGET_S = 2.0


def check_chaos_json(path):
    doc = load(path)
    errors = []
    if not isinstance(doc, dict):
        return [f"top level is {type(doc).__name__}, expected a JSON object"]
    if doc.get("bench") != "chaos_recovery":
        errors.append(f"'bench' is {doc.get('bench')!r}, "
                      "expected 'chaos_recovery'")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return errors + ["missing 'metrics' object"]
    for key in CHAOS_JSON_REQUIRED:
        if key not in metrics:
            errors.append(f"missing metric {key!r}")
        elif not is_number(metrics[key]) or metrics[key] < 0:
            errors.append(f"metric {key!r} is {metrics[key]!r}, "
                          "expected a non-negative number")
    for key in ("chaos.wrong_answers", "chaos.unanswered"):
        if is_number(metrics.get(key)) and metrics[key] != 0:
            errors.append(f"{key} is {metrics[key]:g}, must be exactly 0")
    if is_number(metrics.get("chaos.requests")) and metrics["chaos.requests"] <= 0:
        errors.append("chaos.requests is 0 — the bench drove no traffic")
    recovery = metrics.get("chaos.recovery_s")
    if is_number(recovery) and recovery >= CHAOS_RECOVERY_BUDGET_S:
        errors.append(f"chaos.recovery_s {recovery:g} >= "
                      f"{CHAOS_RECOVERY_BUDGET_S:g}s recovery budget")
    return errors


def check_prometheus(path):
    with open(path) as f:
        text = f.read()
    errors = []
    types = {}       # family -> declared type
    samples = {}     # family -> [(labels, value)]
    sample_re = re.compile(
        r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        m = sample_re.match(line)
        if m is None:
            errors.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            value = float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value!r}")
            continue
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[:-len(suffix)] in types:
                family = name[:-len(suffix)]
                break
        if family not in types:
            errors.append(f"line {lineno}: sample {name!r} has no preceding "
                          "# TYPE declaration")
            continue
        samples.setdefault(family, []).append((name, labels, value))

    for family, kind in types.items():
        if family not in samples:
            errors.append(f"family {family!r} declared but has no samples")
        elif kind == "histogram":
            rows = samples[family]
            buckets = [(l, v) for n, l, v in rows if n == family + "_bucket"]
            counts = [v for n, _, v in rows if n == family + "_count"]
            sums = [v for n, _, v in rows if n == family + "_sum"]
            if not buckets or len(counts) != 1 or len(sums) != 1:
                errors.append(f"histogram {family!r} missing _bucket/_sum/"
                              "_count series")
                continue
            cumulative = [v for _, v in buckets]
            if cumulative != sorted(cumulative):
                errors.append(f"histogram {family!r} buckets not cumulative")
            if 'le="+Inf"' not in buckets[-1][0]:
                errors.append(f"histogram {family!r} missing +Inf bucket")
            elif buckets[-1][1] != counts[0]:
                errors.append(f"histogram {family!r}: +Inf bucket "
                              f"{buckets[-1][1]:g} != _count {counts[0]:g}")

    for family, kind in PROMETHEUS_FAMILIES.items():
        if family not in types:
            errors.append(f"required family {family!r} absent")
        elif types[family] != kind:
            errors.append(f"family {family!r} is {types[family]!r}, "
                          f"expected {kind!r}")
    return errors


def check_schema(kind, path):
    checkers = {
        "metrics-json": check_metrics_json,
        "prometheus": check_prometheus,
        "tenants-json": check_tenants_json,
        "chaos-json": check_chaos_json,
    }
    errors = checkers[kind](path)
    for e in errors:
        print(f"  SCHEMA {path}: {e}")
    if errors:
        print(f"bench_check: {path} failed {kind} schema "
              f"({len(errors)} error(s))")
        return 1
    print(f"bench_check: {path} conforms to the {kind} schema")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("run")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baseline values from the run")
    parser.add_argument("--schema",
                        choices=["metrics-json", "prometheus",
                                 "tenants-json", "chaos-json"],
                        help="validate FILE against an observability export "
                             "schema instead of gating a bench run")
    args = parser.parse_args()

    if args.schema:
        return check_schema(args.schema, args.run)
    if args.baseline is None:
        parser.error("BASELINE is required unless --schema is given")

    run = load(args.run)
    baseline = load(args.baseline)

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(update(run, baseline), f, indent=2)
            f.write("\n")
        print(f"updated {args.baseline} from {args.run}")
        return 0

    print(f"bench_check: {args.run} vs {args.baseline}")
    failures = check(run, baseline)
    if failures:
        print(f"bench_check: {len(failures)} metric(s) regressed: "
              + ", ".join(failures))
        return 1
    print("bench_check: no regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
