// Robustness tests for the DAGMan parser: random token soup must either
// parse cleanly or throw util::Error (never crash or corrupt state), and
// structured random files must round-trip exactly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dagman/dagman_file.h"
#include "stats/rng.h"
#include "util/check.h"
#include "workloads/random.h"

namespace {

using prio::dagman::DagmanFile;
using prio::stats::Rng;

std::string randomToken(Rng& rng) {
  static const char* kTokens[] = {
      "JOB",  "PARENT", "CHILD", "VARS", "DONE",  "RETRY",
      "a",    "b",      "job1",  "x.sub", "=",    "\"v\"",
      "key=", "#",      "",      "  ",    "\\",   "\"",
  };
  return kTokens[rng.below(sizeof(kTokens) / sizeof(kTokens[0]))];
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, GarbageEitherParsesOrThrowsError) {
  Rng rng(GetParam());
  for (int file_no = 0; file_no < 200; ++file_no) {
    std::ostringstream os;
    const std::size_t lines = 1 + rng.below(8);
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t tokens = rng.below(6);
      for (std::size_t t = 0; t < tokens; ++t) {
        os << randomToken(rng) << ' ';
      }
      os << '\n';
    }
    std::istringstream in(os.str());
    try {
      const auto f = DagmanFile::parse(in);
      // Whatever parsed must serialize and re-parse identically.
      std::ostringstream out;
      f.write(out);
      std::istringstream in2(out.str());
      const auto f2 = DagmanFile::parse(in2);
      EXPECT_EQ(f2.jobs().size(), f.jobs().size());
      EXPECT_EQ(f2.dependencies(), f.dependencies());
    } catch (const prio::util::Error&) {
      // Expected for malformed input.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, StructuredRandomFilesRoundTrip) {
  Rng rng(GetParam());
  const auto g = prio::workloads::randomDag(25, 0.12, rng);
  DagmanFile file;
  for (prio::dag::NodeId u = 0; u < g.numNodes(); ++u) {
    auto& job = file.addJob("job_" + std::to_string(u),
                            "submit_" + std::to_string(rng.below(5)) +
                                ".sub");
    if (rng.below(4) == 0) job.done = true;
    if (rng.below(3) == 0) {
      job.setVar("key" + std::to_string(rng.below(3)),
                 "value with spaces " + std::to_string(rng.below(100)));
    }
  }
  for (prio::dag::NodeId u = 0; u < g.numNodes(); ++u) {
    for (prio::dag::NodeId v : g.children(u)) {
      file.addDependency("job_" + std::to_string(u),
                         "job_" + std::to_string(v));
    }
  }

  std::ostringstream out;
  file.write(out);
  std::istringstream in(out.str());
  const auto parsed = DagmanFile::parse(in);

  ASSERT_EQ(parsed.jobs().size(), file.jobs().size());
  for (std::size_t i = 0; i < file.jobs().size(); ++i) {
    EXPECT_EQ(parsed.jobs()[i].name, file.jobs()[i].name);
    EXPECT_EQ(parsed.jobs()[i].submit_file, file.jobs()[i].submit_file);
    EXPECT_EQ(parsed.jobs()[i].done, file.jobs()[i].done);
    EXPECT_EQ(parsed.jobs()[i].vars, file.jobs()[i].vars);
  }
  EXPECT_EQ(parsed.dependencies(), file.dependencies());

  // And the dag the file describes is unchanged.
  const auto g1 = file.toDigraph();
  const auto g2 = parsed.toDigraph();
  EXPECT_EQ(g1.numNodes(), g2.numNodes());
  EXPECT_EQ(g1.numEdges(), g2.numEdges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<std::uint64_t>(10, 20));

}  // namespace
