// Robustness tests for the DAGMan parser: random token soup must either
// parse cleanly or throw util::Error (never crash or corrupt state), and
// structured random files must round-trip exactly.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "dagman/dagman_file.h"
#include "stats/rng.h"
#include "util/check.h"
#include "workloads/random.h"

namespace {

using prio::dagman::DagmanFile;
using prio::stats::Rng;

std::string randomToken(Rng& rng) {
  static const char* kTokens[] = {
      "JOB",  "PARENT", "CHILD", "VARS", "DONE",  "RETRY",
      "a",    "b",      "job1",  "x.sub", "=",    "\"v\"",
      "key=", "#",      "",      "  ",    "\\",   "\"",
  };
  return kTokens[rng.below(sizeof(kTokens) / sizeof(kTokens[0]))];
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, GarbageEitherParsesOrThrowsError) {
  Rng rng(GetParam());
  for (int file_no = 0; file_no < 200; ++file_no) {
    std::ostringstream os;
    const std::size_t lines = 1 + rng.below(8);
    for (std::size_t l = 0; l < lines; ++l) {
      const std::size_t tokens = rng.below(6);
      for (std::size_t t = 0; t < tokens; ++t) {
        os << randomToken(rng) << ' ';
      }
      os << '\n';
    }
    std::istringstream in(os.str());
    try {
      const auto f = DagmanFile::parse(in);
      // Whatever parsed must serialize and re-parse identically.
      std::ostringstream out;
      f.write(out);
      std::istringstream in2(out.str());
      const auto f2 = DagmanFile::parse(in2);
      EXPECT_EQ(f2.jobs().size(), f.jobs().size());
      EXPECT_EQ(f2.dependencies(), f.dependencies());
    } catch (const prio::util::Error&) {
      // Expected for malformed input.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, StructuredRandomFilesRoundTrip) {
  Rng rng(GetParam());
  const auto g = prio::workloads::randomDag(25, 0.12, rng);
  DagmanFile file;
  for (prio::dag::NodeId u = 0; u < g.numNodes(); ++u) {
    auto& job = file.addJob("job_" + std::to_string(u),
                            "submit_" + std::to_string(rng.below(5)) +
                                ".sub");
    if (rng.below(4) == 0) job.done = true;
    if (rng.below(3) == 0) {
      job.setVar("key" + std::to_string(rng.below(3)),
                 "value with spaces " + std::to_string(rng.below(100)));
    }
  }
  for (prio::dag::NodeId u = 0; u < g.numNodes(); ++u) {
    for (prio::dag::NodeId v : g.children(u)) {
      file.addDependency("job_" + std::to_string(u),
                         "job_" + std::to_string(v));
    }
  }

  std::ostringstream out;
  file.write(out);
  std::istringstream in(out.str());
  const auto parsed = DagmanFile::parse(in);

  ASSERT_EQ(parsed.jobs().size(), file.jobs().size());
  for (std::size_t i = 0; i < file.jobs().size(); ++i) {
    EXPECT_EQ(parsed.jobs()[i].name, file.jobs()[i].name);
    EXPECT_EQ(parsed.jobs()[i].submit_file, file.jobs()[i].submit_file);
    EXPECT_EQ(parsed.jobs()[i].done, file.jobs()[i].done);
    EXPECT_EQ(parsed.jobs()[i].vars, file.jobs()[i].vars);
  }
  EXPECT_EQ(parsed.dependencies(), file.dependencies());

  // And the dag the file describes is unchanged.
  const auto g1 = file.toDigraph();
  const auto g2 = parsed.toDigraph();
  EXPECT_EQ(g1.numNodes(), g2.numNodes());
  EXPECT_EQ(g1.numEdges(), g2.numEdges());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<std::uint64_t>(10, 20));

// ---------------------------------------------------------------------------
// Targeted malformed-input cases: each must parse cleanly or throw
// prio::util::Error — never crash, hang, or corrupt the file object.

DagmanFile parseString(const std::string& text) {
  std::istringstream in(text);
  return DagmanFile::parse(in);
}

TEST(ParserHardening, TruncatedLinesThrowOrParse) {
  const char* cases[] = {
      "JOB",                      // keyword only
      "JOB a",                    // missing submit file
      "PARENT",                   // no jobs at all
      "JOB a a.sub\nPARENT a",    // PARENT without CHILD
      "JOB a a.sub\nPARENT CHILD a",   // no parents before CHILD
      "JOB a a.sub\nPARENT a CHILD",   // no children after CHILD
      "JOB a a.sub\nVARS",        // VARS without job
      "JOB a a.sub\nVARS a k=",   // missing quoted value
      "JOB a a.sub\nVARS a k=\"v",  // unterminated quote
  };
  for (const char* text : cases) {
    EXPECT_THROW((void)parseString(text), prio::util::Error) << text;
  }
}

TEST(ParserHardening, CrlfLineEndingsParseIdentically) {
  const std::string unix_text =
      "JOB a a.sub\nJOB b b.sub\nPARENT a CHILD b\nVARS a k=\"v\"\n";
  std::string crlf_text;
  for (const char c : unix_text) {
    if (c == '\n') crlf_text += '\r';
    crlf_text += c;
  }
  const auto f1 = parseString(unix_text);
  const auto f2 = parseString(crlf_text);
  ASSERT_EQ(f2.jobs().size(), f1.jobs().size());
  for (std::size_t i = 0; i < f1.jobs().size(); ++i) {
    EXPECT_EQ(f2.jobs()[i].name, f1.jobs()[i].name);
    EXPECT_EQ(f2.jobs()[i].submit_file, f1.jobs()[i].submit_file);
    EXPECT_EQ(f2.jobs()[i].vars, f1.jobs()[i].vars);
  }
  EXPECT_EQ(f2.dependencies(), f1.dependencies());
}

TEST(ParserHardening, DuplicateParentChildEdgesCollapseInDigraph) {
  const auto f = parseString(
      "JOB a a.sub\nJOB b b.sub\n"
      "PARENT a CHILD b\nPARENT a CHILD b\nPARENT a CHILD b b\n");
  const auto g = f.toDigraph();
  EXPECT_EQ(g.numNodes(), 2u);
  EXPECT_EQ(g.numEdges(), 1u);  // Digraph::addEdge dedups
  // Round trip keeps whatever the file recorded without corruption.
  std::ostringstream out;
  f.write(out);
  std::istringstream in(out.str());
  const auto f2 = DagmanFile::parse(in);
  EXPECT_EQ(f2.dependencies(), f.dependencies());
  EXPECT_EQ(f2.toDigraph().numEdges(), 1u);
}

TEST(ParserHardening, AbsurdRetryCountsNeverCrash) {
  // RETRY is a preserved directive; executor-side parsing must survive
  // overflow, negatives, and garbage counts.
  const char* cases[] = {
      "JOB a a.sub\nRETRY a 999999999999999999999999999999\n",
      "JOB a a.sub\nRETRY a -5\n",
      "JOB a a.sub\nRETRY a banana\n",
      "JOB a a.sub\nRETRY\n",
      "JOB a a.sub\nRETRY nosuchjob 3\n",
  };
  for (const char* text : cases) {
    const auto f = parseString(text);  // extra lines are preserved verbatim
    EXPECT_EQ(f.jobs().size(), 1u) << text;
    EXPECT_EQ(f.extraLines().size(), 1u) << text;
    // And the digraph is still sound.
    EXPECT_EQ(f.toDigraph().numNodes(), 1u) << text;
  }
}

}  // namespace
