// Tests for the TCP serving layer (src/net/): wire protocol golden
// bytes and decoder error handling, the EINTR-retrying socket helpers
// (driven deterministically through the net.read/net.write fault sites),
// and loopback client/server end-to-end behaviour — parity with the
// offline pipeline, pipelining, backpressure (reject and shed),
// protocol-error replies, the Prometheus endpoint, idle timeout,
// graceful drain, trace-id propagation, and the poll(2) backend.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dagman/dagman_file.h"
#include "dagman/instrument.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "tenant/registry.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/socket.h"
#include "workloads/scientific.h"

namespace {

using namespace prio;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::Status;

constexpr const char* kFig3 =
    "Job a a.submit\n"
    "Job b b.submit\n"
    "Job c c.submit\n"
    "Job d d.submit\n"
    "Job e e.submit\n"
    "PARENT a CHILD b\n"
    "PARENT c CHILD d e\n";

/// What the offline tool writes for this text — the byte-parity oracle
/// for the wire path.
std::string offlineInstrument(const std::string& dag_text) {
  std::istringstream in(dag_text);
  auto file = dagman::DagmanFile::parse(in);
  (void)dagman::prioritizeDagmanFile(file);
  std::ostringstream out;
  file.write(out);
  return std::move(out).str();
}

std::string dagTextOf(const dag::Digraph& g) {
  dagman::DagmanFile file;
  for (dag::NodeId u = 0; u < g.numNodes(); ++u) {
    file.addJob(g.name(u), "job.submit");
  }
  for (dag::NodeId u = 0; u < g.numNodes(); ++u) {
    for (dag::NodeId v : g.children(u)) {
      file.addDependency(g.name(u), g.name(v));
    }
  }
  std::ostringstream out;
  file.write(out);
  return std::move(out).str();
}

/// Runs a Server on an ephemeral loopback port in a background thread;
/// stops and joins on destruction.
class ServerFixture {
 public:
  explicit ServerFixture(net::ServerConfig config = {}) {
    config.port = 0;
    server_ = std::make_unique<net::Server>(config);
    thread_ = std::thread([this] { server_->run(); });
  }
  ~ServerFixture() { stop(); }

  void stop() {
    if (thread_.joinable()) {
      server_->requestStop();
      thread_.join();
    }
  }

  net::Server& server() { return *server_; }
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<net::Server> server_;
  std::thread thread_;
};

/// Disarms the global fault injector when the test scope exits.
struct FaultGuard {
  ~FaultGuard() { util::fault::Injector::instance().disarm(); }
};

// ---------------------------------------------------------------- protocol

TEST(NetProtocol, GoldenFrameBytes) {
  Frame f;
  f.type = FrameType::kRequest;
  f.status = Status::kOk;
  f.request_id = 0x0102030405060708ULL;
  f.trace_id = 0x1112131415161718ULL;
  f.tenant = 0x21222324u;
  f.payload = "abc";
  std::string wire;
  net::encodeFrame(f, wire);

  const std::string expected{
      'P',    'R',    'I',    'O',          // magic, little-endian
      '\x02',                               // version
      '\x01',                               // type = request
      '\x00',                               // status
      '\x00',                               // flags
      '\x08', '\x07', '\x06', '\x05',       // request_id LE
      '\x04', '\x03', '\x02', '\x01',
      '\x18', '\x17', '\x16', '\x15',       // trace_id LE
      '\x14', '\x13', '\x12', '\x11',
      '\x24', '\x23', '\x22', '\x21',       // tenant_id LE
      '\x03', '\x00', '\x00', '\x00',       // payload_len LE
      'a',    'b',    'c'};
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(wire.size(), net::kHeaderSize + 3);
}

// The PR 1-5 layout, byte for byte: a v1 encode must still produce the
// 28-byte header an old decoder expects, and decoding it must route to
// the default tenant. This is the compatibility contract that lets old
// clients talk to new servers (and vice versa for error replies).
TEST(NetProtocol, GoldenFrameBytesLegacyV1) {
  Frame f;
  f.version = net::kVersionLegacy;
  f.type = FrameType::kRequest;
  f.status = Status::kOk;
  f.request_id = 0x0102030405060708ULL;
  f.trace_id = 0x1112131415161718ULL;
  f.payload = "abc";
  std::string wire;
  net::encodeFrame(f, wire);

  const std::string expected{
      'P',    'R',    'I',    'O',          // magic, little-endian
      '\x01',                               // version
      '\x01',                               // type = request
      '\x00',                               // status
      '\x00',                               // flags
      '\x08', '\x07', '\x06', '\x05',       // request_id LE
      '\x04', '\x03', '\x02', '\x01',
      '\x18', '\x17', '\x16', '\x15',       // trace_id LE
      '\x14', '\x13', '\x12', '\x11',
      '\x03', '\x00', '\x00', '\x00',       // payload_len LE (no tenant)
      'a',    'b',    'c'};
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(wire.size(), net::kHeaderSizeV1 + 3);

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.version, net::kVersionLegacy);
  EXPECT_EQ(out.tenant, 0u);  // v1 frames map to the default tenant
  EXPECT_EQ(out.request_id, f.request_id);
  EXPECT_EQ(out.payload, "abc");

  // A nonzero tenant cannot ride a v1 frame: that would silently lose
  // the billing attribution.
  Frame bad;
  bad.version = net::kVersionLegacy;
  bad.tenant = 7;
  std::string sink;
  EXPECT_THROW(net::encodeFrame(bad, sink), util::Error);
}

TEST(NetProtocol, DecoderHandlesInterleavedVersions) {
  Frame v2;
  v2.type = FrameType::kRequest;
  v2.request_id = 1;
  v2.tenant = 42;
  v2.payload = "new";
  Frame v1;
  v1.version = net::kVersionLegacy;
  v1.type = FrameType::kRequest;
  v1.request_id = 2;
  v1.payload = "old";
  std::string wire;
  net::encodeFrame(v2, wire);
  net::encodeFrame(v1, wire);
  net::encodeFrame(v2, wire);

  FrameDecoder dec;
  // Trickle one byte at a time so every header-size decision is hit.
  Frame out;
  std::vector<Frame> got;
  for (char c : wire) {
    dec.feed(&c, 1);
    if (dec.next(out) == FrameDecoder::Result::kFrame) got.push_back(out);
  }
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].version, net::kVersion);
  EXPECT_EQ(got[0].tenant, 42u);
  EXPECT_EQ(got[0].payload, "new");
  EXPECT_EQ(got[1].version, net::kVersionLegacy);
  EXPECT_EQ(got[1].tenant, 0u);
  EXPECT_EQ(got[1].payload, "old");
  EXPECT_EQ(got[2].tenant, 42u);
}

TEST(NetProtocol, RoundTripAllFields) {
  Frame f;
  f.type = FrameType::kResponse;
  f.status = Status::kDegraded;
  f.request_id = 77;
  f.trace_id = 99;
  f.payload = std::string(100000, 'x');
  std::string wire;
  net::encodeFrame(f, wire);

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.type, FrameType::kResponse);
  EXPECT_EQ(out.status, Status::kDegraded);
  EXPECT_EQ(out.request_id, 77u);
  EXPECT_EQ(out.trace_id, 99u);
  EXPECT_EQ(out.payload, f.payload);
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kNeedMore);
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(NetProtocol, TruncatedFrameNeedsMore) {
  Frame f;
  f.payload = "payload";
  std::string wire;
  net::encodeFrame(f, wire);

  // Every strict prefix is kNeedMore, then one more byte completes it.
  FrameDecoder dec;
  Frame out;
  for (std::size_t cut : {std::size_t{1}, net::kHeaderSize - 1,
                          net::kHeaderSize, wire.size() - 1}) {
    FrameDecoder fresh;
    fresh.feed(wire.data(), cut);
    EXPECT_EQ(fresh.next(out), FrameDecoder::Result::kNeedMore) << cut;
  }
  dec.feed(wire.data(), wire.size() - 1);
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kNeedMore);
  dec.feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.payload, "payload");
}

TEST(NetProtocol, GarbageMagicIsError) {
  FrameDecoder dec;
  const std::string junk(net::kHeaderSize, '\xee');
  dec.feed(junk.data(), junk.size());
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kError);
  EXPECT_TRUE(dec.failed());
  EXPECT_NE(dec.error().find("magic"), std::string::npos);
  // The error latches: more bytes don't resurrect the stream.
  dec.feed(junk.data(), junk.size());
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kError);
}

TEST(NetProtocol, BadVersionIsError) {
  Frame f;
  std::string wire;
  net::encodeFrame(f, wire);
  wire[4] = '\x07';
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kError);
  EXPECT_NE(dec.error().find("version"), std::string::npos);
}

TEST(NetProtocol, ReservedFlagBitsAreError) {
  // Bit 0 is kFlagDeadline (legal on v2); every other bit is reserved.
  Frame f;
  std::string wire;
  net::encodeFrame(f, wire);
  wire[7] = '\x02';
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kError);
  EXPECT_NE(dec.error().find("flags"), std::string::npos);
}

TEST(NetProtocol, DeadlineFlagOnV1FrameIsError) {
  // v1 predates every flag; an old peer setting even the "known" bit is
  // corruption, not a deadline.
  Frame f;
  f.version = net::kVersionLegacy;
  std::string wire;
  net::encodeFrame(f, wire);
  wire[7] = '\x01';
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kError);
  EXPECT_NE(dec.error().find("flags"), std::string::npos);
}

TEST(NetProtocol, GoldenFrameBytesWithDeadline) {
  // The deadline field sits between the 32-byte v2 header and the
  // payload; payload_len still counts only the payload, so a deadline-
  // blind observer that honors flags it doesn't know would misparse —
  // which is exactly why unknown flag bits are a protocol error.
  Frame f;
  f.type = FrameType::kRequest;
  f.status = Status::kOk;
  f.request_id = 0x0102030405060708ULL;
  f.trace_id = 0x1112131415161718ULL;
  f.tenant = 0x21222324u;
  f.deadline_ms = 0x000004D2u;  // 1234 ms
  f.payload = "abc";
  std::string wire;
  net::encodeFrame(f, wire);

  const std::string expected{
      'P',    'R',    'I',    'O',          // magic, little-endian
      '\x02',                               // version
      '\x01',                               // type = request
      '\x00',                               // status
      '\x01',                               // flags = kFlagDeadline
      '\x08', '\x07', '\x06', '\x05',       // request_id LE
      '\x04', '\x03', '\x02', '\x01',
      '\x18', '\x17', '\x16', '\x15',       // trace_id LE
      '\x14', '\x13', '\x12', '\x11',
      '\x24', '\x23', '\x22', '\x21',       // tenant_id LE
      '\x03', '\x00', '\x00', '\x00',       // payload_len LE (payload only)
      '\xd2', '\x04', '\x00', '\x00',       // deadline_ms = 1234 LE
      'a',    'b',    'c'};
  EXPECT_EQ(wire, expected);

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.deadline_ms, 1234u);
  EXPECT_EQ(out.payload, "abc");
}

TEST(NetProtocol, ExpiredStatusRoundTrips) {
  Frame f;
  f.type = FrameType::kResponse;
  f.status = Status::kExpired;
  f.payload = "deadline expired";
  std::string wire;
  net::encodeFrame(f, wire);
  EXPECT_EQ(wire[6], '\x06');  // kExpired on the wire

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.status, Status::kExpired);
  EXPECT_STREQ(net::statusName(out.status), "expired");

  // One past kExpired is no longer a valid status byte.
  wire[6] = '\x07';
  FrameDecoder strict;
  strict.feed(wire.data(), wire.size());
  EXPECT_EQ(strict.next(out), FrameDecoder::Result::kError);
}

// Property test: a golden stream of interleaved v1/v2/deadline frames
// must decode identically no matter where the transport splits it. This
// is the contract the chaos proxy attacks at runtime (max_chunk=1);
// here every single two-part split AND the all-singleton split are
// checked exhaustively.
TEST(NetProtocol, DecoderInvariantUnderEverySplitOffset) {
  std::vector<Frame> frames;
  {
    Frame a;  // v2, no deadline, empty payload
    a.type = FrameType::kRequest;
    a.request_id = 1;
    frames.push_back(a);
    Frame b;  // v1 legacy
    b.version = net::kVersionLegacy;
    b.type = FrameType::kResponse;
    b.status = Status::kDegraded;
    b.request_id = 2;
    b.payload = "legacy";
    frames.push_back(b);
    Frame c;  // v2 with deadline and tenant
    c.type = FrameType::kRequest;
    c.request_id = 3;
    c.tenant = 9;
    c.deadline_ms = 250;
    c.payload = "Job a a.sub\n";
    frames.push_back(c);
    Frame d;  // v2 expired response with deadline echoed
    d.type = FrameType::kResponse;
    d.status = Status::kExpired;
    d.request_id = 4;
    d.deadline_ms = 1;
    frames.push_back(d);
    Frame e;  // v1 after a deadline frame: header size flips back
    e.version = net::kVersionLegacy;
    e.type = FrameType::kRequest;
    e.request_id = 5;
    e.payload = std::string(257, 'x');
    frames.push_back(e);
  }
  std::string wire;
  for (const Frame& f : frames) net::encodeFrame(f, wire);

  // Every two-part split of the stream, draining eagerly after each
  // feed so the kNeedMore resume paths are exercised at every offset.
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    FrameDecoder dec;
    Frame out;
    std::size_t idx = 0;
    const auto drain = [&]() {
      while (dec.next(out) == FrameDecoder::Result::kFrame) {
        ASSERT_LT(idx, frames.size()) << "split at " << cut;
        const Frame& want = frames[idx];
        EXPECT_EQ(out.version, want.version) << cut << "/" << idx;
        EXPECT_EQ(out.type, want.type) << cut << "/" << idx;
        EXPECT_EQ(out.status, want.status) << cut << "/" << idx;
        EXPECT_EQ(out.request_id, want.request_id) << cut << "/" << idx;
        EXPECT_EQ(out.tenant, want.tenant) << cut << "/" << idx;
        EXPECT_EQ(out.deadline_ms, want.deadline_ms) << cut << "/" << idx;
        EXPECT_EQ(out.payload, want.payload) << cut << "/" << idx;
        ++idx;
      }
      ASSERT_FALSE(dec.failed()) << "split at " << cut << ": " << dec.error();
    };
    dec.feed(wire.data(), cut);
    drain();
    dec.feed(wire.data() + cut, wire.size() - cut);
    drain();
    EXPECT_EQ(idx, frames.size()) << "split at " << cut;
    EXPECT_EQ(dec.buffered(), 0u) << "split at " << cut;
  }

  // The adversarial all-singleton split: one byte per feed.
  FrameDecoder trickle;
  Frame out;
  std::size_t decoded = 0;
  for (char ch : wire) {
    trickle.feed(&ch, 1);
    while (trickle.next(out) == FrameDecoder::Result::kFrame) ++decoded;
  }
  EXPECT_FALSE(trickle.failed()) << trickle.error();
  EXPECT_EQ(decoded, frames.size());
  EXPECT_EQ(trickle.buffered(), 0u);
}

TEST(NetProtocol, OversizedPayloadFailsBeforePayloadArrives) {
  // Only the header is fed: the decoder must reject the length prefix
  // without waiting for (or buffering) the announced payload.
  Frame f;
  f.payload = std::string(2048, 'x');
  std::string wire;
  net::encodeFrame(f, wire);
  FrameDecoder dec(/*max_payload=*/1024);
  dec.feed(wire.data(), net::kHeaderSize);
  Frame out;
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kError);
  EXPECT_NE(dec.error().find("cap"), std::string::npos);
}

TEST(NetProtocol, EncodeRefusesOversizedPayload) {
  Frame f;
  f.payload = std::string(2048, 'x');
  std::string wire;
  EXPECT_THROW(net::encodeFrame(f, wire, /*max_payload=*/1024), util::Error);
}

TEST(NetProtocol, ManyFramesOneFeed) {
  std::string wire;
  for (int i = 0; i < 10; ++i) {
    Frame f;
    f.request_id = static_cast<std::uint64_t>(i);
    f.payload = std::string(static_cast<std::size_t>(i) * 7, 'p');
    net::encodeFrame(f, wire);
  }
  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame) << i;
    EXPECT_EQ(out.request_id, static_cast<std::uint64_t>(i));
    EXPECT_EQ(out.payload.size(), static_cast<std::size_t>(i) * 7);
  }
  EXPECT_EQ(dec.next(out), FrameDecoder::Result::kNeedMore);
}

// ------------------------------------------------------------------ socket

TEST(NetSocket, UniqueFdClosesOnDestruction) {
  int raw[2];
  ASSERT_EQ(::pipe(raw), 0);
  {
    util::UniqueFd r(raw[0]);
    util::UniqueFd w(raw[1]);
    EXPECT_TRUE(r.valid());
    // Move transfers ownership; the source must not double-close.
    util::UniqueFd r2(std::move(r));
    EXPECT_FALSE(r.valid());  // NOLINT(bugprone-use-after-move)
    EXPECT_TRUE(r2.valid());
  }
  // Both ends closed exactly once: closing again must fail with EBADF.
  EXPECT_EQ(::close(raw[0]), -1);
  EXPECT_EQ(::close(raw[1]), -1);
}

TEST(NetSocket, ReadRetriesInjectedEintr) {
  FaultGuard guard;
  int raw[2];
  ASSERT_EQ(::pipe(raw), 0);
  util::UniqueFd r(raw[0]);
  util::UniqueFd w(raw[1]);
  ASSERT_TRUE(util::writeAll(w.get(), "hello", 5));

  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/1);
  // every_nth=2: the site alternates pass/fire, so one of the two reads
  // below sees an injected EINTR and must retry. (every_nth=1 would model
  // a signal storm that never ends — the retry loop would rightly spin
  // forever.)
  injector.plan("net.read",
                {util::fault::Kind::kThrowTransient, /*every_nth=*/2});

  char buf[16];
  ASSERT_EQ(util::readSome(r.get(), buf, 3), 3);
  EXPECT_EQ(std::string(buf, 3), "hel");
  ASSERT_EQ(util::readSome(r.get(), buf, 2), 2);
  EXPECT_EQ(std::string(buf, 2), "lo");
  EXPECT_GE(injector.fireCount("net.read"), 1u);
  EXPECT_GE(injector.passCount("net.read"), 3u);  // retried at least once
}

TEST(NetSocket, WriteRetriesInjectedEintr) {
  FaultGuard guard;
  int raw[2];
  ASSERT_EQ(::pipe(raw), 0);
  util::UniqueFd r(raw[0]);
  util::UniqueFd w(raw[1]);

  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/1);
  injector.plan("net.write",
                {util::fault::Kind::kThrowTransient, /*every_nth=*/2});

  ASSERT_TRUE(util::writeAll(w.get(), "wor", 3));
  ASSERT_TRUE(util::writeAll(w.get(), "ld", 2));
  EXPECT_GE(injector.fireCount("net.write"), 1u);
  char buf[16];
  injector.disarm();
  EXPECT_EQ(util::readSome(r.get(), buf, sizeof(buf)), 5);
  EXPECT_EQ(std::string(buf, 5), "world");
}

// ----------------------------------------------------------------- service

TEST(NetService, TextPayloadMatchesOfflinePipeline) {
  service::ServiceConfig config;
  config.num_threads = 2;
  service::PrioService service(config);
  auto reply = service.submit(service::Request{service::Payload::text(kFig3)}).get();
  ASSERT_EQ(reply.status, service::RequestStatus::kOk);
  EXPECT_EQ(reply.output, offlineInstrument(kFig3));
}

TEST(NetService, TextPayloadAdoptsWireTraceId) {
  obs::Tracer tracer;
  service::ServiceConfig config;
  config.num_threads = 1;
  config.tracer = &tracer;
  service::PrioService service(config);
  auto reply =
      service.submit(service::Request{service::Payload::text(kFig3), /*trace_id=*/424242})
          .get();
  ASSERT_EQ(reply.status, service::RequestStatus::kOk);
  EXPECT_EQ(reply.trace_id, 424242u);
}

TEST(NetService, MalformedTextFailsAndCountsRequestsFailed) {
  service::ServiceConfig config;
  config.num_threads = 1;
  service::PrioService service(config);
  auto reply =
      service.submit(service::Request{service::Payload::text("Job only_a_name\n")})
          .get();
  EXPECT_EQ(reply.status, service::RequestStatus::kFailed);
  EXPECT_FALSE(reply.error.empty());
  EXPECT_EQ(service.metrics().requests_failed.get(), 1u);
}

// --------------------------------------------------------------- loopback

TEST(NetServer, LoopbackByteParityWithOfflineTool) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  workloads::AirsnParams small;
  small.width = 20;
  const std::string airsn = dagTextOf(workloads::makeAirsn(small));
  for (const std::string& text : {std::string(kFig3), airsn}) {
    const net::Response r = client.call(text);
    ASSERT_EQ(r.status, Status::kOk) << r.payload;
    EXPECT_EQ(r.payload, offlineInstrument(text));
  }
  const net::Server::Stats stats = fixture.server().stats();
  EXPECT_EQ(stats.frames_received, 2u);
  EXPECT_EQ(stats.responses_sent, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(NetServer, PipelinedRequestsAllAnswered) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  const std::string expected = offlineInstrument(kFig3);
  constexpr int kRequests = 32;
  std::vector<std::uint64_t> ids;
  ids.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) ids.push_back(client.send(kFig3));

  std::vector<bool> seen(static_cast<std::size_t>(kRequests), false);
  for (int i = 0; i < kRequests; ++i) {
    const net::Response r = client.receive();
    ASSERT_EQ(r.status, Status::kOk) << r.payload;
    EXPECT_EQ(r.payload, expected);
    bool matched = false;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      if (ids[k] == r.request_id && !seen[k]) {
        seen[k] = matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "duplicate or unknown id " << r.request_id;
  }
}

TEST(NetServer, MalformedDagAnswersFailedWithoutClosing) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  const net::Response bad = client.call("PARENT ghost CHILD nobody\n");
  EXPECT_EQ(bad.status, Status::kFailed);
  EXPECT_FALSE(bad.payload.empty());
  EXPECT_GE(fixture.server().service().metrics().requests_failed.get(), 1u);

  // The connection survives a failed request.
  const net::Response ok = client.call(kFig3);
  EXPECT_EQ(ok.status, Status::kOk);
}

TEST(NetServer, GarbageBytesGetProtocolErrorThenClose) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  // A frame with corrupted magic, written through a raw socket (the
  // Client can only emit well-formed frames). First byte must not be
  // 'G', which would select HTTP mode.
  Frame f;
  f.payload = "x";
  std::string wire;
  net::encodeFrame(f, wire);
  wire[0] = 'Z';
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  util::UniqueFd sock(fd);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fixture.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(sock.get(),
                      reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_TRUE(util::writeAll(sock.get(), wire.data(), wire.size()));

  // The server answers one kProtocolError response frame, then closes.
  std::string got;
  char buf[4096];
  for (;;) {
    const long r = util::readSome(sock.get(), buf, sizeof(buf));
    if (r <= 0) break;
    got.append(buf, static_cast<std::size_t>(r));
  }
  FrameDecoder dec;
  dec.feed(got.data(), got.size());
  Frame resp;
  ASSERT_EQ(dec.next(resp), FrameDecoder::Result::kFrame);
  EXPECT_EQ(resp.type, FrameType::kResponse);
  EXPECT_EQ(resp.status, Status::kProtocolError);
  EXPECT_EQ(fixture.server().stats().protocol_errors, 1u);

  // Other connections are unaffected.
  EXPECT_EQ(client.call(kFig3).status, Status::kOk);
}

TEST(NetServer, OversizedFrameIsProtocolError) {
  net::ServerConfig config;
  config.max_payload = 1024;
  ServerFixture fixture(config);
  net::Client client;  // client-side cap stays at the default
  client.connect("127.0.0.1", fixture.port());
  client.send(std::string(2048, 'x'));
  const net::Response r = client.receive();
  EXPECT_EQ(r.status, Status::kProtocolError);
  EXPECT_NE(r.payload.find("cap"), std::string::npos);
}

TEST(NetServer, OversizedResponseAnswersFailedWithoutCrashing) {
  // The instrumented output always outgrows its input, so a request
  // under the cap can produce a response over it; the server must answer
  // kFailed, not throw out of the event loop.
  const std::string expected = offlineInstrument(kFig3);
  ASSERT_GT(expected.size(), std::strlen(kFig3));
  net::ServerConfig config;
  config.max_payload = static_cast<std::uint32_t>(expected.size() - 1);
  ASSERT_GT(config.max_payload, std::strlen(kFig3));
  ServerFixture fixture(config);
  net::Client client;  // client-side cap stays at the default
  client.connect("127.0.0.1", fixture.port());

  const net::Response r = client.call(kFig3);
  EXPECT_EQ(r.status, Status::kFailed);
  EXPECT_NE(r.payload.find("frame cap"), std::string::npos) << r.payload;

  // The loop survived and the connection is still serviced.
  const net::Response again = client.call(kFig3);
  EXPECT_EQ(again.status, Status::kFailed);
  EXPECT_EQ(fixture.server().stats().responses_oversized, 2u);
  EXPECT_EQ(fixture.server().stats().responses_sent, 2u);
}

TEST(NetServer, RejectBackpressureAnswersRejected) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/7);
  // Hold the lone worker inside each request long enough for the gate
  // to see concurrent load.
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(100000)});

  net::ServerConfig config;
  config.service.num_threads = 1;
  config.service.backpressure = service::BackpressurePolicy::kReject;
  config.max_in_flight = 1;
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) client.send(kFig3);
  int ok = 0, rejected = 0;
  for (int i = 0; i < kRequests; ++i) {
    const net::Response r = client.receive();
    if (r.status == Status::kOk) ++ok;
    if (r.status == Status::kRejected) ++rejected;
  }
  // The first request enters the service; with the gate at 1 and the
  // worker delayed, the pipelined rest are rejected at admission.
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_EQ(fixture.server().stats().gate_rejected,
            static_cast<std::uint64_t>(rejected));
}

TEST(NetServer, BlockBackpressureLosesNothing) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/7);
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(5000)});

  // Gate of 1 under kBlock: excess frames park and pause the socket —
  // every request still completes, in order, with no rejections.
  net::ServerConfig config;
  config.service.num_threads = 2;
  config.max_in_flight = 1;
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  constexpr int kRequests = 8;
  for (int i = 0; i < kRequests; ++i) client.send(kFig3);
  for (int i = 0; i < kRequests; ++i) {
    const net::Response r = client.receive();
    EXPECT_EQ(r.status, Status::kOk) << r.payload;
  }
  EXPECT_EQ(fixture.server().stats().gate_rejected, 0u);
}

TEST(NetServer, BlockGateParkedConnectionSurvivesIdleTimeout) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/11);
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(150000)});

  // Connection b's frame parks behind a full kBlock gate with reads
  // paused, so its last_activity cannot refresh. The idle reaper must
  // not mistake that wait for idleness and drop the parked request.
  net::ServerConfig config;
  config.service.num_threads = 1;
  config.max_in_flight = 1;
  config.idle_timeout_s = 0.05;
  ServerFixture fixture(config);
  net::Client a;
  a.connect("127.0.0.1", fixture.port());
  net::Client b;
  b.connect("127.0.0.1", fixture.port());

  a.send(kFig3);
  // Let a's frame claim the gate before b's arrives and parks.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  b.send(kFig3);
  EXPECT_EQ(a.receive().status, Status::kOk);
  EXPECT_EQ(b.receive().status, Status::kOk);
}

TEST(NetServer, QueueDeadlineShedsOverTheWire) {
  net::ServerConfig config;
  config.service.num_threads = 1;
  // Any queue wait exceeds this: every request is shed, deterministically.
  config.service.queue_deadline_s = 1e-9;
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());
  const net::Response r = client.call(kFig3);
  EXPECT_EQ(r.status, Status::kShed);
  EXPECT_EQ(fixture.server().service().metrics().requests_shed.get(), 1u);
}

TEST(NetServer, ComputeDeadlineDegradesOverTheWire) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/3);
  // Delay inside the compute phase pushes past the 1ms deadline.
  injector.plan("core.decompose",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(20000)});

  net::ServerConfig config;
  config.service.num_threads = 1;
  config.service.compute_deadline_s = 1e-3;
  config.service.cache_capacity = 0;  // no cache: the compute path runs
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());
  const net::Response r = client.call(kFig3);
  ASSERT_EQ(r.status, Status::kDegraded) << r.payload;
  // Degraded still carries a complete instrumented dag.
  EXPECT_NE(r.payload.find("jobpriority"), std::string::npos);
}

TEST(NetServer, MetricsEndpointServesPrometheusText) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());
  ASSERT_EQ(client.call(kFig3).status, Status::kOk);

  const std::string body =
      net::Client::fetchMetrics("127.0.0.1", fixture.port());
  // Service families (prio_) and server families (prio_net_) share the
  // one endpoint.
  EXPECT_NE(body.find("# TYPE prio_requests_submitted counter"),
            std::string::npos);
  EXPECT_NE(body.find("prio_requests_submitted 1"), std::string::npos);
  EXPECT_NE(body.find("# TYPE prio_net_frames_received counter"),
            std::string::npos);
  EXPECT_NE(body.find("prio_net_frames_received 1"), std::string::npos);
  EXPECT_EQ(fixture.server().stats().http_requests, 1u);

  // The framing connection still works after an HTTP connection came and
  // went on the same port.
  EXPECT_EQ(client.call(kFig3).status, Status::kOk);
}

TEST(NetServer, HttpExtraBytesGetExactlyOneResponse) {
  ServerFixture fixture;
  int raw = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(raw, 0);
  util::UniqueFd sock(raw);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fixture.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(sock.get(), reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);

  // Two pipelined requests: the server serves the /metrics snapshot
  // once and closes, never appending a second response to the same
  // connection however the bytes are segmented across reads.
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  const std::string two = request + request;
  ASSERT_TRUE(util::writeAll(sock.get(), two.data(), two.size()));

  std::string got;
  char buf[64 * 1024];
  for (;;) {
    const long r = util::readSome(sock.get(), buf, sizeof(buf));
    if (r <= 0) break;
    got.append(buf, static_cast<std::size_t>(r));
  }
  std::size_t statuses = 0;
  for (std::size_t p = got.find("HTTP/1.0"); p != std::string::npos;
       p = got.find("HTTP/1.0", p + 1)) {
    ++statuses;
  }
  EXPECT_EQ(statuses, 1u) << got;
  EXPECT_EQ(fixture.server().stats().http_requests, 1u);
}

TEST(NetServer, IdleConnectionsAreClosed) {
  net::ServerConfig config;
  config.idle_timeout_s = 0.05;
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());
  ASSERT_EQ(client.call(kFig3).status, Status::kOk);

  // Idle past the timeout: the server closes us; receive() sees EOF.
  for (int i = 0; i < 100 && fixture.server().stats().connections_idle_closed == 0;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.server().stats().connections_idle_closed, 1u);
  EXPECT_THROW(client.receive(), util::Error);
}

TEST(NetServer, GracefulDrainFlushesInFlightResponses) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/5);
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(50000)});

  net::ServerConfig config;
  config.service.num_threads = 1;
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());
  client.send(kFig3);
  // Stop while the request is inside the worker: drain must deliver the
  // response before run() returns.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  fixture.stop();
  const net::Response r = client.receive();
  EXPECT_EQ(r.status, Status::kOk) << r.payload;
  EXPECT_EQ(r.payload, offlineInstrument(kFig3));
}

TEST(NetServer, PollBackendServesLikeEpoll) {
  net::ServerConfig config;
  config.use_epoll = false;
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());
  const net::Response r = client.call(kFig3);
  ASSERT_EQ(r.status, Status::kOk) << r.payload;
  EXPECT_EQ(r.payload, offlineInstrument(kFig3));
  EXPECT_NE(net::Client::fetchMetrics("127.0.0.1", fixture.port())
                .find("prio_net_responses_sent"),
            std::string::npos);
}

TEST(NetServer, TraceIdPropagatesAcrossTheWire) {
  obs::Tracer server_tracer;
  net::ServerConfig config;
  config.service.num_threads = 1;
  config.service.tracer = &server_tracer;
  ServerFixture fixture(config);

  obs::Tracer client_tracer;
  net::ClientOptions options;
  options.tracer = &client_tracer;
  net::Client client(options);
  client.connect("127.0.0.1", fixture.port());
  const net::Response r = client.call(kFig3);
  ASSERT_EQ(r.status, Status::kOk);
  ASSERT_NE(r.trace_id, 0u);

  // The server adopted the client's id: its span tree for this request
  // carries the same trace id the client's "net.request" span does.
  const auto client_spans = client_tracer.drain();
  ASSERT_EQ(client_spans.records.size(), 1u);
  EXPECT_STREQ(client_spans.records[0].name, "net.request");
  EXPECT_EQ(client_spans.records[0].trace_id, r.trace_id);

  const auto server_spans = server_tracer.drain();
  ASSERT_FALSE(server_spans.records.empty());
  for (const auto& record : server_spans.records) {
    EXPECT_EQ(record.trace_id, r.trace_id) << record.name;
  }
}

TEST(NetServer, StatsCountConnections) {
  ServerFixture fixture;
  {
    net::Client a;
    a.connect("127.0.0.1", fixture.port());
    net::Client b;
    b.connect("127.0.0.1", fixture.port());
    EXPECT_EQ(a.call(kFig3).status, Status::kOk);
    EXPECT_EQ(b.call(kFig3).status, Status::kOk);
  }
  // Close is client-initiated; give the loop a beat to observe EOF.
  for (int i = 0; i < 100 && fixture.server().stats().connections_closed < 2;
       ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const net::Server::Stats stats = fixture.server().stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_EQ(stats.connections_closed, 2u);
  EXPECT_EQ(stats.responses_sent, 2u);
}

// ----------------------------------------------------------------- tenants

// Version negotiation end to end: a raw v1 frame (the PR 1-5 wire
// layout) must be accepted, billed to the default tenant, and answered
// with a frame an old decoder can parse — i.e. a 28-byte v1 header.
TEST(NetServer, LegacyV1ClientIsServedWithV1Frames) {
  ServerFixture fixture;

  Frame f;
  f.version = net::kVersionLegacy;
  f.type = FrameType::kRequest;
  f.request_id = 9;
  f.payload = kFig3;
  std::string wire;
  net::encodeFrame(f, wire);
  ASSERT_EQ(wire.size(), net::kHeaderSizeV1 + std::strlen(kFig3));

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  util::UniqueFd sock(fd);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fixture.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(sock.get(), reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_TRUE(util::writeAll(sock.get(), wire.data(), wire.size()));

  // Read the whole response, then parse it the way a v1-only decoder
  // would: version byte 1, payload_len at offset 24, 28-byte header.
  std::string got;
  char buf[64 * 1024];
  while (got.size() < net::kHeaderSizeV1 ||
         got.size() < net::kHeaderSizeV1 +
                          (static_cast<std::uint32_t>(
                               static_cast<unsigned char>(got[24])) |
                           (static_cast<std::uint32_t>(
                                static_cast<unsigned char>(got[25]))
                            << 8) |
                           (static_cast<std::uint32_t>(
                                static_cast<unsigned char>(got[26]))
                            << 16) |
                           (static_cast<std::uint32_t>(
                                static_cast<unsigned char>(got[27]))
                            << 24))) {
    const long r = util::readSome(sock.get(), buf, sizeof(buf));
    ASSERT_GT(r, 0);
    got.append(buf, static_cast<std::size_t>(r));
  }
  ASSERT_EQ(got.substr(0, 4), "PRIO");
  EXPECT_EQ(got[4], '\x01');  // the reply is a v1 frame
  EXPECT_EQ(got[5], '\x02');  // type = response
  EXPECT_EQ(got[6], '\x00');  // status = kOk

  Frame resp;
  FrameDecoder dec;
  dec.feed(got.data(), got.size());
  ASSERT_EQ(dec.next(resp), FrameDecoder::Result::kFrame);
  EXPECT_EQ(resp.version, net::kVersionLegacy);
  EXPECT_EQ(resp.request_id, 9u);
  EXPECT_EQ(resp.tenant, 0u);
  EXPECT_EQ(resp.payload, offlineInstrument(kFig3));

  // The request was billed to the default tenant.
  const auto snaps = fixture.server().tenants().snapshot();
  ASSERT_FALSE(snaps.empty());
  EXPECT_EQ(snaps[0].id, tenant::kDefaultTenantId);
  EXPECT_EQ(snaps[0].admitted, 1u);
  EXPECT_EQ(snaps[0].completed, 1u);
}

TEST(NetServer, TenantIdRoundTripsAndIsAccounted) {
  net::ServerConfig config;
  config.tenants.push_back({1, {.name = "alice", .weight = 3}});
  config.tenants.push_back({2, {.name = "bob"}});
  ServerFixture fixture(config);

  net::ClientOptions alice_options;
  alice_options.tenant = 1;
  net::Client alice(alice_options);
  alice.connect("127.0.0.1", fixture.port());
  net::ClientOptions bob_options;
  bob_options.tenant = 2;
  net::Client bob(bob_options);
  bob.connect("127.0.0.1", fixture.port());

  for (int i = 0; i < 3; ++i) {
    const net::Response r = alice.call(kFig3);
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.tenant, 1u);  // responses echo the billed tenant
    EXPECT_EQ(r.payload, offlineInstrument(kFig3));
  }
  const net::Response r = bob.call(kFig3);
  EXPECT_EQ(r.status, Status::kOk);
  EXPECT_EQ(r.tenant, 2u);

  const auto snaps = fixture.server().tenants().snapshot();
  ASSERT_EQ(snaps.size(), 3u);  // default + alice + bob, ordered by id
  EXPECT_EQ(snaps[0].id, 0u);
  EXPECT_EQ(snaps[0].admitted, 0u);
  EXPECT_EQ(snaps[1].id, 1u);
  EXPECT_EQ(snaps[1].name, "alice");
  EXPECT_EQ(snaps[1].weight, 3u);
  EXPECT_EQ(snaps[1].admitted, 3u);
  EXPECT_EQ(snaps[1].completed, 3u);
  EXPECT_EQ(snaps[1].in_flight, 0u);
  EXPECT_EQ(snaps[2].id, 2u);
  EXPECT_EQ(snaps[2].admitted, 1u);
  // Repeated identical dags hit the result cache after the first miss.
  EXPECT_EQ(snaps[1].cache_hits + snaps[1].cache_misses, 3u);
}

TEST(NetServer, TenantQuotaRejectsOverBudget) {
  net::ServerConfig config;
  config.service.backpressure = service::BackpressurePolicy::kReject;
  // 1 token of burst, refilled at a rate far slower than the test runs.
  config.tenants.push_back({1, {.rate_per_s = 0.001, .burst = 1}});
  ServerFixture fixture(config);

  net::ClientOptions options;
  options.tenant = 1;
  net::Client client(options);
  client.connect("127.0.0.1", fixture.port());

  EXPECT_EQ(client.call(kFig3).status, Status::kOk);
  const net::Response rejected = client.call(kFig3);
  EXPECT_EQ(rejected.status, Status::kRejected);
  EXPECT_NE(rejected.payload.find("quota"), std::string::npos)
      << rejected.payload;
  EXPECT_FALSE(rejected.result().usable);

  // The unmetered default tenant is not affected.
  net::Client other;
  other.connect("127.0.0.1", fixture.port());
  EXPECT_EQ(other.call(kFig3).status, Status::kOk);

  EXPECT_EQ(fixture.server().stats().tenant_rejected, 1u);
  EXPECT_EQ(fixture.server().stats().gate_rejected, 0u);
  const auto snaps = fixture.server().tenants().snapshot();
  EXPECT_EQ(snaps[1].admitted, 1u);
  EXPECT_EQ(snaps[1].rejected, 1u);
}

TEST(NetServer, TenantInFlightCapRejects) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/7);
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(100000)});

  net::ServerConfig config;
  config.service.num_threads = 1;
  config.service.cache_capacity = 0;
  config.service.backpressure = service::BackpressurePolicy::kReject;
  config.tenants.push_back({1, {.max_in_flight = 1}});
  ServerFixture fixture(config);

  net::ClientOptions options;
  options.tenant = 1;
  net::Client client(options);
  client.connect("127.0.0.1", fixture.port());

  constexpr int kRequests = 3;
  for (int i = 0; i < kRequests; ++i) client.send(kFig3);
  int ok = 0, rejected = 0;
  for (int i = 0; i < kRequests; ++i) {
    const net::Response r = client.receive();
    if (r.status == Status::kOk) ++ok;
    if (r.status == Status::kRejected) {
      ++rejected;
      EXPECT_NE(r.payload.find("in-flight"), std::string::npos) << r.payload;
    }
  }
  EXPECT_GE(ok, 1);
  EXPECT_GE(rejected, 1);
  EXPECT_EQ(ok + rejected, kRequests);
  EXPECT_EQ(fixture.server().stats().tenant_rejected,
            static_cast<std::uint64_t>(rejected));
}

TEST(NetServer, TenantQuotaBlockParksThenServes) {
  net::ServerConfig config;
  config.service.backpressure = service::BackpressurePolicy::kBlock;
  // 1 burst token, 50/s refill: the second pipelined request must park
  // ~20ms and then complete — nothing is lost under kBlock.
  config.tenants.push_back({1, {.rate_per_s = 50, .burst = 1}});
  ServerFixture fixture(config);

  net::ClientOptions options;
  options.tenant = 1;
  net::Client client(options);
  client.connect("127.0.0.1", fixture.port());

  client.send(kFig3);
  client.send(kFig3);
  for (int i = 0; i < 2; ++i) {
    const net::Response r = client.receive();
    EXPECT_EQ(r.status, Status::kOk);
    EXPECT_EQ(r.payload, offlineInstrument(kFig3));
  }
  const auto snaps = fixture.server().tenants().snapshot();
  EXPECT_EQ(snaps[1].admitted, 2u);
  EXPECT_EQ(snaps[1].rejected, 0u);
  EXPECT_EQ(fixture.server().stats().tenant_rejected, 0u);
}

TEST(NetServer, TenantsEndpointServesJson) {
  net::ServerConfig config;
  config.tenants.push_back({7, {.name = "batch\"q", .weight = 2}});
  ServerFixture fixture(config);

  net::ClientOptions options;
  options.tenant = 7;
  net::Client client(options);
  client.connect("127.0.0.1", fixture.port());
  ASSERT_EQ(client.call(kFig3).status, Status::kOk);

  const std::string body =
      net::Client::fetchTenants("127.0.0.1", fixture.port());
  EXPECT_NE(body.find("\"tenants\":["), std::string::npos) << body;
  EXPECT_NE(body.find("\"id\":0"), std::string::npos);
  EXPECT_NE(body.find("\"id\":7"), std::string::npos);
  EXPECT_NE(body.find("\"admitted\":1"), std::string::npos);
  EXPECT_NE(body.find("\"batch\\\"q\""), std::string::npos)
      << "names must be JSON-escaped: " << body;
  EXPECT_NE(body.find("\"latency_p99_s\":"), std::string::npos);

  // The Prometheus families ride the ordinary /metrics endpoint.
  const std::string metrics =
      net::Client::fetchMetrics("127.0.0.1", fixture.port());
  EXPECT_NE(metrics.find("prio_tenant_admitted_total"), std::string::npos);
  EXPECT_NE(
      metrics.find(
          "prio_tenant_completed_total{tenant=\"7\",tenant_name=\"batch\\\"q\"} 1"),
      std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("prio_tenant_weight{tenant=\"7\""), std::string::npos);
}

// ------------------------------------------------------- multi-reactor

// DESIGN.md §14: with reactors > 1 the sharded server must be
// indistinguishable from the single loop from the outside — same bytes,
// same counters, same drain semantics — while connections actually
// spread across shard-owned event loops.

TEST(NetServer, MultiReactorByteParityAndPipelining) {
  net::ServerConfig config;
  config.reactors = 4;
  ServerFixture fixture(config);
  ASSERT_EQ(fixture.server().reactors(), 4u);

  const std::string expected = offlineInstrument(kFig3);
  constexpr int kClients = 4;
  constexpr int kRequests = 8;
  std::vector<std::unique_ptr<net::Client>> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::make_unique<net::Client>());
    clients.back()->connect("127.0.0.1", fixture.port());
  }
  for (auto& client : clients) {
    for (int i = 0; i < kRequests; ++i) client->send(kFig3);
  }
  for (auto& client : clients) {
    for (int i = 0; i < kRequests; ++i) {
      const net::Response r = client->receive();
      ASSERT_EQ(r.status, Status::kOk) << r.payload;
      EXPECT_EQ(r.payload, expected);
    }
  }
  const net::Server::Stats stats = fixture.server().stats();
  EXPECT_EQ(stats.frames_received,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(stats.responses_sent,
            static_cast<std::uint64_t>(kClients * kRequests));
  EXPECT_EQ(stats.protocol_errors, 0u);
  // Wakeup accounting: drains never outnumber signals (each counted
  // drain consumed at least one), and both sides moved.
  EXPECT_GT(stats.wakeups_signaled, 0u);
  EXPECT_GT(stats.wakeups_drained, 0u);
  EXPECT_GE(stats.wakeups_signaled, stats.wakeups_drained);

  // Stats aggregation is served from ANY shard's HTTP connection: the
  // totals cover every shard, and the per-shard family is present.
  const std::string metrics =
      net::Client::fetchMetrics("127.0.0.1", fixture.port());
  EXPECT_NE(metrics.find("prio_net_frames_received 32"), std::string::npos)
      << metrics;
  EXPECT_NE(metrics.find("prio_net_shard_connections{shard=\"3\"}"),
            std::string::npos)
      << metrics;
}

#ifdef SO_REUSEPORT
TEST(NetServer, ReuseportDistributesConnectionsAcrossShards) {
  net::ServerConfig config;
  config.reactors = 4;
  ServerFixture fixture(config);
  if (!fixture.server().usingReuseport()) {
    GTEST_SKIP() << "SO_REUSEPORT refused by this kernel";
  }

  constexpr int kConns = 64;
  std::vector<std::unique_ptr<net::Client>> clients;
  for (int i = 0; i < kConns; ++i) {
    clients.push_back(std::make_unique<net::Client>());
    clients.back()->connect("127.0.0.1", fixture.port());
    EXPECT_EQ(clients.back()->call(kFig3).status, Status::kOk);
  }
  const net::Server::Stats stats = fixture.server().stats();
  ASSERT_EQ(stats.shard_connections.size(), 4u);
  std::uint64_t total = 0;
  int shards_used = 0;
  for (const std::uint64_t n : stats.shard_connections) {
    total += n;
    if (n > 0) ++shards_used;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kConns));
  // The kernel hashes 64 distinct loopback 4-tuples over 4 listeners;
  // every one of them landing on a single shard would be a (1/4)^63
  // accident, so >= 2 nonempty shards is a safe distribution check.
  EXPECT_GE(shards_used, 2);
}
#endif  // SO_REUSEPORT

TEST(NetServer, HandoffFallbackDealsConnectionsRoundRobin) {
  net::ServerConfig config;
  config.reactors = 3;
  config.use_reuseport = false;
  ServerFixture fixture(config);
  EXPECT_FALSE(fixture.server().usingReuseport());

  // Sequential connect+call guarantees accept order, and the deal is
  // deterministic round-robin: 9 connections land 3-3-3.
  constexpr int kConns = 9;
  std::vector<std::unique_ptr<net::Client>> clients;
  for (int i = 0; i < kConns; ++i) {
    clients.push_back(std::make_unique<net::Client>());
    clients.back()->connect("127.0.0.1", fixture.port());
    ASSERT_EQ(clients.back()->call(kFig3).status, Status::kOk);
  }
  const net::Server::Stats stats = fixture.server().stats();
  ASSERT_EQ(stats.shard_connections.size(), 3u);
  for (const std::uint64_t n : stats.shard_connections) EXPECT_EQ(n, 3u);
}

TEST(NetServer, DrainFlushesInFlightFramesOnEveryShard) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/5);
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(150000)});

  // One in-flight request on each of the three shards (hand-off mode
  // places client i on shard i) when the stop lands: the drain must
  // deliver all three responses before run() returns.
  net::ServerConfig config;
  config.reactors = 3;
  config.use_reuseport = false;
  config.service.num_threads = 3;
  ServerFixture fixture(config);

  std::vector<std::unique_ptr<net::Client>> clients;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<net::Client>());
    clients.back()->connect("127.0.0.1", fixture.port());
  }
  for (auto& client : clients) client->send(kFig3);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  fixture.stop();
  const std::string expected = offlineInstrument(kFig3);
  for (auto& client : clients) {
    const net::Response r = client->receive();
    EXPECT_EQ(r.status, Status::kOk) << r.payload;
    EXPECT_EQ(r.payload, expected);
  }
}

TEST(NetServer, BlockGateContendedAcrossShardsLosesNothing) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/7);
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(5000)});

  // A single global gate slot fought over from two shards (hand-off
  // mode pins one client per shard). Frames park on BOTH shards; every
  // completion on one shard must wake the sibling's parked frame, and
  // nothing may be lost or rejected.
  net::ServerConfig config;
  config.reactors = 2;
  config.use_reuseport = false;
  config.service.num_threads = 1;
  config.max_in_flight = 1;
  ServerFixture fixture(config);

  net::Client a;
  a.connect("127.0.0.1", fixture.port());
  net::Client b;
  b.connect("127.0.0.1", fixture.port());

  constexpr int kRequests = 6;
  for (int i = 0; i < kRequests; ++i) {
    a.send(kFig3);
    b.send(kFig3);
  }
  for (int i = 0; i < kRequests; ++i) {
    EXPECT_EQ(a.receive().status, Status::kOk);
    EXPECT_EQ(b.receive().status, Status::kOk);
  }
  const net::Server::Stats stats = fixture.server().stats();
  EXPECT_EQ(stats.gate_rejected, 0u);
  EXPECT_EQ(stats.frames_received,
            static_cast<std::uint64_t>(2 * kRequests));
  EXPECT_EQ(stats.responses_sent,
            static_cast<std::uint64_t>(2 * kRequests));
}

// Satellite: the reaper walks the intrusive LRU list from the cold end
// and must stop at the first warm connection — an active neighbour is
// never scanned, let alone closed.
TEST(NetServer, IdleReaperClosesOnlyExpiredConnections) {
  net::ServerConfig config;
  config.idle_timeout_s = 0.08;
  ServerFixture fixture(config);
  net::Client active;
  active.connect("127.0.0.1", fixture.port());
  net::Client idle;
  idle.connect("127.0.0.1", fixture.port());
  ASSERT_EQ(idle.call(kFig3).status, Status::kOk);

  // Keep one connection warm while the other goes cold past the window.
  for (int i = 0;
       i < 100 && fixture.server().stats().connections_idle_closed == 0;
       ++i) {
    ASSERT_EQ(active.call(kFig3).status, Status::kOk);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fixture.server().stats().connections_idle_closed, 1u);
  EXPECT_THROW(idle.receive(), util::Error);
  EXPECT_EQ(active.call(kFig3).status, Status::kOk);
}

// Satellite: the priod_client exit path keys on result().usable, which
// must stay false for every response a caller cannot use — including a
// kDegraded reply whose payload is empty.
TEST(NetClient, ResultUsableRejectsEmptyDegraded) {
  net::Response r;
  r.status = Status::kOk;
  r.payload = "Job a a.submit\n";
  EXPECT_TRUE(r.result().usable);

  r.status = Status::kDegraded;
  EXPECT_TRUE(r.result().usable);
  r.payload.clear();
  EXPECT_TRUE(r.hasOutput());  // the old predicate would pass...
  EXPECT_FALSE(r.result().usable);  // ...the fixed one does not

  r.payload = "some diagnostic";
  for (Status s : {Status::kRejected, Status::kShed, Status::kFailed,
                   Status::kProtocolError, Status::kExpired}) {
    r.status = s;
    EXPECT_FALSE(r.result().usable);
  }
}

// ------------------------------------------- wire deadlines & liveness

TEST(NetServer, WireDeadlineExpiresInServiceQueue) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/5);
  // The lone worker sits inside request A long enough that B's 1 ms
  // budget is gone before B is ever dequeued.
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(60000)});

  net::ServerConfig config;
  config.service.num_threads = 1;
  ServerFixture fixture(config);

  net::Client a;  // no deadline: must complete
  a.connect("127.0.0.1", fixture.port());
  net::ClientOptions bopts;
  bopts.deadline_ms = 1;
  net::Client b(bopts);
  b.connect("127.0.0.1", fixture.port());

  a.send(kFig3);
  // Let A claim the worker before B enqueues behind it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  b.send(kFig3);

  const net::Response ra = a.receive();
  EXPECT_EQ(ra.status, Status::kOk) << ra.payload;
  const net::Response rb = b.receive();
  EXPECT_EQ(rb.status, Status::kExpired) << rb.payload;
  EXPECT_TRUE(rb.payload.empty() || !rb.ok());
  EXPECT_FALSE(rb.result().usable);

  // The expiry is visible on every surface: service JSON counter,
  // server stats, and the per-tenant ledger.
  EXPECT_EQ(fixture.server().service().metrics().requests_expired.get(), 1u);
  EXPECT_EQ(fixture.server().stats().requests_expired, 1u);
  std::ostringstream tenants;
  fixture.server().writeTenantsJson(tenants);
  EXPECT_NE(tenants.str().find("\"expired\":1"), std::string::npos)
      << tenants.str();
}

TEST(NetServer, WireDeadlineExpiresWhileGateParked) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/5);
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(200000)});

  // Gate of 1 under kBlock: B's frame parks. Its 1 ms budget dies in
  // the parking lot, so the tick loop must answer kExpired pre-
  // admission instead of letting the request wait forever.
  net::ServerConfig config;
  config.service.num_threads = 1;
  config.max_in_flight = 1;
  ServerFixture fixture(config);

  net::Client a;
  a.connect("127.0.0.1", fixture.port());
  net::ClientOptions bopts;
  bopts.deadline_ms = 1;
  net::Client b(bopts);
  b.connect("127.0.0.1", fixture.port());

  a.send(kFig3);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  b.send(kFig3);

  const net::Response rb = b.receive();
  EXPECT_EQ(rb.status, Status::kExpired) << rb.payload;
  EXPECT_NE(rb.payload.find("before admission"), std::string::npos)
      << rb.payload;
  const net::Response ra = a.receive();
  EXPECT_EQ(ra.status, Status::kOk) << ra.payload;

  // Pre-admission expiry is billed to the tenant but consumes no quota
  // token and never reaches the service.
  EXPECT_EQ(fixture.server().stats().requests_expired, 1u);
  EXPECT_EQ(fixture.server().service().metrics().requests_expired.get(), 0u);

  // The connection survives: B can still be served afterwards (the
  // worker is free again, so even the 1 ms budget can succeed — but
  // either way the request terminates).
  b.send(kFig3);
  const net::Response again = b.receive();
  EXPECT_TRUE(again.status == Status::kOk ||
              again.status == Status::kExpired ||
              again.status == Status::kDegraded)
      << net::statusName(again.status);
}

TEST(NetServer, HealthzAnswersWhileLoopTurns) {
  ServerFixture fixture;
  int status = 0;
  const std::string body = net::Client::fetchHttp(
      "127.0.0.1", fixture.port(), "/healthz", {}, &status);
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "ok\n");
  EXPECT_GE(fixture.server().stats().http_requests, 1u);
}

TEST(NetServer, ReadyzReportsReadyWhenIdle) {
  ServerFixture fixture;
  int status = 0;
  const std::string body = net::Client::fetchHttp(
      "127.0.0.1", fixture.port(), "/readyz", {}, &status);
  EXPECT_EQ(status, 200);
  EXPECT_NE(body.find("\"ready\":true"), std::string::npos) << body;
  EXPECT_NE(body.find("\"max_in_flight\":"), std::string::npos) << body;
}

TEST(NetServer, ReadyzGoes503WhenGateSaturated) {
  FaultGuard guard;
  auto& injector = util::fault::Injector::instance();
  injector.arm(/*seed=*/5);
  injector.plan("service.parse",
                {util::fault::Kind::kDelay, /*every_nth=*/1, 0.0,
                 std::chrono::microseconds(300000)});

  net::ServerConfig config;
  config.service.num_threads = 1;
  config.max_in_flight = 1;
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());
  client.send(kFig3);  // occupies the only gate slot
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  int status = 0;
  const std::string body = net::Client::fetchHttp(
      "127.0.0.1", fixture.port(), "/readyz", {}, &status);
  EXPECT_EQ(status, 503);
  EXPECT_NE(body.find("\"ready\":false"), std::string::npos) << body;
  EXPECT_NE(body.find("\"in_flight\":1"), std::string::npos) << body;

  EXPECT_EQ(client.receive().status, Status::kOk);
  // Drained again: ready returns.
  const std::string after = net::Client::fetchHttp(
      "127.0.0.1", fixture.port(), "/readyz", {}, &status);
  EXPECT_EQ(status, 200) << after;
}

TEST(NetServer, LoopStallWatchdogRecordsNonTrivialWork) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());
  ASSERT_EQ(client.call(kFig3).status, Status::kOk);
  // Any served request keeps the loop away from poll for a nonzero
  // stretch; the gauge must have seen it.
  EXPECT_GT(fixture.server().stats().loop_stall_max_us, 0u);
  const std::string metrics =
      net::Client::fetchMetrics("127.0.0.1", fixture.port());
  EXPECT_NE(metrics.find("prio_net_loop_stall_max_us"), std::string::npos);
}

// Satellite: a stalled server must cost the client a clean TimeoutError,
// not an infinite hang — on both the framed path and the HTTP fetches.
TEST(NetClient, ReceiveTimesOutInsteadOfHanging) {
  // A listener that accepts and then never writes a byte.
  util::UniqueFd listener = util::socketCloexec(AF_INET, SOCK_STREAM, 0);
  ASSERT_TRUE(listener.valid());
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::bind(listener.get(), reinterpret_cast<struct sockaddr*>(&addr),
                   sizeof(addr)),
            0);
  ASSERT_EQ(::listen(listener.get(), 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listener.get(),
                          reinterpret_cast<struct sockaddr*>(&addr), &len),
            0);
  const std::uint16_t port = ntohs(addr.sin_port);

  net::ClientOptions options;
  options.request_timeout_s = 0.05;
  net::Client client(options);
  client.connect("127.0.0.1", port);
  client.send(kFig3);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.receive(), net::TimeoutError);
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_LT(waited, 5.0);  // bounded, not the kernel TCP timeout

  // The HTTP path under the same silence.
  EXPECT_THROW(net::Client::fetchHttp("127.0.0.1", port, "/metrics", options),
               net::TimeoutError);
}

}  // namespace
