// Tests for the Fig. 2 building-block families: constructors, recognizers
// and — crucially — brute-force certification that every explicit family
// schedule is IC-optimal.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "dag/algorithms.h"
#include "theory/blocks.h"
#include "theory/bruteforce.h"
#include "theory/eligibility.h"
#include "util/check.h"

namespace {

using namespace prio::dag;
using namespace prio::theory;

// ---- Constructors ----

TEST(MakeW, NodeAndEdgeCounts) {
  for (std::size_t a : {1u, 2u, 3u, 5u}) {
    for (std::size_t b : {2u, 3u, 4u}) {
      const Digraph g = makeW(a, b);
      EXPECT_EQ(g.numNodes(), a + (a * b - (a - 1)));
      EXPECT_EQ(g.numEdges(), a * b);
      EXPECT_TRUE(isBipartiteDag(g));
      EXPECT_TRUE(isConnected(g));
      EXPECT_EQ(g.sources().size(), a);
    }
  }
}

TEST(MakeW, RejectsBadParameters) {
  EXPECT_THROW((void)makeW(0, 2), prio::util::Error);
  EXPECT_THROW((void)makeW(2, 1), prio::util::Error);
}

TEST(MakeM, IsReversedW) {
  const Digraph w = makeW(3, 2);
  const Digraph m = makeM(3, 2);
  EXPECT_EQ(m.numNodes(), w.numNodes());
  EXPECT_EQ(m.numEdges(), w.numEdges());
  EXPECT_EQ(m.sources().size(), w.sinks().size());
  EXPECT_EQ(m.sinks().size(), w.sources().size());
}

TEST(MakeN, Structure) {
  for (std::size_t d : {2u, 3u, 5u}) {
    const Digraph g = makeN(d);
    EXPECT_EQ(g.numNodes(), 2 * d);
    EXPECT_EQ(g.numEdges(), 2 * d - 1);
    EXPECT_TRUE(isBipartiteDag(g));
    EXPECT_TRUE(isConnected(g));
  }
  EXPECT_THROW((void)makeN(1), prio::util::Error);
}

TEST(MakeCycleDag, Structure) {
  for (std::size_t d : {2u, 3u, 4u, 6u}) {
    const Digraph g = makeCycleDag(d);
    EXPECT_EQ(g.numNodes(), 2 * d);
    EXPECT_EQ(g.numEdges(), 2 * d);
    EXPECT_TRUE(isBipartiteDag(g));
    EXPECT_TRUE(isConnected(g));
    for (NodeId u = 0; u < g.numNodes(); ++u) {
      EXPECT_EQ(g.isSink(u) ? g.inDegree(u) : g.outDegree(u), 2u);
    }
  }
  EXPECT_THROW((void)makeCycleDag(1), prio::util::Error);
}

TEST(MakeCliqueDag, Structure) {
  for (std::size_t q : {2u, 3u, 4u, 5u}) {
    const Digraph g = makeCliqueDag(q);
    EXPECT_EQ(g.numNodes(), q + q * (q - 1) / 2);
    EXPECT_EQ(g.numEdges(), q * (q - 1));
    EXPECT_TRUE(isBipartiteDag(g));
  }
}

// ---- Recognition ----

TEST(RecognizeBlock, Singleton) {
  Digraph g;
  g.addNode("solo");
  const auto r = recognizeBlock(g);
  EXPECT_EQ(r.kind, BlockKind::kSingleton);
  EXPECT_TRUE(r.ic_optimal);
  EXPECT_EQ(r.schedule, (std::vector<NodeId>{0}));
}

TEST(RecognizeBlock, Fig2Samples) {
  // The seven dags drawn in Fig. 2.
  EXPECT_EQ(recognizeBlock(makeW(1, 2)).describe(), "W(1,2)");
  EXPECT_EQ(recognizeBlock(makeW(2, 2)).describe(), "W(2,2)");
  EXPECT_EQ(recognizeBlock(makeM(1, 5)).describe(), "M(1,5)");
  EXPECT_EQ(recognizeBlock(makeM(2, 5)).describe(), "M(2,5)");
  EXPECT_EQ(recognizeBlock(makeCliqueDag(3)).describe(), "Clique(3)");
  EXPECT_EQ(recognizeBlock(makeCycleDag(2)).describe(), "Cycle(2)");
  EXPECT_EQ(recognizeBlock(makeN(2)).describe(), "N(2)");
}

TEST(RecognizeBlock, NonBipartiteIsGeneric) {
  Digraph g;
  const NodeId a = g.addNode("a"), b = g.addNode("b"), c = g.addNode("c");
  g.addEdge(a, b);
  g.addEdge(b, c);
  const auto r = recognizeBlock(g);
  EXPECT_EQ(r.kind, BlockKind::kGeneric);
  EXPECT_FALSE(r.ic_optimal);
  EXPECT_TRUE(isTopologicalOrder(g, r.schedule));
}

TEST(RecognizeBlock, DisconnectedIsGeneric) {
  Digraph g;
  g.addNode("a");
  g.addNode("b");
  const auto r = recognizeBlock(g);
  EXPECT_EQ(r.kind, BlockKind::kGeneric);
}

TEST(RecognizeBlock, PerturbedWFallsBack) {
  // W(3,2) plus one extra arc making a sink have 3 parents: no family.
  Digraph g = makeW(3, 2);
  const auto sinks = g.sinks();
  g.addEdge(0, sinks.back());
  const auto r = recognizeBlock(g);
  EXPECT_EQ(r.kind, BlockKind::kBipartiteGeneric);
  EXPECT_FALSE(r.ic_optimal);
  EXPECT_TRUE(isTopologicalOrder(g, r.schedule));
}

TEST(RecognizeBlock, UnevenFanoutIsBipartiteGeneric) {
  Digraph g;
  const NodeId s1 = g.addNode("s1"), s2 = g.addNode("s2");
  const NodeId t1 = g.addNode("t1"), t2 = g.addNode("t2"),
               t3 = g.addNode("t3");
  g.addEdge(s1, t1);
  g.addEdge(s1, t2);
  g.addEdge(s1, t3);
  g.addEdge(s2, t3);
  const auto r = recognizeBlock(g);  // outdegrees 3 and 1: no family
  EXPECT_EQ(r.kind, BlockKind::kBipartiteGeneric);
}

TEST(RecognizeBlock, ScheduleIsAlwaysCompleteAndValid) {
  for (const Digraph& g :
       {makeW(4, 3), makeM(4, 3), makeN(5), makeCycleDag(5),
        makeCliqueDag(4)}) {
    const auto r = recognizeBlock(g);
    EXPECT_EQ(r.schedule.size(), g.numNodes());
    EXPECT_TRUE(isTopologicalOrder(g, r.schedule));
    // Non-sinks strictly before sinks.
    bool seen_sink = false;
    for (NodeId u : r.schedule) {
      if (g.isSink(u)) {
        seen_sink = true;
      } else {
        EXPECT_FALSE(seen_sink);
      }
    }
  }
}

// ---- IC-optimality of the explicit schedules (brute force) ----

class WFamily
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(WFamily, ExplicitScheduleIsICOptimal) {
  const auto [a, b] = GetParam();
  const Digraph g = makeW(a, b);
  const auto r = recognizeBlock(g);
  ASSERT_EQ(r.kind, BlockKind::kW);
  EXPECT_EQ(r.a, a);
  EXPECT_EQ(r.b, b);
  ASSERT_TRUE(r.ic_optimal);
  EXPECT_TRUE(isICOptimal(g, r.schedule));
}

INSTANTIATE_TEST_SUITE_P(
    Params, WFamily,
    ::testing::Values(std::tuple{1u, 2u}, std::tuple{1u, 5u},
                      std::tuple{2u, 2u}, std::tuple{2u, 3u},
                      std::tuple{3u, 2u}, std::tuple{3u, 3u},
                      std::tuple{4u, 2u}, std::tuple{5u, 3u}));

class MFamily
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(MFamily, ExplicitScheduleIsICOptimal) {
  const auto [a, b] = GetParam();
  const Digraph g = makeM(a, b);
  const auto r = recognizeBlock(g);
  ASSERT_EQ(r.kind, BlockKind::kM);
  EXPECT_EQ(r.a, a);
  EXPECT_EQ(r.b, b);
  ASSERT_TRUE(r.ic_optimal);
  EXPECT_TRUE(isICOptimal(g, r.schedule));
}

INSTANTIATE_TEST_SUITE_P(
    Params, MFamily,
    ::testing::Values(std::tuple{1u, 2u}, std::tuple{1u, 5u},
                      std::tuple{2u, 2u}, std::tuple{2u, 3u},
                      std::tuple{2u, 5u}, std::tuple{3u, 2u},
                      std::tuple{3u, 3u}, std::tuple{4u, 2u}));

class NFamily : public ::testing::TestWithParam<std::size_t> {};

TEST_P(NFamily, ExplicitScheduleIsICOptimal) {
  const std::size_t d = GetParam();
  const Digraph g = makeN(d);
  const auto r = recognizeBlock(g);
  ASSERT_EQ(r.kind, BlockKind::kN);
  EXPECT_EQ(r.a, d);
  ASSERT_TRUE(r.ic_optimal);
  EXPECT_TRUE(isICOptimal(g, r.schedule));
}

INSTANTIATE_TEST_SUITE_P(Params, NFamily,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u));

class CycleFamily : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CycleFamily, ExplicitScheduleIsICOptimal) {
  const std::size_t d = GetParam();
  const Digraph g = makeCycleDag(d);
  const auto r = recognizeBlock(g);
  if (d == 3) {
    // Cycle(3) == Clique(3); the recognizer reports the clique label.
    EXPECT_EQ(r.kind, BlockKind::kClique);
  } else {
    EXPECT_EQ(r.kind, BlockKind::kCycle);
    EXPECT_EQ(r.a, d);
  }
  ASSERT_TRUE(r.ic_optimal);
  EXPECT_TRUE(isICOptimal(g, r.schedule));
}

INSTANTIATE_TEST_SUITE_P(Params, CycleFamily,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 8u));

class CliqueFamily : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CliqueFamily, ExplicitScheduleIsICOptimal) {
  const std::size_t q = GetParam();
  const Digraph g = makeCliqueDag(q);
  const auto r = recognizeBlock(g);
  if (q == 2) {
    EXPECT_EQ(r.kind, BlockKind::kM);  // Clique(2) == M(1,2)
  } else {
    EXPECT_EQ(r.kind, BlockKind::kClique);
    EXPECT_EQ(r.a, q);
  }
  ASSERT_TRUE(r.ic_optimal);
  EXPECT_TRUE(isICOptimal(g, r.schedule));
}

INSTANTIATE_TEST_SUITE_P(Params, CliqueFamily,
                         ::testing::Values(2u, 3u, 4u, 5u));

// ---- Complete bipartite K(a,b) (extension family) ----

class KFamily
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(KFamily, RecognizedAndICOptimal) {
  const auto [a, b] = GetParam();
  const Digraph g = makeCompleteBipartite(a, b);
  const auto r = recognizeBlock(g);
  if (a == 2 && b == 2) {
    EXPECT_EQ(r.kind, BlockKind::kCycle);  // K(2,2) == the 4-cycle
  } else if (a == 1 || b == 1) {
    EXPECT_TRUE(r.kind == BlockKind::kW || r.kind == BlockKind::kM);
  } else {
    EXPECT_EQ(r.kind, BlockKind::kCompleteBipartite);
    EXPECT_EQ(r.a, a);
    EXPECT_EQ(r.b, b);
  }
  ASSERT_TRUE(r.ic_optimal);
  EXPECT_TRUE(isICOptimal(g, r.schedule));
}

INSTANTIATE_TEST_SUITE_P(
    Params, KFamily,
    ::testing::Values(std::tuple{1u, 4u}, std::tuple{4u, 1u},
                      std::tuple{2u, 2u}, std::tuple{2u, 3u},
                      std::tuple{3u, 2u}, std::tuple{3u, 4u},
                      std::tuple{4u, 4u}));

TEST(MakeCompleteBipartite, CountsAndValidation) {
  const Digraph g = makeCompleteBipartite(3, 5);
  EXPECT_EQ(g.numNodes(), 8u);
  EXPECT_EQ(g.numEdges(), 15u);
  EXPECT_TRUE(isBipartiteDag(g));
  EXPECT_THROW((void)makeCompleteBipartite(0, 3), prio::util::Error);
}

// ---- Fallback schedules ----

TEST(OutdegreeSchedule, PrefersHighOutdegreeButRespectsPrecedence) {
  Digraph g;
  const NodeId big = g.addNode("big");     // outdegree 3
  const NodeId small = g.addNode("small"); // outdegree 1
  const NodeId gate = g.addNode("gate");   // child of small, outdegree 2
  for (int i = 0; i < 3; ++i) g.addEdge(big, g.addNode("b" + std::to_string(i)));
  g.addEdge(small, gate);
  g.addEdge(gate, g.addNode("g0"));
  g.addEdge(gate, g.addNode("g1"));
  const auto order = outdegreeSchedule(g);
  EXPECT_TRUE(isTopologicalOrder(g, order));
  // big (outdeg 3) first; gate (outdeg 2) must wait for small.
  EXPECT_EQ(order[0], big);
  EXPECT_EQ(order[1], small);
  EXPECT_EQ(order[2], gate);
}

TEST(OutdegreeSchedule, ChainStaysInOrder) {
  Digraph g;
  NodeId prev = g.addNode("n0");
  for (int i = 1; i < 6; ++i) {
    const NodeId next = g.addNode("n" + std::to_string(i));
    g.addEdge(prev, next);
    prev = next;
  }
  const auto order = outdegreeSchedule(g);
  EXPECT_TRUE(isTopologicalOrder(g, order));
}

TEST(GreedyBipartiteSchedule, ValidAndSinksLast) {
  const Digraph g = makeW(4, 3);
  const auto order = greedyBipartiteSchedule(g);
  EXPECT_TRUE(isTopologicalOrder(g, order));
  bool seen_sink = false;
  for (NodeId u : order) {
    if (g.isSink(u)) {
      seen_sink = true;
    } else {
      EXPECT_FALSE(seen_sink);
    }
  }
}

TEST(GreedyBipartiteSchedule, FallsBackOnNonBipartite) {
  Digraph g;
  const NodeId a = g.addNode("a"), b = g.addNode("b"), c = g.addNode("c");
  g.addEdge(a, b);
  g.addEdge(b, c);
  EXPECT_TRUE(isTopologicalOrder(g, greedyBipartiteSchedule(g)));
}

}  // namespace
