// Tests for descriptive statistics and the §4.2 ratio-CI machinery.
#include <gtest/gtest.h>

#include <vector>

#include "stats/sampling.h"
#include "stats/summary.h"
#include "util/check.h"

namespace {

using namespace prio::stats;

TEST(Summary, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Summary, VarianceAndStddev) {
  EXPECT_DOUBLE_EQ(sampleVariance({}), 0.0);
  EXPECT_DOUBLE_EQ(sampleVariance({3.0}), 0.0);
  // Known: variance of {2,4,4,4,5,5,7,9} is 4.571428... (n-1 = 7).
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_NEAR(sampleVariance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(sampleStddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Summary, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Summary, PercentileInterpolates) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 12.5), 15.0);  // interpolated
}

TEST(Summary, PercentileRejectsBadInputs) {
  EXPECT_THROW(percentile({}, 50.0), prio::util::Error);
  EXPECT_THROW(percentile({1.0}, -1.0), prio::util::Error);
  EXPECT_THROW(percentile({1.0}, 101.0), prio::util::Error);
}

TEST(RunningStats, MatchesBatchComputation) {
  const std::vector<double> xs{1.5, 2.5, -3.0, 7.0, 0.0, 4.25};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), mean(xs), 1e-12);
  EXPECT_NEAR(rs.sampleVariance(), sampleVariance(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
}

TEST(SamplingDistribution, FromRawAveragesGroups) {
  // p = 2 samples, q = 3 measurements each.
  const std::vector<double> raw{1, 2, 3, 10, 20, 30};
  const auto d = SamplingDistribution::fromRaw(raw, 2, 3);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.samples()[0], 2.0);
  EXPECT_DOUBLE_EQ(d.samples()[1], 20.0);
}

TEST(SamplingDistribution, FromRawValidatesShape) {
  EXPECT_THROW(SamplingDistribution::fromRaw({1, 2, 3}, 2, 2),
               prio::util::Error);
  EXPECT_THROW(SamplingDistribution::fromRaw({}, 0, 1), prio::util::Error);
}

TEST(SamplingDistribution, HasZeroDetectsZeros) {
  SamplingDistribution d;
  d.addSample(1.0);
  EXPECT_FALSE(d.hasZero());
  d.addSample(0.0);
  EXPECT_TRUE(d.hasZero());
}

TEST(RatioSummary, IdenticalDistributionsGiveUnitRatios) {
  SamplingDistribution a, b;
  for (double x : {2.0, 2.0, 2.0}) {
    a.addSample(x);
    b.addSample(x);
  }
  const auto r = ratioSummary(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_DOUBLE_EQ(r.mean, 1.0);
  EXPECT_DOUBLE_EQ(r.median, 1.0);
  EXPECT_DOUBLE_EQ(r.ci_low, 1.0);
  EXPECT_DOUBLE_EQ(r.ci_high, 1.0);
  EXPECT_DOUBLE_EQ(r.stddev, 0.0);
  EXPECT_FALSE(r.confidentlyBelowOne());
  EXPECT_FALSE(r.confidentlyAboveOne());
}

TEST(RatioSummary, ZeroDenominatorMeansUndefined) {
  SamplingDistribution a, b;
  a.addSample(1.0);
  b.addSample(0.0);
  const auto r = ratioSummary(a, b);
  EXPECT_FALSE(r.defined);
  EXPECT_FALSE(r.confidentlyBelowOne());
}

TEST(RatioSummary, ZeroNumeratorIsFine) {
  SamplingDistribution a, b;
  a.addSample(0.0);
  b.addSample(2.0);
  const auto r = ratioSummary(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_DOUBLE_EQ(r.mean, 0.0);
}

TEST(RatioSummary, KnownSmallCase) {
  // a = {1, 3}, b = {1, 2}: ratios {1, 0.5, 3, 1.5} -> sorted
  // {0.5, 1, 1.5, 3}. With only 4 values the 2.5% trim keeps everything.
  SamplingDistribution a, b;
  a.addSample(1.0);
  a.addSample(3.0);
  b.addSample(1.0);
  b.addSample(2.0);
  const auto r = ratioSummary(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_DOUBLE_EQ(r.ci_low, 0.5);
  EXPECT_DOUBLE_EQ(r.ci_high, 3.0);
  EXPECT_DOUBLE_EQ(r.median, 1.25);
  EXPECT_DOUBLE_EQ(r.mean, 1.5);
}

TEST(RatioSummary, TrimsTails) {
  // 100 numerator samples, 1 denominator sample: 100 ratios, trim 2 each
  // side.
  SamplingDistribution a, b;
  for (int i = 1; i <= 100; ++i) a.addSample(static_cast<double>(i));
  b.addSample(1.0);
  const auto r = ratioSummary(a, b);
  ASSERT_TRUE(r.defined);
  EXPECT_DOUBLE_EQ(r.ci_low, 3.0);    // drops 1, 2
  EXPECT_DOUBLE_EQ(r.ci_high, 98.0);  // drops 99, 100
  EXPECT_DOUBLE_EQ(r.median, 50.5);
}

TEST(RatioSummary, ConfidenceFlags) {
  SamplingDistribution low, high, one;
  low.addSample(0.5);
  high.addSample(2.0);
  one.addSample(1.0);
  EXPECT_TRUE(ratioSummary(low, one).confidentlyBelowOne());
  EXPECT_TRUE(ratioSummary(high, one).confidentlyAboveOne());
  EXPECT_FALSE(ratioSummary(one, one).confidentlyBelowOne());
}

}  // namespace
