// Tests for the observability layer (src/obs/) and the PrioRequest API
// it rides on: registry snapshot consistency under concurrent writers,
// Prometheus/JSON export shape, span nesting across parallel schedule
// workers, trace-id propagation into degraded requests, the null-context
// fast path, and bit-identical equivalence of the deprecated shims.
// Runs under TSan in CI alongside test_service/test_parallel_parity.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/prio.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/service.h"
#include "stats/rng.h"
#include "util/cancellation.h"
#include "workloads/random.h"
#include "workloads/scientific.h"

namespace {

using prio::dag::Digraph;
namespace core = prio::core;
namespace obs = prio::obs;

// ---------------------------------------------------------------- metrics

TEST(Registry, RegisterOrGetReturnsStableHandles) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("requests");
  obs::Counter& b = reg.counter("requests");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.get(), 3u);
  // Registering more instruments must not move earlier handles.
  for (int i = 0; i < 100; ++i) {
    (void)reg.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(&reg.counter("requests"), &a);
  EXPECT_EQ(a.get(), 3u);
}

TEST(Registry, SnapshotConsistentUnderConcurrentIncrements) {
  obs::Registry reg;
  obs::Counter& hits = reg.counter("hits");
  obs::Histogram& lat = reg.histogram("latency");
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 20000;

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        hits.add();
        lat.record(1e-6 * static_cast<double>(i % 1024));
      }
    });
  }
  // Concurrent snapshots while writers run: totals must be monotone and
  // internally consistent (bucket sum == count).
  std::uint64_t last = 0;
  while (!stop.load()) {
    const obs::Snapshot snap = reg.snapshot();
    const std::uint64_t now = snap.counterValue("hits");
    EXPECT_GE(now, last);
    last = now;
    ASSERT_EQ(snap.histograms.size(), 1u);
    std::uint64_t bucket_sum = 0;
    for (const std::uint64_t b : snap.histograms[0].buckets) bucket_sum += b;
    EXPECT_EQ(bucket_sum, snap.histograms[0].count);
    if (now >= kThreads * kPerThread) stop.store(true);
  }
  for (auto& w : workers) w.join();

  const obs::Snapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counterValue("hits"), kThreads * kPerThread);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, kThreads * kPerThread);
}

TEST(Registry, HistogramQuantilesMatchBucketScheme) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("h");
  // 100 samples at ~3us (bucket [2,4)us), 1 at ~1ms.
  for (int i = 0; i < 100; ++i) h.record(3e-6);
  h.record(1e-3);
  const obs::Snapshot snap = reg.snapshot();
  const obs::HistogramSnapshot& hs = snap.histograms[0];
  EXPECT_EQ(hs.count, 101u);
  EXPECT_DOUBLE_EQ(hs.quantileSeconds(0.5), 4e-6);  // bucket upper bound
  // The single 1ms outlier is the top-ranked sample: the max quantile
  // must land in its [512us, 1024us) bucket, not the 3us bulk.
  EXPECT_GT(hs.quantileSeconds(1.0), 1e-3);
  EXPECT_NEAR(hs.maxSeconds(), 1e-3, 1e-6);
  EXPECT_GT(hs.meanSeconds(), 3e-6);
}

TEST(Registry, PrometheusExport) {
  obs::Registry reg;
  reg.counter("requests_completed").add(7);
  reg.gauge("queue.high_water").set(3);
  reg.histogram("latency_total").record(3e-6);
  std::ostringstream out;
  reg.snapshot().writePrometheus(out);
  const std::string text = out.str();

  EXPECT_NE(text.find("# TYPE prio_requests_completed counter"),
            std::string::npos);
  EXPECT_NE(text.find("prio_requests_completed 7"), std::string::npos);
  // Dotted names sanitize to underscores.
  EXPECT_NE(text.find("prio_queue_high_water 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE prio_latency_total_seconds histogram"),
            std::string::npos);
  // Cumulative buckets end with +Inf == count.
  EXPECT_NE(text.find("prio_latency_total_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("prio_latency_total_seconds_count 1"),
            std::string::npos);
}

TEST(Registry, JsonExportIsFlatObject) {
  obs::Registry reg;
  reg.counter("a").add(2);
  reg.histogram("h").record(1e-3);
  std::ostringstream out;
  reg.snapshot().writeJson(out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"a\":2"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

// ---------------------------------------------------------------- tracing

std::map<std::uint64_t, obs::SpanRecord> byId(
    const std::vector<obs::SpanRecord>& records) {
  std::map<std::uint64_t, obs::SpanRecord> out;
  for (const obs::SpanRecord& r : records) out[r.span_id] = r;
  return out;
}

// Every span's interval must lie within its parent's, following
// parent_id links — including spans recorded on other threads.
void expectProperNesting(const std::vector<obs::SpanRecord>& records) {
  const auto spans = byId(records);
  for (const auto& [id, r] : spans) {
    if (r.parent_id == 0) continue;
    const auto parent = spans.find(r.parent_id);
    ASSERT_NE(parent, spans.end())
        << "span " << r.name << " has unknown parent " << r.parent_id;
    EXPECT_GE(r.begin_ns, parent->second.begin_ns)
        << r.name << " begins before its parent " << parent->second.name;
    EXPECT_LE(r.end_ns, parent->second.end_ns)
        << r.name << " ends after its parent " << parent->second.name;
  }
}

TEST(Trace, DisabledContextRecordsNothing) {
  const obs::TraceContext disabled;
  EXPECT_FALSE(disabled.enabled());
  {
    obs::Span span(disabled, "noop");
    EXPECT_FALSE(span.context().enabled());
  }
  // Prioritizing with the default (disabled) context must leave any
  // tracer untouched and produce the same result as a traced run.
  prio::stats::Rng rng(42);
  const Digraph g = prio::workloads::layeredRandom(6, 30, 0.15, rng);
  const core::PrioResult plain = core::prioritize(core::PrioRequest(g));

  obs::Tracer tracer;
  core::PrioRequest traced_request(g);
  traced_request.options.trace = tracer.beginTrace();
  const core::PrioResult traced = core::prioritize(traced_request);

  EXPECT_EQ(plain.schedule, traced.schedule);
  EXPECT_EQ(plain.priority, traced.priority);
  EXPECT_GT(tracer.drain().records.size(), 0u);

  obs::Tracer untouched;
  core::PrioRequest request(g);  // default options: tracing disabled
  (void)core::prioritize(request);
  EXPECT_EQ(untouched.drain().records.size(), 0u);
}

TEST(Trace, PipelinePhasesNestUnderRoot) {
  prio::stats::Rng rng(7);
  const Digraph g = prio::workloads::layeredRandom(8, 40, 0.1, rng);
  obs::Tracer tracer;
  core::PrioRequest request(g);
  request.options.trace = tracer.beginTrace();
  (void)core::prioritize(request);

  const auto drained = tracer.drain();
  EXPECT_EQ(drained.dropped, 0u);
  expectProperNesting(drained.records);

  std::map<std::string, int> counts;
  std::uint64_t trace_id = 0;
  for (const obs::SpanRecord& r : drained.records) {
    ++counts[r.name];
    if (trace_id == 0) trace_id = r.trace_id;
    EXPECT_EQ(r.trace_id, trace_id) << "span " << r.name;
  }
  EXPECT_EQ(counts["prio.pipeline"], 1);
  EXPECT_EQ(counts["prio.reduce"], 1);
  EXPECT_EQ(counts["reduce.topo_order"], 1);
  EXPECT_EQ(counts["reduce.filter"], 1);
  EXPECT_EQ(counts["prio.decompose"], 1);
  EXPECT_EQ(counts["prio.schedule"], 1);
  EXPECT_GE(counts["schedule.item"], 1);
  EXPECT_EQ(counts["prio.combine"], 1);
  EXPECT_EQ(counts["prio.assemble"], 1);
}

TEST(Trace, SpansNestAcrossParallelScheduleWorkers) {
  prio::stats::Rng rng(99);
  // Many mid-size components => several parallel work items.
  const Digraph g = prio::workloads::layeredRandom(4, 160, 0.04, rng);
  obs::Tracer tracer;
  core::PrioRequest request(g);
  request.options.trace = tracer.beginTrace();
  request.options.schedule_threads = 4;
  const core::PrioResult parallel = core::prioritize(request);

  const auto drained = tracer.drain();
  expectProperNesting(drained.records);

  // All schedule.item spans are children of the one prio.schedule span,
  // whatever thread recorded them.
  const auto spans = byId(drained.records);
  std::uint64_t schedule_span = 0;
  for (const auto& [id, r] : spans) {
    if (std::string(r.name) == "prio.schedule") schedule_span = id;
  }
  ASSERT_NE(schedule_span, 0u);
  std::size_t items = 0;
  for (const auto& [id, r] : spans) {
    if (std::string(r.name) == "schedule.item") {
      ++items;
      EXPECT_EQ(r.parent_id, schedule_span);
    }
  }
  EXPECT_GE(items, 1u);

  // Parity: tracing a parallel run must not perturb the result.
  const core::PrioResult serial = core::prioritize(core::PrioRequest(g));
  EXPECT_EQ(parallel.schedule, serial.schedule);
  EXPECT_EQ(parallel.priority, serial.priority);
}

TEST(Trace, CoversPipelineWallTimeOnAirsn) {
  // Acceptance gate: on AIRSN the phase spans under prio.pipeline cover
  // >= 95% of the pipeline's wall time. A preemption between two phase
  // spans can open a gap on a loaded box, so take the best of a few
  // runs — the structure, not scheduler luck, is what's under test.
  const Digraph g = prio::workloads::makeAirsn({});
  double best_coverage = 0.0;
  for (int attempt = 0; attempt < 5 && best_coverage < 0.95; ++attempt) {
    obs::Tracer tracer;
    core::PrioRequest request(g);
    request.options.trace = tracer.beginTrace();
    (void)core::prioritize(request);

    const auto drained = tracer.drain();
    expectProperNesting(drained.records);
    std::uint64_t root_ns = 0, child_ns = 0, root_id = 0;
    for (const obs::SpanRecord& r : drained.records) {
      if (std::string(r.name) == "prio.pipeline") {
        root_ns = r.end_ns - r.begin_ns;
        root_id = r.span_id;
      }
    }
    ASSERT_GT(root_ns, 0u);
    for (const obs::SpanRecord& r : drained.records) {
      if (r.parent_id == root_id) child_ns += r.end_ns - r.begin_ns;
    }
    best_coverage = std::max(
        best_coverage,
        static_cast<double>(child_ns) / static_cast<double>(root_ns));
  }
  EXPECT_GE(best_coverage, 0.95)
      << "phase spans cover only " << 100.0 * best_coverage
      << "% of the pipeline span across 5 runs";
}

TEST(Trace, ChromeExportIsWellFormed) {
  const Digraph g = prio::workloads::makeAirsn({});
  obs::Tracer tracer;
  core::PrioRequest request(g);
  request.options.trace = tracer.beginTrace();
  (void)core::prioritize(request);

  std::ostringstream out;
  const auto drained = tracer.drain();
  obs::writeChromeTrace(out, drained.records);
  const std::string json = out.str();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  // One X event per record, balanced braces (no raw strings in names to
  // escape), and a ts/dur pair in every event.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(json.begin(), json.end(), '{')),
            static_cast<std::size_t>(
                std::count(json.begin(), json.end(), '}')));
  std::size_t events = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos; ++pos) {
    ++events;
  }
  EXPECT_EQ(events, drained.records.size());
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  const std::string summary = obs::traceSummary(drained.records);
  EXPECT_NE(summary.find("prio.pipeline"), std::string::npos);
}

TEST(Trace, FallbackSpanCarriesRequestTraceId) {
  // A service under an impossible compute deadline degrades every
  // computed request; the prio.fallback span must carry the same trace
  // id the reply reports.
  prio::stats::Rng rng(5);
  const Digraph g = prio::workloads::layeredRandom(10, 60, 0.12, rng);

  obs::Tracer tracer;
  prio::service::ServiceConfig config;
  config.num_threads = 1;
  config.cache_capacity = 0;
  config.compute_deadline_s = 1e-9;  // expires at the first poll
  config.tracer = &tracer;
  prio::service::PrioService service(config);
  const prio::service::Reply reply = service.submit(g).get();

  ASSERT_EQ(reply.status, prio::service::RequestStatus::kDegraded);
  EXPECT_NE(reply.trace_id, 0u);

  const auto drained = tracer.drain();
  bool found_fallback = false;
  for (const obs::SpanRecord& r : drained.records) {
    if (std::string(r.name) == "prio.fallback") {
      found_fallback = true;
      EXPECT_EQ(r.trace_id, reply.trace_id);
    }
  }
  EXPECT_TRUE(found_fallback);
  expectProperNesting(drained.records);
}

TEST(Trace, ServiceRequestsGetDistinctTraceIds) {
  prio::stats::Rng rng(11);
  obs::Tracer tracer;
  prio::service::ServiceConfig config;
  config.num_threads = 2;
  config.cache_capacity = 0;
  config.tracer = &tracer;
  prio::service::PrioService service(config);

  std::vector<std::future<prio::service::Reply>> futures;
  for (int i = 0; i < 6; ++i) {
    futures.push_back(
        service.submit(prio::workloads::randomDag(40, 0.1, rng)));
  }
  std::vector<std::uint64_t> ids;
  for (auto& f : futures) {
    const auto reply = f.get();
    ASSERT_EQ(reply.status, prio::service::RequestStatus::kOk);
    ids.push_back(reply.trace_id);
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_NE(ids.front(), 0u);
  expectProperNesting(tracer.drain().records);
}

TEST(Trace, RingOverflowCountsDropped) {
  obs::Tracer tracer(/*ring_capacity=*/8);
  const obs::TraceContext ctx = tracer.beginTrace();
  for (int i = 0; i < 20; ++i) {
    obs::Span span(ctx, "tick");
  }
  const auto drained = tracer.drain();
  EXPECT_EQ(drained.records.size(), 8u);
  EXPECT_EQ(drained.dropped, 12u);
}

// -------------------------------------------------- deprecated-shim parity

// The pre-PrioRequest overloads must stay bit-identical to the request
// API until removal (see PRIO_API_VERSION).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

TEST(ApiShims, PrioritizeOverloadMatchesRequestForm) {
  prio::stats::Rng rng(123);
  for (int i = 0; i < 10; ++i) {
    const Digraph g = prio::workloads::randomDag(50, 0.08, rng);
    const core::PrioResult via_request =
        core::prioritize(core::PrioRequest(g));
    const core::PrioResult via_shim = core::prioritize(g);
    EXPECT_EQ(via_request.schedule, via_shim.schedule);
    EXPECT_EQ(via_request.priority, via_shim.priority);
    EXPECT_EQ(via_request.certified_ic_optimal, via_shim.certified_ic_optimal);
    EXPECT_EQ(via_request.shortcuts_removed, via_shim.shortcuts_removed);
  }
}

TEST(ApiShims, WithReductionOverloadMatchesRequestForm) {
  prio::stats::Rng rng(321);
  const Digraph g = prio::workloads::randomDag(60, 0.1, rng);
  const Digraph reduced = prio::dag::transitiveReduction(g);

  core::PrioRequest request(g);
  request.reduced = &reduced;
  const core::PrioResult via_request = core::prioritize(request);
  const core::PrioResult via_shim = core::prioritizeWithReduction(g, reduced);
  EXPECT_EQ(via_request.schedule, via_shim.schedule);
  EXPECT_EQ(via_request.priority, via_shim.priority);
}

TEST(ApiShims, ScheduleComponentsOverloadMatchesRequestForm) {
  prio::stats::Rng rng(777);
  const Digraph g = prio::workloads::layeredRandom(5, 50, 0.1, rng);
  const Digraph reduced = prio::dag::transitiveReduction(g);
  core::DecomposeOptions dopt;
  dopt.defer_component_graphs = true;
  core::Decomposition a = core::decompose(reduced, dopt);
  core::Decomposition b = core::decompose(reduced, dopt);

  core::ScheduleRequest sreq;
  sreq.reduced = &reduced;
  sreq.decomposition = &a;
  const auto via_request = core::scheduleComponents(sreq);
  const auto via_shim = core::scheduleComponents(reduced, b, {});
  ASSERT_EQ(via_request.size(), via_shim.size());
  for (std::size_t i = 0; i < via_request.size(); ++i) {
    EXPECT_EQ(via_request[i].recognition.schedule,
              via_shim[i].recognition.schedule);
    EXPECT_EQ(via_request[i].profile, via_shim[i].profile);
  }
}

#pragma GCC diagnostic pop

// Deadline semantics of the unified options: deadline_s arms an internal
// token with the same observable behavior as an explicit CancelToken.
TEST(ApiShims, DeadlineOptionMatchesExplicitToken) {
  prio::stats::Rng rng(55);
  const Digraph g = prio::workloads::layeredRandom(8, 40, 0.1, rng);

  core::PrioRequest relaxed(g);
  relaxed.options.deadline_s = 3600.0;  // never fires
  const core::PrioResult r1 = core::prioritize(relaxed);
  const core::PrioResult r2 = core::prioritize(core::PrioRequest(g));
  EXPECT_EQ(r1.schedule, r2.schedule);

  // An explicit token takes precedence over deadline_s.
  prio::util::CancelToken fired;
  fired.cancel();
  core::PrioRequest doomed(g);
  doomed.options.cancel = &fired;
  doomed.options.deadline_s = 3600.0;
  EXPECT_THROW((void)core::prioritize(doomed), prio::util::Cancelled);
}

}  // namespace
