// Tests for the §4.1 system-model distributions.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/distributions.h"
#include "stats/rng.h"
#include "stats/summary.h"
#include "util/check.h"

namespace {

using namespace prio::stats;

TEST(Exponential, RejectsNonPositiveMean) {
  EXPECT_THROW(Exponential(0.0), prio::util::Error);
  EXPECT_THROW(Exponential(-1.0), prio::util::Error);
}

TEST(Exponential, SamplesArePositive) {
  Rng rng(1);
  Exponential e(2.0);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(e.sample(rng), 0.0);
}

class ExponentialMean : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMean, EmpiricalMeanMatches) {
  const double mu = GetParam();
  Rng rng(2);
  Exponential e(mu);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += e.sample(rng);
  EXPECT_NEAR(sum / n, mu, mu * 0.03);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMean,
                         ::testing::Values(1e-3, 0.1, 1.0, 10.0, 1e3));

TEST(Exponential, MedianIsMeanTimesLn2) {
  Rng rng(3);
  Exponential e(5.0);
  std::vector<double> xs;
  for (int i = 0; i < 100001; ++i) xs.push_back(e.sample(rng));
  EXPECT_NEAR(median(xs), 5.0 * std::log(2.0), 0.15);
}

TEST(Normal, EmpiricalMomentsMatch) {
  Rng rng(4);
  Normal n(1.0, 0.1);
  std::vector<double> xs;
  for (int i = 0; i < 100000; ++i) xs.push_back(n.sample(rng));
  EXPECT_NEAR(mean(xs), 1.0, 0.005);
  EXPECT_NEAR(sampleStddev(xs), 0.1, 0.005);
}

TEST(Normal, ZeroStddevIsConstant) {
  Rng rng(5);
  Normal n(3.0, 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(n.sample(rng), 3.0);
}

TEST(Normal, SymmetricAroundMean) {
  Rng rng(6);
  Normal n(0.0, 1.0);
  int above = 0;
  const int total = 100000;
  for (int i = 0; i < total; ++i) {
    if (n.sample(rng) > 0.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / total, 0.5, 0.01);
}

TEST(JobRuntime, AlwaysPositive) {
  Rng rng(7);
  // Aggressive parameters that would often sample negative without
  // truncation.
  JobRuntime rt(0.1, 1.0, 1e-6);
  for (int i = 0; i < 20000; ++i) EXPECT_GT(rt.sample(rng), 0.0);
}

TEST(JobRuntime, PaperParametersMeanNearOne) {
  Rng rng(8);
  JobRuntime rt;  // normal(1, 0.1)
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rt.sample(rng);
  EXPECT_NEAR(sum / n, 1.0, 0.005);
}

TEST(BatchSize, AtLeastOne) {
  Rng rng(9);
  BatchSize bs(0.01);  // tiny mean: nearly every raw sample rounds to 0
  for (int i = 0; i < 10000; ++i) EXPECT_GE(bs.sample(rng), 1u);
}

class BatchSizeMean : public ::testing::TestWithParam<double> {};

TEST_P(BatchSizeMean, LargeMeansAreApproximatelyPreserved) {
  const double mu = GetParam();
  Rng rng(10);
  BatchSize bs(mu);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(bs.sample(rng));
  // Rounding + the floor at 1 distort small means; for mu >= 4 the
  // distortion is within a few percent.
  EXPECT_NEAR(sum / n, mu, mu * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Means, BatchSizeMean,
                         ::testing::Values(4.0, 16.0, 256.0, 65536.0));

TEST(BatchSize, MeanOneIsBiasedUpButBounded) {
  Rng rng(11);
  BatchSize bs(1.0);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(bs.sample(rng));
  const double m = sum / n;
  EXPECT_GT(m, 1.0);   // the floor at 1 raises the mean
  EXPECT_LT(m, 1.55);  // but not beyond E[max(1, round(Exp(1)))] ~ 1.45
}

}  // namespace
