// Tests for the Condor two-queue system model (§3.2).
#include <gtest/gtest.h>

#include "condor/system.h"
#include "core/prio.h"
#include "stats/rng.h"
#include "util/check.h"
#include "workloads/scientific.h"

namespace {

using namespace prio;
using condor::CondorOptions;
using condor::runCondorSystem;

dag::Digraph chainDag(std::size_t n) {
  dag::Digraph g;
  auto prev = g.addNode("n0");
  for (std::size_t i = 1; i < n; ++i) {
    const auto next = g.addNode("n" + std::to_string(i));
    g.addEdge(prev, next);
    prev = next;
  }
  return g;
}

TEST(CondorSystem, RunsDagToCompletion) {
  const auto g = workloads::makeAirsn({10, 3});
  CondorOptions opt;
  stats::Rng rng(1);
  const auto r = runCondorSystem(g, {}, opt, rng);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.negotiation_cycles, 0u);
  EXPECT_GT(r.slot_utilization, 0.0);
  EXPECT_LE(r.slot_utilization, 1.0 + 1e-9);
}

TEST(CondorSystem, DeterministicForSeed) {
  const auto g = workloads::makeAirsn({8, 3});
  CondorOptions opt;
  stats::Rng a(2), b(2);
  const auto r1 = runCondorSystem(g, {}, opt, a);
  const auto r2 = runCondorSystem(g, {}, opt, b);
  EXPECT_DOUBLE_EQ(r1.makespan, r2.makespan);
  EXPECT_EQ(r1.peak_staging_bytes, r2.peak_staging_bytes);
}

TEST(CondorSystem, StagingAccountsResidentJobs) {
  // A wide antichain forwarded unthrottled stages everything at once.
  dag::Digraph g;
  for (int i = 0; i < 100; ++i) g.addNode("n" + std::to_string(i));
  CondorOptions opt;
  opt.staging_bytes_per_job = 1000;
  opt.slots = 4;
  stats::Rng rng(3);
  const auto r = runCondorSystem(g, {}, opt, rng);
  EXPECT_EQ(r.peak_staging_bytes, 100u * 1000u);

  // Throttled to 8 resident jobs, the peak shrinks accordingly.
  opt.max_forwarded = 8;
  stats::Rng rng2(3);
  const auto throttled = runCondorSystem(g, {}, opt, rng2);
  EXPECT_EQ(throttled.peak_staging_bytes, 8u * 1000u);
}

TEST(CondorSystem, ChainMakespanDominatedByNegotiationPeriod) {
  // A chain of 10 unit jobs with negotiation every 2 time units: each
  // job waits for the next cycle, so the makespan is ~10 * 2.
  const auto g = chainDag(10);
  CondorOptions opt;
  opt.negotiation_period = 2.0;
  stats::Rng rng(4);
  const auto r = runCondorSystem(g, {}, opt, rng);
  EXPECT_GT(r.makespan, 17.0);
  EXPECT_LT(r.makespan, 23.0);
}

TEST(CondorSystem, PrioritiesChangeMatchOrder) {
  // Two independent jobs, one slot: the higher jobpriority runs first.
  dag::Digraph g;
  const auto low = g.addNode("low");
  const auto high = g.addNode("high");
  g.addEdge(low, g.addNode("low_child"));
  g.addEdge(high, g.addNode("high_child"));
  std::vector<std::size_t> prio_values(g.numNodes(), 0);
  prio_values[high] = 10;
  prio_values[low] = 1;
  prio_values[*g.findNode("high_child")] = 9;
  prio_values[*g.findNode("low_child")] = 2;

  CondorOptions opt;
  opt.slots = 1;
  opt.negotiation_period = 10.0;  // one match per cycle, widely spaced
  stats::Rng rng(5);
  const auto with = runCondorSystem(g, prio_values, opt, rng);
  // With priorities, "high" matches in cycle 1 and "high_child" becomes
  // eligible sooner; makespan dominated by cycle count either way — the
  // check below is on queue ORDER via the starvation-free invariant.
  EXPECT_GT(with.makespan, 0.0);

  // FIFO (no priorities): same jobs complete; determinism check only.
  opt.use_priorities = false;
  stats::Rng rng2(5);
  const auto without = runCondorSystem(g, prio_values, opt, rng2);
  EXPECT_GT(without.makespan, 0.0);
}

TEST(CondorSystem, UnthrottledPrioBeatsThrottledOnAirsn) {
  // The §3.2 story told inside the system model: prio's priorities help
  // only when DAGMan forwards everything.
  const auto g = workloads::makeAirsn({});
  const auto result = core::prioritize(core::PrioRequest(g));
  CondorOptions opt;
  opt.slots = 16;
  opt.negotiation_period = 1.0;
  stats::Rng rng(6);

  auto mean_makespan = [&](std::size_t max_forwarded) {
    opt.max_forwarded = max_forwarded;
    double total = 0.0;
    const int reps = 8;
    for (int i = 0; i < reps; ++i) {
      stats::Rng r = rng.fork();
      total += runCondorSystem(g, result.priority, opt, r).makespan;
    }
    return total / reps;
  };

  const double unthrottled = mean_makespan(0);
  const double tight = mean_makespan(4);
  EXPECT_LT(unthrottled, tight);
}

TEST(CondorSystem, DagmanQueuePrioritizationRecoversThrottledGain) {
  // The paper's proposed Condor modification: with a tight -maxjobs,
  // forwarding the DAGMan queue by jobpriority recovers (most of) the
  // PRIO advantage that plain FIFO forwarding destroys.
  const auto g = workloads::makeAirsn({});
  const auto result = core::prioritize(core::PrioRequest(g));
  CondorOptions opt;
  opt.slots = 16;
  opt.negotiation_period = 1.0;
  opt.max_forwarded = 16;
  stats::Rng rng(42);

  auto mean_makespan = [&](bool fix) {
    opt.prioritize_dagman_queue = fix;
    double total = 0.0;
    const int reps = 10;
    for (int i = 0; i < reps; ++i) {
      stats::Rng r = rng.fork();
      total += runCondorSystem(g, result.priority, opt, r).makespan;
    }
    return total / reps;
  };

  const double stock = mean_makespan(false);
  const double fixed = mean_makespan(true);
  EXPECT_LT(fixed, stock * 0.95);
}

TEST(CondorSystem, StarvedCyclesDetectGridlock) {
  // One long chain, many slots: almost every cycle has idle slots and an
  // empty queue (only one job runnable at a time, and it is running).
  const auto g = chainDag(6);
  CondorOptions opt;
  opt.slots = 8;
  opt.negotiation_period = 0.1;
  stats::Rng rng(7);
  const auto r = runCondorSystem(g, {}, opt, rng);
  EXPECT_GT(r.starved_cycles, r.negotiation_cycles / 2);
}

TEST(CondorSystem, BackgroundLoadSlowsTheDag) {
  // Competing jobs intercept slots; the dag's makespan grows with the
  // background rate.
  const auto g = workloads::makeAirsn({20, 4});
  CondorOptions opt;
  opt.slots = 8;
  opt.negotiation_period = 0.5;
  auto mean_makespan = [&](double rate) {
    opt.background_job_rate = rate;
    stats::Rng rng(77);
    double total = 0.0;
    const int reps = 10;
    for (int i = 0; i < reps; ++i) {
      stats::Rng r = rng.fork();
      total += runCondorSystem(g, {}, opt, r).makespan;
    }
    return total / reps;
  };
  const double dedicated = mean_makespan(0.0);
  const double contended = mean_makespan(8.0);
  EXPECT_GT(contended, dedicated * 1.1);
}

TEST(CondorSystem, BackgroundJobsActuallyRun) {
  const auto g = workloads::makeAirsn({10, 3});
  CondorOptions opt;
  opt.slots = 8;
  opt.background_job_rate = 4.0;
  stats::Rng rng(78);
  const auto r = runCondorSystem(g, {}, opt, rng);
  EXPECT_GT(r.background_jobs_run, 0u);
}

TEST(CondorSystem, NoBackgroundByDefault) {
  const auto g = workloads::makeAirsn({8, 3});
  CondorOptions opt;
  stats::Rng rng(79);
  const auto r = runCondorSystem(g, {}, opt, rng);
  EXPECT_EQ(r.background_jobs_run, 0u);
}

TEST(CondorSystem, ValidatesInputs) {
  const auto g = chainDag(2);
  stats::Rng rng(8);
  CondorOptions opt;
  opt.slots = 0;
  EXPECT_THROW((void)runCondorSystem(g, {}, opt, rng), util::Error);
  opt.slots = 1;
  opt.negotiation_period = 0.0;
  EXPECT_THROW((void)runCondorSystem(g, {}, opt, rng), util::Error);
  opt.negotiation_period = 1.0;
  const std::vector<std::size_t> wrong{1};
  EXPECT_THROW((void)runCondorSystem(g, wrong, opt, rng), util::Error);
}

TEST(CondorSystem, EmptyDag) {
  dag::Digraph g;
  CondorOptions opt;
  stats::Rng rng(9);
  const auto r = runCondorSystem(g, {}, opt, rng);
  EXPECT_DOUBLE_EQ(r.makespan, 0.0);
}

}  // namespace
