// Tests for the simulation trace layer and dag statistics.
#include <gtest/gtest.h>

#include <sstream>

#include "core/prio.h"
#include "dag/stats.h"
#include "sim/trace.h"
#include "stats/rng.h"
#include "workloads/scientific.h"

namespace {

using namespace prio;
using sim::TraceEvent;

TEST(Trace, MetricsMatchUntracedRun) {
  const auto g = workloads::makeAirsn({10, 3});
  sim::GridModel m;
  m.mean_batch_size = 8.0;
  stats::Rng a(3), b(3);
  const auto plain = sim::simulateFifo(g, m, a);
  const auto traced = sim::traceRun(g, sim::Regimen::kFifo, {}, m, b);
  EXPECT_DOUBLE_EQ(plain.makespan, traced.metrics.makespan);
  EXPECT_EQ(plain.requests_counted, traced.metrics.requests_counted);
  EXPECT_EQ(plain.batches_stalled, traced.metrics.batches_stalled);
}

TEST(Trace, EventStreamIsConsistent) {
  const auto g = workloads::makeAirsn({8, 3});
  const auto order = core::prioritize(core::PrioRequest(g)).schedule;
  sim::GridModel m;
  stats::Rng rng(7);
  const auto trace = sim::traceRun(g, sim::Regimen::kOblivious, order, m, rng);

  std::size_t dispatches = 0, completions = 0, batches = 0;
  double last_time = 0.0;
  std::vector<char> dispatched(g.numNodes(), 0), completed(g.numNodes(), 0);
  for (const TraceEvent& e : trace.events) {
    EXPECT_GE(e.time, 0.0);
    switch (e.kind) {
      case TraceEvent::Kind::kBatchArrival:
        ++batches;
        EXPECT_GE(e.payload, 1u);
        EXPECT_GE(e.time, last_time);  // batches arrive in time order
        last_time = e.time;
        break;
      case TraceEvent::Kind::kDispatch:
        ++dispatches;
        ASSERT_LT(e.job, g.numNodes());
        EXPECT_FALSE(dispatched[e.job]) << "double dispatch";
        dispatched[e.job] = 1;
        break;
      case TraceEvent::Kind::kCompletion:
        ++completions;
        ASSERT_LT(e.job, g.numNodes());
        EXPECT_TRUE(dispatched[e.job]) << "completion before dispatch";
        EXPECT_FALSE(completed[e.job]);
        completed[e.job] = 1;
        // All parents completed first (precedence at the event level).
        for (const auto p : g.parents(e.job)) EXPECT_TRUE(completed[p]);
        break;
    }
  }
  EXPECT_EQ(dispatches, g.numNodes());
  EXPECT_EQ(completions, g.numNodes());
  EXPECT_GE(batches, trace.metrics.batches_counted);
}

TEST(Trace, CsvHasOneLinePerEventPlusHeader) {
  const auto g = workloads::makeAirsn({5, 2});
  sim::GridModel m;
  stats::Rng rng(9);
  const auto trace = sim::traceRun(g, sim::Regimen::kFifo, {}, m, rng);
  std::ostringstream out;
  sim::writeTraceCsv(out, g, trace);
  std::size_t lines = 0;
  std::string line;
  std::istringstream in(out.str());
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, trace.events.size() + 1);
  EXPECT_NE(out.str().find("dispatch"), std::string::npos);
  EXPECT_NE(out.str().find("completion"), std::string::npos);
}

TEST(DagStats, ChainAndAirsn) {
  {
    dag::Digraph g;
    auto prev = g.addNode("n0");
    for (int i = 1; i < 5; ++i) {
      const auto next = g.addNode("n" + std::to_string(i));
      g.addEdge(prev, next);
      prev = next;
    }
    const auto s = dag::computeStats(g);
    EXPECT_EQ(s.depth, 5u);
    EXPECT_EQ(s.max_width, 1u);
    EXPECT_EQ(s.level_widths, std::vector<std::size_t>(5, 1));
    EXPECT_DOUBLE_EQ(s.average_parallelism, 1.0);
    EXPECT_EQ(s.out_degree_histogram.at(1), 4u);
    EXPECT_EQ(s.out_degree_histogram.at(0), 1u);
  }
  {
    const auto g = workloads::makeAirsn({10, 4});
    const auto s = dag::computeStats(g);
    EXPECT_EQ(s.nodes, g.numNodes());
    EXPECT_EQ(s.sources, 11u);  // handle start + 10 fringes
    EXPECT_EQ(s.sinks, 1u);
    EXPECT_EQ(s.max_width, 11u);  // level 0: handle start + 10 fringes
    EXPECT_FALSE(s.summary().empty());
  }
}

TEST(DagStats, EmptyGraph) {
  const auto s = dag::computeStats(dag::Digraph{});
  EXPECT_EQ(s.nodes, 0u);
  EXPECT_EQ(s.depth, 0u);
}

TEST(DagStats, LevelWidthsSumToNodes) {
  const auto g = workloads::makeMontage({4, 6, 2});
  const auto s = dag::computeStats(g);
  std::size_t total = 0;
  for (const auto w : s.level_widths) total += w;
  EXPECT_EQ(total, s.nodes);
}

}  // namespace
