// Tests for the v3 typed-payload wire surface (DESIGN.md §15): BDAG /
// BPRI golden bytes and seeded round-trips, decode hardening against
// hostile payloads (truncation, bit flips, overflow, cycle smuggling —
// the server must answer kFailed, never crash a reactor), the batch
// envelope codecs and their end-to-end semantics (one bad item degrades
// itself, not the batch), the parse cache, the max_batch_payload cap,
// v1/v2/v3 interleaving on one raw socket, and byte-identity of the
// deprecated TextRequest/serveText/usableOutput shims.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dag/csr.h"
#include "dag/algorithms.h"
#include "dagman/dagman_file.h"
#include "net/client.h"
#include "net/protocol.h"
#include "net/server.h"
#include "service/service.h"
#include "stats/rng.h"
#include "util/check.h"
#include "util/socket.h"
#include "workloads/random.h"
#include "workloads/scientific.h"

namespace {

using namespace prio;
using net::Frame;
using net::FrameDecoder;
using net::FrameType;
using net::Status;

constexpr const char* kFig3 =
    "Job a a.submit\n"
    "Job b b.submit\n"
    "Job c c.submit\n"
    "Job d d.submit\n"
    "Job e e.submit\n"
    "PARENT a CHILD b\n"
    "PARENT c CHILD d e\n";

void putU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 24) & 0xff));
}

/// Hand-assembles a BDAG payload from raw arrays — the attacker's view
/// of the codec, unconstrained by Digraph invariants.
std::string craftBdag(std::uint32_t n, std::uint32_t m,
                      const std::vector<std::uint32_t>& child_offsets,
                      const std::vector<std::uint32_t>& child_edges,
                      const std::vector<std::uint32_t>& name_offsets,
                      const std::string& blob) {
  std::string out;
  out.append("BDAG");
  out.push_back('\x01');
  out.push_back('\x00');
  out.push_back('\x00');
  out.push_back('\x00');
  putU32(out, n);
  putU32(out, m);
  for (const std::uint32_t v : child_offsets) putU32(out, v);
  for (const std::uint32_t v : child_edges) putU32(out, v);
  for (const std::uint32_t v : name_offsets) putU32(out, v);
  out.append(blob);
  return out;
}

/// DAGMan text for a digraph, jobs in id order — the text-path twin of
/// encodeBinaryDag for parity tests.
std::string dagTextOf(const dag::Digraph& g) {
  dagman::DagmanFile file;
  for (dag::NodeId u = 0; u < g.numNodes(); ++u) {
    file.addJob(g.name(u), "job.submit");
  }
  for (dag::NodeId u = 0; u < g.numNodes(); ++u) {
    for (dag::NodeId v : g.children(u)) {
      file.addDependency(g.name(u), g.name(v));
    }
  }
  std::ostringstream out;
  file.write(out);
  return std::move(out).str();
}

void expectSameStructure(const dag::Digraph& a, const dag::Digraph& b) {
  ASSERT_EQ(a.numNodes(), b.numNodes());
  ASSERT_EQ(a.numEdges(), b.numEdges());
  for (dag::NodeId u = 0; u < a.numNodes(); ++u) {
    EXPECT_EQ(a.name(u), b.name(u));
    const auto ac = a.children(u);
    const auto bc = b.children(u);
    ASSERT_EQ(ac.size(), bc.size()) << "node " << u;
    EXPECT_TRUE(std::equal(ac.begin(), ac.end(), bc.begin()));
    // Parent order depends on edge insertion order, which a round-trip
    // normalizes to ascending source id; compare as sets.
    std::vector<dag::NodeId> ap(a.parents(u).begin(), a.parents(u).end());
    std::vector<dag::NodeId> bp(b.parents(u).begin(), b.parents(u).end());
    std::sort(ap.begin(), ap.end());
    std::sort(bp.begin(), bp.end());
    EXPECT_EQ(ap, bp) << "node " << u;
  }
}

class ServerFixture {
 public:
  explicit ServerFixture(net::ServerConfig config = {}) {
    config.port = 0;
    server_ = std::make_unique<net::Server>(config);
    thread_ = std::thread([this] { server_->run(); });
  }
  ~ServerFixture() {
    if (thread_.joinable()) {
      server_->requestStop();
      thread_.join();
    }
  }
  net::Server& server() { return *server_; }
  [[nodiscard]] std::uint16_t port() const { return server_->port(); }

 private:
  std::unique_ptr<net::Server> server_;
  std::thread thread_;
};

// ------------------------------------------------------- codec goldens

TEST(BinaryCodec, GoldenBdagBytes) {
  dag::Digraph g;
  g.addNode("a");
  g.addNode("b");
  g.addNode("c");
  g.addEdge(0, 1);
  g.addEdge(0, 2);
  const std::string wire = dag::encodeBinaryDag(g);

  std::string expected;
  expected.append("BDAG");                      // magic 0x47414442 LE
  expected.append("\x01\x00", 2);               // version 1
  expected.append("\x00\x00", 2);               // flags
  putU32(expected, 3);                          // n
  putU32(expected, 2);                          // m
  for (std::uint32_t v : {0u, 2u, 2u, 2u}) putU32(expected, v);
  for (std::uint32_t v : {1u, 2u}) putU32(expected, v);
  for (std::uint32_t v : {0u, 1u, 2u, 3u}) putU32(expected, v);
  expected.append("abc");
  EXPECT_EQ(wire, expected);

  const dag::Digraph back = dag::decodeBinaryDag(wire);
  expectSameStructure(g, back);
  // Re-encode stability: decode preserves child order, so the bytes fix.
  EXPECT_EQ(dag::encodeBinaryDag(back), wire);
}

TEST(BinaryCodec, GoldenBpriBytes) {
  const std::vector<std::size_t> priorities{2, 0, 1};
  const std::string wire = dag::encodeBinaryPriorities(priorities);
  std::string expected;
  expected.append("BPRI");                      // magic 0x49525042 LE
  expected.append("\x01\x00", 2);
  expected.append("\x00\x00", 2);
  putU32(expected, 3);
  for (std::uint32_t v : {2u, 0u, 1u}) putU32(expected, v);
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(dag::decodeBinaryPriorities(wire), priorities);
}

TEST(BinaryCodec, SeededRoundTrips) {
  stats::Rng rng(20260808);
  int done = 0;
  for (int i = 0; i < 210; ++i) {
    const std::size_t n = 1 + (i % 60);
    const double p = 0.02 + 0.3 * static_cast<double>(i % 7) / 7.0;
    const dag::Digraph g = workloads::randomDag(n, p, rng);
    const std::string wire = dag::encodeBinaryDag(g);
    const dag::Digraph back = dag::decodeBinaryDag(wire);
    expectSameStructure(g, back);
    EXPECT_EQ(dag::encodeBinaryDag(back), wire);
    EXPECT_TRUE(dag::topologicalOrder(back).has_value());
    ++done;
  }
  EXPECT_EQ(done, 210);

  // The empty dag is a valid payload too.
  const dag::Digraph empty;
  EXPECT_EQ(dag::decodeBinaryDag(dag::encodeBinaryDag(empty)).numNodes(), 0u);
}

// ---------------------------------------------------- decode hardening

TEST(BinaryCodec, EveryTruncationRejects) {
  stats::Rng rng(7);
  const std::string wire =
      dag::encodeBinaryDag(workloads::randomDag(30, 0.15, rng));
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_THROW((void)dag::decodeBinaryDag(wire.substr(0, len)),
                 util::Error)
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(BinaryCodec, BitFlipsNeverCrash) {
  stats::Rng rng(99);
  const std::string wire =
      dag::encodeBinaryDag(workloads::randomDag(25, 0.2, rng));
  for (int i = 0; i < 500; ++i) {
    std::string mutated = wire;
    const std::size_t byte = rng() % mutated.size();
    mutated[byte] = static_cast<char>(mutated[byte] ^ (1u << (rng() % 8)));
    try {
      const dag::Digraph g = dag::decodeBinaryDag(mutated);
      // A surviving mutant must still be a structurally valid dag.
      EXPECT_TRUE(dag::topologicalOrder(g).has_value());
    } catch (const util::Error&) {
      // rejected: fine
    }
  }
}

TEST(BinaryCodec, HostileHeadersReject) {
  // n/m chosen so naive 32-bit size math would wrap; the u64 arithmetic
  // must reject before touching any array.
  std::string huge;
  huge.append("BDAG");
  huge.append("\x01\x00\x00\x00", 4);
  putU32(huge, 0xffffffffu);  // n
  putU32(huge, 0xffffffffu);  // m
  huge.append(64, '\0');
  EXPECT_THROW((void)dag::decodeBinaryDag(huge), util::Error);

  EXPECT_THROW((void)dag::decodeBinaryDag(""), util::Error);
  EXPECT_THROW((void)dag::decodeBinaryDag("BDAG"), util::Error);
  EXPECT_THROW((void)dag::decodeBinaryDag(std::string(16, '\0')),
               util::Error);  // bad magic
}

TEST(BinaryCodec, StructuralViolationsReject) {
  // Baseline: a valid 2-node payload, then one violation at a time.
  EXPECT_EQ(dag::decodeBinaryDag(
                craftBdag(2, 1, {0, 1, 1}, {1}, {0, 1, 2}, "ab"))
                .numEdges(),
            1u);
  // Cycle smuggling: a -> b, b -> a passes every per-edge check and
  // must be caught by the Kahn pass.
  EXPECT_THROW((void)dag::decodeBinaryDag(
                   craftBdag(2, 2, {0, 1, 2}, {1, 0}, {0, 1, 2}, "ab")),
               util::Error);
  // Duplicate edge.
  EXPECT_THROW((void)dag::decodeBinaryDag(
                   craftBdag(2, 2, {0, 2, 2}, {1, 1}, {0, 1, 2}, "ab")),
               util::Error);
  // Self-loop.
  EXPECT_THROW((void)dag::decodeBinaryDag(
                   craftBdag(2, 1, {0, 1, 1}, {0}, {0, 1, 2}, "ab")),
               util::Error);
  // Edge target out of range.
  EXPECT_THROW((void)dag::decodeBinaryDag(
                   craftBdag(2, 1, {0, 1, 1}, {5}, {0, 1, 2}, "ab")),
               util::Error);
  // Non-monotone child offsets.
  EXPECT_THROW((void)dag::decodeBinaryDag(
                   craftBdag(2, 1, {1, 0, 1}, {1}, {0, 1, 2}, "ab")),
               util::Error);
  // Duplicate names.
  EXPECT_THROW((void)dag::decodeBinaryDag(
                   craftBdag(2, 1, {0, 1, 1}, {1}, {0, 1, 2}, "aa")),
               util::Error);
  // Empty name (offsets must be strictly increasing).
  EXPECT_THROW((void)dag::decodeBinaryDag(
                   craftBdag(2, 1, {0, 1, 1}, {1}, {0, 0, 2}, "ab")),
               util::Error);
  // Name offsets past the blob.
  EXPECT_THROW((void)dag::decodeBinaryDag(
                   craftBdag(2, 1, {0, 1, 1}, {1}, {0, 1, 9}, "ab")),
               util::Error);
}

TEST(BinaryCodec, BpriRejectsMalformed) {
  EXPECT_THROW((void)dag::decodeBinaryPriorities(""), util::Error);
  EXPECT_THROW((void)dag::decodeBinaryPriorities("BPRI"), util::Error);
  std::string wrong_size = dag::encodeBinaryPriorities({{1, 2, 3}});
  wrong_size.pop_back();
  EXPECT_THROW((void)dag::decodeBinaryPriorities(wrong_size), util::Error);
}

// ------------------------------------------------------- batch envelope

TEST(BatchEnvelope, RoundTrip) {
  const std::vector<net::BatchItem> items{
      {net::PayloadKind::kDagmanText, "T"},
      {net::PayloadKind::kBinaryCsr, "B"},
  };
  const std::string wire = net::encodeBatchRequest(items);
  std::string expected;
  putU32(expected, 2);
  expected.push_back('\x00');  // kDagmanText
  putU32(expected, 1);
  expected.push_back('T');
  expected.push_back('\x01');  // kBinaryCsr
  putU32(expected, 1);
  expected.push_back('B');
  EXPECT_EQ(wire, expected);

  std::vector<net::BatchItem> back;
  std::string error;
  ASSERT_TRUE(net::decodeBatchRequest(wire, back, error)) << error;
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].kind, net::PayloadKind::kDagmanText);
  EXPECT_EQ(back[0].bytes, "T");
  EXPECT_EQ(back[1].kind, net::PayloadKind::kBinaryCsr);
  EXPECT_EQ(back[1].bytes, "B");

  std::size_t count = 0;
  ASSERT_TRUE(net::validateBatchRequest(wire, 16, count, error)) << error;
  EXPECT_EQ(count, 2u);
  // Per-item cap: a 1-byte item fails a 0-byte cap.
  EXPECT_FALSE(net::validateBatchRequest(wire, 0, count, error));

  const std::vector<net::BatchItemReply> replies{
      {Status::kOk, net::PayloadKind::kDagmanText, "out"},
      {Status::kFailed, net::PayloadKind::kDagmanText, "boom"},
  };
  std::vector<net::BatchItemReply> replies_back;
  ASSERT_TRUE(net::decodeBatchResponse(net::encodeBatchResponse(replies),
                                       replies_back, error))
      << error;
  ASSERT_EQ(replies_back.size(), 2u);
  EXPECT_TRUE(replies_back[0].usable());
  EXPECT_FALSE(replies_back[1].usable());
  EXPECT_EQ(replies_back[1].payload, "boom");
}

TEST(BatchEnvelope, MalformedEnvelopesReject) {
  std::vector<net::BatchItem> out;
  std::size_t count = 0;
  std::string error;
  // Truncated count.
  EXPECT_FALSE(net::decodeBatchRequest("\x01", out, error));
  // Count promises more items than there are bytes.
  std::string overcount;
  putU32(overcount, 3);
  overcount.push_back('\x00');
  putU32(overcount, 1);
  overcount.push_back('x');
  EXPECT_FALSE(net::decodeBatchRequest(overcount, out, error));
  EXPECT_FALSE(net::validateBatchRequest(overcount, 1024, count, error));
  // Trailing junk after the last item.
  std::string trailing =
      net::encodeBatchRequest({{net::PayloadKind::kDagmanText, "x"}});
  trailing.push_back('!');
  EXPECT_FALSE(net::decodeBatchRequest(trailing, out, error));
  // Unknown payload kind.
  std::string bad_kind;
  putU32(bad_kind, 1);
  bad_kind.push_back('\x07');
  putU32(bad_kind, 1);
  bad_kind.push_back('x');
  EXPECT_FALSE(net::decodeBatchRequest(bad_kind, out, error));
  EXPECT_FALSE(net::validateBatchRequest(bad_kind, 1024, count, error));
}

TEST(NetProtocol, GoldenFrameBytesV3) {
  Frame f;
  f.version = net::kVersion3;
  f.type = FrameType::kRequest;
  f.request_id = 0x0102030405060708ULL;
  f.trace_id = 0x1112131415161718ULL;
  f.tenant = 0x21222324u;
  f.payload_kind = net::PayloadKind::kBinaryCsr;
  f.payload = "xyz";
  std::string wire;
  net::encodeFrame(f, wire);

  const std::string expected{
      'P',    'R',    'I',    'O',          // magic
      '\x03',                               // version
      '\x01',                               // type = request
      '\x00',                               // status
      '\x00',                               // flags
      '\x08', '\x07', '\x06', '\x05',       // request_id LE
      '\x04', '\x03', '\x02', '\x01',
      '\x18', '\x17', '\x16', '\x15',       // trace_id LE
      '\x14', '\x13', '\x12', '\x11',
      '\x24', '\x23', '\x22', '\x21',       // tenant_id LE
      '\x01',                               // payload_kind = binary CSR
      '\x00', '\x00', '\x00',               // reserved
      '\x03', '\x00', '\x00', '\x00',       // payload_len LE
      'x',    'y',    'z'};
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(wire.size(), net::kHeaderSizeV3 + 3);

  FrameDecoder dec;
  dec.feed(wire.data(), wire.size());
  Frame out;
  ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
  EXPECT_EQ(out.version, net::kVersion3);
  EXPECT_EQ(out.payload_kind, net::PayloadKind::kBinaryCsr);
  EXPECT_EQ(out.payload, "xyz");

  // Typed payloads and batch frames cannot ride pre-v3 frames.
  Frame pre;
  pre.payload_kind = net::PayloadKind::kBinaryCsr;
  std::string sink;
  EXPECT_THROW(net::encodeFrame(pre, sink), util::Error);
  Frame batch;
  batch.type = FrameType::kBatchRequest;
  EXPECT_THROW(net::encodeFrame(batch, sink), util::Error);
}

TEST(NetProtocol, DecoderAppliesBatchCapByFrameType) {
  const std::string payload(500, 'p');
  Frame single;
  single.version = net::kVersion3;
  single.type = FrameType::kRequest;
  single.payload = payload;
  Frame batch;
  batch.version = net::kVersion3;
  batch.type = FrameType::kBatchRequest;
  batch.payload = payload;

  std::string single_wire;
  net::encodeFrame(single, single_wire);
  std::string batch_wire;
  net::encodeFrame(batch, batch_wire);

  {
    FrameDecoder dec(/*max_payload=*/100, /*max_batch_payload=*/1000);
    dec.feed(single_wire.data(), single_wire.size());
    Frame out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Result::kError);
    EXPECT_TRUE(dec.failed());
  }
  {
    FrameDecoder dec(/*max_payload=*/100, /*max_batch_payload=*/1000);
    dec.feed(batch_wire.data(), batch_wire.size());
    Frame out;
    ASSERT_EQ(dec.next(out), FrameDecoder::Result::kFrame);
    EXPECT_EQ(out.type, FrameType::kBatchRequest);
  }
  {
    FrameDecoder dec(/*max_payload=*/100, /*max_batch_payload=*/200);
    dec.feed(batch_wire.data(), batch_wire.size());
    Frame out;
    EXPECT_EQ(dec.next(out), FrameDecoder::Result::kError);
  }
}

// ----------------------------------------------------- service parity

TEST(BinaryService, PaperWorkloadsMatchTextPathByteForByte) {
  service::ServiceConfig config;
  config.num_threads = 2;
  service::PrioService service(config);

  const std::vector<std::pair<const char*, dag::Digraph>> workloads_list = [] {
    std::vector<std::pair<const char*, dag::Digraph>> w;
    w.emplace_back("airsn", workloads::makeAirsn({}));
    w.emplace_back("inspiral", workloads::makeInspiral({}));
    w.emplace_back("montage", workloads::makeMontage({}));
    w.emplace_back("sdss", workloads::makeSdss({}));
    return w;
  }();

  for (const auto& [name, g] : workloads_list) {
    service::Request text;
    text.payload = service::Payload::text(dagTextOf(g));
    const service::Reply a = service.submit(std::move(text)).get();
    ASSERT_EQ(a.status, service::RequestStatus::kOk) << name;

    service::Request binary;
    binary.payload = service::Payload::binary(dag::encodeBinaryDag(g));
    const service::Reply b = service.submit(std::move(binary)).get();
    ASSERT_EQ(b.status, service::RequestStatus::kOk) << name;
    EXPECT_EQ(b.output_kind, service::PayloadKind::kBinaryCsr);

    // Identical priorities through both encodings, and the BPRI table
    // is exactly the canonical encoding of them.
    EXPECT_EQ(a.result->priority, b.result->priority) << name;
    EXPECT_EQ(b.output, dag::encodeBinaryPriorities(a.result->priority))
        << name;
    EXPECT_EQ(dag::decodeBinaryPriorities(b.output), a.result->priority)
        << name;
  }
}

TEST(BinaryService, ParseCacheHitsCountAndSkipDecode) {
  service::ServiceConfig config;
  config.num_threads = 1;
  config.cache_capacity = 64;
  config.text_cache_capacity = 0;  // expose the parse cache, not the memo
  config.parse_cache_capacity = 16;
  service::PrioService service(config);

  stats::Rng rng(3);
  service::Request req;
  req.payload = service::Payload::binary(
      dag::encodeBinaryDag(workloads::randomDag(40, 0.1, rng)));
  const service::Reply first = service.submit(req).get();
  ASSERT_EQ(first.status, service::RequestStatus::kOk);
  EXPECT_EQ(service.metrics().parse_cache_hits.get(), 0u);
  EXPECT_EQ(service.metrics().binary_requests.get(), 1u);

  const service::Reply second = service.submit(req).get();
  ASSERT_EQ(second.status, service::RequestStatus::kOk);
  EXPECT_EQ(service.metrics().parse_cache_hits.get(), 1u);
  EXPECT_EQ(second.output, first.output);
}

// -------------------------------------------------------- end to end

TEST(BinaryWire, HostilePayloadsGetFailedRepliesNotCrashes) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  stats::Rng rng(17);
  const std::string good =
      dag::encodeBinaryDag(workloads::randomDag(20, 0.2, rng));
  const std::vector<std::string> hostile{
      "",
      "BDAG",
      std::string(40, '\xff'),
      good.substr(0, good.size() / 2),
      craftBdag(2, 2, {0, 1, 2}, {1, 0}, {0, 1, 2}, "ab"),  // cycle
      craftBdag(2, 2, {0, 2, 2}, {1, 1}, {0, 1, 2}, "ab"),  // dup edge
  };
  for (const std::string& payload : hostile) {
    client.sendPayload(net::PayloadKind::kBinaryCsr, payload);
    const net::Response r = client.receive();
    EXPECT_EQ(r.status, Status::kFailed);
    EXPECT_FALSE(r.result().usable);
    EXPECT_FALSE(r.payload.empty());  // carries the decode error
  }

  // The connection survived every rejection.
  client.sendPayload(net::PayloadKind::kBinaryCsr, good);
  const net::Response ok = client.receive();
  ASSERT_EQ(ok.status, Status::kOk);
  EXPECT_EQ(ok.kind, net::PayloadKind::kBinaryCsr);
  EXPECT_EQ(dag::decodeBinaryPriorities(ok.payload).size(), 20u);
  EXPECT_EQ(fixture.server().stats().protocol_errors, 0u);
}

TEST(BinaryWire, BatchOneBadItemDegradesOnlyItself) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  stats::Rng rng(23);
  const dag::Digraph g = workloads::randomDag(15, 0.2, rng);
  const std::vector<net::BatchItem> items{
      {net::PayloadKind::kDagmanText, kFig3},
      {net::PayloadKind::kBinaryCsr, "not a bdag"},
      {net::PayloadKind::kBinaryCsr, dag::encodeBinaryDag(g)},
  };
  client.submitBatch(items);
  const net::Response r = client.receive();
  ASSERT_EQ(r.status, Status::kOk);  // the batch itself succeeded
  ASSERT_TRUE(r.batch);
  const net::Response::Result result = r.result();
  ASSERT_TRUE(result.usable);
  ASSERT_EQ(result.items.size(), 3u);

  EXPECT_EQ(result.items[0].status, Status::kOk);
  EXPECT_EQ(result.items[0].kind, net::PayloadKind::kDagmanText);
  EXPECT_NE(result.items[0].payload.find("jobpriority"), std::string::npos);

  EXPECT_EQ(result.items[1].status, Status::kFailed);
  EXPECT_FALSE(result.items[1].usable());
  EXPECT_FALSE(result.items[1].payload.empty());

  EXPECT_EQ(result.items[2].status, Status::kOk);
  EXPECT_EQ(result.items[2].kind, net::PayloadKind::kBinaryCsr);
  EXPECT_EQ(dag::decodeBinaryPriorities(result.items[2].payload).size(),
            15u);
}

TEST(BinaryWire, MaxBatchPayloadCapsTheEnvelope) {
  net::ServerConfig config;
  config.max_batch_payload = 256;
  ServerFixture fixture(config);
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  // An envelope over the configured cap is a protocol error: the reply
  // says so and the server closes the connection.
  const std::vector<net::BatchItem> big{
      {net::PayloadKind::kDagmanText, std::string(512, 'x')}};
  client.submitBatch(big);
  const net::Response r = client.receive();
  EXPECT_EQ(r.status, Status::kProtocolError);
  EXPECT_EQ(fixture.server().stats().protocol_errors, 1u);
}

TEST(BinaryWire, MalformedEnvelopeFailsWithoutClosingTheConnection) {
  ServerFixture fixture;
  net::Client client;
  client.connect("127.0.0.1", fixture.port());

  // A syntactically valid frame whose batch payload is garbage: the
  // server answers kFailed (not kProtocolError) and keeps the
  // connection — the framing was fine, only the envelope was not.
  client.sendFrame(FrameType::kBatchRequest, net::PayloadKind::kDagmanText,
                   "this is not an envelope");
  const net::Response r = client.receive();
  EXPECT_EQ(r.status, Status::kFailed);
  EXPECT_FALSE(r.batch);

  client.send(kFig3);
  EXPECT_EQ(client.receive().status, Status::kOk);
  EXPECT_EQ(fixture.server().stats().protocol_errors, 0u);
}

// One raw socket, all three protocol versions pipelined: the server
// must answer each request in the version it arrived in, in order.
TEST(BinaryWire, MixedVersionClientsInterleaveOnOneSocket) {
  ServerFixture fixture;

  stats::Rng rng(31);
  const dag::Digraph g = workloads::randomDag(12, 0.25, rng);

  std::string wire;
  Frame v1;
  v1.version = net::kVersionLegacy;
  v1.request_id = 1;
  v1.payload = kFig3;
  net::encodeFrame(v1, wire);
  Frame v2;
  v2.version = net::kVersion;
  v2.request_id = 2;
  v2.tenant = 5;
  v2.payload = kFig3;
  net::encodeFrame(v2, wire);
  Frame v3;
  v3.version = net::kVersion3;
  v3.request_id = 3;
  v3.payload_kind = net::PayloadKind::kBinaryCsr;
  v3.payload = dag::encodeBinaryDag(g);
  net::encodeFrame(v3, wire);
  Frame batch;
  batch.version = net::kVersion3;
  batch.type = FrameType::kBatchRequest;
  batch.request_id = 4;
  batch.payload = net::encodeBatchRequest(
      {{net::PayloadKind::kDagmanText, kFig3},
       {net::PayloadKind::kBinaryCsr, dag::encodeBinaryDag(g)}});
  net::encodeFrame(batch, wire);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  util::UniqueFd sock(fd);
  struct sockaddr_in addr {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(fixture.port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(sock.get(),
                      reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  ASSERT_TRUE(util::writeAll(sock.get(), wire.data(), wire.size()));

  FrameDecoder dec;
  std::vector<Frame> replies;
  char buf[4096];
  while (replies.size() < 4) {
    const long r = util::readSome(sock.get(), buf, sizeof(buf));
    ASSERT_GT(r, 0) << "connection closed after " << replies.size()
                    << " replies";
    dec.feed(buf, static_cast<std::size_t>(r));
    Frame out;
    while (dec.next(out) == FrameDecoder::Result::kFrame) {
      replies.push_back(out);
    }
    ASSERT_FALSE(dec.failed()) << dec.error();
  }

  // Responses arrive in request order; each echoes its request version.
  ASSERT_EQ(replies.size(), 4u);
  EXPECT_EQ(replies[0].request_id, 1u);
  EXPECT_EQ(replies[0].version, net::kVersionLegacy);
  EXPECT_EQ(replies[0].status, Status::kOk);
  EXPECT_EQ(replies[0].tenant, 0u);

  EXPECT_EQ(replies[1].request_id, 2u);
  EXPECT_EQ(replies[1].version, net::kVersion);
  EXPECT_EQ(replies[1].status, Status::kOk);
  EXPECT_EQ(replies[1].tenant, 5u);

  EXPECT_EQ(replies[2].request_id, 3u);
  EXPECT_EQ(replies[2].version, net::kVersion3);
  EXPECT_EQ(replies[2].status, Status::kOk);
  EXPECT_EQ(replies[2].payload_kind, net::PayloadKind::kBinaryCsr);
  EXPECT_EQ(dag::decodeBinaryPriorities(replies[2].payload).size(),
            g.numNodes());

  EXPECT_EQ(replies[3].request_id, 4u);
  EXPECT_EQ(replies[3].version, net::kVersion3);
  EXPECT_EQ(replies[3].type, FrameType::kBatchResponse);
  std::vector<net::BatchItemReply> items;
  std::string error;
  ASSERT_TRUE(net::decodeBatchResponse(replies[3].payload, items, error))
      << error;
  ASSERT_EQ(items.size(), 2u);
  EXPECT_TRUE(items[0].usable());
  EXPECT_TRUE(items[1].usable());

  // The v1/v2 text replies are what the text path always produced.
  EXPECT_EQ(replies[0].payload, replies[1].payload);
  EXPECT_EQ(replies[0].payload, items[0].payload);
}

// -------------------------------------------------- deprecated shims

// The pre-v3 stringly API must behave byte-identically to the typed
// API it now wraps.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(DeprecatedShims, TextRequestMatchesTypedRequest) {
  service::ServiceConfig config;
  config.num_threads = 1;
  config.cache_capacity = 0;  // force both paths to compute
  service::PrioService service(config);

  const service::Reply typed =
      service.submit(service::Request{service::Payload::text(kFig3)}).get();
  const service::Reply shim =
      service.submit(service::TextRequest{kFig3}).get();
  ASSERT_EQ(typed.status, service::RequestStatus::kOk);
  ASSERT_EQ(shim.status, service::RequestStatus::kOk);
  EXPECT_EQ(shim.output, typed.output);
  EXPECT_EQ(shim.output_kind, service::PayloadKind::kDagmanText);
  EXPECT_EQ(shim.fingerprint, typed.fingerprint);
}

TEST(DeprecatedShims, UsableOutputAgreesWithResultUsable) {
  net::Response r;
  for (Status s : {Status::kOk, Status::kDegraded, Status::kRejected,
                   Status::kShed, Status::kFailed, Status::kProtocolError,
                   Status::kExpired}) {
    r.status = s;
    for (const char* payload : {"", "Job a a.submit\n"}) {
      r.payload = payload;
      EXPECT_EQ(r.usableOutput(), r.result().usable)
          << "status " << static_cast<int>(s) << " payload "
          << (*payload != '\0' ? "set" : "empty");
    }
  }
}
#pragma GCC diagnostic pop

}  // namespace
