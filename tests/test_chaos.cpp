// Chaos tests: deadline-aware cancellation, graceful degradation, and
// deterministic fault injection across the prioritization stack. Every
// scenario asserts the DESIGN.md §8 contract — a request always
// terminates with kOk, kDegraded, kShed, kRejected, or kFailed, never a
// hang, a crash, or a torn output file.
//
// Run under TSan and ASan in CI: the multithreaded scenarios double as
// race/lifetime checks on the token, injector, and service paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/prio.h"
#include "dag/algorithms.h"
#include "dagman/dagman_file.h"
#include "service/service.h"
#include "util/atomic_file.h"
#include "util/cancellation.h"
#include "util/check.h"
#include "util/fault_injection.h"
#include "util/retry.h"
#include "workloads/scientific.h"

namespace {

namespace fs = std::filesystem;
using namespace prio;
using prio::service::FileRequest;
using prio::service::PrioService;
using prio::service::Reply;
using prio::service::RequestStatus;
using prio::service::ServiceConfig;
using prio::util::fault::Injector;
using prio::util::fault::Kind;
using prio::util::fault::SitePlan;

/// Disarms the global injector when the test scope ends, pass or fail.
struct ScopedInjector {
  explicit ScopedInjector(std::uint64_t seed) {
    Injector::instance().arm(seed);
  }
  ~ScopedInjector() { Injector::instance().disarm(); }
};

/// Asserts `result` is a sound prioritization of `g`: the schedule is a
/// topological permutation and priorities follow Fig. 3 (n down to 1).
void expectValidResult(const dag::Digraph& g, const core::PrioResult& r) {
  const std::size_t n = g.numNodes();
  ASSERT_EQ(r.schedule.size(), n);
  ASSERT_EQ(r.priority.size(), n);
  std::vector<char> seen(n, 0);
  std::vector<std::size_t> position(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_LT(r.schedule[i], n);
    ASSERT_FALSE(seen[r.schedule[i]]) << "schedule is not a permutation";
    seen[r.schedule[i]] = 1;
    position[r.schedule[i]] = i;
  }
  for (dag::NodeId u = 0; u < n; ++u) {
    for (dag::NodeId v : g.children(u)) {
      EXPECT_LT(position[u], position[v]) << "schedule violates an edge";
    }
    EXPECT_EQ(r.priority[u], n - position[u]) << "Fig. 3 priority mismatch";
  }
}

dag::Digraph testDag() { return workloads::makeAirsn({12, 4}); }

std::string writeTempDag(const std::string& name, const std::string& text) {
  const fs::path dir = fs::temp_directory_path() / "prio_chaos";
  fs::create_directories(dir);
  const fs::path path = dir / name;
  std::ofstream out(path);
  out << text;
  return path.string();
}

// ---------------------------------------------------------------------------
// CancelToken basics.

TEST(CancelToken, DefaultNeverFires) {
  util::CancelToken token;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(token.poll());
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.throwIfCancelled("test"));
}

TEST(CancelToken, ExplicitCancelFires) {
  util::CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.poll());
  EXPECT_THROW(token.throwIfCancelled("test"), util::Cancelled);
}

TEST(CancelToken, ExpiredDeadlineLatches) {
  util::CancelToken token(0.0);  // already past
  EXPECT_TRUE(token.expired());
  // After the latch even stride-skipped polls see it.
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(token.poll());
}

TEST(CancelToken, FarDeadlineDoesNotFire) {
  util::CancelToken token(3600.0);
  for (int i = 0; i < 5000; ++i) EXPECT_FALSE(token.poll());
}

TEST(CancelToken, CancelledIsAnError) {
  // Generic util::Error catch sites must keep working.
  try {
    throw util::Cancelled("test");
  } catch (const util::Error&) {
    SUCCEED();
  } catch (...) {
    FAIL() << "Cancelled must derive util::Error";
  }
}

// ---------------------------------------------------------------------------
// Core: cancellation mid-phase and the degraded fallback.

TEST(Cancellation, PreCancelledTokenStopsPrioritize) {
  const auto g = testDag();
  util::CancelToken token;
  token.cancel();
  core::PrioOptions options;
  options.cancel = &token;
  EXPECT_THROW((void)core::prioritize(core::PrioRequest(g, options)), util::Cancelled);
}

TEST(Cancellation, NullTokenMatchesNoTokenBitExactly) {
  const auto g = testDag();
  const auto plain = core::prioritize(core::PrioRequest(g));
  core::PrioOptions options;  // cancel == nullptr
  const auto with_null = core::prioritize(core::PrioRequest(g, options));
  EXPECT_EQ(plain.schedule, with_null.schedule);
  EXPECT_EQ(plain.priority, with_null.priority);
}

TEST(Cancellation, FarDeadlineMatchesNoTokenBitExactly) {
  const auto g = testDag();
  const auto plain = core::prioritize(core::PrioRequest(g));
  util::CancelToken token(3600.0);
  core::PrioOptions options;
  options.cancel = &token;
  const auto bounded = core::prioritize(core::PrioRequest(g, options));
  EXPECT_EQ(plain.schedule, bounded.schedule);
  EXPECT_EQ(plain.priority, bounded.priority);
}

TEST(Fallback, ProducesValidUncertifiedPrioritization) {
  const auto g = testDag();
  const auto r = core::fallbackPrioritize(g);
  expectValidResult(g, r);
  EXPECT_FALSE(r.certified_ic_optimal);
}

TEST(Fallback, OrdersByOutdegreeAmongEligible) {
  // hub has outdegree 3, loner 0: the fallback must dispatch hub first.
  dag::Digraph g;
  const auto loner = g.addNode("loner");
  const auto hub = g.addNode("hub");
  g.addEdge(hub, g.addNode("c1"));
  g.addEdge(hub, g.addNode("c2"));
  g.addEdge(hub, g.addNode("c3"));
  const auto r = core::fallbackPrioritize(g);
  EXPECT_EQ(r.schedule.front(), hub);
  EXPECT_GT(r.priority[hub], r.priority[loner]);
}

// ---------------------------------------------------------------------------
// Service: deadline → degraded, queue deadline → shed, faults → failed.

TEST(ServiceDegradation, DelayPastDeadlineYieldsDegradedValidResult) {
  ScopedInjector inj(101);
  // A 20 ms stall before decompose pushes every computation past the
  // 2 ms deadline; the poll right after must fire.
  SitePlan stall;
  stall.kind = Kind::kDelay;
  stall.delay = std::chrono::microseconds(20000);
  Injector::instance().plan("core.decompose", stall);

  ServiceConfig config;
  config.num_threads = 1;
  config.compute_deadline_s = 0.002;
  PrioService service(config);
  const auto g = testDag();
  const Reply reply = service.prioritizeNow(g);

  ASSERT_EQ(reply.status, RequestStatus::kDegraded);
  ASSERT_NE(reply.result, nullptr);
  expectValidResult(g, *reply.result);
  EXPECT_FALSE(reply.result->certified_ic_optimal);
  EXPECT_GE(service.metrics().requests_degraded.get(), 1u);
  EXPECT_GE(service.metrics().requests_deadline_exceeded.get(), 1u);
  // Completed: the caller did get a usable answer.
  EXPECT_EQ(service.metrics().requests_completed.get(), 1u);
}

TEST(ServiceDegradation, DegradedResultsAreNotCached) {
  ScopedInjector inj(102);
  SitePlan stall;
  stall.kind = Kind::kDelay;
  stall.delay = std::chrono::microseconds(20000);
  Injector::instance().plan("core.decompose", stall);

  ServiceConfig config;
  config.num_threads = 1;
  config.compute_deadline_s = 0.002;
  PrioService service(config);
  const auto g = testDag();
  const Reply degraded = service.prioritizeNow(g);
  ASSERT_EQ(degraded.status, RequestStatus::kDegraded);

  // Remove the stall: the same dag must now be computed for real, not
  // served from a cache poisoned with the degraded result.
  Injector::instance().disarm();
  const Reply full = service.prioritizeNow(g);
  EXPECT_EQ(full.status, RequestStatus::kOk);
  EXPECT_FALSE(full.cache_hit);
  const auto reference = core::prioritize(core::PrioRequest(g));
  EXPECT_EQ(full.result->priority, reference.priority);
}

TEST(ServiceDegradation, FarDeadlineKeepsOutputIdentical) {
  ServiceConfig bounded;
  bounded.num_threads = 1;
  bounded.compute_deadline_s = 3600.0;
  ServiceConfig unbounded;
  unbounded.num_threads = 1;
  PrioService a(bounded), b(unbounded);
  const auto g = testDag();
  const Reply ra = a.prioritizeNow(g);
  const Reply rb = b.prioritizeNow(g);
  ASSERT_EQ(ra.status, RequestStatus::kOk);
  ASSERT_EQ(rb.status, RequestStatus::kOk);
  EXPECT_EQ(ra.result->schedule, rb.result->schedule);
  EXPECT_EQ(ra.result->priority, rb.result->priority);
}

TEST(ServiceShedding, StaleQueuedRequestsAreShed) {
  ScopedInjector inj(103);
  SitePlan stall;
  stall.kind = Kind::kDelay;
  stall.delay = std::chrono::microseconds(30000);
  Injector::instance().plan("core.decompose", stall);

  ServiceConfig config;
  config.num_threads = 1;
  config.queue_deadline_s = 0.001;
  config.cache_capacity = 0;  // every request computes (and stalls)
  PrioService service(config);

  // First request occupies the single worker for ~30 ms; the rest wait
  // longer than the 1 ms queue deadline and must be shed.
  std::vector<std::future<Reply>> futures;
  for (int i = 0; i < 5; ++i) futures.push_back(service.submit(testDag()));
  std::size_t ok = 0, shed = 0;
  for (auto& f : futures) {
    const Reply r = f.get();
    if (r.status == RequestStatus::kOk) ++ok;
    else if (r.status == RequestStatus::kShed) ++shed;
    EXPECT_TRUE(r.status == RequestStatus::kOk ||
                r.status == RequestStatus::kShed);
  }
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u);
  EXPECT_EQ(service.metrics().requests_shed.get(), shed);
}

TEST(ServiceFaults, ForcedParseFailureIsPermanent) {
  ScopedInjector inj(104);
  Injector::instance().plan("service.parse", {.kind = Kind::kThrowError});
  PrioService service({.num_threads = 1});
  const std::string path =
      writeTempDag("ok.dag", "Job a a.sub\nJob b b.sub\nPARENT a CHILD b\n");
  const Reply reply = service.submit(FileRequest{path, ""}).get();
  EXPECT_EQ(reply.status, RequestStatus::kFailed);
  EXPECT_FALSE(reply.transient);
  EXPECT_EQ(reply.result, nullptr);
  EXPECT_EQ(Injector::instance().fireCount("service.parse"), 1u);
}

TEST(ServiceFaults, TransientFailureIsMarkedRetryable) {
  ScopedInjector inj(105);
  Injector::instance().plan("service.parse",
                            {.kind = Kind::kThrowTransient});
  PrioService service({.num_threads = 1});
  const std::string path =
      writeTempDag("ok2.dag", "Job a a.sub\n");
  const Reply reply = service.submit(FileRequest{path, ""}).get();
  EXPECT_EQ(reply.status, RequestStatus::kFailed);
  EXPECT_TRUE(reply.transient);

  // The retry workflow: disarm (the transient condition clears) and
  // resubmit — the request now succeeds.
  Injector::instance().disarm();
  const Reply retried = service.submit(FileRequest{path, ""}).get();
  EXPECT_EQ(retried.status, RequestStatus::kOk);
  service.noteRetries(1);
  EXPECT_EQ(service.metrics().retries.get(), 1u);
}

// ---------------------------------------------------------------------------
// Crash-safe output.

TEST(CrashSafety, CrashBeforeRenameLeavesNoTornTarget) {
  ScopedInjector inj(106);
  Injector::instance().plan("atomic_file.rename", {.kind = Kind::kCrash});
  PrioService service({.num_threads = 1});
  const std::string input =
      writeTempDag("crash_in.dag",
                   "Job a a.sub\nJob b b.sub\nPARENT a CHILD b\n");
  const fs::path outdir = fs::temp_directory_path() / "prio_chaos_out";
  fs::remove_all(outdir);
  fs::create_directories(outdir);
  const std::string output = (outdir / "crash_out.dag").string();

  const Reply reply = service.submit(FileRequest{input, output}).get();
  EXPECT_EQ(reply.status, RequestStatus::kFailed);
  // The crash struck between flush and rename: the target must not
  // exist at all — never a torn half-file.
  EXPECT_FALSE(fs::exists(output));

  // After "restart" (disarm) the same request completes and the output
  // parses as a full instrumented dag.
  Injector::instance().disarm();
  const Reply retried = service.submit(FileRequest{input, output}).get();
  ASSERT_EQ(retried.status, RequestStatus::kOk);
  ASSERT_TRUE(fs::exists(output));
  auto written = dagman::DagmanFile::parseFile(output);
  ASSERT_EQ(written.jobs().size(), 2u);
  EXPECT_TRUE(written.jobs()[0].var("jobpriority").has_value());
  fs::remove_all(outdir);
}

TEST(CrashSafety, CrashOverOldFileKeepsOldContentIntact) {
  const fs::path dir = fs::temp_directory_path() / "prio_chaos_aw";
  fs::remove_all(dir);
  fs::create_directories(dir);
  const std::string target = (dir / "data.json").string();
  util::atomicWriteFile(target, [](std::ostream& out) { out << "OLD"; });

  {
    ScopedInjector inj(107);
    Injector::instance().plan("atomic_file.rename", {.kind = Kind::kCrash});
    EXPECT_THROW(util::atomicWriteFile(
                     target, [](std::ostream& out) { out << "NEW"; }),
                 util::CrashError);
  }
  std::ifstream in(target);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "OLD");  // the old complete file survived

  util::atomicWriteFile(target, [](std::ostream& out) { out << "NEW"; });
  std::ifstream in2(target);
  std::getline(in2, content);
  EXPECT_EQ(content, "NEW");
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Fault injector determinism.

TEST(FaultInjector, EveryNthFiresDeterministically) {
  ScopedInjector inj(108);
  Injector::instance().plan("test.site", {.kind = Kind::kThrowError,
                                          .every_nth = 3});
  std::size_t thrown = 0;
  for (int i = 0; i < 9; ++i) {
    try {
      util::fault::checkpoint("test.site");
    } catch (const util::Error&) {
      ++thrown;
    }
  }
  EXPECT_EQ(thrown, 3u);  // passes 3, 6, 9
  EXPECT_EQ(Injector::instance().fireCount("test.site"), 3u);
  EXPECT_EQ(Injector::instance().passCount("test.site"), 9u);
}

TEST(FaultInjector, SeededProbabilityReplaysExactly) {
  const auto pattern = [](std::uint64_t seed) {
    ScopedInjector inj(seed);
    SitePlan plan;
    plan.kind = Kind::kThrowError;
    plan.every_nth = 0;
    plan.probability = 0.4;
    Injector::instance().plan("test.prob", plan);
    std::vector<char> fired;
    for (int i = 0; i < 64; ++i) {
      bool f = false;
      try {
        util::fault::checkpoint("test.prob");
      } catch (const util::Error&) {
        f = true;
      }
      fired.push_back(f ? 1 : 0);
    }
    return fired;
  };
  const auto a = pattern(42), b = pattern(42), c = pattern(43);
  EXPECT_EQ(a, b);  // same seed, same pattern
  EXPECT_NE(a, c);  // different seed, different pattern (w.h.p.)
  EXPECT_GT(std::accumulate(a.begin(), a.end(), 0), 0);
}

TEST(FaultInjector, DisarmedCheckpointIsInert) {
  Injector::instance().disarm();
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NO_THROW(util::fault::checkpoint("service.parse"));
  }
}

// ---------------------------------------------------------------------------
// Backoff.

TEST(Backoff, SeededScheduleReplaysAndGrows) {
  util::ExpBackoff a(0.01, 1.0, 7), b(0.01, 1.0, 7);
  double prev_window = 0.0;
  for (std::uint64_t k = 0; k < 8; ++k) {
    const double da = a.next(k), db = b.next(k);
    EXPECT_EQ(da, db);   // same seed → same jittered schedule
    EXPECT_LE(da, 1.0);  // cap holds
    // Full jitter: a uniform draw from [0, window) where the window
    // doubles each step up to the cap.
    const double window = std::min(0.01 * static_cast<double>(1ULL << k), 1.0);
    EXPECT_EQ(window, a.window(k));
    EXPECT_GE(da, 0.0);
    EXPECT_LT(da, window);
    EXPECT_GE(window, prev_window);
    prev_window = window;
  }
}

TEST(Backoff, FullJitterDecorrelatesDifferentSeeds) {
  // A fleet of clients with distinct seeds must not retry in lockstep:
  // with full jitter the k-th waits spread across the whole window
  // instead of clustering in a narrow multiplicative band.
  constexpr int kFleet = 32;
  double lo = 1e9, hi = -1.0;
  for (int c = 0; c < kFleet; ++c) {
    util::ExpBackoff bo(0.1, 10.0, 1000 + static_cast<std::uint64_t>(c));
    const double d = bo.next(4);  // window = 1.6 s
    lo = std::min(lo, d);
    hi = std::max(hi, d);
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.6);
  }
  // The spread covers most of the window (w.h.p. for 32 uniform draws).
  EXPECT_LT(lo, 0.4);
  EXPECT_GT(hi, 1.2);
}

// ---------------------------------------------------------------------------
// Multithreaded chaos: every request terminates with a defined status.
// This is the TSan/ASan workhorse.

TEST(ChaosStress, EveryRequestTerminatesUnderMixedFaults) {
  ScopedInjector inj(109);
  SitePlan flaky_parse;
  flaky_parse.kind = Kind::kThrowTransient;
  flaky_parse.every_nth = 0;
  flaky_parse.probability = 0.3;
  Injector::instance().plan("service.parse", flaky_parse);
  SitePlan slow_decompose;
  slow_decompose.kind = Kind::kDelay;
  slow_decompose.every_nth = 2;
  slow_decompose.delay = std::chrono::microseconds(5000);
  Injector::instance().plan("core.decompose", slow_decompose);

  ServiceConfig config;
  config.num_threads = 4;
  config.queue_capacity = 8;
  config.backpressure = prio::service::BackpressurePolicy::kReject;
  config.compute_deadline_s = 0.002;
  config.queue_deadline_s = 0.05;
  config.cache_capacity = 16;
  PrioService service(config);

  const std::string path = writeTempDag(
      "stress.dag",
      "Job a a.sub\nJob b b.sub\nJob c c.sub\n"
      "PARENT a CHILD b c\n");
  std::vector<std::future<Reply>> futures;
  for (int i = 0; i < 40; ++i) {
    if (i % 2 == 0) futures.push_back(service.submit(testDag()));
    else futures.push_back(service.submit(FileRequest{path, ""}));
  }

  std::size_t with_result = 0;
  for (auto& f : futures) {
    const Reply r = f.get();  // must terminate — the contract under test
    switch (r.status) {
      case RequestStatus::kOk:
      case RequestStatus::kDegraded:
        ASSERT_NE(r.result, nullptr);
        ++with_result;
        break;
      case RequestStatus::kRejected:
      case RequestStatus::kShed:
      case RequestStatus::kExpired:
      case RequestStatus::kFailed:
        EXPECT_EQ(r.result, nullptr);
        break;
    }
  }
  EXPECT_GT(with_result, 0u);

  // Lifecycle accounting closes: every submission ended exactly one way.
  const auto& m = service.metrics();
  EXPECT_EQ(m.requests_submitted.get(),
            m.requests_completed.get() + m.requests_failed.get() +
                m.requests_rejected.get() + m.requests_shed.get());
}

TEST(ChaosStress, ConcurrentCancelWhilePolling) {
  // One thread flips the token while workers poll it — TSan fodder for
  // the relaxed-atomic token protocol.
  util::CancelToken token(3600.0);
  std::atomic<bool> stop{false};
  std::thread canceller([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    token.cancel();
    stop.store(true);
  });
  bool fired = false;
  while (!fired && !stop.load()) fired = token.poll();
  canceller.join();
  EXPECT_TRUE(token.poll());  // once cancelled, always cancelled
}

}  // namespace
