// Tests for the Combine phase: greedy selection, strategy equivalence,
// profile classes.
#include <gtest/gtest.h>

#include <vector>

#include "core/combine.h"
#include "core/decompose.h"
#include "core/schedule.h"
#include "dag/algorithms.h"
#include "stats/rng.h"
#include "theory/blocks.h"
#include "workloads/random.h"
#include "workloads/scientific.h"

namespace {

using namespace prio::core;
using namespace prio::dag;
using prio::stats::Rng;

struct Pipeline {
  Decomposition decomposition;
  std::vector<ComponentSchedule> schedules;
};

Pipeline decomposeAndSchedule(const Digraph& g) {
  Pipeline p;
  p.decomposition = decompose(transitiveReduction(g));
  p.schedules = scheduleComponents(p.decomposition);
  return p;
}

TEST(Combine, PopsEveryComponentExactlyOnce) {
  Rng rng(3);
  const auto g = prio::workloads::randomComposable(30, rng);
  const auto p = decomposeAndSchedule(g);
  const auto r = combineGreedy(p.decomposition, p.schedules);
  ASSERT_EQ(r.pop_order.size(), p.decomposition.components.size());
  std::vector<char> seen(r.pop_order.size(), 0);
  for (std::size_t i : r.pop_order) {
    ASSERT_LT(i, seen.size());
    EXPECT_FALSE(seen[i]);
    seen[i] = 1;
  }
}

TEST(Combine, PopOrderRespectsSuperdag) {
  Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const auto g = prio::workloads::randomComposable(40, rng);
    const auto p = decomposeAndSchedule(g);
    const auto r = combineGreedy(p.decomposition, p.schedules);
    std::vector<NodeId> as_nodes(r.pop_order.begin(), r.pop_order.end());
    EXPECT_TRUE(isTopologicalOrder(p.decomposition.superdag, as_nodes));
  }
}

TEST(Combine, StrategiesProduceIdenticalPopOrders) {
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const auto g = prio::workloads::randomComposable(35, rng);
    const auto p = decomposeAndSchedule(g);
    const auto btree = combineGreedy(p.decomposition, p.schedules,
                                     CombineStrategy::kBTreeClasses);
    const auto naive = combineGreedy(p.decomposition, p.schedules,
                                     CombineStrategy::kNaiveQuadratic);
    EXPECT_EQ(btree.pop_order, naive.pop_order) << "trial " << trial;
    EXPECT_EQ(btree.all_pops_perfect, naive.all_pops_perfect);
  }
}

TEST(Combine, StrategiesAgreeOnScientificDag) {
  const auto g = prio::workloads::makeAirsn({20, 4});
  const auto p = decomposeAndSchedule(g);
  const auto btree = combineGreedy(p.decomposition, p.schedules,
                                   CombineStrategy::kBTreeClasses);
  const auto naive = combineGreedy(p.decomposition, p.schedules,
                                   CombineStrategy::kNaiveQuadratic);
  EXPECT_EQ(btree.pop_order, naive.pop_order);
}

TEST(Combine, StrategiesAgreeOnFullScaleInspiralAndMontage) {
  // Full paper-size dags: Inspiral's 333 components include the giant
  // generic one; Montage has few but huge components.
  for (const auto& g :
       {prio::workloads::makeInspiral({}), prio::workloads::makeMontage({})}) {
    const auto p = decomposeAndSchedule(g);
    const auto btree = combineGreedy(p.decomposition, p.schedules,
                                     CombineStrategy::kBTreeClasses);
    const auto naive = combineGreedy(p.decomposition, p.schedules,
                                     CombineStrategy::kNaiveQuadratic);
    EXPECT_EQ(btree.pop_order, naive.pop_order);
  }
}

TEST(Combine, ProfileClassesGroupIdenticalProfiles) {
  // A chain decomposes into identical W(1,1) components: one class.
  Digraph g;
  NodeId prev = g.addNode("n0");
  for (int i = 1; i < 6; ++i) {
    const NodeId next = g.addNode("n" + std::to_string(i));
    g.addEdge(prev, next);
    prev = next;
  }
  const auto p = decomposeAndSchedule(g);
  const auto r = combineGreedy(p.decomposition, p.schedules);
  EXPECT_EQ(r.class_profiles.size(), 1u);
  for (std::size_t cls : r.profile_class) EXPECT_EQ(cls, 0u);
}

TEST(Combine, ExpansiveSourcePoppedBeforeReductiveWhenFree) {
  // Two independent blocks: a fan-out W(1,3) and a fan-in M(1,3). The
  // greedy combine must execute the expansive block first (its source
  // maximizes the minimum priority).
  Digraph g;
  const NodeId w = g.addNode("w");
  for (int i = 0; i < 3; ++i) {
    g.addEdge(w, g.addNode("wt" + std::to_string(i)));
  }
  const NodeId mt = g.addNode("mt");
  std::vector<NodeId> msrc;
  for (int i = 0; i < 3; ++i) {
    msrc.push_back(g.addNode("ms" + std::to_string(i)));
    g.addEdge(msrc.back(), mt);
  }
  const auto p = decomposeAndSchedule(g);
  ASSERT_EQ(p.decomposition.components.size(), 2u);
  const auto r = combineGreedy(p.decomposition, p.schedules);
  // Identify which component holds the fan-out source.
  const std::size_t w_comp = p.decomposition.owner[w];
  EXPECT_EQ(r.pop_order.front(), w_comp);
  EXPECT_TRUE(r.all_pops_perfect);
}

TEST(Combine, IncomparableReadyBlocksAreImperfectButDeterministic) {
  // N(4) and Clique(3) side by side: neither has ⊵-priority over the
  // other (r = 6/7 both ways), so whichever the greedy pops first loses
  // a little — all_pops_perfect must be false, the pop order must be
  // deterministic, and both strategies must still agree.
  Digraph g;
  // N(4): u0..u3 -> v0..v3 zigzag.
  std::vector<NodeId> u, v;
  for (int i = 0; i < 4; ++i) u.push_back(g.addNode("u" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) v.push_back(g.addNode("v" + std::to_string(i)));
  for (int i = 0; i < 4; ++i) {
    g.addEdge(u[i], v[i]);
    if (i + 1 < 4) g.addEdge(u[i + 1], v[i]);
  }
  // Clique(3): three sources, one sink per pair.
  std::vector<NodeId> q;
  for (int i = 0; i < 3; ++i) q.push_back(g.addNode("q" + std::to_string(i)));
  for (int i = 0; i < 3; ++i) {
    for (int j = i + 1; j < 3; ++j) {
      const NodeId t = g.addNode("t" + std::to_string(i) + std::to_string(j));
      g.addEdge(q[i], t);
      g.addEdge(q[j], t);
    }
  }
  const auto p = decomposeAndSchedule(g);
  ASSERT_EQ(p.decomposition.components.size(), 2u);
  const auto btree = combineGreedy(p.decomposition, p.schedules,
                                   CombineStrategy::kBTreeClasses);
  const auto naive = combineGreedy(p.decomposition, p.schedules,
                                   CombineStrategy::kNaiveQuadratic);
  EXPECT_FALSE(btree.all_pops_perfect);
  EXPECT_EQ(btree.pop_order, naive.pop_order);
  // Determinism across repeated runs.
  const auto again = combineGreedy(p.decomposition, p.schedules,
                                   CombineStrategy::kBTreeClasses);
  EXPECT_EQ(btree.pop_order, again.pop_order);
}

TEST(Combine, SingleComponentIsPerfect) {
  const auto g = prio::theory::makeW(3, 2);
  const auto p = decomposeAndSchedule(g);
  const auto r = combineGreedy(p.decomposition, p.schedules);
  EXPECT_EQ(r.pop_order, (std::vector<std::size_t>{0}));
  EXPECT_TRUE(r.all_pops_perfect);
}

TEST(Combine, RejectsMismatchedInputs) {
  const auto g = prio::theory::makeW(2, 2);
  auto p = decomposeAndSchedule(g);
  p.schedules.clear();
  EXPECT_THROW((void)combineGreedy(p.decomposition, p.schedules),
               prio::util::Error);
}

}  // namespace
