// Tests for the ⊵ relation (eq. 1) and its ⊵_r generalization.
#include <gtest/gtest.h>

#include <vector>

#include "theory/blocks.h"
#include "theory/eligibility.h"
#include "theory/priority.h"
#include "util/check.h"

namespace {

using namespace prio::theory;
using Profile = std::vector<std::size_t>;

// Eligibility profile of a block over its non-sink prefix.
Profile blockProfile(const prio::dag::Digraph& g) {
  const auto r = recognizeBlock(g);
  std::size_t nonsinks = 0;
  for (prio::dag::NodeId u = 0; u < g.numNodes(); ++u) {
    if (!g.isSink(u)) ++nonsinks;
  }
  return eligibilityProfile(
      g, std::span<const prio::dag::NodeId>(r.schedule).first(nonsinks));
}

TEST(PairPriority, AlwaysInUnitInterval) {
  const std::vector<Profile> profiles{
      blockProfile(makeW(1, 3)), blockProfile(makeW(3, 2)),
      blockProfile(makeM(1, 4)), blockProfile(makeM(2, 3)),
      blockProfile(makeN(3)),    blockProfile(makeCycleDag(4)),
      blockProfile(makeCliqueDag(4))};
  for (const auto& a : profiles) {
    for (const auto& b : profiles) {
      const double r = pairPriority(a, b);
      EXPECT_GE(r, 0.0);
      EXPECT_LE(r, 1.0);
    }
  }
}

TEST(PairPriority, OneIffExactRelationHolds) {
  const std::vector<Profile> profiles{
      blockProfile(makeW(1, 3)), blockProfile(makeW(2, 2)),
      blockProfile(makeM(1, 4)), blockProfile(makeM(3, 2)),
      blockProfile(makeN(4)),    blockProfile(makeCliqueDag(3))};
  for (const auto& a : profiles) {
    for (const auto& b : profiles) {
      const bool exact = hasPriorityOver(a, b);
      const double r = pairPriority(a, b);
      EXPECT_EQ(exact, r == 1.0)
          << "exact=" << exact << " r=" << r;
    }
  }
}

TEST(HasPriorityOver, ExpansiveBeforeReductive) {
  // A fan-out W(1,3) should have priority over a fan-in M(1,3):
  // executing the expansive source first creates eligible jobs, while the
  // reductive block only consumes them.
  const Profile w = blockProfile(makeW(1, 3));
  const Profile m = blockProfile(makeM(1, 3));
  EXPECT_TRUE(hasPriorityOver(w, m));
  EXPECT_FALSE(hasPriorityOver(m, w));
}

TEST(HasPriorityOver, ReflexiveOnSymmetricProfiles) {
  const Profile w = blockProfile(makeW(2, 3));
  EXPECT_TRUE(hasPriorityOver(w, w));
}

TEST(HasPriorityOver, BiggerFanoutFirst) {
  const Profile big = blockProfile(makeW(1, 5));
  const Profile small = blockProfile(makeW(1, 2));
  EXPECT_TRUE(hasPriorityOver(big, small));
}

TEST(PairPriority, DegenerateProfiles) {
  // Profiles with a single entry (zero non-sinks) are vacuously dominated.
  const Profile empty_block{1};  // one eligible sink, no non-sinks
  const Profile w = blockProfile(makeW(1, 3));
  EXPECT_EQ(pairPriority(empty_block, w), 1.0);
  EXPECT_EQ(pairPriority(w, empty_block), 1.0);
}

TEST(PairPriority, RejectsEmptyProfiles) {
  const Profile ok{1, 2};
  const Profile empty;
  EXPECT_THROW((void)pairPriority(empty, ok), prio::util::Error);
  EXPECT_THROW((void)hasPriorityOver(ok, empty), prio::util::Error);
}

TEST(PairPriority, KnownFractionalCase) {
  // Hand-crafted profiles where the relation holds only fractionally.
  // E_i = [1, 0] (one non-sink whose execution leaves nothing eligible),
  // E_j = [1, 3]. Executing i first: at (x,y)=(0,1) LHS=E_i(0)+E_j(1)=4,
  // RHS=E_i(1)+E_j(0)=1 -> r <= 1/4.
  const Profile ei{1, 0};
  const Profile ej{1, 3};
  EXPECT_FALSE(hasPriorityOver(ei, ej));
  EXPECT_DOUBLE_EQ(pairPriority(ei, ej), 0.25);
  EXPECT_TRUE(hasPriorityOver(ej, ei));
}

TEST(PairPriority, ZeroWhenEverythingIsLost) {
  // E_i = [1, 0], E_j = [0, 5] -> at (0,1): LHS = 1+5 = 6,
  // RHS = E_i(1)+E_j(0) = 0 -> r = 0.
  const Profile ei{1, 0};
  const Profile ej{0, 5};
  EXPECT_DOUBLE_EQ(pairPriority(ei, ej), 0.0);
}

TEST(LinearlyPrioritizable, FamilyMixIsComparable) {
  const std::vector<Profile> profiles{
      blockProfile(makeW(1, 2)), blockProfile(makeW(1, 5)),
      blockProfile(makeM(1, 3))};
  EXPECT_TRUE(linearlyPrioritizable(profiles));
}

TEST(LinearlyPrioritizable, DetectsIncomparablePairs) {
  // Two artificial profiles, neither dominating the other:
  // A = [2, 0, 5], B = [2, 4, 0].
  // A over B fails at (x,y)=(0,1): LHS=2+4=6, RHS=E_A(1)+E_B(0)=0+2=2.
  // B over A fails at (x,y)=(0,2): LHS=2+5=7, RHS=E_B(2)+E_A(0)=0+2=2.
  const std::vector<Profile> profiles{{2, 0, 5}, {2, 4, 0}};
  EXPECT_FALSE(linearlyPrioritizable(profiles));
}

TEST(LinearlyPrioritizable, EmptyAndSingleton) {
  EXPECT_TRUE(linearlyPrioritizable({}));
  EXPECT_TRUE(linearlyPrioritizable({Profile{1, 2, 3}}));
}

TEST(HasPriorityOver, TransitiveOnFamilyProfiles) {
  // §2.2 step 6 relies on ⊵ being transitive ("because ⊵ is transitive
  // [16]"). Verify it across every ordered triple of a broad profile
  // pool drawn from the block families.
  std::vector<Profile> pool;
  for (std::size_t b = 2; b <= 5; ++b) {
    pool.push_back(blockProfile(makeW(1, b)));
    pool.push_back(blockProfile(makeM(1, b)));
  }
  pool.push_back(blockProfile(makeW(2, 3)));
  pool.push_back(blockProfile(makeW(3, 2)));
  pool.push_back(blockProfile(makeM(2, 3)));
  pool.push_back(blockProfile(makeN(3)));
  pool.push_back(blockProfile(makeN(5)));
  pool.push_back(blockProfile(makeCycleDag(4)));
  pool.push_back(blockProfile(makeCliqueDag(4)));

  std::size_t chains_checked = 0;
  for (const auto& a : pool) {
    for (const auto& b : pool) {
      if (!hasPriorityOver(a, b)) continue;
      for (const auto& c : pool) {
        if (!hasPriorityOver(b, c)) continue;
        ++chains_checked;
        EXPECT_TRUE(hasPriorityOver(a, c)) << "transitivity violated";
      }
    }
  }
  EXPECT_GT(chains_checked, 100u);  // the pool must actually exercise it
}

TEST(PairPriority, IncomparableFamilyPairsExist) {
  // The paper only "hopes" all block pairs are ⊵-comparable (§2.2 step
  // 4) — and indeed they are not, even among the Fig. 2 families: N(4)
  // and Clique(3) are mutually incomparable, each direction achieving
  // only r = 6/7 of the optimum. This is precisely what motivates the
  // heuristic's graded ⊵_r relation: the greedy combine can still pick
  // the least-lossy side.
  const Profile n4 = blockProfile(makeN(4));
  const Profile clique3 = blockProfile(makeCliqueDag(3));
  EXPECT_FALSE(hasPriorityOver(n4, clique3));
  EXPECT_FALSE(hasPriorityOver(clique3, n4));
  EXPECT_NEAR(pairPriority(n4, clique3), 6.0 / 7.0, 1e-12);
  EXPECT_NEAR(pairPriority(clique3, n4), 6.0 / 7.0, 1e-12);
  // Both directions stay strictly positive: the greedy never divides by
  // zero here and loses at most the factor 7/6.
  EXPECT_GT(pairPriority(n4, clique3), 0.0);
}

}  // namespace
