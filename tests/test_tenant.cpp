// Tests for the multi-tenant scheduling subsystem (src/tenant/): the
// tenant registry (token-bucket quotas, in-flight caps, outcome
// accounting, JSON/Prometheus rendering), the deficit-round-robin
// FairQueue (FIFO parity for a single tenant, weighted interleave, the
// starvation bound, global capacity semantics), and the service-level
// integration (per-tenant routing, single-tenant byte parity with the
// untenanted service).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "service/service.h"
#include "tenant/fair_queue.h"
#include "tenant/registry.h"

namespace {

using namespace prio;
using tenant::Admission;
using tenant::FairQueue;
using tenant::Outcome;
using tenant::TenantConfig;
using tenant::TenantRegistry;

constexpr const char* kFig3 =
    "Job a a.submit\n"
    "Job b b.submit\n"
    "Job c c.submit\n"
    "Job d d.submit\n"
    "Job e e.submit\n"
    "PARENT a CHILD b\n"
    "PARENT c CHILD d e\n";

// ---------------------------------------------------------------- registry

TEST(TenantRegistry, UnmeteredTenantAlwaysAdmits) {
  TenantRegistry registry;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(registry.tryAdmit(0, 0.0), Admission::kAdmit);
  }
  // Unknown ids self-register and are just as unmetered.
  EXPECT_EQ(registry.tryAdmit(42, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.numTenants(), 2u);
}

TEST(TenantRegistry, TokenBucketIsDeterministic) {
  TenantRegistry registry;
  registry.configure(1, {.rate_per_s = 2.0, .burst = 2.0});

  // A fresh bucket holds `burst` tokens; the first tryAdmit anchors the
  // clock, so the absolute epoch is irrelevant.
  EXPECT_EQ(registry.tryAdmit(1, 100.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 100.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 100.0), Admission::kQuota);

  // Denials consume nothing: retrying at the same instant stays denied
  // but does not push the refill clock around.
  EXPECT_EQ(registry.tryAdmit(1, 100.0), Admission::kQuota);

  // 0.5 s at 2/s refills exactly one token.
  EXPECT_EQ(registry.tryAdmit(1, 100.5), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 100.5), Admission::kQuota);

  // Refill is capped at burst: a long idle period does not bank tokens.
  EXPECT_EQ(registry.tryAdmit(1, 200.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 200.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 200.0), Admission::kQuota);
}

TEST(TenantRegistry, BurstDefaultsToRateFloorOne) {
  TenantRegistry registry;
  registry.configure(1, {.rate_per_s = 3.0});  // burst derives max(1, 3) = 3
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kQuota);

  registry.configure(2, {.rate_per_s = 0.25});  // burst derives max(1, ..) = 1
  EXPECT_EQ(registry.tryAdmit(2, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(2, 0.0), Admission::kQuota);
}

TEST(TenantRegistry, InFlightCapChecksBeforeTokens) {
  TenantRegistry registry;
  registry.configure(1, {.rate_per_s = 100.0, .burst = 100.0,
                         .max_in_flight = 2});
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kInFlightCap);

  // A cap denial must not have burned a token: after one completion the
  // freed slot admits with tokens to spare.
  registry.recordReply(1, Outcome::kOk, false, 0.001);
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 2u);
  EXPECT_EQ(snaps[1].admitted, 3u);
  EXPECT_EQ(snaps[1].in_flight, 2u);
  EXPECT_NEAR(snaps[1].tokens, 97.0, 1e-9);
}

TEST(TenantRegistry, OutcomesAreBucketed) {
  TenantRegistry registry;
  ASSERT_EQ(registry.tryAdmit(5, 0.0), Admission::kAdmit);
  registry.recordReply(5, Outcome::kOk, /*cache_hit=*/true, 0.002);
  ASSERT_EQ(registry.tryAdmit(5, 0.0), Admission::kAdmit);
  registry.recordReply(5, Outcome::kOk, /*cache_hit=*/false, 0.004);
  ASSERT_EQ(registry.tryAdmit(5, 0.0), Admission::kAdmit);
  registry.recordReply(5, Outcome::kDegraded, false, 0.008);
  ASSERT_EQ(registry.tryAdmit(5, 0.0), Admission::kAdmit);
  registry.recordReply(5, Outcome::kShed, false, 0.001);
  ASSERT_EQ(registry.tryAdmit(5, 0.0), Admission::kAdmit);
  registry.recordReply(5, Outcome::kFailed, false, 0.001);
  registry.recordRejected(5);

  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 2u);  // default + tenant 5, ascending by id
  EXPECT_EQ(snaps[0].id, 0u);
  const auto& s = snaps[1];
  EXPECT_EQ(s.id, 5u);
  EXPECT_EQ(s.name, "tenant-5");
  EXPECT_EQ(s.admitted, 5u);
  EXPECT_EQ(s.completed, 3u);  // two kOk + one kDegraded
  EXPECT_EQ(s.degraded, 1u);
  EXPECT_EQ(s.shed, 1u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(s.rejected, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 2u);  // kOk miss + degraded compute
  EXPECT_EQ(s.in_flight, 0u);
  EXPECT_EQ(s.latency.count, 5u);  // every admitted reply records latency
  EXPECT_NEAR(s.cacheHitRate(), 1.0 / 3.0, 1e-9);
}

TEST(TenantRegistry, ConfigurePreservesCountersAndRefillsBucket) {
  TenantRegistry registry;
  registry.configure(1, {.rate_per_s = 1.0, .burst = 1.0});
  ASSERT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  registry.recordReply(1, Outcome::kOk, false, 0.001);
  ASSERT_EQ(registry.tryAdmit(1, 0.0), Admission::kQuota);

  registry.configure(1, {.name = "upgraded", .weight = 4, .rate_per_s = 10.0,
                         .burst = 2.0});
  const auto snaps = registry.snapshot();
  EXPECT_EQ(snaps[1].name, "upgraded");
  EXPECT_EQ(snaps[1].admitted, 1u);  // counters survived
  EXPECT_EQ(registry.weight(1), 4u);
  // The bucket refilled to the new burst.
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  EXPECT_EQ(registry.tryAdmit(1, 0.0), Admission::kQuota);
}

TEST(TenantRegistry, WeightSelfRegistersAndFloorsAtOne) {
  TenantConfig defaults;
  defaults.weight = 2;
  TenantRegistry registry(defaults);
  EXPECT_EQ(registry.weight(9), 2u);  // unknown → defaults
  EXPECT_EQ(registry.numTenants(), 2u);
  registry.configure(9, {.weight = 0});  // 0 acts as 1
  EXPECT_EQ(registry.weight(9), 1u);
}

TEST(TenantRegistry, JsonAndPrometheusRendering) {
  TenantRegistry registry;
  registry.configure(1, {.name = "a\"b\\c\n", .weight = 3, .rate_per_s = 2.0,
                         .burst = 4.0, .max_in_flight = 8});
  ASSERT_EQ(registry.tryAdmit(1, 0.0), Admission::kAdmit);
  registry.recordReply(1, Outcome::kOk, true, 0.002);

  auto snaps = registry.snapshot();
  snaps[1].queued = 5;  // the fair-queue column is caller-filled
  std::ostringstream json;
  tenant::writeTenantsJson(json, snaps);
  const std::string j = json.str();
  EXPECT_EQ(j.rfind("{\"tenants\":[", 0), 0u) << j;
  EXPECT_NE(j.find("\"id\":1"), std::string::npos);
  EXPECT_NE(j.find("\"name\":\"a\\\"b\\\\c\\n\""), std::string::npos) << j;
  EXPECT_NE(j.find("\"weight\":3"), std::string::npos);
  EXPECT_NE(j.find("\"rate_per_s\":2"), std::string::npos);
  EXPECT_NE(j.find("\"max_in_flight\":8"), std::string::npos);
  EXPECT_NE(j.find("\"queued\":5"), std::string::npos);
  EXPECT_NE(j.find("\"admitted\":1"), std::string::npos);
  EXPECT_NE(j.find("\"cache_hit_rate\":1"), std::string::npos);
  EXPECT_NE(j.find("\"latency_count\":1"), std::string::npos);
  EXPECT_NE(j.find("\"latency_p50_s\":"), std::string::npos);
  EXPECT_NE(j.find("\"latency_p99_s\":"), std::string::npos);

  std::ostringstream prom;
  tenant::writeTenantsPrometheus(prom, snaps);
  const std::string p = prom.str();
  EXPECT_NE(p.find("# TYPE prio_tenant_admitted_total counter"),
            std::string::npos);
  EXPECT_NE(p.find("# TYPE prio_tenant_weight gauge"), std::string::npos);
  EXPECT_NE(p.find("# TYPE prio_tenant_latency_p99_seconds gauge"),
            std::string::npos);
  // Label values escape backslash, quote, and newline per the Prometheus
  // exposition format.
  EXPECT_NE(p.find("tenant_name=\"a\\\"b\\\\c\\n\""), std::string::npos) << p;
  EXPECT_NE(p.find("prio_tenant_queued{tenant=\"1\""), std::string::npos);
}

// -------------------------------------------------------------- fair queue

TEST(FairQueue, SingleTenantIsExactFifo) {
  // DRR with one active lane must degenerate to plain FIFO — the parity
  // guarantee that keeps untenanted traffic on the PR 1-5 contract.
  FairQueue q(256);
  std::vector<int> order;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(q.tryPush(7, [i, &order] { order.push_back(i); }));
  }
  EXPECT_EQ(q.size(), 100u);
  EXPECT_EQ(q.queuedFor(7), 100u);
  while (auto task = q.pop()) {
    (*task)();
    if (order.size() == 100) break;
  }
  for (int i = 0; i < 100; ++i) ASSERT_EQ(order[i], i);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.highWater(), 100u);
}

TEST(FairQueue, WeightedInterleaveMatchesDrr) {
  TenantRegistry registry;
  registry.configure(1, {.weight = 2});
  registry.configure(2, {.weight = 1});
  FairQueue q(256, &registry);

  std::vector<int> order;
  // Backlog both lanes before popping: tenant 1 enters the ring first.
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.tryPush(1, [&order] { order.push_back(1); }));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(q.tryPush(2, [&order] { order.push_back(2); }));
  for (int i = 0; i < 9; ++i) (*q.pop())();

  // DRR with weights 2:1 serves 1,1,2 per round.
  const std::vector<int> expected = {1, 1, 2, 1, 1, 2, 1, 1, 2};
  EXPECT_EQ(order, expected);
}

TEST(FairQueue, EmptyLaneForfeitsItsBudgetAndLeavesTheRing) {
  TenantRegistry registry;
  registry.configure(1, {.weight = 100});
  FairQueue q(256, &registry);
  std::vector<int> order;
  ASSERT_TRUE(q.tryPush(1, [&order] { order.push_back(1); }));
  ASSERT_TRUE(q.tryPush(2, [&order] { order.push_back(2); }));
  ASSERT_TRUE(q.tryPush(2, [&order] { order.push_back(2); }));
  // Tenant 1's lane empties after one pop; its remaining 99 budget must
  // not stall the ring.
  for (int i = 0; i < 3; ++i) (*q.pop())();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 2}));

  // Re-activation grants a fresh budget, not the forfeited remainder.
  ASSERT_TRUE(q.tryPush(1, [&order] { order.push_back(1); }));
  (*q.pop())();
  EXPECT_EQ(order.back(), 1);
}

TEST(FairQueue, StarvationBoundHolds) {
  // With a hog of weight W backlogged, a newly-arrived task of another
  // tenant waits at most W pops — the DRR starvation bound.
  TenantRegistry registry;
  registry.configure(1, {.weight = 5});
  registry.configure(2, {.weight = 1});
  FairQueue q(1024, &registry);

  std::atomic<bool> small_done{false};
  for (int i = 0; i < 500; ++i) ASSERT_TRUE(q.tryPush(1, [] {}));
  ASSERT_TRUE(q.tryPush(2, [&small_done] { small_done = true; }));

  int pops_before_small = 0;
  while (!small_done) {
    (*q.pop())();
    if (!small_done) ++pops_before_small;
    ASSERT_LE(pops_before_small, 5) << "small tenant starved past the bound";
  }
  EXPECT_LE(pops_before_small, 5);
}

TEST(FairQueue, CapacityIsGlobalAcrossLanes) {
  FairQueue q(4);
  ASSERT_TRUE(q.tryPush(1, [] {}));
  ASSERT_TRUE(q.tryPush(2, [] {}));
  ASSERT_TRUE(q.tryPush(3, [] {}));
  ASSERT_TRUE(q.tryPush(4, [] {}));
  EXPECT_FALSE(q.tryPush(5, [] {}));  // full: the bound spans all lanes
  EXPECT_EQ(q.capacity(), 4u);
  (*q.pop())();
  EXPECT_TRUE(q.tryPush(5, [] {}));
  EXPECT_EQ(q.numLanes(), 5u);
}

TEST(FairQueue, BlockingPushUnblocksOnPop) {
  FairQueue q(1);
  ASSERT_TRUE(q.tryPush(1, [] {}));
  std::atomic<bool> pushed{false};
  std::thread pusher([&] {
    ASSERT_TRUE(q.push(2, [] {}));  // blocks until the pop below
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed);
  (*q.pop())();
  pusher.join();
  EXPECT_TRUE(pushed);
  EXPECT_EQ(q.size(), 1u);
}

TEST(FairQueue, CloseDrainsThenReturnsNullopt) {
  FairQueue q(16);
  ASSERT_TRUE(q.tryPush(1, [] {}));
  ASSERT_TRUE(q.tryPush(2, [] {}));
  q.close();
  EXPECT_FALSE(q.push(3, [] {}));     // no enqueue after close...
  EXPECT_FALSE(q.tryPush(3, [] {}));
  EXPECT_TRUE(q.pop().has_value());   // ...but queued work still drains
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

// ------------------------------------------------------------- integration

TEST(TenantService, RepliesCarryTheTenantAndTheRegistryAccounts) {
  TenantRegistry registry;
  registry.configure(1, {.weight = 2});
  service::ServiceConfig config;
  config.num_threads = 2;
  config.tenants = &registry;
  service::PrioService service(config);

  std::vector<std::future<service::Reply>> futures;
  for (std::uint32_t tenant : {1u, 2u, 1u, 0u}) {
    service::Request request;
    request.payload = service::Payload::text(kFig3);
    request.tenant = tenant;
    futures.push_back(service.submit(std::move(request)));
  }
  std::vector<std::uint32_t> tenants;
  for (auto& f : futures) {
    const service::Reply reply = f.get();
    ASSERT_EQ(reply.status, service::RequestStatus::kOk);
    EXPECT_FALSE(reply.output.empty());
    tenants.push_back(reply.tenant);
  }
  EXPECT_EQ(tenants, (std::vector<std::uint32_t>{1, 2, 1, 0}));
  ASSERT_NE(service.fairQueue(), nullptr);
  EXPECT_EQ(service.fairQueue()->size(), 0u);
}

TEST(TenantService, SingleTenantOutputMatchesUntenantedServiceByteForByte) {
  // The parity acceptance: routing the same request through the fair
  // queue must not change a single output byte vs the plain service.
  service::ServiceConfig plain_config;
  plain_config.num_threads = 1;
  service::PrioService plain(plain_config);

  TenantRegistry registry;
  service::ServiceConfig fair_config;
  fair_config.num_threads = 1;
  fair_config.tenants = &registry;
  service::PrioService fair(fair_config);

  for (int i = 0; i < 5; ++i) {
    service::Request request;
    request.payload = service::Payload::text(kFig3);
    const service::Reply a = plain.submit(request).get();
    const service::Reply b = fair.submit(request).get();
    ASSERT_EQ(a.status, service::RequestStatus::kOk);
    ASSERT_EQ(b.status, service::RequestStatus::kOk);
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.cache_hit, b.cache_hit);
  }
}

TEST(TenantService, ManyTenantsUnderLoadAllComplete) {
  TenantRegistry registry;
  registry.configure(1, {.weight = 8});
  service::ServiceConfig config;
  config.num_threads = 2;
  config.queue_capacity = 512;
  config.cache_capacity = 0;  // force real work per request
  config.tenants = &registry;
  service::PrioService service(config);

  std::vector<std::future<service::Reply>> futures;
  for (int round = 0; round < 40; ++round) {
    for (std::uint32_t tenant = 1; tenant <= 4; ++tenant) {
      service::Request request;
      request.payload = service::Payload::text(kFig3);
      request.tenant = tenant;
      futures.push_back(service.submit(std::move(request)));
    }
  }
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, service::RequestStatus::kOk);
  }
  const auto snaps = registry.snapshot();
  ASSERT_EQ(snaps.size(), 5u);  // default + 4
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_EQ(snaps[i].in_flight, 0u) << "tenant " << snaps[i].id;
  }
}

}  // namespace
