// End-to-end integration tests across the whole pipeline: DAGMan file ->
// prio tool -> schedule -> simulator, on (scaled) scientific workloads.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/prio.h"
#include "dag/algorithms.h"
#include "dagman/dagman_file.h"
#include "dagman/instrument.h"
#include "sim/campaign.h"
#include "theory/eligibility.h"
#include "workloads/scientific.h"

namespace {

using namespace prio;

// Serializes a generated dag as a DAGMan file, re-parses it, and checks
// the round-tripped dag drives the exact same PRIO schedule.
TEST(Integration, DagmanRoundTripPreservesSchedule) {
  const auto g = workloads::makeAirsn({12, 4});
  dagman::DagmanFile file;
  for (dag::NodeId u = 0; u < g.numNodes(); ++u) {
    file.addJob(g.name(u), "job.submit");
  }
  for (dag::NodeId u = 0; u < g.numNodes(); ++u) {
    for (dag::NodeId v : g.children(u)) {
      file.addDependency(g.name(u), g.name(v));
    }
  }
  std::ostringstream out;
  file.write(out);
  std::istringstream in(out.str());
  auto parsed = dagman::DagmanFile::parse(in);
  const auto g2 = parsed.toDigraph();
  ASSERT_EQ(g2.numNodes(), g.numNodes());
  ASSERT_EQ(g2.numEdges(), g.numEdges());

  const auto r1 = core::prioritize(core::PrioRequest(g));
  const auto r2 = dagman::prioritizeDagmanFile(parsed);
  // Node ids coincide (same declaration order), so schedules must match.
  EXPECT_EQ(r1.schedule, r2.schedule);
  // Every job carries its jobpriority macro.
  for (const auto& job : parsed.jobs()) {
    EXPECT_TRUE(job.var("jobpriority").has_value()) << job.name;
  }
}

// Fig. 4's qualitative claim on all four (scaled) scientific dags:
// PRIO's eligibility curve dominates FIFO's in aggregate, and never by
// less at any step on AIRSN.
TEST(Integration, EligibilityDominanceOnScientificDags) {
  struct Case {
    const char* name;
    dag::Digraph g;
  };
  std::vector<Case> cases;
  cases.push_back({"airsn", workloads::makeAirsn({40, 6})});
  cases.push_back({"inspiral", workloads::makeInspiral({8, 4})});
  cases.push_back({"montage", workloads::makeMontage({5, 8, 4})});
  cases.push_back({"sdss", workloads::makeSdss({20, 5, 2, 10})});

  for (const auto& c : cases) {
    const auto r = core::prioritize(core::PrioRequest(c.g));
    ASSERT_TRUE(dag::isTopologicalOrder(c.g, r.schedule)) << c.name;
    const auto ep = theory::eligibilityProfile(c.g, r.schedule);
    const auto ef =
        theory::eligibilityProfile(c.g, core::fifoSchedule(c.g));
    long long area = 0;
    long long min_diff = 0;
    for (std::size_t t = 0; t < ep.size(); ++t) {
      const long long diff = static_cast<long long>(ep[t]) -
                             static_cast<long long>(ef[t]);
      area += diff;
      min_diff = std::min(min_diff, diff);
    }
    EXPECT_GT(area, 0) << c.name << ": PRIO should dominate in aggregate";
    if (std::string(c.name) == "airsn") {
      EXPECT_GE(min_diff, 0) << "AIRSN: PRIO never below FIFO";
    }
  }
}

// The decomposition structure claims of §3.3, on scaled instances.
TEST(Integration, DecompositionStructureClaims) {
  {
    const auto g = workloads::makeInspiral({8, 4});
    const auto r = core::prioritize(core::PrioRequest(g));
    std::size_t biggest_nonbip = 0;
    for (const auto& c : r.decomposition.components) {
      if (!c.bipartite) {
        biggest_nonbip = std::max(biggest_nonbip, c.nodes.size());
      }
    }
    EXPECT_EQ(biggest_nonbip, 8u * (4u + 2u));
  }
  {
    const auto g = workloads::makeMontage({5, 8, 4});
    const auto r = core::prioritize(core::PrioRequest(g));
    std::size_t biggest_bip = 0;
    for (const auto& c : r.decomposition.components) {
      if (c.bipartite) biggest_bip = std::max(biggest_bip, c.nodes.size());
    }
    // Projects + diffs in one block.
    EXPECT_GE(biggest_bip, 40u);
  }
  {
    const auto g = workloads::makeSdss({20, 5, 2, 10});
    const auto r = core::prioritize(core::PrioRequest(g));
    // The W(fields,3) core must be recognized as a W block.
    bool found_w_core = false;
    for (std::size_t i = 0; i < r.component_schedules.size(); ++i) {
      const auto& rec = r.component_schedules[i].recognition;
      if (rec.kind == theory::BlockKind::kW && rec.a == 20 && rec.b == 3) {
        found_w_core = true;
      }
    }
    EXPECT_TRUE(found_w_core);
  }
}

// End-to-end simulation sanity on a non-AIRSN dag: PRIO never loses badly
// in the mid-range regime.
TEST(Integration, PrioCompetitiveOnSdssScaled) {
  const auto g = workloads::makeSdss({30, 5, 2, 10});
  const auto r = core::prioritize(core::PrioRequest(g));
  sim::GridModel m;
  m.mean_batch_interarrival = 1.0;
  m.mean_batch_size = 32.0;
  sim::CampaignConfig cfg;
  cfg.p = 6;
  cfg.q = 3;
  const auto cmp = sim::comparePrioVsFifo(g, r.schedule, m, cfg);
  ASSERT_TRUE(cmp.time_ratio.defined);
  EXPECT_LT(cmp.time_ratio.median, 1.05);
}

// The overhead path of §3.6: prioritize must handle a full-size AIRSN in
// well under a second (the paper's number on 2005 hardware).
TEST(Integration, AirsnOverheadUnderOneSecond) {
  const auto g = workloads::makeAirsn({});
  const auto r = core::prioritize(core::PrioRequest(g));
  EXPECT_LT(r.timings.total_s, 1.0);
}

}  // namespace
