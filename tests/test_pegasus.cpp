// Tests for the Pegasus-style workflow archetypes.
#include <gtest/gtest.h>

#include "core/prio.h"
#include "dag/algorithms.h"
#include "dag/stats.h"
#include "theory/curves.h"
#include "theory/eligibility.h"
#include "util/check.h"
#include "workloads/pegasus.h"

namespace {

using namespace prio;
using namespace prio::workloads;

TEST(Cybershake, StructureAndCounts) {
  const CybershakeParams p{3, 5};
  const auto g = makeCybershake(p);
  EXPECT_EQ(g.numNodes(), cybershakeJobCount(p));
  ASSERT_TRUE(dag::isAcyclic(g));
  EXPECT_TRUE(dag::isConnected(g));
  // Sources: the two SGT extractions per site.
  EXPECT_EQ(g.sources().size(), 2 * p.sites);
  EXPECT_EQ(g.sinks().size(), 1u);
  // Every synthesis has exactly the two shared SGT parents.
  EXPECT_EQ(g.inDegree(*g.findNode("synthesis0_0")), 2u);
  EXPECT_EQ(g.inDegree(*g.findNode("synthesis0_4")), 2u);
  // Each zip joins the site's peak calculations.
  EXPECT_EQ(g.inDegree(*g.findNode("zip_seis0")), p.synthesis_per_site);
  EXPECT_THROW((void)makeCybershake({0, 5}), util::Error);
}

TEST(Epigenomics, StructureAndCounts) {
  const EpigenomicsParams p{3, 4};
  const auto g = makeEpigenomics(p);
  EXPECT_EQ(g.numNodes(), epigenomicsJobCount(p));
  ASSERT_TRUE(dag::isAcyclic(g));
  EXPECT_TRUE(dag::isConnected(g));
  EXPECT_EQ(g.sources().size(), p.lanes);
  EXPECT_EQ(g.sinks().size(), 1u);  // pileup
  // The merge joins every per-split map.
  EXPECT_EQ(g.inDegree(*g.findNode("map_merge")),
            p.lanes * p.splits_per_lane);
  // Depth: split + 4 chain stages + merge + index + pileup = 8.
  EXPECT_EQ(dag::computeStats(g).depth, 8u);
}

TEST(Pegasus, PrioHandlesBothShapes) {
  for (const auto& g :
       {makeCybershake({6, 25}), makeEpigenomics({8, 16})}) {
    const auto r = core::prioritize(core::PrioRequest(g));
    EXPECT_TRUE(dag::isTopologicalOrder(g, r.schedule));
    // PRIO's eligibility never falls below FIFO's on these shapes.
    const auto ep = theory::eligibilityProfile(g, r.schedule);
    const auto ef = theory::eligibilityProfile(g, core::fifoSchedule(g));
    const auto cmp = theory::compareProfiles(ep, ef);
    EXPECT_TRUE(cmp.dominates());
  }
}

TEST(Cybershake, SynthesisLayerIsSharedParentBipartiteBlock) {
  const auto g = makeCybershake({2, 10});
  const auto r = core::prioritize(core::PrioRequest(g));
  // Per site, the {sgt_x, sgt_y} -> synthesis layer must decompose as a
  // complete bipartite K(2,10) block.
  std::size_t k_blocks = 0;
  for (const auto& cs : r.component_schedules) {
    if (cs.recognition.kind == theory::BlockKind::kCompleteBipartite &&
        cs.recognition.a == 2 && cs.recognition.b == 10) {
      ++k_blocks;
    }
  }
  EXPECT_EQ(k_blocks, 2u);
}

}  // namespace
