// Tests for the small utility substrates: check macros, bit matrix,
// timing/memory probes, DOT export.
#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "dag/dot.h"
#include "util/bitmatrix.h"
#include "util/check.h"
#include "util/timing.h"

namespace {

using prio::util::BitMatrix;

TEST(Check, ThrowsWithLocationAndMessage) {
  try {
    PRIO_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "should have thrown";
  } catch (const prio::util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
    EXPECT_NE(what.find("test_util.cpp"), std::string::npos);
  }
}

TEST(Check, PassesSilently) {
  EXPECT_NO_THROW(PRIO_CHECK(2 + 2 == 4));
}

TEST(BitMatrix, SetTestClear) {
  BitMatrix m(3, 130);  // spans multiple words per row
  EXPECT_FALSE(m.test(1, 64));
  m.set(1, 64);
  m.set(1, 129);
  m.set(2, 0);
  EXPECT_TRUE(m.test(1, 64));
  EXPECT_TRUE(m.test(1, 129));
  EXPECT_FALSE(m.test(0, 64));
  m.clearBit(1, 64);
  EXPECT_FALSE(m.test(1, 64));
  EXPECT_TRUE(m.test(1, 129));
}

TEST(BitMatrix, RowPopcountAndOr) {
  BitMatrix m(2, 200);
  for (std::size_t c = 0; c < 200; c += 3) m.set(0, c);
  EXPECT_EQ(m.rowPopcount(0), 67u);
  EXPECT_EQ(m.rowPopcount(1), 0u);
  m.orRowInto(1, 0);
  EXPECT_EQ(m.rowPopcount(1), 67u);
  m.set(1, 1);
  m.orRowInto(1, 0);  // idempotent for existing bits
  EXPECT_EQ(m.rowPopcount(1), 68u);
}

TEST(BitMatrix, RowsIntersect) {
  BitMatrix m(3, 100);
  m.set(0, 70);
  m.set(1, 70);
  m.set(2, 71);
  EXPECT_TRUE(m.rowsIntersect(0, 1));
  EXPECT_FALSE(m.rowsIntersect(0, 2));
}

TEST(BitMatrix, BoundsChecked) {
  BitMatrix m(2, 10);
  EXPECT_THROW(m.set(2, 0), prio::util::Error);
  EXPECT_THROW(m.set(0, 10), prio::util::Error);
  EXPECT_THROW((void)m.test(0, 11), prio::util::Error);
}

TEST(BitMatrix, ByteSizeAccountsForPadding) {
  BitMatrix m(4, 65);  // 2 words per row
  EXPECT_EQ(m.byteSize(), 4u * 2u * 8u);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  prio::util::Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double t = w.elapsedSeconds();
  EXPECT_GE(t, 0.015);
  EXPECT_LT(t, 5.0);
  w.reset();
  EXPECT_LT(w.elapsedSeconds(), 0.015);
}

TEST(MemoryProbe, ReportsPlausibleValues) {
  const std::size_t peak = prio::util::peakRssKb();
  const std::size_t current = prio::util::currentRssKb();
  EXPECT_GT(peak, 0u);
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak, current / 2);  // peak should not be wildly below current
}

TEST(Dot, BasicStructure) {
  prio::dag::Digraph g;
  const auto a = g.addNode("alpha");
  const auto b = g.addNode("beta");
  g.addEdge(a, b);
  const std::string dot = prio::dag::toDot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("rankdir=BT"), std::string::npos);
  EXPECT_NE(dot.find("alpha"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1"), std::string::npos);
}

TEST(Dot, EscapesQuotesInNames) {
  prio::dag::Digraph g;
  g.addNode("has\"quote");
  const std::string dot = prio::dag::toDot(g);
  EXPECT_NE(dot.find("has\\\"quote"), std::string::npos);
}

TEST(Dot, PrioritiesAndColorsValidated) {
  prio::dag::Digraph g;
  g.addNode("a");
  g.addNode("b");
  const std::vector<std::size_t> priorities{2, 1};
  prio::dag::DotOptions opts;
  opts.priorities = priorities;
  const std::string dot = prio::dag::toDot(g, opts);
  EXPECT_NE(dot.find("p=2"), std::string::npos);

  const std::vector<std::size_t> wrong{1};
  prio::dag::DotOptions bad;
  bad.priorities = wrong;
  EXPECT_THROW((void)prio::dag::toDot(g, bad), prio::util::Error);
}

TEST(Dot, FillColors) {
  prio::dag::Digraph g;
  g.addNode("a");
  g.addNode("b");
  const std::vector<std::string> colors{"gray", ""};
  prio::dag::DotOptions opts;
  opts.fill_colors = colors;
  const std::string dot = prio::dag::toDot(g, opts);
  EXPECT_NE(dot.find("fillcolor=\"gray\""), std::string::npos);
  // Node b has no color: exactly one fillcolor directive.
  EXPECT_EQ(dot.find("fillcolor"), dot.rfind("fillcolor"));
}

}  // namespace
